(** In-memory relations: a schema plus a bag (multiset) of tuples.

    Relations are immutable once built.  Classical relational algebra
    treats relations as sets; this representation keeps duplicates (bag
    semantics) because the estimators need to reason about raw tuple
    counts, and exposes {!distinct} / {!is_set} for set-semantics
    operators. *)

type t

(** [make schema tuples] checks every tuple against the schema (arity and
    per-position type; [Null] is accepted at any type).
    @raise Invalid_argument on mismatch. *)
val make : Schema.t -> Tuple.t list -> t

(** Unchecked fast path used by generators and operators that construct
    well-typed tuples by construction. *)
val of_array : Schema.t -> Tuple.t array -> t

val schema : t -> Schema.t

val cardinality : t -> int

val is_empty : t -> bool

val tuples : t -> Tuple.t array

val tuple : t -> int -> Tuple.t

val iter : (Tuple.t -> unit) -> t -> unit

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a

val filter : (Tuple.t -> bool) -> t -> t

val map : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t

(** Number of tuples satisfying the predicate. *)
val count : (Tuple.t -> bool) -> t -> int

(** The relation's columnar view (see {!Column}), built lazily and
    memoized; repeated calls return the same view, and its per-column
    encodings are shared by every kernel consumer. *)
val columnar : t -> Column.t

(** Eagerly build and memoize the columnar view, iff the kernels would
    use it (columnar execution enabled and the relation is at or above
    the kernel threshold); otherwise a no-op.  Long-lived catalogs call
    this at load time so no request pays the first-touch encode. *)
val warm_view : t -> unit

(** [count_pred p r] counts tuples satisfying the predicate, through
    the compiled columnar kernel when enabled (see {!Column.enabled})
    and the relation is large enough to amortize compilation;
    [~columnar:false] pins the row path.  Results are identical either
    way.
    @raise Not_found if [p] mentions an unknown attribute. *)
val count_pred : ?columnar:bool -> Predicate.t -> t -> int

(** Selection counterpart of {!count_pred}: keeps tuples satisfying the
    predicate, preserving order. *)
val filter_pred : ?columnar:bool -> Predicate.t -> t -> t

(** Duplicate elimination (set semantics), keeping first occurrences in
    order. *)
val distinct : t -> t

(** Whether the relation contains no duplicate tuples. *)
val is_set : t -> bool

(** Column values at the given attribute, in tuple order.  Served from
    the memoized columnar view when one has been built (in which case
    repeated calls share one array — treat it as read-only); otherwise
    a fresh array is allocated.
    @raise Not_found if the attribute is absent. *)
val column : t -> string -> Value.t array

(** [iter_column_int r name f] applies [f] to every value of an
    all-integer, null-free column without allocating; returns [false]
    (without calling [f]) when the column has nulls, is not stored as
    ints, or columnar execution is disabled.
    @raise Not_found if the attribute is absent. *)
val iter_column_int : t -> string -> (int -> unit) -> bool

(** Float counterpart of {!iter_column_int}. *)
val iter_column_float : t -> string -> (float -> unit) -> bool

(** Append two relations with equal schemas (bag union).
    @raise Invalid_argument if schemas differ. *)
val append : t -> t -> t

val empty : Schema.t -> t

val pp : Format.formatter -> t -> unit

(** First [n] tuples rendered one per line, for debugging. *)
val to_string : ?limit:int -> t -> string
