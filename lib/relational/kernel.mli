(** Compiled predicate and equijoin kernels over columnar views.

    The contract with the row path is exact agreement: [compile view p]
    decides every row like [Predicate.compile (Column.schema view) p]
    (including Null-comparison-is-false, cross-type rank ordering and
    [Not_found] on unknown attributes), and the join kernels match key
    pairs exactly when [Tuple.equal] would (Null keys match Null keys).
    Metrics accounting mirrors the row joins: one probe hit or miss per
    left tuple, nothing recorded for plain scans. *)

(** [compile view p] lowers [p] into a row-index predicate.  Single
    Attr-vs-Const comparisons over int/float/dictionary/bool columns
    become branch-free typed scans (dictionary constants are decided
    once per dictionary entry); everything else falls back to a generic
    closure over boxed column views with identical semantics.
    @raise Not_found if [p] mentions an unknown attribute. *)
val compile : Column.t -> Predicate.t -> int -> bool

(** Number of rows satisfying the predicate. *)
val count : Column.t -> Predicate.t -> int

(** Number of rows among [indices] satisfying the predicate (sampled
    selection scans). *)
val count_indices : Column.t -> Predicate.t -> int array -> int

(** Row indices satisfying the predicate, ascending. *)
val filter_indices : Column.t -> Predicate.t -> int array

(** [join_codes l jl r jr] is [Some (kl, kr)] when both key columns
    admit a shared int code space in which code equality coincides with
    [Value.equal] of the key values: null-free int columns (raw values)
    and dictionary pairs (left codes remapped into the right dictionary;
    [-1] = Null on both sides, [-2] = absent from the right).  [None]
    means the caller must take the row path. *)
val join_codes : Column.t -> int -> Column.t -> int -> (int array * int array) option

(** Equijoin cardinality on one key pair without materializing: builds
    a code → multiplicity table on the right, probes left codes in row
    order (recording one probe hit/miss per left row).  [None] when
    {!join_codes} declines. *)
val equijoin_count :
  ?metrics:Obs.Metrics.t -> Column.t -> int -> Column.t -> int -> int option

(** [equijoin_iter l jl r jr ~f] calls [f li ri] for every matching
    pair, in exactly the row join's output order: left-major, right
    build order within a bucket.  Returns [false] (without calling [f])
    when {!join_codes} declines. *)
val equijoin_iter :
  ?metrics:Obs.Metrics.t ->
  Column.t -> int -> Column.t -> int -> f:(int -> int -> unit) -> bool

(** First-occurrence indices of distinct rows (the row order
    [Relation.distinct] produces), computed over canonical per-column
    int codes.  [None] when some column is stored generically (mixed or
    wrongly-typed values), where int codes cannot reproduce
    [Tuple.equal]. *)
val distinct_indices : Column.t -> int array option
