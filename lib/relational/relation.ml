type t = {
  schema : Schema.t;
  tuples : Tuple.t array;
  (* Lazily-built columnar view.  The memoizing store is idempotent
     (Column.of_tuples is deterministic and O(arity)), so a racing
     build under domains is benign. *)
  mutable view : Column.t option;
}

let mk schema tuples = { schema; tuples; view = None }

let type_ok ty value =
  match value with
  | Value.Null -> true
  | _ -> Value.type_of value = ty

let check_tuple schema tuple =
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Relation.make: tuple %s has arity %d, schema %s expects %d"
         (Tuple.to_string tuple) (Tuple.arity tuple) (Schema.to_string schema)
         (Schema.arity schema));
  Array.iteri
    (fun i v ->
      let attr = Schema.attribute schema i in
      if not (type_ok attr.Schema.ty v) then
        invalid_arg
          (Printf.sprintf "Relation.make: value %s not of type %s (attribute %s)"
             (Value.to_string v) (Value.ty_to_string attr.Schema.ty) attr.Schema.name))
    tuple

let make schema tuples =
  List.iter (check_tuple schema) tuples;
  mk schema (Array.of_list tuples)

let of_array schema tuples = mk schema tuples

let schema r = r.schema

let cardinality r = Array.length r.tuples

let is_empty r = cardinality r = 0

let tuples r = r.tuples

let tuple r i = r.tuples.(i)

let columnar r =
  match r.view with
  | Some view -> view
  | None ->
    let view = Column.of_tuples r.schema r.tuples in
    r.view <- Some view;
    view

(* Alias for use where a [?columnar] flag shadows the name. *)
let view_of = columnar

let iter f r = Array.iter f r.tuples

let fold f init r = Array.fold_left f init r.tuples

let filter p r = mk r.schema (Array.of_seq (Seq.filter p (Array.to_seq r.tuples)))

let map schema f r = mk schema (Array.map f r.tuples)

let count p r =
  Array.fold_left (fun acc t -> if p t then acc + 1 else acc) 0 r.tuples

(* Columnar kernels engage above this size: below it the compile +
   column-encode overhead eats the per-row win. *)
let kernel_threshold = 1024

let use_kernel columnar r =
  columnar && Column.enabled () && cardinality r >= kernel_threshold

(* Force the columnar view now iff the kernels would build it lazily on
   first use: long-lived catalogs (the serve daemon) pay the encode at
   load time instead of on the first request that touches the
   relation.  A no-op below the kernel threshold or with columnar
   execution disabled — building a view no kernel will read would be
   pure waste. *)
let warm_view r = if use_kernel true r then ignore (columnar r)

let count_pred ?(columnar = true) p r =
  if use_kernel columnar r then Kernel.count (view_of r) p
  else count (Predicate.compile r.schema p) r

let gather r indices = Array.map (fun i -> Array.unsafe_get r.tuples i) indices

let filter_pred ?(columnar = true) p r =
  if use_kernel columnar r then mk r.schema (gather r (Kernel.filter_indices (view_of r) p))
  else filter (Predicate.compile r.schema p) r

module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let distinct_rows r =
  let seen = Tuple_hash.create (max 16 (cardinality r)) in
  let keep = ref [] in
  Array.iter
    (fun t ->
      if not (Tuple_hash.mem seen t) then begin
        Tuple_hash.add seen t ();
        keep := t :: !keep
      end)
    r.tuples;
  mk r.schema (Array.of_list (List.rev !keep))

let distinct r =
  if Column.enabled () && cardinality r >= 64 then
    match Kernel.distinct_indices (columnar r) with
    | Some indices -> mk r.schema (gather r indices)
    | None -> distinct_rows r
  else distinct_rows r

let is_set r =
  let seen = Tuple_hash.create (max 16 (cardinality r)) in
  let rec loop i =
    if i >= cardinality r then true
    else if Tuple_hash.mem seen r.tuples.(i) then false
    else begin
      Tuple_hash.add seen r.tuples.(i) ();
      loop (i + 1)
    end
  in
  loop 0

let column r name =
  let i = Schema.index_of r.schema name in
  match r.view with
  | Some view when Column.enabled () -> Column.values view i
  | Some _ | None -> Array.map (fun t -> Tuple.get t i) r.tuples

(* Resolve the attribute before consulting the columnar switch: an
   unknown name raises Not_found whether or not columnar execution is
   enabled. *)
let iter_column_int r name f =
  let i = Schema.index_of r.schema name in
  Column.enabled () && Column.iter_int (columnar r) i f

let iter_column_float r name f =
  let i = Schema.index_of r.schema name in
  Column.enabled () && Column.iter_float (columnar r) i f

let append r1 r2 =
  if not (Schema.equal r1.schema r2.schema) then
    invalid_arg "Relation.append: schemas differ";
  mk r1.schema (Array.append r1.tuples r2.tuples)

let empty schema = mk schema [||]

let to_string ?(limit = 20) r =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Schema.to_string r.schema);
  Buffer.add_string buffer (Printf.sprintf " [%d tuples]\n" (cardinality r));
  let shown = min limit (cardinality r) in
  for i = 0 to shown - 1 do
    Buffer.add_string buffer ("  " ^ Tuple.to_string r.tuples.(i) ^ "\n")
  done;
  if shown < cardinality r then Buffer.add_string buffer "  ...\n";
  Buffer.contents buffer

let pp ppf r = Format.pp_print_string ppf (to_string r)
