(** Logical rewriting of relational algebra expressions.

    Classical equivalence-preserving rules, applied bottom-up to a
    fixpoint:

    - conjunction splitting: [σ_{p∧q}(e) → σ_p(σ_q(e))]
    - selection pushdown through product/join sides, union,
      intersection and difference (left side);
    - join recognition: [σ_{a=b}(l × r)] with [a] from [l] and [b]
      from [r] becomes [l ⋈_{a=b} r]; further equality conjuncts merge
      into an existing equi-join; θ-joins whose predicate is an
      attribute equality (or a conjunction containing one) are lowered
      to selections over products so the same recognition applies;
    - trivial-selection elimination ([σ_true], [σ_false] over anything
      becomes an empty-producing selection kept as-is),
      double-[Distinct] collapse, and dedup of idempotent [Distinct]
      over set operators.

    The result always evaluates to the same relation (up to tuple
    order) — property-checked in the test suite — and is usually much
    cheaper for {!Eval}/{!Physical} because products shrink before they
    multiply. *)

(** Sampling pushdown under GUS semantics ("A Sampling Algebra for
    Aggregate Estimation", PAPERS.md): a root sampling operator —
    Bernoulli(q) thinning or its SRSWOR analogue — commutes through
    selections, bag projections and renames unchanged, and below either
    side of a product/equi-join/θ-join.  Each step preserves the first
    moment (scaling by 1/q per sampled leaf stays unbiased) while the
    join steps inflate the second moment by the cross-pair term
    [(SS_side − J)(1/q − 1)]; a complete derivation down to leaf [j]
    has analytic variance [SS_j · (1/q − 1)] with
    [SS_j = Σ_x c_j(x)²], the sum of squared per-tuple result
    contributions.  The planner ({!Raestat.Planner}) prices these
    terms with data statistics to choose a placement.

    Expressions containing a duplicate-eliminating operator
    ([Distinct], [Union], [Inter], [Diff]) or [Aggregate] are not
    rewritten: thinning does not commute with dedup semantics. *)
module Sampling_pushdown : sig
  (** A sampling operator being pushed (informational: derivations are
      rate-independent, the planner assigns rates). *)
  type rate =
    | Srswor of { n : int; population : int }
    | Bernoulli of float

  (** Second-moment effect of one rewrite step. *)
  type inflation =
    | Exact_commute  (** selection/projection/rename: unchanged *)
    | Cross_pair of [ `Left | `Right ]
        (** below a join: result tuples sharing a constituent on the
            retained side become correlated *)

  type step = {
    rule : string;  (** e.g. ["sample-below-join-left"] *)
    at : string;  (** operator the sample moved through *)
    moment : string;  (** rendered second-moment effect *)
    inflation : inflation;
  }

  (** A complete pushdown of the root sample to one leaf occurrence
      (all other leaves stay exact). *)
  type derivation = {
    occurrence : int;  (** 0-based left-to-right leaf index *)
    relation : string;
    steps : step list;  (** root-to-leaf rewrite trace *)
  }

  (** Whether any pushdown derivation exists (dedup-free, aggregate-free). *)
  val pushable : Expr.t -> bool

  (** All full pushdown derivations in leaf-occurrence order — a pure
      function of the expression shape, never of the data (the
      planner's determinism contract).  Empty iff [not (pushable e)]. *)
  val derivations : Expr.t -> derivation list

  val step_to_string : step -> string
  val derivation_to_string : derivation -> string
end

(** [optimize catalog e] rewrites [e] using schema information from
    [catalog] (needed to route predicates to sides).
    @raise Failure on ill-formed expressions (same as
    {!Expr.schema_of}). *)
val optimize : Catalog.t -> Expr.t -> Expr.t

(** Number of rewrite steps applied (0 means [e] was already normal). *)
val optimize_with_stats : Catalog.t -> Expr.t -> Expr.t * int
