/* Positioned reads and readahead hints for the pagefile reader.
 *
 * The OCaml Unix library exposes neither pread(2) nor posix_fadvise(2);
 * both matter here: pread lets concurrent page fetches share one file
 * descriptor without seek bookkeeping, and POSIX_FADV_WILLNEED lets the
 * reader hint a coalesced run of sampled pages to the kernel before the
 * copying read lands.  On platforms without posix_fadvise the hint
 * compiles to a no-op.
 */
#define _GNU_SOURCE

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

/* raestat_pread fd buf ofs len fileofs
 *
 * Reads up to len bytes at absolute file offset fileofs into buf at
 * ofs, retrying on EINTR and on short reads.  Returns the number of
 * bytes actually read (< len only at end of file).  Bounds are checked
 * by the OCaml caller.
 */
CAMLprim value raestat_pread(value vfd, value vbuf, value vofs, value vlen,
                             value vfileofs) {
  CAMLparam5(vfd, vbuf, vofs, vlen, vfileofs);
  long ofs = Long_val(vofs);
  long len = Long_val(vlen);
  long long fileofs = Int64_val(vfileofs);
  long total = 0;
  while (total < len) {
    ssize_t n = pread(Int_val(vfd), Bytes_val(vbuf) + ofs + total,
                      (size_t)(len - total), (off_t)(fileofs + total));
    if (n < 0) {
      if (errno == EINTR)
        continue;
      caml_failwith("Pagefile: pread failed");
    }
    if (n == 0)
      break; /* end of file */
    total += n;
  }
  CAMLreturn(Val_long(total));
}

/* raestat_fadvise_willneed fd fileofs len — advisory only, errors and
 * unsupported platforms are silently ignored. */
CAMLprim value raestat_fadvise_willneed(value vfd, value vfileofs, value vlen) {
#ifdef POSIX_FADV_WILLNEED
  (void)posix_fadvise(Int_val(vfd), (off_t)Int64_val(vfileofs),
                      (off_t)Long_val(vlen), POSIX_FADV_WILLNEED);
#else
  (void)vfd;
  (void)vfileofs;
  (void)vlen;
#endif
  return Val_unit;
}
