/* Positioned reads and readahead hints for the pagefile reader.
 *
 * The OCaml Unix library exposes neither pread(2) nor posix_fadvise(2);
 * both matter here: pread lets concurrent page fetches share one file
 * descriptor without seek bookkeeping, and POSIX_FADV_WILLNEED lets the
 * reader hint a coalesced run of sampled pages to the kernel before the
 * copying read lands.  On platforms without posix_fadvise the hint
 * compiles to a no-op.
 */
#define _GNU_SOURCE

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <unistd.h>

/* raestat_pread fd buf ofs len fileofs
 *
 * Reads up to len bytes at absolute file offset fileofs into buf at
 * ofs, retrying on EINTR and on short reads.  Returns the number of
 * bytes actually read (< len only at end of file).  Bounds are checked
 * by the OCaml caller.
 *
 * The read runs with the OCaml runtime lock released so the serve
 * daemon's other threads keep running while a page fetch blocks on
 * disk.  The kernel must not write into the OCaml heap while the lock
 * is down (the GC can move vbuf), so the read lands in a C staging
 * buffer and is copied out after the lock is reacquired.
 */
CAMLprim value raestat_pread(value vfd, value vbuf, value vofs, value vlen,
                             value vfileofs) {
  CAMLparam5(vfd, vbuf, vofs, vlen, vfileofs);
  int fd = Int_val(vfd);
  long ofs = Long_val(vofs);
  long len = Long_val(vlen);
  long long fileofs = Int64_val(vfileofs);
  long total = 0;
  int saved_errno = 0;
  char *staging = caml_stat_alloc((size_t)(len > 0 ? len : 1));
  caml_release_runtime_system();
  while (total < len) {
    ssize_t n = pread(fd, staging + total, (size_t)(len - total),
                      (off_t)(fileofs + total));
    if (n < 0) {
      if (errno == EINTR)
        continue;
      saved_errno = errno;
      break;
    }
    if (n == 0)
      break; /* end of file */
    total += n;
  }
  caml_acquire_runtime_system();
  if (saved_errno != 0) {
    char message[256];
    snprintf(message, sizeof message, "Pagefile: pread failed: %s",
             strerror(saved_errno));
    caml_stat_free(staging);
    caml_failwith(message);
  }
  memcpy(Bytes_val(vbuf) + ofs, staging, (size_t)total);
  caml_stat_free(staging);
  CAMLreturn(Val_long(total));
}

/* raestat_fadvise_willneed fd fileofs len — advisory only, errors and
 * unsupported platforms are silently ignored. */
CAMLprim value raestat_fadvise_willneed(value vfd, value vfileofs, value vlen) {
#ifdef POSIX_FADV_WILLNEED
  (void)posix_fadvise(Int_val(vfd), (off_t)Int64_val(vfileofs),
                      (off_t)Long_val(vlen), POSIX_FADV_WILLNEED);
#else
  (void)vfd;
  (void)vfileofs;
  (void)vlen;
#endif
  return Val_unit;
}
