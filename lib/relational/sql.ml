(* The clause structure is split by scanning for top-level keywords
   (outside string literals); clause bodies are parsed by small
   hand-rolled readers, with WHERE and ON conditions delegated to
   {!Parser.parse_predicate} — the predicate language is shared.

   Every reader knows the offset of its slice in the original query, so
   failures report "at offset N (line L)" in the same format as
   {!Parser.describe_error} — only the "Sql:" prefix differs. *)

let describe source message offset =
  let prefix = String.sub source 0 (min offset (String.length source)) in
  let line =
    1 + String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 prefix
  in
  Printf.sprintf "Sql: %s at offset %d (line %d) in %S" message offset line source

let fail_at source offset format =
  Printf.ksprintf (fun message -> failwith (describe source message offset)) format

(* ------------------------------------------------------- clause split *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* Trimmed substring of [text] over [lo, hi), paired with the offset of
   its first retained character — the anchor for error positions. *)
let trimmed_slice text lo hi =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi && is_space text.[!lo] do
    incr lo
  done;
  while !hi > !lo && is_space text.[!hi - 1] do
    decr hi
  done;
  (String.sub text !lo (!hi - !lo), !lo)

(* Positions of [keyword] at word boundaries, outside '...' literals. *)
let keyword_positions source keyword =
  let n = String.length source and k = String.length keyword in
  let positions = ref [] in
  let in_string = ref false in
  let i = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if c = '\'' then begin
      in_string := not !in_string;
      incr i
    end
    else if (not !in_string) && !i + k <= n
            && String.lowercase_ascii (String.sub source !i k) = keyword
            && (!i = 0 || not (is_word_char source.[!i - 1]))
            && (!i + k = n || not (is_word_char source.[!i + k]))
    then begin
      positions := !i :: !positions;
      i := !i + k
    end
    else incr i
  done;
  List.rev !positions

let single_position source keyword =
  match keyword_positions source keyword with
  | [] -> None
  | [ p ] -> Some p
  | _ :: second :: _ ->
    fail_at source second "multiple %s clauses (subqueries are not supported)"
      (String.uppercase_ascii keyword)

type clauses = {
  select : string * int;
  from : string * int;
  where : (string * int) option;
  group_by : (string * int) option;
}

let split_clauses source =
  let select_pos =
    match single_position source "select" with
    | Some 0 -> 0
    | Some _ | None -> fail_at source 0 "query must start with SELECT"
  in
  let from_pos =
    match single_position source "from" with
    | Some p -> p
    | None -> fail_at source (String.length source) "missing FROM clause"
  in
  let where_pos = single_position source "where" in
  let group_pos = single_position source "group" in
  (match group_pos with
  | Some p ->
    if keyword_positions (String.sub source p (String.length source - p)) "by" = []
    then fail_at source p "GROUP must be followed by BY"
  | None -> ());
  let end_of_query = String.length source in
  let where_end = Option.value group_pos ~default:end_of_query in
  let from_end = Option.value where_pos ~default:where_end in
  let group_by =
    Option.map
      (fun p ->
        (* Drop the leading "GROUP", then require and drop "BY". *)
        let body, body_pos = trimmed_slice source (p + 5) end_of_query in
        if String.length body < 2 || String.lowercase_ascii (String.sub body 0 2) <> "by"
        then fail_at source p "GROUP must be followed by BY";
        trimmed_slice source (body_pos + 2) end_of_query)
      group_pos
  in
  {
    select = trimmed_slice source (select_pos + 6) from_pos;
    from = trimmed_slice source (from_pos + 4) from_end;
    where = Option.map (fun p -> trimmed_slice source (p + 5) where_end) where_pos;
    group_by;
  }

(* ------------------------------------------------------- select items *)

type item =
  | Star
  | Attr of string
  | Agg of Expr.agg * string  (* function, output name *)

(* Split [text] at top-level commas; each part is trimmed and paired
   with [base] plus its offset within [text], i.e. its position in the
   original query. *)
let split_top_commas ~base text =
  let n = String.length text in
  let parts = ref [] in
  let start = ref 0 in
  let depth = ref 0 and in_string = ref false in
  let flush stop =
    let part, pos = trimmed_slice text !start stop in
    parts := (part, base + pos) :: !parts;
    start := stop + 1
  in
  String.iteri
    (fun i c ->
      if c = '\'' then in_string := not !in_string
      else if not !in_string then
        match c with
        | '(' -> incr depth
        | ')' -> decr depth
        | ',' when !depth = 0 -> flush i
        | _ -> ())
    text;
  flush n;
  List.rev !parts

let parse_agg_call ~source ~pos text =
  (* "func ( arg )" with optional trailing "as name". *)
  match String.index_opt text '(' with
  | None -> None
  | Some open_paren -> (
    let func = String.trim (String.sub text 0 open_paren) in
    match String.index_opt text ')' with
    | None -> fail_at source (pos + open_paren) "unbalanced parentheses in %S" text
    | Some close_paren ->
      let arg =
        String.trim (String.sub text (open_paren + 1) (close_paren - open_paren - 1))
      in
      let rest, rest_pos = trimmed_slice text (close_paren + 1) (String.length text) in
      let output =
        if rest = "" then None
        else begin
          let lower = String.lowercase_ascii rest in
          if String.length lower > 3 && String.sub lower 0 3 = "as " then
            Some (String.trim (String.sub rest 3 (String.length rest - 3)))
          else fail_at source (pos + rest_pos) "unexpected text %S after aggregate" rest
        end
      in
      let f =
        match (String.lowercase_ascii func, arg) with
        | "count", "*" -> Expr.Count
        | "count", a -> fail_at source pos "only COUNT(*) is supported, not COUNT(%s)" a
        | "sum", a -> Expr.Sum a
        | "avg", a -> Expr.Avg a
        | "min", a -> Expr.Min a
        | "max", a -> Expr.Max a
        | (f, _) -> fail_at source pos "unknown aggregate %S" f
      in
      let default =
        match f with
        | Expr.Count -> "count"
        | Expr.Sum a -> "sum_" ^ a
        | Expr.Avg a -> "avg_" ^ a
        | Expr.Min a -> "min_" ^ a
        | Expr.Max a -> "max_" ^ a
      in
      Some (Agg (f, Option.value output ~default)))

let parse_select_items ~source (text, base) =
  if text = "*" then (false, [ Star ])
  else begin
    let lower = String.lowercase_ascii text in
    let distinct, (body, base) =
      if String.length lower >= 9 && String.sub lower 0 9 = "distinct " then
        let body, pos = trimmed_slice text 9 (String.length text) in
        (true, (body, base + pos))
      else (false, (text, base))
    in
    let items =
      List.map
        (fun (part, pos) ->
          if part = "" then fail_at source pos "empty select item";
          if part = "*" then Star
          else
            match parse_agg_call ~source ~pos part with
            | Some item -> item
            | None ->
              if String.for_all (fun c -> is_word_char c || c = '.') part then Attr part
              else fail_at source pos "unsupported select item %S" part)
        (split_top_commas ~base body)
    in
    (distinct, items)
  end

(* --------------------------------------------------------- FROM clause *)

let parse_from ~source (text, base) =
  let join_positions = keyword_positions text "join" in
  if join_positions = [] then begin
    (* Comma-separated product list. *)
    let names = split_top_commas ~base text in
    match names with
    | [] -> fail_at source base "empty FROM clause"
    | (first, first_pos) :: rest ->
      let check (name, pos) =
        if name = "" || not (String.for_all (fun c -> is_word_char c || c = '.') name)
        then fail_at source pos "unsupported FROM item %S (aliases are not supported)" name
      in
      check (first, first_pos);
      List.iter check rest;
      List.fold_left
        (fun acc (name, _) -> Expr.Product (acc, Expr.Base name))
        (Expr.Base first) rest
  end
  else begin
    (* rel JOIN rel ON cond (JOIN rel ON cond)* *)
    let first, first_pos = trimmed_slice text 0 (List.hd join_positions) in
    if String.contains first ',' then
      fail_at source (base + first_pos)
        "mixing comma-lists and JOIN in FROM is not supported";
    let rec build acc = function
      | [] -> acc
      | join_pos :: rest ->
        let segment_end =
          match rest with next :: _ -> next | [] -> String.length text
        in
        let body, body_pos = trimmed_slice text (join_pos + 4) segment_end in
        let on_positions = keyword_positions body "on" in
        (match on_positions with
        | [] -> fail_at source (base + join_pos) "JOIN without ON"
        | on_pos :: _ ->
          let right_name = String.trim (String.sub body 0 on_pos) in
          let condition =
            String.trim (String.sub body (on_pos + 2) (String.length body - on_pos - 2))
          in
          if right_name = "" then
            fail_at source (base + body_pos) "JOIN missing right relation";
          let right = Expr.Base right_name in
          (* Without the catalog we cannot orient equality pairs, so a
             θ-join is emitted; {!Optimizer} rewrites equality θ-joins
             into correctly oriented equi-joins. *)
          let joined = Expr.Theta_join (Parser.parse_predicate condition, acc, right) in
          build joined rest)
    in
    build (Expr.Base first) join_positions
  end

(* ------------------------------------------------------------ assembly *)

let parse source =
  let clauses = split_clauses source in
  (* Reject constructs we do not support, with useful messages. *)
  List.iter
    (fun (keyword, what) ->
      match keyword_positions source keyword with
      | [] -> ()
      | pos :: _ -> fail_at source pos "%s is not supported" what)
    [ ("order", "ORDER BY"); ("having", "HAVING"); ("limit", "LIMIT") ];
  let from_expr = parse_from ~source clauses.from in
  let filtered =
    match clauses.where with
    | Some (text, _) -> Expr.Select (Parser.parse_predicate text, from_expr)
    | None -> from_expr
  in
  let distinct, items = parse_select_items ~source clauses.select in
  let select_pos = snd clauses.select in
  let group_attrs =
    Option.map
      (fun (text, base) ->
        List.map
          (fun (part, pos) ->
            if part = "" || not (String.for_all (fun c -> is_word_char c || c = '.') part)
            then fail_at source pos "bad GROUP BY attribute %S" part
            else part)
          (split_top_commas ~base text))
      clauses.group_by
  in
  let aggs = List.filter_map (function Agg (f, o) -> Some (f, o) | _ -> None) items in
  let plain = List.filter_map (function Attr a -> Some a | _ -> None) items in
  let has_star = List.exists (function Star -> true | _ -> false) items in
  match (group_attrs, aggs) with
  | Some group, _ when has_star ->
    ignore group;
    fail_at source select_pos "SELECT * with GROUP BY"
  | Some group, [] ->
    (* Pure grouping: distinct projection onto the group attributes. *)
    List.iter
      (fun a ->
        if not (List.mem a group) then
          fail_at source select_pos "select item %S is not in GROUP BY" a)
      plain;
    Expr.Distinct (Expr.Project (group, filtered))
  | Some group, aggs ->
    List.iter
      (fun a ->
        if not (List.mem a group) then
          fail_at source select_pos "select item %S is not in GROUP BY" a)
      plain;
    Expr.Aggregate (group, aggs, filtered)
  | None, [] ->
    if has_star then
      if distinct then Expr.Distinct filtered else filtered
    else if plain = [] then fail_at source select_pos "empty select list"
    else if distinct then Expr.Distinct (Expr.Project (plain, filtered))
    else Expr.Project (plain, filtered)
  | None, aggs ->
    if plain <> [] then
      fail_at source select_pos "mixing attributes and aggregates needs GROUP BY";
    Expr.Aggregate ([], aggs, filtered)

let parse_optimized catalog source = Optimizer.optimize catalog (parse source)

let count_star_target = function
  | Expr.Aggregate ([], [ (Expr.Count, _) ], inner) -> Some inner
  | _ -> None
