(** Columnar storage: a relation re-encoded as per-attribute unboxed
    arrays so hot kernels (selection counts, join key extraction) can
    scan at memory bandwidth instead of paying a boxed-variant dispatch
    per attribute access.

    Encoding, per declared attribute type:
    - [Tint]   → [int array] plus an optional null bitset;
    - [Tfloat] → a float64 {!Bigarray.Array1} plus an optional null bitset;
    - [Tbool]  → a value bitset plus an optional null bitset;
    - [Tstr]   → dictionary codes ([int array], first-occurrence order,
      [-1] = NULL) with the decode array and an encode hashtable;
    - [Tnull], or any column containing a value whose constructor does
      not match the declared type (possible via the unchecked
      [Relation.of_array]) → [Generic], the boxed [Value.t array].

    Columns are encoded lazily: building a view costs O(arity), and
    each column is encoded on first touch, so a join pays only for its
    key columns and a predicate only for the attributes it mentions.
    The per-column memoization is the only mutation and it is
    idempotent, so a racing encode under domains is benign. *)

(** Whether columnar execution is enabled for this process.  Reads
    [RAESTAT_NO_COLUMNAR] once at startup; values [1]/[true]/[yes]/[on]
    disable it.  Callers combine this with their own [?columnar]
    parameter. *)
val enabled : unit -> bool

(** Packed bitsets, [Sys.int_size] bits per word. *)
module Bitset : sig
  type t

  val create : int -> t
  val length : t -> int
  val set : t -> int -> unit
  val get : t -> int -> bool

  (** Number of set bits. *)
  val count : t -> int
end

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type col =
  | Ints of { data : int array; nulls : Bitset.t option }
  | Floats of { data : floats; nulls : Bitset.t option }
  | Bools of { data : Bitset.t; nulls : Bitset.t option }
  | Dict of {
      codes : int array;  (** [-1] encodes NULL. *)
      dict : string array;  (** code → string, first-occurrence order. *)
      lookup : (string, int) Hashtbl.t;  (** string → code. *)
      has_null : bool;
    }
  | Generic of Value.t array

type t

val schema : t -> Schema.t

(** Number of rows. *)
val length : t -> int

(** Column [j], by schema position; encodes it on first touch. *)
val col : t -> int -> col

(** Wrap a row-major tuple array.  O(arity): no column is encoded until
    touched.  The array must not be mutated afterwards (relations are
    immutable once built). *)
val of_tuples : Schema.t -> Tuple.t array -> t

(** Decode back to row-major form; [of_tuples s ts |> to_tuples]
    rebuilds tuples equal to [ts]. *)
val to_tuples : t -> Tuple.t array

(** [value t i j] is the boxed value at row [i], column [j]. *)
val value : t -> int -> int -> Value.t

(** Boxed view of column [j], memoized — repeated calls return the same
    array, so callers must not mutate it. *)
val values : t -> int -> Value.t array

(** [iter_int t j f] applies [f] to every element of column [j] without
    allocating, provided the column is stored as null-free ints; returns
    [false] (without calling [f]) otherwise. *)
val iter_int : t -> int -> (int -> unit) -> bool

(** Float counterpart of {!iter_int} for null-free float64 columns. *)
val iter_float : t -> int -> (float -> unit) -> bool
