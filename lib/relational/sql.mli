(** SQL front-end: a practical subset of SELECT translated to
    relational algebra.

    Supported shape (keywords case-insensitive):

    {v
    SELECT   * | COUNT( * ) | [DISTINCT] item, ...
    FROM     rel (, rel)* | rel (JOIN rel ON cond)*
    [WHERE   predicate]
    [GROUP BY attr, ...]
    v}

    - select items: attribute names and aggregates
      [COUNT( * ) | SUM(a) | AVG(a) | MIN(a) | MAX(a)], each with an
      optional [AS name];
    - comma-separated FROM lists become products; [JOIN ... ON]
      becomes an equi-join when the condition is a conjunction of
      equalities between the two sides, a θ-join otherwise;
    - WHERE uses the same predicate language as {!Parser}
      ([AND]/[OR]/[NOT]/[BETWEEN]/[IN], arithmetic, ['strings']);
    - with GROUP BY, plain select items must be group-by attributes;
      without aggregates, [SELECT DISTINCT]/[GROUP BY] become
      duplicate-eliminating projections.

    Not supported (rejected with [Failure]): subqueries, ORDER BY,
    HAVING, LIMIT, table aliases, and expression select items. *)

(** Translate a SQL query to algebra.
    @raise Failure with a descriptive message on unsupported or
    malformed SQL, carrying source-position context in the same format
    as {!Parser.describe_error}:
    ["Sql: <message> at offset <n> (line <l>) in <query>"]. *)
val parse : string -> Expr.t

(** {!parse} followed by {!Optimizer.optimize} (join recognition,
    selection pushdown — turns [FROM a, b WHERE a.x = b.y] plans into
    joins). *)
val parse_optimized : Catalog.t -> string -> Expr.t

(** For a global [SELECT COUNT( * ) ...] query (an ungrouped
    count-only aggregate at the top), the expression whose {e
    cardinality} the user is asking about — the right target for the
    COUNT estimators.  [None] for any other query shape. *)
val count_star_target : Expr.t -> Expr.t option
