(** Binary on-disk columnar relation storage ([.raf] pagefiles).

    The 1988 cost model charges estimators per page fetched; this module
    makes that cost physical.  A pagefile stores a relation as a run of
    fixed-capacity pages, each holding per-attribute segments:

    - a null bitset per attribute (one bit per row),
    - unboxed little-endian data: [int] and [float] as 8 bytes per row,
      [bool] as a bitset, [string] as 4-byte codes into a file-level
      dictionary ([null]-typed columns carry no data segment).

    A footer holds the schema, the string dictionary, the page directory
    (offset/length/rows per page), the cardinality and the page
    capacity; the file ends with an 8-byte footer offset plus magic so a
    reader can locate the footer without scanning.  Opening a file reads
    only the footer — pages are fetched on demand with [pread(2)].

    {2 Reader I/O discipline}

    {!read_pages} serves each requested page from a small bounded page
    cache (clock eviction) when possible; the missing pages are sorted,
    coalesced into maximal adjacent runs (capped at a fixed batch size)
    and each run is fetched with a single positioned read, preceded by a
    [posix_fadvise(WILLNEED)] hint where the platform supports it.  The
    [metrics] sink records {e real} I/O only: [pages_read]/[bytes_read]
    count pages fetched from disk, [io_batches] counts read syscalls,
    and cache-served pages count under [page_cache_hits].

    {2 Errors}

    All format violations raise [Failure] with a ["Pagefile: ..."]
    message (the CLI maps these to the [raestat: error:] / exit-3
    contract); opening a missing file raises [Sys_error] like the CSV
    loader. *)

(** {1 Writing} *)

(** Default tuples per page (256). *)
val default_page_capacity : int

(** [write_relation ?page_capacity path relation] encodes an in-memory
    relation.  The write is atomic: bytes stream to [path ^ ".tmp"],
    renamed over [path] only on success, so a failure never leaves a
    partial pagefile behind.
    @raise Invalid_argument if [page_capacity <= 0]. *)
val write_relation : ?page_capacity:int -> string -> Relation.t -> unit

(** [pack_csv ?page_capacity ~src ~dst] streams a CSV file into a
    pagefile without materializing the relation (memory is bounded by
    one page buffer plus the string dictionary).  Returns the number of
    tuples written.  Errors from the CSV layer propagate unchanged.
    Atomic like {!write_relation}: on failure [dst] is untouched and
    the [dst ^ ".tmp"] staging file is removed. *)
val pack_csv : ?page_capacity:int -> src:string -> dst:string -> unit -> int

(** {1 Reading} *)

type t

(** [openfile ?cache_pages path] validates the header and trailer and
    loads the footer; no page data is read.  [cache_pages] bounds the
    page cache (default 64 pages).
    @raise Failure on bad magic, unsupported version or truncation.
    @raise Sys_error if the file cannot be opened. *)
val openfile : ?cache_pages:int -> string -> t

val close : t -> unit

val path : t -> string

val schema : t -> Schema.t

val cardinality : t -> int

val page_count : t -> int

val page_capacity : t -> int

(** Number of tuples on page [i].
    @raise Invalid_argument if [i] is out of range. *)
val page_rows : t -> int -> int

(** Total bytes of page data (excludes header/footer): what a full
    materialization must fetch. *)
val data_bytes : t -> int

(** [read_pages ?metrics t indices ~f] decodes each requested page and
    passes it to [f page_index tuples], in increasing page order
    (duplicates visited once).  The tuple arrays are fresh unless served
    from the cache — treat them as read-only.
    @raise Invalid_argument if an index is out of range. *)
val read_pages :
  ?metrics:Obs.Metrics.t -> t -> int array -> f:(int -> Tuple.t array -> unit) -> unit

(** Parsed [RAESTAT_MEMORY_CAP] (bytes), if set and a positive
    integer. *)
val memory_cap : unit -> int option

(** Full materialization through {!read_pages} (so the exact baseline
    pays the real page I/O).
    @raise Failure when [RAESTAT_MEMORY_CAP] is set and {!data_bytes}
    exceeds it: out-of-core datasets must use page sampling instead. *)
val to_relation : ?metrics:Obs.Metrics.t -> t -> Relation.t
