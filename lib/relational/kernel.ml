(* Compiled predicate / join kernels over columnar views.

   Every closure produced here must decide exactly like the row path:
   [compile view p] agrees with [Predicate.compile (Column.schema view) p]
   on every row, and the join code spaces agree with [Tuple.equal] on
   key tuples (so Null keys match Null keys and dictionary codes match
   exactly the string equalities).  The property tests in
   test/test_columnar.ml pin this contract. *)

(* Local copy of [Predicate.cmp_holds] (not exported there). *)
let cmp_holds cmp c =
  match (cmp : Predicate.cmp) with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* [cmp_holds cmp (compare k v) = cmp_holds (flip cmp) (compare v k)]:
   lets Const-vs-Attr reuse the Attr-vs-Const fast path. *)
let flip = function
  | (Predicate.Eq | Neq) as cmp -> cmp
  | Lt -> Predicate.Gt
  | Le -> Predicate.Ge
  | Gt -> Predicate.Lt
  | Ge -> Predicate.Le

let int_test cmp c =
  match (cmp : Predicate.cmp) with
  | Eq -> fun v -> v = c
  | Neq -> fun v -> v <> c
  | Lt -> fun v -> v < c
  | Le -> fun v -> v <= c
  | Gt -> fun v -> v > c
  | Ge -> fun v -> v >= c

(* Tests [cmp_holds cmp (Float.compare v c)].  Float.compare is a total
   order with NaN equal to itself and below every other float, so the
   primitive comparisons need a NaN patch on the Lt/Le side. *)
let float_test cmp c =
  if Float.is_nan c then
    match (cmp : Predicate.cmp) with
    | Eq | Le -> Float.is_nan
    | Neq | Gt -> fun v -> not (Float.is_nan v)
    | Lt -> fun _ -> false
    | Ge -> fun _ -> true
  else
    match (cmp : Predicate.cmp) with
    | Eq -> fun v -> v = c
    | Neq -> fun v -> v <> c
    | Lt -> fun v -> v < c || Float.is_nan v
    | Le -> fun v -> v <= c || Float.is_nan v
    | Gt -> fun v -> v > c
    | Ge -> fun v -> v >= c

let guard_nulls nulls base =
  match nulls with
  | None -> base
  | Some ns -> fun i -> (not (Column.Bitset.get ns i)) && base i

(* Attr-vs-Const over one typed column.  [k] is non-Null here. *)
let compile_attr_const view j cmp k =
  match Column.col view j, (k : Value.t) with
  | _, Value.Null -> fun _ -> false
  | Column.Ints { data; nulls }, Value.Int c ->
    let test = int_test cmp c in
    guard_nulls nulls (fun i -> test (Array.unsafe_get data i))
  | Column.Ints { data; nulls }, Value.Float c ->
    let test = float_test cmp c in
    guard_nulls nulls (fun i -> test (float_of_int (Array.unsafe_get data i)))
  | Column.Ints { data = _; nulls }, Value.Str _ ->
    (* rank Int < rank Str: the comparison is a compile-time constant
       that applies to every non-null row. *)
    if cmp_holds cmp (-1) then guard_nulls nulls (fun _ -> true) else fun _ -> false
  | Column.Ints { data = _; nulls }, Value.Bool _ ->
    if cmp_holds cmp 1 then guard_nulls nulls (fun _ -> true) else fun _ -> false
  | Column.Floats { data; nulls }, Value.Int c ->
    let test = float_test cmp (float_of_int c) in
    guard_nulls nulls (fun i -> test (Bigarray.Array1.unsafe_get data i))
  | Column.Floats { data; nulls }, Value.Float c ->
    let test = float_test cmp c in
    guard_nulls nulls (fun i -> test (Bigarray.Array1.unsafe_get data i))
  | Column.Floats { data = _; nulls }, Value.Str _ ->
    if cmp_holds cmp (-1) then guard_nulls nulls (fun _ -> true) else fun _ -> false
  | Column.Floats { data = _; nulls }, Value.Bool _ ->
    if cmp_holds cmp 1 then guard_nulls nulls (fun _ -> true) else fun _ -> false
  | Column.Dict { codes; dict; _ }, Value.Str s ->
    (* Precompute the verdict per dictionary entry: the scan then tests
       one byte per row regardless of string lengths. *)
    let pass = Array.map (fun entry -> cmp_holds cmp (String.compare entry s)) dict in
    fun i ->
      let code = Array.unsafe_get codes i in
      code >= 0 && Array.unsafe_get pass code
  | Column.Dict { codes; _ }, (Value.Int _ | Value.Float _ | Value.Bool _) ->
    (* rank Str > every other non-null rank. *)
    if cmp_holds cmp 1 then fun i -> Array.unsafe_get codes i >= 0 else fun _ -> false
  | Column.Bools { data; nulls }, Value.Bool b ->
    let pass_false = cmp_holds cmp (Bool.compare false b) in
    let pass_true = cmp_holds cmp (Bool.compare true b) in
    guard_nulls nulls (fun i ->
        if Column.Bitset.get data i then pass_true else pass_false)
  | Column.Bools { data = _; nulls }, (Value.Int _ | Value.Float _ | Value.Str _) ->
    if cmp_holds cmp (-1) then guard_nulls nulls (fun _ -> true) else fun _ -> false
  | Column.Generic vs, k ->
    fun i ->
      (match Array.unsafe_get vs i with
      | Value.Null -> false
      | v -> cmp_holds cmp (Value.compare v k))

(* Generic term evaluation over boxed column views — mirrors
   [Predicate.compile_term] (None = Null). *)
let rec term_eval view = function
  | Predicate.Attr name ->
    let j = Schema.index_of (Column.schema view) name in
    let vs = Column.values view j in
    fun i -> (match Array.unsafe_get vs i with Value.Null -> None | v -> Some v)
  | Predicate.Const Value.Null -> fun _ -> None
  | Predicate.Const v -> fun _ -> Some v
  | Predicate.Add (t1, t2) -> arith view ( +. ) t1 t2
  | Predicate.Sub (t1, t2) -> arith view ( -. ) t1 t2
  | Predicate.Mul (t1, t2) -> arith view ( *. ) t1 t2
  | Predicate.Div (t1, t2) -> arith view ( /. ) t1 t2

and arith view op t1 t2 =
  let f1 = term_eval view t1 and f2 = term_eval view t2 in
  fun i ->
    match f1 i, f2 i with
    | Some v1, Some v2 -> Some (Value.Float (op (Value.to_float v1) (Value.to_float v2)))
    | None, _ | _, None -> None

let rec compile view (p : Predicate.t) =
  match p with
  | Predicate.True -> fun _ -> true
  | Predicate.False -> fun _ -> false
  | Predicate.Cmp (cmp, Predicate.Attr name, Predicate.Const k) ->
    compile_attr_const view (Schema.index_of (Column.schema view) name) cmp k
  | Predicate.Cmp (cmp, Predicate.Const k, Predicate.Attr name) ->
    compile_attr_const view (Schema.index_of (Column.schema view) name) (flip cmp) k
  | Predicate.Cmp (cmp, t1, t2) ->
    let f1 = term_eval view t1 and f2 = term_eval view t2 in
    fun i ->
      (match f1 i, f2 i with
      | Some v1, Some v2 -> cmp_holds cmp (Value.compare v1 v2)
      | None, _ | _, None -> false)
  | Predicate.Between (t, lo, hi) -> (
    (* lo <= v && v <= hi under Value.compare.  Null bounds collapse at
       compile time (Null is below every value), but the term must still
       be resolved so unknown attributes raise like the row path. *)
    match lo, hi with
    | _, Value.Null ->
      let _resolved = term_eval view t in
      fun _ -> false
    | Value.Null, hi -> compile view (Predicate.Cmp (Predicate.Le, t, Predicate.Const hi))
    | lo, hi ->
      compile view
        (Predicate.And
           ( Predicate.Cmp (Predicate.Ge, t, Predicate.Const lo),
             Predicate.Cmp (Predicate.Le, t, Predicate.Const hi) )))
  | Predicate.In (t, []) ->
    let _resolved = term_eval view t in
    fun _ -> false
  | Predicate.In (t, vs) ->
    compile view
      (List.fold_left
         (fun acc v -> Predicate.Or (acc, Predicate.Cmp (Predicate.Eq, t, Predicate.Const v)))
         (Predicate.Cmp (Predicate.Eq, t, Predicate.Const (List.hd vs)))
         (List.tl vs))
  | Predicate.And (p1, p2) ->
    let f1 = compile view p1 and f2 = compile view p2 in
    fun i -> f1 i && f2 i
  | Predicate.Or (p1, p2) ->
    let f1 = compile view p1 and f2 = compile view p2 in
    fun i -> f1 i || f2 i
  | Predicate.Not p ->
    let f = compile view p in
    fun i -> not (f i)

let count view p =
  let pred = compile view p in
  let hits = ref 0 in
  for i = 0 to Column.length view - 1 do
    if pred i then incr hits
  done;
  !hits

let count_indices view p indices =
  let pred = compile view p in
  let hits = ref 0 in
  Array.iter (fun i -> if pred i then incr hits) indices;
  !hits

let filter_indices view p =
  let pred = compile view p in
  let n = Column.length view in
  (* Two cheap passes beat accumulating a list: the compiled predicate
     is branch-predictable and the output is exactly sized. *)
  let hits = ref 0 in
  for i = 0 to n - 1 do
    if pred i then incr hits
  done;
  let out = Array.make !hits 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if pred i then begin
      Array.unsafe_set out !k i;
      incr k
    end
  done;
  out

(* --- equijoin key codes ---------------------------------------------- *)

let join_codes l jl r jr =
  match Column.col l jl, Column.col r jr with
  | Column.Ints { data = dl; nulls = None }, Column.Ints { data = dr; nulls = None } ->
    (* Raw ints are their own codes.  A null on either side has no int
       sentinel available, so those relations take the row path. *)
    Some (dl, dr)
  | ( Column.Dict { codes = lcodes; dict = ldict; _ },
      Column.Dict { codes = rcodes; lookup = rlookup; _ } ) ->
    (* Remap left codes into the right dictionary.  -1 (Null) maps to
       -1, so Null keys match Null keys exactly as Tuple.equal does;
       strings absent from the right get -2, which never appears in
       right codes. *)
    let remap =
      Array.map
        (fun s -> match Hashtbl.find_opt rlookup s with Some c -> c | None -> -2)
        ldict
    in
    let left =
      Array.map (fun c -> if c < 0 then -1 else Array.unsafe_get remap c) lcodes
    in
    Some (left, rcodes)
  | (Column.Ints _ | Column.Floats _ | Column.Bools _ | Column.Dict _ | Column.Generic _), _
    ->
    None

let build_counts codes =
  let table = Hashtbl.create (max 16 (Array.length codes)) in
  Array.iter
    (fun k ->
      match Hashtbl.find_opt table k with
      | Some n -> Hashtbl.replace table k (n + 1)
      | None -> Hashtbl.add table k 1)
    codes;
  table

let equijoin_count ?(metrics = Obs.Metrics.noop) l jl r jr =
  match join_codes l jl r jr with
  | None -> None
  | Some (kl, kr) ->
    let table = build_counts kr in
    let total = ref 0 in
    (* Same probe accounting as the row join: one hit or miss per left
       tuple. *)
    Array.iter
      (fun k ->
        match Hashtbl.find_opt table k with
        | Some n ->
          Obs.Metrics.probe_hit metrics;
          total := !total + n
        | None -> Obs.Metrics.probe_miss metrics)
      kl;
    Some !total

let equijoin_iter ?(metrics = Obs.Metrics.noop) l jl r jr ~f =
  match join_codes l jl r jr with
  | None -> false
  | Some (kl, kr) ->
    let table = Hashtbl.create (max 16 (Array.length kr)) in
    Array.iteri
      (fun i k ->
        let bucket = try Hashtbl.find table k with Not_found -> [] in
        Hashtbl.replace table k (i :: bucket))
      kr;
    (* Buckets accumulate reversed; restore build order once so the
       output matches the row join tuple-for-tuple (left-major, right
       build order within a bucket). *)
    Hashtbl.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) table;
    Array.iteri
      (fun li k ->
        match Hashtbl.find_opt table k with
        | None -> Obs.Metrics.probe_miss metrics
        | Some bucket ->
          Obs.Metrics.probe_hit metrics;
          List.iter (fun ri -> f li ri) bucket)
      kl;
    true

(* --- distinct -------------------------------------------------------- *)

(* Canonical per-column int codes: within one column, codes are equal
   iff the values are Tuple-equal (Value.compare = 0).  Codes from
   different columns are never compared, so each column may use its own
   code space. *)
let is_null_at nulls i =
  match nulls with None -> false | Some ns -> Column.Bitset.get ns i

let canon_codes view j =
  let n = Column.length view in
  match Column.col view j with
  | Column.Ints { data; nulls = None } -> Some data
  | Column.Ints { data; nulls = Some ns } ->
    (* Densify so Null gets a code no int can collide with. *)
    let tbl = Hashtbl.create 64 in
    let next = ref 0 in
    Some
      (Array.init n (fun i ->
           if Column.Bitset.get ns i then -1
           else
             let v = Array.unsafe_get data i in
             match Hashtbl.find_opt tbl v with
             | Some c -> c
             | None ->
               let c = !next in
               incr next;
               Hashtbl.add tbl v c;
               c))
  | Column.Floats { data; nulls } ->
    (* Float.compare equates -0. with 0. and NaN with NaN, so both are
       canonicalized before taking bits. *)
    let tbl = Hashtbl.create 64 in
    let next = ref 0 in
    Some
      (Array.init n (fun i ->
           if is_null_at nulls i then -1
           else
             let v = Bigarray.Array1.unsafe_get data i in
             let v = if v = 0. then 0. else if Float.is_nan v then Float.nan else v in
             let bits = Int64.bits_of_float v in
             match Hashtbl.find_opt tbl bits with
             | Some c -> c
             | None ->
               let c = !next in
               incr next;
               Hashtbl.add tbl bits c;
               c))
  | Column.Bools { data; nulls } ->
    Some
      (Array.init n (fun i ->
           if is_null_at nulls i then -1 else if Column.Bitset.get data i then 1 else 0))
  | Column.Dict { codes; _ } -> Some codes
  | Column.Generic _ -> None

let distinct_indices view =
  let n = Column.length view in
  let arity = Schema.arity (Column.schema view) in
  let rec collect j acc =
    if j < 0 then Some acc
    else
      match canon_codes view j with
      | Some codes -> collect (j - 1) (codes :: acc)
      | None -> None
  in
  match collect (arity - 1) [] with
  | None -> None
  | Some cols ->
    let cols = Array.of_list cols in
    (* int array keys: polymorphic hash/equality are exact on them. *)
    let seen = Hashtbl.create (max 16 n) in
    let keep = ref [] in
    let kept = ref 0 in
    for i = 0 to n - 1 do
      let key = Array.map (fun codes -> Array.unsafe_get codes i) cols in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        keep := i :: !keep;
        incr kept
      end
    done;
    let out = Array.make !kept 0 in
    List.iteri (fun k i -> out.(!kept - 1 - k) <- i) !keep;
    Some out
