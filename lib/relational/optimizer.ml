let attrs_within schema attrs = List.for_all (Schema.mem schema) attrs

(* One bottom-up pass; [changed] records whether any rule fired. *)
let rec pass catalog changed expr =
  let expr = rewrite_children catalog changed expr in
  apply_rules catalog changed expr

and rewrite_children catalog changed = function
  | Expr.Base _ as e -> e
  | Expr.Select (p, e) -> Expr.Select (p, pass catalog changed e)
  | Expr.Project (names, e) -> Expr.Project (names, pass catalog changed e)
  | Expr.Distinct e -> Expr.Distinct (pass catalog changed e)
  | Expr.Rename (pairs, e) -> Expr.Rename (pairs, pass catalog changed e)
  | Expr.Aggregate (by, specs, e) -> Expr.Aggregate (by, specs, pass catalog changed e)
  | Expr.Product (l, r) -> Expr.Product (pass catalog changed l, pass catalog changed r)
  | Expr.Equijoin (pairs, l, r) ->
    Expr.Equijoin (pairs, pass catalog changed l, pass catalog changed r)
  | Expr.Theta_join (p, l, r) ->
    Expr.Theta_join (p, pass catalog changed l, pass catalog changed r)
  | Expr.Union (l, r) -> Expr.Union (pass catalog changed l, pass catalog changed r)
  | Expr.Inter (l, r) -> Expr.Inter (pass catalog changed l, pass catalog changed r)
  | Expr.Diff (l, r) -> Expr.Diff (pass catalog changed l, pass catalog changed r)

and apply_rules catalog changed expr =
  let fired e =
    changed := true;
    e
  in
  match expr with
  (* σ_true(e) = e. *)
  | Expr.Select (Predicate.True, e) -> fired e
  (* Conjunction splitting enables independent pushdown of each leg. *)
  | Expr.Select (Predicate.And (p, q), e) ->
    fired (Expr.Select (p, Expr.Select (q, e)))
  (* Join recognition over a product. *)
  | Expr.Select
      ((Predicate.Cmp (Predicate.Eq, Predicate.Attr a, Predicate.Attr b) as p),
       Expr.Product (l, r)) -> (
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    match (Schema.mem sl a, Schema.mem sr b, Schema.mem sl b, Schema.mem sr a) with
    | true, true, _, _ -> fired (Expr.Equijoin ([ (a, b) ], l, r))
    | _, _, true, true -> fired (Expr.Equijoin ([ (b, a) ], l, r))
    | _ -> push_select catalog changed p (Expr.Product (l, r)))
  (* Extra equality conjunct merging into an existing equi-join. *)
  | Expr.Select
      ((Predicate.Cmp (Predicate.Eq, Predicate.Attr a, Predicate.Attr b) as p),
       Expr.Equijoin (pairs, l, r)) -> (
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    match (Schema.mem sl a, Schema.mem sr b, Schema.mem sl b, Schema.mem sr a) with
    | true, true, _, _ -> fired (Expr.Equijoin (pairs @ [ (a, b) ], l, r))
    | _, _, true, true -> fired (Expr.Equijoin (pairs @ [ (b, a) ], l, r))
    | _ -> push_select catalog changed p (Expr.Equijoin (pairs, l, r)))
  | Expr.Select (p, inner) -> push_select catalog changed p inner
  (* θ-joins whose predicate could be (partly) an equality become a
     selection over a product, where conjunction splitting and join
     recognition take over. *)
  | Expr.Theta_join ((Predicate.And _ | Predicate.Cmp (Predicate.Eq, Predicate.Attr _, Predicate.Attr _)) as p, l, r)
    ->
    fired (Expr.Select (p, Expr.Product (l, r)))
  (* Distinct collapses over anything already duplicate-free. *)
  | Expr.Distinct (Expr.Distinct e) -> fired (Expr.Distinct e)
  | Expr.Distinct ((Expr.Union _ | Expr.Inter _ | Expr.Diff _) as e) -> fired e
  | e -> e

and push_select catalog changed p inner =
  let fired e =
    changed := true;
    e
  in
  let attrs = Predicate.attributes p in
  match inner with
  | Expr.Product (l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs then fired (Expr.Product (Expr.Select (p, l), r))
    else if attrs_within sr attrs then fired (Expr.Product (l, Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Equijoin (pairs, l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs then fired (Expr.Equijoin (pairs, Expr.Select (p, l), r))
    else if attrs_within sr attrs then
      fired (Expr.Equijoin (pairs, l, Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Theta_join (q, l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs then fired (Expr.Theta_join (q, Expr.Select (p, l), r))
    else if attrs_within sr attrs then
      fired (Expr.Theta_join (q, l, Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Union (l, r) ->
    (* Union-compatibility is positional: both children must expose the
       predicate's attribute names for the pushdown to type-check. *)
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs && attrs_within sr attrs then
      fired (Expr.Union (Expr.Select (p, l), Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Inter (l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs && attrs_within sr attrs then
      fired (Expr.Inter (Expr.Select (p, l), Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Diff (l, r) ->
    (* σ_p(A − B) = σ_p(A) − B; the right side needs no filter. *)
    let sl = Expr.schema_of catalog l in
    if attrs_within sl attrs then fired (Expr.Diff (Expr.Select (p, l), r))
    else Expr.Select (p, inner)
  | _ -> Expr.Select (p, inner)

(* ------------------------------------------------------------------ *)
(* Sampling pushdown (GUS semantics)

   A sampling operator Sample_q — Bernoulli(q) thinning or its SRSWOR
   n-of-N analogue — placed at the root of a dedup-free bag expression
   commutes downward:

     Sample_q (σ_p e)        =  σ_p (Sample_q e)         [exact]
     Sample_q (π_A e)        =  π_A (Sample_q e)         [exact, bag π]
     Sample_q (l ⋈ r)        =  (Sample_q l) ⋈ r         [unbiased]

   Every step preserves E[count] = q · |e| (each result tuple still
   survives with probability exactly q: below a join, a result tuple
   survives iff its unique constituent tuple on the sampled side
   does), so scaling by 1/q per sampled leaf stays unbiased.  The
   *second* moment is not invariant: pushing below a join correlates
   result tuples that share a constituent on the sampled side, adding
   the cross-pair term (SS_side − J)(1/q − 1) to the estimator
   variance, where J is the true count and SS_side = Σ_x c(x)² sums
   the squared per-tuple contributions on the retained side.  A full
   derivation down to leaf j therefore has analytic variance
   SS_j · (1/q − 1), which the planner prices with data statistics.

   Blocked: any duplicate-eliminating operator ([Distinct], set ops)
   or [Aggregate] anywhere in the expression — thinning does not
   commute with dedup semantics (PODS'88 §4), so those expressions
   keep root sampling. *)

module Sampling_pushdown = struct
  type rate =
    | Srswor of { n : int; population : int }
    | Bernoulli of float

  type inflation =
    | Exact_commute
    | Cross_pair of [ `Left | `Right ]

  type step = {
    rule : string;
    at : string;
    moment : string;
    inflation : inflation;
  }

  type derivation = {
    occurrence : int;
    relation : string;
    steps : step list;
  }

  let rec blocked = function
    | Expr.Base _ -> false
    | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Rename (_, e) ->
      blocked e
    | Expr.Product (l, r) | Expr.Equijoin (_, l, r) | Expr.Theta_join (_, l, r)
      ->
      blocked l || blocked r
    | Expr.Distinct _ | Expr.Union _ | Expr.Inter _ | Expr.Diff _
    | Expr.Aggregate _ ->
      true

  let pushable expr = not (blocked expr)

  let commute rule at = { rule; at; moment = "unchanged"; inflation = Exact_commute }

  let below_join at side =
    {
      rule =
        (match side with
        | `Left -> "sample-below-join-left"
        | `Right -> "sample-below-join-right");
      at;
      moment = "+(SS-J)(1/q-1)";
      inflation = Cross_pair side;
    }

  let join_at op pairs =
    match pairs with
    | [] -> op
    | pairs ->
      Printf.sprintf "%s[%s]" op
        (String.concat ", "
           (List.map (fun (a, b) -> Printf.sprintf "%s=%s" a b) pairs))

  (* All full pushdown derivations, one per leaf occurrence, in
     left-to-right leaf-occurrence order (the planner's determinism
     contract: candidate enumeration order never depends on data). *)
  let derivations expr =
    if blocked expr then []
    else begin
      let acc = ref [] in
      let rec walk expr occurrence steps_rev =
        match expr with
        | Expr.Base relation ->
          acc := { occurrence; relation; steps = List.rev steps_rev } :: !acc;
          occurrence + 1
        | Expr.Select (p, e) ->
          walk e occurrence
            (commute "sample-commutes-select"
               (Printf.sprintf "select[%s]" (Predicate.to_string p))
            :: steps_rev)
        | Expr.Project (attrs, e) ->
          walk e occurrence
            (commute "sample-commutes-project"
               (Printf.sprintf "project[%s]" (String.concat ", " attrs))
            :: steps_rev)
        | Expr.Rename (pairs, e) ->
          walk e occurrence
            (commute "sample-commutes-rename"
               (Printf.sprintf "rename[%s]"
                  (String.concat ", "
                     (List.map (fun (a, b) -> a ^ "->" ^ b) pairs)))
            :: steps_rev)
        | Expr.Product (l, r) ->
          let occurrence =
            walk l occurrence (below_join "product" `Left :: steps_rev)
          in
          walk r occurrence (below_join "product" `Right :: steps_rev)
        | Expr.Equijoin (pairs, l, r) ->
          let at = join_at "equijoin" pairs in
          let occurrence = walk l occurrence (below_join at `Left :: steps_rev) in
          walk r occurrence (below_join at `Right :: steps_rev)
        | Expr.Theta_join (p, l, r) ->
          let at =
            Printf.sprintf "theta-join[%s]" (Predicate.to_string p)
          in
          let occurrence = walk l occurrence (below_join at `Left :: steps_rev) in
          walk r occurrence (below_join at `Right :: steps_rev)
        | Expr.Distinct _ | Expr.Union _ | Expr.Inter _ | Expr.Diff _
        | Expr.Aggregate _ ->
          assert false
      in
      ignore (walk expr 0 []);
      List.rev !acc
    end

  let step_to_string step = Printf.sprintf "%s @ %s: %s" step.rule step.at step.moment

  let derivation_to_string d =
    Printf.sprintf "push to %s#%d via [%s]" d.relation d.occurrence
      (String.concat "; " (List.map step_to_string d.steps))
end

let optimize_with_stats catalog expr =
  let steps = ref 0 in
  let rec fixpoint expr iterations =
    if iterations = 0 then expr
    else begin
      let changed = ref false in
      let rewritten = pass catalog changed expr in
      if !changed then begin
        incr steps;
        fixpoint rewritten (iterations - 1)
      end
      else rewritten
    end
  in
  let result = fixpoint expr 50 in
  (result, !steps)

let optimize catalog expr = fst (optimize_with_stats catalog expr)
