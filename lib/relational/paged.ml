type source = In_memory of Relation.t | On_disk of Pagefile.t

type t = {
  source : source;
  schema : Schema.t;
  cardinality : int;
  page_capacity : int;
  page_count : int;
}

let make ~page_capacity relation =
  if page_capacity <= 0 then invalid_arg "Paged.make: page_capacity must be positive";
  let n = Relation.cardinality relation in
  let page_count = if n = 0 then 0 else ((n - 1) / page_capacity) + 1 in
  {
    source = In_memory relation;
    schema = Relation.schema relation;
    cardinality = n;
    page_capacity;
    page_count;
  }

let of_pagefile pf =
  {
    source = On_disk pf;
    schema = Pagefile.schema pf;
    cardinality = Pagefile.cardinality pf;
    page_capacity = Pagefile.page_capacity pf;
    page_count = Pagefile.page_count pf;
  }

let schema t = t.schema

let cardinality t = t.cardinality

let page_capacity t = t.page_capacity

let page_count t = t.page_count

let bounds t i =
  if i < 0 || i >= t.page_count then
    invalid_arg (Printf.sprintf "Paged: page %d out of range [0, %d)" i t.page_count);
  let start = i * t.page_capacity in
  let stop = min (start + t.page_capacity) t.cardinality in
  (start, stop)

let page_size t i =
  match t.source with
  | In_memory _ ->
    let start, stop = bounds t i in
    stop - start
  | On_disk pf -> Pagefile.page_rows pf i

(* Ascending unique copy of the requested indices: both sources visit
   pages in increasing order, so per-page results are independent of
   the caller's index order. *)
let canonical_indices t indices =
  Array.iter
    (fun i ->
      if i < 0 || i >= t.page_count then
        invalid_arg
          (Printf.sprintf "Paged: page %d out of range [0, %d)" i t.page_count))
    indices;
  let sorted = Array.copy indices in
  Array.sort compare sorted;
  let unique = ref [] in
  Array.iter
    (fun i ->
      match !unique with
      | j :: _ when j = i -> ()
      | _ -> unique := i :: !unique)
    sorted;
  Array.of_list (List.rev !unique)

let fold_pages ?(metrics = Obs.Metrics.noop) t indices ~init ~f =
  match t.source with
  | On_disk pf ->
    let acc = ref init in
    Pagefile.read_pages ~metrics pf indices ~f:(fun i tuples -> acc := f !acc i tuples);
    !acc
  | In_memory relation ->
    (* Simulated pages: no I/O to record.  Full pages are delivered in
       one reusable buffer so tight estimator loops stop allocating a
       fresh array per page; only a short last page allocates. *)
    let indices = canonical_indices t indices in
    let scratch = lazy (Array.make t.page_capacity [||]) in
    Array.fold_left
      (fun acc i ->
        let start, stop = bounds t i in
        let rows = stop - start in
        let page =
          if rows = t.page_capacity then begin
            let scratch = Lazy.force scratch in
            for k = 0 to rows - 1 do
              scratch.(k) <- Relation.tuple relation (start + k)
            done;
            scratch
          end
          else Array.init rows (fun k -> Relation.tuple relation (start + k))
        in
        f acc i page)
      init indices

let peek_page t i =
  match t.source with
  | In_memory relation ->
    let start, stop = bounds t i in
    Array.init (stop - start) (fun k -> Relation.tuple relation (start + k))
  | On_disk pf ->
    let result = ref [||] in
    Pagefile.read_pages pf [| i |] ~f:(fun _ tuples -> result := Array.copy tuples);
    !result
