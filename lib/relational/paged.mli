(** Paged view of a relation.

    The 1988 setting stores relations on fixed-capacity disk pages;
    cluster sampling draws whole pages.  A paged value is backed either
    by an in-memory relation (page boundaries are simulated, no I/O is
    charged) or by an on-disk pagefile ({!Pagefile}), where fetching a
    page is real I/O recorded on the [metrics] sink by the batched
    reader (see DESIGN.md §5 and THEORY.md §19). *)

type t

(** [make ~page_capacity relation] splits the relation's tuples, in
    order, into pages of at most [page_capacity] tuples (the last page
    may be short).
    @raise Invalid_argument if [page_capacity <= 0]. *)
val make : page_capacity:int -> Relation.t -> t

(** Page-granular view of an open pagefile: page boundaries, schema and
    cardinality come from the file footer; page fetches go through the
    pagefile's batched reader and cache. *)
val of_pagefile : Pagefile.t -> t

val schema : t -> Schema.t

val cardinality : t -> int

val page_capacity : t -> int

(** Number of pages, [ceil (cardinality / page_capacity)]. *)
val page_count : t -> int

(** [fold_pages ?metrics t indices ~init ~f] folds [f] over the
    requested pages in {e increasing} page order (duplicate indices are
    visited once): [f acc page_index tuples].  The tuple array passed to
    [f] is a reusable buffer (in-memory full pages) or may be shared
    with the reader's page cache (on-disk) — treat it as read-only and
    do not retain it across calls; copy if you need to keep it.

    In-memory sources record no I/O ([pages_read] stays 0: nothing is
    fetched).  On-disk sources record real reads, batches, bytes and
    cache hits through {!Pagefile.read_pages}.
    @raise Invalid_argument if an index is out of range. *)
val fold_pages :
  ?metrics:Obs.Metrics.t ->
  t ->
  int array ->
  init:'a ->
  f:('a -> int -> Tuple.t array -> 'a) ->
  'a

(** Tuples on page [i], as a fresh array, without recording any I/O
    metrics (for tests and exact computations).
    @raise Invalid_argument if [i] is out of range. *)
val peek_page : t -> int -> Tuple.t array

(** Number of tuples on page [i]. *)
val page_size : t -> int -> int
