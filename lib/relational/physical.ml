module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type cursor = {
  schema : Schema.t;
  next : unit -> Tuple.t option;
  reset : unit -> unit;
}

let schema c = c.schema

let next c = c.next ()

let reset c = c.reset ()

let scan relation =
  let position = ref 0 in
  {
    schema = Relation.schema relation;
    next =
      (fun () ->
        if !position >= Relation.cardinality relation then None
        else begin
          let tuple = Relation.tuple relation !position in
          incr position;
          Some tuple
        end);
    reset = (fun () -> position := 0);
  }

let filter keep input =
  let rec pull () =
    match input.next () with
    | Some tuple when keep tuple -> Some tuple
    | Some _ -> pull ()
    | None -> None
  in
  { schema = input.schema; next = pull; reset = input.reset }

let project schema indices input =
  {
    schema;
    next = (fun () -> Option.map (fun t -> Tuple.project t indices) (input.next ()));
    reset = input.reset;
  }

let nested_product ?(keep = fun _ -> true) schema left right =
  let current_left = ref None in
  let rec pull () =
    match !current_left with
    | None -> (
      match left.next () with
      | None -> None
      | Some tl ->
        current_left := Some tl;
        right.reset ();
        pull ())
    | Some tl -> (
      match right.next () with
      | None ->
        current_left := None;
        pull ()
      | Some tr ->
        let combined = Tuple.concat tl tr in
        if keep combined then Some combined else pull ())
  in
  {
    schema;
    next = pull;
    reset =
      (fun () ->
        current_left := None;
        left.reset ();
        right.reset ());
  }

let hash_join ?(metrics = Obs.Metrics.noop) schema ~left_key ~right_key left right =
  (* Blocking build side; [table = None] marks "not built yet" so reset
     can force a rebuild. *)
  let table = ref None in
  let pending = ref [] in
  let build () =
    let t = Tuple_hash.create 256 in
    let rec consume () =
      match right.next () with
      | None -> ()
      | Some tr ->
        let key = Tuple.project tr right_key in
        let bucket = try Tuple_hash.find t key with Not_found -> [] in
        Tuple_hash.replace t key (tr :: bucket);
        consume ()
    in
    consume ();
    (* Buckets accumulate reversed; restore build order. *)
    Tuple_hash.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) t;
    table := Some t
  in
  let rec pull () =
    if !table = None then build ();
    match !pending with
    | tuple :: rest ->
      pending := rest;
      Some tuple
    | [] -> (
      match left.next () with
      | None -> None
      | Some tl -> (
        let t = Option.get !table in
        let key = Tuple.project tl left_key in
        match Tuple_hash.find_opt t key with
        | Some bucket ->
          Obs.Metrics.probe_hit metrics;
          pending := List.map (fun tr -> Tuple.concat tl tr) bucket;
          pull ()
        | None ->
          Obs.Metrics.probe_miss metrics;
          pull ()))
  in
  {
    schema;
    next = pull;
    reset =
      (fun () ->
        pending := [];
        table := None;
        left.reset ();
        right.reset ());
  }

let dedup input =
  let seen = ref (Tuple_hash.create 256) in
  let rec pull () =
    match input.next () with
    | None -> None
    | Some tuple ->
      if Tuple_hash.mem !seen tuple then pull ()
      else begin
        Tuple_hash.add !seen tuple ();
        Some tuple
      end
  in
  {
    schema = input.schema;
    next = pull;
    reset =
      (fun () ->
        seen := Tuple_hash.create 256;
        input.reset ());
  }

let sort compare input =
  let sorted = ref None in
  let position = ref 0 in
  let build () =
    input.reset ();
    let out = ref [] in
    let rec drain () =
      match input.next () with
      | Some tuple ->
        out := tuple :: !out;
        drain ()
      | None -> ()
    in
    drain ();
    let tuples = Array.of_list !out in
    Array.sort compare tuples;
    sorted := Some tuples;
    position := 0
  in
  {
    schema = input.schema;
    next =
      (fun () ->
        if !sorted = None then build ();
        match !sorted with
        | Some tuples when !position < Array.length tuples ->
          let tuple = tuples.(!position) in
          incr position;
          Some tuple
        | Some _ | None -> None);
    reset =
      (fun () ->
        sorted := None;
        position := 0);
  }

let key_compare key t1 t2 = Tuple.compare (Tuple.project t1 key) (Tuple.project t2 key)

let sort_by key input = sort (key_compare key) input

let merge_join schema ~left_key ~right_key left right =
  let left_sorted = sort_by left_key left in
  let right_sorted = sort_by right_key right in
  (* State: the current left tuple, and the buffered right group
     (tuples sharing one key) being replayed against it. *)
  let current_left = ref None in
  let group = ref [||] in
  let group_key = ref None in
  let group_pos = ref 0 in
  let right_pending = ref None in
  let next_right () =
    match !right_pending with
    | Some tuple ->
      right_pending := None;
      Some tuple
    | None -> right_sorted.next ()
  in
  (* Load the right group whose key is [key]; skip smaller keys.
     Returns true when such a group exists. *)
  let load_group key =
    let already_loaded =
      match !group_key with Some k -> Tuple.equal k key | None -> false
    in
    if already_loaded then true
    else begin
      let rec skip () =
        match next_right () with
        | None -> None
        | Some tuple ->
          let k = Tuple.project tuple right_key in
          let c = Tuple.compare k key in
          if c < 0 then skip () else Some (tuple, k, c)
      in
      match skip () with
      | None -> false
      | Some (tuple, k, c) when c = 0 ->
        (* Collect the whole equal-key run. *)
        let members = ref [ tuple ] in
        let rec collect () =
          match next_right () with
          | Some t when Tuple.equal (Tuple.project t right_key) k ->
            members := t :: !members;
            collect ()
          | Some t -> right_pending := Some t
          | None -> ()
        in
        collect ();
        group := Array.of_list (List.rev !members);
        group_key := Some key;
        group_pos := 0;
        true
      | Some (tuple, k, _) ->
        (* Right ran past: remember the tuple, report no group.  Keep
           the overshoot group loaded so later left keys can match. *)
        right_pending := Some tuple;
        ignore k;
        false
    end
  in
  let rec pull () =
    match !current_left with
    | None -> (
      match left_sorted.next () with
      | None -> None
      | Some tl ->
        current_left := Some tl;
        group_pos := 0;
        pull ())
    | Some tl ->
      let key = Tuple.project tl left_key in
      if load_group key then
        if !group_pos < Array.length !group then begin
          let tr = (!group).(!group_pos) in
          incr group_pos;
          Some (Tuple.concat tl tr)
        end
        else begin
          current_left := None;
          pull ()
        end
      else begin
        current_left := None;
        pull ()
      end
  in
  {
    schema;
    next = pull;
    reset =
      (fun () ->
        current_left := None;
        group := [||];
        group_key := None;
        group_pos := 0;
        right_pending := None;
        left_sorted.reset ();
        right_sorted.reset ());
  }

let materialize_set input =
  let table = Tuple_hash.create 256 in
  input.reset ();
  let rec consume () =
    match input.next () with
    | None -> ()
    | Some tuple ->
      Tuple_hash.replace table tuple ();
      consume ()
  in
  consume ();
  table

let union left right =
  (* Dedup'd left, then right tuples not already seen on the left. *)
  let deduped_left = dedup left in
  let deduped_right = dedup right in
  let left_done = ref false in
  let seen_left = ref (Tuple_hash.create 256) in
  let rec pull () =
    if not !left_done then
      match deduped_left.next () with
      | Some tuple ->
        Tuple_hash.replace !seen_left tuple ();
        Some tuple
      | None ->
        left_done := true;
        pull ()
    else
      match deduped_right.next () with
      | Some tuple -> if Tuple_hash.mem !seen_left tuple then pull () else Some tuple
      | None -> None
  in
  {
    schema = left.schema;
    next = pull;
    reset =
      (fun () ->
        left_done := false;
        seen_left := Tuple_hash.create 256;
        deduped_left.reset ();
        deduped_right.reset ());
  }

let semi ~negate left right =
  let table = ref None in
  let deduped_left = dedup left in
  let rec pull () =
    if !table = None then table := Some (materialize_set right);
    match deduped_left.next () with
    | None -> None
    | Some tuple ->
      let present = Tuple_hash.mem (Option.get !table) tuple in
      if present <> negate then Some tuple else pull ()
  in
  {
    schema = left.schema;
    next = pull;
    reset =
      (fun () ->
        table := None;
        deduped_left.reset ())
  }

let inter left right = semi ~negate:false left right

let diff left right = semi ~negate:true left right

(* Blocking hash aggregate: drains the input at first pull. *)
let aggregate schema ~input_schema ~by ~specs input =
  let rows = ref None in
  let drain () =
    input.reset ();
    let produce () = input.next () in
    let seq = Seq.of_dispenser produce in
    rows := Some (ref (Aggregate_impl.run ~input_schema ~by ~specs seq))
  in
  let pull () =
    if !rows = None then drain ();
    match !rows with
    | Some pending -> (
      match !pending with
      | tuple :: rest ->
        pending := rest;
        Some tuple
      | [] -> None)
    | None -> None
  in
  { schema; next = pull; reset = (fun () -> rows := None) }

(* Streaming selection over a base relation through a compiled kernel
   predicate: identical tuples in identical order to scan-then-filter,
   but each pull tests unboxed column data instead of a boxed tuple. *)
let kernel_filter relation p =
  let pred = Kernel.compile (Relation.columnar relation) p in
  let n = Relation.cardinality relation in
  let position = ref 0 in
  let rec pull () =
    if !position >= n then None
    else begin
      let i = !position in
      incr position;
      if pred i then Some (Relation.tuple relation i) else pull ()
    end
  in
  { schema = Relation.schema relation; next = pull; reset = (fun () -> position := 0) }

(* Streaming columnar hash join over two base relations: the build side
   is an int-code → row-index table.  [None] when the key columns admit
   no int code space (see Kernel.join_codes).  Output order and
   per-probe hit/miss accounting match [hash_join] exactly. *)
let kernel_hash_join ?(metrics = Obs.Metrics.noop) schema l jl r jr =
  match Kernel.join_codes (Relation.columnar l) jl (Relation.columnar r) jr with
  | None -> None
  | Some (kl, kr) ->
    let lt = Relation.tuples l and rt = Relation.tuples r in
    let table = ref None in
    let pending = ref [] in
    let position = ref 0 in
    let build () =
      let t = Hashtbl.create (max 16 (Array.length kr)) in
      Array.iteri
        (fun i k ->
          let bucket = try Hashtbl.find t k with Not_found -> [] in
          Hashtbl.replace t k (i :: bucket))
        kr;
      (* Buckets accumulate reversed; restore build order. *)
      Hashtbl.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) t;
      table := Some t
    in
    let rec pull () =
      if !table = None then build ();
      match !pending with
      | tuple :: rest ->
        pending := rest;
        Some tuple
      | [] ->
        if !position >= Array.length kl then None
        else begin
          let li = !position in
          incr position;
          match Hashtbl.find_opt (Option.get !table) (Array.unsafe_get kl li) with
          | Some bucket ->
            Obs.Metrics.probe_hit metrics;
            pending :=
              List.map
                (fun ri -> Tuple.concat lt.(li) (Array.unsafe_get rt ri))
                bucket;
            pull ()
          | None ->
            Obs.Metrics.probe_miss metrics;
            pull ()
        end
    in
    Some
      {
        schema;
        next = pull;
        reset =
          (fun () ->
            pending := [];
            position := 0;
            table := None);
      }

(* Columnar cursors engage above this input size: below it the kernel
   compile/encode overhead exceeds the per-row win. *)
let kernel_threshold = 1024

let rec of_expr ?(metrics = Obs.Metrics.noop) ?(columnar = true) catalog expr =
  let of_expr catalog expr = of_expr ~metrics ~columnar catalog expr in
  let kernels = columnar && Column.enabled () in
  let out_schema = Expr.schema_of catalog expr in
  match expr with
  | Expr.Base name -> scan (Catalog.find catalog name)
  | Expr.Select (p, Expr.Base name)
    when kernels && Relation.cardinality (Catalog.find catalog name) >= kernel_threshold
    ->
    kernel_filter (Catalog.find catalog name) p
  | Expr.Select (p, e) ->
    let input = of_expr catalog e in
    filter (Predicate.compile input.schema p) input
  | Expr.Project (names, e) ->
    let input = of_expr catalog e in
    let indices =
      Array.of_list (List.map (fun name -> Schema.index_of input.schema name) names)
    in
    project out_schema indices input
  | Expr.Distinct e -> dedup (of_expr catalog e)
  | Expr.Product (l, r) -> nested_product out_schema (of_expr catalog l) (of_expr catalog r)
  | Expr.Equijoin (pairs, l, r) ->
    let row_join () =
      let left = of_expr catalog l and right = of_expr catalog r in
      let left_key =
        Array.of_list (List.map (fun (a, _) -> Schema.index_of left.schema a) pairs)
      in
      let right_key =
        Array.of_list (List.map (fun (_, b) -> Schema.index_of right.schema b) pairs)
      in
      hash_join ~metrics out_schema ~left_key ~right_key left right
    in
    (match pairs, l, r with
    | [ (a, b) ], Expr.Base ln, Expr.Base rn when kernels ->
      let rl = Catalog.find catalog ln and rr = Catalog.find catalog rn in
      let jl = Schema.index_of (Relation.schema rl) a in
      let jr = Schema.index_of (Relation.schema rr) b in
      (match kernel_hash_join ~metrics out_schema rl jl rr jr with
      | Some cursor -> cursor
      | None -> row_join ())
    | _ -> row_join ())
  | Expr.Theta_join (p, l, r) ->
    let keep = Predicate.compile out_schema p in
    nested_product ~keep out_schema (of_expr catalog l) (of_expr catalog r)
  | Expr.Union (l, r) -> union (of_expr catalog l) (of_expr catalog r)
  | Expr.Inter (l, r) -> inter (of_expr catalog l) (of_expr catalog r)
  | Expr.Diff (l, r) -> diff (of_expr catalog l) (of_expr catalog r)
  | Expr.Rename (_, e) ->
    let input = of_expr catalog e in
    { input with schema = out_schema }
  | Expr.Aggregate (by, specs, e) ->
    let input = of_expr catalog e in
    aggregate out_schema ~input_schema:input.schema ~by ~specs input

let run cursor =
  cursor.reset ();
  let out = ref [] in
  let rec drain () =
    match cursor.next () with
    | Some tuple ->
      out := tuple :: !out;
      drain ()
    | None -> ()
  in
  drain ();
  Relation.of_array cursor.schema (Array.of_list (List.rev !out))

let count cursor =
  cursor.reset ();
  let rec drain acc =
    match cursor.next () with Some _ -> drain (acc + 1) | None -> acc
  in
  drain 0

(* COUNT of a bare two-leaf equijoin probes the code-space table
   without materializing a single joined tuple (same kernel, same
   per-probe hit/miss accounting as the streaming join above — the
   fast path [Eval.count] takes).  Everything else drains the cursor. *)
let count_expr ?metrics ?(columnar = true) catalog expr =
  let kernel_count () =
    if not (columnar && Column.enabled ()) then None
    else
      match expr with
      | Expr.Equijoin ([ (a, b) ], Expr.Base ln, Expr.Base rn) ->
        let l = Catalog.find catalog ln and r = Catalog.find catalog rn in
        let jl = Schema.index_of (Relation.schema l) a in
        let jr = Schema.index_of (Relation.schema r) b in
        Kernel.equijoin_count ?metrics (Relation.columnar l) jl (Relation.columnar r) jr
      | _ -> None
  in
  match kernel_count () with
  | Some n -> n
  | None -> count (of_expr ?metrics ~columnar catalog expr)
