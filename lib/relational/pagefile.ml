(* Binary pagefile format, version 1.

   Layout:
     header   8 bytes   magic "RAFv" + version (u32 LE)
     pages    page 0, page 1, ... (offsets in the directory)
     footer   schema, string dictionary, page directory, cardinality,
              page capacity (all integers LE)
     trailer  12 bytes  footer offset (u64 LE) + magic "RAFe"

   Page encoding, per attribute in schema order:
     null bitset   ceil(rows/8) bytes, bit r set = row r is NULL
     data          int/float: 8 bytes per row (int64 / IEEE bits LE)
                   bool: ceil(rows/8) bitset
                   string: 4 bytes per row (dictionary code, u32 LE)
                   null-typed: no data segment *)

external pread_stub : Unix.file_descr -> Bytes.t -> int -> int -> int64 -> int
  = "raestat_pread"

external fadvise_willneed : Unix.file_descr -> int64 -> int -> unit
  = "raestat_fadvise_willneed"

let header_magic = "RAFv"
let trailer_magic = "RAFe"
let version = 1
let header_size = 8
let trailer_size = 12
let default_page_capacity = 256

(* Pages fetched by one coalesced pread are bounded so a full scan of a
   large file never allocates one file-sized buffer. *)
let max_batch_pages = 64

let corrupt path what = failwith (Printf.sprintf "Pagefile: %s: %s" path what)

(* --- encoding helpers ------------------------------------------------ *)

let ty_code = function
  | Value.Tnull -> 0
  | Value.Tbool -> 1
  | Value.Tint -> 2
  | Value.Tfloat -> 3
  | Value.Tstr -> 4

let ty_of_code path = function
  | 0 -> Value.Tnull
  | 1 -> Value.Tbool
  | 2 -> Value.Tint
  | 3 -> Value.Tfloat
  | 4 -> Value.Tstr
  | c -> corrupt path (Printf.sprintf "corrupt footer (unknown type code %d)" c)

let add_u32 buffer n = Buffer.add_int32_le buffer (Int32.of_int n)
let add_u64 buffer n = Buffer.add_int64_le buffer (Int64.of_int n)

let bitset_bytes rows = (rows + 7) / 8

let set_bit bytes r = Bytes.unsafe_set bytes (r lsr 3)
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get bytes (r lsr 3)) lor (1 lsl (r land 7))))

let get_bit bytes ofs r =
  Char.code (Bytes.unsafe_get bytes (ofs + (r lsr 3))) land (1 lsl (r land 7)) <> 0

(* --- writer ---------------------------------------------------------- *)

type writer = {
  oc : out_channel;
  w_path : string;
  w_schema : Schema.t;
  w_attrs : Schema.attribute array;
  w_page_capacity : int;
  page_buf : Tuple.t array;
  mutable fill : int;
  mutable w_cardinality : int;
  dict : (string, int) Hashtbl.t;
  mutable dict_rev : string list;
  mutable dict_size : int;
  mutable dir_rev : (int * int * int) list; (* offset, length, rows *)
}

let create_writer ?(page_capacity = default_page_capacity) path schema =
  if page_capacity <= 0 then
    invalid_arg "Pagefile: page_capacity must be positive";
  let oc = open_out_bin path in
  output_string oc header_magic;
  let header = Buffer.create 4 in
  add_u32 header version;
  Buffer.output_buffer oc header;
  {
    oc;
    w_path = path;
    w_schema = schema;
    w_attrs = Array.of_list (Schema.attributes schema);
    w_page_capacity = page_capacity;
    page_buf = Array.make page_capacity [||];
    fill = 0;
    w_cardinality = 0;
    dict = Hashtbl.create 64;
    dict_rev = [];
    dict_size = 0;
    dir_rev = [];
  }

let intern w s =
  match Hashtbl.find_opt w.dict s with
  | Some code -> code
  | None ->
    let code = w.dict_size in
    Hashtbl.add w.dict s code;
    w.dict_rev <- s :: w.dict_rev;
    w.dict_size <- code + 1;
    code

let encoding_error w attr v =
  failwith
    (Printf.sprintf "Pagefile: %s: cannot encode %s value in %s column %s" w.w_path
       (Value.ty_to_string (Value.type_of v))
       (Value.ty_to_string attr.Schema.ty)
       attr.Schema.name)

let flush_page w =
  if w.fill > 0 then begin
    let rows = w.fill in
    let buffer = Buffer.create 4096 in
    Array.iteri
      (fun a attr ->
        let nulls = Bytes.make (bitset_bytes rows) '\000' in
        for r = 0 to rows - 1 do
          if w.page_buf.(r).(a) = Value.Null then set_bit nulls r
        done;
        Buffer.add_bytes buffer nulls;
        (match attr.Schema.ty with
        | Value.Tnull -> ()
        | Value.Tbool ->
          let bits = Bytes.make (bitset_bytes rows) '\000' in
          for r = 0 to rows - 1 do
            match w.page_buf.(r).(a) with
            | Value.Bool true -> set_bit bits r
            | Value.Bool false | Value.Null -> ()
            | v -> encoding_error w attr v
          done;
          Buffer.add_bytes buffer bits
        | Value.Tint ->
          for r = 0 to rows - 1 do
            match w.page_buf.(r).(a) with
            | Value.Int i -> Buffer.add_int64_le buffer (Int64.of_int i)
            | Value.Null -> Buffer.add_int64_le buffer 0L
            | v -> encoding_error w attr v
          done
        | Value.Tfloat ->
          for r = 0 to rows - 1 do
            match w.page_buf.(r).(a) with
            | Value.Float f -> Buffer.add_int64_le buffer (Int64.bits_of_float f)
            | Value.Null -> Buffer.add_int64_le buffer 0L
            | v -> encoding_error w attr v
          done
        | Value.Tstr ->
          for r = 0 to rows - 1 do
            match w.page_buf.(r).(a) with
            | Value.Str s -> add_u32 buffer (intern w s)
            | Value.Null -> add_u32 buffer 0
            | v -> encoding_error w attr v
          done))
      w.w_attrs;
    let offset = pos_out w.oc in
    Buffer.output_buffer w.oc buffer;
    w.dir_rev <- (offset, Buffer.length buffer, rows) :: w.dir_rev;
    Array.fill w.page_buf 0 rows [||];
    w.fill <- 0
  end

let append w tuple =
  if Array.length tuple <> Array.length w.w_attrs then
    failwith
      (Printf.sprintf "Pagefile: %s: tuple arity %d, schema arity %d" w.w_path
         (Array.length tuple) (Array.length w.w_attrs));
  w.page_buf.(w.fill) <- tuple;
  w.fill <- w.fill + 1;
  w.w_cardinality <- w.w_cardinality + 1;
  if w.fill = w.w_page_capacity then flush_page w

let close_writer w =
  flush_page w;
  let footer_offset = pos_out w.oc in
  let buffer = Buffer.create 1024 in
  add_u32 buffer (Array.length w.w_attrs);
  Array.iter
    (fun attr ->
      add_u32 buffer (String.length attr.Schema.name);
      Buffer.add_string buffer attr.Schema.name;
      Buffer.add_int8 buffer (ty_code attr.Schema.ty))
    w.w_attrs;
  add_u32 buffer w.dict_size;
  List.iter
    (fun s ->
      add_u32 buffer (String.length s);
      Buffer.add_string buffer s)
    (List.rev w.dict_rev);
  let directory = List.rev w.dir_rev in
  add_u32 buffer (List.length directory);
  List.iter
    (fun (offset, length, rows) ->
      add_u64 buffer offset;
      add_u64 buffer length;
      add_u32 buffer rows)
    directory;
  add_u64 buffer w.w_cardinality;
  add_u32 buffer w.w_page_capacity;
  Buffer.output_buffer w.oc buffer;
  let trailer = Buffer.create trailer_size in
  add_u64 trailer footer_offset;
  Buffer.add_string trailer trailer_magic;
  Buffer.output_buffer w.oc trailer;
  close_out w.oc

(* Writers are atomic: bytes go to [path ^ ".tmp"] and the finished
   file is renamed over [path] only after a successful close, so a
   failure mid-write (bad CSV row, disk full, crash) never leaves a
   partial — or worse, silently truncated — .raf where a reader
   expects a valid one.  The rename is within one directory, so it is
   atomic on POSIX filesystems. *)

let remove_quietly path = try Sys.remove path with Sys_error _ -> ()

(* Close and rename into place; on failure drop the temporary. *)
let commit_writer w ~tmp ~path =
  (match close_writer w with
  | () -> ()
  | exception e ->
    remove_quietly tmp;
    raise e);
  match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    remove_quietly tmp;
    raise e

let with_writer ?page_capacity path schema f =
  let tmp = path ^ ".tmp" in
  let w = create_writer ?page_capacity tmp schema in
  match f w with
  | result ->
    commit_writer w ~tmp ~path;
    result
  | exception e ->
    close_out_noerr w.oc;
    remove_quietly tmp;
    raise e

let write_relation ?page_capacity path relation =
  with_writer ?page_capacity path (Relation.schema relation) @@ fun w ->
  Relation.iter (fun tuple -> append w tuple) relation

let pack_csv ?page_capacity ~src ~dst () =
  let tmp = dst ^ ".tmp" in
  let writer = ref None in
  let count = ref 0 in
  (try
     Csv.iter_file src
       ~header:(fun schema -> writer := Some (create_writer ?page_capacity tmp schema))
       ~row:(fun tuple ->
         match !writer with
         | Some w ->
           append w tuple;
           incr count
         | None -> assert false)
   with e ->
     (match !writer with
     | Some w ->
       close_out_noerr w.oc;
       remove_quietly tmp
     | None -> ());
     raise e);
  (match !writer with
  | Some w -> commit_writer w ~tmp ~path:dst
  | None -> failwith "Csv: empty input");
  !count

(* --- page cache (clock eviction) ------------------------------------- *)

type cache = {
  capacity : int;
  slot_page : int array; (* page held by each slot, -1 = empty *)
  slot_tuples : Tuple.t array array;
  refbit : bool array;
  by_page : (int, int) Hashtbl.t; (* page -> slot *)
  mutable hand : int;
}

let cache_create capacity =
  {
    capacity;
    slot_page = Array.make capacity (-1);
    slot_tuples = Array.make capacity [||];
    refbit = Array.make capacity false;
    by_page = Hashtbl.create capacity;
    hand = 0;
  }

let cache_find cache page =
  match Hashtbl.find_opt cache.by_page page with
  | None -> None
  | Some slot ->
    cache.refbit.(slot) <- true;
    Some cache.slot_tuples.(slot)

let cache_insert cache page tuples =
  let rec victim () =
    let slot = cache.hand in
    cache.hand <- (cache.hand + 1) mod cache.capacity;
    if cache.refbit.(slot) then begin
      cache.refbit.(slot) <- false;
      victim ()
    end
    else slot
  in
  let slot = victim () in
  if cache.slot_page.(slot) >= 0 then Hashtbl.remove cache.by_page cache.slot_page.(slot);
  cache.slot_page.(slot) <- page;
  cache.slot_tuples.(slot) <- tuples;
  cache.refbit.(slot) <- true;
  Hashtbl.replace cache.by_page page slot

(* --- reader ----------------------------------------------------------- *)

type page_entry = { p_offset : int; p_length : int; p_rows : int }

type t = {
  fd : Unix.file_descr;
  r_path : string;
  r_schema : Schema.t;
  r_attrs : Schema.attribute array;
  r_dict : string array;
  directory : page_entry array;
  r_cardinality : int;
  r_page_capacity : int;
  cache : cache;
  mutable closed : bool;
}

let pread_exact t buf ofs len fileofs =
  let got = pread_stub t.fd buf ofs len (Int64.of_int fileofs) in
  if got < len then corrupt t.r_path "truncated page data"

(* Sequential cursor over footer bytes with bounds checking. *)
type cursor = { c_bytes : Bytes.t; c_path : string; mutable c_pos : int }

let cursor_need c n =
  if c.c_pos + n > Bytes.length c.c_bytes then corrupt c.c_path "truncated footer"

let read_u32 c =
  cursor_need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.c_bytes c.c_pos) in
  c.c_pos <- c.c_pos + 4;
  if v < 0 then corrupt c.c_path "corrupt footer (negative length)";
  v

let read_u64 c =
  cursor_need c 8;
  let v = Int64.to_int (Bytes.get_int64_le c.c_bytes c.c_pos) in
  c.c_pos <- c.c_pos + 8;
  if v < 0 then corrupt c.c_path "corrupt footer (negative offset)";
  v

let read_u8 c =
  cursor_need c 1;
  let v = Char.code (Bytes.get c.c_bytes c.c_pos) in
  c.c_pos <- c.c_pos + 1;
  v

let read_str c =
  let n = read_u32 c in
  cursor_need c n;
  let s = Bytes.sub_string c.c_bytes c.c_pos n in
  c.c_pos <- c.c_pos + n;
  s

(* A signal landing mid-syscall (interval timers, SIGCHLD from a
   harness, a resize) makes open/fstat fail with EINTR; the call is
   safe to retry.  The pread stub handles its own EINTR in C. *)
let rec retry_eintr f =
  match f () with
  | value -> value
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let openfile ?(cache_pages = 64) path =
  if cache_pages <= 0 then invalid_arg "Pagefile: cache_pages must be positive";
  let fd =
    try retry_eintr (fun () -> Unix.openfile path [ Unix.O_RDONLY ] 0)
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  in
  match
    let size = (retry_eintr (fun () -> Unix.fstat fd)).Unix.st_size in
    if size < header_size + trailer_size then
      corrupt path "truncated (too short to be a pagefile)";
    let scratch = Bytes.create header_size in
    let got = pread_stub fd scratch 0 header_size 0L in
    if got < header_size then corrupt path "truncated (too short to be a pagefile)";
    if Bytes.sub_string scratch 0 4 <> header_magic then
      corrupt path "bad magic (not a raestat pagefile)";
    let file_version = Int32.to_int (Bytes.get_int32_le scratch 4) in
    if file_version <> version then
      corrupt path
        (Printf.sprintf "unsupported format version %d (expected %d)" file_version
           version);
    let trailer = Bytes.create trailer_size in
    let got = pread_stub fd trailer 0 trailer_size (Int64.of_int (size - trailer_size)) in
    if got < trailer_size then corrupt path "truncated or corrupt (bad trailer)";
    if Bytes.sub_string trailer 8 4 <> trailer_magic then
      corrupt path "truncated or corrupt (bad trailer)";
    let footer_offset = Int64.to_int (Bytes.get_int64_le trailer 0) in
    let footer_length = size - trailer_size - footer_offset in
    if footer_offset < header_size || footer_length < 0 then
      corrupt path "truncated or corrupt (bad trailer)";
    let footer = Bytes.create footer_length in
    let got = pread_stub fd footer 0 footer_length (Int64.of_int footer_offset) in
    if got < footer_length then corrupt path "truncated footer";
    let c = { c_bytes = footer; c_path = path; c_pos = 0 } in
    let arity = read_u32 c in
    let attrs =
      Array.init arity (fun _ ->
          let name = read_str c in
          let ty = ty_of_code path (read_u8 c) in
          { Schema.name; ty })
    in
    let dict = Array.init (read_u32 c) (fun _ -> read_str c) in
    let directory =
      Array.init (read_u32 c) (fun _ ->
          let p_offset = read_u64 c in
          let p_length = read_u64 c in
          let p_rows = read_u32 c in
          if p_offset + p_length > footer_offset then
            corrupt path "corrupt footer (page outside data region)";
          { p_offset; p_length; p_rows })
    in
    let cardinality = read_u64 c in
    let page_capacity = read_u32 c in
    if page_capacity <= 0 then corrupt path "corrupt footer (bad page capacity)";
    {
      fd;
      r_path = path;
      r_schema = Schema.make (Array.to_list attrs);
      r_attrs = attrs;
      r_dict = dict;
      directory;
      r_cardinality = cardinality;
      r_page_capacity = page_capacity;
      cache = cache_create cache_pages;
      closed = false;
    }
  with
  | t -> t
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let path t = t.r_path
let schema t = t.r_schema
let cardinality t = t.r_cardinality
let page_count t = Array.length t.directory
let page_capacity t = t.r_page_capacity

let check_page t i =
  if i < 0 || i >= Array.length t.directory then
    invalid_arg
      (Printf.sprintf "Pagefile: page %d out of range [0, %d)" i
         (Array.length t.directory))

let page_rows t i =
  check_page t i;
  t.directory.(i).p_rows

let data_bytes t =
  Array.fold_left (fun acc e -> acc + e.p_length) 0 t.directory

(* Decode one page from [bytes] starting at [ofs] into fresh tuples. *)
let decode_page t bytes ofs rows =
  let arity = Array.length t.r_attrs in
  let tuples = Array.init rows (fun _ -> Array.make arity Value.Null) in
  let pos = ref ofs in
  Array.iteri
    (fun a attr ->
      let nulls_ofs = !pos in
      pos := !pos + bitset_bytes rows;
      (match attr.Schema.ty with
      | Value.Tnull -> ()
      | Value.Tbool ->
        let bits_ofs = !pos in
        pos := !pos + bitset_bytes rows;
        for r = 0 to rows - 1 do
          if not (get_bit bytes nulls_ofs r) then
            tuples.(r).(a) <- Value.Bool (get_bit bytes bits_ofs r)
        done
      | Value.Tint ->
        for r = 0 to rows - 1 do
          if not (get_bit bytes nulls_ofs r) then
            tuples.(r).(a) <-
              Value.Int (Int64.to_int (Bytes.get_int64_le bytes (!pos + (8 * r))))
        done;
        pos := !pos + (8 * rows)
      | Value.Tfloat ->
        for r = 0 to rows - 1 do
          if not (get_bit bytes nulls_ofs r) then
            tuples.(r).(a) <-
              Value.Float (Int64.float_of_bits (Bytes.get_int64_le bytes (!pos + (8 * r))))
        done;
        pos := !pos + (8 * rows)
      | Value.Tstr ->
        for r = 0 to rows - 1 do
          if not (get_bit bytes nulls_ofs r) then begin
            let code = Int32.to_int (Bytes.get_int32_le bytes (!pos + (4 * r))) in
            if code < 0 || code >= Array.length t.r_dict then
              corrupt t.r_path "corrupt page (dictionary code out of range)";
            tuples.(r).(a) <- Value.Str t.r_dict.(code)
          end
        done;
        pos := !pos + (4 * rows)))
    t.r_attrs;
  tuples

let memory_cap () =
  match Sys.getenv_opt "RAESTAT_MEMORY_CAP" with
  | None | Some "" -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some cap when cap > 0 -> Some cap
    | _ -> failwith (Printf.sprintf "Pagefile: RAESTAT_MEMORY_CAP=%S is not a positive byte count" s))

let read_pages ?(metrics = Obs.Metrics.noop) t indices ~f =
  if t.closed then failwith (Printf.sprintf "Pagefile: %s: file is closed" t.r_path);
  Array.iter (fun i -> check_page t i) indices;
  let sorted = Array.copy indices in
  Array.sort compare sorted;
  (* Unique requested pages, increasing. *)
  let requested = ref [] in
  Array.iter
    (fun i ->
      match !requested with
      | j :: _ when j = i -> ()
      | _ -> requested := i :: !requested)
    sorted;
  let requested = Array.of_list (List.rev !requested) in
  (* Partition into cache hits and misses — capturing hit pages now,
     before run fetches can evict them — then coalesce the misses into
     adjacent runs (bounded by [max_batch_pages]) and fetch each run
     with one positioned read. *)
  let serve = Hashtbl.create (max 8 (Array.length requested)) in
  let missing_rev = ref [] in
  Array.iter
    (fun i ->
      match cache_find t.cache i with
      | Some tuples ->
        Obs.Metrics.add_page_cache_hits metrics 1;
        Hashtbl.replace serve i tuples
      | None -> missing_rev := i :: !missing_rev)
    requested;
  let missing = List.rev !missing_rev in
  let rec runs = function
    | [] -> []
    | first :: rest ->
      let rec extend last n = function
        | next :: rest when next = last + 1 && n < max_batch_pages ->
          extend next (n + 1) rest
        | rest -> (last, rest)
      in
      let last, rest = extend first 1 rest in
      (first, last) :: runs rest
  in
  List.iter
    (fun (first, last) ->
      let start_ofs = t.directory.(first).p_offset in
      let last_entry = t.directory.(last) in
      let length = last_entry.p_offset + last_entry.p_length - start_ofs in
      fadvise_willneed t.fd (Int64.of_int start_ofs) length;
      let buf = Bytes.create length in
      pread_exact t buf 0 length start_ofs;
      Obs.Metrics.add_pages metrics (last - first + 1);
      Obs.Metrics.add_bytes_read metrics length;
      Obs.Metrics.add_io_batches metrics 1;
      for i = first to last do
        let entry = t.directory.(i) in
        let tuples = decode_page t buf (entry.p_offset - start_ofs) entry.p_rows in
        Hashtbl.replace serve i tuples;
        cache_insert t.cache i tuples
      done)
    (runs missing);
  Array.iter (fun i -> f i (Hashtbl.find serve i)) requested

let to_relation ?metrics t =
  (match memory_cap () with
  | Some cap when data_bytes t > cap ->
    failwith
      (Printf.sprintf
         "Pagefile: %s: full materialization needs %d bytes of page data but \
          RAESTAT_MEMORY_CAP=%d; estimate with page sampling instead"
         t.r_path (data_bytes t) cap)
  | _ -> ());
  let pages = Array.make (page_count t) [||] in
  read_pages ?metrics t
    (Array.init (page_count t) (fun i -> i))
    ~f:(fun i tuples -> pages.(i) <- tuples);
  Relation.of_array t.r_schema (Array.concat (Array.to_list pages))
