(* Columnar relation storage: per-attribute unboxed arrays built lazily
   from a row-major tuple array.  See column.mli for the encoding
   contract. *)

let enabled =
  (* Read once at startup: the escape hatch must behave identically for
     every consult in one process. *)
  let on =
    match Sys.getenv_opt "RAESTAT_NO_COLUMNAR" with
    | Some ("1" | "true" | "yes" | "on") -> false
    | Some _ | None -> true
  in
  fun () -> on

module Bitset = struct
  type t = { length : int; words : int array }

  let bits = Sys.int_size

  let create length = { length; words = Array.make ((length + bits - 1) / bits) 0 }

  let length t = t.length

  let set t i = t.words.(i / bits) <- t.words.(i / bits) lor (1 lsl (i mod bits))

  let get t i = (Array.unsafe_get t.words (i / bits) lsr (i mod bits)) land 1 = 1

  let popcount w =
    let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
    go w 0

  let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
end

type floats = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type col =
  | Ints of { data : int array; nulls : Bitset.t option }
  | Floats of { data : floats; nulls : Bitset.t option }
  | Bools of { data : Bitset.t; nulls : Bitset.t option }
  | Dict of {
      codes : int array;
      dict : string array;
      lookup : (string, int) Hashtbl.t;
      has_null : bool;
    }
  | Generic of Value.t array

type t = {
  schema : Schema.t;
  length : int;
  tuples : Tuple.t array;
  (* Both caches are memoized per column on first touch.  Under domains
     two racers may encode the same column; the encodes are
     deterministic and the pointer store is atomic, so the race is
     benign (equal values, last write wins). *)
  cols : col option array;
  boxed : Value.t array option array;
}

let schema t = t.schema

let length t = t.length

let is_null nulls i = match nulls with None -> false | Some ns -> Bitset.get ns i

(* --- encoding -------------------------------------------------------- *)

(* Each encoder walks the column once; a value whose constructor does
   not match the declared type (possible through the unchecked
   [Relation.of_array]) aborts the typed encoding and the column falls
   back to [Generic]. *)

exception Fallback

(* Lazily-created null bitmap: most columns have none. *)
let mark_null nulls n i =
  let ns =
    match !nulls with
    | Some ns -> ns
    | None ->
      let ns = Bitset.create n in
      nulls := Some ns;
      ns
  in
  Bitset.set ns i

let encode_ints tuples j n =
  let data = Array.make n 0 in
  let nulls = ref None in
  for i = 0 to n - 1 do
    match Array.unsafe_get (Array.unsafe_get tuples i) j with
    | Value.Int v -> data.(i) <- v
    | Value.Null -> mark_null nulls n i
    | Value.Bool _ | Value.Float _ | Value.Str _ -> raise Fallback
  done;
  Ints { data; nulls = !nulls }

let encode_floats tuples j n =
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let nulls = ref None in
  for i = 0 to n - 1 do
    match Array.unsafe_get (Array.unsafe_get tuples i) j with
    | Value.Float v -> Bigarray.Array1.unsafe_set data i v
    | Value.Null ->
      Bigarray.Array1.unsafe_set data i 0.;
      mark_null nulls n i
    | Value.Bool _ | Value.Int _ | Value.Str _ -> raise Fallback
  done;
  Floats { data; nulls = !nulls }

let encode_bools tuples j n =
  let data = Bitset.create n in
  let nulls = ref None in
  for i = 0 to n - 1 do
    match Array.unsafe_get (Array.unsafe_get tuples i) j with
    | Value.Bool true -> Bitset.set data i
    | Value.Bool false -> ()
    | Value.Null -> mark_null nulls n i
    | Value.Int _ | Value.Float _ | Value.Str _ -> raise Fallback
  done;
  Bools { data; nulls = !nulls }

let encode_dict tuples j n =
  let codes = Array.make n (-1) in
  let lookup = Hashtbl.create 64 in
  let dict_rev = ref [] in
  let next = ref 0 in
  let has_null = ref false in
  for i = 0 to n - 1 do
    match Array.unsafe_get (Array.unsafe_get tuples i) j with
    | Value.Str s ->
      let code =
        match Hashtbl.find_opt lookup s with
        | Some code -> code
        | None ->
          let code = !next in
          incr next;
          Hashtbl.add lookup s code;
          dict_rev := s :: !dict_rev;
          code
      in
      codes.(i) <- code
    | Value.Null -> has_null := true
    | Value.Bool _ | Value.Int _ | Value.Float _ -> raise Fallback
  done;
  let dict = Array.make !next "" in
  List.iteri (fun k s -> dict.(!next - 1 - k) <- s) !dict_rev;
  Dict { codes; dict; lookup; has_null = !has_null }

let encode_generic tuples j n = Generic (Array.init n (fun i -> tuples.(i).(j)))

let encode_col tuples j n ty =
  try
    match ty with
    | Value.Tint -> encode_ints tuples j n
    | Value.Tfloat -> encode_floats tuples j n
    | Value.Tbool -> encode_bools tuples j n
    | Value.Tstr -> encode_dict tuples j n
    | Value.Tnull -> encode_generic tuples j n
  with Fallback -> encode_generic tuples j n

let of_tuples schema tuples =
  let arity = Schema.arity schema in
  {
    schema;
    length = Array.length tuples;
    tuples;
    cols = Array.make arity None;
    boxed = Array.make arity None;
  }

let col t j =
  match t.cols.(j) with
  | Some c -> c
  | None ->
    let c = encode_col t.tuples j t.length (Schema.attribute t.schema j).Schema.ty in
    t.cols.(j) <- Some c;
    c

(* --- decoding -------------------------------------------------------- *)

let value t i j =
  match col t j with
  | Ints { data; nulls } ->
    if is_null nulls i then Value.Null else Value.Int (Array.unsafe_get data i)
  | Floats { data; nulls } ->
    if is_null nulls i then Value.Null else Value.Float (Bigarray.Array1.unsafe_get data i)
  | Bools { data; nulls } ->
    if is_null nulls i then Value.Null else Value.Bool (Bitset.get data i)
  | Dict { codes; dict; _ } ->
    let code = Array.unsafe_get codes i in
    if code < 0 then Value.Null else Value.Str (Array.unsafe_get dict code)
  | Generic values -> Array.unsafe_get values i

let values t j =
  match t.boxed.(j) with
  | Some vs -> vs
  | None ->
    let vs =
      match col t j with
      | Generic vs -> vs
      | _ -> Array.init t.length (fun i -> value t i j)
    in
    t.boxed.(j) <- Some vs;
    vs

let to_tuples t =
  let arity = Schema.arity t.schema in
  Array.init t.length (fun i -> Array.init arity (fun j -> value t i j))

let iter_int t j f =
  match col t j with
  | Ints { data; nulls = None } ->
    Array.iter f data;
    true
  | Ints _ | Floats _ | Bools _ | Dict _ | Generic _ -> false

let iter_float t j f =
  match col t j with
  | Floats { data; nulls = None } ->
    for i = 0 to t.length - 1 do
      f (Bigarray.Array1.unsafe_get data i)
    done;
    true
  | Ints _ | Floats _ | Bools _ | Dict _ | Generic _ -> false
