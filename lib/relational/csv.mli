(** Minimal CSV persistence for relations (used by the CLI).

    Format: first line is the header [name:type,...] with types from
    {!Value.ty_to_string}; remaining records are comma-separated values.
    Fields containing commas, quotes or newlines are double-quoted with
    doubled inner quotes (RFC-4180 style); quoted fields may span
    lines, and empty fields are written as [""] so single-column empty
    values survive the roundtrip. *)

(** @raise Failure on malformed headers or rows.  Messages carry the
    1-based line number, and for value parse failures the 1-based field
    position and attribute name, so bad rows can be located in large
    files. *)
val read_string : string -> Relation.t

val write_string : Relation.t -> string

(** [iter_file path ~header ~row] streams the file without materializing
    it: [header] is called once with the parsed schema, then [row] once
    per record in file order.  Memory is bounded by the longest single
    record, so arbitrarily large files can be re-encoded (this is the
    [raestat pack] input path).  Same error contract as {!read_string}.
    @raise Sys_error on I/O failure, [Failure] on malformed content. *)
val iter_file : string -> header:(Schema.t -> unit) -> row:(Tuple.t -> unit) -> unit

(** @raise Sys_error on I/O failure, [Failure] on malformed content. *)
val load : string -> Relation.t

val save : string -> Relation.t -> unit
