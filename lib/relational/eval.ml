module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let project_relation names relation =
  let schema = Relation.schema relation in
  let indices =
    Array.of_list (List.map (fun name -> Schema.index_of schema name) names)
  in
  let out_schema = Schema.project schema names in
  Relation.map out_schema (fun t -> Tuple.project t indices) relation

let product_like ~keep l r =
  let out = ref [] in
  Relation.iter
    (fun tl ->
      Relation.iter
        (fun tr ->
          let t = Tuple.concat tl tr in
          if keep t then out := t :: !out)
        r)
    l;
  Array.of_list (List.rev !out)

(* Row-path hash join: build on the right side, probe with the left,
   preserving left-major output order like the nested-loop variants.
   [metrics] records per-probe hit/miss counts. *)
let row_equijoin ~metrics ~left_idx ~right_idx l r =
  let table = Tuple_hash.create (max 16 (Relation.cardinality r)) in
  Relation.iter
    (fun tr ->
      let key = Tuple.project tr right_idx in
      let bucket = try Tuple_hash.find table key with Not_found -> [] in
      Tuple_hash.replace table key (tr :: bucket))
    r;
  (* Buckets accumulate reversed; restore build order once here rather
     than rev-ing on every probe. *)
  Tuple_hash.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) table;
  let out = ref [] in
  Relation.iter
    (fun tl ->
      let key = Tuple.project tl left_idx in
      match Tuple_hash.find_opt table key with
      | None -> Obs.Metrics.probe_miss metrics
      | Some bucket ->
        Obs.Metrics.probe_hit metrics;
        List.iter (fun tr -> out := Tuple.concat tl tr :: !out) bucket)
    l;
  Array.of_list (List.rev !out)

(* Single-pair joins over columns that admit int key codes (null-free
   ints, dictionary strings) run on the columnar kernel — same output
   order, same probe accounting — and fall back to [row_equijoin]
   otherwise. *)
let hash_equijoin ?(metrics = Obs.Metrics.noop) ?(columnar = true) pairs l r =
  let sl = Relation.schema l and sr = Relation.schema r in
  let left_idx =
    Array.of_list (List.map (fun (a, _) -> Schema.index_of sl a) pairs)
  in
  let right_idx =
    Array.of_list (List.map (fun (_, b) -> Schema.index_of sr b) pairs)
  in
  let kernel_out () =
    if not (columnar && Column.enabled () && Array.length left_idx = 1) then None
    else begin
      let lt = Relation.tuples l and rt = Relation.tuples r in
      let out = ref [] in
      if
        Kernel.equijoin_iter ~metrics (Relation.columnar l) left_idx.(0)
          (Relation.columnar r) right_idx.(0) ~f:(fun li ri ->
            out := Tuple.concat (Array.unsafe_get lt li) (Array.unsafe_get rt ri) :: !out)
      then Some (Array.of_list (List.rev !out))
      else None
    end
  in
  match kernel_out () with
  | Some out -> out
  | None -> row_equijoin ~metrics ~left_idx ~right_idx l r

let hash_of_relation relation =
  let table = Tuple_hash.create (max 16 (Relation.cardinality relation)) in
  Relation.iter (fun t -> Tuple_hash.replace table t ()) relation;
  table

let rec eval ?(metrics = Obs.Metrics.noop) ?(columnar = true) catalog expr =
  let eval catalog expr = eval ~metrics ~columnar catalog expr in
  let out_schema = Expr.schema_of catalog expr in
  match expr with
  | Expr.Base name -> Catalog.find catalog name
  | Expr.Select (p, e) ->
    let relation = eval catalog e in
    Relation.filter_pred ~columnar p relation
  | Expr.Project (names, e) -> project_relation names (eval catalog e)
  | Expr.Distinct e -> Relation.distinct (eval catalog e)
  | Expr.Product (l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    Relation.of_array out_schema (product_like ~keep:(fun _ -> true) rl rr)
  | Expr.Equijoin (pairs, l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    Relation.of_array out_schema (hash_equijoin ~metrics ~columnar pairs rl rr)
  | Expr.Theta_join (p, l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    let keep = Predicate.compile out_schema p in
    Relation.of_array out_schema (product_like ~keep rl rr)
  | Expr.Union (l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    (* Retag the right side with the left schema (operands are
       union-compatible, names may differ). *)
    let rr = Relation.of_array (Relation.schema rl) (Relation.tuples rr) in
    Relation.distinct (Relation.append rl rr)
  | Expr.Inter (l, r) ->
    let rl = Relation.distinct (eval catalog l) in
    let table = hash_of_relation (eval catalog r) in
    Relation.filter (fun t -> Tuple_hash.mem table t) rl
  | Expr.Diff (l, r) ->
    let rl = Relation.distinct (eval catalog l) in
    let table = hash_of_relation (eval catalog r) in
    Relation.filter (fun t -> not (Tuple_hash.mem table t)) rl
  | Expr.Rename (_, e) ->
    let relation = eval catalog e in
    Relation.of_array out_schema (Relation.tuples relation)
  | Expr.Aggregate (by, specs, e) ->
    let input = eval catalog e in
    let rows =
      Aggregate_impl.run ~input_schema:(Relation.schema input) ~by ~specs
        (Array.to_seq (Relation.tuples input))
    in
    Relation.of_array out_schema (Array.of_list rows)

(* Counting fast paths that avoid materializing the result: a selection
   over a base relation is a kernel count, and a single-pair equijoin
   over base relations is a code → multiplicity table.  Probe
   accounting is identical to evaluating and measuring cardinality. *)
let count ?metrics ?(columnar = true) catalog expr =
  let kernel_count () =
    if not (columnar && Column.enabled ()) then None
    else
      match expr with
      | Expr.Select (p, Expr.Base name) ->
        Some (Relation.count_pred ~columnar p (Catalog.find catalog name))
      | Expr.Equijoin ([ (a, b) ], Expr.Base ln, Expr.Base rn) ->
        let l = Catalog.find catalog ln and r = Catalog.find catalog rn in
        let jl = Schema.index_of (Relation.schema l) a in
        let jr = Schema.index_of (Relation.schema r) b in
        Kernel.equijoin_count ?metrics (Relation.columnar l) jl (Relation.columnar r) jr
      | _ -> None
  in
  match kernel_count () with
  | Some n -> n
  | None -> Relation.cardinality (eval ?metrics ~columnar catalog expr)
