module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let project_relation names relation =
  let schema = Relation.schema relation in
  let indices =
    Array.of_list (List.map (fun name -> Schema.index_of schema name) names)
  in
  let out_schema = Schema.project schema names in
  Relation.map out_schema (fun t -> Tuple.project t indices) relation

let product_like ~keep l r =
  let out = ref [] in
  Relation.iter
    (fun tl ->
      Relation.iter
        (fun tr ->
          let t = Tuple.concat tl tr in
          if keep t then out := t :: !out)
        r)
    l;
  Array.of_list (List.rev !out)

(* Hash join: build on the right side, probe with the left, preserving
   left-major output order like the nested-loop variants.  [metrics]
   records per-probe hit/miss counts. *)
let hash_equijoin ?(metrics = Obs.Metrics.noop) pairs l r =
  let sl = Relation.schema l and sr = Relation.schema r in
  let left_idx =
    Array.of_list (List.map (fun (a, _) -> Schema.index_of sl a) pairs)
  in
  let right_idx =
    Array.of_list (List.map (fun (_, b) -> Schema.index_of sr b) pairs)
  in
  let table = Tuple_hash.create (max 16 (Relation.cardinality r)) in
  Relation.iter
    (fun tr ->
      let key = Tuple.project tr right_idx in
      let bucket = try Tuple_hash.find table key with Not_found -> [] in
      Tuple_hash.replace table key (tr :: bucket))
    r;
  (* Buckets accumulate reversed; restore build order once here rather
     than rev-ing on every probe. *)
  Tuple_hash.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) table;
  let out = ref [] in
  Relation.iter
    (fun tl ->
      let key = Tuple.project tl left_idx in
      match Tuple_hash.find_opt table key with
      | None -> Obs.Metrics.probe_miss metrics
      | Some bucket ->
        Obs.Metrics.probe_hit metrics;
        List.iter (fun tr -> out := Tuple.concat tl tr :: !out) bucket)
    l;
  Array.of_list (List.rev !out)

let hash_of_relation relation =
  let table = Tuple_hash.create (max 16 (Relation.cardinality relation)) in
  Relation.iter (fun t -> Tuple_hash.replace table t ()) relation;
  table

let rec eval ?(metrics = Obs.Metrics.noop) catalog expr =
  let eval catalog expr = eval ~metrics catalog expr in
  let out_schema = Expr.schema_of catalog expr in
  match expr with
  | Expr.Base name -> Catalog.find catalog name
  | Expr.Select (p, e) ->
    let relation = eval catalog e in
    let keep = Predicate.compile (Relation.schema relation) p in
    Relation.filter keep relation
  | Expr.Project (names, e) -> project_relation names (eval catalog e)
  | Expr.Distinct e -> Relation.distinct (eval catalog e)
  | Expr.Product (l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    Relation.of_array out_schema (product_like ~keep:(fun _ -> true) rl rr)
  | Expr.Equijoin (pairs, l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    Relation.of_array out_schema (hash_equijoin ~metrics pairs rl rr)
  | Expr.Theta_join (p, l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    let keep = Predicate.compile out_schema p in
    Relation.of_array out_schema (product_like ~keep rl rr)
  | Expr.Union (l, r) ->
    let rl = eval catalog l and rr = eval catalog r in
    (* Retag the right side with the left schema (operands are
       union-compatible, names may differ). *)
    let rr = Relation.of_array (Relation.schema rl) (Relation.tuples rr) in
    Relation.distinct (Relation.append rl rr)
  | Expr.Inter (l, r) ->
    let rl = Relation.distinct (eval catalog l) in
    let table = hash_of_relation (eval catalog r) in
    Relation.filter (fun t -> Tuple_hash.mem table t) rl
  | Expr.Diff (l, r) ->
    let rl = Relation.distinct (eval catalog l) in
    let table = hash_of_relation (eval catalog r) in
    Relation.filter (fun t -> not (Tuple_hash.mem table t)) rl
  | Expr.Rename (_, e) ->
    let relation = eval catalog e in
    Relation.of_array out_schema (Relation.tuples relation)
  | Expr.Aggregate (by, specs, e) ->
    let input = eval catalog e in
    let rows =
      Aggregate_impl.run ~input_schema:(Relation.schema input) ~by ~specs
        (Array.to_seq (Relation.tuples input))
    in
    Relation.of_array out_schema (Array.of_list rows)

let count ?metrics catalog expr = Relation.cardinality (eval ?metrics catalog expr)
