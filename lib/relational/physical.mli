(** Pull-based (Volcano-style) physical execution engine.

    {!Eval} materializes every intermediate result; this engine streams
    tuples through a pipeline of cursors instead, so selection /
    projection / join chains run in memory proportional to the hash
    tables they build, not to their intermediates — products in
    particular never materialize.  Both engines implement exactly the
    same semantics ({!of_expr} agrees with {!Eval.eval} on every
    expression; the test suite checks this on random inputs). *)

type cursor

(** Result schema of the pipeline. *)
val schema : cursor -> Schema.t

(** Pull the next tuple; [None] at end of stream. *)
val next : cursor -> Tuple.t option

(** Rewind to the beginning (cheap: re-runs the pipeline; hash tables
    built by blocking operators are rebuilt). *)
val reset : cursor -> unit

(** {1 Physical operators} *)

val scan : Relation.t -> cursor

val filter : (Tuple.t -> bool) -> cursor -> cursor

(** [project schema indices c] — cheap positional projection. *)
val project : Schema.t -> int array -> cursor -> cursor

(** Block-free nested-loop product (right input is reset per left
    tuple). *)
val nested_product : ?keep:(Tuple.t -> bool) -> Schema.t -> cursor -> cursor -> cursor

(** Hash join on positional key pairs; builds on the right input at
    first pull, streams the left.  [metrics] records probe
    hits/misses. *)
val hash_join :
  ?metrics:Obs.Metrics.t ->
  Schema.t -> left_key:int array -> right_key:int array -> cursor -> cursor -> cursor

(** Streaming duplicate elimination (hash set of emitted tuples). *)
val dedup : cursor -> cursor

(** Blocking sort by an arbitrary tuple order. *)
val sort : (Tuple.t -> Tuple.t -> int) -> cursor -> cursor

(** Blocking sort by the given key positions (lexicographic
    {!Value.compare}). *)
val sort_by : int array -> cursor -> cursor

(** Sort–merge equi-join: both inputs are sorted on their keys
    internally, then merged; equal-key groups on the right are buffered
    and replayed.  Same semantics as {!hash_join}; used by A-series
    benchmarks to compare join algorithms. *)
val merge_join :
  Schema.t -> left_key:int array -> right_key:int array -> cursor -> cursor -> cursor

(** Set operators (operands deduplicated, as in {!Eval}). *)
val union : cursor -> cursor -> cursor

val inter : cursor -> cursor -> cursor

val diff : cursor -> cursor -> cursor

(** {1 Whole-expression pipelines} *)

(** Compile an expression to a pipeline.  When columnar execution is
    enabled (see {!Column.enabled}) and not pinned off with
    [~columnar:false], selections over large base relations and
    single-pair equijoins of base relations with int-codeable keys
    stream through compiled {!Kernel} closures — identical tuples,
    order and probe accounting.
    @raise Failure on schema errors (as {!Expr.schema_of}). *)
val of_expr : ?metrics:Obs.Metrics.t -> ?columnar:bool -> Catalog.t -> Expr.t -> cursor

(** Drain a cursor into a relation. *)
val run : cursor -> Relation.t

(** Count the stream without materializing it. *)
val count : cursor -> int

(** [count_expr catalog e] = [Eval.count catalog e], constant-memory
    for SPJ pipelines. *)
val count_expr : ?metrics:Obs.Metrics.t -> ?columnar:bool -> Catalog.t -> Expr.t -> int
