(** Exact evaluation of relational algebra expressions.

    This is the ground truth the estimators are measured against.  Joins
    use hash joins on the equality attributes; θ-joins and products use
    nested loops; set operators hash-deduplicate. *)

(** [eval catalog e] materializes the result relation.  [metrics]
    (default disabled) records hash-probe hits/misses of every
    equi-join evaluated.
    @raise Failure on schema errors (see {!Expr.schema_of}). *)
val eval : ?metrics:Obs.Metrics.t -> Catalog.t -> Expr.t -> Relation.t

(** [count catalog e] is [Relation.cardinality (eval catalog e)]. *)
val count : ?metrics:Obs.Metrics.t -> Catalog.t -> Expr.t -> int
