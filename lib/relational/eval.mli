(** Exact evaluation of relational algebra expressions.

    This is the ground truth the estimators are measured against.  Joins
    use hash joins on the equality attributes; θ-joins and products use
    nested loops; set operators hash-deduplicate.

    When columnar execution is enabled (see {!Column.enabled}) and not
    pinned off with [~columnar:false], selections and single-attribute
    equijoins over int or string keys run on compiled columnar kernels
    ({!Kernel}).  Results, output order and metrics counters are
    identical to the row path. *)

(** [hash_equijoin pairs l r] joins two relations on attribute-name
    pairs, output in left-major order (probe order; within one probe,
    build order).  [metrics] records one probe hit/miss per left
    tuple. *)
val hash_equijoin :
  ?metrics:Obs.Metrics.t ->
  ?columnar:bool ->
  (string * string) list -> Relation.t -> Relation.t -> Tuple.t array

(** [eval catalog e] materializes the result relation.  [metrics]
    (default disabled) records hash-probe hits/misses of every
    equi-join evaluated.
    @raise Failure on schema errors (see {!Expr.schema_of}). *)
val eval : ?metrics:Obs.Metrics.t -> ?columnar:bool -> Catalog.t -> Expr.t -> Relation.t

(** [count catalog e] is [Relation.cardinality (eval catalog e)], with
    non-materializing columnar fast paths for [Select] and [Equijoin]
    over base relations. *)
val count : ?metrics:Obs.Metrics.t -> ?columnar:bool -> Catalog.t -> Expr.t -> int
