type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = Tnull | Tbool | Tint | Tfloat | Tstr

let type_of = function
  | Null -> Tnull
  | Bool _ -> Tbool
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstr

let ty_to_string = function
  | Tnull -> "null"
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstr -> "string"

(* Rank used to order values of distinct, non-numeric types. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

(* Same-constructor cases first: the hot paths (column scans, hash
   joins) compare within one typed column, so int/int, float/float and
   str/str must dispatch without touching the cross-type logic. *)
let compare v1 v2 =
  match v1, v2 with
  | Int i1, Int i2 -> Int.compare i1 i2
  | Float f1, Float f2 -> Float.compare f1 f2
  | Str s1, Str s2 -> String.compare s1 s2
  | Null, Null -> 0
  | Bool b1, Bool b2 -> Bool.compare b1 b2
  | Int i1, Float f2 -> Float.compare (float_of_int i1) f2
  | Float f1, Int i2 -> Float.compare f1 (float_of_int i2)
  | (Null | Bool _ | Int _ | Float _ | Str _), _ ->
    Int.compare (rank v1) (rank v2)

let equal v1 v2 =
  match v1, v2 with
  | Int i1, Int i2 -> i1 = i2
  | Float f1, Float f2 -> Float.compare f1 f2 = 0
  | Str s1, Str s2 -> String.equal s1 s2
  | Null, Null -> true
  | Bool b1, Bool b2 -> Bool.equal b1 b2
  | Int i, Float f | Float f, Int i -> Float.compare (float_of_int i) f = 0
  | (Null | Bool _ | Int _ | Float _ | Str _), _ -> false

(* Ints and floats that compare equal must hash equal (Int 3 vs
   Float 3.0).  Ints whose float image round-trips — every int a query
   realistically hashes — take an integer mix with no allocation; the
   non-round-tripping tail (|i| > 2^53) and genuine floats share the
   float image, so consistency holds on both sides of the split. *)
let hash_int i =
  let h = i lxor (i lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

(* H(float image) — the single function both numeric constructors
   reduce to, so equal numerics always agree. *)
let hash_float f =
  if Float.is_integer f && Float.abs f <= 9007199254740992. (* 2^53 *) then
    hash_int (int_of_float f)
  else if Float.is_nan f then 0x7FF8 (* all NaNs compare equal *)
  else Hashtbl.hash f

let hash = function
  | Null -> 0
  | Bool b -> if b then 2 else 1
  | Int i ->
    (* |i| <= 2^53: the float image is exactly i, so H would return
       [hash_int i] — skip the conversion. *)
    if i >= -0x20000000000000 && i <= 0x20000000000000 then hash_int i
    else hash_float (float_of_int i)
  | Float f -> hash_float f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string ty s =
  let fail () =
    failwith (Printf.sprintf "Value.of_string: %S is not a %s" s (ty_to_string ty))
  in
  match ty with
  | Tnull -> if s = "NULL" || s = "" then Null else fail ()
  | Tbool -> (match bool_of_string_opt s with Some b -> Bool b | None -> fail ())
  | Tint -> (match int_of_string_opt s with Some i -> Int i | None -> fail ())
  | Tfloat -> (match float_of_string_opt s with Some f -> Float f | None -> fail ())
  | Tstr -> Str s

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Bool b -> if b then 1. else 0.
  | Null -> invalid_arg "Value.to_float: Null"
  | Str _ -> invalid_arg "Value.to_float: Str"

let int i = Int i
let float f = Float f
let str s = Str s
let bool b = Bool b
