let needs_quoting field =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field

let quote field =
  (* An empty field is quoted so a single-column empty value does not
     render as a blank line (which record splitting would drop). *)
  if field = "" then "\"\""
  else if needs_quoting field then begin
    let buffer = Buffer.create (String.length field + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      field;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else field

(* Split one CSV record; assumes the record contains balanced quotes
   (multi-line fields are reassembled by the caller). *)
let split_record line =
  let fields = ref [] in
  let buffer = Buffer.create 32 in
  let len = String.length line in
  let rec loop i in_quotes =
    if i >= len then begin
      if in_quotes then failwith "Csv: unterminated quoted field";
      fields := Buffer.contents buffer :: !fields
    end
    else
      let c = line.[i] in
      if in_quotes then
        if c = '"' then
          if i + 1 < len && line.[i + 1] = '"' then begin
            Buffer.add_char buffer '"';
            loop (i + 2) true
          end
          else loop (i + 1) false
        else begin
          Buffer.add_char buffer c;
          loop (i + 1) true
        end
      else if c = '"' then loop (i + 1) true
      else if c = ',' then begin
        fields := Buffer.contents buffer :: !fields;
        Buffer.clear buffer;
        loop (i + 1) false
      end
      else begin
        Buffer.add_char buffer c;
        loop (i + 1) false
      end
  in
  loop 0 false;
  List.rev !fields

let ty_of_string = function
  | "null" -> Value.Tnull
  | "bool" -> Value.Tbool
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstr
  | s -> failwith (Printf.sprintf "Csv: unknown type %S in header" s)

let parse_header line =
  let parse_field field =
    match String.index_opt field ':' with
    | Some i ->
      let name = String.sub field 0 i in
      let ty = String.sub field (i + 1) (String.length field - i - 1) in
      (name, ty_of_string ty)
    | None -> failwith (Printf.sprintf "Csv: header field %S lacks a :type suffix" field)
  in
  Schema.of_list (List.map parse_field (split_record line))

let parse_value ty s = if s = "NULL" then Value.Null else Value.of_string ty s

(* Split into records at newlines that are outside quoted fields, so
   multi-line quoted values survive.  Tolerates CRLF.  Each record is
   tagged with the 1-based line number it starts on (quoted fields may
   span lines, so record index and line number can diverge). *)
let split_records content =
  let records = ref [] in
  let buffer = Buffer.create 128 in
  let in_quotes = ref false in
  let line = ref 1 in
  let record_line = ref 1 in
  let flush_record () =
    let record = Buffer.contents buffer in
    Buffer.clear buffer;
    let record =
      let n = String.length record in
      if n > 0 && record.[n - 1] = '\r' then String.sub record 0 (n - 1) else record
    in
    if record <> "" then records := (!record_line, record) :: !records;
    record_line := !line
  in
  String.iter
    (fun c ->
      if c = '"' then begin
        in_quotes := not !in_quotes;
        Buffer.add_char buffer c
      end
      else if c = '\n' then begin
        incr line;
        if !in_quotes then Buffer.add_char buffer c
        else flush_record ()
      end
      else Buffer.add_char buffer c)
    content;
  flush_record ();
  List.rev !records

let read_string content =
  let lines = split_records content in
  match lines with
  | [] -> failwith "Csv: empty input"
  | (header_line, header) :: rows ->
    let schema =
      try parse_header header
      with Failure message -> failwith (Printf.sprintf "%s (line %d)" message header_line)
    in
    let attrs = Array.of_list (Schema.attributes schema) in
    let parse_row (line, row) =
      let fields =
        try Array.of_list (split_record row)
        with Failure message -> failwith (Printf.sprintf "%s (line %d)" message line)
      in
      if Array.length fields <> Array.length attrs then
        failwith
          (Printf.sprintf "Csv: line %d: row has %d fields, header has %d" line
             (Array.length fields) (Array.length attrs));
      Array.mapi
        (fun i field ->
          try parse_value attrs.(i).Schema.ty field
          with Failure message ->
            failwith
              (Printf.sprintf "Csv: line %d, field %d (%s): %s" line (i + 1)
                 attrs.(i).Schema.name message))
        fields
    in
    Relation.make schema (List.map parse_row rows)

let write_string relation =
  let buffer = Buffer.create 1024 in
  let schema = Relation.schema relation in
  let header =
    Schema.attributes schema
    |> List.map (fun a -> quote a.Schema.name ^ ":" ^ Value.ty_to_string a.Schema.ty)
    |> String.concat ","
  in
  Buffer.add_string buffer header;
  Buffer.add_char buffer '\n';
  Relation.iter
    (fun tuple ->
      let row =
        Array.to_list tuple
        |> List.map (fun v -> quote (Value.to_string v))
        |> String.concat ","
      in
      Buffer.add_string buffer row;
      Buffer.add_char buffer '\n')
    relation;
  Buffer.contents buffer

(* Streaming record assembly: read physical lines, rejoining while the
   accumulated record has an odd number of quotes (a quoted field spans
   the newline).  Mirrors [split_records]: CRLF-tolerant, blank records
   skipped, records tagged with the 1-based line they start on. *)
let fold_channel_records ic ~init ~f =
  let quote_parity = ref false in
  let buffer = Buffer.create 128 in
  let line = ref 0 in
  let record_line = ref 1 in
  let acc = ref init in
  let flush_record () =
    let record = Buffer.contents buffer in
    Buffer.clear buffer;
    let record =
      let n = String.length record in
      if n > 0 && record.[n - 1] = '\r' then String.sub record 0 (n - 1) else record
    in
    if record <> "" then acc := f !acc !record_line record;
    record_line := !line + 1;
    quote_parity := false
  in
  (try
     while true do
       let physical = input_line ic in
       incr line;
       if Buffer.length buffer > 0 then Buffer.add_char buffer '\n';
       String.iter
         (fun c -> if c = '"' then quote_parity := not !quote_parity)
         physical;
       Buffer.add_string buffer physical;
       if not !quote_parity then flush_record ()
     done
   with End_of_file -> flush_record ());
  !acc

let iter_file path ~header ~row =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let attrs = ref [||] in
  let seen_header = ref false in
  let parse_row line fields_line =
    let attrs = !attrs in
    let fields =
      try Array.of_list (split_record fields_line)
      with Failure message -> failwith (Printf.sprintf "%s (line %d)" message line)
    in
    if Array.length fields <> Array.length attrs then
      failwith
        (Printf.sprintf "Csv: line %d: row has %d fields, header has %d" line
           (Array.length fields) (Array.length attrs));
    Array.mapi
      (fun i field ->
        try parse_value attrs.(i).Schema.ty field
        with Failure message ->
          failwith
            (Printf.sprintf "Csv: line %d, field %d (%s): %s" line (i + 1)
               attrs.(i).Schema.name message))
      fields
  in
  ignore
    (fold_channel_records ic ~init:() ~f:(fun () line record ->
         if not !seen_header then begin
           let schema =
             try parse_header record
             with Failure message ->
               failwith (Printf.sprintf "%s (line %d)" message line)
           in
           attrs := Array.of_list (Schema.attributes schema);
           seen_header := true;
           header schema
         end
         else row (parse_row line record)));
  if not !seen_header then failwith "Csv: empty input"

let load path =
  let ic = open_in_bin path in
  let content =
    try really_input_string ic (in_channel_length ic)
    with e ->
      close_in ic;
      raise e
  in
  close_in ic;
  read_string content

let save path relation =
  let oc = open_out_bin path in
  (try output_string oc (write_string relation)
   with e ->
     close_out oc;
     raise e);
  close_out oc
