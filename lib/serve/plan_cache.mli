(** Bounded LRU cache of compiled estimation plans.

    The serve daemon pays Expr → {!Raestat.Estplan} compilation
    (schema inference, optimizer, leaf annotation, scale/status
    propagation) once per {e query shape} and reuses the compiled plan
    across requests.  Keys are normalized strings built by
    {!Engine} from the printed expression plus every compile
    parameter that shapes the plan (fraction, groups, sample size) —
    two textual spellings of the same expression normalize to the same
    key because {!Relational.Parser.print_expr} is canonical.

    Re-running a cached {!Raestat.Estplan.t} is sound: the engine
    derives results from the request's RNG stream, and the only plan
    state mutated by a run is the per-node {!Raestat.Estplan.Moments}
    accumulators, which feed inspection, not results.  The cache is
    {e not} thread-safe; the server serializes access.

    Lookups record one [plan_cache_hits] / [plan_cache_misses] tick on
    the supplied {!Obs.Metrics} sink, so per-request metrics and the
    server-lifetime snapshot both expose the cache's effectiveness. *)

type t

(** [create ~capacity ()] — an empty cache evicting least-recently-used
    entries beyond [capacity].
    @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> unit -> t

(** [find_or_compile ?metrics t key compile] returns the cached plan
    for [key], or runs [compile ()], stores the result and returns it.
    Either way [key] becomes the most recently used entry. *)
val find_or_compile :
  ?metrics:Obs.Metrics.t -> t -> string -> (unit -> Raestat.Estplan.t) -> Raestat.Estplan.t

(** Drop every entry (catalog reload invalidation).  Hit/miss counters
    keep their lifetime totals. *)
val clear : t -> unit

val size : t -> int
val capacity : t -> int

(** Lifetime lookup counters (also mirrored on the metrics sinks). *)
val hits : t -> int

val misses : t -> int

(** Keys from most to least recently used (for tests/inspection). *)
val keys : t -> string list
