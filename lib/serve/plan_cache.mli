(** Bounded, thread-safe LRU cache of compiled estimation plans.

    The serve daemon pays Expr → {!Raestat.Estplan} compilation
    (schema inference, optimizer, leaf annotation, scale/status
    propagation) once per {e query shape} and reuses the compiled plan
    across requests.  Keys are normalized strings built by
    {!Engine} from the printed expression plus every compile
    parameter that shapes the plan (fraction, groups, sample size) —
    two textual spellings of the same expression normalize to the same
    key because {!Relational.Parser.print_expr} is canonical.

    Re-running a cached {!Raestat.Estplan.t} is sound: the engine
    derives results from the request's RNG stream, and the only plan
    state mutated by a run is the per-node {!Raestat.Estplan.Moments}
    accumulators, which feed inspection, not results.

    {2 Concurrency}

    Safe for concurrent use from any number of threads or domains.
    The cache is split into [shards] independent LRUs (keys hashed to
    a shard), each behind its own mutex; lock hold times are O(1).
    Compilation runs {e outside} the lock with single-flight dedup: a
    miss installs a pending placeholder, concurrent lookups of the
    same key wait for the first compile instead of repeating it, and a
    failed compile wakes the waiters to retry.  Consequently the miss
    count equals the number of plans actually compiled — with distinct
    keys, exactly one miss per shape regardless of arrival order or
    worker count (the serve conformance suite pins this).

    Lookups record [plan_cache_hits] / [plan_cache_misses] /
    [plan_cache_evictions] ticks on the supplied {!Obs.Metrics} sink,
    so per-request metrics and the server-lifetime snapshot both
    expose the cache's effectiveness. *)

type t

(** [create ~capacity ()] — an empty cache evicting least-recently-used
    entries beyond [capacity].  [shards] (default 1: one exact LRU)
    splits the cache into independent locks; each shard holds at most
    [ceil (capacity / shards)] entries, so per-shard skew can evict
    slightly before the nominal capacity is reached.
    @raise Invalid_argument when [capacity <= 0] or [shards <= 0]. *)
val create : capacity:int -> ?shards:int -> unit -> t

(** [find_or_compile ?metrics t key compile] returns the cached plan
    for [key], or runs [compile ()], stores the result and returns it.
    Either way [key] becomes the most recently used entry of its
    shard.  If [compile] raises, nothing is stored and the exception
    propagates (concurrent waiters on the same key retry). *)
val find_or_compile :
  ?metrics:Obs.Metrics.t -> t -> string -> (unit -> Raestat.Estplan.t) -> Raestat.Estplan.t

(** Drop every entry (catalog reload invalidation).  Hit/miss/eviction
    counters keep their lifetime totals; in-flight compiles still
    resolve their waiters but are not re-published into the cleared
    cache. *)
val clear : t -> unit

(** Ready (published) entries currently cached. *)
val size : t -> int

val capacity : t -> int

(** Lifetime lookup counters (also mirrored on the metrics sinks). *)
val hits : t -> int

val misses : t -> int

(** Entries dropped by LRU capacity pressure ([clear] not included). *)
val evictions : t -> int

(** Keys from most to least recently used within each shard, shards
    concatenated in index order (for tests/inspection; exact global
    recency order when [shards = 1]). *)
val keys : t -> string list
