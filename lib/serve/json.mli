(** Minimal JSON values for the serve wire protocol.

    The repository deliberately has no JSON library in its dependency
    set; this module covers exactly what the newline-delimited protocol
    needs: parse one request object, print one response object on a
    single line.  Numbers keep the int/float distinction ([Int] when the
    literal has no fraction or exponent and fits in an OCaml [int]) so
    seeds and sample sizes round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse s] reads one JSON value spanning the whole string (leading
    and trailing whitespace allowed).  Errors carry a byte offset. *)
val parse : string -> (t, string) result

(** Compact single-line rendering (no newlines, ASCII-safe escapes).
    Non-finite floats print as [null]. *)
val to_string : t -> string

(** {1 Object accessors} *)

(** Field of an [Obj], [None] otherwise. *)
val member : string -> t -> t option

(** [string_field ~default obj name] — a [Str] field, [default] when
    absent or [Null].
    @raise Failure when present with a non-string value. *)
val string_field : ?default:string -> t -> string -> string option

(** An [Int] field ([Float] accepted when integral).
    @raise Failure when present with a non-integer value. *)
val int_field : ?default:int -> t -> string -> int option

(** An [Int] or [Float] field as float.
    @raise Failure when present with a non-numeric value. *)
val float_field : ?default:float -> t -> string -> float option
