(** Warm per-relation estimation state for the serve daemon.

    One value of this type is built per catalog load (startup and each
    [reload]); it packages, per bound relation:

    - the in-memory relation (via {!catalog}) with its {e columnar
      view forced at load time} ({!Relational.Relation.warm_view}), so
      no request pays the first-touch encode and worker domains never
      race to build one;
    - a retained {e paged view} — for [.raf] bindings the pagefile
      stays open for this state's lifetime, so the reader's clock page
      cache persists across ["pages"] requests (repeat page-sampled
      estimates are served from memory, visible as [page_cache_hits]
      instead of [pages_read]);
    - a bounded LRU {e backing-sample cache}: SRSWOR index sets keyed
      by [relation × mode × n × universe × seed].  The draw is a pure
      function of that key, so a cached set is byte-for-byte the set
      the request would have drawn — serving it changes no response
      bits, only skips the draw work (and its [rng_draws] /
      [sample_indices] accounting, consistent with the real-work
      metrics discipline).

    {2 Invalidation and lifetime}

    There is no in-place invalidation: a [reload] builds a {e new}
    warm state, so every cache here is generation-scoped by
    construction.  Lifetime is refcounted — {!load} returns the owner
    reference, each in-flight request {!retain}s the state it reads
    and {!release}s it when done; the pagefiles close when the last
    reference drops, so a reload never yanks pages from under an
    in-flight page-sampled estimate.

    All operations are thread- and domain-safe. *)

type t

type sample_stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** cached index sets *)
  capacity : int;
}

(** Load every binding (same dispatch as {!Engine.load_relation}:
    [.raf] through the paged reader — kept open — anything else as
    CSV) and force the columnar views.  [sample_capacity] (default
    128) bounds the backing-sample LRU; 0 disables it.  The returned
    state holds the owner reference.
    @raise Invalid_argument when [sample_capacity < 0].
    @raise Sys_error / [Failure] as the underlying loaders do. *)
val load :
  ?metrics:Obs.Metrics.t ->
  ?sample_capacity:int ->
  ?page_capacity:int ->
  (string * string) list ->
  t

val catalog : t -> Relational.Catalog.t

(** Take / drop a reference.  {!release} of the last reference closes
    the retained pagefiles. *)
val retain : t -> unit

val release : t -> unit

(** Cached (or freshly drawn and published) SRSWOR index set; [draw]
    runs outside the cache lock on a miss.  The returned array is
    shared read-only state — callers must not mutate it. *)
val sample_indices :
  t ->
  relation:string ->
  seed:int ->
  n:int ->
  universe:int ->
  (unit -> int array) ->
  int array

(** {!sample_indices} curried into the shape {!Raestat.Estplan.run}
    accepts. *)
val index_source : t -> relation:string -> seed:int -> Raestat.Estplan.index_source

val sample_stats : t -> sample_stats

(** Run [f] on the relation's retained paged view, holding its I/O
    lock (the paged reader shares decode buffers; page-sampled
    requests for one relation serialize, different relations don't).
    @raise Failure (["unknown relation"]) for an unbound name. *)
val with_paged : t -> string -> (Relational.Paged.t -> 'a) -> 'a
