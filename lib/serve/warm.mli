(** Warm per-relation estimation state for the serve daemon.

    One value of this type is built per catalog load (startup and each
    [reload]); it packages, per bound relation:

    - the in-memory relation (via {!catalog}) with its {e columnar
      view forced at load time} ({!Relational.Relation.warm_view}), so
      no request pays the first-touch encode and worker domains never
      race to build one;
    - a retained {e paged view} — for [.raf] bindings the pagefile
      stays open for this state's lifetime, so the reader's clock page
      cache persists across ["pages"] requests (repeat page-sampled
      estimates are served from memory, visible as [page_cache_hits]
      instead of [pages_read]);
    - a bounded LRU {e backing-sample cache}: SRSWOR index sets keyed
      by [relation × mode × n × universe × seed].  The draw is a pure
      function of that key, so a cached set is byte-for-byte the set
      the request would have drawn — serving it changes no response
      bits, only skips the draw work (and its [rng_draws] /
      [sample_indices] accounting, consistent with the real-work
      metrics discipline).

    {2 Invalidation and lifetime}

    There is no in-place invalidation: a [reload] builds a {e new}
    warm state, so every cache here is generation-scoped by
    construction.  Lifetime is refcounted — {!load} returns the owner
    reference, each in-flight request {!retain}s the state it reads
    and {!release}s it when done; the pagefiles close when the last
    reference drops, so a reload never yanks pages from under an
    in-flight page-sampled estimate.

    All operations are thread- and domain-safe. *)

type t

type sample_stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** cached index sets *)
  capacity : int;
}

(** Load every binding (same dispatch as {!Engine.load_relation}:
    [.raf] through the paged reader — kept open — anything else as
    CSV) and force the columnar views.  [sample_capacity] (default
    128) bounds the backing-sample LRU; 0 disables it.  The returned
    state holds the owner reference.
    @raise Invalid_argument when [sample_capacity < 0].
    @raise Sys_error / [Failure] as the underlying loaders do. *)
val load :
  ?metrics:Obs.Metrics.t ->
  ?sample_capacity:int ->
  ?page_capacity:int ->
  (string * string) list ->
  t

val catalog : t -> Relational.Catalog.t

(** Take / drop a reference.  {!release} of the last reference closes
    the retained pagefiles. *)
val retain : t -> unit

val release : t -> unit

(** Cached (or freshly drawn and published) SRSWOR index set; [draw]
    runs outside the cache lock on a miss.  The returned array is
    shared read-only state — callers must not mutate it. *)
val sample_indices :
  t ->
  relation:string ->
  seed:int ->
  n:int ->
  universe:int ->
  (unit -> int array) ->
  int array

(** {!sample_indices} curried into the shape {!Raestat.Estplan.run}
    accepts. *)
val index_source : t -> relation:string -> seed:int -> Raestat.Estplan.index_source

val sample_stats : t -> sample_stats

(** Run [f] on the relation's retained paged view, holding its I/O
    lock (the paged reader shares decode buffers; page-sampled
    requests for one relation serialize, different relations don't).
    @raise Failure (["unknown relation"]) for an unbound name. *)
val with_paged : t -> string -> (Relational.Paged.t -> 'a) -> 'a

(** {2 Maintained streams}

    Relations that have been written to ([insert] / [delete] /
    [ingest]) are backed by a {!Raestat.Stream_relation}: the live
    population plus its maintained samples, serialized by a
    per-stream mutex.  All randomness is drawn at write time in
    operation order, so served reads are worker-count-invariant.
    Streams are scoped to this warm state — a [reload] starts from
    the (re)loaded static bindings with no streams. *)

type stream_info = {
  stream_name : string;
  stream_epoch : int;
  stream_population : int;
  stream_sample_size : int;
  stream_fill_ratio : float;
  stream_needs_rescan : bool;
}

(** Has this relation been converted to a maintained stream? *)
val has_stream : t -> string -> bool

(** Find-or-create the stream for [relation] (single-flight under the
    table lock); [true] when this call created it.  A name bound in
    the static catalog converts by ingesting its tuples in relation
    order — deterministic, so every worker layout converges on the
    same stream state.  An unbound name requires [schema].
    Creation parameters ([seed], [capacity], [bernoulli], [window])
    bind at first touch; later calls reuse the existing stream.
    Returns whether this call created the stream, plus the
    maintenance-counter delta of the conversion (zero for an existing
    stream) for attribution to the creating request.
    @raise Failure when the name is unbound and [schema] is [None]. *)
val ensure_stream :
  t ->
  relation:string ->
  seed:int ->
  capacity:int ->
  ?bernoulli:float ->
  ?window:int ->
  schema:Relational.Schema.t option ->
  unit ->
  bool * Obs.Metrics.snapshot

(** Run [f] on the named stream under its lock; returns [f]'s result
    plus the maintenance-counter delta it produced (snapshot/diff of
    the stream's own sink) for attribution to the calling request via
    {!Obs.Metrics.add_snapshot}.
    @raise Failure when no stream exists for the name. *)
val with_stream :
  t -> string -> (Raestat.Stream_relation.t -> 'a) -> 'a * Obs.Metrics.snapshot

(** Per-stream status rows, sorted by name. *)
val stream_infos : t -> stream_info list
