(* Thread-safe bounded LRU with single-flight compilation.

   Each shard is a hash table plus an intrusive doubly-linked recency
   list (O(1) lookup, promotion and eviction) behind its own mutex.
   Compilation happens *outside* the critical section: a miss installs
   a Pending placeholder, releases the lock, compiles, then publishes.
   Concurrent lookups of the same key block on the shard's condition
   variable instead of compiling again (single-flight), so the miss
   count equals the number of distinct compiled shapes no matter how
   many workers race — the serve conformance suite pins exact hit/miss
   totals under concurrent clients.

   Only Ready entries live on the recency list; Pending entries are
   never evicted (there is nothing to drop yet and waiters hold a
   reference).  [clear] detaches every entry from the table: an
   in-flight compile still resolves its waiters, but the stale plan is
   not re-published into the cleared cache. *)

type state =
  | Pending
  | Ready of Raestat.Estplan.t
  | Failed  (* compile raised: waiters retry from scratch *)

type entry = {
  key : string;
  mutable state : state;
  mutable in_table : bool;
  mutable prev : entry option; (* toward most recently used *)
  mutable next : entry option; (* toward least recently used *)
}

type shard = {
  lock : Mutex.t;
  resolved : Condition.t;
  table : (string, entry) Hashtbl.t;
  cap : int;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable linked : int; (* Ready entries on the recency list *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
}

type t = { nominal_cap : int; shards : shard array }

let create ~capacity ?(shards = 1) () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  if shards <= 0 then invalid_arg "Plan_cache.create: shards must be positive";
  let shards = min shards capacity in
  let shard_cap = (capacity + shards - 1) / shards in
  {
    nominal_cap = capacity;
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            resolved = Condition.create ();
            table = Hashtbl.create (min shard_cap 64);
            cap = shard_cap;
            mru = None;
            lru = None;
            linked = 0;
            hit_count = 0;
            miss_count = 0;
            eviction_count = 0;
          });
  }

let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let unlink s entry =
  (match entry.prev with
  | Some p -> p.next <- entry.next
  | None -> s.mru <- entry.next);
  (match entry.next with
  | Some n -> n.prev <- entry.prev
  | None -> s.lru <- entry.prev);
  entry.prev <- None;
  entry.next <- None

let push_front s entry =
  entry.next <- s.mru;
  entry.prev <- None;
  (match s.mru with
  | Some m -> m.prev <- Some entry
  | None -> s.lru <- Some entry);
  s.mru <- Some entry

(* Caller holds [s.lock]. *)
let promote s entry =
  unlink s entry;
  push_front s entry

(* Caller holds [s.lock].  Drop least-recently-used Ready entries until
   the shard fits its capacity again. *)
let enforce_capacity ~metrics s =
  while s.linked > s.cap do
    match s.lru with
    | Some victim ->
      unlink s victim;
      s.linked <- s.linked - 1;
      victim.in_table <- false;
      Hashtbl.remove s.table victim.key;
      s.eviction_count <- s.eviction_count + 1;
      Obs.Metrics.plan_cache_eviction metrics
    | None -> ()
  done

let find_or_compile ?(metrics = Obs.Metrics.noop) t key compile =
  let s = shard_of t key in
  let rec lookup () =
    Mutex.lock s.lock;
    match Hashtbl.find_opt s.table key with
    | Some entry -> (
      (* Wait out an in-flight compile for this key. *)
      let is_pending () = match entry.state with Pending -> true | _ -> false in
      while is_pending () do
        Condition.wait s.resolved s.lock
      done;
      match entry.state with
      | Ready plan ->
        s.hit_count <- s.hit_count + 1;
        Obs.Metrics.plan_cache_hit metrics;
        if entry.in_table then promote s entry;
        Mutex.unlock s.lock;
        plan
      | Failed | Pending ->
        (* The compiler failed (its exception went to that caller);
           retry as a fresh lookup. *)
        Mutex.unlock s.lock;
        lookup ())
    | None -> (
      let entry = { key; state = Pending; in_table = true; prev = None; next = None } in
      Hashtbl.replace s.table key entry;
      Mutex.unlock s.lock;
      match compile () with
      | plan ->
        Mutex.lock s.lock;
        entry.state <- Ready plan;
        s.miss_count <- s.miss_count + 1;
        Obs.Metrics.plan_cache_miss metrics;
        if entry.in_table then begin
          push_front s entry;
          s.linked <- s.linked + 1;
          enforce_capacity ~metrics s
        end;
        Condition.broadcast s.resolved;
        Mutex.unlock s.lock;
        plan
      | exception exn ->
        Mutex.lock s.lock;
        entry.state <- Failed;
        if entry.in_table then begin
          entry.in_table <- false;
          Hashtbl.remove s.table key
        end;
        Condition.broadcast s.resolved;
        Mutex.unlock s.lock;
        raise exn)
  in
  lookup ()

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.iter (fun _ entry -> entry.in_table <- false) s.table;
      Hashtbl.reset s.table;
      s.mru <- None;
      s.lru <- None;
      s.linked <- 0;
      Mutex.unlock s.lock)
    t.shards

let sum t f =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.lock;
      let v = f s in
      Mutex.unlock s.lock;
      acc + v)
    0 t.shards

let size t = sum t (fun s -> s.linked)
let capacity t = t.nominal_cap
let hits t = sum t (fun s -> s.hit_count)
let misses t = sum t (fun s -> s.miss_count)
let evictions t = sum t (fun s -> s.eviction_count)

let keys t =
  List.concat_map
    (fun s ->
      Mutex.lock s.lock;
      let rec go acc = function
        | None -> List.rev acc
        | Some e -> go (e.key :: acc) e.next
      in
      let ks = go [] s.mru in
      Mutex.unlock s.lock;
      ks)
    (Array.to_list t.shards)
