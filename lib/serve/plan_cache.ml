(* Bounded LRU over a hash table plus an intrusive doubly-linked
   recency list: O(1) lookup, promotion and eviction. *)

type entry = {
  key : string;
  plan : Raestat.Estplan.t;
  mutable prev : entry option; (* toward most recently used *)
  mutable next : entry option; (* toward least recently used *)
}

type t = {
  cap : int;
  table : (string, entry) Hashtbl.t;
  mutable mru : entry option;
  mutable lru : entry option;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity () =
  if capacity <= 0 then invalid_arg "Plan_cache.create: capacity must be positive";
  {
    cap = capacity;
    table = Hashtbl.create (min capacity 64);
    mru = None;
    lru = None;
    hit_count = 0;
    miss_count = 0;
  }

let unlink t entry =
  (match entry.prev with
  | Some p -> p.next <- entry.next
  | None -> t.mru <- entry.next);
  (match entry.next with
  | Some n -> n.prev <- entry.prev
  | None -> t.lru <- entry.prev);
  entry.prev <- None;
  entry.next <- None

let push_front t entry =
  entry.next <- t.mru;
  entry.prev <- None;
  (match t.mru with
  | Some m -> m.prev <- Some entry
  | None -> t.lru <- Some entry);
  t.mru <- Some entry

let find_or_compile ?(metrics = Obs.Metrics.noop) t key compile =
  match Hashtbl.find_opt t.table key with
  | Some entry ->
    t.hit_count <- t.hit_count + 1;
    Obs.Metrics.plan_cache_hit metrics;
    unlink t entry;
    push_front t entry;
    entry.plan
  | None ->
    t.miss_count <- t.miss_count + 1;
    Obs.Metrics.plan_cache_miss metrics;
    let plan = compile () in
    (if Hashtbl.length t.table >= t.cap then
       match t.lru with
       | Some victim ->
         unlink t victim;
         Hashtbl.remove t.table victim.key
       | None -> ());
    let entry = { key; plan; prev = None; next = None } in
    Hashtbl.replace t.table key entry;
    push_front t entry;
    plan

let clear t =
  Hashtbl.reset t.table;
  t.mru <- None;
  t.lru <- None

let size t = Hashtbl.length t.table
let capacity t = t.cap
let hits t = t.hit_count
let misses t = t.miss_count

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some e -> go (e.key :: acc) e.next
  in
  go [] t.mru
