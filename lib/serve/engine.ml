module P = Relational.Predicate
module Expr = Relational.Expr
module Estimate = Stats.Estimate
module Metrics = Obs.Metrics

(* --- input parsing and loading --------------------------------------- *)

let parse_predicate text =
  let text = String.trim text in
  let ops =
    (* Longest operators first so "<=" is not read as "<". *)
    [ ("<=", P.le); (">=", P.ge); ("!=", P.neq); ("<", P.lt); (">", P.gt); ("=", P.eq) ]
  in
  let find_op () =
    List.find_map
      (fun (symbol, make) ->
        let sl = String.length symbol and tl = String.length text in
        let rec search i =
          if i + sl > tl then None
          else if String.sub text i sl = symbol then Some (i, sl, make)
          else search (i + 1)
        in
        search 0)
      ops
  in
  match find_op () with
  | None -> Error (`Msg (Printf.sprintf "no comparison operator in filter %S" text))
  | Some (i, sl, make) ->
    let attr = String.trim (String.sub text 0 i) in
    let value = String.trim (String.sub text (i + sl) (String.length text - i - sl)) in
    if attr = "" || value = "" then Error (`Msg "empty side in filter")
    else
      let rhs =
        match int_of_string_opt value with
        | Some n -> P.vint n
        | None -> (
          match float_of_string_opt value with
          | Some f -> P.vfloat f
          | None -> P.vstr value)
      in
      Ok (make (P.attr attr) rhs)

let predicate_of_string text =
  match parse_predicate text with
  | Ok predicate -> predicate
  | Error (`Msg message) -> failwith message

let parse_binding spec =
  match String.index_opt spec '=' with
  | Some i -> (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  | None -> failwith (Printf.sprintf "--rel expects NAME=PATH, got %S" spec)

let is_pagefile path = Filename.check_suffix path ".raf"

let load_relation ?metrics path =
  if is_pagefile path then begin
    let pf = Relational.Pagefile.openfile path in
    Fun.protect
      ~finally:(fun () -> Relational.Pagefile.close pf)
      (fun () -> Relational.Pagefile.to_relation ?metrics pf)
  end
  else Relational.Csv.load path

let load_catalog ?metrics bindings =
  Relational.Catalog.of_list
    (List.map (fun (name, path) -> (name, load_relation ?metrics path)) bindings)

(* --- validation ------------------------------------------------------- *)

(* The comparisons are written so NaN fails them too: downstream checks
   use plain [<] / [>], which NaN slips through. *)

let check_fraction fraction =
  if not (fraction > 0. && fraction <= 1.) then
    failwith (Printf.sprintf "--fraction %g outside (0, 1]" fraction)

let check_unit_open ~option value =
  if not (value > 0. && value < 1.) then
    failwith (Printf.sprintf "%s %g outside (0, 1)" option value)

(* Same message Count_estimator.estimate raises, so the CLI's error
   contract is unchanged by routing through the plan cache. *)
let check_groups groups =
  if groups < 1 then invalid_arg "Count_estimator.estimate: groups must be >= 1"

(* --- plan-cache keys -------------------------------------------------- *)

let selection_key ~relation ~n predicate =
  Printf.sprintf "selection|%s|n=%d|%s" relation n (P.to_string predicate)

(* The optimizer setting is part of the key: an optimized plan and the
   historical root-sampling plan for the same expression are different
   executables, and a cache hit across the two settings would silently
   serve the wrong one.  The optimizer version rides along so bumping
   the cost model invalidates old optimized entries on upgrade. *)
let expr_key ~fraction ~groups ~optimize expr =
  Printf.sprintf "expr|f=%.17g|g=%d|opt=%s|%s" fraction groups
    (if optimize then Printf.sprintf "v%d" Raestat.Planner.optimizer_version else "off")
    (Relational.Parser.print_expr expr)

(* [prefix] namespaces server-side keys by catalog generation: a plan
   compiled against a pre-reload catalog must not be published under a
   post-reload key even if its compile outlives the reload. *)
let plan_for ~metrics ~prefix plans key compile =
  match plans with
  | Some cache -> Plan_cache.find_or_compile ~metrics cache (prefix ^ key) compile
  | None -> compile ()

(* --- estimation ------------------------------------------------------- *)

type result = {
  text : string;
  estimate : Stats.Estimate.t;
  expr : Relational.Expr.t;
}

let estimate ?(metrics = Metrics.noop) ?plans ?(plan_prefix = "") ?index_source rng
    catalog ~relation ~fraction ~level predicate =
  check_fraction fraction;
  check_unit_open ~option:"--level" level;
  let big_n = Relational.Relation.cardinality (Relational.Catalog.find catalog relation) in
  let n = Sampling.Srs.size_of_fraction ~fraction big_n in
  let plan =
    plan_for ~metrics ~prefix:plan_prefix plans
      (selection_key ~relation ~n predicate)
      (fun () -> Raestat.Estplan.selection_plan catalog ~relation ~n predicate)
  in
  let est =
    Metrics.with_span metrics (Printf.sprintf "selection %s" relation) (fun () ->
        Raestat.Estplan.run ~metrics ?index_source rng catalog plan)
  in
  let ci = Estimate.ci ~level est in
  let buffer = Buffer.create 128 in
  Printf.bprintf buffer "estimated COUNT: %.0f\n" est.Estimate.point;
  Printf.bprintf buffer "sampled %d of %d tuples (%.2f%%)\n" n big_n
    (* An empty relation is a census of nothing — 100%, not 0/0. *)
    (if big_n = 0 then 100. else 100. *. float_of_int n /. float_of_int big_n);
  Printf.bprintf buffer "%.0f%% CI: [%.0f, %.0f]\n" (100. *. level)
    ci.Stats.Confidence.lo ci.Stats.Confidence.hi;
  {
    text = Buffer.contents buffer;
    estimate = est;
    expr = Expr.select predicate (Expr.base relation);
  }

(* Filter COUNT answered from a maintained stream's backing sample:
   never rescans the live store, so freshness is free.  One render path
   shared by the daemon's stream-aware "estimate" and the one-shot
   [raestat ingest --where], so the two stay byte-identical. *)
let estimate_stream ?(metrics = Metrics.noop) ~relation ~level stream predicate =
  check_unit_open ~option:"--level" level;
  let module SR = Raestat.Stream_relation in
  let est =
    Metrics.with_span metrics
      (Printf.sprintf "stream-selection %s" relation)
      (fun () -> SR.estimate_count stream predicate)
  in
  let n = SR.sample_size stream and population = SR.population stream in
  let buffer = Buffer.create 128 in
  Printf.bprintf buffer "estimated COUNT: %.0f\n" est.Estimate.point;
  Printf.bprintf buffer "sampled %d of %d tuples (%.2f%%), maintained at epoch %d\n" n
    population
    (if population = 0 then 100. else 100. *. float_of_int n /. float_of_int population)
    (SR.epoch stream);
  if Estimate.has_variance est then begin
    let ci = Estimate.ci ~level est in
    Printf.bprintf buffer "%.0f%% CI: [%.0f, %.0f]\n" (100. *. level)
      ci.Stats.Confidence.lo ci.Stats.Confidence.hi
  end;
  if SR.needs_rescan stream then
    Buffer.add_string buffer "note: sample eroded by deletions; rescan recommended\n";
  {
    text = Buffer.contents buffer;
    estimate = est;
    expr = Expr.select predicate (Expr.base relation);
  }

(* Cluster sampling over whole pages ([raestat estimate --pages] and
   the daemon's "pages" request field): one render path so daemon
   responses stay byte-identical to the one-shot CLI.  Over a pagefile
   only the sampled pages are fetched — real I/O on [metrics]. *)
let estimate_pages ?(metrics = Metrics.noop) rng ~relation ~m ~level paged predicate =
  check_unit_open ~option:"--level" level;
  let result = Raestat.Cluster_estimator.count ~metrics rng ~m paged predicate in
  let est = result.Raestat.Cluster_estimator.estimate in
  let buffer = Buffer.create 128 in
  Printf.bprintf buffer "estimated COUNT: %.0f\n" est.Estimate.point;
  Printf.bprintf buffer "sampled %d of %d pages (%d tuples)\n" m
    (Relational.Paged.page_count paged)
    result.Raestat.Cluster_estimator.tuples_read;
  if Estimate.has_variance est then begin
    let ci = Estimate.ci ~level est in
    Printf.bprintf buffer "%.0f%% CI: [%.0f, %.0f]\n" (100. *. level)
      ci.Stats.Confidence.lo ci.Stats.Confidence.hi
  end;
  {
    text = Buffer.contents buffer;
    estimate = est;
    expr = Expr.select predicate (Expr.base relation);
  }

(* Shared body of query and sql: cached (or fresh) compile, run inside
   the span Count_estimator.estimate would open, CLI-identical text. *)
let run_expr ~metrics ~plans ~plan_prefix ~domains ~optimize rng catalog ~fraction
    ~groups expr =
  check_fraction fraction;
  check_groups groups;
  (* The kill switch folds into the effective setting, so a disabled
     optimizer shares cache entries with plain requests — they compile
     the identical plan. *)
  let optimize = optimize && Raestat.Planner.optimize_enabled () in
  let printed = Relational.Parser.print_expr expr in
  let plan =
    plan_for ~metrics ~prefix:plan_prefix plans
      (expr_key ~fraction ~groups ~optimize expr)
      (fun () ->
        if optimize then
          (Raestat.Planner.choose_sampling ~metrics ~groups catalog ~fraction expr)
            .Raestat.Planner.chosen
        else Raestat.Estplan.compile ~groups catalog ~fraction expr)
  in
  let est =
    Metrics.with_span metrics
      (Printf.sprintf "estimate %s" printed)
      (fun () -> Raestat.Estplan.run ?domains ~metrics rng catalog plan)
  in
  let buffer = Buffer.create 128 in
  Printf.bprintf buffer "estimated COUNT: %.0f (%s, %d tuples read)\n" est.Estimate.point
    (Estimate.status_to_string est.Estimate.status)
    est.Estimate.sample_size;
  if Estimate.has_variance est then begin
    let ci = Estimate.ci ~level:0.95 est in
    Printf.bprintf buffer "95%% CI: [%.0f, %.0f]\n" ci.Stats.Confidence.lo
      ci.Stats.Confidence.hi
  end;
  (printed, est, Buffer.contents buffer)

let query ?(metrics = Metrics.noop) ?plans ?(plan_prefix = "") ?domains
    ?(optimize = false) rng catalog ~fraction ~groups expr =
  let printed, est, body =
    run_expr ~metrics ~plans ~plan_prefix ~domains ~optimize rng catalog ~fraction
      ~groups expr
  in
  { text = Printf.sprintf "expression: %s\n%s" printed body; estimate = est; expr }

let sql_expr catalog text =
  let expr = Relational.Sql.parse_optimized catalog text in
  (* SELECT COUNT( * ) asks for a cardinality: estimate the inner
     expression's COUNT rather than the 1-row aggregate result. *)
  Option.value (Relational.Sql.count_star_target expr) ~default:expr

let sql ?(metrics = Metrics.noop) ?plans ?(plan_prefix = "") ?domains ?(optimize = false)
    rng catalog ~fraction ~groups text =
  let expr = sql_expr catalog text in
  let printed, est, body =
    run_expr ~metrics ~plans ~plan_prefix ~domains ~optimize rng catalog ~fraction
      ~groups expr
  in
  { text = Printf.sprintf "algebra: %s\n%s" printed body; estimate = est; expr }

(* --- explain ---------------------------------------------------------- *)

let explain_selection catalog ~relation ~fraction predicate =
  check_fraction fraction;
  let big_n = Relational.Relation.cardinality (Relational.Catalog.find catalog relation) in
  let n = Sampling.Srs.size_of_fraction ~fraction big_n in
  Raestat.Estplan.selection_plan catalog ~relation ~n predicate

let explain_expr catalog ~fraction ~groups expr =
  check_fraction fraction;
  check_groups groups;
  Raestat.Estplan.compile ~groups catalog ~fraction expr

(* Explains always compile fresh (never cached), so the candidate table
   reflects the current catalog; callers fall back to [explain_expr]
   when the kill switch disables the optimizer. *)
let explain_expr_optimized ?(metrics = Metrics.noop) catalog ~fraction ~groups expr =
  check_fraction fraction;
  check_groups groups;
  Raestat.Planner.choose_sampling ~metrics ~groups catalog ~fraction expr
