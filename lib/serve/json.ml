type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- parser ---------------------------------------------------------- *)

exception Parse_error of int * string

let error pos message = raise (Parse_error (pos, message))

type state = { text : string; len : int; mutable pos : int }

let peek s = if s.pos < s.len then Some s.text.[s.pos] else None

let skip_ws s =
  while
    s.pos < s.len
    && match s.text.[s.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    s.pos <- s.pos + 1
  done

let expect s ch =
  match peek s with
  | Some c when c = ch -> s.pos <- s.pos + 1
  | _ -> error s.pos (Printf.sprintf "expected %C" ch)

let literal s word value =
  let n = String.length word in
  if s.pos + n <= s.len && String.sub s.text s.pos n = word then begin
    s.pos <- s.pos + n;
    value
  end
  else error s.pos (Printf.sprintf "expected %s" word)

let parse_string s =
  expect s '"';
  let buffer = Buffer.create 16 in
  let rec go () =
    if s.pos >= s.len then error s.pos "unterminated string";
    let c = s.text.[s.pos] in
    s.pos <- s.pos + 1;
    match c with
    | '"' -> Buffer.contents buffer
    | '\\' ->
      (if s.pos >= s.len then error s.pos "unterminated escape";
       let e = s.text.[s.pos] in
       s.pos <- s.pos + 1;
       match e with
       | '"' -> Buffer.add_char buffer '"'
       | '\\' -> Buffer.add_char buffer '\\'
       | '/' -> Buffer.add_char buffer '/'
       | 'b' -> Buffer.add_char buffer '\b'
       | 'f' -> Buffer.add_char buffer '\012'
       | 'n' -> Buffer.add_char buffer '\n'
       | 'r' -> Buffer.add_char buffer '\r'
       | 't' -> Buffer.add_char buffer '\t'
       | 'u' ->
         if s.pos + 4 > s.len then error s.pos "truncated \\u escape";
         let code =
           try int_of_string ("0x" ^ String.sub s.text s.pos 4)
           with Failure _ -> error s.pos "bad \\u escape"
         in
         s.pos <- s.pos + 4;
         (* UTF-8 encode the code point; surrogate pairs are not
            recombined — the protocol is ASCII in practice. *)
         if code < 0x80 then Buffer.add_char buffer (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> error (s.pos - 1) "bad escape");
      go ()
    | c when Char.code c < 0x20 -> error (s.pos - 1) "control character in string"
    | c ->
      Buffer.add_char buffer c;
      go ()
  in
  go ()

let parse_number s =
  let start = s.pos in
  let is_float = ref false in
  if peek s = Some '-' then s.pos <- s.pos + 1;
  let digits () =
    let d0 = s.pos in
    while s.pos < s.len && match s.text.[s.pos] with '0' .. '9' -> true | _ -> false do
      s.pos <- s.pos + 1
    done;
    if s.pos = d0 then error s.pos "expected digit"
  in
  digits ();
  if peek s = Some '.' then begin
    is_float := true;
    s.pos <- s.pos + 1;
    digits ()
  end;
  (match peek s with
  | Some ('e' | 'E') ->
    is_float := true;
    s.pos <- s.pos + 1;
    (match peek s with
    | Some ('+' | '-') -> s.pos <- s.pos + 1
    | _ -> ());
    digits ()
  | _ -> ());
  let lexeme = String.sub s.text start (s.pos - start) in
  if !is_float then Float (float_of_string lexeme)
  else
    match int_of_string_opt lexeme with
    | Some n -> Int n
    | None -> Float (float_of_string lexeme)

let rec parse_value s =
  skip_ws s;
  match peek s with
  | None -> error s.pos "unexpected end of input"
  | Some '"' -> Str (parse_string s)
  | Some '{' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some '}' then begin
      s.pos <- s.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws s;
        let key = parse_string s in
        skip_ws s;
        expect s ':';
        let value = parse_value s in
        fields := (key, value) :: !fields;
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          members ()
        | Some '}' -> s.pos <- s.pos + 1
        | _ -> error s.pos "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    s.pos <- s.pos + 1;
    skip_ws s;
    if peek s = Some ']' then begin
      s.pos <- s.pos + 1;
      List []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let value = parse_value s in
        items := value :: !items;
        skip_ws s;
        match peek s with
        | Some ',' ->
          s.pos <- s.pos + 1;
          elements ()
        | Some ']' -> s.pos <- s.pos + 1
        | _ -> error s.pos "expected ',' or ']'"
      in
      elements ();
      List (List.rev !items)
    end
  | Some 't' -> literal s "true" (Bool true)
  | Some 'f' -> literal s "false" (Bool false)
  | Some 'n' -> literal s "null" Null
  | Some ('-' | '0' .. '9') -> parse_number s
  | Some c -> error s.pos (Printf.sprintf "unexpected character %C" c)

let parse text =
  let s = { text; len = String.length text; pos = 0 } in
  match parse_value s with
  | value ->
    skip_ws s;
    if s.pos <> s.len then
      Error (Printf.sprintf "trailing garbage at offset %d" s.pos)
    else Ok value
  | exception Parse_error (pos, message) ->
    Error (Printf.sprintf "%s at offset %d" message pos)

(* --- printer --------------------------------------------------------- *)

let escape buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' | '\\' ->
        Buffer.add_char buffer '\\';
        Buffer.add_char buffer ch
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buffer ch)
    s;
  Buffer.add_char buffer '"'

let to_string value =
  let buffer = Buffer.create 64 in
  let rec go = function
    | Null -> Buffer.add_string buffer "null"
    | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
    | Int n -> Buffer.add_string buffer (string_of_int n)
    | Float f ->
      if Float.is_finite f then
        (* Shortest round-trip representation keeps the line compact. *)
        Buffer.add_string buffer (Printf.sprintf "%.17g" f)
      else Buffer.add_string buffer "null"
    | Str s -> escape buffer s
    | List items ->
      Buffer.add_char buffer '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buffer ", ";
          go item)
        items;
      Buffer.add_char buffer ']'
    | Obj fields ->
      Buffer.add_char buffer '{';
      List.iteri
        (fun i (key, item) ->
          if i > 0 then Buffer.add_string buffer ", ";
          escape buffer key;
          Buffer.add_string buffer ": ";
          go item)
        fields;
      Buffer.add_char buffer '}'
  in
  go value;
  Buffer.contents buffer

(* --- accessors ------------------------------------------------------- *)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let field_error name what =
  failwith (Printf.sprintf "request field %S must be %s" name what)

let string_field ?default obj name =
  match member name obj with
  | None | Some Null -> default
  | Some (Str s) -> Some s
  | Some _ -> field_error name "a string"

let int_field ?default obj name =
  match member name obj with
  | None | Some Null -> default
  | Some (Int n) -> Some n
  | Some (Float f) when Float.is_integer f -> Some (int_of_float f)
  | Some _ -> field_error name "an integer"

let float_field ?default obj name =
  match member name obj with
  | None | Some Null -> default
  | Some (Int n) -> Some (float_of_int n)
  | Some (Float f) -> Some f
  | Some _ -> field_error name "a number"
