(** Shared request engine for the one-shot CLI and the serve daemon.

    Both front ends answer `estimate`/`query`/`sql`/`explain` by
    calling the functions here, so the rendered text is byte-identical
    by construction: the serve conformance suite compares daemon
    responses against one-shot CLI output with [cmp].

    The functions accept an optional {!Plan_cache.t}.  With a cache,
    Expr → {!Raestat.Estplan} compilation is skipped for repeated query
    shapes (the daemon's prepared-plan cache); without one, every call
    compiles fresh (the one-shot CLI).  Results are identical either
    way — a cached plan re-run draws from the same RNG stream and the
    only state a run mutates in the plan is the inspection-only moment
    accumulators. *)

(** {1 Input parsing and loading} *)

(** Tiny filter language ["attr OP value"], OP ∈ = != < <= > >=.
    Numeric literals become ints or floats, anything else a string. *)
val parse_predicate : string -> (Relational.Predicate.t, [ `Msg of string ]) result

(** Like {!parse_predicate} but raising [Failure] (serve error path). *)
val predicate_of_string : string -> Relational.Predicate.t

(** ["NAME=PATH"] → [(name, path)]. @raise Failure otherwise. *)
val parse_binding : string -> string * string

val is_pagefile : string -> bool

(** Load one relation, dispatching on extension: [*.raf] through the
    paged reader (real I/O, charged to [metrics]), anything else as
    in-memory CSV. *)
val load_relation : ?metrics:Obs.Metrics.t -> string -> Relational.Relation.t

val load_catalog :
  ?metrics:Obs.Metrics.t -> (string * string) list -> Relational.Catalog.t

(** {1 Validation}

    Same messages as the historical CLI guards; both route into the
    [raestat: error:] / exit-3 contract there and into JSON error
    responses in the daemon. *)

val check_fraction : float -> unit
val check_unit_open : option:string -> float -> unit
val check_groups : int -> unit

(** {1 Plan-cache keys}

    Normalized strings: the canonical {!Relational.Parser.print_expr}
    rendering (or the predicate's [to_string]) plus every compile
    parameter that shapes the plan.  Two spellings of the same
    expression — including a SQL query and its algebra translation —
    share a key. *)

val selection_key : relation:string -> n:int -> Relational.Predicate.t -> string

(** [optimize] is the {e effective} optimizer setting (request flag
    folded with the kill switch) and is part of the key, together with
    {!Raestat.Planner.optimizer_version} when on: optimized and
    root-sampling plans for the same expression never share a cache
    entry, and bumping the cost model retires stale optimized plans. *)
val expr_key :
  fraction:float -> groups:int -> optimize:bool -> Relational.Expr.t -> string

(** {1 Estimation}

    Each function returns the exact text the one-shot CLI prints
    (trailing newline included) plus the estimate and the effective
    expression for follow-up work ([--check], structured fields). *)

type result = {
  text : string;
  estimate : Stats.Estimate.t;
  expr : Relational.Expr.t;  (** effective expression (post SQL rewrite) *)
}

(** Row-level sampled COUNT of a filter ([raestat estimate] without
    [--pages]).  [plan_prefix] (default [""]) namespaces the plan-cache
    key — the daemon prefixes the catalog generation so plans compiled
    against a pre-reload catalog never serve post-reload requests.
    [index_source] (daemon warm cache) may substitute the SRSWOR index
    draw; see {!Raestat.Estplan.index_source} — results are
    bit-identical either way. *)
val estimate :
  ?metrics:Obs.Metrics.t ->
  ?plans:Plan_cache.t ->
  ?plan_prefix:string ->
  ?index_source:Raestat.Estplan.index_source ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  fraction:float ->
  level:float ->
  Relational.Predicate.t ->
  result

(** Filter COUNT answered from a maintained stream's backing sample —
    the fresh-under-writes path: never rescans the live store, reports
    the stream's epoch in the sampled-line, and appends a rescan note
    when deletions have eroded the sample.  Reads draw no randomness,
    so the text is a pure function of stream state.  Shared by the
    daemon's stream-aware ["estimate"] and [raestat ingest --where].
    Contract of {!Raestat.Stream_relation.estimate_count} (exact 0 on
    an empty population, [Failure] once the sample is exhausted but
    tuples remain — callers surface the rescan instruction). *)
val estimate_stream :
  ?metrics:Obs.Metrics.t ->
  relation:string ->
  level:float ->
  Raestat.Stream_relation.t ->
  Relational.Predicate.t ->
  result

(** Page-level (cluster-sampled) COUNT of a filter ([raestat estimate
    --pages M] and the daemon's ["pages"] field): draw [m] whole pages
    from the paged view, expand by M/m.  [relation] only names the
    base in the returned [expr].  Never plan-cached — there is no
    compile step to save. *)
val estimate_pages :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  relation:string ->
  m:int ->
  level:float ->
  Relational.Paged.t ->
  Relational.Predicate.t ->
  result

(** COUNT of a relational algebra expression ([raestat query]).
    [optimize] (default [false]) routes the compile through the
    cost-based sampling planner ({!Raestat.Planner.choose_sampling});
    the [RAESTAT_NO_OPTIMIZE] kill switch forces it back off, sharing
    cache entries with plain requests. *)
val query :
  ?metrics:Obs.Metrics.t ->
  ?plans:Plan_cache.t ->
  ?plan_prefix:string ->
  ?domains:int ->
  ?optimize:bool ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  fraction:float ->
  groups:int ->
  Relational.Expr.t ->
  result

(** COUNT of a SQL query's result ([raestat sql]): parse, optimize,
    rewrite [SELECT COUNT( * )] to its inner expression, estimate.
    [optimize] as in {!query}. *)
val sql :
  ?metrics:Obs.Metrics.t ->
  ?plans:Plan_cache.t ->
  ?plan_prefix:string ->
  ?domains:int ->
  ?optimize:bool ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  fraction:float ->
  groups:int ->
  string ->
  result

(** {1 Explain}

    Fresh compiles (never cached): explain output includes the plan's
    moment accumulators, which on a served cached plan would reflect
    prior runs — a fresh compile keeps daemon explain byte-identical to
    the one-shot CLI. *)

val explain_selection :
  Relational.Catalog.t ->
  relation:string ->
  fraction:float ->
  Relational.Predicate.t ->
  Raestat.Estplan.t

val explain_expr :
  Relational.Catalog.t ->
  fraction:float ->
  groups:int ->
  Relational.Expr.t ->
  Raestat.Estplan.t

(** The optimizer's decision for an expression: every candidate with
    predicted variance/cost and the winner's executable plan
    ({!Raestat.Planner.render_choice} / [choice_to_json] render it).
    Fresh (never cached) like the other explains; callers fall back to
    {!explain_expr} when {!Raestat.Planner.optimize_enabled} is off. *)
val explain_expr_optimized :
  ?metrics:Obs.Metrics.t ->
  Relational.Catalog.t ->
  fraction:float ->
  groups:int ->
  Relational.Expr.t ->
  Raestat.Planner.choice

(** SQL → effective algebra expression (optimized, COUNT( * ) rewritten). *)
val sql_expr : Relational.Catalog.t -> string -> Relational.Expr.t
