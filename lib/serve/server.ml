module Metrics = Obs.Metrics

type listen = Unix_socket of string | Tcp of int

type config = {
  listen : listen;
  bindings : (string * string) list;
  plan_capacity : int;
  queue_limit : int;
  workers : int;
}

type stats = { requests : int; errors : int; overloaded : int }

(* The catalog and every per-relation warm structure are swapped
   atomically as one value on reload.  In-flight requests retain the
   view they started with (refcounted — see Warm), so a reload never
   closes pagefiles or invalidates caches under a running request. *)
type view = { generation : int; warm : Warm.t }

(* Each worker domain owns a metrics sink; request metrics are absorbed
   into the executing worker's sink without cross-worker contention.
   The sink lock serializes absorb against snapshot (the lifetime
   report merges live sinks), not worker against worker. *)
type worker_slot = { sink : Metrics.t; sink_lock : Mutex.t }

type pool_status = Idle | Running of worker_slot Pool.t | Stopped

type state = {
  config : config;
  plan_cache : Plan_cache.t;
  base_slot : worker_slot;  (* loader/reload metrics + direct handle_line callers *)
  slots : worker_slot array;  (* one per worker domain *)
  mutable view : view;
  view_lock : Mutex.t;
  reload_lock : Mutex.t;  (* serializes reloads (not requests) *)
  admission_lock : Mutex.t;  (* guards pending *)
  mutable pending : int;
  request_count : int Atomic.t;
  error_count : int Atomic.t;
  overload_count : int Atomic.t;
  stop_requested : bool Atomic.t;
  pool_lock : Mutex.t;
  mutable pool : pool_status;
  mutable destroyed : bool;
}

let fresh_slot () = { sink = Metrics.create (); sink_lock = Mutex.create () }

let create_state config =
  if config.queue_limit < 0 then
    invalid_arg "Server.create_state: queue_limit must be >= 0";
  if config.workers < 1 then invalid_arg "Server.create_state: workers must be >= 1";
  let base_slot = fresh_slot () in
  let loader = Metrics.create () in
  let warm = Warm.load ~metrics:loader config.bindings in
  Metrics.absorb base_slot.sink loader;
  {
    config;
    plan_cache =
      Plan_cache.create ~capacity:config.plan_capacity
        ~shards:(min config.workers 8) ();
    base_slot;
    slots = Array.init config.workers (fun _ -> fresh_slot ());
    view = { generation = 0; warm };
    view_lock = Mutex.create ();
    reload_lock = Mutex.create ();
    admission_lock = Mutex.create ();
    pending = 0;
    request_count = Atomic.make 0;
    error_count = Atomic.make 0;
    overload_count = Atomic.make 0;
    stop_requested = Atomic.make false;
    pool_lock = Mutex.create ();
    pool = Idle;
    destroyed = false;
  }

(* Worker domains spawn on the first pooled request, not in
   create_state: embedders and tests that only call handle_line never
   pay for (or have to join) idle domains. *)
let get_pool state =
  Mutex.lock state.pool_lock;
  let pool =
    match state.pool with
    | Running pool -> pool
    | Idle ->
      let pool = Pool.create ~workers:state.config.workers (fun i -> state.slots.(i)) in
      state.pool <- Running pool;
      pool
    | Stopped ->
      Mutex.unlock state.pool_lock;
      invalid_arg "Server.execute: state destroyed"
  in
  Mutex.unlock state.pool_lock;
  pool

let destroy_state state =
  (Mutex.lock state.pool_lock;
   let pool = state.pool in
   state.pool <- Stopped;
   Mutex.unlock state.pool_lock;
   match pool with Running pool -> Pool.shutdown pool | Idle | Stopped -> ());
  Mutex.lock state.view_lock;
  let owner_drop = if state.destroyed then None else Some state.view in
  state.destroyed <- true;
  Mutex.unlock state.view_lock;
  match owner_drop with Some v -> Warm.release v.warm | None -> ()

let stats state =
  {
    requests = Atomic.get state.request_count;
    errors = Atomic.get state.error_count;
    overloaded = Atomic.get state.overload_count;
  }

let stopping state = Atomic.get state.stop_requested
let plans state = state.plan_cache

let current_view state =
  Mutex.lock state.view_lock;
  let view = state.view in
  Warm.retain view.warm;
  Mutex.unlock state.view_lock;
  view

(* For tests: the warm state behind the current view (borrowed, not
   retained — don't stash it across a reload). *)
let warm_state state =
  Mutex.lock state.view_lock;
  let warm = state.view.warm in
  Mutex.unlock state.view_lock;
  warm

let slot_snapshot slot =
  Mutex.lock slot.sink_lock;
  let snap = Metrics.snapshot slot.sink in
  Mutex.unlock slot.sink_lock;
  snap

let absorb_into slot metrics =
  Mutex.lock slot.sink_lock;
  Metrics.absorb slot.sink metrics;
  Mutex.unlock slot.sink_lock

(* Base sink first, then worker sinks in index order: a fixed merge
   order, and integer counters commute anyway — the lifetime totals
   are independent of which worker served which request. *)
let lifetime_snapshot state =
  Array.fold_left
    (fun acc slot -> Metrics.merge acc (slot_snapshot slot))
    (slot_snapshot state.base_slot)
    state.slots

(* --- request dispatch ------------------------------------------------- *)

let require_string request name =
  match Json.string_field request name with
  | Some s -> s
  | None -> failwith (Printf.sprintf "request field %S is required" name)

let bool_field ~default request name =
  match Json.member name request with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> failwith (Printf.sprintf "request field %S must be a boolean" name)

let counters_json (s : Metrics.snapshot) =
  Json.Obj
    [
      ("tuples_scanned", Json.Int s.tuples_scanned);
      ("pages_read", Json.Int s.pages_read);
      ("bytes_read", Json.Int s.bytes_read);
      ("io_batches", Json.Int s.io_batches);
      ("page_cache_hits", Json.Int s.page_cache_hits);
      ("sample_indices", Json.Int s.sample_indices);
      ("hash_probe_hits", Json.Int s.hash_probe_hits);
      ("hash_probe_misses", Json.Int s.hash_probe_misses);
      ("rng_draws", Json.Int s.rng_draws);
      ("plan_cache_hits", Json.Int s.plan_cache_hits);
      ("plan_cache_misses", Json.Int s.plan_cache_misses);
      ("plan_cache_evictions", Json.Int s.plan_cache_evictions);
      ("plans_considered", Json.Int s.plans_considered);
      ("maintenance_ops", Json.Int s.maintenance_ops);
    ]

(* --- streaming writes: JSON tuples and stream plumbing ---------------- *)

module SR = Raestat.Stream_relation

let value_ty_of_json name = function
  | Json.Int _ -> Relational.Value.Tint
  | Json.Float _ -> Relational.Value.Tfloat
  | Json.Str _ -> Relational.Value.Tstr
  | Json.Bool _ -> Relational.Value.Tbool
  | _ ->
    failwith (Printf.sprintf "tuple field %S must be a number, string or boolean" name)

(* Schema inference for a relation first seen on a write: sorted field
   names (so the inferred schema is independent of JSON field order),
   types from the first tuple's values. *)
let infer_schema tuple_json =
  match tuple_json with
  | Json.Obj [] -> failwith "cannot infer a schema from an empty tuple"
  | Json.Obj fields ->
    fields
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, v) -> (name, value_ty_of_json name v))
    |> Relational.Schema.of_list
  | _ -> failwith "tuple must be a JSON object"

let tuple_of_json schema json =
  match json with
  | Json.Obj _ ->
    Relational.Schema.attributes schema
    |> List.map (fun (attr : Relational.Schema.attribute) ->
           match Json.member attr.name json with
           | None | Some Json.Null ->
             failwith (Printf.sprintf "tuple is missing field %S" attr.name)
           | Some v -> (
             match (attr.ty, v) with
             | Relational.Value.Tint, Json.Int i -> Relational.Value.Int i
             | Relational.Value.Tfloat, Json.Float f -> Relational.Value.Float f
             | Relational.Value.Tfloat, Json.Int i ->
               Relational.Value.Float (float_of_int i)
             | Relational.Value.Tstr, Json.Str s -> Relational.Value.Str s
             | Relational.Value.Tbool, Json.Bool b -> Relational.Value.Bool b
             | ty, _ ->
               failwith
                 (Printf.sprintf "tuple field %S must have type %s" attr.name
                    (Relational.Value.ty_to_string ty))))
    |> Relational.Tuple.make
  | _ -> failwith "tuple must be a JSON object"

(* Stream parameters bind at first touch (Warm.ensure_stream);
   [first_tuple] feeds schema inference only when the name is neither
   bound nor already streamed. *)
let ensure_stream view request ~relation ~first_tuple =
  let seed = Option.get (Json.int_field ~default:42 request "seed") in
  let capacity = Option.get (Json.int_field ~default:1024 request "capacity") in
  let bernoulli = Json.float_field request "bernoulli" in
  let window = Json.int_field request "window" in
  let schema =
    if
      Warm.has_stream view.warm relation
      || Relational.Catalog.mem (Warm.catalog view.warm) relation
    then None
    else Option.map infer_schema first_tuple
  in
  let _created, conversion_delta =
    Warm.ensure_stream view.warm ~relation ~seed ~capacity ?bernoulli ?window ~schema ()
  in
  conversion_delta

let stream_status stream =
  [
    ("epoch", Json.Int (SR.epoch stream));
    ("population", Json.Int (SR.population stream));
    ("sample_size", Json.Int (SR.sample_size stream));
    ("needs_rescan", Json.Bool (SR.needs_rescan stream));
  ]

(* All four write/maintenance ops answer with the stream's post-op
   status; maintenance work (and its conversion prefix on first touch)
   is attributed to this request's sink via the with_stream delta. *)
let dispatch_stream_write slot view request op =
  let relation = Option.get (Json.string_field ~default:"r" request "relation") in
  let metrics = Metrics.create () in
  let member_or name msg =
    match Json.member name request with
    | Some v -> v
    | None -> failwith msg
  in
  let fields, delta =
    match op with
    | `Insert ->
      let tuple_json = member_or "tuple" "request field \"tuple\" is required" in
      Metrics.add_snapshot metrics
        (ensure_stream view request ~relation ~first_tuple:(Some tuple_json));
      Warm.with_stream view.warm relation (fun stream ->
          let id = SR.insert stream (tuple_of_json (SR.schema stream) tuple_json) in
          ("id", Json.Int id) :: stream_status stream)
    | `Delete ->
      let id =
        match Json.int_field request "id" with
        | Some id -> id
        | None -> failwith "request field \"id\" is required"
      in
      Metrics.add_snapshot metrics (ensure_stream view request ~relation ~first_tuple:None);
      Warm.with_stream view.warm relation (fun stream ->
          ("deleted", Json.Bool (SR.delete stream id)) :: stream_status stream)
    | `Ingest ->
      let tuples_json =
        match Json.member "insert" request with
        | None | Some Json.Null -> []
        | Some (Json.List l) -> l
        | Some _ -> failwith "request field \"insert\" must be an array of tuples"
      in
      let delete_ids =
        match Json.member "delete" request with
        | None | Some Json.Null -> []
        | Some (Json.List l) ->
          List.map
            (function
              | Json.Int id -> id
              | _ -> failwith "request field \"delete\" must be an array of ids")
            l
        | Some _ -> failwith "request field \"delete\" must be an array of ids"
      in
      let first_tuple = match tuples_json with t :: _ -> Some t | [] -> None in
      Metrics.add_snapshot metrics (ensure_stream view request ~relation ~first_tuple);
      Warm.with_stream view.warm relation (fun stream ->
          let schema = SR.schema stream in
          let inserts = Array.of_list (List.map (tuple_of_json schema) tuples_json) in
          let counts = SR.ingest stream ~inserts ~deletes:(Array.of_list delete_ids) in
          ("first_id", Json.Int counts.SR.first_id)
          :: ("inserted", Json.Int counts.SR.inserted)
          :: ("deleted", Json.Int counts.SR.deleted)
          :: stream_status stream)
    | `Rescan ->
      (* No auto-conversion: rescanning a never-written relation is a
         client error, not an implicit stream creation. *)
      Warm.with_stream view.warm relation (fun stream ->
          SR.rescan stream;
          stream_status stream)
  in
  Metrics.add_snapshot metrics delta;
  absorb_into slot metrics;
  Json.Obj fields

(* Catalog the expression ops read: the static catalog when nothing has
   been written (zero copies, zero overhead), otherwise a per-request
   overlay where every streamed name is rebound to its epoch-memoized
   snapshot.  The plan prefix carries each stream's epoch, so cached
   plans compiled against older stream contents can never serve newer
   requests — same mechanism as the reload generation. *)
let stream_overlay view metrics =
  let prefix = Printf.sprintf "g%d|" view.generation in
  match Warm.stream_infos view.warm with
  | [] -> (Warm.catalog view.warm, prefix)
  | infos ->
    let catalog = Relational.Catalog.copy (Warm.catalog view.warm) in
    let buffer = Buffer.create 64 in
    Buffer.add_string buffer prefix;
    List.iter
      (fun info ->
        let name = info.Warm.stream_name in
        let (snap, epoch), delta =
          Warm.with_stream view.warm name (fun stream ->
              (SR.snapshot stream, SR.epoch stream))
        in
        Metrics.add_snapshot metrics delta;
        Relational.Catalog.set catalog name snap;
        Printf.bprintf buffer "%s@e%d|" name epoch)
      infos;
    (catalog, Buffer.contents buffer)

(* The estimation ops share their defaults with the one-shot CLI
   (seed 42, fraction 0.01, level 0.95, groups 5): same request, same
   bytes out of either front end.  Results are a function of the
   request fields and the catalog generation only — not of the worker
   that ran it, the arrival order, or the caches' contents — which is
   what makes --workers N invisible in the responses. *)
let dispatch_estimation state slot view request op =
  let seed = Option.get (Json.int_field ~default:42 request "seed") in
  let fraction = Option.get (Json.float_field ~default:0.01 request "fraction") in
  let rng = Sampling.Rng.create ~seed () in
  let metrics = Metrics.create () in
  let result, extra =
    match op with
    | `Estimate -> (
      let relation = Option.get (Json.string_field ~default:"r" request "relation") in
      let level = Option.get (Json.float_field ~default:0.95 request "level") in
      let predicate = Engine.predicate_of_string (require_string request "where") in
      if Warm.has_stream view.warm relation then begin
        (* Fresh-under-writes path: answered from the maintained
           backing sample, never from a base-table rescan.  Reads draw
           nothing, so the bytes are a pure function of stream state. *)
        (match Json.int_field request "pages" with
        | Some _ ->
          failwith
            (Printf.sprintf
               "relation %S is a maintained stream; page sampling needs a static \
                pagefile binding"
               relation)
        | None -> ());
        let result, delta =
          Warm.with_stream view.warm relation (fun stream ->
              ( Engine.estimate_stream ~metrics ~relation ~level stream predicate,
                stream_status stream ))
        in
        Metrics.add_snapshot metrics delta;
        result
      end
      else
        match Json.int_field request "pages" with
        | Some m ->
          (* Page-level cluster sampling over the retained paged view:
             for .raf bindings the page cache is warm across requests. *)
          Engine.check_fraction fraction;
          ( Warm.with_paged view.warm relation (fun paged ->
                Engine.estimate_pages ~metrics rng ~relation ~m ~level paged predicate),
            [] )
        | None ->
          let catalog = Warm.catalog view.warm in
          let plan_prefix = Printf.sprintf "g%d|" view.generation in
          let index_source = Warm.index_source view.warm ~relation ~seed in
          ( Engine.estimate ~metrics ~plans:state.plan_cache ~plan_prefix ~index_source
              rng catalog ~relation ~fraction ~level predicate,
            [] ))
    | `Query ->
      let groups = Option.get (Json.int_field ~default:5 request "groups") in
      let optimize = bool_field ~default:false request "optimize" in
      let expr = Relational.Parser.parse_expr (require_string request "expr") in
      let catalog, plan_prefix = stream_overlay view metrics in
      ( Engine.query ~metrics ~plans:state.plan_cache ~plan_prefix ~optimize rng catalog
          ~fraction ~groups expr,
        [] )
    | `Sql ->
      let groups = Option.get (Json.int_field ~default:5 request "groups") in
      let optimize = bool_field ~default:false request "optimize" in
      let catalog, plan_prefix = stream_overlay view metrics in
      ( Engine.sql ~metrics ~plans:state.plan_cache ~plan_prefix ~optimize rng catalog
          ~fraction ~groups (require_string request "query"),
        [] )
  in
  absorb_into slot metrics;
  Json.Obj
    (("text", Json.Str result.Engine.text)
    :: ("point", Json.Float result.Engine.estimate.Stats.Estimate.point)
    :: extra)

let dispatch_explain view request =
  let fraction = Option.get (Json.float_field ~default:0.01 request "fraction") in
  let as_json = bool_field ~default:false request "json" in
  let catalog = Warm.catalog view.warm in
  (* "optimize": true explains the planner's decision (candidate table,
     raestat-explain/2) for query/sql targets; the kill switch forces
     the plain plan tree, byte-identical to a request without it. *)
  let optimize =
    bool_field ~default:false request "optimize" && Raestat.Planner.optimize_enabled ()
  in
  (* Matches the CLI's print bytes: render ends with a newline, the
     JSON documents gain one from print_endline. *)
  let render_plan plan =
    if as_json then Raestat.Estplan.to_json plan ^ "\n" else Raestat.Estplan.render plan
  in
  let render_choice choice =
    if as_json then Raestat.Planner.choice_to_json choice ^ "\n"
    else Raestat.Planner.render_choice choice
  in
  let explain expr =
    let groups = Option.get (Json.int_field ~default:5 request "groups") in
    if optimize then
      render_choice (Engine.explain_expr_optimized catalog ~fraction ~groups expr)
    else render_plan (Engine.explain_expr catalog ~fraction ~groups expr)
  in
  let text =
    match require_string request "target" with
    | "estimate" ->
      let relation = Option.get (Json.string_field ~default:"r" request "relation") in
      let predicate = Engine.predicate_of_string (require_string request "where") in
      render_plan (Engine.explain_selection catalog ~relation ~fraction predicate)
    | "query" -> explain (Relational.Parser.parse_expr (require_string request "expr"))
    | "sql" -> explain (Engine.sql_expr catalog (require_string request "query"))
    | other -> failwith (Printf.sprintf "unknown explain target %S" other)
  in
  Json.Obj [ ("text", Json.Str text) ]

let dispatch_metrics state view =
  let s = lifetime_snapshot state in
  let samples = Warm.sample_stats view.warm in
  Json.Obj
    [
      ("schema", Json.Str "raestat-serve/1");
      ("requests", Json.Int (Atomic.get state.request_count));
      ("errors", Json.Int (Atomic.get state.error_count));
      ("overloaded", Json.Int (Atomic.get state.overload_count));
      ("generation", Json.Int view.generation);
      ("workers", Json.Int state.config.workers);
      ("available_cores", Json.Int (Domain.recommended_domain_count ()));
      ( "plan_cache",
        Json.Obj
          [
            ("size", Json.Int (Plan_cache.size state.plan_cache));
            ("capacity", Json.Int (Plan_cache.capacity state.plan_cache));
            ("hits", Json.Int (Plan_cache.hits state.plan_cache));
            ("misses", Json.Int (Plan_cache.misses state.plan_cache));
            ("evictions", Json.Int (Plan_cache.evictions state.plan_cache));
          ] );
      ( "warm_samples",
        Json.Obj
          [
            ("size", Json.Int samples.Warm.size);
            ("capacity", Json.Int samples.Warm.capacity);
            ("sample_hits", Json.Int samples.Warm.hits);
            ("sample_misses", Json.Int samples.Warm.misses);
            ("sample_evictions", Json.Int samples.Warm.evictions);
          ] );
      ( "streams",
        Json.List
          (List.map
             (fun (i : Warm.stream_info) ->
               Json.Obj
                 [
                   ("relation", Json.Str i.stream_name);
                   ("epoch", Json.Int i.stream_epoch);
                   ("population", Json.Int i.stream_population);
                   ("sample_size", Json.Int i.stream_sample_size);
                   ("fill_ratio", Json.Float i.stream_fill_ratio);
                   ("needs_rescan", Json.Bool i.stream_needs_rescan);
                 ])
             (Warm.stream_infos view.warm)) );
      ("counters", counters_json s);
    ]

let dispatch_reload state slot =
  (* Serialized against other reloads only; requests keep running on
     the view they retained.  The new view is published before the old
     plan entries are cleared — a request that raced the swap and
     compiled against the old catalog publishes under a "g<old>|" key,
     unreachable by post-reload requests. *)
  Mutex.lock state.reload_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock state.reload_lock)
    (fun () ->
      let loader = Metrics.create () in
      let warm = Warm.load ~metrics:loader state.config.bindings in
      absorb_into slot loader;
      Mutex.lock state.view_lock;
      let old = state.view in
      let generation = old.generation + 1 in
      state.view <- { generation; warm };
      Mutex.unlock state.view_lock;
      (* Cached plans bake in sample sizes derived from the old
         cardinalities: all invalid now. *)
      Plan_cache.clear state.plan_cache;
      Warm.release old.warm;
      Json.Obj [ ("generation", Json.Int generation) ])

let dispatch state slot view request =
  match require_string request "op" with
  | "ping" -> Json.Obj [ ("pong", Json.Bool true) ]
  | "estimate" -> dispatch_estimation state slot view request `Estimate
  | "query" -> dispatch_estimation state slot view request `Query
  | "sql" -> dispatch_estimation state slot view request `Sql
  | "explain" -> dispatch_explain view request
  | "insert" -> dispatch_stream_write slot view request `Insert
  | "delete" -> dispatch_stream_write slot view request `Delete
  | "ingest" -> dispatch_stream_write slot view request `Ingest
  | "rescan" -> dispatch_stream_write slot view request `Rescan
  | "metrics" -> dispatch_metrics state view
  | "reload" -> dispatch_reload state slot
  | "shutdown" ->
    Atomic.set state.stop_requested true;
    Json.Obj [ ("stopping", Json.Bool true) ]
  | other -> failwith (Printf.sprintf "unknown op %S" other)

let handle_request slot state line =
  Atomic.incr state.request_count;
  let id = ref Json.Null in
  let outcome =
    match Json.parse line with
    | Error message -> Error ("bad request JSON: " ^ message)
    | Ok (Json.Obj _ as request) -> (
      (match Json.member "id" request with Some v -> id := v | None -> ());
      let view = current_view state in
      Fun.protect
        ~finally:(fun () -> Warm.release view.warm)
        (fun () ->
          try Ok (dispatch state slot view request) with
          | Failure message | Invalid_argument message | Sys_error message ->
            Error message
          | Not_found -> Error "not found"))
    | Ok _ -> Error "request must be a JSON object"
  in
  match outcome with
  | Ok result ->
    Json.to_string
      (Json.Obj [ ("id", !id); ("ok", Json.Bool true); ("result", result) ])
  | Error message ->
    Atomic.incr state.error_count;
    Json.to_string
      (Json.Obj [ ("id", !id); ("ok", Json.Bool false); ("error", Json.Str message) ])

let handle_line state line = handle_request state.base_slot state line

(* --- admission -------------------------------------------------------- *)

(* Precomputed: the reject path must not parse or allocate much. *)
let overloaded_response =
  Json.to_string
    (Json.Obj
       [ ("id", Json.Null); ("ok", Json.Bool false); ("error", Json.Str "overloaded") ])

let execute state line =
  let admitted =
    Mutex.lock state.admission_lock;
    let ok = state.pending < state.config.queue_limit in
    if ok then state.pending <- state.pending + 1
    else Atomic.incr state.overload_count;
    Mutex.unlock state.admission_lock;
    ok
  in
  if not admitted then overloaded_response
  else
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock state.admission_lock;
        state.pending <- state.pending - 1;
        Mutex.unlock state.admission_lock)
      (fun () ->
        (* Estimation compute runs on the worker domains, never on the
           connection thread: concurrency is bounded by --workers, and
           each request's metrics land on its worker's own sink. *)
        let pool = get_pool state in
        Pool.run pool (fun slot -> handle_request slot state line))

(* --- connection layer ------------------------------------------------- *)

let max_line_bytes = 1 lsl 20

let oversized_response =
  Json.to_string
    (Json.Obj
       [
         ("id", Json.Null);
         ("ok", Json.Bool false);
         ( "error",
           Json.Str (Printf.sprintf "request line exceeds %d bytes" max_line_bytes) );
       ])

let rec write_all fd text off =
  let len = String.length text in
  if off < len then
    match Unix.write_substring fd text off (len - off) with
    | n -> write_all fd text (off + n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd text off

(* A connection's fd is closed exactly once, under [lock]: the reader
   thread closes it when the peer goes away, and shutdown nudges
   still-blocked readers with [Unix.shutdown] — never a close, so a
   racing accept can't be handed a recycled descriptor we then stomp. *)
type conn = { fd : Unix.file_descr; mutable conn_closed : bool }

let close_conn lock conn =
  Mutex.lock lock;
  if not conn.conn_closed then begin
    conn.conn_closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock lock

let nudge_conn lock conn =
  Mutex.lock lock;
  (if not conn.conn_closed then
     try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  Mutex.unlock lock

let serve_connection state lock conn =
  let fd = conn.fd in
  let reader = Buffer.create 1024 in
  let chunk = Bytes.create 8192 in
  let alive = ref true in
  let respond line =
    match write_all fd (line ^ "\n") 0 with
    | () -> true
    | exception Unix.Unix_error (_, _, _) -> false
  in
  let strip_cr line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  (* Answer every complete line buffered so far; false closes the
     connection (write failure, or an oversized line whose tail we
     could not frame). *)
  let rec drain () =
    let data = Buffer.contents reader in
    match String.index_opt data '\n' with
    | None ->
      if String.length data > max_line_bytes then begin
        ignore (respond oversized_response);
        false
      end
      else true
    | Some i ->
      let line = strip_cr (String.sub data 0 i) in
      Buffer.clear reader;
      Buffer.add_substring reader data (i + 1) (String.length data - i - 1);
      if String.trim line = "" then drain ()
      else if respond (execute state line) then drain ()
      else false
  in
  (try
     while !alive do
       if not (drain ()) then alive := false
       else
         match Unix.read fd chunk 0 (Bytes.length chunk) with
         | 0 -> alive := false
         | n -> Buffer.add_subbytes reader chunk 0 n
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | exception Unix.Unix_error (_, _, _) -> alive := false
     done
   with _ -> ());
  close_conn lock conn

(* --- listener --------------------------------------------------------- *)

let bind_listener listen =
  match listen with
  | Unix_socket path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind sock (Unix.ADDR_UNIX path)
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    (sock, fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp port ->
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt sock Unix.SO_REUSEADDR true;
       Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
     with e ->
       (try Unix.close sock with Unix.Unix_error _ -> ());
       raise e);
    (sock, fun () -> ())

let run ?(handle_signals = true) ?(on_ready = fun _ -> ()) ?on_stop config =
  let state = create_state config in
  let sock, cleanup = bind_listener config.listen in
  Unix.listen sock 64;
  (* Client hangups must surface as EPIPE on that connection's write,
     not kill the daemon. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  if handle_signals then begin
    let stop _ = Atomic.set state.stop_requested true in
    ignore (Sys.signal Sys.sigint (Sys.Signal_handle stop));
    ignore (Sys.signal Sys.sigterm (Sys.Signal_handle stop))
  end;
  on_ready (Unix.getsockname sock);
  let conn_lock = Mutex.create () in
  let conns = ref [] in
  (* The select timeout bounds how long a stop request can go unseen:
     signal handlers only set a flag, so the loop must wake up to read
     it even when no client ever connects. *)
  while not (Atomic.get state.stop_requested) do
    match Unix.select [ sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.accept sock with
      | fd, _ ->
        let conn = { fd; conn_closed = false } in
        let thread = Thread.create (fun () -> serve_connection state conn_lock conn) () in
        Mutex.lock conn_lock;
        (* Prune finished connections so a long-lived daemon's list
           stays proportional to the live connection count. *)
        conns := (conn, thread) :: List.filter (fun (c, _) -> not c.conn_closed) !conns;
        Mutex.unlock conn_lock
      | exception
          Unix.Unix_error
            ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _) ->
        ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  cleanup ();
  let remaining =
    Mutex.lock conn_lock;
    let live = !conns in
    Mutex.unlock conn_lock;
    live
  in
  List.iter (fun (conn, _) -> nudge_conn conn_lock conn) remaining;
  (* In-flight requests finish on the worker pool while their
     connection threads drain; the pool is shut down only after every
     connection thread has been joined. *)
  List.iter (fun (_, thread) -> Thread.join thread) remaining;
  let snapshot = lifetime_snapshot state in
  (match on_stop with Some f -> f snapshot | None -> ());
  destroy_state state;
  stats state
