(** raestat serve: a long-running estimation daemon.

    Speaks newline-delimited JSON over a Unix-domain or loopback TCP
    socket.  One request object per line, one response object per line:

    {v
    → {"op": "estimate", "id": 1, "relation": "r", "where": "a <= 40",
       "fraction": 0.02, "level": 0.95, "seed": 42}
    ← {"id": 1, "ok": true, "result": {"text": "estimated COUNT: ...", "point": ...}}
    v}

    Ops: [ping], [estimate], [query], [sql], [explain], [insert],
    [delete], [ingest], [rescan], [metrics], [reload], [shutdown].
    Missing numeric fields default to the CLI defaults (seed 42,
    fraction 0.01, level 0.95, groups 5), and the [text] result field
    is byte-identical to the one-shot CLI's stdout for the same
    arguments and seed — both front ends render through {!Engine}.  An
    [estimate] request with a ["pages"] integer field runs page-level
    cluster sampling over the relation's retained paged view (the
    served analogue of [--pages M]).

    {2 Streaming writes}

    The write ops mutate a {e maintained stream}
    ({!Raestat.Stream_relation}) for the named relation, created on
    first write: a name bound in the catalog converts by ingesting its
    tuples (in relation order), an unbound name infers its schema from
    the first inserted tuple (sorted field names).  Stream parameters
    ([seed], [capacity], [bernoulli], [window]) bind at first touch.

    - [insert] [{relation, tuple}] → [{id, epoch, population, ...}]
    - [delete] [{relation, id}] → [{deleted, epoch, ...}]
    - [ingest] [{relation, insert: [tuple...], delete: [id...]}] —
      batched: one epoch bump, ids assigned in array order
    - [rescan] [{relation}] — rebuild the eroded backing sample from
      the live population (the only write op that scans base data)

    An [estimate] for a streamed relation is answered from its
    maintained backing sample — fresh at the stream's current epoch,
    with {e no} base-table rescan — and the response carries [epoch],
    [population], [sample_size] and [needs_rescan] alongside
    [text]/[point].  [query]/[sql] see streamed relations through a
    per-request catalog overlay of their epoch-memoized snapshots
    (cached plans are keyed by stream epochs, so they never go stale).
    The [metrics] op reports per-stream status rows under ["streams"],
    including [needs_rescan].  Writes serialize per stream and draw
    all randomness at write time, so responses stay worker-count
    invariant; [reload] drops streams with the rest of the warm
    state.

    {2 Concurrency and determinism}

    One thread per connection; estimation runs on a pool of [workers]
    worker domains ({!Pool}) over an immutable shared view of the
    catalog.  The determinism contract: a response is a function of the
    request fields (seed included) and the catalog generation only —
    independent of [workers], of arrival order, and of which worker
    served it.  Each request gets a fresh RNG seeded from its [seed]
    field; warm caches only ever substitute values that are pure
    functions of their keys ({!Warm}); per-worker metrics sinks absorb
    integer counters, which commute, so the lifetime snapshot is
    schedule-independent too (float timings are not pinned).

    Admission is a bounded queue: beyond [queue_limit]
    waiting-or-running requests, new ones are rejected immediately with
    [{"ok": false, "error": "overloaded"}] without parsing.

    {2 Plan cache and warm state}

    Compiled estimation plans are cached per query shape
    ({!Engine.selection_key} / {!Engine.expr_key}) in a sharded,
    single-flight LRU ({!Plan_cache}); hits skip Expr →
    {!Raestat.Estplan} compilation and concurrent same-shape misses
    compile once.  Cache keys are prefixed with the catalog generation,
    so plans compiled against a pre-reload catalog never serve
    post-reload requests.  [reload] builds a fresh {!Warm.t} (columnar
    views forced, pagefiles reopened, empty sample cache), swaps it in,
    and clears the plan cache; in-flight requests keep the view they
    retained until they finish. *)

type listen =
  | Unix_socket of string  (** path; unlinked before bind and after close *)
  | Tcp of int  (** loopback port; 0 picks an ephemeral port *)

type config = {
  listen : listen;
  bindings : (string * string) list;  (** relation name → CSV/.raf path *)
  plan_capacity : int;  (** prepared-plan cache entries (> 0) *)
  queue_limit : int;
      (** max requests waiting or running before fast reject (>= 0;
          0 rejects everything — useful for testing the reject path) *)
  workers : int;  (** worker domains executing requests (>= 1) *)
}

(** Totals over the server's lifetime, returned by {!run} and exposed
    by the [metrics] op. *)
type stats = {
  requests : int;  (** lines answered (errors included, overloads excluded) *)
  errors : int;
  overloaded : int;  (** fast rejects *)
}

(** {1 Request core (socket-free, for tests and embedding)} *)

type state

(** Load the catalog (forcing warm state — see {!Warm.load}) and build
    an idle server state.  Worker domains are spawned lazily on the
    first {!execute}, so a state used only through {!handle_line}
    never starts any.
    @raise Invalid_argument on a bad
    [plan_capacity]/[queue_limit]/[workers].
    @raise Sys_error when a bound file cannot be read. *)
val create_state : config -> state

(** Shut the worker pool down (draining queued requests) and drop the
    state's own reference to the current warm view, closing retained
    pagefiles once in-flight readers finish.  Idempotent.  {!run}
    calls this on exit; direct users of {!create_state} should call it
    when done. *)
val destroy_state : state -> unit

(** [handle_line state line] parses and answers one request line on
    the calling thread (no admission control, no worker pool — its
    metrics land on the embedder's base sink).  Always returns a
    one-line JSON response, never raises. *)
val handle_line : state -> string -> string

(** [execute state line] is {!handle_line} behind admission control,
    dispatched onto a worker domain — what connection threads call. *)
val execute : state -> string -> string

val stats : state -> stats

(** True once a [shutdown] request (or signal) was seen. *)
val stopping : state -> bool

(** The plan cache (for tests: size/hits/misses/evictions assertions). *)
val plans : state -> Plan_cache.t

(** The warm state behind the current view — borrowed, for tests; do
    not stash it across a [reload]. *)
val warm_state : state -> Warm.t

(** Merged metrics over the base sink and every worker sink: the same
    totals the [metrics] op reports and {!run} passes to [on_stop].
    Integer counters are schedule-independent; float timings are not. *)
val lifetime_snapshot : state -> Obs.Metrics.snapshot

(** {1 The daemon} *)

(** [run config] listens, serves until [shutdown]/SIGINT/SIGTERM, then
    closes the listener, wakes blocked connection threads, joins them,
    shuts the worker pool down and releases the warm state.  [on_ready]
    is called with the bound address once the socket is listening (for
    ephemeral-port discovery and ready lines).  [on_stop] is called
    with the lifetime metrics snapshot after the last request finishes,
    before the state is destroyed ([--metrics-out]).  [handle_signals]
    (default true) installs SIGINT/SIGTERM handlers that request a
    clean stop; pass false when embedding the server in a host process
    (e.g. the bench harness).  SIGPIPE is always ignored — client
    hangups surface as write errors on that connection only. *)
val run :
  ?handle_signals:bool ->
  ?on_ready:(Unix.sockaddr -> unit) ->
  ?on_stop:(Obs.Metrics.snapshot -> unit) ->
  config ->
  stats
