(** raestat serve: a long-running estimation daemon.

    Speaks newline-delimited JSON over a Unix-domain or loopback TCP
    socket.  One request object per line, one response object per line:

    {v
    → {"op": "estimate", "id": 1, "relation": "r", "where": "a <= 40",
       "fraction": 0.02, "level": 0.95, "seed": 42}
    ← {"id": 1, "ok": true, "result": {"text": "estimated COUNT: ...", "point": ...}}
    v}

    Ops: [ping], [estimate], [query], [sql], [explain], [metrics],
    [reload], [shutdown].  Missing numeric fields default to the CLI
    defaults (seed 42, fraction 0.01, level 0.95, groups 5), and the
    [text] result field is byte-identical to the one-shot CLI's stdout
    for the same arguments and seed — both front ends render through
    {!Engine}.

    {2 Concurrency and determinism}

    One thread per connection over a shared catalog.  Estimation runs
    are serialized by an engine lock — the estimators and the plan
    cache are single-threaded code — so concurrent clients interleave
    at request granularity and each request's result depends only on
    its own [seed] field (every request gets a fresh RNG).  Admission
    is a bounded queue: beyond [queue_limit] waiting-or-running
    requests, new ones are rejected immediately with
    [{"ok": false, "error": "overloaded"}] without parsing.

    {2 Plan cache}

    Compiled estimation plans are cached per query shape
    ({!Engine.selection_key} / {!Engine.expr_key}) in a bounded LRU;
    hits skip Expr → {!Raestat.Estplan} compilation.  [reload]
    re-reads every bound relation and clears the cache. *)

type listen =
  | Unix_socket of string  (** path; unlinked before bind and after close *)
  | Tcp of int  (** loopback port; 0 picks an ephemeral port *)

type config = {
  listen : listen;
  bindings : (string * string) list;  (** relation name → CSV/.raf path *)
  plan_capacity : int;  (** prepared-plan cache entries (> 0) *)
  queue_limit : int;
      (** max requests waiting or running before fast reject (>= 0;
          0 rejects everything — useful for testing the reject path) *)
}

(** Totals over the server's lifetime, returned by {!run} and exposed
    by the [metrics] op. *)
type stats = {
  requests : int;  (** lines answered (errors included, overloads excluded) *)
  errors : int;
  overloaded : int;  (** fast rejects *)
}

(** {1 Request core (socket-free, for tests and embedding)} *)

type state

(** Load the catalog and build an idle server state.
    @raise Invalid_argument on a bad [plan_capacity]/[queue_limit].
    @raise Sys_error when a bound file cannot be read. *)
val create_state : config -> state

(** [handle_line state line] parses and answers one request line
    (no admission control, no locking — single-threaded callers).
    Always returns a one-line JSON response, never raises. *)
val handle_line : state -> string -> string

(** [execute state line] is {!handle_line} behind admission control
    and the engine lock — what connection threads call. *)
val execute : state -> string -> string

val stats : state -> stats

(** True once a [shutdown] request (or signal) was seen. *)
val stopping : state -> bool

(** The plan cache (for tests: size/hits/misses assertions). *)
val plans : state -> Plan_cache.t

(** {1 The daemon} *)

(** [run config] listens, serves until [shutdown]/SIGINT/SIGTERM, then
    closes the listener, wakes blocked connection threads and joins
    them.  [on_ready] is called with the bound address once the socket
    is listening (for ephemeral-port discovery and ready lines).
    [handle_signals] (default true) installs SIGINT/SIGTERM handlers
    that request a clean stop; pass false when embedding the server in
    a host process (e.g. the bench harness).  SIGPIPE is always
    ignored — client hangups surface as write errors on that
    connection only. *)
val run :
  ?handle_signals:bool -> ?on_ready:(Unix.sockaddr -> unit) -> config -> stats
