(* A fixed pool of worker domains draining a FIFO job queue.

   Connection threads submit closures and block until their job
   completes on a worker (Mutex/Condition synchronize across domains).
   Each worker owns a context value built once at spawn — the server
   hands out per-worker metrics sinks this way, so absorbing request
   metrics never races between workers.

   Shutdown drains: pending jobs run to completion before the workers
   exit, so every in-flight [run] returns.  Submitting after shutdown
   raises. *)

type 'ctx t = {
  lock : Mutex.t;
  work_ready : Condition.t;
  jobs : ('ctx -> unit) Queue.t;
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
}

let rec worker_loop t ctx =
  Mutex.lock t.lock;
  while Queue.is_empty t.jobs && not t.stopped do
    Condition.wait t.work_ready t.lock
  done;
  if not (Queue.is_empty t.jobs) then begin
    let job = Queue.pop t.jobs in
    Mutex.unlock t.lock;
    (* Jobs wrap their own exceptions ([run] ferries them back to the
       submitter); a raise here would mean a broken wrapper, and must
       not kill the worker. *)
    (try job ctx with _ -> ());
    worker_loop t ctx
  end
  else Mutex.unlock t.lock

let create ~workers ctx_of =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      jobs = Queue.create ();
      stopped = false;
      domains = [||];
    }
  in
  (* Contexts are built in the spawning domain, in index order, before
     any worker starts. *)
  let contexts = Array.init workers ctx_of in
  t.domains <-
    Array.map (fun ctx -> Domain.spawn (fun () -> worker_loop t ctx)) contexts;
  t

let size t = Array.length t.domains

let run t f =
  let cell_lock = Mutex.create () in
  let cell_done = Condition.create () in
  let cell = ref None in
  let job ctx =
    let outcome = try Ok (f ctx) with e -> Error e in
    Mutex.lock cell_lock;
    cell := Some outcome;
    Condition.signal cell_done;
    Mutex.unlock cell_lock
  in
  Mutex.lock t.lock;
  if t.stopped then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.run: pool is shut down"
  end;
  Queue.push job t.jobs;
  Condition.signal t.work_ready;
  Mutex.unlock t.lock;
  Mutex.lock cell_lock;
  while Option.is_none !cell do
    Condition.wait cell_done cell_lock
  done;
  let outcome = Option.get !cell in
  Mutex.unlock cell_lock;
  match outcome with Ok v -> v | Error e -> raise e

let shutdown t =
  Mutex.lock t.lock;
  if t.stopped then Mutex.unlock t.lock
  else begin
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains
  end
