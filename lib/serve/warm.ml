module Metrics = Obs.Metrics

(* One paged view per relation, retained for the lifetime of this warm
   state: for .raf bindings the pagefile stays open, so its clock page
   cache persists across requests (repeat --pages estimates hit the
   cache instead of re-reading — the metrics sink shows the saved I/O
   as page_cache_hits).  The paged reader reuses decode buffers, so
   concurrent workers serialize on the per-relation io_lock. *)
type paged_entry = {
  paged : Relational.Paged.t;
  pagefile : Relational.Pagefile.t option;  (* kept open for .raf bindings *)
  io_lock : Mutex.t;
}

(* Intrusive LRU node of the backing-sample cache. *)
type snode = {
  skey : string;
  sindices : int array;
  mutable sprev : snode option; (* toward most recently used *)
  mutable snext : snode option; (* toward least recently used *)
}

(* One maintained stream per written-to relation.  The entry owns the
   stream's metrics sink (maintenance deltas are attributed to the
   requests that caused them via snapshot/diff under the stream lock)
   and the mutex that serializes all access — writes draw from the
   stream's RNG at write time, so serialized writes + draw-free reads
   are what make served responses worker-count-invariant. *)
type stream_entry = {
  stream : Raestat.Stream_relation.t;
  stream_lock : Mutex.t;
  stream_sink : Metrics.t;
}

type stream_info = {
  stream_name : string;
  stream_epoch : int;
  stream_population : int;
  stream_sample_size : int;
  stream_fill_ratio : float;
  stream_needs_rescan : bool;
}

type t = {
  catalog : Relational.Catalog.t;
  paged_tbl : (string, paged_entry) Hashtbl.t;  (* immutable after load *)
  sample_cap : int;
  lock : Mutex.t;  (* guards the sample LRU, its counters and refs *)
  sample_tbl : (string, snode) Hashtbl.t;
  mutable smru : snode option;
  mutable slru : snode option;
  mutable sample_hits : int;
  mutable sample_misses : int;
  mutable sample_evictions : int;
  mutable refs : int;  (* owner ref + one per in-flight reader *)
  streams : (string, stream_entry) Hashtbl.t;
  streams_lock : Mutex.t;  (* guards the stream table, not the streams *)
}

type sample_stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let close_pagefiles paged_tbl =
  Hashtbl.iter
    (fun _ entry ->
      match entry.pagefile with
      | Some pf -> ( try Relational.Pagefile.close pf with _ -> ())
      | None -> ())
    paged_tbl

let load ?metrics ?(sample_capacity = 128)
    ?(page_capacity = Relational.Pagefile.default_page_capacity) bindings =
  if sample_capacity < 0 then
    invalid_arg "Warm.load: sample_capacity must be >= 0";
  let paged_tbl = Hashtbl.create (max 4 (List.length bindings)) in
  let entries =
    try
      List.map
        (fun (name, path) ->
          let relation, entry =
            if Engine.is_pagefile path then begin
              let pf = Relational.Pagefile.openfile path in
              match Relational.Pagefile.to_relation ?metrics pf with
              | relation ->
                ( relation,
                  {
                    paged = Relational.Paged.of_pagefile pf;
                    pagefile = Some pf;
                    io_lock = Mutex.create ();
                  } )
              | exception e ->
                (try Relational.Pagefile.close pf with _ -> ());
                raise e
            end
            else begin
              let relation = Relational.Csv.load path in
              ( relation,
                {
                  paged = Relational.Paged.make ~page_capacity relation;
                  pagefile = None;
                  io_lock = Mutex.create ();
                } )
            end
          in
          (* Columnar views are forced now, not lazily on first request:
             the first client pays no encode latency and worker domains
             never race to build one. *)
          Relational.Relation.warm_view relation;
          Hashtbl.replace paged_tbl name entry;
          (name, relation))
        bindings
    with e ->
      close_pagefiles paged_tbl;
      raise e
  in
  {
    catalog = Relational.Catalog.of_list entries;
    paged_tbl;
    sample_cap = sample_capacity;
    lock = Mutex.create ();
    sample_tbl = Hashtbl.create (min (max 16 sample_capacity) 64);
    smru = None;
    slru = None;
    sample_hits = 0;
    sample_misses = 0;
    sample_evictions = 0;
    refs = 1;
    streams = Hashtbl.create 8;
    streams_lock = Mutex.create ();
  }

let catalog t = t.catalog

(* --- lifecycle -------------------------------------------------------- *)

let retain t =
  Mutex.lock t.lock;
  t.refs <- t.refs + 1;
  Mutex.unlock t.lock

let release t =
  Mutex.lock t.lock;
  t.refs <- t.refs - 1;
  let dead = t.refs = 0 in
  Mutex.unlock t.lock;
  if dead then close_pagefiles t.paged_tbl

(* --- backing-sample cache --------------------------------------------- *)

let s_unlink t node =
  (match node.sprev with
  | Some p -> p.snext <- node.snext
  | None -> t.smru <- node.snext);
  (match node.snext with
  | Some n -> n.sprev <- node.sprev
  | None -> t.slru <- node.sprev);
  node.sprev <- None;
  node.snext <- None

let s_push_front t node =
  node.snext <- t.smru;
  node.sprev <- None;
  (match t.smru with
  | Some m -> m.sprev <- Some node
  | None -> t.slru <- Some node);
  t.smru <- Some node

(* The key carries everything the SRSWOR draw is a function of — the
   cached set IS the set any request with these parameters would draw,
   which is what makes serving it bit-identical. *)
let sample_key ~relation ~seed ~n ~universe =
  Printf.sprintf "%s|srswor|n=%d|u=%d|seed=%d" relation n universe seed

let sample_indices t ~relation ~seed ~n ~universe draw =
  if t.sample_cap = 0 then draw ()
  else begin
    let key = sample_key ~relation ~seed ~n ~universe in
    Mutex.lock t.lock;
    match Hashtbl.find_opt t.sample_tbl key with
    | Some node ->
      t.sample_hits <- t.sample_hits + 1;
      s_unlink t node;
      s_push_front t node;
      Mutex.unlock t.lock;
      node.sindices
    | None -> (
      (* Draw outside the lock: a concurrent same-key request may draw
         too, but both draws are the identical array, so whoever
         publishes first wins and the other shares it. *)
      Mutex.unlock t.lock;
      let arr = draw () in
      Mutex.lock t.lock;
      match Hashtbl.find_opt t.sample_tbl key with
      | Some node ->
        t.sample_misses <- t.sample_misses + 1;
        s_unlink t node;
        s_push_front t node;
        Mutex.unlock t.lock;
        node.sindices
      | None ->
        let node = { skey = key; sindices = arr; sprev = None; snext = None } in
        Hashtbl.replace t.sample_tbl key node;
        s_push_front t node;
        t.sample_misses <- t.sample_misses + 1;
        (if Hashtbl.length t.sample_tbl > t.sample_cap then
           match t.slru with
           | Some victim ->
             s_unlink t victim;
             Hashtbl.remove t.sample_tbl victim.skey;
             t.sample_evictions <- t.sample_evictions + 1
           | None -> ());
        Mutex.unlock t.lock;
        arr)
  end

let index_source t ~relation ~seed : Raestat.Estplan.index_source =
 fun ~n ~universe draw -> sample_indices t ~relation ~seed ~n ~universe draw

let sample_stats t =
  Mutex.lock t.lock;
  let stats =
    {
      hits = t.sample_hits;
      misses = t.sample_misses;
      evictions = t.sample_evictions;
      size = Hashtbl.length t.sample_tbl;
      capacity = t.sample_cap;
    }
  in
  Mutex.unlock t.lock;
  stats

(* --- paged views ------------------------------------------------------ *)

(* --- maintained streams ----------------------------------------------- *)

let find_stream_entry t name =
  Mutex.lock t.streams_lock;
  let entry = Hashtbl.find_opt t.streams name in
  Mutex.unlock t.streams_lock;
  entry

let has_stream t name = Option.is_some (find_stream_entry t name)

(* Find-or-create under the table lock: creation is single-flight, so
   converting a bound static relation (inserting every tuple through
   the maintenance path, in relation order) happens exactly once.
   Creation parameters are fixed at first touch; later writers share
   the existing stream whatever parameters they asked for. *)
let ensure_stream t ~relation ~seed ~capacity ?bernoulli ?window ~schema () =
  Mutex.lock t.streams_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.streams_lock)
    (fun () ->
      match Hashtbl.find_opt t.streams relation with
      | Some _ -> (false, Metrics.zero)
      | None ->
        let schema =
          match
            (Relational.Catalog.find_opt t.catalog relation, schema)
          with
          | Some bound, _ -> Relational.Relation.schema bound
          | None, Some schema -> schema
          | None, None ->
            failwith
              (Printf.sprintf
                 "stream %S: relation is not bound and the request carries no tuples to infer a schema from"
                 relation)
        in
        let stream_sink = Metrics.create () in
        let stream =
          Raestat.Stream_relation.create ~capacity ?bernoulli ?window
            ~metrics:stream_sink ~seed ~schema ()
        in
        (match Relational.Catalog.find_opt t.catalog relation with
        | Some bound ->
          ignore
            (Raestat.Stream_relation.ingest stream
               ~inserts:(Relational.Relation.tuples bound)
               ~deletes:[||])
        | None -> ());
        Hashtbl.replace t.streams relation
          { stream; stream_lock = Mutex.create (); stream_sink };
        (* The conversion work (ingesting a bound relation) is the
           creating request's to account for. *)
        (true, Metrics.snapshot stream_sink))

(* Run [f] on the stream under its lock; returns [f]'s result plus the
   maintenance-counter delta the call produced, for attribution to the
   calling request's sink. *)
let with_stream t name f =
  match find_stream_entry t name with
  | None -> failwith (Printf.sprintf "no maintained stream for relation %S" name)
  | Some entry ->
    Mutex.lock entry.stream_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock entry.stream_lock)
      (fun () ->
        let before = Metrics.snapshot entry.stream_sink in
        let result = f entry.stream in
        (result, Metrics.diff (Metrics.snapshot entry.stream_sink) before))

let stream_infos t =
  Mutex.lock t.streams_lock;
  let entries = Hashtbl.fold (fun name entry acc -> (name, entry) :: acc) t.streams [] in
  Mutex.unlock t.streams_lock;
  entries
  |> List.map (fun (name, entry) ->
         Mutex.lock entry.stream_lock;
         let module SR = Raestat.Stream_relation in
         let info =
           {
             stream_name = name;
             stream_epoch = SR.epoch entry.stream;
             stream_population = SR.population entry.stream;
             stream_sample_size = SR.sample_size entry.stream;
             stream_fill_ratio = SR.fill_ratio entry.stream;
             stream_needs_rescan = SR.needs_rescan entry.stream;
           }
         in
         Mutex.unlock entry.stream_lock;
         info)
  |> List.sort (fun a b -> String.compare a.stream_name b.stream_name)

(* --- paged views ------------------------------------------------------ *)

let with_paged t name f =
  match Hashtbl.find_opt t.paged_tbl name with
  | None ->
    (* Same message as Catalog.find, same error contract. *)
    failwith (Printf.sprintf "Catalog.find: unknown relation %S" name)
  | Some entry ->
    Mutex.lock entry.io_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock entry.io_lock) (fun () -> f entry.paged)
