(** Fixed-size pool of OCaml worker domains with per-worker context.

    The serve daemon's request executor: connection threads submit
    estimation jobs and block until a worker domain has run them, so
    compute parallelism is bounded by the worker count, not the
    connection count.  Each worker owns a ['ctx] built once at spawn
    (the server uses this for per-worker metrics sinks); jobs see the
    context of whichever worker runs them.

    Determinism: jobs run FIFO but possibly concurrently on different
    workers.  Anything order- or worker-dependent must be carried in
    the job's own inputs — the server derives every result from the
    request's [seed], so responses are independent of scheduling. *)

type 'ctx t

(** [create ~workers ctx_of] spawns [workers] domains; worker [i]'s
    context is [ctx_of i], built in the calling domain (in index
    order) before any worker starts.
    @raise Invalid_argument when [workers < 1]. *)
val create : workers:int -> (int -> 'ctx) -> 'ctx t

val size : 'ctx t -> int

(** [run t f] submits [f] and blocks until a worker has executed it,
    returning its result (or re-raising its exception in the calling
    thread).
    @raise Invalid_argument after {!shutdown}. *)
val run : 'ctx t -> ('ctx -> 'a) -> 'a

(** Stop accepting jobs, drain the queue and join every worker.
    Jobs already submitted complete normally.  Idempotent. *)
val shutdown : 'ctx t -> unit
