type t = {
  count : int;
  mean : float;
  m2 : float;  (* sum of squared deviations from the running mean *)
  min : float;
  max : float;
}

let empty = { count = 0; mean = 0.; m2 = 0.; min = Float.infinity; max = Float.neg_infinity }

let add t x =
  let count = t.count + 1 in
  let delta = x -. t.mean in
  let mean = t.mean +. (delta /. float_of_int count) in
  let m2 = t.m2 +. (delta *. (x -. mean)) in
  { count; mean; m2; min = Float.min t.min x; max = Float.max t.max x }

let of_array values = Array.fold_left add empty values

let of_list values = List.fold_left add empty values

let merge t1 t2 =
  if t1.count = 0 then t2
  else if t2.count = 0 then t1
  else begin
    let count = t1.count + t2.count in
    let countf = float_of_int count in
    let delta = t2.mean -. t1.mean in
    let mean = t1.mean +. (delta *. float_of_int t2.count /. countf) in
    let m2 =
      t1.m2 +. t2.m2
      +. (delta *. delta *. float_of_int t1.count *. float_of_int t2.count /. countf)
    in
    { count; mean; m2; min = Float.min t1.min t2.min; max = Float.max t1.max t2.max }
  end

let count t = t.count

let check_nonempty t name =
  if t.count = 0 then invalid_arg (Printf.sprintf "Summary.%s: empty summary" name)

let mean t =
  check_nonempty t "mean";
  t.mean

let variance t =
  check_nonempty t "variance";
  if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)

let population_variance t =
  check_nonempty t "population_variance";
  t.m2 /. float_of_int t.count

let stddev t = Float.sqrt (variance t)

let standard_error t = stddev t /. Float.sqrt (float_of_int t.count)

let min t =
  check_nonempty t "min";
  t.min

let max t =
  check_nonempty t "max";
  t.max

let total t = t.mean *. float_of_int t.count

let quantile q values =
  if Array.length values = 0 then invalid_arg "Summary.quantile: empty input";
  if q < 0. || q > 1. then invalid_arg "Summary.quantile: q outside [0, 1]";
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let position = q *. float_of_int (n - 1) in
  let lower = int_of_float (Float.floor position) in
  let upper = Stdlib.min (lower + 1) (n - 1) in
  let weight = position -. float_of_int lower in
  ((1. -. weight) *. sorted.(lower)) +. (weight *. sorted.(upper))

let median values = quantile 0.5 values

let q_error ~estimate ~truth =
  (* Zero against zero is a perfect estimate; zero against non-zero is
     infinitely wrong in the multiplicative metric. *)
  let estimate = Float.abs estimate and truth = Float.abs truth in
  if estimate = 0. && truth = 0. then 1.
  else if estimate = 0. || truth = 0. then Float.infinity
  else Float.max (estimate /. truth) (truth /. estimate)

let pp ppf t =
  if t.count = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf "n=%d mean=%g sd=%g min=%g max=%g" t.count t.mean (stddev t) t.min
      t.max
