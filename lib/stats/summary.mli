(** Streaming descriptive statistics (Welford's online algorithm) and
    quantiles. *)

type t

val empty : t

(** Functional update: returns a summary extended with one observation. *)
val add : t -> float -> t

val of_array : float array -> t

val of_list : float list -> t

(** Merge two summaries (Chan et al. parallel formula). *)
val merge : t -> t -> t

val count : t -> int

(** @raise Invalid_argument on an empty summary (same for the other
    moment accessors). *)
val mean : t -> float

(** Unbiased sample variance (divides by n−1); 0 for n = 1. *)
val variance : t -> float

(** Population variance (divides by n). *)
val population_variance : t -> float

val stddev : t -> float

val standard_error : t -> float

val min : t -> float

val max : t -> float

val total : t -> float

(** [quantile q values] with linear interpolation between order
    statistics; [q] in [0, 1].  Does not mutate [values].
    @raise Invalid_argument on empty input or [q] outside [0, 1]. *)
val quantile : float -> float array -> float

val median : float array -> float

(** [q_error ~estimate ~truth] — the multiplicative error
    [max(est/truth, truth/est)] on magnitudes, the standard cardinality
    estimation score: 1 is perfect, symmetric in over/under-estimation.
    Conventions: [q_error 0 0 = 1] (estimating an empty result as empty
    is exact); a zero against a non-zero is [infinity].  Signs are
    ignored. *)
val q_error : estimate:float -> truth:float -> float

val pp : Format.formatter -> t -> unit
