let erf x =
  (* Abramowitz & Stegun 7.1.26 on |x|, extended by oddness. *)
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (0.3275911 *. x)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  sign *. (1. -. (poly *. exp (-.x *. x)))

let sqrt_two_pi = 2.5066282746310002

let normal_pdf x = exp (-0.5 *. x *. x) /. sqrt_two_pi

let normal_cdf x = 0.5 *. (1. +. erf (x /. Float.sqrt 2.))

(* Acklam's rational approximation to the inverse normal CDF. *)
let acklam p =
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  if p < p_low then
    let q = Float.sqrt (-2. *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
    |> fun num -> num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)
  else if p <= 1. -. p_low then
    let q = p -. 0.5 in
    let r = q *. q in
    ((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)
    |> fun num ->
    num *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.)
  else
    let q = Float.sqrt (-2. *. log (1. -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.)

let normal_quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Distributions.normal_quantile: p outside (0, 1)";
  let x = acklam p in
  (* One Halley refinement step brings the error near machine epsilon. *)
  let e = normal_cdf x -. p in
  let u = e *. sqrt_two_pi *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let rec log_gamma x =
  if x <= 0. then invalid_arg "Distributions.log_gamma: x must be positive";
  (* Lanczos approximation, g = 7, 9 coefficients. *)
  let coefficients =
    [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
       771.32342877765313; -176.61502916214059; 12.507343278686905;
       -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]
  in
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma_positive (1. -. x) coefficients
  else log_gamma_positive x coefficients

and log_gamma_positive x coefficients =
  let x = x -. 1. in
  let acc = ref coefficients.(0) in
  for i = 1 to 8 do
    acc := !acc +. (coefficients.(i) /. (x +. float_of_int i))
  done;
  let t = x +. 7.5 in
  (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

let log_choose n k =
  if k < 0 || k > n then invalid_arg "Distributions.log_choose: need 0 <= k <= n";
  if k = 0 || k = n then 0.
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

let incomplete_beta ~a ~b x =
  if a <= 0. || b <= 0. then invalid_arg "Distributions.incomplete_beta: a, b must be positive";
  if x < 0. || x > 1. then invalid_arg "Distributions.incomplete_beta: x outside [0, 1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else begin
    (* Continued fraction (Numerical Recipes betacf), evaluated with
       modified Lentz; the symmetry transform keeps it converging fast. *)
    let log_front =
      (a *. log x) +. (b *. log (1. -. x))
      +. log_gamma (a +. b) -. log_gamma a -. log_gamma b
    in
    let betacf a b x =
      let tiny = 1e-30 in
      let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
      let c = ref 1. in
      let d = ref (1. -. (qab *. x /. qap)) in
      if Float.abs !d < tiny then d := tiny;
      d := 1. /. !d;
      let h = ref !d in
      let m = ref 1 in
      let continue = ref true in
      while !continue && !m <= 200 do
        let mf = float_of_int !m in
        let m2 = 2. *. mf in
        let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
        d := 1. +. (aa *. !d);
        if Float.abs !d < tiny then d := tiny;
        c := 1. +. (aa /. !c);
        if Float.abs !c < tiny then c := tiny;
        d := 1. /. !d;
        h := !h *. !d *. !c;
        let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
        d := 1. +. (aa *. !d);
        if Float.abs !d < tiny then d := tiny;
        c := 1. +. (aa /. !c);
        if Float.abs !c < tiny then c := tiny;
        d := 1. /. !d;
        let delta = !d *. !c in
        h := !h *. delta;
        if Float.abs (delta -. 1.) < 3e-15 then continue := false;
        incr m
      done;
      !h
    in
    if x < (a +. 1.) /. (a +. b +. 2.) then exp log_front *. betacf a b x /. a
    else 1. -. (exp ((b *. log (1. -. x)) +. (a *. log x)
                     +. log_gamma (a +. b) -. log_gamma a -. log_gamma b)
                *. betacf b a (1. -. x) /. b)
  end

let student_t_cdf ~df t =
  (* [not (df > 0.)] rather than [df <= 0.]: a NaN df fails every
     comparison, so the old guard let it through and the incomplete-beta
     series silently returned garbage. *)
  if not (df > 0.) then invalid_arg "Distributions.student_t_cdf: df must be positive";
  if t = 0. then 0.5
  else
    let x = df /. (df +. (t *. t)) in
    let tail = 0.5 *. incomplete_beta ~a:(df /. 2.) ~b:0.5 x in
    if t > 0. then 1. -. tail else tail

let student_t_quantile ~df p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Distributions.student_t_quantile: p outside (0, 1)";
  (* NaN-proof as in [student_t_cdf]: with a NaN df the bracket loops
     exit immediately (every comparison is false) and the bisection
     converges on the seed value — a silently wrong quantile. *)
  if not (df > 0.) then
    invalid_arg "Distributions.student_t_quantile: df must be positive";
  if p = 0.5 then 0.
  else begin
    (* Bracket then bisect; the normal quantile seeds the bracket. *)
    let target = p in
    let seed = normal_quantile p in
    let lo = ref (Float.min (seed *. 4.) (-1.)) and hi = ref (Float.max (seed *. 4.) 1.) in
    while student_t_cdf ~df !lo > target do
      lo := !lo *. 2.
    done;
    while student_t_cdf ~df !hi < target do
      hi := !hi *. 2.
    done;
    for _ = 1 to 200 do
      let mid = 0.5 *. (!lo +. !hi) in
      if student_t_cdf ~df mid < target then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let binomial_mean_var ~n ~p =
  let nf = float_of_int n in
  (nf *. p, nf *. p *. (1. -. p))

let hypergeometric_mean_var ~big_n ~k ~n =
  let big_nf = float_of_int big_n and kf = float_of_int k and nf = float_of_int n in
  if big_n = 0 then (0., 0.)
  else begin
    let p = kf /. big_nf in
    let mean = nf *. p in
    let fpc = if big_n > 1 then (big_nf -. nf) /. (big_nf -. 1.) else 0. in
    (mean, nf *. p *. (1. -. p) *. fpc)
  end
