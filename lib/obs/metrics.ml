type snapshot = {
  tuples_scanned : int;
  pages_read : int;
  bytes_read : int;
  io_batches : int;
  page_cache_hits : int;
  sample_indices : int;
  hash_probe_hits : int;
  hash_probe_misses : int;
  rng_draws : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  plan_cache_evictions : int;
  plans_considered : int;
  maintenance_ops : int;
  timers : (string * float) list;
}

type span = {
  name : string;
  seconds : float;
  children : span list;
}

(* Open spans under construction; children accumulate reversed and are
   reversed once at close. *)
type open_span = {
  os_name : string;
  os_start : float;
  mutable os_children_rev : span list;
}

type t = {
  enabled : bool;
  mutable tuples : int;
  mutable pages : int;
  mutable bytes : int;
  mutable batches : int;
  mutable cache_hits : int;
  mutable indices : int;
  mutable hits : int;
  mutable misses : int;
  mutable draws : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_evictions : int;
  mutable plans : int;
  mutable maint : int;
  timer_table : (string, float) Hashtbl.t;
  mutable roots_rev : span list;
  mutable stack : open_span list;
}

let make ~enabled =
  {
    enabled;
    tuples = 0;
    pages = 0;
    bytes = 0;
    batches = 0;
    cache_hits = 0;
    indices = 0;
    hits = 0;
    misses = 0;
    draws = 0;
    plan_hits = 0;
    plan_misses = 0;
    plan_evictions = 0;
    plans = 0;
    maint = 0;
    timer_table = Hashtbl.create 8;
    roots_rev = [];
    stack = [];
  }

let noop = make ~enabled:false

let create () = make ~enabled:true

let enabled t = t.enabled

let child t = if t.enabled then create () else noop

(* Recording: a single branch when disabled, one field store when
   enabled — cheap enough to leave in hot paths unconditionally. *)
let add_tuples t n = if t.enabled then t.tuples <- t.tuples + n
let add_pages t n = if t.enabled then t.pages <- t.pages + n
let add_bytes_read t n = if t.enabled then t.bytes <- t.bytes + n
let add_io_batches t n = if t.enabled then t.batches <- t.batches + n
let add_page_cache_hits t n = if t.enabled then t.cache_hits <- t.cache_hits + n
let add_indices t n = if t.enabled then t.indices <- t.indices + n
let probe_hit t = if t.enabled then t.hits <- t.hits + 1
let probe_miss t = if t.enabled then t.misses <- t.misses + 1
let add_rng_draws t n = if t.enabled then t.draws <- t.draws + n
let plan_cache_hit t = if t.enabled then t.plan_hits <- t.plan_hits + 1
let plan_cache_miss t = if t.enabled then t.plan_misses <- t.plan_misses + 1
let plan_cache_eviction t = if t.enabled then t.plan_evictions <- t.plan_evictions + 1
let add_plans_considered t n = if t.enabled then t.plans <- t.plans + n
let add_maintenance_ops t n = if t.enabled then t.maint <- t.maint + n

let add_timer t label seconds =
  Hashtbl.replace t.timer_table label
    (seconds +. Option.value (Hashtbl.find_opt t.timer_table label) ~default:0.)

let time t label f =
  if not t.enabled then f ()
  else begin
    let started = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> add_timer t label (Unix.gettimeofday () -. started)) f
  end

let with_span t name f =
  if not t.enabled then f ()
  else begin
    let span = { os_name = name; os_start = Unix.gettimeofday (); os_children_rev = [] } in
    t.stack <- span :: t.stack;
    let close () =
      let closed =
        {
          name = span.os_name;
          seconds = Unix.gettimeofday () -. span.os_start;
          children = List.rev span.os_children_rev;
        }
      in
      (match t.stack with
      | top :: rest when top == span -> t.stack <- rest
      | stack ->
        (* An inner span escaped without closing (exception in user
           code between protects): drop down to this span's frame. *)
        let rec unwind = function
          | top :: rest when top == span -> rest
          | _ :: rest -> unwind rest
          | [] -> []
        in
        t.stack <- unwind stack);
      match t.stack with
      | parent :: _ -> parent.os_children_rev <- closed :: parent.os_children_rev
      | [] -> t.roots_rev <- closed :: t.roots_rev
    in
    Fun.protect ~finally:close f
  end

let spans t = List.rev t.roots_rev

let absorb dst src =
  if dst.enabled then begin
    dst.tuples <- dst.tuples + src.tuples;
    dst.pages <- dst.pages + src.pages;
    dst.bytes <- dst.bytes + src.bytes;
    dst.batches <- dst.batches + src.batches;
    dst.cache_hits <- dst.cache_hits + src.cache_hits;
    dst.indices <- dst.indices + src.indices;
    dst.hits <- dst.hits + src.hits;
    dst.misses <- dst.misses + src.misses;
    dst.draws <- dst.draws + src.draws;
    dst.plan_hits <- dst.plan_hits + src.plan_hits;
    dst.plan_misses <- dst.plan_misses + src.plan_misses;
    dst.plan_evictions <- dst.plan_evictions + src.plan_evictions;
    dst.plans <- dst.plans + src.plans;
    dst.maint <- dst.maint + src.maint;
    Hashtbl.iter (fun label seconds -> add_timer dst label seconds) src.timer_table
  end

let add_snapshot dst s =
  if dst.enabled then begin
    dst.tuples <- dst.tuples + s.tuples_scanned;
    dst.pages <- dst.pages + s.pages_read;
    dst.bytes <- dst.bytes + s.bytes_read;
    dst.batches <- dst.batches + s.io_batches;
    dst.cache_hits <- dst.cache_hits + s.page_cache_hits;
    dst.indices <- dst.indices + s.sample_indices;
    dst.hits <- dst.hits + s.hash_probe_hits;
    dst.misses <- dst.misses + s.hash_probe_misses;
    dst.draws <- dst.draws + s.rng_draws;
    dst.plan_hits <- dst.plan_hits + s.plan_cache_hits;
    dst.plan_misses <- dst.plan_misses + s.plan_cache_misses;
    dst.plan_evictions <- dst.plan_evictions + s.plan_cache_evictions;
    dst.plans <- dst.plans + s.plans_considered;
    dst.maint <- dst.maint + s.maintenance_ops;
    List.iter (fun (label, seconds) -> add_timer dst label seconds) s.timers
  end

let sorted_timers table =
  Hashtbl.fold (fun label seconds acc -> (label, seconds) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot t =
  {
    tuples_scanned = t.tuples;
    pages_read = t.pages;
    bytes_read = t.bytes;
    io_batches = t.batches;
    page_cache_hits = t.cache_hits;
    sample_indices = t.indices;
    hash_probe_hits = t.hits;
    hash_probe_misses = t.misses;
    rng_draws = t.draws;
    plan_cache_hits = t.plan_hits;
    plan_cache_misses = t.plan_misses;
    plan_cache_evictions = t.plan_evictions;
    plans_considered = t.plans;
    maintenance_ops = t.maint;
    timers = sorted_timers t.timer_table;
  }

let zero =
  {
    tuples_scanned = 0;
    pages_read = 0;
    bytes_read = 0;
    io_batches = 0;
    page_cache_hits = 0;
    sample_indices = 0;
    hash_probe_hits = 0;
    hash_probe_misses = 0;
    rng_draws = 0;
    plan_cache_hits = 0;
    plan_cache_misses = 0;
    plan_cache_evictions = 0;
    plans_considered = 0;
    maintenance_ops = 0;
    timers = [];
  }

(* Combine two sorted timer lists label-wise. *)
let combine_timers op a b =
  let rec go a b =
    match (a, b) with
    | [], rest -> List.map (fun (l, s) -> (l, op 0. s)) rest
    | rest, [] -> rest
    | (la, sa) :: ta, (lb, sb) :: tb ->
      let c = String.compare la lb in
      if c = 0 then (la, op sa sb) :: go ta tb
      else if c < 0 then (la, sa) :: go ta b
      else (lb, op 0. sb) :: go a tb
  in
  go a b

let diff later earlier =
  {
    tuples_scanned = later.tuples_scanned - earlier.tuples_scanned;
    pages_read = later.pages_read - earlier.pages_read;
    bytes_read = later.bytes_read - earlier.bytes_read;
    io_batches = later.io_batches - earlier.io_batches;
    page_cache_hits = later.page_cache_hits - earlier.page_cache_hits;
    sample_indices = later.sample_indices - earlier.sample_indices;
    hash_probe_hits = later.hash_probe_hits - earlier.hash_probe_hits;
    hash_probe_misses = later.hash_probe_misses - earlier.hash_probe_misses;
    rng_draws = later.rng_draws - earlier.rng_draws;
    plan_cache_hits = later.plan_cache_hits - earlier.plan_cache_hits;
    plan_cache_misses = later.plan_cache_misses - earlier.plan_cache_misses;
    plan_cache_evictions = later.plan_cache_evictions - earlier.plan_cache_evictions;
    plans_considered = later.plans_considered - earlier.plans_considered;
    maintenance_ops = later.maintenance_ops - earlier.maintenance_ops;
    timers = combine_timers (fun a b -> a -. b) later.timers earlier.timers;
  }

let merge a b =
  {
    tuples_scanned = a.tuples_scanned + b.tuples_scanned;
    pages_read = a.pages_read + b.pages_read;
    bytes_read = a.bytes_read + b.bytes_read;
    io_batches = a.io_batches + b.io_batches;
    page_cache_hits = a.page_cache_hits + b.page_cache_hits;
    sample_indices = a.sample_indices + b.sample_indices;
    hash_probe_hits = a.hash_probe_hits + b.hash_probe_hits;
    hash_probe_misses = a.hash_probe_misses + b.hash_probe_misses;
    rng_draws = a.rng_draws + b.rng_draws;
    plan_cache_hits = a.plan_cache_hits + b.plan_cache_hits;
    plan_cache_misses = a.plan_cache_misses + b.plan_cache_misses;
    plan_cache_evictions = a.plan_cache_evictions + b.plan_cache_evictions;
    plans_considered = a.plans_considered + b.plans_considered;
    maintenance_ops = a.maintenance_ops + b.maintenance_ops;
    timers = combine_timers ( +. ) a.timers b.timers;
  }

let counters_equal a b =
  a.tuples_scanned = b.tuples_scanned
  && a.pages_read = b.pages_read
  && a.bytes_read = b.bytes_read
  && a.io_batches = b.io_batches
  && a.page_cache_hits = b.page_cache_hits
  && a.sample_indices = b.sample_indices
  && a.hash_probe_hits = b.hash_probe_hits
  && a.hash_probe_misses = b.hash_probe_misses
  && a.rng_draws = b.rng_draws
  && a.plan_cache_hits = b.plan_cache_hits
  && a.plan_cache_misses = b.plan_cache_misses
  && a.plan_cache_evictions = b.plan_cache_evictions
  && a.plans_considered = b.plans_considered
  && a.maintenance_ops = b.maintenance_ops

(* --- JSON ------------------------------------------------------------ *)

let escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' | '\\' ->
        Buffer.add_char buffer '\\';
        Buffer.add_char buffer ch
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buffer ch)
    s;
  Buffer.contents buffer

let json_float x = if Float.is_finite x then Printf.sprintf "%.6f" x else "null"

(* The counters object deliberately fits on one line so runs can be
   compared with line-oriented tools (the --domains determinism test
   greps for it). *)
let counters_line s =
  Printf.sprintf
    "{\"tuples_scanned\": %d, \"pages_read\": %d, \"bytes_read\": %d, \
     \"io_batches\": %d, \"page_cache_hits\": %d, \"sample_indices\": %d, \
     \"hash_probe_hits\": %d, \"hash_probe_misses\": %d, \"rng_draws\": %d, \
     \"plan_cache_hits\": %d, \"plan_cache_misses\": %d, \"plan_cache_evictions\": %d, \
     \"plans_considered\": %d, \"maintenance_ops\": %d}"
    s.tuples_scanned s.pages_read s.bytes_read s.io_batches s.page_cache_hits
    s.sample_indices s.hash_probe_hits s.hash_probe_misses s.rng_draws
    s.plan_cache_hits s.plan_cache_misses s.plan_cache_evictions s.plans_considered
    s.maintenance_ops

let timers_json buffer timers =
  Buffer.add_string buffer "  \"timers\": [";
  List.iteri
    (fun i (label, seconds) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer
        (Printf.sprintf "\n    {\"label\": \"%s\", \"seconds\": %s}" (escape label)
           (json_float seconds)))
    timers;
  if timers <> [] then Buffer.add_string buffer "\n  ";
  Buffer.add_char buffer ']'

let rec span_json buffer indent span =
  Buffer.add_string buffer
    (Printf.sprintf "%s{\"name\": \"%s\", \"seconds\": %s, \"children\": [" indent
       (escape span.name) (json_float span.seconds));
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_char buffer '\n';
      span_json buffer (indent ^ "  ") s)
    span.children;
  if span.children <> [] then begin
    Buffer.add_char buffer '\n';
    Buffer.add_string buffer indent
  end;
  Buffer.add_string buffer "]}"

let render ~spans:span_list snap =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "{\n  \"schema\": \"raestat-metrics/1\",\n";
  Buffer.add_string buffer (Printf.sprintf "  \"counters\": %s,\n" (counters_line snap));
  timers_json buffer snap.timers;
  (match span_list with
  | None -> ()
  | Some spans ->
    Buffer.add_string buffer ",\n  \"spans\": [";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_char buffer ',';
        Buffer.add_char buffer '\n';
        span_json buffer "    " s)
      spans;
    if spans <> [] then Buffer.add_string buffer "\n  ";
    Buffer.add_char buffer ']');
  Buffer.add_string buffer "\n}";
  Buffer.contents buffer

let snapshot_to_json snap = render ~spans:None snap

let to_json ?(include_spans = false) t =
  render ~spans:(if include_spans then Some (spans t) else None) (snapshot t)
