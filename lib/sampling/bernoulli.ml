let check_p p =
  if p < 0. || p > 1. then invalid_arg "Bernoulli: p must be in [0, 1]"

let sample rng ~p array =
  check_p p;
  let kept = ref [] in
  Array.iter (fun x -> if Rng.float rng < p then kept := x :: !kept) array;
  Array.of_list (List.rev !kept)

let relation rng ~p r =
  let tuples = sample rng ~p (Relational.Relation.tuples r) in
  Relational.Relation.of_array (Relational.Relation.schema r) tuples

let expected_size ~p n =
  check_p p;
  p *. float_of_int n

(* --- maintained sample ------------------------------------------------ *)

(* Inclusion events are independent coins, so the sample is maintained
   exactly under writes: an insert flips its own coin once, a delete
   removes the element if (and only if) its coin came up — the
   surviving table is distributed identically to a fresh Bernoulli(p)
   sample of the live population (Gibbons & Matias). *)
type 'a maintained = {
  rng : Rng.t;
  p : float;
  kept : (int, 'a) Hashtbl.t;
  metrics : Obs.Metrics.t;
}

let maintained ?(metrics = Obs.Metrics.noop) rng ~p () =
  check_p p;
  { rng; p; kept = Hashtbl.create 64; metrics }

let prob m = m.p

let size m = Hashtbl.length m.kept

let insert m ~id x =
  let draws_before = Rng.draws m.rng in
  Obs.Metrics.add_maintenance_ops m.metrics 1;
  if Rng.float m.rng < m.p then Hashtbl.replace m.kept id x;
  Obs.Metrics.add_rng_draws m.metrics (Rng.draws m.rng - draws_before)

let delete m ~id =
  Obs.Metrics.add_maintenance_ops m.metrics 1;
  Hashtbl.remove m.kept id

let contents m =
  let pairs = Hashtbl.fold (fun id x acc -> (id, x) :: acc) m.kept [] in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  Array.of_list sorted
