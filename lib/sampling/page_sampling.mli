(** Cluster sampling at page granularity over a {!Relational.Paged}
    relation: draw [m] whole pages by SRSWOR.  The per-page tuple
    counts feed the cluster estimator in {!Raestat.Cluster_estimator}. *)

type t = {
  page_indices : int array;  (** sampled page numbers, increasing *)
  pages : Relational.Tuple.t array array;  (** tuples of each sampled page *)
}

(** [metrics] records the [m] pages fetched, the tuples they carry and
    the index-generation cost (see {!Srs}).
    @raise Invalid_argument if [m] is out of range. *)
val sample : ?metrics:Obs.Metrics.t -> Rng.t -> m:int -> Relational.Paged.t -> t

(** All sampled tuples flattened into a relation (the page structure is
    recorded in [t] for the estimator). *)
val to_relation : Relational.Paged.t -> t -> Relational.Relation.t

(** Total tuples across the sampled pages. *)
val tuple_count : t -> int
