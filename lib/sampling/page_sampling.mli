(** Cluster sampling at page granularity over a {!Relational.Paged}
    relation: draw [m] whole pages by SRSWOR.  The per-page tuple
    counts feed the cluster estimator in {!Raestat.Cluster_estimator}.

    I/O accounting: [metrics] records the index-generation cost (see
    {!Srs}) and the sampled tuples; page fetches themselves are
    recorded by the paged source — real reads/bytes/batches for on-disk
    pagefiles, nothing for simulated in-memory pages. *)

type t = {
  page_indices : int array;  (** sampled page numbers, increasing *)
  pages : Relational.Tuple.t array array;  (** tuples of each sampled page *)
}

(** Materializing form: each sampled page is copied into a fresh array.
    @raise Invalid_argument if [m] is out of range. *)
val sample : ?metrics:Obs.Metrics.t -> Rng.t -> m:int -> Relational.Paged.t -> t

(** Per-page measures without materializing the pages. *)
type measured = {
  measured_indices : int array;  (** sampled page numbers, increasing *)
  values : float array;  (** [measure] of each sampled page, same order *)
  tuples : int;  (** total tuples across the sampled pages *)
}

(** [measures rng ~m paged ~measure] draws [m] pages by SRSWOR and
    folds [measure] over each through the paged source's reusable-buffer
    path ({!Relational.Paged.fold_pages}), so nothing is retained: the
    estimator's hot loop does one float per page instead of an array.
    @raise Invalid_argument if [m] is out of range. *)
val measures :
  ?metrics:Obs.Metrics.t ->
  Rng.t ->
  m:int ->
  Relational.Paged.t ->
  measure:(Relational.Tuple.t array -> float) ->
  measured

(** All sampled tuples flattened into a relation (the page structure is
    recorded in [t] for the estimator). *)
val to_relation : Relational.Paged.t -> t -> Relational.Relation.t

(** Total tuples across the sampled pages. *)
val tuple_count : t -> int
