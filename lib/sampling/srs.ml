let size_of_fraction ~fraction n =
  if n < 0 then invalid_arg "Srs.size_of_fraction: negative universe";
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Srs.size_of_fraction: fraction must be in (0, 1]";
  if n = 0 then 0
  else
    let size = int_of_float (Float.round (fraction *. float_of_int n)) in
    max 1 (min n size)

(* Dense draws (n within a constant factor of the universe): partial
   Fisher–Yates over an explicit index array.  Shuffling only the first
   n positions costs n swaps; the array is O(universe) but the dense
   guard keeps that within 16n words. *)
let dense_indices rng ~sorted ~n ~universe =
  let pool = Array.init universe (fun i -> i) in
  for i = 0 to n - 1 do
    let j = i + Rng.int rng (universe - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  let indices = Array.sub pool 0 n in
  (* The sort costs more than the draws for large dense samples;
     order-insensitive consumers (the columnar counting kernels) skip
     it.  The draw stream is identical either way. *)
  if sorted then Array.sort Int.compare indices;
  indices

(* Sparse draws: Vitter's sequential sampling (Algorithm D with the
   Algorithm A finish), "An Efficient Algorithm for Sequential Random
   Sampling", ACM TOMS 13(1), 1987.  Emits the n selected indices in
   increasing order directly — no hash table, no sort, O(n) expected
   time and exactly n words of output allocation. *)

(* Algorithm A: skip distances by sequential search over the
   hypergeometric skip distribution.  O(universe - position) total, used
   once the remaining sample is a sizable share of what is left. *)
let method_a rng ~indices ~k ~n ~big_n ~position =
  let k = ref k and n = ref n and big_n = ref big_n and position = ref position in
  while !n >= 2 do
    let v = Rng.float rng in
    let s = ref 0 in
    let top = ref (float_of_int (!big_n - !n)) in
    let bigf = ref (float_of_int !big_n) in
    let quot = ref (!top /. !bigf) in
    while !quot > v do
      incr s;
      top := !top -. 1.;
      bigf := !bigf -. 1.;
      quot := !quot *. !top /. !bigf
    done;
    position := !position + !s;
    indices.(!k) <- !position;
    incr k;
    incr position;
    big_n := !big_n - !s - 1;
    decr n
  done;
  if !n = 1 then indices.(!k) <- !position + Rng.int rng !big_n

let method_d rng ~n ~universe =
  let indices = Array.make n 0 in
  (* Mutable cursor state: k selected so far, n' still to select, N'
     records still eligible, position = next eligible absolute index. *)
  let k = ref 0 and n' = ref n and big_n = ref universe and position = ref 0 in
  let alpha_inv = 13 in
  let ninv = ref (1. /. float_of_int n) in
  let vprime = ref (Float.exp (Float.log (Rng.positive_float rng) *. !ninv)) in
  let qu1 = ref (universe - n + 1) in
  while !n' > 1 && alpha_inv * !n' < !big_n do
    let nmin1inv = 1. /. float_of_int (!n' - 1) in
    let big_nf = float_of_int !big_n in
    let qu1f = float_of_int !qu1 in
    let s = ref 0 in
    let accepted = ref false in
    while not !accepted do
      (* D2: propose a skip S = floor(N'(1 - V'^(1/n'))). *)
      let x = ref 0. in
      let valid = ref false in
      while not !valid do
        x := big_nf *. (1. -. !vprime);
        s := int_of_float !x;
        if !s < !qu1 then valid := true
        else vprime := Float.exp (Float.log (Rng.positive_float rng) *. !ninv)
      done;
      (* D3: squeeze-accept. *)
      let u = Rng.positive_float rng in
      let y1 = Float.exp (Float.log (u *. big_nf /. qu1f) *. nmin1inv) in
      vprime :=
        y1 *. (1. -. (!x /. big_nf)) *. (qu1f /. (qu1f -. float_of_int !s));
      if !vprime <= 1. then accepted := true
      else begin
        (* D4: exact acceptance test. *)
        let y2 = ref 1. in
        let top = ref (big_nf -. 1.) in
        let bottom, limit =
          if !n' - 1 > !s then (big_nf -. float_of_int !n', !big_n - !s)
          else (big_nf -. float_of_int !s -. 1., !qu1)
        in
        let bottom = ref bottom in
        for _t = !big_n - 1 downto limit do
          y2 := !y2 *. !top /. !bottom;
          top := !top -. 1.;
          bottom := !bottom -. 1.
        done;
        if big_nf /. (big_nf -. !x) >= y1 *. Float.exp (Float.log !y2 *. nmin1inv)
        then begin
          vprime := Float.exp (Float.log (Rng.positive_float rng) *. nmin1inv);
          accepted := true
        end
        else vprime := Float.exp (Float.log (Rng.positive_float rng) *. !ninv)
      end
    done;
    (* Skip S records, select the next one. *)
    position := !position + !s;
    indices.(!k) <- !position;
    incr k;
    incr position;
    big_n := !big_n - !s - 1;
    qu1 := !qu1 - !s;
    decr n';
    ninv := 1. /. float_of_int (max 1 !n')
  done;
  if !n' > 1 then
    (* Dense tail: hand the remainder to Algorithm A. *)
    method_a rng ~indices ~k:!k ~n:!n' ~big_n:!big_n ~position:!position
  else if !n' = 1 then
    (* S = floor(N'·V') is the last skip, V' being Beta-distributed as
       the algorithm's invariant maintains. *)
    indices.(!k) <- !position + min (!big_n - 1) (int_of_float (float_of_int !big_n *. !vprime));
  indices

(* Metrics accounting: the index kernels record the indices generated
   and the PRNG draws they consumed (delta of the generator's draw
   counter — exact for both Fisher–Yates and the rejection loops of
   Algorithm D); the gathers record the tuples materialized.  Counts
   are derived from the seed-determined stream, so they are identical
   on every run and every domain layout. *)

let indices_without_replacement ?(metrics = Obs.Metrics.noop) ?(sorted = true) rng
    ~n ~universe =
  if n < 0 then invalid_arg "Srs: negative sample size";
  if n > universe then invalid_arg "Srs: sample size exceeds universe";
  if n = 0 then [||]
  else begin
    let draws_before = Rng.draws rng in
    let indices =
      if n = universe then Array.init n (fun i -> i)
      else if universe <= 16 * n then dense_indices rng ~sorted ~n ~universe
      else method_d rng ~n ~universe
    in
    Obs.Metrics.add_indices metrics n;
    Obs.Metrics.add_rng_draws metrics (Rng.draws rng - draws_before);
    indices
  end

let indices_with_replacement ?(metrics = Obs.Metrics.noop) rng ~n ~universe =
  if n < 0 then invalid_arg "Srs: negative sample size";
  if n > 0 && universe <= 0 then invalid_arg "Srs: empty universe";
  let draws_before = Rng.draws rng in
  let indices = Array.init n (fun _ -> Rng.int rng universe) in
  Obs.Metrics.add_indices metrics n;
  Obs.Metrics.add_rng_draws metrics (Rng.draws rng - draws_before);
  indices

let sample_without_replacement ?metrics rng ~n array =
  let indices =
    indices_without_replacement ?metrics rng ~n ~universe:(Array.length array)
  in
  Option.iter (fun m -> Obs.Metrics.add_tuples m n) metrics;
  (* Single fused gather: the index array doubles as the output slot
     count, so there is exactly one pass and one result allocation. *)
  Array.map (fun i -> Array.unsafe_get array i) indices

let sample_with_replacement ?metrics rng ~n array =
  let indices = indices_with_replacement ?metrics rng ~n ~universe:(Array.length array) in
  Option.iter (fun m -> Obs.Metrics.add_tuples m n) metrics;
  Array.map (fun i -> Array.unsafe_get array i) indices

let relation_without_replacement ?metrics rng ~n relation =
  let tuples =
    sample_without_replacement ?metrics rng ~n (Relational.Relation.tuples relation)
  in
  Relational.Relation.of_array (Relational.Relation.schema relation) tuples

let relation_fraction ?metrics rng ~fraction relation =
  let n = size_of_fraction ~fraction (Relational.Relation.cardinality relation) in
  relation_without_replacement ?metrics rng ~n relation

let relation_with_replacement ?metrics rng ~n relation =
  let tuples =
    sample_with_replacement ?metrics rng ~n (Relational.Relation.tuples relation)
  in
  Relational.Relation.of_array (Relational.Relation.schema relation) tuples
