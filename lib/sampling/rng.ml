type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable draws : int;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* SplitMix64 step, used only to expand the seed into the xoshiro state. *)
let splitmix64 state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_seed64 seed64 =
  let state = ref seed64 in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* The all-zero state is a fixed point of xoshiro; SplitMix64 cannot
     produce four zero outputs in a row, but guard anyway. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3; draws = 0 }
  else { s0; s1; s2; s3; draws = 0 }

let create ~seed () = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3; draws = t.draws }

let draws t = t.draws

(* xoshiro256++ *)
let bits64 t =
  t.draws <- t.draws + 1;
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to stay in OCaml's int range
     and avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub mask (Int64.rem mask bound64) in
  let rec draw () =
    let r = Int64.logand (bits64 t) mask in
    if Int64.unsigned_compare r limit <= 0 then Int64.to_int (Int64.rem r bound64)
    else draw ()
  in
  draw ()

let float t =
  (* 53 high bits scaled to [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let positive_float t =
  let rec draw () =
    let x = float t in
    if x > 0. then x else draw ()
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Marsaglia polar method; discards the second deviate for a
     stateless signature. *)
  let rec draw () =
    let u = (2. *. float t) -. 1. in
    let v = (2. *. float t) -. 1. in
    let s = (u *. u) +. (v *. v) in
    if s >= 1. || s = 0. then draw () else u *. sqrt (-2. *. log s /. s)
  in
  draw ()

let shuffle_in_place t array =
  for i = Array.length array - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = array.(i) in
    array.(i) <- array.(j);
    array.(j) <- tmp
  done

let choose t array =
  if Array.length array = 0 then invalid_arg "Rng.choose: empty array";
  array.(int t (Array.length array))
