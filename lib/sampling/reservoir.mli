(** Reservoir sampling: maintain a uniform SRSWOR of fixed capacity [k]
    over a stream of unknown length.

    Two classic algorithms: Vitter's Algorithm R (one random draw per
    element) and Algorithm L (geometric skips; O(k·(1 + log(N/k)))
    draws).  Both maintain the invariant that after [n] elements each of
    them is in the reservoir with probability [min 1 (k/n)]. *)

type 'a t

(** [create ?algorithm ?metrics rng ~capacity] — when [metrics] is
    supplied, every {!add} accounts its RNG draws ([rng_draws]) and one
    [maintenance_ops] tick, so streaming maintenance shows up under the
    same real-work rules as the one-shot samplers.
    @raise Invalid_argument if [capacity <= 0]. *)
val create :
  ?algorithm:[ `R | `L ] -> ?metrics:Obs.Metrics.t -> Rng.t -> capacity:int -> 'a t

val add : 'a t -> 'a -> unit

(** Number of stream elements observed so far. *)
val seen : 'a t -> int

val capacity : 'a t -> int

(** Current sample, in unspecified order; length [min capacity seen]. *)
val contents : 'a t -> 'a array

(** Feed a whole array through the reservoir. *)
val add_all : 'a t -> 'a array -> unit

(** One-shot SRSWOR of size [min k (length array)] via a reservoir. *)
val sample : ?algorithm:[ `R | `L ] -> Rng.t -> k:int -> 'a array -> 'a array

(** [skip_of_weight ~w u] — Algorithm L's geometric skip
    [⌊log u / log(1−w)⌋] for acceptance weight [w] and uniform draw
    [u ∈ (0, 1)], clamped into [[0, max_int]].  As [w → 0⁺] the raw
    float exceeds [max_int] (and is −∞ once [w] underflows to 0), where
    a bare [int_of_float] is undefined and wrapped negative; the clamp
    saturates instead.  Exposed for the overflow regression tests. *)
val skip_of_weight : w:float -> float -> int
