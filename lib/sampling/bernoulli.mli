(** Bernoulli (binomial) sampling: each element is kept independently
    with probability [p].  The sample size is random with mean [p·N];
    inclusion events are independent, which makes several variance
    formulas exact (see {!Raestat.Count_estimator}). *)

(** @raise Invalid_argument if [p] is outside [0, 1]. *)
val sample : Rng.t -> p:float -> 'a array -> 'a array

val relation : Rng.t -> p:float -> Relational.Relation.t -> Relational.Relation.t

(** Expected sample size. *)
val expected_size : p:float -> int -> float

(** {1 Maintained sample}

    Because inclusion events are independent, a Bernoulli sample stays
    exact under writes with no resampling: each {!insert} flips its own
    coin, each {!delete} removes the element iff its coin had kept it
    (Gibbons–Matias style maintenance).  After any interleaving of
    inserts and deletes, the kept set is distributed identically to a
    fresh Bernoulli([p]) sample of the live population. *)

type 'a maintained

(** [maintained ?metrics rng ~p ()] — when [metrics] is supplied,
    maintenance accounts [rng_draws] and [maintenance_ops].
    @raise Invalid_argument if [p] is outside [0, 1]. *)
val maintained : ?metrics:Obs.Metrics.t -> Rng.t -> p:float -> unit -> 'a maintained

val prob : 'a maintained -> float

(** Current kept-set size (random, mean [p ·] live population). *)
val size : 'a maintained -> int

(** [insert m ~id x] flips the element's inclusion coin (exactly one
    RNG draw).  [id] must be unique over the live population. *)
val insert : 'a maintained -> id:int -> 'a -> unit

(** [delete m ~id] removes the element from the kept set if its coin
    had admitted it; a no-op for elements that were never kept. *)
val delete : 'a maintained -> id:int -> unit

(** Kept elements as [(id, value)] pairs sorted by id — a
    deterministic order for estimation and serialization. *)
val contents : 'a maintained -> (int * 'a) array
