(** Simple random sampling (SRS), the paper's base design.

    Without-replacement sampling (SRSWOR) gives every size-[n] subset of
    the universe equal probability; with-replacement (SRSWR) draws [n]
    i.i.d. uniform picks. *)

(** [size_of_fraction ~fraction n] is the sample size for a sampling
    fraction in (0, 1]: [round (fraction *. n)] clamped to [1, n]
    (at least one tuple is always drawn from a non-empty universe).
    @raise Invalid_argument if [fraction] is outside (0, 1] or [n < 0]. *)
val size_of_fraction : fraction:float -> int -> int

(** [indices_without_replacement rng ~n ~universe] draws [n] distinct
    indices uniformly from [0, universe), returned in increasing order.
    Dense draws ([universe <= 16n]) use a partial Fisher–Yates shuffle;
    sparse draws use Vitter's sequential sampling (Algorithm D, TOMS
    1987), which emits the indices already sorted in O(n) expected time
    with no hashing and O(n) space.  [metrics] (default disabled)
    records the indices generated and the PRNG draws consumed.

    [~sorted:false] skips the final sort of the dense path (sparse
    draws are sorted for free): the index {e set}, the PRNG stream and
    the metrics are identical, only the order is unspecified.
    Order-insensitive consumers (columnar counting kernels) use it to
    shed the dominant cost of large dense draws.
    @raise Invalid_argument if [n < 0] or [n > universe]. *)
val indices_without_replacement :
  ?metrics:Obs.Metrics.t -> ?sorted:bool -> Rng.t -> n:int -> universe:int -> int array

(** [indices_with_replacement rng ~n ~universe] draws [n] i.i.d. uniform
    indices (duplicates possible), in draw order.
    @raise Invalid_argument if [n < 0] or [universe <= 0] when [n > 0]. *)
val indices_with_replacement :
  ?metrics:Obs.Metrics.t -> Rng.t -> n:int -> universe:int -> int array

(** The gather variants additionally record the sampled tuples as
    tuples scanned. *)

val sample_without_replacement :
  ?metrics:Obs.Metrics.t -> Rng.t -> n:int -> 'a array -> 'a array

val sample_with_replacement :
  ?metrics:Obs.Metrics.t -> Rng.t -> n:int -> 'a array -> 'a array

(** SRSWOR of a relation at an explicit size. *)
val relation_without_replacement :
  ?metrics:Obs.Metrics.t -> Rng.t -> n:int -> Relational.Relation.t -> Relational.Relation.t

(** SRSWOR of a relation at a sampling fraction (see
    {!size_of_fraction}). *)
val relation_fraction :
  ?metrics:Obs.Metrics.t -> Rng.t -> fraction:float -> Relational.Relation.t -> Relational.Relation.t

(** SRSWR of a relation at an explicit size. *)
val relation_with_replacement :
  ?metrics:Obs.Metrics.t -> Rng.t -> n:int -> Relational.Relation.t -> Relational.Relation.t
