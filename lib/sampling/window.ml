(* One chain: the current sample followed by its recorded successor
   links (strictly increasing stream indices), kept as a two-list
   queue — [front] is the ordered prefix, [back_rev] the reversed
   suffix — so recording a successor is an O(1) cons instead of the
   O(|links|) append the first version paid per recorded link.
   [next_succ] is the pre-chosen index whose value the chain still
   needs to record. *)
type 'a chain = {
  mutable front : (int * 'a) list;
  mutable back_rev : (int * 'a) list;
  mutable next_succ : int;
}

type 'a t = {
  rng : Rng.t;
  window : int;
  chains : 'a chain array;
  mutable seen : int;
  mutable work : int;
  metrics : Obs.Metrics.t;
}

let create ?(k = 1) ?(metrics = Obs.Metrics.noop) rng ~window () =
  if window <= 0 then invalid_arg "Window.create: window must be positive";
  if k <= 0 then invalid_arg "Window.create: k must be positive";
  {
    rng;
    window;
    chains = Array.init k (fun _ -> { front = []; back_rev = []; next_succ = 0 });
    seen = 0;
    work = 0;
    metrics;
  }

let is_empty chain = chain.front = [] && chain.back_rev = []

(* Move the reversed suffix to the front when the front runs out:
   each link is reversed at most once, so the amortized cost per
   recorded link stays O(1). *)
let normalize t chain =
  if chain.front = [] && chain.back_rev <> [] then begin
    t.work <- t.work + List.length chain.back_rev;
    chain.front <- List.rev chain.back_rev;
    chain.back_rev <- []
  end

let head chain =
  match chain.front with
  | link :: _ -> Some link
  | [] -> ( match List.rev chain.back_rev with link :: _ -> Some link | [] -> None)

let pick_successor t index = index + 1 + Rng.int t.rng t.window

let add t x =
  let draws_before = Rng.draws t.rng in
  t.seen <- t.seen + 1;
  let now = t.seen in
  Array.iter
    (fun chain ->
      (* Record a successor the chain was waiting for. *)
      if chain.next_succ = now && not (is_empty chain) then begin
        t.work <- t.work + 1;
        chain.back_rev <- (now, x) :: chain.back_rev;
        chain.next_succ <- pick_successor t now
      end;
      (* Admit the new element with probability 1/min(now, W). *)
      let denom = min now t.window in
      if Rng.int t.rng denom = 0 then begin
        t.work <- t.work + 1;
        chain.front <- [ (now, x) ];
        chain.back_rev <- [];
        chain.next_succ <- pick_successor t now
      end;
      (* Expire the sample if it slid out of the window. *)
      normalize t chain;
      match chain.front with
      | (index, _) :: rest when index <= now - t.window ->
        t.work <- t.work + 1;
        chain.front <- rest;
        normalize t chain
      | _ -> ())
    t.chains;
  Obs.Metrics.add_maintenance_ops t.metrics (Array.length t.chains);
  Obs.Metrics.add_rng_draws t.metrics (Rng.draws t.rng - draws_before)

let seen t = t.seen

let window t = t.window

let work t = t.work

let contents t =
  Array.to_list t.chains
  |> List.filter_map (fun chain -> match head chain with Some (_, x) -> Some x | None -> None)
  |> Array.of_list
