(** Deterministic pseudo-random number generator.

    xoshiro256++ seeded through SplitMix64 — self-contained so every
    experiment in the repository is reproducible bit-for-bit regardless
    of the OCaml stdlib's generator.  Not cryptographic. *)

type t

(** [create ~seed ()] builds a generator.  Equal seeds give equal
    streams. *)
val create : seed:int -> unit -> t

(** Independent copy: advancing one does not affect the other (the
    draw counter is copied too). *)
val copy : t -> t

(** Number of raw 64-bit draws this generator has produced since it was
    created (or copied).  Children from {!split} start at 0.  Seed and
    stream position fully determine the count, so it is identical on
    every run and every domain layout — the metrics layer reports
    deltas of this counter as the "RNG draws" cost. *)
val draws : t -> int

(** Derive a statistically independent generator from this one
    (consumes one draw from the parent).  Use to give each replication
    of an experiment its own stream. *)
val split : t -> t

(** Raw 64 uniformly random bits. *)
val bits64 : t -> int64

(** [int t bound] is uniform on [0, bound) (unbiased, by rejection).
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1) with 53 bits of precision. *)
val float : t -> float

(** Uniform float in [0, 1) strictly above 0 (safe for [log]). *)
val positive_float : t -> float

val bool : t -> bool

(** Standard normal deviate (Box–Muller, polar form). *)
val gaussian : t -> float

(** In-place Fisher–Yates shuffle. *)
val shuffle_in_place : t -> 'a array -> unit

(** Uniformly random element.
    @raise Invalid_argument on an empty array. *)
val choose : t -> 'a array -> 'a
