type t = {
  page_indices : int array;
  pages : Relational.Tuple.t array array;
}

type measured = {
  measured_indices : int array;
  values : float array;
  tuples : int;
}

let tuple_count t = Array.fold_left (fun acc page -> acc + Array.length page) 0 t.pages

let draw_indices ~metrics rng ~m paged =
  let universe = Relational.Paged.page_count paged in
  Srs.indices_without_replacement ~metrics rng ~n:m ~universe

let sample ?(metrics = Obs.Metrics.noop) rng ~m paged =
  let page_indices = draw_indices ~metrics rng ~m paged in
  let pages = Array.make m [||] in
  let next = ref 0 in
  (* fold_pages hands out reusable buffers; copy since pages escape. *)
  Relational.Paged.fold_pages ~metrics paged page_indices ~init:()
    ~f:(fun () _index page ->
      pages.(!next) <- Array.copy page;
      incr next);
  let t = { page_indices; pages } in
  Obs.Metrics.add_tuples metrics (tuple_count t);
  t

let measures ?(metrics = Obs.Metrics.noop) rng ~m paged ~measure =
  let measured_indices = draw_indices ~metrics rng ~m paged in
  let values = Array.make m 0. in
  let next = ref 0 in
  let tuples =
    Relational.Paged.fold_pages ~metrics paged measured_indices ~init:0
      ~f:(fun tuples _index page ->
        values.(!next) <- measure page;
        incr next;
        tuples + Array.length page)
  in
  Obs.Metrics.add_tuples metrics tuples;
  { measured_indices; values; tuples }

let to_relation paged t =
  let tuples = Array.concat (Array.to_list t.pages) in
  Relational.Relation.of_array (Relational.Paged.schema paged) tuples
