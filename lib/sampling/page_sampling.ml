type t = {
  page_indices : int array;
  pages : Relational.Tuple.t array array;
}

let tuple_count t = Array.fold_left (fun acc page -> acc + Array.length page) 0 t.pages

let sample ?(metrics = Obs.Metrics.noop) rng ~m paged =
  let universe = Relational.Paged.page_count paged in
  let page_indices = Srs.indices_without_replacement ~metrics rng ~n:m ~universe in
  let pages = Array.map (fun i -> Relational.Paged.page paged i) page_indices in
  let t = { page_indices; pages } in
  Obs.Metrics.add_pages metrics m;
  Obs.Metrics.add_tuples metrics (tuple_count t);
  t

let to_relation paged t =
  let tuples = Array.concat (Array.to_list t.pages) in
  Relational.Relation.of_array
    (Relational.Relation.schema (Relational.Paged.relation paged))
    tuples
