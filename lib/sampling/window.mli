(** Sampling over a sliding window: maintain uniform samples of the
    {e last W} stream elements using chain sampling (Babcock, Datar &
    Motwani, SODA 2002).

    Each of the [k] chains holds one uniform sample of the current
    window in O(1) expected space: when an element is sampled, the
    index of its replacement (its "successor", uniform over the W
    positions after it) is chosen in advance and recorded as it flows
    by, so expiry never needs access to the expired window.  Chains are
    independent, so {!contents} is a with-replacement size-[k] sample
    of the window.

    Per-element maintenance is O(k) amortized: recorded links live in a
    two-list queue (ordered front, reversed suffix), so appends are
    cons cells and each link is reversed at most once on its way to the
    head — {!work} exposes the cell-operation total the regression test
    pins. *)

type 'a t

(** [create ?k ?metrics rng ~window ()] — [k] independent chains
    (default 1).  When [metrics] is supplied, every {!add} accounts its
    RNG draws ([rng_draws]) and one [maintenance_ops] tick per chain.
    @raise Invalid_argument if [window <= 0] or [k <= 0]. *)
val create : ?k:int -> ?metrics:Obs.Metrics.t -> Rng.t -> window:int -> unit -> 'a t

(** Feed the next stream element. *)
val add : 'a t -> 'a -> unit

(** Elements seen so far. *)
val seen : 'a t -> int

val window : 'a t -> int

(** Total chain cell operations (links recorded, reversed or expired)
    since {!create} — the complexity hook: amortized O(1) per {!add}
    per chain, so [work t / (k * seen t)] stays bounded however long
    the stream runs. *)
val work : 'a t -> int

(** One uniform draw from the current window per chain ([k] values,
    with replacement across chains); empty before the first element. *)
val contents : 'a t -> 'a array
