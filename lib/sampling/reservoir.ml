type 'a t = {
  rng : Rng.t;
  algorithm : [ `R | `L ];
  capacity : int;
  mutable seen : int;
  mutable store : 'a option array;
  (* Algorithm L state: w is the current acceptance weight, next_index
     the 1-based stream index of the next element to admit. *)
  mutable w : float;
  mutable next_index : int;
  metrics : Obs.Metrics.t;
}

let create ?(algorithm = `R) ?(metrics = Obs.Metrics.noop) rng ~capacity =
  if capacity <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
  {
    rng;
    algorithm;
    capacity;
    seen = 0;
    store = Array.make capacity None;
    w = 1.;
    next_index = 0;
    metrics;
  }

(* Li's geometric skip ⌊log u / log(1−w)⌋, clamped into [0, max_int].
   As w → 0⁺ the raw float exceeds [max_int] and a bare [int_of_float]
   wraps negative (undefined conversion), which used to drag
   [next_index] backwards and re-admit elements with the wrong
   probability; once w underflows to exactly 0 the ratio is −∞.  Either
   way the true skip is "past the end of any realizable stream", so the
   clamp saturates to [max_int]. *)
let skip_of_weight ~w u =
  let raw = Float.floor (log u /. log (1. -. w)) in
  if Float.is_nan raw || raw < 0. || raw >= float_of_int max_int then max_int
  else int_of_float raw

let advance_l t =
  (* Geometric skip of Li (1994): update the weight then jump. *)
  t.w <- t.w *. exp (log (Rng.positive_float t.rng) /. float_of_int t.capacity);
  let skip = skip_of_weight ~w:t.w (Rng.positive_float t.rng) in
  (* Saturating add: next_index must stay monotone even at the clamp. *)
  t.next_index <-
    (if t.next_index > max_int - skip - 1 then max_int else t.next_index + skip + 1)

let add t x =
  let draws_before = Rng.draws t.rng in
  Obs.Metrics.add_maintenance_ops t.metrics 1;
  t.seen <- t.seen + 1;
  if t.seen <= t.capacity then begin
    t.store.(t.seen - 1) <- Some x;
    if t.seen = t.capacity && t.algorithm = `L then begin
      t.next_index <- t.capacity;
      advance_l t
    end
  end
  else (
    match t.algorithm with
    | `R ->
      let j = Rng.int t.rng t.seen in
      if j < t.capacity then t.store.(j) <- Some x
    | `L ->
      if t.seen = t.next_index then begin
        t.store.(Rng.int t.rng t.capacity) <- Some x;
        advance_l t
      end);
  Obs.Metrics.add_rng_draws t.metrics (Rng.draws t.rng - draws_before)

let seen t = t.seen

let capacity t = t.capacity

let contents t =
  let filled = min t.seen t.capacity in
  Array.init filled (fun i ->
      match t.store.(i) with
      | Some x -> x
      | None -> assert false)

let add_all t array = Array.iter (add t) array

let sample ?algorithm rng ~k array =
  let t = create ?algorithm rng ~capacity:k in
  add_all t array;
  contents t
