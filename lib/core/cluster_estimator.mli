(** Cluster (page-level) sampling estimator.

    Relations live on fixed-capacity pages ({!Relational.Paged});
    fetching a page costs one access but yields all its tuples.  Draw
    [m] of the [M] pages by SRSWOR, count the qualifying tuples [y_i]
    on each, and scale:

    {v
    Ĉ      = (M/m)·Σ y_i           (unbiased)
    V̂ar(Ĉ) = M²·(1 − m/M)·s²/m     with s² = Σ(y_i − ȳ)²/(m−1)
    v}

    Cheap per tuple but sensitive to layout: if qualifying tuples are
    clustered on few pages the between-page variance [s²] is large
    (experiment F3). *)

type result = {
  estimate : Stats.Estimate.t;
  pages_sampled : int;
      (** pages the design drew ([m]).  Real page I/O — which can be
          lower on a warm cache, or zero for in-memory sources — is on
          the [metrics] sink ([pages_read]/[page_cache_hits]). *)
  tuples_read : int;
}

(** [count rng ~m paged predicate] estimates
    [COUNT (σ predicate relation)].
    @raise Invalid_argument if [m] is out of range ([m >= 1] required;
    [m >= 2] for a variance estimate). *)
val count :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  m:int ->
  Relational.Paged.t ->
  Relational.Predicate.t ->
  result

(** [count_with_goal rng ~goal paged predicate] — goal-based entry
    ({!Planner.goal}): the goal resolves to a tuple fraction over the
    file's cardinality, which becomes a page count [m] (the
    root-sampling strategy at page granularity).  Clamped to
    [[2, page_count]] (or [m = 1] for a single-page file) so a
    variance estimate is attached whenever possible.
    @raise Invalid_argument as {!Planner.fraction_of_goal}. *)
val count_with_goal :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  goal:Planner.goal ->
  Relational.Paged.t ->
  Relational.Predicate.t ->
  result

(** Generalized form: [estimate rng ~m paged ~measure] scales the total
    of an arbitrary per-page statistic (e.g. a per-page aggregate). *)
val estimate :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  m:int ->
  Relational.Paged.t ->
  measure:(Relational.Tuple.t array -> float) ->
  result
