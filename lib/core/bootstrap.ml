module Estimate = Stats.Estimate

type resample = {
  point : float;
  replicates : float array;
}

let run ?domains ?(metrics = Obs.Metrics.noop) rng ~replicates ~statistic sample =
  if Array.length sample = 0 then invalid_arg "Bootstrap.run: empty sample";
  if replicates <= 0 then invalid_arg "Bootstrap.run: replicates must be positive";
  let n = Array.length sample in
  (* One split stream per replicate, derived serially: replicate r sees
     the same draws whatever the domain count.  Each chunk reuses a
     single scratch buffer, matching the serial code's allocation. *)
  let draws_before = Sampling.Rng.draws rng in
  let children = Array.init replicates (fun _ -> Sampling.Rng.split rng) in
  Obs.Metrics.add_rng_draws metrics (Sampling.Rng.draws rng - draws_before);
  (* Per-replicate sinks, absorbed in replicate order below: counter
     totals are independent of the domain count. *)
  let sinks = Array.init replicates (fun _ -> Obs.Metrics.child metrics) in
  let values =
    Parallel.chunked_init ?domains replicates (fun start len ->
        let resampled = Array.make n sample.(0) in
        Array.init len (fun k ->
            let child = children.(start + k) in
            for i = 0 to n - 1 do
              resampled.(i) <- sample.(Sampling.Rng.int child n)
            done;
            let sink = sinks.(start + k) in
            Obs.Metrics.add_indices sink n;
            Obs.Metrics.add_rng_draws sink (Sampling.Rng.draws child);
            statistic resampled))
  in
  Array.iter (fun sink -> Obs.Metrics.absorb metrics sink) sinks;
  { point = statistic sample; replicates = values }

let variance r = Stats.Summary.variance (Stats.Summary.of_array r.replicates)

let percentile_interval ~level r =
  if level <= 0. || level >= 1. then
    invalid_arg "Bootstrap.percentile_interval: level outside (0, 1)";
  let alpha2 = (1. -. level) /. 2. in
  {
    Stats.Confidence.lo = Stats.Summary.quantile alpha2 r.replicates;
    hi = Stats.Summary.quantile (1. -. alpha2) r.replicates;
    level;
  }

let normal_interval ~level r =
  Stats.Confidence.normal ~level ~point:r.point ~stderr:(Float.sqrt (variance r))

let selection_count ?domains ?(metrics = Obs.Metrics.noop) rng catalog ~relation ~n
    ?(replicates = 200) ?(level = 0.95) predicate =
  let r = Relational.Catalog.find catalog relation in
  let big_n = Relational.Relation.cardinality r in
  if n <= 0 || n > big_n then
    invalid_arg "Bootstrap.selection_count: sample size out of range";
  let sample =
    Sampling.Srs.sample_without_replacement ~metrics rng ~n (Relational.Relation.tuples r)
  in
  let keep = Relational.Predicate.compile (Relational.Relation.schema r) predicate in
  (* Statistic over 0/1 hit indicators: scale-up count. *)
  let indicators = Array.map (fun t -> if keep t then 1. else 0.) sample in
  let statistic hits =
    float_of_int big_n *. (Array.fold_left ( +. ) 0. hits /. float_of_int n)
  in
  let result = run ?domains ~metrics rng ~replicates ~statistic indicators in
  let estimate =
    Estimate.make ~variance:(variance result) ~label:"selection (bootstrap)"
      ~status:Estimate.Unbiased ~sample_size:n result.point
  in
  (estimate, Stats.Confidence.clamp_nonnegative (percentile_interval ~level result))
