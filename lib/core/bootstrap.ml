type resample = {
  point : float;
  replicates : float array;
}

(* Front-end over the bootstrap-resampling strategy of {!Estplan}: the
   engine owns the split-stream replicate loop and its deterministic
   metrics accounting. *)

let run ?domains ?(metrics = Obs.Metrics.noop) rng ~replicates ~statistic sample =
  if Array.length sample = 0 then invalid_arg "Bootstrap.run: empty sample";
  if replicates <= 0 then invalid_arg "Bootstrap.run: replicates must be positive";
  let values =
    Estplan.bootstrap_replicates ?domains ~metrics rng ~replicates ~statistic sample
  in
  { point = statistic sample; replicates = values }

let variance r = Stats.Summary.variance (Stats.Summary.of_array r.replicates)

let percentile_interval ~level r =
  if level <= 0. || level >= 1. then
    invalid_arg "Bootstrap.percentile_interval: level outside (0, 1)";
  let alpha2 = (1. -. level) /. 2. in
  {
    Stats.Confidence.lo = Stats.Summary.quantile alpha2 r.replicates;
    hi = Stats.Summary.quantile (1. -. alpha2) r.replicates;
    level;
  }

let normal_interval ~level r =
  Stats.Confidence.normal ~level ~point:r.point ~stderr:(Float.sqrt (variance r))

let selection_count ?domains ?(metrics = Obs.Metrics.noop) rng catalog ~relation ~n
    ?(replicates = 200) ?(level = 0.95) predicate =
  let r = Relational.Catalog.find catalog relation in
  let big_n = Relational.Relation.cardinality r in
  if n <= 0 || n > big_n then
    invalid_arg "Bootstrap.selection_count: sample size out of range";
  Estplan.run_bootstrap ?domains ~metrics rng catalog
    (Estplan.bootstrap_plan catalog ~relation ~n ~replicates predicate)
    ~level

(* Goal-based entry: the goal resolves to the original-sample size
   (root-sampling strategy); the resampling machinery is unchanged. *)
let selection_count_with_goal ?domains ?metrics rng catalog ~relation ~goal ?replicates
    ?level predicate =
  let big_n =
    Relational.Relation.cardinality (Relational.Catalog.find catalog relation)
  in
  let n = Planner.size_of_goal ~population:big_n goal in
  selection_count ?domains ?metrics rng catalog ~relation ~n ?replicates ?level predicate
