module Relation = Relational.Relation
module Catalog = Relational.Catalog

type result = {
  estimate : Stats.Estimate.t;
  strata : (string * int * int) list;
}

(* Front-end over the stratified-expansion strategy of {!Estplan}: the
   engine allocates proportionally per stratum, expands each stratum's
   binomial and sums points and variances. *)

let count rng catalog ~relation ~key ~n predicate =
  let r = Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  if n <= 0 || n > big_n then invalid_arg "Stratified_estimator.count: n out of range";
  let estimate, strata =
    Estplan.run_stratified rng catalog
      (Estplan.stratified_plan catalog ~relation ~n predicate)
      ~key
  in
  { estimate; strata }

(* Goal-based entry: the goal resolves to the total sample size over
   the relation's population (root-sampling strategy; the proportional
   allocation then splits it across strata as usual). *)
let count_with_goal rng catalog ~relation ~key ~goal predicate =
  let big_n = Relation.cardinality (Catalog.find catalog relation) in
  let n = Planner.size_of_goal ~population:big_n goal in
  count rng catalog ~relation ~key ~n predicate

let count_by_attribute rng catalog ~relation ~attribute ~n predicate =
  let r = Catalog.find catalog relation in
  let i = Relational.Schema.index_of (Relation.schema r) attribute in
  let key t = Relational.Value.to_string (Relational.Tuple.get t i) in
  count rng catalog ~relation ~key ~n predicate
