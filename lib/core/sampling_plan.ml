module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Relation = Relational.Relation

type mode =
  | Srswor of int
  | Bernoulli of float

type leaf = {
  occurrence : int;
  relation : string;
  alias : string;
  population : int;
  mode : mode;
}

type t = {
  expr : Expr.t;
  leaves : leaf list;
  scale : float;
}

let leaf_scale leaf =
  match leaf.mode with
  (* An empty leaf is sampled as [Srswor 0]: the sample IS the
     population, i.e. a census, so its scale contribution is 1. *)
  | Srswor n -> if leaf.population = 0 then 1. else float_of_int leaf.population /. float_of_int n
  | Bernoulli p -> 1. /. p

let check_mode ~population ~relation = function
  | Srswor n ->
    if n < 0 || n > population || (n = 0 && population > 0) then
      invalid_arg
        (Printf.sprintf "Sampling_plan: sample size %d out of range for %S (N=%d)" n
           relation population)
  | Bernoulli p ->
    if p <= 0. || p > 1. then
      invalid_arg
        (Printf.sprintf "Sampling_plan: Bernoulli rate %g out of (0, 1] for %S" p relation)

let make_custom catalog ~mode expr =
  let leaves = ref [] in
  let rewritten =
    Expr.map_bases
      (fun occurrence relation ->
        let population = Relation.cardinality (Catalog.find catalog relation) in
        let m = mode occurrence relation population in
        check_mode ~population ~relation m;
        let alias = Printf.sprintf "%s#%d" relation occurrence in
        leaves := { occurrence; relation; alias; population; mode = m } :: !leaves;
        Expr.Base alias)
      expr
  in
  let leaves = List.rev !leaves in
  let scale = List.fold_left (fun acc leaf -> acc *. leaf_scale leaf) 1. leaves in
  { expr = rewritten; leaves; scale }

let make catalog ~fraction expr =
  make_custom catalog
    ~mode:(fun _ _ population -> Srswor (Sampling.Srs.size_of_fraction ~fraction population))
    expr

let draw ?(metrics = Obs.Metrics.noop) rng catalog plan =
  let sampled = Catalog.create () in
  let total = ref 0 in
  List.iter
    (fun leaf ->
      let relation = Catalog.find catalog leaf.relation in
      let sample =
        match leaf.mode with
        | Srswor n -> Sampling.Srs.relation_without_replacement ~metrics rng ~n relation
        | Bernoulli p ->
          (* A Bernoulli draw scans the whole leaf (every tuple flips a
             coin), so the scan cost is the population, not the yield. *)
          let draws_before = Sampling.Rng.draws rng in
          let sample = Sampling.Bernoulli.relation rng ~p relation in
          Obs.Metrics.add_tuples metrics leaf.population;
          Obs.Metrics.add_rng_draws metrics (Sampling.Rng.draws rng - draws_before);
          sample
      in
      total := !total + Relation.cardinality sample;
      Catalog.add sampled leaf.alias sample)
    plan.leaves;
  (sampled, !total)

let expected_sample_size plan =
  List.fold_left
    (fun acc leaf ->
      acc
      +.
      match leaf.mode with
      | Srswor n -> float_of_int n
      | Bernoulli p -> p *. float_of_int leaf.population)
    0. plan.leaves
