(** Sampling plans: how to sample the base relations of a relational
    algebra expression.

    Every {e occurrence} of a base relation in the expression gets its
    own independent sample — this is what makes the scale-up estimator
    unbiased even for self-joins.  A plan rewrites the expression so
    each occurrence refers to a distinct alias, records the population
    and sample size (or Bernoulli rate) per occurrence, and knows the
    overall scale factor. *)

type mode =
  | Srswor of int      (** simple random sample without replacement, fixed size *)
  | Bernoulli of float (** independent inclusion with this probability *)

type leaf = {
  occurrence : int;    (** 0-based left-to-right occurrence index *)
  relation : string;   (** base relation name in the original catalog *)
  alias : string;      (** name the rewritten expression uses *)
  population : int;
  mode : mode;
}

type t = private {
  expr : Relational.Expr.t;  (** rewritten expression over aliases *)
  leaves : leaf list;
  scale : float;             (** product over leaves of N/n (or 1/p) *)
}

(** [make catalog ~fraction expr] plans an SRSWOR of the given fraction
    at every leaf (see {!Sampling.Srs.size_of_fraction}).  An empty leaf
    is planned as [Srswor 0] — a census of nothing with scale 1 — so
    expressions over empty relations estimate to an exact 0 rather than
    raising.
    @raise Invalid_argument if [fraction] is outside (0, 1].
    @raise Failure if a leaf is unbound in the catalog. *)
val make : Relational.Catalog.t -> fraction:float -> Relational.Expr.t -> t

(** Like {!make} with a per-occurrence choice of mode.  The callback
    receives the occurrence index, relation name and population. *)
val make_custom :
  Relational.Catalog.t ->
  mode:(int -> string -> int -> mode) ->
  Relational.Expr.t ->
  t

(** [draw rng catalog plan] draws the planned samples and returns a
    fresh catalog binding every alias, paired with the total number of
    sampled tuples. *)
val draw :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t -> Relational.Catalog.t -> t -> Relational.Catalog.t * int

(** Expected total sampled tuples of the plan. *)
val expected_sample_size : t -> float

(** Scale-up factor of one leaf: N/n for SRSWOR, 1/p for Bernoulli. *)
val leaf_scale : leaf -> float
