(** A mutable streaming relation: the live population under
    inserts/deletes, with its statistical summaries — a backing
    reservoir sample ({!Backing_sample}), an optional maintained
    Bernoulli sample and an optional sliding-window sample — kept valid
    on {e every} write, so estimates answered from the maintained
    sample are always fresh (staleness 0 epochs) without rescanning the
    base data.

    {2 Determinism}

    All randomness is drawn at {e write} time from the stream's own
    seeded RNG, in operation order.  Reads ({!estimate_count},
    {!snapshot}, the sample accessors) draw nothing, so any number of
    concurrent readers — or worker domains — observe identical state
    between writes.  The {!epoch} counter advances on every mutation
    batch; it keys caches and staleness checks.

    {2 Accounting}

    The [?metrics] sink given to {!create} receives all maintenance
    work under the real-work rules: [maintenance_ops] and [rng_draws]
    per write, [tuples_scanned] for rescans and materializations.
    Callers that attribute per-request deltas snapshot around an
    operation and {!Obs.Metrics.add_snapshot} the difference. *)

type id = Backing_sample.id

type t

(** Batch result: [first_id] is the id of the first inserted tuple
    ([-1] when the batch inserted nothing); ids are sequential, so the
    batch occupies [first_id .. first_id + inserted - 1]. *)
type counts = { first_id : id; inserted : int; deleted : int }

(** [create ?capacity ?bernoulli ?window ?window_chains ?metrics ~seed
    ~schema ()] — [capacity] is the backing reservoir's target size
    (default 1024); [bernoulli] enables a maintained Bernoulli(p)
    sample; [window] a chain sample of the last [window] inserts with
    [window_chains] independent chains.
    @raise Invalid_argument on a non-positive capacity or window, or a
    [bernoulli] outside [0, 1]. *)
val create :
  ?capacity:int ->
  ?bernoulli:float ->
  ?window:int ->
  ?window_chains:int ->
  ?metrics:Obs.Metrics.t ->
  seed:int ->
  schema:Relational.Schema.t ->
  unit ->
  t

val schema : t -> Relational.Schema.t

(** Mutation counter: bumped once per {!insert}, effective {!delete},
    non-empty {!ingest} batch and {!rescan}. *)
val epoch : t -> int

(** Exact live population (the store is authoritative, not sampled). *)
val population : t -> int

val sample_size : t -> int

(** Backing reservoir capacity. *)
val capacity : t -> int

val fill_ratio : t -> float

(** Deletion erosion gauge, threaded to
    {!Backing_sample.needs_rescan}. *)
val needs_rescan : ?min_ratio:float -> t -> bool

(** Is this id live? *)
val mem : t -> id -> bool

(** Insert a tuple into the population and every maintained sample;
    returns its id. *)
val insert : t -> Relational.Tuple.t -> id

(** Delete by id from the population and every maintained sample.
    [false] (and no epoch bump) for ids that are not live. *)
val delete : t -> id -> bool

(** Batched writes: all inserts in array order, then all deletes; one
    epoch bump for the whole batch. *)
val ingest : t -> inserts:Relational.Tuple.t array -> deletes:id array -> counts

(** Rebuild the backing sample from the live population (id order) —
    the O(population) escape hatch for {!needs_rescan}; bumps the
    epoch. *)
val rescan : t -> unit

(** COUNT-of-selection estimate from the maintained backing sample:
    never touches the base store.  Contract as
    {!Backing_sample.estimate_count} (exact 0 on an empty population,
    [Failure] when the sample is exhausted but tuples remain live). *)
val estimate_count : t -> Relational.Predicate.t -> Stats.Estimate.t

(** The maintained backing sample as a relation. *)
val sample : t -> Relational.Relation.t

val bernoulli_p : t -> float option
val bernoulli_size : t -> int option

(** Kept Bernoulli tuples (id order) as a relation, when enabled. *)
val bernoulli_sample : t -> Relational.Relation.t option

val window_size : t -> int option

(** One draw per chain from the last [window] inserts, when enabled. *)
val window_sample : t -> Relational.Tuple.t array option

(** The live population materialized as a relation in id order, with
    its columnar view forced — memoized per epoch, so exact/query paths
    over an unchanged stream reuse one materialization.  This is the
    path that {e does} scan the base data; estimation never calls
    it. *)
val snapshot : t -> Relational.Relation.t
