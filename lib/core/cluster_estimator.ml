module Paged = Relational.Paged
module Estimate = Stats.Estimate

type result = {
  estimate : Stats.Estimate.t;
  pages_read : int;
  tuples_read : int;
}

let estimate ?(metrics = Obs.Metrics.noop) rng ~m paged ~measure =
  let big_m = Paged.page_count paged in
  if m < 1 || m > big_m then
    invalid_arg
      (Printf.sprintf "Cluster_estimator: m=%d out of range [1, %d]" m big_m);
  Obs.Metrics.with_span metrics (Printf.sprintf "cluster m=%d" m) @@ fun () ->
  let sample = Sampling.Page_sampling.sample ~metrics rng ~m paged in
  let values = Array.map measure sample.Sampling.Page_sampling.pages in
  let summary = Stats.Summary.of_array values in
  let big_mf = float_of_int big_m and mf = float_of_int m in
  let point = big_mf /. mf *. Stats.Summary.total summary in
  let variance =
    if m < 2 then Float.nan
    else
      big_mf *. big_mf
      *. (1. -. (mf /. big_mf))
      *. Stats.Summary.variance summary /. mf
  in
  let tuples_read = Sampling.Page_sampling.tuple_count sample in
  {
    estimate =
      Estimate.make ~variance ~label:"cluster" ~status:Estimate.Unbiased
        ~sample_size:tuples_read point;
    pages_read = m;
    tuples_read;
  }

let count ?metrics rng ~m paged predicate =
  let schema = Relational.Relation.schema (Paged.relation paged) in
  let keep = Relational.Predicate.compile schema predicate in
  let measure page =
    Array.fold_left (fun acc t -> if keep t then acc +. 1. else acc) 0. page
  in
  estimate ?metrics rng ~m paged ~measure
