module Paged = Relational.Paged

type result = {
  estimate : Stats.Estimate.t;
  pages_sampled : int;
  tuples_read : int;
}

(* Front-end over the cluster-expansion strategy of {!Estplan}: the
   engine draws the pages, expands by M/m and attaches the SRSWOR
   variance over per-page measures. *)

let estimate ?(metrics = Obs.Metrics.noop) rng ~m paged ~measure =
  let big_m = Paged.page_count paged in
  if m < 1 || m > big_m then
    invalid_arg (Printf.sprintf "Cluster_estimator: m=%d out of range [1, %d]" m big_m);
  Obs.Metrics.with_span metrics (Printf.sprintf "cluster m=%d" m) @@ fun () ->
  let estimate, pages_sampled, tuples_read =
    Estplan.run_cluster ~metrics rng paged (Estplan.cluster_plan paged ~m ()) ~measure
  in
  { estimate; pages_sampled; tuples_read }

let count ?metrics rng ~m paged predicate =
  let keep = Relational.Predicate.compile (Paged.schema paged) predicate in
  let measure page =
    Array.fold_left (fun acc t -> if keep t then acc +. 1. else acc) 0. page
  in
  estimate ?metrics rng ~m paged ~measure

(* Goal-based entry: cluster sampling draws whole pages, so the
   resolved tuple fraction becomes a page count — the root-sampling
   strategy at page granularity.  At least 2 pages whenever the file
   has 2, so a variance estimate is always attached. *)
let count_with_goal ?metrics rng ~goal paged predicate =
  let big_m = Paged.page_count paged in
  let fraction = Planner.fraction_of_goal ~population:(Paged.cardinality paged) goal in
  let m =
    Stdlib.max
      (Stdlib.min big_m 2)
      (Stdlib.min big_m (int_of_float (Float.ceil (fraction *. float_of_int big_m))))
  in
  count ?metrics rng ~m paged predicate
