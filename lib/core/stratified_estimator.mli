(** Stratified COUNT estimator for selections.

    Partition the relation by a stratum key (e.g. a region attribute or
    any tuple function), draw a proportionally-allocated SRSWOR inside
    each stratum, estimate per-stratum and add:

    {v
    Ĉ      = Σ_h (N_h/n_h)·c_h                         (unbiased)
    V̂ar(Ĉ) = Σ_h N_h²·(1−n_h/N_h)·p̂_h(1−p̂_h)/(n_h−1)
    v}

    When the predicate rate differs across strata this never does worse
    than plain SRS of the same total size, and it can be dramatically
    better (ablation A1). *)

type result = {
  estimate : Stats.Estimate.t;
  strata : (string * int * int) list;
      (** per stratum: key, population N_h, allocated n_h *)
}

(** [count rng catalog ~relation ~key ~n predicate] — total sample size
    [n], proportional allocation.  Strata with an allocation of 0
    contribute their population estimate 0 (and no variance term);
    single-tuple allocations contribute no variance term either, making
    the variance estimate slightly optimistic in degenerate strata.
    @raise Invalid_argument if [n] is out of range. *)
val count :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  key:(Relational.Tuple.t -> string) ->
  n:int ->
  Relational.Predicate.t ->
  result

(** [count_with_goal rng catalog ~relation ~key ~goal predicate] —
    goal-based entry: the {!Planner.goal} resolves to the total sample
    size over the relation's population ({!Planner.size_of_goal},
    root-sampling strategy), which the proportional allocation then
    splits across strata exactly as {!count} does.
    @raise Invalid_argument as {!Planner.fraction_of_goal}. *)
val count_with_goal :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  key:(Relational.Tuple.t -> string) ->
  goal:Planner.goal ->
  Relational.Predicate.t ->
  result

(** Stratify by an attribute's value (the common case). *)
val count_by_attribute :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  attribute:string ->
  n:int ->
  Relational.Predicate.t ->
  result
