(** Per-group COUNT estimation (GROUP BY from one sample).

    One SRSWOR of the relation estimates every group's cardinality at
    once: with [c_g] sample hits in group [g], [Ĉ_g = (N/n)·c_g] is
    unbiased for each group, with the usual hypergeometric variance.
    Groups that do not appear in the sample are {e absent} from the
    result (a sample cannot enumerate unseen groups — use the
    distinct-value estimators to gauge how many groups were missed).

    Simultaneous confidence: per-group intervals at level
    [1 − (1−level)/k] (Bonferroni over the [k] {e reported} groups)
    hold jointly with probability ≥ [level]. *)

type group = {
  key : Relational.Value.t list;  (** group-by attribute values *)
  estimate : Stats.Estimate.t;
  interval : Stats.Confidence.interval;  (** Bonferroni-adjusted *)
}

type result = {
  groups : group list;  (** sorted by key *)
  level : float;        (** joint confidence level *)
  sample_size : int;
}

(** [estimate rng catalog ~relation ~by ~n ?level ?where ()] — groups by
    the [by] attributes, optionally filtering with [where] first.
    [domains] parallelizes the tally over fixed-size sample blocks;
    per-key counts merge in block order, so results are bit-identical
    for any domain count.
    @raise Invalid_argument if [n] is out of range, [by] is empty or
    [level] outside (0, 1). *)
val estimate :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  by:string list ->
  n:int ->
  ?level:float ->
  ?where:Relational.Predicate.t ->
  unit ->
  result

(** [estimate_with_goal rng catalog ~relation ~by ~goal ()] —
    goal-based entry: the {!Planner.goal} resolves to the shared
    SRSWOR size ({!Planner.size_of_goal}, root-sampling strategy).
    @raise Invalid_argument as {!estimate} and
    {!Planner.fraction_of_goal}. *)
val estimate_with_goal :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  by:string list ->
  goal:Planner.goal ->
  ?level:float ->
  ?where:Relational.Predicate.t ->
  unit ->
  result

(** Exact per-group counts, for evaluation; same ordering as
    {!estimate}. *)
val exact :
  Relational.Catalog.t ->
  relation:string ->
  by:string list ->
  ?where:Relational.Predicate.t ->
  unit ->
  (Relational.Value.t list * int) list

(** [estimate_sum rng catalog ~relation ~by ~attribute ~n ...] — per-group
    SUM([attribute]) from one SRSWOR: each group's total is an expansion
    estimate [(N/n)·Σ_{sampled∈g} y] (unbiased) with the exact SRSWOR
    variance over per-tuple contributions ([y] for the group's tuples,
    0 elsewhere); intervals are Bonferroni-adjusted as in {!estimate}.
    [Null] values contribute 0.  [domains] as in {!estimate} (blocked
    tally, domain-count independent). *)
val estimate_sum :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  by:string list ->
  attribute:string ->
  n:int ->
  ?level:float ->
  ?where:Relational.Predicate.t ->
  unit ->
  result

(** Exact per-group sums, same conventions as {!exact}. *)
val exact_sum :
  Relational.Catalog.t ->
  relation:string ->
  by:string list ->
  attribute:string ->
  ?where:Relational.Predicate.t ->
  unit ->
  (Relational.Value.t list * float) list
