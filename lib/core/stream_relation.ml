module Relation = Relational.Relation
module Metrics = Obs.Metrics

type id = Backing_sample.id

type counts = { first_id : id; inserted : int; deleted : int }

type t = {
  schema : Relational.Schema.t;
  rng : Sampling.Rng.t;
  (* The live population, exactly: id -> tuple.  Ids are issued by the
     backing sample (sequential from 0), so liveness checks here are
     authoritative where the sample alone could only guess. *)
  store : (id, Relational.Tuple.t) Hashtbl.t;
  backing : Backing_sample.t;
  bernoulli : Relational.Tuple.t Sampling.Bernoulli.maintained option;
  window : Relational.Tuple.t Sampling.Window.t option;
  mutable epoch : int;
  (* Epoch-memoized materialization for the exact/query paths: rebuilt
     at most once per epoch, columnar view forced. *)
  mutable snap : (int * Relation.t) option;
  metrics : Metrics.t;
}

let create ?(capacity = 1024) ?bernoulli ?window ?(window_chains = 1)
    ?(metrics = Metrics.noop) ~seed ~schema () =
  let rng = Sampling.Rng.create ~seed () in
  {
    schema;
    rng;
    store = Hashtbl.create 1024;
    backing = Backing_sample.create ~metrics rng ~capacity ~schema;
    bernoulli =
      Option.map (fun p -> Sampling.Bernoulli.maintained ~metrics rng ~p ()) bernoulli;
    window =
      Option.map
        (fun w -> Sampling.Window.create ~k:window_chains ~metrics rng ~window:w ())
        window;
    epoch = 0;
    snap = None;
    metrics;
  }

let schema t = t.schema

let epoch t = t.epoch

let population t = Hashtbl.length t.store

let sample_size t = Backing_sample.sample_size t.backing

let capacity t = Backing_sample.capacity t.backing

let fill_ratio t = Backing_sample.fill_ratio t.backing

let needs_rescan ?min_ratio t = Backing_sample.needs_rescan ?min_ratio t.backing

let mem t id = Hashtbl.mem t.store id

(* Every mutation invalidates the memoized materialization; sample
   maintenance already happened inside the callee. *)
let bump t =
  t.epoch <- t.epoch + 1;
  t.snap <- None

let insert_one t tuple =
  let id = Backing_sample.insert t.backing tuple in
  Hashtbl.replace t.store id tuple;
  Option.iter (fun m -> Sampling.Bernoulli.insert m ~id tuple) t.bernoulli;
  Option.iter (fun w -> Sampling.Window.add w tuple) t.window;
  id

let delete_one t id =
  if not (Hashtbl.mem t.store id) then false
  else begin
    Hashtbl.remove t.store id;
    ignore (Backing_sample.delete t.backing id);
    Option.iter (fun m -> Sampling.Bernoulli.delete m ~id) t.bernoulli;
    true
  end

let insert t tuple =
  let id = insert_one t tuple in
  bump t;
  id

let delete t id =
  let deleted = delete_one t id in
  if deleted then bump t;
  deleted

let ingest t ~inserts ~deletes =
  let first_id = ref (-1) in
  Array.iter
    (fun tuple ->
      let id = insert_one t tuple in
      if !first_id < 0 then first_id := id)
    inserts;
  let deleted = Array.fold_left (fun n id -> if delete_one t id then n + 1 else n) 0 deletes in
  if Array.length inserts > 0 || deleted > 0 then bump t;
  { first_id = !first_id; inserted = Array.length inserts; deleted }

(* Live pairs in id (= insertion) order: the deterministic enumeration
   every rebuild and materialization shares. *)
let live_pairs t =
  let pairs = Hashtbl.fold (fun id tuple acc -> (id, tuple) :: acc) t.store [] in
  let pairs = List.sort (fun (a, _) (b, _) -> compare a b) pairs in
  Array.of_list pairs

let rescan t =
  Backing_sample.rescan t.backing (live_pairs t);
  bump t

let estimate_count t predicate = Backing_sample.estimate_count t.backing predicate

let sample t = Backing_sample.sample t.backing

let bernoulli_p t = Option.map Sampling.Bernoulli.prob t.bernoulli

let bernoulli_size t = Option.map Sampling.Bernoulli.size t.bernoulli

let bernoulli_sample t =
  Option.map
    (fun m ->
      Relation.of_array t.schema (Array.map snd (Sampling.Bernoulli.contents m)))
    t.bernoulli

let window_size t = Option.map Sampling.Window.window t.window

let window_sample t = Option.map Sampling.Window.contents t.window

let snapshot t =
  match t.snap with
  | Some (epoch, relation) when epoch = t.epoch -> relation
  | _ ->
    let pairs = live_pairs t in
    Metrics.add_tuples t.metrics (Array.length pairs);
    let relation = Relation.of_array t.schema (Array.map snd pairs) in
    Relation.warm_view relation;
    t.snap <- Some (t.epoch, relation);
    relation
