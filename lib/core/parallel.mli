(** Multicore replicate engine.

    A small [Domain]-based fork/join layer for the replicated
    estimators: chunked [map]/[init] over OCaml 5 domains with a
    graceful serial fallback when [domains <= 1] (or when the input is
    too small to be worth splitting).

    {2 Reproducibility contract}

    {!replicate_init} derives one child generator per replicate from
    the caller's {!Sampling.Rng.t} via [Rng.split], {e serially and in
    replicate order}, before any domain is spawned.  Replicate [i]
    therefore sees the same stream — and the parent generator advances
    by the same [g] draws — whatever the domain count.  Same seed +
    same [groups] gives bit-identical points and variances on
    [domains:1] and [domains:N]. *)

(** Number of domains worth using on this machine
    ([Domain.recommended_domain_count]).  Always at least 1. *)
val auto : unit -> int

(** Resolve an optional [?domains] argument: [None] and values [<= 1]
    mean serial; [0] or negative are clamped to 1.  Exposed so CLI /
    bench layers can report the effective parallelism. *)
val resolve : ?domains:int -> unit -> int

(** [map ~domains f xs] — [Array.map f xs], computed in [domains]
    contiguous chunks on separate domains.  [f] must be safe to run
    concurrently with itself on distinct elements.  Exceptions raised
    by [f] are re-raised in the caller.  Serial when [domains <= 1] or
    [Array.length xs <= 1]. *)
val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** [init ~domains n f] — [Array.init n f] with the same chunking and
    the same caveats as {!map}.  [f] receives indices in [0, n). *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array

(** [chunked_init ~domains n f] — like {!init} but [f start len]
    produces one whole chunk as an array ([start] is the chunk's first
    index, [len] its length); chunks are concatenated in index order.
    Lets workers reuse per-chunk scratch buffers. *)
val chunked_init : ?domains:int -> int -> (int -> int -> 'a array) -> 'a array

(** [replicate_init ~domains rng n f] — [f child i] for each replicate
    [i] in [0, n), where [child] is the [i]-th [Rng.split] of [rng]
    (split serially before spawning; see the reproducibility
    contract).  The workhorse behind every replicated estimator. *)
val replicate_init :
  ?domains:int -> Sampling.Rng.t -> int -> (Sampling.Rng.t -> int -> 'a) -> 'a array
