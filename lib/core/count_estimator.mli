(** COUNT estimators for relational algebra expressions — the paper's
    core contribution.

    The generic {!estimate} covers any expression via the scale-up
    rule; the specialized entry points ({!selection}, {!equijoin},
    {!intersection}, {!union}, {!difference}) attach analytic variance
    estimates where the theory provides them. *)

(** Statistical status of the scale-up estimator on an expression:
    [Unbiased] when the expression is built from selection, bag
    projection, product and joins only (each base-relation occurrence
    sampled independently — self-joins included); [Consistent] when a
    duplicate-eliminating operator ([Distinct]/[Union]/[Inter]/[Diff])
    appears anywhere. *)
val classify : Relational.Expr.t -> Stats.Estimate.status

(** [scale_up rng catalog plan] draws the plan once, evaluates the
    rewritten expression over the samples, and scales the count. *)
val scale_up :
  ?metrics:Obs.Metrics.t ->
  ?columnar:bool ->
  Sampling.Rng.t -> Relational.Catalog.t -> Sampling_plan.t -> Stats.Estimate.t

(** [estimate rng catalog ~fraction e] — scale-up estimate with an
    SRSWOR of [fraction] at every leaf occurrence.

    [groups] (default 1): with [g > 1], draw [g] independent estimates,
    return their mean with the replicate variance [s²/g] attached —
    the generic variance estimator that works for any expression.

    [domains] (default 1 = serial): evaluate the replicates on that
    many OCaml domains via {!Parallel.replicate_init}.  Each replicate
    gets its own [Rng.split] stream, so the result is bit-identical for
    any domain count; pass [Parallel.auto ()] to use all cores.

    [metrics] (default no-op) records tuples scanned, sample indices,
    RNG draws, probe hits/misses and per-stage timers; replicated runs
    merge per-replicate sinks deterministically, so counter totals are
    identical for any [domains]. *)
val estimate :
  ?groups:int ->
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  ?columnar:bool ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  fraction:float ->
  Relational.Expr.t ->
  Stats.Estimate.t

(** [estimate_with_goal rng catalog ~goal e] — the goal-based entry:
    state a sampling budget or a target CI width
    ({!Planner.goal}) instead of a hard-coded placement, and let the
    cost-based planner ({!Planner.choose_sampling}) pick where the
    sampling operator goes.  Returns the estimate and, when the
    optimizer ran, the full {!Planner.choice} (candidates, rationale,
    chosen plan) for explain surfaces.

    With [optimize:false] (default [true]) — or when the
    [RAESTAT_NO_OPTIMIZE] kill switch disables the optimizer — the
    historical root-sampling strategy runs instead and the choice is
    [None]; that path is byte-identical to {!estimate} at
    [Planner.fraction_of_goal ~population goal] where [population]
    sums the leaf cardinalities.
    @raise Invalid_argument as {!estimate} and
    {!Planner.fraction_of_goal}. *)
val estimate_with_goal :
  ?groups:int ->
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  ?columnar:bool ->
  ?optimize:bool ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  goal:Planner.goal ->
  Relational.Expr.t ->
  Stats.Estimate.t * Planner.choice option

(** {1 Selection} *)

(** [selection rng catalog ~relation ~n predicate] — unbiased estimate
    of [COUNT (σ predicate relation)] from an SRSWOR of size [n], with
    the exact finite-population (hypergeometric) variance estimate
    [N²·(1 − n/N)·p̂(1−p̂)/(n−1)].
    @raise Invalid_argument if [n] is out of range. *)
val selection :
  ?metrics:Obs.Metrics.t ->
  ?columnar:bool ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  n:int ->
  Relational.Predicate.t ->
  Stats.Estimate.t

(** The same estimate computed from an already-drawn sample: [hits]
    matches among [n] sampled tuples out of a population of [big_n].
    Used by the sequential estimator. *)
val selection_of_counts : big_n:int -> n:int -> hits:int -> Stats.Estimate.t

(** {1 Equi-join} *)

(** [equijoin rng catalog ~left ~right ~on ~fraction] — unbiased
    estimate of the equi-join size between two base relations, with
    replicate-group variance ([groups], default 8; groups each use
    [fraction/groups] so the total sampled volume matches a single
    [fraction] draw).  [domains] parallelizes the replicates as in
    {!estimate}, with the same bit-reproducibility guarantee. *)
val equijoin :
  ?groups:int ->
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  ?columnar:bool ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  left:string ->
  right:string ->
  on:(string * string) list ->
  fraction:float ->
  Stats.Estimate.t

(** [equijoin_indexed rng catalog ~left ~right ~on ~n] — join-size
    estimate using an index on the right join attribute: SRSWOR [n]
    left tuples, read each tuple's {e exact} join degree from the
    index, and expand: [Ĵ = (N₁/n)·Σ degree].  Unbiased, with the
    selection-style exact finite-population variance over per-tuple
    degrees — far tighter than the bilinear two-sided estimator when
    degrees are skewed (ablation A11).  The right relation is scanned
    once to build the index; pass a prebuilt [index] to amortize it.
    @raise Invalid_argument if [n] is out of range or [on] does not
    name exactly one attribute pair. *)
val equijoin_indexed :
  ?index:Relational.Index.t ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  left:string ->
  right:string ->
  on:string * string ->
  n:int ->
  Stats.Estimate.t

(** {1 Set operations}

    The operands must be duplicate-free relations over compatible
    schemas (checked; [Invalid_argument] otherwise).  All three
    estimators are unbiased with analytic plug-in variances derived
    from the SRSWOR pair-inclusion probabilities.  Unbiasedness means
    individual estimates may fall outside [0, N]; clamp at the caller
    if a feasible value is required. *)

val intersection :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  left:string ->
  right:string ->
  fraction:float ->
  Stats.Estimate.t

val union :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  left:string ->
  right:string ->
  fraction:float ->
  Stats.Estimate.t

val difference :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  left:string ->
  right:string ->
  fraction:float ->
  Stats.Estimate.t
