let check_unit name x =
  if x <= 0. || x >= 1. then invalid_arg (Printf.sprintf "Sample_size: %s outside (0, 1)" name)

let fpc_adjust ~big_n n0 =
  (* An empty universe needs no sample at all: clamping into [1, N]
     would demand one tuple from zero, so the empty case short-circuits
     to 0 and callers treat it as a census of nothing. *)
  if big_n = 0 then 0
  else
    let big_nf = float_of_int big_n in
    let n = n0 *. big_nf /. (n0 +. big_nf) in
    max 1 (min big_n (int_of_float (Float.ceil n)))

let selection ~big_n ~level ~target ~p =
  if big_n < 0 then invalid_arg "Sample_size.selection: negative population";
  check_unit "level" level;
  check_unit "target" target;
  check_unit "p" p;
  let z = Stats.Confidence.z_value ~level in
  let n0 = z *. z *. (1. -. p) /. (target *. target *. p) in
  fpc_adjust ~big_n n0

let selection_absolute ~big_n ~level ~half_width ~p =
  if big_n < 0 then invalid_arg "Sample_size.selection_absolute: negative population";
  check_unit "level" level;
  check_unit "p" p;
  if half_width <= 0. then invalid_arg "Sample_size.selection_absolute: half_width <= 0";
  let z = Stats.Confidence.z_value ~level in
  let big_nf = float_of_int big_n in
  let n0 = z *. z *. big_nf *. big_nf *. p *. (1. -. p) /. (half_width *. half_width) in
  fpc_adjust ~big_n n0

let equijoin ~level ~target p1 p2 =
  check_unit "level" level;
  check_unit "target" target;
  let j = Join_variance.join_size p1 p2 in
  if j <= 0. then invalid_arg "Sample_size.equijoin: empty join";
  let z = Stats.Confidence.z_value ~level in
  let ok q =
    let variance = Join_variance.oracle_variance ~q1:q ~q2:q p1 p2 in
    z *. Float.sqrt variance <= target *. j
  in
  if not (ok 1.) then invalid_arg "Sample_size.equijoin: unreachable target";
  (* Bisect for the smallest feasible rate; variance decreases in q. *)
  let lo = ref 1e-6 and hi = ref 1. in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if ok mid then hi := mid else lo := mid
  done;
  let q = !hi in
  (q, (q *. Join_variance.moment1 p1, q *. Join_variance.moment1 p2))

let plan_cost catalog ~fraction expr =
  let plan = Sampling_plan.make catalog ~fraction expr in
  Sampling_plan.expected_sample_size plan
