module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Schema = Relational.Schema

type join_spec = {
  left_attr : string;
  right_attr : string;
}

type input = {
  name : string;
  filter : Relational.Predicate.t option;
}

type plan = {
  expr : Expr.t;
  order : string list;
  estimated_cost : float;
  intermediates : Expr.t list;
  estimates : (string * float) list;
}

(* Resolved join edge: input indices plus their attributes. *)
type edge = { a_input : int; a_attr : string; b_input : int; b_attr : string }

let input_expr input =
  match input.filter with
  | Some p -> Expr.Select (p, Expr.Base input.name)
  | None -> Expr.Base input.name

let resolve_inputs catalog inputs joins =
  let n = List.length inputs in
  if n < 2 then invalid_arg "Planner: need at least two inputs";
  if n > 8 then invalid_arg "Planner: more than 8 inputs (left-deep enumeration)";
  let names = List.map (fun i -> i.name) inputs in
  if List.length (List.sort_uniq String.compare names) <> n then
    invalid_arg "Planner: duplicate input names";
  let schemas =
    Array.of_list
      (List.map (fun i -> Relational.Relation.schema (Catalog.find catalog i.name)) inputs)
  in
  let owner attr =
    let owners = ref [] in
    Array.iteri (fun k schema -> if Schema.mem schema attr then owners := k :: !owners) schemas;
    match !owners with
    | [ k ] -> k
    | [] -> invalid_arg (Printf.sprintf "Planner: attribute %S matches no input" attr)
    | _ -> invalid_arg (Printf.sprintf "Planner: attribute %S is ambiguous across inputs" attr)
  in
  List.map
    (fun spec ->
      let a_input = owner spec.left_attr and b_input = owner spec.right_attr in
      if a_input = b_input then
        invalid_arg
          (Printf.sprintf "Planner: join %s = %s stays within one input" spec.left_attr
             spec.right_attr);
      { a_input; a_attr = spec.left_attr; b_input; b_attr = spec.right_attr })
    joins

(* Join pairs between the set [joined] and the new input [next]:
   oriented (joined-side attribute, next-side attribute). *)
let pairs_to edges ~joined ~next =
  List.filter_map
    (fun e ->
      if e.a_input = next && List.mem e.b_input joined then Some (e.b_attr, e.a_attr)
      else if e.b_input = next && List.mem e.a_input joined then Some (e.a_attr, e.b_attr)
      else None)
    edges

let set_key indices names =
  List.sort Int.compare indices
  |> List.map (fun i -> names.(i))
  |> String.concat "+"

let plan rng catalog ~fraction ~inputs ~joins =
  let edges = resolve_inputs catalog inputs joins in
  let inputs_array = Array.of_list inputs in
  let names = Array.map (fun i -> i.name) inputs_array in
  let n = Array.length inputs_array in
  (* Cardinality estimate per joined input-set, memoized: join size is
     order-independent, so one sampling per set suffices. *)
  let memo = Hashtbl.create 32 in
  let estimate_set indices expr =
    let key = set_key indices names in
    match Hashtbl.find_opt memo key with
    | Some size -> size
    | None ->
      (* Cost each candidate intermediate through the same estimation
         IR the public estimators compile to. *)
      let est = Estplan.run rng catalog (Estplan.compile catalog ~fraction expr) in
      let size = Float.max 0. est.Stats.Estimate.point in
      Hashtbl.add memo key size;
      size
  in
  let build_join joined_expr joined next =
    let pairs = pairs_to edges ~joined ~next in
    (pairs, Expr.Equijoin (pairs, joined_expr, input_expr inputs_array.(next)))
  in
  (* DFS over connected left-deep orders. *)
  let best = ref None in
  let rec explore order joined expr cost intermediates =
    if List.length joined = n then begin
      match !best with
      | Some (best_cost, _, _, _) when best_cost <= cost -> ()
      | _ -> best := Some (cost, List.rev order, expr, List.rev intermediates)
    end
    else
      for next = 0 to n - 1 do
        if not (List.mem next joined) then begin
          let pairs, joined_expr = build_join expr joined next in
          if pairs <> [] then begin
            let joined' = next :: joined in
            let is_final = List.length joined' = n in
            (* Strict intermediates only: the final result is common to
               all orders and does not discriminate. *)
            let cost' =
              if is_final then cost else cost +. estimate_set joined' joined_expr
            in
            (match !best with
            | Some (best_cost, _, _, _) when best_cost <= cost' && not is_final -> ()
            | _ ->
              explore (next :: order) joined' joined_expr cost'
                (if is_final then intermediates else joined_expr :: intermediates))
          end
        end
      done
  in
  for first = 0 to n - 1 do
    explore [ first ] [ first ] (input_expr inputs_array.(first)) 0. []
  done;
  match !best with
  | None -> invalid_arg "Planner: join graph is disconnected (no cross-product-free order)"
  | Some (cost, order, expr, intermediates) ->
    {
      expr;
      order = List.map (fun i -> names.(i)) order;
      estimated_cost = cost;
      intermediates;
      estimates =
        Hashtbl.fold (fun key size acc -> (key, size) :: acc) memo []
        |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2);
    }

let exact_cost catalog plan =
  List.fold_left
    (fun acc e -> acc +. float_of_int (Relational.Eval.count catalog e))
    0. plan.intermediates
