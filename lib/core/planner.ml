module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Schema = Relational.Schema

type join_spec = {
  left_attr : string;
  right_attr : string;
}

type input = {
  name : string;
  filter : Relational.Predicate.t option;
}

type plan = {
  expr : Expr.t;
  order : string list;
  estimated_cost : float;
  intermediates : Expr.t list;
  estimates : (string * float) list;
}

(* Resolved join edge: input indices plus their attributes. *)
type edge = { a_input : int; a_attr : string; b_input : int; b_attr : string }

let input_expr input =
  match input.filter with
  | Some p -> Expr.Select (p, Expr.Base input.name)
  | None -> Expr.Base input.name

let resolve_inputs catalog inputs joins =
  let n = List.length inputs in
  if n < 2 then invalid_arg "Planner: need at least two inputs";
  if n > 8 then invalid_arg "Planner: more than 8 inputs (left-deep enumeration)";
  let names = List.map (fun i -> i.name) inputs in
  if List.length (List.sort_uniq String.compare names) <> n then
    invalid_arg "Planner: duplicate input names";
  let schemas =
    Array.of_list
      (List.map (fun i -> Relational.Relation.schema (Catalog.find catalog i.name)) inputs)
  in
  let owner attr =
    let owners = ref [] in
    Array.iteri (fun k schema -> if Schema.mem schema attr then owners := k :: !owners) schemas;
    match !owners with
    | [ k ] -> k
    | [] -> invalid_arg (Printf.sprintf "Planner: attribute %S matches no input" attr)
    | _ -> invalid_arg (Printf.sprintf "Planner: attribute %S is ambiguous across inputs" attr)
  in
  List.map
    (fun spec ->
      let a_input = owner spec.left_attr and b_input = owner spec.right_attr in
      if a_input = b_input then
        invalid_arg
          (Printf.sprintf "Planner: join %s = %s stays within one input" spec.left_attr
             spec.right_attr);
      { a_input; a_attr = spec.left_attr; b_input; b_attr = spec.right_attr })
    joins

(* Join pairs between the set [joined] and the new input [next]:
   oriented (joined-side attribute, next-side attribute). *)
let pairs_to edges ~joined ~next =
  List.filter_map
    (fun e ->
      if e.a_input = next && List.mem e.b_input joined then Some (e.b_attr, e.a_attr)
      else if e.b_input = next && List.mem e.a_input joined then Some (e.a_attr, e.b_attr)
      else None)
    edges

let set_key indices names =
  List.sort Int.compare indices
  |> List.map (fun i -> names.(i))
  |> String.concat "+"

let plan rng catalog ~fraction ~inputs ~joins =
  let edges = resolve_inputs catalog inputs joins in
  let inputs_array = Array.of_list inputs in
  let names = Array.map (fun i -> i.name) inputs_array in
  let n = Array.length inputs_array in
  (* Cardinality estimate per joined input-set, memoized: join size is
     order-independent, so one sampling per set suffices. *)
  let memo = Hashtbl.create 32 in
  let estimate_set indices expr =
    let key = set_key indices names in
    match Hashtbl.find_opt memo key with
    | Some size -> size
    | None ->
      (* Cost each candidate intermediate through the same estimation
         IR the public estimators compile to. *)
      let est = Estplan.run rng catalog (Estplan.compile catalog ~fraction expr) in
      let size = Float.max 0. est.Stats.Estimate.point in
      Hashtbl.add memo key size;
      size
  in
  let build_join joined_expr joined next =
    let pairs = pairs_to edges ~joined ~next in
    (pairs, Expr.Equijoin (pairs, joined_expr, input_expr inputs_array.(next)))
  in
  (* DFS over connected left-deep orders. *)
  let best = ref None in
  let rec explore order joined expr cost intermediates =
    if List.length joined = n then begin
      match !best with
      | Some (best_cost, _, _, _) when best_cost <= cost -> ()
      | _ -> best := Some (cost, List.rev order, expr, List.rev intermediates)
    end
    else
      for next = 0 to n - 1 do
        if not (List.mem next joined) then begin
          let pairs, joined_expr = build_join expr joined next in
          if pairs <> [] then begin
            let joined' = next :: joined in
            let is_final = List.length joined' = n in
            (* Strict intermediates only: the final result is common to
               all orders and does not discriminate. *)
            let cost' =
              if is_final then cost else cost +. estimate_set joined' joined_expr
            in
            (match !best with
            | Some (best_cost, _, _, _) when best_cost <= cost' && not is_final -> ()
            | _ ->
              explore (next :: order) joined' joined_expr cost'
                (if is_final then intermediates else joined_expr :: intermediates))
          end
        end
      done
  in
  for first = 0 to n - 1 do
    explore [ first ] [ first ] (input_expr inputs_array.(first)) 0. []
  done;
  match !best with
  | None -> invalid_arg "Planner: join graph is disconnected (no cross-product-free order)"
  | Some (cost, order, expr, intermediates) ->
    {
      expr;
      order = List.map (fun i -> names.(i)) order;
      estimated_cost = cost;
      intermediates;
      estimates =
        Hashtbl.fold (fun key size acc -> (key, size) :: acc) memo []
        |> List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2);
    }

let exact_cost catalog plan =
  List.fold_left
    (fun acc e -> acc +. float_of_int (Relational.Eval.count catalog e))
    0. plan.intermediates

(* ------------------------------------------------------------------ *)
(* Sampling-placement optimization                                     *)

module Pushdown = Relational.Optimizer.Sampling_pushdown
module Predicate = Relational.Predicate
module Relation = Relational.Relation

let optimizer_version = 1

(* Kill switch, read once at startup (same idiom as RAESTAT_NO_COLUMNAR
   in Relational.Column): RAESTAT_NO_OPTIMIZE=1 forces every goal-based
   entry point back to the historical root-sampling strategy. *)
let optimize_enabled =
  let on =
    match Sys.getenv_opt "RAESTAT_NO_OPTIMIZE" with
    | Some ("1" | "true" | "yes" | "on") -> false
    | Some _ | None -> true
  in
  fun () -> on

type goal =
  | Budget_fraction of float
  | Budget_tuples of int
  | Ci_width of { width : float; level : float }

let z_of_level level = (Stats.Confidence.normal ~level ~point:0. ~stderr:1.).Stats.Confidence.hi

let fraction_of_goal ~population goal =
  match goal with
  | Budget_fraction f ->
    if not (f > 0. && f <= 1.) then
      invalid_arg "Planner.fraction_of_goal: fraction must be in (0, 1]";
    f
  | Budget_tuples b ->
    if b <= 0 then invalid_arg "Planner.fraction_of_goal: budget must be positive";
    if population <= 0 then 1.
    else Float.min 1. (float_of_int b /. float_of_int population)
  | Ci_width { width; level } ->
    if not (width > 0.) then invalid_arg "Planner.fraction_of_goal: width must be positive";
    if population <= 0 then 1.
    else begin
      (* Conservative closed form from the worst-case binomial variance
         p(1−p) ≤ 1/4: the CI half-width z·N·√(0.25(1−n/N)/(n−1)) stays
         under width/2 whenever n ≥ (1 + c)/(1 + c/N) with
         c = z²N²/width² — solve the quadratic, no data pass needed. *)
      let big_n = float_of_int population in
      let z = z_of_level level in
      let c = z *. z *. big_n *. big_n /. (width *. width) in
      let n = Float.ceil ((1. +. c) /. (1. +. (c /. big_n))) in
      let n = Float.max 2. (Float.min big_n n) in
      Float.min 1. (n /. big_n)
    end

let size_of_goal ~population goal =
  if population <= 0 then 0
  else
    let fraction = fraction_of_goal ~population goal in
    Stdlib.max 1
      (Stdlib.min population (Sampling.Srs.size_of_fraction ~fraction population))

type candidate = {
  label : string;
  derivation : Pushdown.derivation option;  (* None for root-sampling *)
  predicted_variance : float;
  predicted_cost : float;
  score : float;
  drawn_tuples : float;
  exact_tuples : float;
}

type choice = {
  winner : candidate;
  chosen : Estplan.t;
  candidates : candidate list;
  rationale : string;
  analytic : bool;
  budget : int;
}

(* --- per-leaf second-moment statistics ---------------------------- *)

(* Statistics driving the analytic variance model: J approximates (or
   bounds) the true count, ss.(i) the sum of squared per-tuple result
   contributions of leaf occurrence i.  [analytic] marks the shapes
   computed exactly by one histogram pass per leaf (selection chains
   over a base, and a two-leaf equijoin/product of such chains); the
   fallback uses the pessimistic cardinality cap with the
   uniform-contribution approximation SS_i = J²/N_i. *)
type stats = {
  j : float;
  ss : float array;
  analytic : bool;
}

(* [chain e] — Some (predicates, base) when [e] is a selection chain
   over a base relation. *)
let rec chain = function
  | Expr.Base name -> Some ([], name)
  | Expr.Select (p, e) ->
    Option.map (fun (ps, name) -> (p :: ps, name)) (chain e)
  | _ -> None

let filtered catalog (preds, name) =
  List.fold_left (fun r p -> Relation.filter_pred p r) (Catalog.find catalog name) preds

(* Joint histogram of a relation on a list of attributes. *)
let histogram relation attrs =
  let columns = List.map (Relation.column relation) attrs in
  let table = Hashtbl.create 256 in
  for i = 0 to Relation.cardinality relation - 1 do
    let key = List.map (fun column -> column.(i)) columns in
    Hashtbl.replace table key (1 + Option.value (Hashtbl.find_opt table key) ~default:0)
  done;
  table

let rec strip_projects = function
  | Expr.Project (_, e) -> strip_projects e
  | e -> e

let leaf_populations catalog expr =
  List.map
    (fun name -> float_of_int (Relation.cardinality (Catalog.find catalog name)))
    (Expr.leaves expr)

let compute_stats catalog expr =
  let populations = Array.of_list (leaf_populations catalog expr) in
  let fallback () =
    let cap = Baselines.Pessimistic.bound catalog expr in
    {
      j = cap;
      ss = Array.map (fun n -> cap *. cap /. Float.max 1. n) populations;
      analytic = false;
    }
  in
  match strip_projects expr with
  | e when chain e <> None ->
    let j = float_of_int (Relation.cardinality (filtered catalog (Option.get (chain e)))) in
    { j; ss = [| j |]; analytic = true }
  | Expr.Product (l, r) -> (
    match (chain (strip_projects l), chain (strip_projects r)) with
    | Some cl, Some cr ->
      let m = float_of_int (Relation.cardinality (filtered catalog cl))
      and n = float_of_int (Relation.cardinality (filtered catalog cr)) in
      { j = m *. n; ss = [| m *. n *. n; n *. m *. m |]; analytic = true }
    | _ -> fallback ())
  | Expr.Equijoin (pairs, l, r) -> (
    match (chain (strip_projects l), chain (strip_projects r)) with
    | Some cl, Some cr when pairs <> [] ->
      (* One filtered pass per side: J = Σ_v m_v·n_v, and the squared
         contributions SS_left = Σ_v m_v·n_v², SS_right = Σ_v n_v·m_v²
         (a left tuple with join value v appears in n_v result tuples). *)
      let left = filtered catalog cl and right = filtered catalog cr in
      let hl = histogram left (List.map fst pairs)
      and hr = histogram right (List.map snd pairs) in
      let j = ref 0. and ss_l = ref 0. and ss_r = ref 0. in
      Hashtbl.iter
        (fun key m ->
          match Hashtbl.find_opt hr key with
          | Some n ->
            let m = float_of_int m and n = float_of_int n in
            j := !j +. (m *. n);
            ss_l := !ss_l +. (m *. n *. n);
            ss_r := !ss_r +. (n *. m *. m)
          | None -> ())
        hl;
      { j = !j; ss = [| !ss_l; !ss_r |]; analytic = true }
    | _ -> fallback ())
  | _ -> fallback ()

(* --- candidate enumeration and scoring ---------------------------- *)

(* GUS variance model at sampling rates q_i (Bernoulli approximation,
   exact for independent per-leaf designs; THEORY.md §22):
   Var = J·(Π 1/q_i − 1) + Σ_i (SS_i − J)·(1/q_i − 1). *)
let model_variance stats rates =
  let product = Array.fold_left (fun acc q -> acc /. q) 1. rates in
  let cross = ref (stats.j *. (product -. 1.)) in
  Array.iteri
    (fun i q ->
      if q < 1. then
        cross := !cross +. ((stats.ss.(i) -. stats.j) *. ((1. /. q) -. 1.)))
    rates;
  Float.max 0. !cross

let root_label = "root-sampling"

let choose_sampling ?(metrics = Obs.Metrics.noop) ?(groups = 1) catalog ~fraction expr =
  if not (fraction > 0. && fraction <= 1.) then
    invalid_arg "Planner.choose_sampling: fraction must be in (0, 1]";
  if groups < 1 then invalid_arg "Planner.choose_sampling: groups must be positive";
  let derivations = Pushdown.derivations expr in
  let populations = Array.of_list (leaf_populations catalog expr) in
  let root_sizes =
    Array.map
      (fun n -> Sampling.Srs.size_of_fraction ~fraction (int_of_float n))
      populations
  in
  let budget = Array.fold_left ( + ) 0 root_sizes in
  let stats = lazy (compute_stats catalog expr) in
  let groups_f = float_of_int groups in
  let rates sizes =
    Array.mapi
      (fun i n ->
        if populations.(i) <= 0. then 1. else float_of_int n /. populations.(i))
      sizes
  in
  (* Score = max(variance, 1) × cost: variance of the mean-of-groups
     estimator times total tuples touched across all groups.  The floor
     keeps a zero-variance census candidate priced by its scans instead
     of erasing them. *)
  let scored label derivation sizes =
    let stats = Lazy.force stats in
    let qs = rates sizes in
    let variance = model_variance stats qs /. groups_f in
    (* Sampled-tuple budget counts draws at sampled leaves only; a
       pushdown candidate's census scans of the other leaves are work
       (cost), not budget. *)
    let drawn = ref 0. and exact = ref 0. in
    Array.iteri
      (fun i n ->
        let sampled =
          match derivation with
          | None -> true
          | Some d -> i = d.Pushdown.occurrence
        in
        if sampled then drawn := !drawn +. float_of_int n
        else exact := !exact +. populations.(i))
      sizes;
    let drawn = !drawn and exact = !exact in
    let result_touched =
      stats.j *. Array.fold_left (fun acc q -> acc *. q) 1. qs
    in
    let cost = groups_f *. (drawn +. exact +. result_touched) in
    {
      label;
      derivation;
      predicted_variance = variance;
      predicted_cost = cost;
      score = Float.max variance 1. *. cost;
      drawn_tuples = groups_f *. drawn;
      exact_tuples = groups_f *. exact;
    }
  in
  let candidates =
    if derivations = [] then
      (* Not pushable: the historical strategy is the only sound one. *)
      [
        {
          label = root_label;
          derivation = None;
          predicted_variance = Float.nan;
          predicted_cost = Float.nan;
          score = Float.nan;
          drawn_tuples = groups_f *. float_of_int budget;
          exact_tuples = 0.;
        };
      ]
    else
      scored root_label None root_sizes
      :: List.map
           (fun d ->
             let target = d.Pushdown.occurrence in
             let sizes =
               Array.mapi
                 (fun i population ->
                   let population = int_of_float population in
                   if i = target then min budget population else population)
                 populations
             in
             scored
               (Printf.sprintf "pushdown(%s#%d)" d.Pushdown.relation target)
               (Some d) sizes)
           derivations
  in
  Obs.Metrics.add_plans_considered metrics (List.length candidates);
  let winner =
    List.fold_left
      (fun best c -> if c.score < best.score then c else best)
      (List.hd candidates) (List.tl candidates)
  in
  let chosen =
    match winner.derivation with
    | None -> Estplan.compile ~groups ~label:root_label catalog ~fraction expr
    | Some d ->
      let target = d.Pushdown.occurrence in
      let splan =
        Sampling_plan.make_custom catalog
          ~mode:(fun occurrence _relation population ->
            if occurrence = target then Sampling_plan.Srswor (min budget population)
            else Sampling_plan.Srswor population)
          expr
      in
      Estplan.of_sampling_plan ~groups ~label:winner.label splan
  in
  let rationale =
    if derivations = [] then
      "root-sampling: sampling does not commute with dedup/aggregate \
       semantics in this expression, no pushdown candidates"
    else begin
      let losers = List.filter (fun c -> c.label <> winner.label) candidates in
      let runner_up =
        List.fold_left
          (fun best c ->
            match best with
            | None -> Some c
            | Some b -> if c.score < b.score then Some c else best)
          None losers
      in
      match runner_up with
      | None -> Printf.sprintf "%s is the only candidate" winner.label
      | Some r when r.score <= winner.score ->
        Printf.sprintf
          "%s wins the tie at score %.6g (variance %.6g, cost %.6g): \
           equal-score candidates fall back to the historical strategy"
          winner.label winner.score winner.predicted_variance winner.predicted_cost
      | Some r ->
        Printf.sprintf
          "%s wins: score %.6g (predicted variance %.6g x cost %.6g) vs %.6g \
           for %s at equal sampled-tuple budget %d per group"
          winner.label winner.score winner.predicted_variance
          winner.predicted_cost r.score r.label budget
    end
  in
  {
    winner;
    chosen;
    candidates;
    rationale;
    analytic = (if derivations = [] then false else (Lazy.force stats).analytic);
    budget;
  }

(* --- explain surfaces --------------------------------------------- *)

let number v = if Float.is_nan v then "n/a" else Printf.sprintf "%.6g" v

let stats_source (choice : choice) =
  if choice.analytic then "analytic" else "pessimistic-approx"

let render_choice choice =
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer (Estplan.render choice.chosen);
  Buffer.add_string buffer
    (Printf.sprintf "candidates (optimizer v%d, %s stats, budget %d per group):\n"
       optimizer_version (stats_source choice) choice.budget);
  List.iter
    (fun c ->
      Buffer.add_string buffer
        (Printf.sprintf "%s %s  variance=%s  cost=%s  score=%s\n"
           (if c.label = choice.winner.label then "  *" else "   ")
           c.label (number c.predicted_variance) (number c.predicted_cost)
           (number c.score)))
    choice.candidates;
  (match choice.winner.derivation with
  | None -> ()
  | Some d ->
    Buffer.add_string buffer "pushdown trace:\n";
    List.iter
      (fun step ->
        Buffer.add_string buffer
          (Printf.sprintf "    %s\n" (Pushdown.step_to_string step)))
      d.Pushdown.steps);
  Buffer.add_string buffer (Printf.sprintf "winner: %s\n" choice.rationale);
  Buffer.contents buffer

let json_escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' | '\\' ->
        Buffer.add_char buffer '\\';
        Buffer.add_char buffer ch
      | '\000' .. '\031' -> Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buffer ch)
    s;
  Buffer.contents buffer

let json_number v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null"

(* Schema raestat-explain/2: the optimized-explain envelope.  The
   winner's executed plan is embedded verbatim as its own
   raestat-explain/1 object under "plan", so /1 consumers can keep
   reading the tree. *)
let choice_to_json choice =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n  \"schema\": \"raestat-explain/2\",\n";
  Buffer.add_string buffer
    (Printf.sprintf "  \"optimizer_version\": %d,\n  \"strategy\": \"%s\",\n"
       optimizer_version (json_escape choice.winner.label));
  Buffer.add_string buffer
    (Printf.sprintf "  \"stats\": \"%s\",\n  \"budget\": %d,\n" (stats_source choice)
       choice.budget);
  Buffer.add_string buffer
    (Printf.sprintf "  \"rationale\": \"%s\",\n  \"candidates\": [\n"
       (json_escape choice.rationale));
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string buffer ",\n";
      Buffer.add_string buffer
        (Printf.sprintf
           "    {\"label\": \"%s\", \"winner\": %b, \"predicted_variance\": %s, \
            \"predicted_cost\": %s, \"score\": %s, \"drawn_tuples\": %s, \
            \"exact_tuples\": %s, \"derivation\": [%s]}"
           (json_escape c.label)
           (c.label = choice.winner.label)
           (json_number c.predicted_variance)
           (json_number c.predicted_cost) (json_number c.score)
           (json_number c.drawn_tuples) (json_number c.exact_tuples)
           (match c.derivation with
           | None -> ""
           | Some d ->
             String.concat ", "
               (List.map
                  (fun step ->
                    Printf.sprintf "\"%s\"" (json_escape (Pushdown.step_to_string step)))
                  d.Pushdown.steps))))
    choice.candidates;
  Buffer.add_string buffer "\n  ],\n  \"plan\":\n";
  Buffer.add_string buffer (Estplan.to_json choice.chosen);
  Buffer.add_string buffer "\n}";
  Buffer.contents buffer
