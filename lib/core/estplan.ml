module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Relation = Relational.Relation
module Predicate = Relational.Predicate
module Paged = Relational.Paged
module Tuple = Relational.Tuple
module Value = Relational.Value
module Estimate = Stats.Estimate
module Summary = Stats.Summary
module Metrics = Obs.Metrics

type unbiasedness =
  | Unbiased
  | Consistent_only

let status_to_estimate = function
  | Unbiased -> Estimate.Unbiased
  | Consistent_only -> Estimate.Consistent

let unbiasedness_to_string = function
  | Unbiased -> "unbiased"
  | Consistent_only -> "consistent-only"

type mode =
  | Derived
  | Exact of { population : int }
  | Srswor of { n : int; population : int }
  | Bernoulli of { p : float; population : int }
  | Page_srswor of { m : int; pages : int; population : int }
  | Stratified_srswor of { n : int; population : int }
  | Prefix of { batch : int; population : int }
  | Resampled of { n : int; population : int; replicates : int }

type op =
  | Scan of { relation : string; alias : string; occurrence : int }
  | Select of Relational.Predicate.t
  | Project of string list
  | Dedup
  | Product
  | Equijoin of (string * string) list
  | Theta_join of Relational.Predicate.t
  | Union
  | Inter
  | Diff
  | Rename of (string * string) list
  | Aggregate of string list * (Relational.Expr.agg * string) list
  | Group_by of string list

module Moments = struct
  type t = {
    mutable summary : Summary.t;
    mutable analytic : (float * float) option;
  }

  let create () = { summary = Summary.empty; analytic = None }
  let observe m x = m.summary <- Summary.add m.summary x
  let set_analytic m ~mean ~variance = m.analytic <- Some (mean, variance)
  let count m = Summary.count m.summary

  let mean m =
    if Summary.count m.summary > 0 then Summary.mean m.summary
    else
      match m.analytic with
      | Some (mean, _) -> mean
      | None -> invalid_arg "Estplan.Moments.mean: no observations"

  let variance m =
    if Summary.count m.summary >= 2 then Summary.variance m.summary
    else match m.analytic with Some (_, v) -> v | None -> 0.

  let second_moment m =
    let mu = mean m in
    variance m +. (mu *. mu)
end

type node = {
  id : int;
  op : op;
  mode : mode;
  scale : float;
  status : unbiasedness;
  moments : Moments.t;
  children : node list;
}

type set_op =
  | Inter_size
  | Union_size
  | Diff_size

type strategy =
  | Scale_up of { groups : int }
  | Direct_selection
  | Sequential_selection of { target : float; level : float; batch : int }
  | Cluster_expansion
  | Stratified_expansion
  | Bootstrap_resampling of { replicates : int }
  | Indexed_degree
  | Set_membership of set_op
  | Grouped of { sum_attribute : string option }

let set_op_to_string = function
  | Inter_size -> "intersection"
  | Union_size -> "union"
  | Diff_size -> "difference"

let strategy_to_string = function
  | Scale_up { groups = 1 } -> "scale-up"
  | Scale_up { groups } -> Printf.sprintf "scale-up (%d replicates)" groups
  | Direct_selection -> "direct selection"
  | Sequential_selection { target; level; batch } ->
    Printf.sprintf "sequential (target=%g, level=%g, batch=%d)" target level batch
  | Cluster_expansion -> "cluster expansion"
  | Stratified_expansion -> "stratified expansion"
  | Bootstrap_resampling { replicates } ->
    Printf.sprintf "bootstrap (%d resamples)" replicates
  | Indexed_degree -> "indexed degree"
  | Set_membership op -> Printf.sprintf "set membership (%s)" (set_op_to_string op)
  | Grouped { sum_attribute = None } -> "grouped count"
  | Grouped { sum_attribute = Some a } -> Printf.sprintf "grouped sum of %s" a

type t = {
  root : node;
  strategy : strategy;
  label : string;
  splan : Sampling_plan.t option;
}

(* ------------------------------------------------------------------ *)
(* Plan construction                                                   *)

(* Set-semantics operators scale up only consistently: deduplicated
   counts do not admit the product-of-leaf-scales expectation
   (THEORY.md §17).  Mirrors [Expr.has_dedup].  [Group_by] is not in
   the list: its strategy estimates each group by an unbiased binomial,
   not by deduplicated scale-up. *)
let dedup_op = function
  | Dedup | Union | Inter | Diff | Aggregate _ -> true
  | Scan _ | Select _ | Project _ | Product | Equijoin _ | Theta_join _ | Rename _
  | Group_by _ ->
    false

(* An empty population is sampled as the empty census (n = 0): the
   sample is the whole population, so every 0/0 below is scale 1. *)
let census_scale ~population ~n =
  if population = 0 then 1. else float_of_int population /. float_of_int n

let mode_scale = function
  | Derived | Exact _ -> 1.
  | Srswor { n; population } -> census_scale ~population ~n
  | Bernoulli { p; _ } -> 1. /. p
  | Page_srswor { m; pages; _ } -> census_scale ~population:pages ~n:m
  | Stratified_srswor { n; population } -> census_scale ~population ~n
  (* The prefix grows at run time; annotate with the scale at the first
     stopping opportunity (one full batch, clamped to the census). *)
  | Prefix { batch; population } ->
    census_scale ~population ~n:(min batch population)
  | Resampled { n; population; _ } -> census_scale ~population ~n

let mk ?(mode = Derived) ?status op children =
  let status =
    match status with
    | Some s -> s
    | None ->
      if dedup_op op || List.exists (fun c -> c.status = Consistent_only) children
      then Consistent_only
      else Unbiased
  in
  let scale =
    match mode with
    | Derived -> List.fold_left (fun acc c -> acc *. c.scale) 1. children
    | m -> mode_scale m
  in
  { id = 0; op; mode; scale; status; moments = Moments.create (); children }

let renumber root =
  let next = ref 0 in
  let rec go n =
    let id = !next in
    incr next;
    { n with id; children = List.map go n.children }
  in
  go root

let make_plan ~label ~strategy ?splan root =
  { root = renumber root; strategy; label; splan }

let of_sampling_plan ?(groups = 1) ?(label = "scale-up") (splan : Sampling_plan.t) =
  if groups < 1 then invalid_arg "Estplan.of_sampling_plan: groups must be >= 1";
  let leaf_of_alias =
    let table = Hashtbl.create 8 in
    List.iter
      (fun (l : Sampling_plan.leaf) -> Hashtbl.replace table l.alias l)
      splan.leaves;
    fun alias ->
      match Hashtbl.find_opt table alias with
      | Some l -> l
      | None ->
        invalid_arg (Printf.sprintf "Estplan.of_sampling_plan: unbound alias %S" alias)
  in
  let rec lower (e : Expr.t) =
    match e with
    | Expr.Base alias ->
      let leaf = leaf_of_alias alias in
      let mode =
        match leaf.mode with
        | Sampling_plan.Srswor n -> Srswor { n; population = leaf.population }
        | Sampling_plan.Bernoulli p -> Bernoulli { p; population = leaf.population }
      in
      mk ~mode
        (Scan { relation = leaf.relation; alias; occurrence = leaf.occurrence })
        []
    | Expr.Select (p, e) -> mk (Select p) [ lower e ]
    | Expr.Project (attrs, e) -> mk (Project attrs) [ lower e ]
    | Expr.Distinct e -> mk Dedup [ lower e ]
    | Expr.Product (l, r) -> mk Product [ lower l; lower r ]
    | Expr.Equijoin (on, l, r) -> mk (Equijoin on) [ lower l; lower r ]
    | Expr.Theta_join (p, l, r) -> mk (Theta_join p) [ lower l; lower r ]
    | Expr.Union (l, r) -> mk Union [ lower l; lower r ]
    | Expr.Inter (l, r) -> mk Inter [ lower l; lower r ]
    | Expr.Diff (l, r) -> mk Diff [ lower l; lower r ]
    | Expr.Rename (m, e) -> mk (Rename m) [ lower e ]
    | Expr.Aggregate (by, specs, e) -> mk (Aggregate (by, specs)) [ lower e ]
  in
  let root = lower splan.expr in
  (* The subtree product can differ from the plan scale in the last ulp
     (tree-shaped vs left-folded multiplication); the annotation must
     show exactly what the engine multiplies by. *)
  let root = { root with scale = splan.scale } in
  make_plan ~label ~strategy:(Scale_up { groups }) ~splan root

let compile ?(groups = 1) ?(optimize = false) ?(label = "scale-up") catalog ~fraction
    expr =
  let expr = if optimize then Relational.Optimizer.optimize catalog expr else expr in
  of_sampling_plan ~groups ~label (Sampling_plan.make catalog ~fraction expr)

let equijoin_plan catalog ~left ~right ~on ~fraction ~groups =
  if groups < 1 then invalid_arg "Estplan.equijoin_plan: groups must be >= 1";
  (* Each replicate runs at fraction/groups so the total tuples drawn
     match a single draw at [fraction]. *)
  let sub_fraction =
    if groups = 1 then fraction else fraction /. float_of_int groups
  in
  of_sampling_plan ~groups ~label:"equijoin"
    (Sampling_plan.make catalog ~fraction:sub_fraction
       (Expr.equijoin on (Expr.base left) (Expr.base right)))

(* The non-scale-up constructors annotate without validating sizes: the
   runtime sampling layer raises the historical messages, and the
   front-end modules keep their own argument guards. *)

let scan_leaf_of catalog ~relation ~occurrence mode_of =
  let population = Relation.cardinality (Catalog.find catalog relation) in
  mk ~mode:(mode_of population) (Scan { relation; alias = relation; occurrence }) []

let selection_plan catalog ~relation ~n predicate =
  let leaf =
    scan_leaf_of catalog ~relation ~occurrence:0 (fun population ->
        Srswor { n; population })
  in
  make_plan ~label:"selection" ~strategy:Direct_selection
    (mk (Select predicate) [ leaf ])

let sequential_plan catalog ~relation ~target ~level ~batch predicate =
  let leaf =
    scan_leaf_of catalog ~relation ~occurrence:0 (fun population ->
        Prefix { batch; population })
  in
  make_plan ~label:"selection"
    ~strategy:(Sequential_selection { target; level; batch })
    (mk (Select predicate) [ leaf ])

let cluster_plan paged ~m ?predicate () =
  let pages = Paged.page_count paged in
  let population = Paged.cardinality paged in
  let leaf =
    mk
      ~mode:(Page_srswor { m; pages; population })
      (Scan { relation = "<paged>"; alias = "<paged>"; occurrence = 0 })
      []
  in
  let root =
    match predicate with Some p -> mk (Select p) [ leaf ] | None -> leaf
  in
  make_plan ~label:"cluster" ~strategy:Cluster_expansion root

let stratified_plan catalog ~relation ~n predicate =
  let leaf =
    scan_leaf_of catalog ~relation ~occurrence:0 (fun population ->
        Stratified_srswor { n; population })
  in
  make_plan ~label:"stratified selection" ~strategy:Stratified_expansion
    (mk (Select predicate) [ leaf ])

let bootstrap_plan catalog ~relation ~n ~replicates predicate =
  let leaf =
    scan_leaf_of catalog ~relation ~occurrence:0 (fun population ->
        Resampled { n; population; replicates })
  in
  make_plan ~label:"selection (bootstrap)"
    ~strategy:(Bootstrap_resampling { replicates })
    (mk (Select predicate) [ leaf ])

let indexed_join_plan catalog ~left ~right ~on:(left_attr, right_attr) ~n =
  let lleaf =
    scan_leaf_of catalog ~relation:left ~occurrence:0 (fun population ->
        Srswor { n; population })
  in
  let rleaf =
    scan_leaf_of catalog ~relation:right ~occurrence:1 (fun population ->
        Exact { population })
  in
  make_plan ~label:"equijoin (indexed)" ~strategy:Indexed_degree
    (mk (Equijoin [ (left_attr, right_attr) ]) [ lleaf; rleaf ])

let set_plan catalog ~op ~left ~right ~fraction =
  let combine =
    match op with
    | Inter_size -> Expr.inter
    | Union_size -> Expr.union
    | Diff_size -> Expr.diff
  in
  let t =
    of_sampling_plan ~label:(set_op_to_string op)
      (Sampling_plan.make catalog ~fraction
         (combine (Expr.base left) (Expr.base right)))
  in
  (* The membership estimator K̂ = X/(p1·p2) over duplicate-free
     operands is unbiased even though the operator has set semantics —
     override the dedup-contagion default. *)
  {
    t with
    strategy = Set_membership op;
    root = { t.root with status = Unbiased };
  }

let grouped_plan catalog ~relation ~by ?sum_attribute ~n predicate =
  let leaf =
    scan_leaf_of catalog ~relation ~occurrence:0 (fun population ->
        Srswor { n; population })
  in
  let label = match sum_attribute with None -> "group-count" | Some _ -> "group-sum" in
  make_plan ~label
    ~strategy:(Grouped { sum_attribute })
    (mk (Group_by by) [ mk (Select predicate) [ leaf ] ])

(* ------------------------------------------------------------------ *)
(* Shared engine plumbing                                              *)

(* Metrics accounting convention, shared by every strategy: the
   sampling/eval layers record their own counters via the threaded
   sink, replicated paths give each replicate a fresh [Metrics.child]
   sink (so domains never share a mutable sink) and absorb them in
   replicate order after the join — integer counters merge by addition,
   so totals are bit-identical for any domain count.  The parent
   generator's own draws (the serial [Rng.split]s) are recorded as a
   delta of its draw counter. *)

let with_replicate_sinks metrics groups f =
  let sinks = Array.init groups (fun _ -> Metrics.child metrics) in
  let result = f sinks in
  Array.iter (fun sink -> Metrics.absorb metrics sink) sinks;
  result

let the_splan plan =
  match plan.splan with
  | Some sp -> sp
  | None -> invalid_arg "Estplan: plan carries no sampling-plan annotation"

let leaf_nodes plan =
  let rec go acc n =
    match n.children with [] -> n :: acc | cs -> List.fold_left go acc cs
  in
  List.rev (go [] plan.root)

let leaf_sizes plan sampled =
  List.map
    (fun leaf ->
      match leaf.op with
      | Scan { alias; _ } -> Relation.cardinality (Catalog.find sampled alias)
      | _ -> 0)
    (leaf_nodes plan)

(* Leaf moments record the design-unbiased population estimate of the
   leaf itself: scale × drawn size (exactly N for a fixed-size draw, a
   genuine estimate under Bernoulli).  Must only be called from the
   coordinating thread — replicate bodies return their observations. *)
let observe_leaves plan sizes =
  List.iter2
    (fun leaf size ->
      match leaf.op with
      | Scan _ -> Moments.observe leaf.moments (leaf.scale *. float_of_int size)
      | _ -> ())
    (leaf_nodes plan) sizes

let draw ?(metrics = Metrics.noop) rng catalog plan =
  let splan = the_splan plan in
  let sampled, total = Sampling_plan.draw ~metrics rng catalog splan in
  observe_leaves plan (leaf_sizes plan sampled);
  (sampled, total)

(* One scale-up execution: draw every leaf in occurrence order, count
   the rewritten expression on the sampled catalog, multiply by the
   plan scale.  Safe to run inside a domain: touches no plan state. *)
let run_once ~metrics ~columnar rng catalog plan splan =
  let sampled, drawn =
    Metrics.time metrics "draw" (fun () ->
        Sampling_plan.draw ~metrics rng catalog splan)
  in
  (* The streaming engine avoids materializing intermediates — cheaper
     on product-heavy sample evaluations, identical counts. *)
  let count =
    Metrics.time metrics "eval" (fun () ->
        Relational.Physical.count_expr ~metrics ~columnar sampled
          splan.Sampling_plan.expr)
  in
  ( splan.Sampling_plan.scale *. float_of_int count,
    drawn,
    leaf_sizes plan sampled )

(* ------------------------------------------------------------------ *)
(* Closed-form binomial selection                                      *)

let binomial_estimate ?(label = "selection") ~big_n ~n ~hits () =
  if (n <= 0 && big_n > 0) || n < 0 || n > big_n then
    invalid_arg "Estplan.binomial_estimate: sample size out of range";
  if hits < 0 || hits > n then invalid_arg "Estplan.binomial_estimate: hits out of range";
  if big_n = 0 then
    (* Empty universe: the census of nothing is exact, so the estimate
       is 0 with a degenerate (zero-width) CI. *)
    Estimate.make ~variance:0. ~label ~status:Estimate.Unbiased ~sample_size:0 0.
  else
  let big_nf = float_of_int big_n and nf = float_of_int n in
  let p_hat = float_of_int hits /. nf in
  let point = big_nf *. p_hat in
  let variance =
    if n < 2 then Float.nan
    else
      big_nf *. big_nf
      *. (1. -. (nf /. big_nf))
      *. p_hat *. (1. -. p_hat)
      /. (nf -. 1.)
  in
  Estimate.make ~variance ~label ~status:Estimate.Unbiased ~sample_size:n point

let record_estimate node (e : Estimate.t) =
  Moments.set_analytic node.moments ~mean:e.Estimate.point ~variance:e.Estimate.variance

(* ------------------------------------------------------------------ *)
(* Strategy runners                                                    *)

let run_scale_up ?domains ~metrics ~columnar rng catalog plan groups =
  let splan = the_splan plan in
  let status = status_to_estimate plan.root.status in
  if groups = 1 then begin
    let point, drawn, sizes = run_once ~metrics ~columnar rng catalog plan splan in
    observe_leaves plan sizes;
    Moments.observe plan.root.moments point;
    Estimate.make ~label:plan.label ~status ~sample_size:drawn point
  end
  else begin
    (* g independent replicates; the mean keeps the status of a single
       replicate and gains an honest variance estimate s²/g.  Each
       replicate runs on its own split stream, so the points (and the
       variance computed from them) are identical for any [domains]. *)
    let draws_before = Sampling.Rng.draws rng in
    let results =
      with_replicate_sinks metrics groups (fun sinks ->
          Parallel.replicate_init ?domains rng groups (fun child i ->
              run_once ~metrics:sinks.(i) ~columnar child catalog plan splan))
    in
    Metrics.add_rng_draws metrics (Sampling.Rng.draws rng - draws_before);
    Array.iter
      (fun (point, _, sizes) ->
        observe_leaves plan sizes;
        Moments.observe plan.root.moments point)
      results;
    let points = Array.map (fun (point, _, _) -> point) results in
    let summary = Stats.Summary.of_array points in
    let variance = Stats.Summary.variance summary /. float_of_int groups in
    let drawn =
      groups * int_of_float (Float.round (Sampling_plan.expected_sample_size splan))
    in
    Estimate.make ~variance
      ~label:(plan.label ^ " (replicated)")
      ~status ~sample_size:drawn
      (Stats.Summary.mean summary)
  end

type index_source = n:int -> universe:int -> (unit -> int array) -> int array

let selection_shape plan =
  match plan.root with
  | {
   op = Select predicate;
   children = [ ({ op = Scan { relation; _ }; _ } as leaf) ];
   _;
  } ->
    (predicate, relation, leaf)
  | _ -> invalid_arg "Estplan: expected a selection-shaped plan (select over scan)"

let run_direct_selection ~metrics ~columnar ?index_source rng catalog plan =
  let predicate, relation, leaf = selection_shape plan in
  let n =
    match leaf.mode with
    | Srswor { n; _ } -> n
    | _ -> invalid_arg "Estplan: direct selection needs an SRSWOR leaf"
  in
  let r = Catalog.find catalog relation in
  let hits =
    if columnar && Relational.Column.enabled () then begin
      (* Same index stream as the gather path, but the sampled rows are
         tested in place on the base relation's columnar view — no
         per-sample tuple materialization, and no index sort (counting
         is order-insensitive).  The explicit tuples-scanned bump keeps
         counter totals identical to the gather path, which records its
         gather as a scan.

         An [index_source] (the daemon's warm backing-sample cache) may
         supply the index set instead of drawing: because the draw is
         fully determined by (seed, n, universe), a cached set keyed on
         those is the set this request would have drawn, so results are
         bit-identical — only the draw work (and its rng_draws /
         sample_indices accounting) is skipped. *)
      let universe = Relation.cardinality r in
      let draw () =
        Sampling.Srs.indices_without_replacement ~metrics ~sorted:false rng ~n ~universe
      in
      let indices =
        match index_source with Some source -> source ~n ~universe draw | None -> draw ()
      in
      Metrics.add_tuples metrics n;
      Relational.Kernel.count_indices (Relation.columnar r) predicate indices
    end
    else begin
      let sample = Sampling.Srs.relation_without_replacement ~metrics rng ~n r in
      let keep = Relational.Predicate.compile (Relation.schema sample) predicate in
      Relation.count keep sample
    end
  in
  let estimate =
    binomial_estimate ~label:plan.label ~big_n:(Relation.cardinality r) ~n ~hits ()
  in
  Moments.observe leaf.moments (leaf.scale *. float_of_int n);
  record_estimate plan.root estimate;
  estimate

(* Set-operation sizes via the membership estimator.

   X = |S_A ∩ S_B| is a sum over the K = |A ∩ B| common tuples of
   I_A(v)·I_B(v).  With SRSWOR, P(v ∈ S_A) = p1 = n1/N1 and
   P(v,w ∈ S_A) = r1 = n1(n1−1)/(N1(N1−1)), so
     E[X]  = K·p1·p2
     Var X = K·p1p2(1−p1p2) + K(K−1)(r1·r2 − p1²p2²).
   The estimator is K̂ = X/(p1 p2); its variance plugs K̂ into the
   formula.  Union and difference are affine in K̂ with the same
   variance. *)
let run_set ~metrics rng catalog plan flavor =
  let splan = the_splan plan in
  let l_leaf, r_leaf =
    match splan.Sampling_plan.leaves with
    | [ l; r ] -> (l, r)
    | _ -> invalid_arg "Estplan: set plans take exactly two leaves"
  in
  let srswor_n (leaf : Sampling_plan.leaf) =
    match leaf.mode with
    | Sampling_plan.Srswor n -> n
    | Sampling_plan.Bernoulli _ ->
      invalid_arg "Estplan: set plans need SRSWOR leaves"
  in
  let n1 = srswor_n l_leaf and n2 = srswor_n r_leaf in
  let sampled, drawn = Sampling_plan.draw ~metrics rng catalog splan in
  let x =
    Relational.Eval.count ~metrics sampled
      (Expr.inter (Expr.base l_leaf.alias) (Expr.base r_leaf.alias))
  in
  let big_n1 = float_of_int l_leaf.population in
  let big_n2 = float_of_int r_leaf.population in
  let n1f = float_of_int n1 and n2f = float_of_int n2 in
  (* An empty side is a census of nothing: its inclusion probability is
     1 (every tuple of the empty relation is in the sample), keeping
     K̂ = X/(p₁p₂) well-defined with X = 0. *)
  let incl nf big_nf = if big_nf = 0. then 1. else nf /. big_nf in
  let p1 = incl n1f big_n1 and p2 = incl n2f big_n2 in
  let pair_prob nf big_nf =
    if big_nf < 2. then 1. else nf *. (nf -. 1.) /. (big_nf *. (big_nf -. 1.))
  in
  let r1 = pair_prob n1f big_n1 and r2 = pair_prob n2f big_n2 in
  let k_hat = float_of_int x /. (p1 *. p2) in
  let var_x =
    (k_hat *. p1 *. p2 *. (1. -. (p1 *. p2)))
    +. (k_hat *. Float.max 0. (k_hat -. 1.) *. ((r1 *. r2) -. (p1 *. p1 *. p2 *. p2)))
  in
  let variance = Float.max 0. (var_x /. (p1 *. p1 *. p2 *. p2)) in
  let point =
    match flavor with
    | Inter_size -> k_hat
    | Union_size -> big_n1 +. big_n2 -. k_hat
    | Diff_size -> big_n1 -. k_hat
  in
  observe_leaves plan (leaf_sizes plan sampled);
  let estimate =
    Estimate.make ~variance ~label:plan.label ~status:Estimate.Unbiased
      ~sample_size:drawn point
  in
  record_estimate plan.root estimate;
  estimate

let run ?domains ?(metrics = Metrics.noop) ?(columnar = true) ?index_source rng catalog
    plan =
  match plan.strategy with
  | Scale_up { groups } -> run_scale_up ?domains ~metrics ~columnar rng catalog plan groups
  | Direct_selection -> run_direct_selection ~metrics ~columnar ?index_source rng catalog plan
  | Set_membership flavor -> run_set ~metrics rng catalog plan flavor
  | Sequential_selection _ | Cluster_expansion | Stratified_expansion
  | Bootstrap_resampling _ | Indexed_degree | Grouped _ ->
    invalid_arg
      (Printf.sprintf "Estplan.run: %s plans need their dedicated runner"
         (strategy_to_string plan.strategy))

type sequential_step = {
  step_n : int;
  step_point : float;
  step_half_width : float;
}

let run_sequential ?(metrics = Metrics.noop) rng catalog plan =
  let target, level, batch =
    match plan.strategy with
    | Sequential_selection { target; level; batch } -> (target, level, batch)
    | _ -> invalid_arg "Estplan.run_sequential: not a sequential plan"
  in
  let predicate, relation, leaf = selection_shape plan in
  let r = Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  let keep = Relational.Predicate.compile (Relation.schema r) predicate in
  (* A uniformly random permutation makes every prefix an SRSWOR. *)
  let order = Array.init big_n (fun i -> i) in
  let draws_before = Sampling.Rng.draws rng in
  Sampling.Rng.shuffle_in_place rng order;
  Metrics.add_rng_draws metrics (Sampling.Rng.draws rng - draws_before);
  let z = Stats.Confidence.z_value ~level in
  let trajectory = ref [] in
  (* [batches] counts completed batches; the trajectory list stays
     write-only inside the loop, so growth is O(batches), not
     O(batches²) as a [List.length] stopping test would make it. *)
  let rec grow n hits batches =
    let stop = min (n + batch) big_n in
    let hits = ref hits in
    for k = n to stop - 1 do
      if keep (Relation.tuple r order.(k)) then incr hits
    done;
    Metrics.add_tuples metrics (stop - n);
    let n = stop in
    let estimate = binomial_estimate ~big_n ~n ~hits:!hits () in
    let half_width =
      if Estimate.has_variance estimate then z *. Estimate.stderr estimate
      else Float.infinity
    in
    trajectory :=
      { step_n = n; step_point = estimate.Estimate.point; step_half_width = half_width }
      :: !trajectory;
    let precise =
      estimate.Estimate.point > 0. && half_width /. estimate.Estimate.point <= target
    in
    (* Demand at least two batches so a lucky first batch cannot stop
       on a degenerate variance estimate. *)
    if (precise && batches >= 2) || n >= big_n then
      (estimate, precise || (n >= big_n && half_width = 0.))
    else grow n !hits (batches + 1)
  in
  let estimate, reached_target = grow 0 0 1 in
  Moments.observe leaf.moments (float_of_int big_n);
  record_estimate plan.root estimate;
  (estimate, reached_target, List.rev !trajectory)

let run_cluster ?(metrics = Metrics.noop) rng paged plan ~measure =
  (match plan.strategy with
  | Cluster_expansion -> ()
  | _ -> invalid_arg "Estplan.run_cluster: not a cluster plan");
  let leaf =
    match leaf_nodes plan with
    | [ leaf ] -> leaf
    | _ -> invalid_arg "Estplan.run_cluster: cluster plans take one page leaf"
  in
  let m, big_m =
    match leaf.mode with
    | Page_srswor { m; pages; _ } -> (m, pages)
    | _ -> invalid_arg "Estplan.run_cluster: cluster plans need a page leaf"
  in
  let sample = Sampling.Page_sampling.measures ~metrics rng ~m paged ~measure in
  let summary = Stats.Summary.of_array sample.Sampling.Page_sampling.values in
  let big_mf = float_of_int big_m and mf = float_of_int m in
  let point = big_mf /. mf *. Stats.Summary.total summary in
  let variance =
    if m < 2 then Float.nan
    else
      big_mf *. big_mf *. (1. -. (mf /. big_mf)) *. Stats.Summary.variance summary /. mf
  in
  let tuples_read = sample.Sampling.Page_sampling.tuples in
  let estimate =
    Estimate.make ~variance ~label:plan.label ~status:Estimate.Unbiased
      ~sample_size:tuples_read point
  in
  Moments.observe leaf.moments (leaf.scale *. float_of_int tuples_read);
  record_estimate plan.root estimate;
  (estimate, m, tuples_read)

let run_stratified rng catalog plan ~key =
  (match plan.strategy with
  | Stratified_expansion -> ()
  | _ -> invalid_arg "Estplan.run_stratified: not a stratified plan");
  let predicate, relation, leaf = selection_shape plan in
  let n =
    match leaf.mode with
    | Stratified_srswor { n; _ } -> n
    | _ -> invalid_arg "Estplan.run_stratified: stratified plans need a stratified leaf"
  in
  let r = Catalog.find catalog relation in
  let keep = Relational.Predicate.compile (Relation.schema r) predicate in
  let strata = Sampling.Stratified.sample rng ~n ~key (Relation.tuples r) in
  (* Recover per-stratum population sizes with one grouping pass. *)
  let populations = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      let k = key t in
      Hashtbl.replace populations k
        (1 + Option.value (Hashtbl.find_opt populations k) ~default:0))
    r;
  let point = ref 0. and variance = ref 0. and drawn = ref 0 in
  let summary =
    List.map
      (fun stratum ->
        let k = stratum.Sampling.Stratified.key in
        let n_h = stratum.Sampling.Stratified.allocated in
        let big_nh = Hashtbl.find populations k in
        drawn := !drawn + n_h;
        if n_h > 0 then begin
          let hits =
            Array.fold_left
              (fun acc t -> if keep t then acc + 1 else acc)
              0 stratum.Sampling.Stratified.members
          in
          let nf = float_of_int n_h and big_nf = float_of_int big_nh in
          let p_hat = float_of_int hits /. nf in
          point := !point +. (big_nf *. p_hat);
          if n_h >= 2 then
            variance :=
              !variance
              +. big_nf *. big_nf
                 *. (1. -. (nf /. big_nf))
                 *. p_hat *. (1. -. p_hat) /. (nf -. 1.)
        end;
        (k, big_nh, n_h))
      strata
  in
  let estimate =
    Estimate.make ~variance:!variance ~label:plan.label ~status:Estimate.Unbiased
      ~sample_size:!drawn !point
  in
  Moments.observe leaf.moments (leaf.scale *. float_of_int !drawn);
  record_estimate plan.root estimate;
  (estimate, summary)

let bootstrap_replicates ?domains ?(metrics = Metrics.noop) rng ~replicates ~statistic
    sample =
  if Array.length sample = 0 then invalid_arg "Estplan.bootstrap_replicates: empty sample";
  if replicates <= 0 then
    invalid_arg "Estplan.bootstrap_replicates: replicates must be positive";
  let n = Array.length sample in
  (* One split stream per replicate, derived serially: replicate r sees
     the same draws whatever the domain count.  Each chunk reuses a
     single scratch buffer, matching the serial code's allocation. *)
  let draws_before = Sampling.Rng.draws rng in
  let children = Array.init replicates (fun _ -> Sampling.Rng.split rng) in
  Metrics.add_rng_draws metrics (Sampling.Rng.draws rng - draws_before);
  (* Per-replicate sinks, absorbed in replicate order below: counter
     totals are independent of the domain count. *)
  let sinks = Array.init replicates (fun _ -> Metrics.child metrics) in
  let values =
    Parallel.chunked_init ?domains replicates (fun start len ->
        let resampled = Array.make n sample.(0) in
        Array.init len (fun k ->
            let child = children.(start + k) in
            for i = 0 to n - 1 do
              resampled.(i) <- sample.(Sampling.Rng.int child n)
            done;
            let sink = sinks.(start + k) in
            Metrics.add_indices sink n;
            Metrics.add_rng_draws sink (Sampling.Rng.draws child);
            statistic resampled))
  in
  Array.iter (fun sink -> Metrics.absorb metrics sink) sinks;
  values

let run_bootstrap ?domains ?(metrics = Metrics.noop) rng catalog plan ~level =
  let replicates =
    match plan.strategy with
    | Bootstrap_resampling { replicates } -> replicates
    | _ -> invalid_arg "Estplan.run_bootstrap: not a bootstrap plan"
  in
  let predicate, relation, leaf = selection_shape plan in
  let n =
    match leaf.mode with
    | Resampled { n; _ } -> n
    | _ -> invalid_arg "Estplan.run_bootstrap: bootstrap plans need a resampled leaf"
  in
  let r = Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  let sample =
    Sampling.Srs.sample_without_replacement ~metrics rng ~n (Relation.tuples r)
  in
  let keep = Relational.Predicate.compile (Relation.schema r) predicate in
  (* Statistic over 0/1 hit indicators: scale-up count. *)
  let indicators = Array.map (fun t -> if keep t then 1. else 0.) sample in
  let statistic hits =
    float_of_int big_n *. (Array.fold_left ( +. ) 0. hits /. float_of_int n)
  in
  let values =
    bootstrap_replicates ?domains ~metrics rng ~replicates ~statistic indicators
  in
  let point = statistic indicators in
  let variance = Stats.Summary.variance (Stats.Summary.of_array values) in
  let estimate =
    Estimate.make ~variance ~label:plan.label ~status:Estimate.Unbiased ~sample_size:n
      point
  in
  (* Historical message: this validation lived in
     [Bootstrap.percentile_interval], after the resampling ran. *)
  if level <= 0. || level >= 1. then
    invalid_arg "Bootstrap.percentile_interval: level outside (0, 1)";
  let alpha2 = (1. -. level) /. 2. in
  let interval =
    Stats.Confidence.clamp_nonnegative
      {
        Stats.Confidence.lo = Stats.Summary.quantile alpha2 values;
        hi = Stats.Summary.quantile (1. -. alpha2) values;
        level;
      }
  in
  Moments.observe leaf.moments (leaf.scale *. float_of_int n);
  record_estimate plan.root estimate;
  (estimate, interval)

let run_indexed_degree ?(metrics = Metrics.noop) rng catalog plan ~degree =
  (match plan.strategy with
  | Indexed_degree -> ()
  | _ -> invalid_arg "Estplan.run_indexed_degree: not an indexed-degree plan");
  let relation, leaf =
    match leaf_nodes plan with
    | ({ op = Scan { relation; _ }; _ } as leaf) :: _ -> (relation, leaf)
    | _ -> invalid_arg "Estplan.run_indexed_degree: plan has no scan leaf"
  in
  let n =
    match leaf.mode with
    | Srswor { n; _ } -> n
    | _ -> invalid_arg "Estplan.run_indexed_degree: left leaf must be SRSWOR"
  in
  let rl = Catalog.find catalog relation in
  let big_n = Relation.cardinality rl in
  let sample =
    Sampling.Srs.sample_without_replacement ~metrics rng ~n (Relation.tuples rl)
  in
  (* Per-tuple degree is an exact lookup, so the estimator reduces to a
     mean expansion with the usual SRSWOR variance.  Each index lookup
     is one hash probe; zero degree is a miss. *)
  let degrees =
    Array.map
      (fun t ->
        let d = degree t in
        if d > 0 then Metrics.probe_hit metrics else Metrics.probe_miss metrics;
        float_of_int d)
      sample
  in
  let summary = Stats.Summary.of_array degrees in
  let big_nf = float_of_int big_n and nf = float_of_int n in
  let point = big_nf *. Stats.Summary.mean summary in
  let variance =
    if n < 2 then Float.nan
    else big_nf *. big_nf *. (1. -. (nf /. big_nf)) *. Stats.Summary.variance summary /. nf
  in
  let estimate =
    Estimate.make ~variance ~label:plan.label ~status:Estimate.Unbiased ~sample_size:n
      point
  in
  Moments.observe leaf.moments (leaf.scale *. float_of_int n);
  record_estimate plan.root estimate;
  estimate

(* ------------------------------------------------------------------ *)
(* Grouped tallies                                                     *)

let compare_keys k1 k2 = List.compare Value.compare k1 k2

let key_of indices tuple = List.map (fun i -> Tuple.get tuple i) indices

(* Parallel tallies run over fixed-size blocks, not per-domain chunks:
   the block decomposition — and with it the per-key merge order of
   partial aggregates — is independent of the domain count, so results
   are bit-identical whether tallied on 1 or N domains. *)
let tally_block = 8192

let blocked_tables ?domains ~per_block n =
  let nblocks = max 1 ((n + tally_block - 1) / tally_block) in
  Parallel.init ?domains nblocks (fun b ->
      let start = b * tally_block in
      per_block start (min tally_block (n - start)))

let group_tally ?domains ~indices ~keep tuples =
  let per_block start len =
    let table = Hashtbl.create 64 in
    for i = start to start + len - 1 do
      let t = tuples.(i) in
      if keep t then begin
        let key = key_of indices t in
        Hashtbl.replace table key
          (1 + Option.value (Hashtbl.find_opt table key) ~default:0)
      end
    done;
    table
  in
  let merged = Hashtbl.create 64 in
  Array.iter
    (fun table ->
      Hashtbl.iter
        (fun key count ->
          Hashtbl.replace merged key
            (count + Option.value (Hashtbl.find_opt merged key) ~default:0))
        table)
    (blocked_tables ?domains ~per_block (Array.length tuples));
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) merged []
  |> List.sort (fun (k1, _) (k2, _) -> compare_keys k1 k2)

(* Per-group sums of [value] over the given tuples, with the per-group
   sum of squares (needed for the expansion variance).  Blocked like
   {!group_tally}: per-block partials combine in block order, so a
   fixed seed gives the same sums on any domain count. *)
let group_tally_sums ?domains ~indices ~keep ~value tuples =
  let per_block start len =
    let table = Hashtbl.create 64 in
    for i = start to start + len - 1 do
      let t = tuples.(i) in
      if keep t then begin
        let key = key_of indices t in
        let y = value t in
        let sum, sum_sq, hits =
          Option.value (Hashtbl.find_opt table key) ~default:(0., 0., 0)
        in
        Hashtbl.replace table key (sum +. y, sum_sq +. (y *. y), hits + 1)
      end
    done;
    table
  in
  let merged = Hashtbl.create 64 in
  Array.iter
    (fun table ->
      Hashtbl.iter
        (fun key (sum, sum_sq, hits) ->
          let acc_sum, acc_sq, acc_hits =
            Option.value (Hashtbl.find_opt merged key) ~default:(0., 0., 0)
          in
          Hashtbl.replace merged key (acc_sum +. sum, acc_sq +. sum_sq, acc_hits + hits))
        table)
    (blocked_tables ?domains ~per_block (Array.length tuples));
  Hashtbl.fold (fun key totals acc -> (key, totals) :: acc) merged []
  |> List.sort (fun (k1, _) (k2, _) -> compare_keys k1 k2)

type grouped_row = {
  group_key : Relational.Value.t list;
  group_estimate : Stats.Estimate.t;
  group_interval : Stats.Confidence.interval;
}

let contribution r attribute =
  let i = Relational.Schema.index_of (Relation.schema r) attribute in
  fun tuple ->
    match Tuple.get tuple i with Value.Null -> 0. | v -> Value.to_float v

let run_grouped ?domains ?(metrics = Metrics.noop) rng catalog plan ~level =
  let sum_attribute =
    match plan.strategy with
    | Grouped { sum_attribute } -> sum_attribute
    | _ -> invalid_arg "Estplan.run_grouped: not a grouped plan"
  in
  let by, predicate, relation, leaf =
    match plan.root with
    | {
     op = Group_by by;
     children =
       [
         {
           op = Select predicate;
           children = [ ({ op = Scan { relation; _ }; _ } as leaf) ];
           _;
         };
       ];
     _;
    } ->
      (by, predicate, relation, leaf)
    | _ -> invalid_arg "Estplan.run_grouped: expected group-by over select over scan"
  in
  let n =
    match leaf.mode with
    | Srswor { n; _ } -> n
    | _ -> invalid_arg "Estplan.run_grouped: grouped plans need an SRSWOR leaf"
  in
  let r = Catalog.find catalog relation in
  let schema = Relation.schema r in
  let indices = List.map (fun a -> Relational.Schema.index_of schema a) by in
  let big_n = Relation.cardinality r in
  let keep = Relational.Predicate.compile schema predicate in
  let sample =
    Sampling.Srs.sample_without_replacement ~metrics rng ~n (Relation.tuples r)
  in
  Moments.observe leaf.moments (leaf.scale *. float_of_int n);
  match sum_attribute with
  | None ->
    let counts =
      Metrics.time metrics "tally" (fun () -> group_tally ?domains ~indices ~keep sample)
    in
    let k = List.length counts in
    let per_group_level =
      if k = 0 then level else 1. -. ((1. -. level) /. float_of_int k)
    in
    List.map
      (fun (key, hits) ->
        let estimate = binomial_estimate ~label:plan.label ~big_n ~n ~hits () in
        let interval =
          if Estimate.has_variance estimate then
            Estimate.ci ~level:per_group_level estimate
          else
            { Stats.Confidence.lo = 0.; hi = float_of_int big_n; level = per_group_level }
        in
        { group_key = key; group_estimate = estimate; group_interval = interval })
      counts
  | Some attribute ->
    let value = contribution r attribute in
    let sums =
      Metrics.time metrics "tally" (fun () ->
          group_tally_sums ?domains ~indices ~keep ~value sample)
    in
    let k = List.length sums in
    let per_group_level =
      if k = 0 then level else 1. -. ((1. -. level) /. float_of_int k)
    in
    let big_nf = float_of_int big_n and nf = float_of_int n in
    List.map
      (fun (key, (sum, sum_sq, _hits)) ->
        (* Expansion over per-tuple contributions: y for the group's
           tuples, 0 for everything else in the sample. *)
        let mean = sum /. nf in
        let point = big_nf *. mean in
        let variance =
          if n < 2 then Float.nan
          else begin
            let ss = sum_sq -. (nf *. mean *. mean) in
            big_nf *. big_nf *. (1. -. (nf /. big_nf)) *. (ss /. (nf -. 1.)) /. nf
          end
        in
        let estimate =
          Estimate.make ~variance ~label:plan.label ~status:Estimate.Unbiased
            ~sample_size:n point
        in
        let interval =
          if Estimate.has_variance estimate then
            Stats.Confidence.normal ~level:per_group_level ~point
              ~stderr:(Estimate.stderr estimate)
          else
            {
              Stats.Confidence.lo = Float.neg_infinity;
              hi = Float.infinity;
              level = per_group_level;
            }
        in
        { group_key = key; group_estimate = estimate; group_interval = interval })
      sums

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

let expected_sample_size plan =
  match plan.splan with
  | Some sp -> Sampling_plan.expected_sample_size sp
  | None ->
    List.fold_left
      (fun acc leaf ->
        acc
        +.
        match leaf.mode with
        | Srswor { n; _ } | Stratified_srswor { n; _ } | Resampled { n; _ } ->
          float_of_int n
        | Exact { population } -> float_of_int population
        | Bernoulli { p; population } -> p *. float_of_int population
        | Page_srswor { m; pages; population } ->
          float_of_int population *. float_of_int m /. float_of_int pages
        | Prefix { batch; population } -> float_of_int (min batch population)
        | Derived -> 0.)
      0. (leaf_nodes plan)

let node_count plan =
  let rec go acc n = List.fold_left go (acc + 1) n.children in
  go 0 plan.root

let mode_sizes = function
  | Derived | Bernoulli _ -> None
  | Exact { population } -> Some (population, population)
  | Srswor { n; population }
  | Stratified_srswor { n; population }
  | Resampled { n; population; _ } ->
    Some (population, n)
  | Page_srswor { m; pages; _ } -> Some (pages, m)
  | Prefix { batch; population } -> Some (population, min batch population)

let agg_to_string = function
  | Expr.Count -> "count"
  | Expr.Sum a -> Printf.sprintf "sum(%s)" a
  | Expr.Avg a -> Printf.sprintf "avg(%s)" a
  | Expr.Min a -> Printf.sprintf "min(%s)" a
  | Expr.Max a -> Printf.sprintf "max(%s)" a

let op_to_string = function
  | Scan { relation; alias; _ } ->
    if alias = relation then Printf.sprintf "scan %s" relation
    else Printf.sprintf "scan %s as %s" relation alias
  | Select p -> Printf.sprintf "select[%s]" (Predicate.to_string p)
  | Project attrs -> Printf.sprintf "project[%s]" (String.concat ", " attrs)
  | Dedup -> "distinct"
  | Product -> "product"
  | Equijoin on ->
    Printf.sprintf "equijoin[%s]"
      (String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "%s=%s" a b) on))
  | Theta_join p -> Printf.sprintf "theta-join[%s]" (Predicate.to_string p)
  | Union -> "union"
  | Inter -> "intersect"
  | Diff -> "difference"
  | Rename m ->
    Printf.sprintf "rename[%s]"
      (String.concat ", " (List.map (fun (a, b) -> Printf.sprintf "%s->%s" a b) m))
  | Aggregate (by, specs) ->
    Printf.sprintf "aggregate[by=%s; %s]"
      (String.concat "," by)
      (String.concat ", "
         (List.map
            (fun (agg, name) -> Printf.sprintf "%s as %s" (agg_to_string agg) name)
            specs))
  | Group_by by -> Printf.sprintf "group-by[%s]" (String.concat ", " by)

let mode_to_string = function
  | Derived -> "derived"
  | Exact { population } -> Printf.sprintf "exact scan N=%d" population
  | Srswor { n; population } -> Printf.sprintf "srswor %d/%d" n population
  | Bernoulli { p; population } -> Printf.sprintf "bernoulli p=%g N=%d" p population
  | Page_srswor { m; pages; population } ->
    Printf.sprintf "pages %d/%d (N=%d)" m pages population
  | Stratified_srswor { n; population } ->
    Printf.sprintf "stratified srswor %d/%d" n population
  | Prefix { batch; population } ->
    Printf.sprintf "permutation prefix batch=%d N=%d" batch population
  | Resampled { n; population; replicates } ->
    Printf.sprintf "srswor %d/%d, %d resamples" n population replicates

let node_line node =
  Printf.sprintf "%s  [%s]  scale=%.6g  %s" (op_to_string node.op)
    (mode_to_string node.mode) node.scale
    (unbiasedness_to_string node.status)

let render plan =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "estimation plan: %s (%s)" plan.label
       (strategy_to_string plan.strategy));
  let walk prefix node =
    let rec children prefix = function
      | [] -> ()
      | [ last ] ->
        Buffer.add_string buffer (Printf.sprintf "\n%s`- %s" prefix (node_line last));
        children_of (prefix ^ "   ") last
      | child :: rest ->
        Buffer.add_string buffer (Printf.sprintf "\n%s|- %s" prefix (node_line child));
        children_of (prefix ^ "|  ") child;
        children prefix rest
    and children_of prefix node = children prefix node.children in
    Buffer.add_string buffer (Printf.sprintf "\n%s`- %s" prefix (node_line node));
    children_of (prefix ^ "   ") node
  in
  walk "" plan.root;
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' | '\\' ->
        Buffer.add_char buffer '\\';
        Buffer.add_char buffer ch
      | '\000' .. '\031' ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buffer ch)
    s;
  Buffer.contents buffer

let json_float x = if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let to_json plan =
  let buffer = Buffer.create 512 in
  let rec node_json indent node =
    let pad = String.make indent ' ' in
    Buffer.add_string buffer
      (Printf.sprintf "%s{\"id\": %d, \"op\": \"%s\", \"mode\": \"%s\"" pad node.id
         (escape (op_to_string node.op))
         (escape (mode_to_string node.mode)));
    (match mode_sizes node.mode with
    | Some (population, sample_size) ->
      Buffer.add_string buffer
        (Printf.sprintf ", \"population\": %d, \"sample_size\": %d" population
           sample_size)
    | None -> ());
    Buffer.add_string buffer
      (Printf.sprintf ", \"scale\": %s, \"status\": \"%s\"" (json_float node.scale)
         (unbiasedness_to_string node.status));
    (match node.children with
    | [] -> Buffer.add_string buffer ", \"children\": []}"
    | children ->
      Buffer.add_string buffer ", \"children\": [\n";
      List.iteri
        (fun i child ->
          if i > 0 then Buffer.add_string buffer ",\n";
          node_json (indent + 2) child)
        children;
      Buffer.add_string buffer (Printf.sprintf "\n%s]}" pad))
  in
  Buffer.add_string buffer
    (Printf.sprintf
       "{\n  \"schema\": \"raestat-explain/1\",\n  \"label\": \"%s\",\n  \
        \"strategy\": \"%s\",\n  \"expected_sample_size\": %s,\n  \"root\":\n"
       (escape plan.label)
       (escape (strategy_to_string plan.strategy))
       (json_float (expected_sample_size plan)));
  node_json 2 plan.root;
  Buffer.add_string buffer "\n}";
  Buffer.contents buffer
