(** Sample-size planning: how much must be read for a requested
    precision?  Inverts the estimators' variance formulas, FPC
    included. *)

(** [selection ~big_n ~level ~target ~p] — minimal SRSWOR size such
    that the selection estimator's [level]-CI half-width is at most
    [target·C] when the true selectivity is [p]:

    {v n = ceil( n₀·N / (n₀ + N) )   with   n₀ = z²(1−p)/(e²·p) v}

    Rarer predicates need more tuples (the 1/p factor).  An empty
    universe ([big_n = 0]) needs no sample: the result is 0 and the
    estimate downstream is an exact zero with a degenerate CI.
    @raise Invalid_argument if [p] or [target] is outside (0, 1),
    [level] outside (0, 1), or [big_n < 0]. *)
val selection : big_n:int -> level:float -> target:float -> p:float -> int

(** [selection_absolute ~big_n ~level ~half_width ~p] — minimal size for
    an {e absolute} half-width on the count ([half_width] in tuples):
    [n₀ = z²N²p(1−p)/h²], FPC-corrected the same way. *)
val selection_absolute : big_n:int -> level:float -> half_width:float -> p:float -> int

(** [equijoin ~level ~target profiles] — minimal common Bernoulli rate
    [q] such that the join estimator's normal CI half-width is at most
    [target·J], using the oracle variance from the two frequency
    profiles (bisection on [q]).  Returns the rate and the two expected
    sample sizes.
    @raise Invalid_argument on a zero-size join or bad parameters. *)
val equijoin :
  level:float ->
  target:float ->
  Join_variance.profile ->
  Join_variance.profile ->
  float * (float * float)

(** Expected tuples an SRSWOR plan of this fraction reads for the
    expression — a budgeting helper pairing with the planners above. *)
val plan_cost :
  Relational.Catalog.t -> fraction:float -> Relational.Expr.t -> float
