module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Tuple = Relational.Tuple
module Value = Relational.Value

type group = {
  key : Value.t list;
  estimate : Stats.Estimate.t;
  interval : Stats.Confidence.interval;
}

type result = {
  groups : group list;
  level : float;
  sample_size : int;
}

(* Front-end over the grouped strategy of {!Estplan}: the engine owns
   the shared SRSWOR draw, the blocked domain-independent tallies and
   the per-group binomial/expansion estimates; this module validates
   arguments, labels spans and re-shapes the rows. *)

let group_indices catalog ~relation ~by =
  if by = [] then invalid_arg "Group_count: empty group-by attribute list";
  let r = Catalog.find catalog relation in
  let schema = Relation.schema r in
  (r, List.map (fun a -> Relational.Schema.index_of schema a) by)

let contribution r attribute =
  let i = Relational.Schema.index_of (Relation.schema r) attribute in
  fun tuple ->
    match Tuple.get tuple i with Value.Null -> 0. | v -> Value.to_float v

(* Validation order matches the pre-IR code: level, then attribute
   resolution, then the sample size. *)
let check_level level =
  if level <= 0. || level >= 1. then invalid_arg "Group_count: level outside (0, 1)"

let check_n ~n ~big_n =
  if n <= 0 || n > big_n then invalid_arg "Group_count: sample size out of range"

let rows_to_groups rows =
  List.map
    (fun (row : Estplan.grouped_row) ->
      { key = row.group_key; estimate = row.group_estimate; interval = row.group_interval })
    rows

let estimate ?domains ?(metrics = Obs.Metrics.noop) rng catalog ~relation ~by ~n
    ?(level = 0.95) ?(where = Relational.Predicate.True) () =
  check_level level;
  let r, _ = group_indices catalog ~relation ~by in
  check_n ~n ~big_n:(Relation.cardinality r);
  Obs.Metrics.with_span metrics (Printf.sprintf "group-count %s" relation) @@ fun () ->
  let rows =
    Estplan.run_grouped ?domains ~metrics rng catalog
      (Estplan.grouped_plan catalog ~relation ~by ~n where)
      ~level
  in
  { groups = rows_to_groups rows; level; sample_size = n }

(* Goal-based entry: the goal resolves to the shared SRSWOR size over
   the relation's population (root-sampling strategy). *)
let estimate_with_goal ?domains ?metrics rng catalog ~relation ~by ~goal ?level ?where ()
    =
  let big_n = Relation.cardinality (Catalog.find catalog relation) in
  let n = Planner.size_of_goal ~population:big_n goal in
  estimate ?domains ?metrics rng catalog ~relation ~by ~n ?level ?where ()

let exact catalog ~relation ~by ?(where = Relational.Predicate.True) () =
  let r, indices = group_indices catalog ~relation ~by in
  let keep = Relational.Predicate.compile (Relation.schema r) where in
  Estplan.group_tally ~indices ~keep (Relation.tuples r)

let estimate_sum ?domains ?(metrics = Obs.Metrics.noop) rng catalog ~relation ~by
    ~attribute ~n ?(level = 0.95) ?(where = Relational.Predicate.True) () =
  check_level level;
  let r, _ = group_indices catalog ~relation ~by in
  check_n ~n ~big_n:(Relation.cardinality r);
  (* Resolve the summed attribute before any sampling, as the
     pre-IR code did. *)
  let (_ : Tuple.t -> float) = contribution r attribute in
  Obs.Metrics.with_span metrics (Printf.sprintf "group-sum %s" relation) @@ fun () ->
  let rows =
    Estplan.run_grouped ?domains ~metrics rng catalog
      (Estplan.grouped_plan catalog ~relation ~by ~sum_attribute:attribute ~n where)
      ~level
  in
  { groups = rows_to_groups rows; level; sample_size = n }

let exact_sum catalog ~relation ~by ~attribute ?(where = Relational.Predicate.True) () =
  let r, indices = group_indices catalog ~relation ~by in
  let keep = Relational.Predicate.compile (Relation.schema r) where in
  let value = contribution r attribute in
  Estplan.group_tally_sums ~indices ~keep ~value (Relation.tuples r)
  |> List.map (fun (key, (sum, _, _)) -> (key, sum))
