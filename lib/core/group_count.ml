module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Tuple = Relational.Tuple
module Value = Relational.Value
module Estimate = Stats.Estimate

type group = {
  key : Value.t list;
  estimate : Stats.Estimate.t;
  interval : Stats.Confidence.interval;
}

type result = {
  groups : group list;
  level : float;
  sample_size : int;
}

let compare_keys k1 k2 = List.compare Value.compare k1 k2

let group_indices catalog ~relation ~by =
  if by = [] then invalid_arg "Group_count: empty group-by attribute list";
  let r = Catalog.find catalog relation in
  let schema = Relation.schema r in
  (r, List.map (fun a -> Relational.Schema.index_of schema a) by)

let key_of indices tuple = List.map (fun i -> Tuple.get tuple i) indices

(* Parallel tallies run over fixed-size blocks, not per-domain chunks:
   the block decomposition — and with it the per-key merge order of
   partial aggregates — is independent of the domain count, so results
   are bit-identical whether tallied on 1 or N domains. *)
let tally_block = 8192

let blocked_tables ?domains ~per_block n =
  let nblocks = max 1 ((n + tally_block - 1) / tally_block) in
  Parallel.init ?domains nblocks (fun b ->
      let start = b * tally_block in
      per_block start (min tally_block (n - start)))

let tally ?domains ~indices ~keep tuples =
  let per_block start len =
    let table = Hashtbl.create 64 in
    for i = start to start + len - 1 do
      let t = tuples.(i) in
      if keep t then begin
        let key = key_of indices t in
        Hashtbl.replace table key (1 + Option.value (Hashtbl.find_opt table key) ~default:0)
      end
    done;
    table
  in
  let merged = Hashtbl.create 64 in
  Array.iter
    (fun table ->
      Hashtbl.iter
        (fun key count ->
          Hashtbl.replace merged key
            (count + Option.value (Hashtbl.find_opt merged key) ~default:0))
        table)
    (blocked_tables ?domains ~per_block (Array.length tuples));
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) merged []
  |> List.sort (fun (k1, _) (k2, _) -> compare_keys k1 k2)

let estimate ?domains ?(metrics = Obs.Metrics.noop) rng catalog ~relation ~by ~n
    ?(level = 0.95) ?(where = Relational.Predicate.True) () =
  if level <= 0. || level >= 1. then invalid_arg "Group_count: level outside (0, 1)";
  let r, indices = group_indices catalog ~relation ~by in
  let big_n = Relation.cardinality r in
  if n <= 0 || n > big_n then invalid_arg "Group_count: sample size out of range";
  let keep = Relational.Predicate.compile (Relation.schema r) where in
  Obs.Metrics.with_span metrics (Printf.sprintf "group-count %s" relation) @@ fun () ->
  let sample =
    Sampling.Srs.sample_without_replacement ~metrics rng ~n (Relation.tuples r)
  in
  let counts = Obs.Metrics.time metrics "tally" (fun () -> tally ?domains ~indices ~keep sample) in
  let k = List.length counts in
  let per_group_level = if k = 0 then level else 1. -. ((1. -. level) /. float_of_int k) in
  let groups =
    List.map
      (fun (key, hits) ->
        let estimate = Count_estimator.selection_of_counts ~big_n ~n ~hits in
        let estimate = { estimate with Estimate.label = "group-count" } in
        let interval =
          if Estimate.has_variance estimate then Estimate.ci ~level:per_group_level estimate
          else { Stats.Confidence.lo = 0.; hi = float_of_int big_n; level = per_group_level }
        in
        { key; estimate; interval })
      counts
  in
  { groups; level; sample_size = n }

let exact catalog ~relation ~by ?(where = Relational.Predicate.True) () =
  let r, indices = group_indices catalog ~relation ~by in
  let keep = Relational.Predicate.compile (Relation.schema r) where in
  tally ~indices ~keep (Relation.tuples r)

let contribution r attribute =
  let i = Relational.Schema.index_of (Relation.schema r) attribute in
  fun tuple ->
    match Tuple.get tuple i with Value.Null -> 0. | v -> Value.to_float v

(* Per-group sums of [value] over the given tuples, with the per-group
   sum of squares (needed for the expansion variance).  Blocked like
   {!tally}: per-block partials combine in block order, so a fixed seed
   gives the same sums on any domain count. *)
let tally_sums ?domains ~indices ~keep ~value tuples =
  let per_block start len =
    let table = Hashtbl.create 64 in
    for i = start to start + len - 1 do
      let t = tuples.(i) in
      if keep t then begin
        let key = key_of indices t in
        let y = value t in
        let sum, sum_sq, hits =
          Option.value (Hashtbl.find_opt table key) ~default:(0., 0., 0)
        in
        Hashtbl.replace table key (sum +. y, sum_sq +. (y *. y), hits + 1)
      end
    done;
    table
  in
  let merged = Hashtbl.create 64 in
  Array.iter
    (fun table ->
      Hashtbl.iter
        (fun key (sum, sum_sq, hits) ->
          let acc_sum, acc_sq, acc_hits =
            Option.value (Hashtbl.find_opt merged key) ~default:(0., 0., 0)
          in
          Hashtbl.replace merged key (acc_sum +. sum, acc_sq +. sum_sq, acc_hits + hits))
        table)
    (blocked_tables ?domains ~per_block (Array.length tuples));
  Hashtbl.fold (fun key totals acc -> (key, totals) :: acc) merged []
  |> List.sort (fun (k1, _) (k2, _) -> compare_keys k1 k2)

let estimate_sum ?domains ?(metrics = Obs.Metrics.noop) rng catalog ~relation ~by
    ~attribute ~n ?(level = 0.95) ?(where = Relational.Predicate.True) () =
  if level <= 0. || level >= 1. then invalid_arg "Group_count: level outside (0, 1)";
  let r, indices = group_indices catalog ~relation ~by in
  let big_n = Relation.cardinality r in
  if n <= 0 || n > big_n then invalid_arg "Group_count: sample size out of range";
  let keep = Relational.Predicate.compile (Relation.schema r) where in
  let value = contribution r attribute in
  Obs.Metrics.with_span metrics (Printf.sprintf "group-sum %s" relation) @@ fun () ->
  let sample =
    Sampling.Srs.sample_without_replacement ~metrics rng ~n (Relation.tuples r)
  in
  let sums =
    Obs.Metrics.time metrics "tally" (fun () -> tally_sums ?domains ~indices ~keep ~value sample)
  in
  let k = List.length sums in
  let per_group_level = if k = 0 then level else 1. -. ((1. -. level) /. float_of_int k) in
  let big_nf = float_of_int big_n and nf = float_of_int n in
  let groups =
    List.map
      (fun (key, (sum, sum_sq, _hits)) ->
        (* Expansion over per-tuple contributions: y for the group's
           tuples, 0 for everything else in the sample. *)
        let mean = sum /. nf in
        let point = big_nf *. mean in
        let variance =
          if n < 2 then Float.nan
          else begin
            let ss = sum_sq -. (nf *. mean *. mean) in
            big_nf *. big_nf *. (1. -. (nf /. big_nf)) *. (ss /. (nf -. 1.)) /. nf
          end
        in
        let estimate =
          Estimate.make ~variance ~label:"group-sum" ~status:Estimate.Unbiased
            ~sample_size:n point
        in
        let interval =
          if Estimate.has_variance estimate then
            Stats.Confidence.normal ~level:per_group_level ~point
              ~stderr:(Estimate.stderr estimate)
          else { Stats.Confidence.lo = Float.neg_infinity; hi = Float.infinity;
                 level = per_group_level }
        in
        { key; estimate; interval })
      sums
  in
  { groups; level; sample_size = n }

let exact_sum catalog ~relation ~by ~attribute ?(where = Relational.Predicate.True) () =
  let r, indices = group_indices catalog ~relation ~by in
  let keep = Relational.Predicate.compile (Relation.schema r) where in
  let value = contribution r attribute in
  tally_sums ~indices ~keep ~value (Relation.tuples r)
  |> List.map (fun (key, (sum, _, _)) -> (key, sum))
