(** Bootstrap resampling: variance and confidence intervals for any
    statistic of a sample, when no closed form is available.

    Nonparametric bootstrap: resample the observations with replacement
    [replicates] times, recompute the statistic, and read the spread of
    the replicate values.  Percentile intervals make no symmetry
    assumption; {!normal_interval} uses the bootstrap standard error
    inside a CLT interval.  For the COUNT estimators this is the
    assumption-free alternative to replicate groups (ablation A10
    compares their CI coverage). *)

type resample = {
  point : float;            (** statistic on the original sample *)
  replicates : float array; (** statistic on each bootstrap resample *)
}

(** [run rng ~replicates ~statistic sample] — [statistic] maps an array
    of observations to a number; it is called once on the original
    sample and once per resample.  The resample buffer is reused, so
    [statistic] must not retain its argument.

    [domains] (default 1): resampling runs on that many OCaml domains;
    every replicate draws from its own serially-split [Rng] stream, so
    the replicate values are bit-identical for any domain count.
    @raise Invalid_argument if the sample is empty or
    [replicates <= 0]. *)
val run :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  replicates:int ->
  statistic:('a array -> float) ->
  'a array ->
  resample

(** Bootstrap estimate of the statistic's variance (sample variance of
    the replicates). *)
val variance : resample -> float

(** Percentile interval: the (α/2, 1−α/2) quantiles of the
    replicates.
    @raise Invalid_argument if [level] outside (0, 1). *)
val percentile_interval : level:float -> resample -> Stats.Confidence.interval

(** Normal interval around the original point with the bootstrap
    standard error. *)
val normal_interval : level:float -> resample -> Stats.Confidence.interval

(** Bootstrap the selection COUNT estimator: SRSWOR sample of size [n]
    from relation [relation], statistic [N·(hits/n)], resampled
    [replicates] (default 200) times.  Returns the estimate (with
    bootstrap variance attached) and the percentile interval. *)
val selection_count :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  n:int ->
  ?replicates:int ->
  ?level:float ->
  Relational.Predicate.t ->
  Stats.Estimate.t * Stats.Confidence.interval

(** [selection_count_with_goal rng catalog ~relation ~goal predicate] —
    goal-based entry: the {!Planner.goal} resolves to the
    original-sample size ({!Planner.size_of_goal}, root-sampling
    strategy); resampling is unchanged.
    @raise Invalid_argument as {!Planner.fraction_of_goal}. *)
val selection_count_with_goal :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  goal:Planner.goal ->
  ?replicates:int ->
  ?level:float ->
  Relational.Predicate.t ->
  Stats.Estimate.t * Stats.Confidence.interval
