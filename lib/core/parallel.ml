let auto () = max 1 (Domain.recommended_domain_count ())

let resolve ?domains () =
  match domains with None -> 1 | Some d -> max 1 d

(* Split [n] items into at most [d] contiguous chunks of near-equal
   size: the first [n mod d] chunks get one extra item. *)
let chunks ~d n =
  let d = min d n in
  let base = n / d and extra = n mod d in
  List.init d (fun k ->
      let start = (k * base) + min k extra in
      let len = base + if k < extra then 1 else 0 in
      (start, len))

let chunked_init ?domains n f =
  if n < 0 then invalid_arg "Parallel.chunked_init: negative length";
  let d = resolve ?domains () in
  if d <= 1 || n <= 1 then f 0 n
  else begin
    match chunks ~d n with
    | [] -> [||]
    | (start0, len0) :: rest ->
      (* Spawn workers for the tail chunks, run the head chunk on the
         calling domain, then join in order.  Joining re-raises any
         worker exception. *)
      let workers =
        List.map (fun (start, len) -> Domain.spawn (fun () -> f start len)) rest
      in
      let head = f start0 len0 in
      Array.concat (head :: List.map Domain.join workers)
  end

let init ?domains n f =
  chunked_init ?domains n (fun start len -> Array.init len (fun i -> f (start + i)))

let map ?domains f xs =
  init ?domains (Array.length xs) (fun i -> f xs.(i))

let replicate_init ?domains rng n f =
  if n < 0 then invalid_arg "Parallel.replicate_init: negative replicate count";
  (* Children are split serially, in replicate order, before any domain
     starts: replicate i's stream and the parent's final state are both
     independent of the domain count. *)
  let children = Array.init n (fun _ -> Sampling.Rng.split rng) in
  init ?domains n (fun i -> f children.(i) i)
