module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Relation = Relational.Relation
module Eval = Relational.Eval
module Estimate = Stats.Estimate

module Metrics = Obs.Metrics

let classify expr =
  if Expr.has_dedup expr then Stats.Estimate.Consistent else Stats.Estimate.Unbiased

(* Metrics accounting convention, shared by every estimator here: the
   sampling/eval layers record their own counters via the threaded
   sink, replicated paths give each replicate a fresh [Metrics.child]
   sink (so domains never share a mutable sink) and absorb them in
   replicate order after the join — integer counters merge by addition,
   so totals are bit-identical for any domain count.  The parent
   generator's own draws (the serial [Rng.split]s) are recorded as a
   delta of its draw counter. *)

let with_replicate_sinks metrics groups f =
  let sinks = Array.init groups (fun _ -> Metrics.child metrics) in
  let result = f sinks in
  Array.iter (fun sink -> Metrics.absorb metrics sink) sinks;
  result

let scale_up ?(metrics = Metrics.noop) ?(columnar = true) rng catalog
    (plan : Sampling_plan.t) =
  let sampled, drawn =
    Metrics.time metrics "draw" (fun () -> Sampling_plan.draw ~metrics rng catalog plan)
  in
  (* The streaming engine avoids materializing intermediates — cheaper
     on product-heavy sample evaluations, identical counts. *)
  let count =
    Metrics.time metrics "eval" (fun () ->
        Relational.Physical.count_expr ~metrics ~columnar sampled plan.Sampling_plan.expr)
  in
  Estimate.make ~label:"scale-up"
    ~status:(classify plan.Sampling_plan.expr)
    ~sample_size:drawn
    (plan.Sampling_plan.scale *. float_of_int count)

let estimate ?(groups = 1) ?domains ?(metrics = Metrics.noop) ?(columnar = true) rng
    catalog ~fraction expr =
  if groups < 1 then invalid_arg "Count_estimator.estimate: groups must be >= 1";
  let status = classify expr in
  Metrics.with_span metrics
    (Printf.sprintf "estimate %s" (Relational.Parser.print_expr expr))
    (fun () ->
      if groups = 1 then begin
        let plan = Sampling_plan.make catalog ~fraction expr in
        let e = scale_up ~metrics ~columnar rng catalog plan in
        { e with Estimate.status }
      end
      else begin
        (* g independent replicates; the mean keeps the status of a single
           replicate and gains an honest variance estimate s²/g.  Each
           replicate runs on its own split stream, so the points (and the
           variance computed from them) are identical for any [domains]. *)
        let plan = Sampling_plan.make catalog ~fraction expr in
        let draws_before = Sampling.Rng.draws rng in
        let points =
          with_replicate_sinks metrics groups (fun sinks ->
              Parallel.replicate_init ?domains rng groups (fun child i ->
                  (scale_up ~metrics:sinks.(i) ~columnar child catalog plan)
                    .Estimate.point))
        in
        Metrics.add_rng_draws metrics (Sampling.Rng.draws rng - draws_before);
        let summary = Stats.Summary.of_array points in
        let variance = Stats.Summary.variance summary /. float_of_int groups in
        let drawn =
          groups * int_of_float (Float.round (Sampling_plan.expected_sample_size plan))
        in
        Estimate.make ~variance ~label:"scale-up (replicated)" ~status ~sample_size:drawn
          (Stats.Summary.mean summary)
      end)

let selection_of_counts ~big_n ~n ~hits =
  if n <= 0 || n > big_n then
    invalid_arg "Count_estimator.selection_of_counts: sample size out of range";
  if hits < 0 || hits > n then
    invalid_arg "Count_estimator.selection_of_counts: hits out of range";
  let big_nf = float_of_int big_n and nf = float_of_int n in
  let p_hat = float_of_int hits /. nf in
  let point = big_nf *. p_hat in
  let variance =
    if n < 2 then Float.nan
    else
      big_nf *. big_nf
      *. (1. -. (nf /. big_nf))
      *. p_hat *. (1. -. p_hat)
      /. (nf -. 1.)
  in
  Estimate.make ~variance ~label:"selection" ~status:Estimate.Unbiased ~sample_size:n point

let selection ?(metrics = Metrics.noop) ?(columnar = true) rng catalog ~relation ~n
    predicate =
  Metrics.with_span metrics (Printf.sprintf "selection %s" relation) (fun () ->
      let r = Catalog.find catalog relation in
      let hits =
        if columnar && Relational.Column.enabled () then begin
          (* Same index stream as the gather path, but the sampled rows
             are tested in place on the base relation's columnar view —
             no per-sample tuple materialization, and no index sort
             (counting is order-insensitive).  The explicit
             tuples-scanned bump keeps counter totals identical to the
             gather path, which records its gather as a scan. *)
          let indices =
            Sampling.Srs.indices_without_replacement ~metrics ~sorted:false rng ~n
              ~universe:(Relation.cardinality r)
          in
          Metrics.add_tuples metrics n;
          Relational.Kernel.count_indices (Relation.columnar r) predicate indices
        end
        else begin
          let sample = Sampling.Srs.relation_without_replacement ~metrics rng ~n r in
          let keep = Relational.Predicate.compile (Relation.schema sample) predicate in
          Relation.count keep sample
        end
      in
      selection_of_counts ~big_n:(Relation.cardinality r) ~n ~hits)

let single_join_point ?(metrics = Metrics.noop) ?(columnar = true) rng catalog ~left
    ~right ~on ~fraction =
  let rl = Catalog.find catalog left and rr = Catalog.find catalog right in
  let n1 =
    Sampling.Srs.size_of_fraction ~fraction (Relation.cardinality rl)
  and n2 =
    Sampling.Srs.size_of_fraction ~fraction (Relation.cardinality rr)
  in
  let s1 = Sampling.Srs.relation_without_replacement ~metrics rng ~n:n1 rl in
  let s2 = Sampling.Srs.relation_without_replacement ~metrics rng ~n:n2 rr in
  let sampled = Catalog.of_list [ ("l", s1); ("r", s2) ] in
  let j =
    Eval.count ~metrics ~columnar sampled
      (Expr.equijoin on (Expr.base "l") (Expr.base "r"))
  in
  let scale =
    float_of_int (Relation.cardinality rl) /. float_of_int n1
    *. (float_of_int (Relation.cardinality rr) /. float_of_int n2)
  in
  (scale *. float_of_int j, n1 + n2)

let equijoin ?(groups = 8) ?domains ?(metrics = Metrics.noop) ?(columnar = true) rng
    catalog ~left ~right ~on ~fraction =
  if groups < 1 then invalid_arg "Count_estimator.equijoin: groups must be >= 1";
  Metrics.with_span metrics (Printf.sprintf "equijoin %s %s" left right) (fun () ->
      if groups = 1 then begin
        let point, drawn =
          single_join_point ~metrics ~columnar rng catalog ~left ~right ~on ~fraction
        in
        Estimate.make ~label:"equijoin" ~status:Estimate.Unbiased ~sample_size:drawn point
      end
      else begin
        (* Each replicate runs at fraction/groups so the total tuples drawn
           match a single draw at [fraction]. *)
        let sub_fraction = fraction /. float_of_int groups in
        let draws_before = Sampling.Rng.draws rng in
        let results =
          with_replicate_sinks metrics groups (fun sinks ->
              Parallel.replicate_init ?domains rng groups (fun child i ->
                  single_join_point ~metrics:sinks.(i) ~columnar child catalog ~left
                    ~right ~on ~fraction:sub_fraction))
        in
        Metrics.add_rng_draws metrics (Sampling.Rng.draws rng - draws_before);
        let points = Array.map fst results in
        let drawn = Array.fold_left (fun acc (_, d) -> acc + d) 0 results in
        let summary = Stats.Summary.of_array points in
        let variance = Stats.Summary.variance summary /. float_of_int groups in
        Estimate.make ~variance ~label:"equijoin (replicated)" ~status:Estimate.Unbiased
          ~sample_size:drawn (Stats.Summary.mean summary)
      end)

let equijoin_indexed ?index ?(metrics = Metrics.noop) rng catalog ~left ~right ~on ~n =
  let left_attr, right_attr = on in
  let rl = Catalog.find catalog left in
  let big_n = Relation.cardinality rl in
  if n <= 0 || n > big_n then
    invalid_arg "Count_estimator.equijoin_indexed: sample size out of range";
  let index =
    match index with
    | Some index ->
      if Relational.Index.attributes index <> [ right_attr ] then
        invalid_arg "Count_estimator.equijoin_indexed: index on the wrong attribute";
      index
    | None -> Relational.Index.build (Catalog.find catalog right) ~attributes:[ right_attr ]
  in
  let key_pos = Relational.Schema.index_of (Relation.schema rl) left_attr in
  let sample = Sampling.Srs.sample_without_replacement ~metrics rng ~n (Relation.tuples rl) in
  (* Per-tuple degree is an exact lookup, so the estimator reduces to a
     mean expansion with the usual SRSWOR variance.  Each index lookup
     is one hash probe; zero degree is a miss. *)
  let degrees =
    Array.map
      (fun t ->
        let d = Relational.Index.count index [ Relational.Tuple.get t key_pos ] in
        if d > 0 then Metrics.probe_hit metrics else Metrics.probe_miss metrics;
        float_of_int d)
      sample
  in
  let summary = Stats.Summary.of_array degrees in
  let big_nf = float_of_int big_n and nf = float_of_int n in
  let point = big_nf *. Stats.Summary.mean summary in
  let variance =
    if n < 2 then Float.nan
    else
      big_nf *. big_nf *. (1. -. (nf /. big_nf)) *. Stats.Summary.variance summary /. nf
  in
  Estimate.make ~variance ~label:"equijoin (indexed)" ~status:Estimate.Unbiased
    ~sample_size:n point

(* Set-operation support.  Operands must be duplicate-free: the
   intersection estimator counts value matches, which only equals the
   set intersection size when every value appears at most once. *)

let checked_set catalog name =
  let r = Catalog.find catalog name in
  if not (Relation.is_set r) then
    invalid_arg
      (Printf.sprintf "Count_estimator: relation %S contains duplicates; set operators need sets"
         name);
  r

(* Intersection size estimate with analytic variance.

   X = |S_A ∩ S_B| is a sum over the K = |A ∩ B| common tuples of
   I_A(v)·I_B(v).  With SRSWOR, P(v ∈ S_A) = p1 = n1/N1 and
   P(v,w ∈ S_A) = r1 = n1(n1−1)/(N1(N1−1)), so
     E[X]  = K·p1·p2
     Var X = K·p1p2(1−p1p2) + K(K−1)(r1·r2 − p1²p2²).
   The estimator is K̂ = X/(p1 p2); its variance plugs K̂ into the
   formula. *)
let intersection_core ?(metrics = Metrics.noop) rng ~left_rel ~right_rel ~fraction =
  let n1 = Sampling.Srs.size_of_fraction ~fraction (Relation.cardinality left_rel) in
  let n2 = Sampling.Srs.size_of_fraction ~fraction (Relation.cardinality right_rel) in
  let s1 = Sampling.Srs.relation_without_replacement ~metrics rng ~n:n1 left_rel in
  let s2 = Sampling.Srs.relation_without_replacement ~metrics rng ~n:n2 right_rel in
  let sampled = Catalog.of_list [ ("l", s1); ("r", s2) ] in
  let x = Eval.count ~metrics sampled (Expr.inter (Expr.base "l") (Expr.base "r")) in
  let big_n1 = float_of_int (Relation.cardinality left_rel) in
  let big_n2 = float_of_int (Relation.cardinality right_rel) in
  let n1f = float_of_int n1 and n2f = float_of_int n2 in
  let p1 = n1f /. big_n1 and p2 = n2f /. big_n2 in
  let pair_prob nf big_nf =
    if big_nf < 2. then 1. else nf *. (nf -. 1.) /. (big_nf *. (big_nf -. 1.))
  in
  let r1 = pair_prob n1f big_n1 and r2 = pair_prob n2f big_n2 in
  let k_hat = float_of_int x /. (p1 *. p2) in
  let var_x =
    (k_hat *. p1 *. p2 *. (1. -. (p1 *. p2)))
    +. (k_hat *. Float.max 0. (k_hat -. 1.) *. ((r1 *. r2) -. (p1 *. p1 *. p2 *. p2)))
  in
  let variance = Float.max 0. (var_x /. (p1 *. p1 *. p2 *. p2)) in
  (k_hat, variance, n1 + n2)

let intersection ?(metrics = Metrics.noop) rng catalog ~left ~right ~fraction =
  let left_rel = checked_set catalog left and right_rel = checked_set catalog right in
  let point, variance, drawn = intersection_core ~metrics rng ~left_rel ~right_rel ~fraction in
  Estimate.make ~variance ~label:"intersection" ~status:Estimate.Unbiased
    ~sample_size:drawn point

let union ?(metrics = Metrics.noop) rng catalog ~left ~right ~fraction =
  let left_rel = checked_set catalog left and right_rel = checked_set catalog right in
  let inter_point, variance, drawn =
    intersection_core ~metrics rng ~left_rel ~right_rel ~fraction
  in
  let point =
    float_of_int (Relation.cardinality left_rel)
    +. float_of_int (Relation.cardinality right_rel)
    -. inter_point
  in
  Estimate.make ~variance ~label:"union" ~status:Estimate.Unbiased ~sample_size:drawn point

let difference ?(metrics = Metrics.noop) rng catalog ~left ~right ~fraction =
  let left_rel = checked_set catalog left and right_rel = checked_set catalog right in
  let inter_point, variance, drawn =
    intersection_core ~metrics rng ~left_rel ~right_rel ~fraction
  in
  let point = float_of_int (Relation.cardinality left_rel) -. inter_point in
  Estimate.make ~variance ~label:"difference" ~status:Estimate.Unbiased ~sample_size:drawn
    point
