module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Relation = Relational.Relation
module Metrics = Obs.Metrics

(* Thin strategy front-end: every entry point compiles its arguments to
   an {!Estplan} plan and delegates draw/evaluate/scale/variance to the
   IR engine.  This module owns only argument validation (with its
   historical messages), span labels and strategy choice. *)

let classify expr =
  if Expr.has_dedup expr then Stats.Estimate.Consistent else Stats.Estimate.Unbiased

let scale_up ?metrics ?columnar rng catalog (plan : Sampling_plan.t) =
  Estplan.run ?metrics ?columnar rng catalog (Estplan.of_sampling_plan plan)

let estimate ?(groups = 1) ?domains ?(metrics = Metrics.noop) ?(columnar = true) rng
    catalog ~fraction expr =
  if groups < 1 then invalid_arg "Count_estimator.estimate: groups must be >= 1";
  Metrics.with_span metrics
    (Printf.sprintf "estimate %s" (Relational.Parser.print_expr expr))
    (fun () ->
      Estplan.run ?domains ~metrics ~columnar rng catalog
        (Estplan.compile ~groups catalog ~fraction expr))

(* Goal-based entry: the caller states what it wants (a budget or a CI
   width) and the optimizing planner decides where the sampling
   operator goes.  [optimize:false] — or the [RAESTAT_NO_OPTIMIZE]
   kill switch — pins the historical root-sampling strategy, which is
   byte-identical to {!estimate} at the resolved fraction. *)
let estimate_with_goal ?(groups = 1) ?domains ?(metrics = Metrics.noop)
    ?(columnar = true) ?(optimize = true) rng catalog ~goal expr =
  if groups < 1 then
    invalid_arg "Count_estimator.estimate_with_goal: groups must be >= 1";
  let population =
    List.fold_left
      (fun acc name -> acc + Relation.cardinality (Catalog.find catalog name))
      0 (Expr.leaves expr)
  in
  let fraction = Planner.fraction_of_goal ~population goal in
  if optimize && Planner.optimize_enabled () then begin
    let choice = Planner.choose_sampling ~metrics ~groups catalog ~fraction expr in
    let est =
      Metrics.with_span metrics
        (Printf.sprintf "estimate %s" (Relational.Parser.print_expr expr))
        (fun () ->
          Estplan.run ?domains ~metrics ~columnar rng catalog choice.Planner.chosen)
    in
    (est, Some choice)
  end
  else (estimate ~groups ?domains ~metrics ~columnar rng catalog ~fraction expr, None)

let selection_of_counts ~big_n ~n ~hits =
  if (n <= 0 && big_n > 0) || n < 0 || n > big_n then
    invalid_arg "Count_estimator.selection_of_counts: sample size out of range";
  if hits < 0 || hits > n then
    invalid_arg "Count_estimator.selection_of_counts: hits out of range";
  Estplan.binomial_estimate ~big_n ~n ~hits ()

let selection ?(metrics = Metrics.noop) ?(columnar = true) rng catalog ~relation ~n
    predicate =
  Metrics.with_span metrics (Printf.sprintf "selection %s" relation) (fun () ->
      Estplan.run ~metrics ~columnar rng catalog
        (Estplan.selection_plan catalog ~relation ~n predicate))

let equijoin ?(groups = 8) ?domains ?(metrics = Metrics.noop) ?(columnar = true) rng
    catalog ~left ~right ~on ~fraction =
  if groups < 1 then invalid_arg "Count_estimator.equijoin: groups must be >= 1";
  Metrics.with_span metrics (Printf.sprintf "equijoin %s %s" left right) (fun () ->
      Estplan.run ?domains ~metrics ~columnar rng catalog
        (Estplan.equijoin_plan catalog ~left ~right ~on ~fraction ~groups))

let equijoin_indexed ?index ?(metrics = Metrics.noop) rng catalog ~left ~right ~on ~n =
  let left_attr, right_attr = on in
  let rl = Catalog.find catalog left in
  let big_n = Relation.cardinality rl in
  if n <= 0 || n > big_n then
    invalid_arg "Count_estimator.equijoin_indexed: sample size out of range";
  let index =
    match index with
    | Some index ->
      if Relational.Index.attributes index <> [ right_attr ] then
        invalid_arg "Count_estimator.equijoin_indexed: index on the wrong attribute";
      index
    | None ->
      Relational.Index.build (Catalog.find catalog right) ~attributes:[ right_attr ]
  in
  let key_pos = Relational.Schema.index_of (Relation.schema rl) left_attr in
  let degree t = Relational.Index.count index [ Relational.Tuple.get t key_pos ] in
  Estplan.run_indexed_degree ~metrics rng catalog
    (Estplan.indexed_join_plan catalog ~left ~right ~on ~n)
    ~degree

(* Set-operation support.  Operands must be duplicate-free: the
   intersection estimator counts value matches, which only equals the
   set intersection size when every value appears at most once. *)

let checked_set catalog name =
  let r = Catalog.find catalog name in
  if not (Relation.is_set r) then
    invalid_arg
      (Printf.sprintf
         "Count_estimator: relation %S contains duplicates; set operators need sets"
         name);
  r

let set_estimate op ~metrics rng catalog ~left ~right ~fraction =
  let (_ : Relation.t) = checked_set catalog left
  and (_ : Relation.t) = checked_set catalog right in
  Estplan.run ~metrics rng catalog (Estplan.set_plan catalog ~op ~left ~right ~fraction)

let intersection ?(metrics = Metrics.noop) rng catalog ~left ~right ~fraction =
  set_estimate Estplan.Inter_size ~metrics rng catalog ~left ~right ~fraction

let union ?(metrics = Metrics.noop) rng catalog ~left ~right ~fraction =
  set_estimate Estplan.Union_size ~metrics rng catalog ~left ~right ~fraction

let difference ?(metrics = Metrics.noop) rng catalog ~left ~right ~fraction =
  set_estimate Estplan.Diff_size ~metrics rng catalog ~left ~right ~fraction
