(** The estimation-plan IR: one explicit physical plan language that
    every estimator in the library compiles to, and one execution
    engine that runs it.

    A plan is a tree of {!node}s — each a paper operator (sampled scan,
    selection, equijoin, product, set operator, distinct, cluster/page
    leaf, stratified leaf…) annotated with its {!mode} (how that node's
    input is sampled), its cumulative scale factor, its unbiasedness
    status, and a {!Moments} accumulator fed by the engine as estimates
    are observed.  A {!strategy} names the paper's estimation rule the
    engine applies at the root (plain scale-up, replicated scale-up,
    closed-form binomial selection, cluster expansion, stratified
    expansion, bootstrap resampling, indexed degree expansion, set
    membership).

    The compile pipeline for expression estimators is
    [Expr.t] → {!Relational.Optimizer.optimize} (optional) →
    {!Sampling_plan} (per-occurrence leaf annotation) →
    [Estplan.of_sampling_plan] — see THEORY.md §17 for the IR grammar
    and the per-node moment-propagation rules.

    {2 Engine contract}

    The engine owns every draw → evaluate → scale → variance pipeline:
    it threads split RNG streams ({!Parallel.replicate_init}, serial
    split order), per-replicate {!Obs.Metrics} child sinks absorbed in
    replicate order, [?domains] replicate parallelism and the columnar
    kernels, so estimates, CIs and counter totals are bit-identical for
    any domain count and any [RAESTAT_NO_COLUMNAR] setting.  Estimator
    modules are thin strategy front-ends over plan constructors and
    [run_*] entry points. *)

(** Per-operator estimator status, per the PODS'88 analysis: an
    [Unbiased] node admits an exact scale-up expectation; a
    [Consistent_only] node (dedup semantics anywhere at or below it in
    a scale-up plan) only converges as the sampling fraction → 1. *)
type unbiasedness =
  | Unbiased
  | Consistent_only

val status_to_estimate : unbiasedness -> Stats.Estimate.status

val unbiasedness_to_string : unbiasedness -> string

(** How a node's input is obtained.  Interior nodes are [Derived];
    leaves carry the sampling design the engine executes. *)
type mode =
  | Derived                                     (** computed from children *)
  | Exact of { population : int }               (** full scan, no sampling *)
  | Srswor of { n : int; population : int }
  | Bernoulli of { p : float; population : int }
  | Page_srswor of { m : int; pages : int; population : int }
      (** cluster sampling: [m] of [pages] whole pages *)
  | Stratified_srswor of { n : int; population : int }
      (** proportionally-allocated SRSWOR inside key strata *)
  | Prefix of { batch : int; population : int }
      (** sequential: growing prefix of a random permutation *)
  | Resampled of { n : int; population : int; replicates : int }
      (** SRSWOR base sample, bootstrap-resampled with replacement *)

(** Plan operators.  The relational subset mirrors {!Relational.Expr}
    so scale-up plans reconstruct their evaluation expression exactly. *)
type op =
  | Scan of { relation : string; alias : string; occurrence : int }
  | Select of Relational.Predicate.t
  | Project of string list
  | Dedup
  | Product
  | Equijoin of (string * string) list
  | Theta_join of Relational.Predicate.t
  | Union
  | Inter
  | Diff
  | Rename of (string * string) list
  | Aggregate of string list * (Relational.Expr.agg * string) list
  | Group_by of string list   (** grouped-estimate root (group-count / group-sum) *)

(** Per-node moment accumulator: every estimate the engine observes at
    a node feeds its first and second moments.  Replicated runs observe
    one point per replicate; closed-form strategies record their
    analytic (mean, variance) directly. *)
module Moments : sig
  type t

  val count : t -> int

  (** @raise Invalid_argument when no observation was recorded. *)
  val mean : t -> float

  (** Sample variance of the observed points (0 with fewer than two
      observations), or the analytic variance for closed-form rules. *)
  val variance : t -> float

  (** Raw second moment E[X²] implied by {!mean} and {!variance}. *)
  val second_moment : t -> float
end

type node = {
  id : int;                   (** preorder index, stable per plan *)
  op : op;
  mode : mode;
  scale : float;              (** cumulative scale-up factor of the subtree *)
  status : unbiasedness;
  moments : Moments.t;
  children : node list;
}

type set_op =
  | Inter_size
  | Union_size
  | Diff_size

(** The estimation rule the engine applies at the root. *)
type strategy =
  | Scale_up of { groups : int }
      (** draw → evaluate → scale; replicated with group variance when
          [groups > 1] *)
  | Direct_selection
      (** closed-form finite-population binomial over one SRSWOR leaf *)
  | Sequential_selection of { target : float; level : float; batch : int }
  | Cluster_expansion
  | Stratified_expansion
  | Bootstrap_resampling of { replicates : int }
  | Indexed_degree
  | Set_membership of set_op
  | Grouped of { sum_attribute : string option }
      (** per-group binomial (count) or expansion (sum) estimates over
          one shared SRSWOR draw *)

val strategy_to_string : strategy -> string

type t = private {
  root : node;
  strategy : strategy;
  label : string;                       (** estimator label for results *)
  splan : Sampling_plan.t option;       (** leaf annotation, scale-up family *)
}

(** {1 Compilation} *)

(** Lower an annotated {!Sampling_plan} to the IR (scale-up family). *)
val of_sampling_plan :
  ?groups:int -> ?label:string -> Sampling_plan.t -> t

(** [compile catalog ~fraction expr] — the full pipeline for expression
    estimators: optionally {!Relational.Optimizer.optimize}, annotate
    every base-relation occurrence with an SRSWOR of [fraction]
    ({!Sampling_plan.make}), lower to the IR.  [optimize] defaults to
    [false]: rewrites preserve the estimate (see the rewrite-invariance
    tests) but the unrewritten plan is the historical contract.
    @raise Invalid_argument on a bad fraction or an empty leaf. *)
val compile :
  ?groups:int ->
  ?optimize:bool ->
  ?label:string ->
  Relational.Catalog.t ->
  fraction:float ->
  Relational.Expr.t ->
  t

(** Two-leaf equijoin plan at the replicate sub-fraction
    ([fraction / groups] when [groups > 1]), as executed by
    {!Count_estimator.equijoin}. *)
val equijoin_plan :
  Relational.Catalog.t ->
  left:string ->
  right:string ->
  on:(string * string) list ->
  fraction:float ->
  groups:int ->
  t

val selection_plan :
  Relational.Catalog.t -> relation:string -> n:int -> Relational.Predicate.t -> t

val sequential_plan :
  Relational.Catalog.t ->
  relation:string ->
  target:float ->
  level:float ->
  batch:int ->
  Relational.Predicate.t ->
  t

val cluster_plan :
  Relational.Paged.t -> m:int -> ?predicate:Relational.Predicate.t -> unit -> t

val stratified_plan :
  Relational.Catalog.t -> relation:string -> n:int -> Relational.Predicate.t -> t

val bootstrap_plan :
  Relational.Catalog.t ->
  relation:string ->
  n:int ->
  replicates:int ->
  Relational.Predicate.t ->
  t

val indexed_join_plan :
  Relational.Catalog.t ->
  left:string ->
  right:string ->
  on:(string * string) ->
  n:int ->
  t

val set_plan :
  Relational.Catalog.t -> op:set_op -> left:string -> right:string -> fraction:float -> t

val grouped_plan :
  Relational.Catalog.t ->
  relation:string ->
  by:string list ->
  ?sum_attribute:string ->
  n:int ->
  Relational.Predicate.t ->
  t

(** {1 The engine} *)

(** Draw the plan's leaf samples (leaves in left-to-right order, one
    sample per occurrence) into a fresh catalog binding every alias;
    returns the total tuples drawn.  Scale-up family only. *)
val draw :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  t ->
  Relational.Catalog.t * int

(** Alternative supplier of a [Direct_selection] plan's sample-index
    set: called with the draw size, the base-relation cardinality and
    a [draw] thunk performing the normal SRSWOR draw from the run's
    RNG.  A source that returns a cached [draw] result keyed on
    (seed, n, universe) yields bit-identical estimates — the draw is a
    pure function of those — while skipping the draw work.  The serve
    daemon's warm backing-sample cache is the intended implementation;
    the returned array is read-only shared state and must not be
    mutated. *)
type index_source = n:int -> universe:int -> (unit -> int array) -> int array

(** Run a [Scale_up], [Direct_selection] or [Set_membership] plan.
    [Scale_up] with [groups > 1] replicates on split streams (serial
    split order; optionally across [?domains] OCaml domains) and reports
    the replicate-spread variance s²/g.  [index_source] (default:
    draw fresh) substitutes the SRSWOR index draw of a
    [Direct_selection] columnar run; other strategies ignore it.
    @raise Invalid_argument if the plan's strategy needs a dedicated
    runner ({!run_cluster}, {!run_sequential}, …). *)
val run :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  ?columnar:bool ->
  ?index_source:index_source ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  t ->
  Stats.Estimate.t

(** The paper's closed-form selection rule: scale-up of a binomial hit
    count over an SRSWOR of [n] from [big_n], with the exact
    finite-population variance ([nan] when [n < 2]).
    @raise Invalid_argument when sizes are out of range. *)
val binomial_estimate :
  ?label:string -> big_n:int -> n:int -> hits:int -> unit -> Stats.Estimate.t

type sequential_step = {
  step_n : int;
  step_point : float;
  step_half_width : float;
}

(** Run a [Sequential_selection] plan: batches of a random permutation
    prefix until the relative half-width target is met.  Returns the
    final estimate, whether the target was reached, and the batch
    trajectory. *)
val run_sequential :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  t ->
  Stats.Estimate.t * bool * sequential_step list

(** Run a [Cluster_expansion] plan over the paged relation it was
    compiled from: draws [m] whole pages, applies [measure] per page and
    expands by [M/m].  Returns (estimate, pages read, tuples read). *)
val run_cluster :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Paged.t ->
  t ->
  measure:(Relational.Tuple.t array -> float) ->
  Stats.Estimate.t * int * int

(** Run a [Stratified_expansion] plan: proportional SRSWOR per [key]
    stratum, per-stratum binomial expansion summed with per-stratum
    variances.  Returns the estimate and per-stratum
    (key, population, allocated). *)
val run_stratified :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  t ->
  key:(Relational.Tuple.t -> string) ->
  Stats.Estimate.t * (string * int * int) list

(** Resampling core shared with {!Bootstrap.run}: one split stream per
    replicate (serial order), per-replicate metrics sinks absorbed in
    replicate order, chunked over [?domains]. *)
val bootstrap_replicates :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  replicates:int ->
  statistic:('a array -> float) ->
  'a array ->
  float array

(** Run a [Bootstrap_resampling] plan: SRSWOR base sample, scale-up
    statistic over resampled hit indicators, percentile interval at
    [level] (clamped to non-negative counts). *)
val run_bootstrap :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  t ->
  level:float ->
  Stats.Estimate.t * Stats.Confidence.interval

(** Run an [Indexed_degree] plan: SRSWOR of the left leaf, [degree] per
    sampled tuple (a hash probe, recorded hit/miss on zero), mean
    expansion with the SRSWOR variance. *)
val run_indexed_degree :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  t ->
  degree:(Relational.Tuple.t -> int) ->
  Stats.Estimate.t

type grouped_row = {
  group_key : Relational.Value.t list;
  group_estimate : Stats.Estimate.t;
  group_interval : Stats.Confidence.interval;
}

(** Run a grouped plan ([Group_by] root): one SRSWOR draw, blocked
    domain-independent tally, per-group binomial (count) or expansion
    (sum) estimates with Bonferroni-adjusted intervals at [level]. *)
val run_grouped :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  t ->
  level:float ->
  grouped_row list

(** {2 Shared grouped-tally kernels}

    Blocked tallies over fixed-size blocks so the per-key merge order —
    and with it every float sum — is independent of the domain count.
    Also used by the exact group-by baselines. *)

val group_tally :
  ?domains:int ->
  indices:int list ->
  keep:(Relational.Tuple.t -> bool) ->
  Relational.Tuple.t array ->
  (Relational.Value.t list * int) list

val group_tally_sums :
  ?domains:int ->
  indices:int list ->
  keep:(Relational.Tuple.t -> bool) ->
  value:(Relational.Tuple.t -> float) ->
  Relational.Tuple.t array ->
  (Relational.Value.t list * (float * float * int)) list

(** {1 Inspection / explain} *)

(** Expected total sampled tuples per execution of the plan. *)
val expected_sample_size : t -> float

val node_count : t -> int

(** Population and sample size a mode advertises, when it has them. *)
val mode_sizes : mode -> (int * int) option

val op_to_string : op -> string

val mode_to_string : mode -> string

(** Render the plan as a stable indented tree: one node per line with
    its operator, sampling mode (population / sample size), scale
    factor and unbiasedness status — the [raestat explain] format. *)
val render : t -> string

(** The same tree as JSON (schema ["raestat-explain/1"]). *)
val to_json : t -> string
