(** Sequential (adaptive) sampling: keep drawing until the estimate is
    precise enough.

    Two designs from the paper's framework:

    - {!selection}: grow an SRSWOR of a single relation batch by batch
      (a random permutation prefix is an SRSWOR of any size) until the
      normal-approximation CI half-width divided by the point estimate
      falls below [target], or the whole relation has been read.

    - {!two_phase}: for arbitrary expressions — a pilot draw at a small
      fraction estimates the variance (by replicate groups), then the
      [1/√n] law sizes the final draw for the requested precision. *)

type trajectory_point = {
  n : int;              (** tuples examined so far *)
  point : float;        (** running estimate *)
  half_width : float;   (** CI half-width at [level] *)
}

type result = {
  estimate : Stats.Estimate.t;
  reached_target : bool;  (** false when the population was exhausted first *)
  trajectory : trajectory_point list;  (** one entry per batch, in order *)
}

(** [selection rng catalog ~relation ~target ?level ?batch predicate]:
    [target] is the requested relative half-width (e.g. 0.1 for ±10%),
    [level] the confidence level (default 0.95), [batch] the batch size
    (default 100; at least 2 batches are always taken).
    @raise Invalid_argument on a non-positive target, batch or level
    outside (0, 1). *)
val selection :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  target:float ->
  ?level:float ->
  ?batch:int ->
  Relational.Predicate.t ->
  result

(** [two_phase rng catalog ~target ?level ?pilot_fraction ?groups e]:
    pilot at [pilot_fraction] (default 0.01) with [groups] replicates
    (default 5), then one final replicated estimate sized by the pilot
    variance.  The trajectory holds the pilot and final points.
    [domains] parallelizes both phases' replicates (see
    {!Count_estimator.estimate}; bit-identical for any domain count). *)
val two_phase :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  target:float ->
  ?level:float ->
  ?pilot_fraction:float ->
  ?groups:int ->
  Relational.Expr.t ->
  result

(** {1 Goal-based entries}

    {!Planner.goal} translations: a [Ci_width] goal is this module's
    native contract — the width is interpreted as the {e relative}
    half-width target at the goal's own level (the [level] argument is
    ignored).  A budget goal fixes the sample size up front
    ({!Planner.size_of_goal}), so the adaptive walk degenerates to one
    fixed-size root-sampling draw: [reached_target] is [true] (the
    budget was spent) and the trajectory holds that single point, with
    its half-width at [level] (default 0.95). *)

val selection_with_goal :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  goal:Planner.goal ->
  ?level:float ->
  ?batch:int ->
  Relational.Predicate.t ->
  result

val two_phase_with_goal :
  ?domains:int ->
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  goal:Planner.goal ->
  ?level:float ->
  ?pilot_fraction:float ->
  ?groups:int ->
  Relational.Expr.t ->
  result
