module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Estimate = Stats.Estimate

type trajectory_point = {
  n : int;
  point : float;
  half_width : float;
}

type result = {
  estimate : Stats.Estimate.t;
  reached_target : bool;
  trajectory : trajectory_point list;
}

let check_common ~target ~level =
  if target <= 0. then invalid_arg "Sequential: target must be positive";
  if level <= 0. || level >= 1. then invalid_arg "Sequential: level outside (0, 1)"

let selection ?(metrics = Obs.Metrics.noop) rng catalog ~relation ~target ?(level = 0.95)
    ?(batch = 100) predicate =
  check_common ~target ~level;
  if batch <= 0 then invalid_arg "Sequential.selection: batch must be positive";
  Obs.Metrics.with_span metrics (Printf.sprintf "sequential %s" relation) (fun () ->
      (* The batched permutation-prefix loop lives in the IR engine;
         this front-end only validates, labels the span and re-shapes
         the trajectory. *)
      let estimate, reached_target, steps =
        Estplan.run_sequential ~metrics rng catalog
          (Estplan.sequential_plan catalog ~relation ~target ~level ~batch predicate)
      in
      let trajectory =
        List.map
          (fun (s : Estplan.sequential_step) ->
            { n = s.step_n; point = s.step_point; half_width = s.step_half_width })
          steps
      in
      { estimate; reached_target; trajectory })

let two_phase ?domains ?(metrics = Obs.Metrics.noop) rng catalog ~target ?(level = 0.95)
    ?(pilot_fraction = 0.01) ?(groups = 5) expr =
  check_common ~target ~level;
  if pilot_fraction <= 0. || pilot_fraction > 1. then
    invalid_arg "Sequential.two_phase: pilot_fraction outside (0, 1]";
  if groups < 2 then invalid_arg "Sequential.two_phase: need at least 2 groups";
  let z = Stats.Confidence.z_value ~level in
  let pilot =
    Obs.Metrics.with_span metrics "pilot" (fun () ->
        Count_estimator.estimate ~groups ?domains ~metrics rng catalog
          ~fraction:pilot_fraction expr)
  in
  let pilot_half_width = z *. Estimate.stderr pilot in
  let pilot_point =
    {
      n = pilot.Estimate.sample_size;
      point = pilot.Estimate.point;
      half_width = pilot_half_width;
    }
  in
  if pilot.Estimate.point > 0. && pilot_half_width /. pilot.Estimate.point <= target then
    { estimate = pilot; reached_target = true; trajectory = [ pilot_point ] }
  else begin
    (* Variance of the scale-up estimator shrinks like 1/fraction (each
       replicate's sample grows linearly), so size the final fraction by
       the ratio of the pilot's squared precision to the target's. *)
    let rel =
      if pilot.Estimate.point > 0. then pilot_half_width /. pilot.Estimate.point
      else Float.infinity
    in
    let blow_up =
      if Float.is_finite rel then (rel /. target) ** 2. else 1. /. pilot_fraction
    in
    let final_fraction = Float.min 1. (pilot_fraction *. blow_up) in
    let final =
      Obs.Metrics.with_span metrics "final" (fun () ->
          Count_estimator.estimate ~groups ?domains ~metrics rng catalog
            ~fraction:final_fraction expr)
    in
    let final_half_width = z *. Estimate.stderr final in
    let final_point =
      {
        n = pilot.Estimate.sample_size + final.Estimate.sample_size;
        point = final.Estimate.point;
        half_width = final_half_width;
      }
    in
    let reached_target =
      final.Estimate.point > 0. && final_half_width /. final.Estimate.point <= target
    in
    { estimate = final; reached_target; trajectory = [ pilot_point; final_point ] }
  end

(* Goal-based entries.  A CI-width goal is this module's native
   contract (the width is the relative half-width target); a budget
   goal fixes the sample size up front, so the walk degenerates to one
   fixed-size draw — the goal (spend the budget) is met by
   construction. *)

let fixed_size_result ~level ~n estimate =
  let z = Stats.Confidence.z_value ~level in
  let half_width =
    if Estimate.has_variance estimate then z *. Estimate.stderr estimate
    else Float.infinity
  in
  {
    estimate;
    reached_target = true;
    trajectory = [ { n; point = estimate.Estimate.point; half_width } ];
  }

let selection_with_goal ?metrics rng catalog ~relation ~goal ?(level = 0.95) ?batch
    predicate =
  match (goal : Planner.goal) with
  | Ci_width { width; level } ->
    selection ?metrics rng catalog ~relation ~target:width ~level ?batch predicate
  | (Budget_fraction _ | Budget_tuples _) as goal ->
    let big_n = Relation.cardinality (Catalog.find catalog relation) in
    let n = Planner.size_of_goal ~population:big_n goal in
    let estimate = Count_estimator.selection ?metrics rng catalog ~relation ~n predicate in
    fixed_size_result ~level ~n estimate

let two_phase_with_goal ?domains ?metrics rng catalog ~goal ?(level = 0.95)
    ?pilot_fraction ?(groups = 5) expr =
  match (goal : Planner.goal) with
  | Ci_width { width; level } ->
    two_phase ?domains ?metrics rng catalog ~target:width ~level ?pilot_fraction ~groups
      expr
  | (Budget_fraction _ | Budget_tuples _) as goal ->
    if groups < 2 then invalid_arg "Sequential.two_phase: need at least 2 groups";
    let population =
      List.fold_left
        (fun acc name -> acc + Relation.cardinality (Catalog.find catalog name))
        0
        (Relational.Expr.leaves expr)
    in
    let fraction = Planner.fraction_of_goal ~population goal in
    let estimate =
      Count_estimator.estimate ~groups ?domains ?metrics rng catalog ~fraction expr
    in
    fixed_size_result ~level ~n:estimate.Estimate.sample_size estimate
