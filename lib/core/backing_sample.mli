(** Maintained ("backing") sample: a uniform sample of a relation kept
    up to date under inserts and deletes, so estimates never touch the
    base data at query time (Gibbons–Matias style).

    Inserts feed a reservoir (every inserted tuple gets an id, the
    reservoir keeps a uniform subset of the {e live} ids).  Deleting an
    id removes it from the sample if present — the survivors remain a
    uniform sample of the surviving population, at a reduced sample
    size.  Holes left by deletions are {e not} refilled eagerly (that
    would admit newcomers with probability 1 and bias the sample toward
    post-deletion arrivals): later inserts keep the reservoir's
    admission rate, taking over a hole only when their uniformly drawn
    slot lands on one, so the sample stays unbiased at the cost of
    erosion.  When deletions have eroded it below a threshold the owner
    should rebuild from a scan ({!needs_rescan}), exactly as
    Gibbons–Matias prescribe. *)

type t

type id = int

(** [create ?metrics rng ~capacity] — target sample size.  When
    [metrics] is supplied, maintenance is accounted under the real-work
    rules: one [maintenance_ops] tick per insert/delete, [rng_draws]
    for admission coins, [tuples_scanned] for estimate and rescan
    passes.
    @raise Invalid_argument if [capacity <= 0]. *)
val create :
  ?metrics:Obs.Metrics.t ->
  Sampling.Rng.t ->
  capacity:int ->
  schema:Relational.Schema.t ->
  t

(** Insert a tuple; returns its id (unique over the lifetime of [t]). *)
val insert : t -> Relational.Tuple.t -> id

(** Delete by id.  Idempotent: deleting an unknown or already-deleted
    id is a no-op returning [false]. *)
val delete : t -> id -> bool

(** Live population size. *)
val population : t -> int

(** Target sample size, as given to {!create}. *)
val capacity : t -> int

(** Current sample as a relation. *)
val sample : t -> Relational.Relation.t

val sample_size : t -> int

(** [sample_size/capacity], the erosion gauge. *)
val fill_ratio : t -> float

(** True when the sample has eroded below [min_ratio] (default 0.5) of
    capacity while the population could still support it. *)
val needs_rescan : ?min_ratio:float -> t -> bool

(** [rescan t live] rebuilds the sample as a fresh reservoir pass over
    the live population — [(id, tuple)] pairs in insertion order, ids
    previously issued by {!insert}.  Resets deletion erosion;
    subsequent inserts resume reservoir admission at the correct rate.  This is the one maintenance operation that costs
    O(population): callers gate it on {!needs_rescan}.
    @raise Invalid_argument if a pair carries an id this sample never
    issued. *)
val rescan : t -> (id * Relational.Tuple.t) array -> unit

(** Unbiased COUNT-of-selection estimate from the current sample
    (see {!Count_estimator.selection_of_counts}).  An empty {e
    population} (nothing inserted, or everything deleted) returns the
    exact-0 degenerate estimate — same contract as estimating over an
    empty CSV.
    @raise Failure when deletions have exhausted the sample while
    unsampled tuples are still live ({!rescan} is required first);
    the message routes through the standard error contract. *)
val estimate_count : t -> Relational.Predicate.t -> Stats.Estimate.t
