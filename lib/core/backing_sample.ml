module Relation = Relational.Relation

type id = int

type t = {
  rng : Sampling.Rng.t;
  capacity : int;
  schema : Relational.Schema.t;
  mutable next_id : int;
  mutable population : int;
  (* Sample slots: parallel arrays of ids and tuples, [filled] live. *)
  ids : id array;
  tuples : Relational.Tuple.t option array;
  mutable filled : int;
  (* Members for O(1) deletion checks: id -> slot. *)
  slot_of : (id, int) Hashtbl.t;
  mutable seen : int;  (* inserts observed, drives reservoir admission *)
  metrics : Obs.Metrics.t;
}

let create ?(metrics = Obs.Metrics.noop) rng ~capacity ~schema =
  if capacity <= 0 then invalid_arg "Backing_sample.create: capacity must be positive";
  {
    rng;
    capacity;
    schema;
    next_id = 0;
    population = 0;
    ids = Array.make capacity (-1);
    tuples = Array.make capacity None;
    filled = 0;
    slot_of = Hashtbl.create (2 * capacity);
    seen = 0;
    metrics;
  }

let put t slot id tuple =
  (match t.tuples.(slot) with
  | Some _ -> Hashtbl.remove t.slot_of t.ids.(slot)
  | None -> ());
  t.ids.(slot) <- id;
  t.tuples.(slot) <- Some tuple;
  Hashtbl.replace t.slot_of id slot

let insert t tuple =
  let draws_before = Sampling.Rng.draws t.rng in
  Obs.Metrics.add_maintenance_ops t.metrics 1;
  let id = t.next_id in
  t.next_id <- id + 1;
  t.population <- t.population + 1;
  t.seen <- t.seen + 1;
  if t.seen <= t.capacity then begin
    (* Fill phase: Algorithm R admits the first [capacity] stream items
       outright.  A gap left by a deleted sampled item stays a gap —
       eagerly refilling it would admit the newcomer with probability 1
       while its live peers hold the reservoir's admission rate, biasing
       the sample toward recent arrivals. *)
    put t t.filled id tuple;
    t.filled <- t.filled + 1
  end
  else begin
    (* Algorithm R admission over the insert stream: the maintained
       sample is the virtual (no-deletion) reservoir minus the deleted
       members, which stays uniform over the live population.  [j] is
       the uniformly drawn virtual slot; a slot holding a deleted member
       ([j >= filled] after compaction) hands its place to the
       newcomer. *)
    let j = Sampling.Rng.int t.rng t.seen in
    if j < t.capacity then
      if j < t.filled then put t j id tuple
      else begin
        put t t.filled id tuple;
        t.filled <- t.filled + 1
      end
  end;
  Obs.Metrics.add_rng_draws t.metrics (Sampling.Rng.draws t.rng - draws_before);
  id

let delete t id =
  Obs.Metrics.add_maintenance_ops t.metrics 1;
  if id < 0 || id >= t.next_id then false
  else begin
    match Hashtbl.find_opt t.slot_of id with
    | Some slot ->
      Hashtbl.remove t.slot_of id;
      (* Compact: move the last live slot into the hole. *)
      let last = t.filled - 1 in
      if slot <> last then begin
        t.ids.(slot) <- t.ids.(last);
        t.tuples.(slot) <- t.tuples.(last);
        Hashtbl.replace t.slot_of t.ids.(slot) slot
      end;
      t.ids.(last) <- -1;
      t.tuples.(last) <- None;
      t.filled <- last;
      t.population <- t.population - 1;
      true
    | None ->
      (* Not sampled: only the population shrinks.  We cannot tell a
         live unsampled id from an already-deleted one without O(N)
         state; treat both as a population decrement guarded at 0 and
         report true only while the population is consistent. *)
      if t.population > t.filled then begin
        t.population <- t.population - 1;
        true
      end
      else false
  end

let population t = t.population

let capacity t = t.capacity

let sample t =
  let tuples =
    Array.init t.filled (fun k ->
        match t.tuples.(k) with Some tuple -> tuple | None -> assert false)
  in
  Relation.of_array t.schema tuples

let sample_size t = t.filled

let fill_ratio t = float_of_int t.filled /. float_of_int t.capacity

let needs_rescan ?(min_ratio = 0.5) t =
  t.filled < t.population && fill_ratio t < min_ratio

let rescan t live =
  (* Rebuild as a fresh reservoir pass over the live population:
     deletion erosion is reset, and [seen] restarts at the population so
     later inserts resume Algorithm-R admission at the correct k/n
     rate. *)
  let draws_before = Sampling.Rng.draws t.rng in
  Array.fill t.ids 0 t.capacity (-1);
  Array.fill t.tuples 0 t.capacity None;
  Hashtbl.reset t.slot_of;
  t.filled <- 0;
  t.seen <- 0;
  t.population <- Array.length live;
  Array.iter
    (fun (id, tuple) ->
      if id < 0 || id >= t.next_id then
        invalid_arg "Backing_sample.rescan: id was never issued by this sample";
      t.seen <- t.seen + 1;
      if t.filled < t.capacity then begin
        put t t.filled id tuple;
        t.filled <- t.filled + 1
      end
      else begin
        let j = Sampling.Rng.int t.rng t.seen in
        if j < t.capacity then put t j id tuple
      end)
    live;
  Obs.Metrics.add_tuples t.metrics (Array.length live);
  Obs.Metrics.add_maintenance_ops t.metrics (Array.length live);
  Obs.Metrics.add_rng_draws t.metrics (Sampling.Rng.draws t.rng - draws_before)

let estimate_count t predicate =
  if t.population = 0 then
    (* All deleted (or nothing ever inserted): the exact-0 degenerate
       estimate, matching the empty-relation contract everywhere else. *)
    Count_estimator.selection_of_counts ~big_n:0 ~n:0 ~hits:0
  else if t.filled = 0 then
    (* Deletions consumed every sampled tuple while unsampled rows are
       still live: no unbiased estimate exists without a rebuild.
       Failure (not Invalid_argument masquerading as a caller bug)
       routes through the `raestat: error:` / JSON-error contract. *)
    failwith
      (Printf.sprintf
         "Backing_sample.estimate_count: sample exhausted by deletions (%d live tuples unsampled); rescan required"
         t.population)
  else begin
    let relation = sample t in
    let keep = Relational.Predicate.compile t.schema predicate in
    let hits = Relation.count keep relation in
    Obs.Metrics.add_tuples t.metrics t.filled;
    if t.filled >= t.population then
      (* Census: the sample IS the population. *)
      Count_estimator.selection_of_counts ~big_n:t.filled ~n:t.filled ~hits
    else Count_estimator.selection_of_counts ~big_n:t.population ~n:t.filled ~hits
  end
