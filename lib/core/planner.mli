(** Sampling-driven join-order planning — the paper's raison d'être:
    feed cheap, unbiased cardinality estimates to a System-R-style
    optimizer.

    Given base relations (optionally pre-filtered) and equality join
    predicates, the planner enumerates left-deep join orders, costs
    each by the classic sum-of-intermediate-cardinalities model with
    every cardinality {e estimated from samples}, and returns the best
    order.  Estimates are memoized per sub-plan so the enumeration
    costs one sampling pass per distinct intermediate. *)

type join_spec = {
  left_attr : string;   (** attribute on one relation *)
  right_attr : string;  (** attribute on the other *)
}

type input = {
  name : string;               (** base relation name *)
  filter : Relational.Predicate.t option;  (** optional pre-filter *)
}

type plan = {
  expr : Relational.Expr.t;        (** the chosen left-deep join tree *)
  order : string list;             (** relation names, join order *)
  estimated_cost : float;          (** Σ estimated intermediate sizes *)
  intermediates : Relational.Expr.t list;
      (** the chosen order's strict-prefix joins, smallest first *)
  estimates : (string * float) list;
      (** per-intermediate: input-name set → estimated size *)
}

(** [plan rng catalog ~fraction ~inputs ~joins] — [joins] may mention
    any attribute pair whose two attributes live in different inputs
    (resolved via the catalog schemas).  All inputs must be connected
    by join predicates (no cross products are enumerated).
    @raise Invalid_argument on fewer than 2 inputs, more than 8 (the
    left-deep enumeration is factorial), duplicate input names, an
    attribute resolvable to no/both sides, or a disconnected join
    graph. *)
val plan :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  fraction:float ->
  inputs:input list ->
  joins:join_spec list ->
  plan

(** Exact cost of a previously produced plan (for evaluation). *)
val exact_cost : Relational.Catalog.t -> plan -> float

(** {1 Sampling-placement optimization}

    The cost-based half of the optimizing planner (THEORY.md §22): the
    sampling-pushdown rewrites
    ({!Relational.Optimizer.Sampling_pushdown}) make every leaf
    occurrence a legal home for the sampling operator; this layer
    prices each placement with the GUS second-moment model

    {v Var = J·(Π 1/q_i − 1) + Σ_i (SS_i − J)·(1/q_i − 1) v}

    (exact for selection chains and two-leaf equijoins/products of
    them, computed by one filtered histogram pass per side; bounded by
    the {!Baselines.Pessimistic} cardinality cap with the
    uniform-contribution approximation [SS_i = J²/N_i] otherwise) and
    a tuples-touched cost, then picks the minimum
    [max(variance, 1) × cost].  All candidates share the same
    sampled-tuple budget — the total the historical root-sampling
    strategy draws at this fraction — so the comparison is
    variance-per-tuple-drawn; exact (census) scans of the non-sampled
    leaves are charged to cost, not budget.  Planning is a pure
    function of catalog statistics: no RNG, bit-stable candidate order
    (root-sampling first, then pushdowns in leaf-occurrence order),
    ties preferring the historical strategy. *)

val optimizer_version : int

(** False iff [RAESTAT_NO_OPTIMIZE] was 1/true/yes/on at startup — the
    kill switch mirroring [RAESTAT_NO_COLUMNAR]: every goal-based
    entry point then keeps the historical root-sampling behavior. *)
val optimize_enabled : unit -> bool

(** What the caller wants, instead of a hard-coded placement. *)
type goal =
  | Budget_fraction of float  (** historical per-leaf sampling fraction *)
  | Budget_tuples of int      (** total sampled-tuple budget *)
  | Ci_width of { width : float; level : float }
      (** target CI width at [level] (conservative worst-case binomial
          sizing, no data pass) *)

(** Resolve a goal to a per-leaf sampling fraction for a population
    (the root-sampling front-ends' translation).
    @raise Invalid_argument on a non-positive budget/width or a
    fraction outside (0, 1]. *)
val fraction_of_goal : population:int -> goal -> float

(** The same translation as a sample {e size} for one population —
    what the fixed-[n] front-ends (stratified, bootstrap, grouped,
    sequential budget walks) need.  Clamped to [[1, population]]; 0
    only for an empty population.
    @raise Invalid_argument as {!fraction_of_goal}. *)
val size_of_goal : population:int -> goal -> int

type candidate = {
  label : string;  (** ["root-sampling"] or ["pushdown(rel#occ)"] *)
  derivation : Relational.Optimizer.Sampling_pushdown.derivation option;
      (** [None] for root-sampling *)
  predicted_variance : float;  (** model variance of the mean-of-groups
                                   estimate; [nan] when not priced *)
  predicted_cost : float;      (** total tuples touched across groups *)
  score : float;               (** [max(variance, 1) × cost]; min wins *)
  drawn_tuples : float;        (** sampled tuples drawn (budget side) *)
  exact_tuples : float;        (** census tuples scanned (cost side) *)
}

type choice = {
  winner : candidate;
  chosen : Estplan.t;          (** executable plan for the winner *)
  candidates : candidate list; (** enumeration order, winner included *)
  rationale : string;          (** why the winner won *)
  analytic : bool;             (** exact stats vs pessimistic approx *)
  budget : int;                (** sampled-tuple budget per group *)
}

(** [choose_sampling catalog ~fraction expr] enumerates root-sampling
    plus every sampling-pushdown candidate, prices them, and returns
    the winner with its executable plan ([groups], default 1, carries
    through to the plan's replicated execution).  Expressions with
    dedup/aggregate semantics yield the root-sampling fallback with an
    explanatory rationale.  Counts every enumerated candidate in
    [metrics] ([plans_considered]).  Deterministic: no RNG is drawn.
    @raise Invalid_argument on a fraction outside (0, 1] or
    [groups < 1]. *)
val choose_sampling :
  ?metrics:Obs.Metrics.t ->
  ?groups:int ->
  Relational.Catalog.t ->
  fraction:float ->
  Relational.Expr.t ->
  choice

(** Render the decision: the winner's plan tree ({!Estplan.render})
    followed by the candidate table, the winner's pushdown trace and
    the rationale.  Byte-identical between the CLI and the daemon. *)
val render_choice : choice -> string

(** Schema ["raestat-explain/2"]: optimizer version, winning strategy,
    stats source, budget, rationale, every candidate with predicted
    variance/cost/score and its rewrite derivation, and the winner's
    executed plan embedded as a ["raestat-explain/1"] object under
    ["plan"]. *)
val choice_to_json : choice -> string
