type result = {
  count : int;
  seconds : float;
}

let count ?columnar catalog expr =
  let started = Unix.gettimeofday () in
  let count = Relational.Eval.count ?columnar catalog expr in
  { count; seconds = Unix.gettimeofday () -. started }

let as_estimate ?columnar catalog expr =
  let { count; _ } = count ?columnar catalog expr in
  Stats.Estimate.make ~variance:0. ~label:"exact" ~status:Stats.Estimate.Unbiased
    ~sample_size:count (float_of_int count)
