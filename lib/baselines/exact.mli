(** Full evaluation, timed — the "just compute it" baseline the paper's
    speedups are measured against. *)

type result = {
  count : int;
  seconds : float;  (** wall-clock time of the evaluation *)
}

(** [count catalog e] evaluates exactly (through {!Relational.Eval.count},
    including its columnar counting fast paths; [~columnar:false] pins
    the row path). *)
val count : ?columnar:bool -> Relational.Catalog.t -> Relational.Expr.t -> result

(** The exact answer wrapped as an {!Stats.Estimate.t} (zero variance). *)
val as_estimate :
  ?columnar:bool -> Relational.Catalog.t -> Relational.Expr.t -> Stats.Estimate.t
