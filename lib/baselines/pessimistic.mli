(** Pessimistic (guaranteed upper bound) cardinality estimation, after
    Abo Khamis et al. (PAPERS.md): every rule over-approximates, so the
    returned bound can never under-estimate the true result size.  The
    sampling-placement planner uses it as a safe cost cap where the
    sampled estimate could be arbitrarily wrong.

    Rules: [Base → N]; the unary operators pass their child through
    (selection/projection only drop tuples; [Distinct]/[Aggregate]
    output at most one tuple per input tuple); [Product] and θ-joins
    multiply; an equi-join on [(a, b)] is capped by
    [min(bound(l)·maxfreq_r(b), bound(r)·maxfreq_l(a))] — each left
    tuple matches at most the heaviest [b]-value multiplicity on the
    right and vice versa — whenever a side is a selection chain over a
    base relation (its column degrees are scanned exactly; selections
    only shrink them), falling back to the product otherwise;
    [Union → sum]; [Inter → min]; [Diff → left]. *)

(** [bound catalog e] — an upper bound on [e]'s result cardinality.
    One full column scan per equi-join side with a base-reachable join
    attribute; no sampling, fully deterministic.
    @raise Failure on unbound base relations. *)
val bound : Relational.Catalog.t -> Relational.Expr.t -> float
