module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Relation = Relational.Relation
module Value = Relational.Value

(* Max multiplicity of any single value in a base-relation column — the
   degree constraint the join rule needs.  Cached per (relation, attr):
   the planner probes the same columns for every candidate. *)

module Vals = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

let column_maxfreq relation attr =
  let counts = Vals.create 256 in
  let best = ref 0 in
  Array.iter
    (fun v ->
      let c = 1 + (try Vals.find counts v with Not_found -> 0) in
      Vals.replace counts v c;
      if c > !best then best := c)
    (Relation.column relation attr);
  !best

(* [maxfreq catalog e attr] — an upper bound on the multiplicity of any
   one value of [attr] in [e]'s result, when [e] is a selection chain
   over a base relation (selections only ever drop tuples).  [None]
   when the shape is anything else: the caller falls back to the
   product bound. *)
let rec maxfreq catalog expr attr =
  match expr with
  | Expr.Base name ->
    let relation = Catalog.find catalog name in
    if Relational.Schema.mem (Relation.schema relation) attr then
      Some (column_maxfreq relation attr)
    else None
  | Expr.Select (_, e) -> maxfreq catalog e attr
  | _ -> None

let rec bound catalog expr =
  match expr with
  | Expr.Base name ->
    float_of_int (Relation.cardinality (Catalog.find catalog name))
  | Expr.Select (_, e)
  | Expr.Project (_, e)
  | Expr.Distinct e
  | Expr.Rename (_, e)
  | Expr.Aggregate (_, _, e) ->
    bound catalog e
  | Expr.Product (l, r) | Expr.Theta_join (_, l, r) ->
    bound catalog l *. bound catalog r
  | Expr.Equijoin (pairs, l, r) ->
    let bl = bound catalog l and br = bound catalog r in
    let product = bl *. br in
    let degree_bound =
      match pairs with
      | (a, b) :: _ ->
        (* Extra equality conjuncts only shrink the join, so the first
           pair's degree constraint alone is a valid upper bound. *)
        let via_left =
          match maxfreq catalog r b with
          | Some d -> Some (bl *. float_of_int d)
          | None -> None
        in
        let via_right =
          match maxfreq catalog l a with
          | Some d -> Some (br *. float_of_int d)
          | None -> None
        in
        (match (via_left, via_right) with
        | Some x, Some y -> Some (Float.min x y)
        | (Some _ as s), None | None, (Some _ as s) -> s
        | None, None -> None)
      | [] -> None
    in
    (match degree_bound with
    | Some d -> Float.min d product
    | None -> product)
  | Expr.Union (l, r) -> bound catalog l +. bound catalog r
  | Expr.Inter (l, r) -> Float.min (bound catalog l) (bound catalog r)
  | Expr.Diff (l, _) -> bound catalog l
