(* Case generation.  Two families:

   - bag cases: 1–3 relations with per-relation attribute names
     ("a0"/"b0" for r0, "a1"/"b1" for r1, ...) so products and joins
     concatenate without name clashes and predicates above them stay
     unambiguous; the expression is a random tree of selections, bag
     projections, [Distinct], products and equi-joins in which each
     relation appears once — plus an occasional self-join, whose
     clashing schemas {!Relational.Schema.concat} qualifies and which
     therefore carries no predicate above it;
   - set cases: one duplicate-free {!Workload.Generator.set_pair}
     under Union / Inter / Diff.

   Everything is drawn from one stream seeded by [(master, id)]. *)

module Expr = Relational.Expr
module P = Relational.Predicate
module Value = Relational.Value
module Catalog = Relational.Catalog
module Rng = Sampling.Rng
module Dist = Workload.Dist

type spec = {
  rname : string;
  card : int;
  columns : (string * Dist.t) list;
}

type body =
  | Bag of spec list
  | Set_pair of { left : int; right : int; overlap : int }

type case = {
  id : int;
  seed : int;
  body : body;
  expr : Expr.t;
  fraction : float;
}

(* Cap on the product of all cardinalities: the census oracle
   evaluates the expression exactly, and a three-way product
   materializes up to this many tuples. *)
let max_volume = 50_000

let gen_dist rng =
  let domain = 2 + Rng.int rng 23 in
  match Rng.int rng 5 with
  | 0 -> Dist.Constant (Rng.int rng domain)
  | 1 | 2 -> Dist.Uniform { lo = 0; hi = domain - 1 }
  | 3 -> Dist.Zipf { n_values = domain; skew = 0.3 +. (0.15 *. float_of_int (Rng.int rng 8)) }
  | _ -> Dist.Self_similar { n_values = domain; h = 0.6 +. (0.05 *. float_of_int (Rng.int rng 7)) }

let gen_specs rng =
  let n_rels = 1 + Rng.int rng 3 in
  let specs =
    List.init n_rels (fun i ->
        let card = if Rng.int rng 10 = 0 then 0 else 1 + Rng.int rng 120 in
        let n_cols = 1 + Rng.int rng 2 in
        let columns =
          List.init n_cols (fun j ->
              (Printf.sprintf "%c%d" (Char.chr (Char.code 'a' + j)) i, gen_dist rng))
        in
        { rname = Printf.sprintf "r%d" i; card; columns })
  in
  let rec cap specs =
    let volume = List.fold_left (fun acc s -> acc * max 1 s.card) 1 specs in
    if volume <= max_volume then specs
    else
      let largest =
        List.fold_left (fun m s -> if s.card > m.card then s else m) (List.hd specs) specs
      in
      cap
        (List.map
           (fun s -> if s.rname = largest.rname then { s with card = s.card / 2 } else s)
           specs)
  in
  cap specs

(* --------------------------------------------------------- predicates *)

let gen_comparison rng attrs =
  let a = List.nth attrs (Rng.int rng (List.length attrs)) in
  let v = Rng.int rng 25 in
  match Rng.int rng 7 with
  | 0 -> P.eq (P.attr a) (P.vint v)
  | 1 -> P.neq (P.attr a) (P.vint v)
  | 2 -> P.lt (P.attr a) (P.vint v)
  | 3 -> P.le (P.attr a) (P.vint v)
  | 4 -> P.gt (P.attr a) (P.vint v)
  | 5 -> P.ge (P.attr a) (P.vint v)
  | _ ->
    let lo = Rng.int rng 20 in
    P.between (P.attr a) (Value.Int lo) (Value.Int (lo + Rng.int rng 10))

let rec gen_predicate rng attrs depth =
  if depth <= 0 || Rng.int rng 2 = 0 then gen_comparison rng attrs
  else
    match Rng.int rng 3 with
    | 0 -> P.( &&& ) (gen_predicate rng attrs (depth - 1)) (gen_predicate rng attrs (depth - 1))
    | 1 -> P.( ||| ) (gen_predicate rng attrs (depth - 1)) (gen_predicate rng attrs (depth - 1))
    | _ -> P.not_ (gen_predicate rng attrs (depth - 1))

(* -------------------------------------------------------- expressions *)

(* Random nonempty subset, preserving order. *)
let gen_subset rng attrs =
  let chosen = List.filter (fun _ -> Rng.int rng 2 = 0) attrs in
  if chosen = [] then [ List.nth attrs (Rng.int rng (List.length attrs)) ] else chosen

(* 0–2 unary wrappers over [e]; returns the expression and the
   attributes its schema still exposes. *)
let wrap_unary rng attrs e =
  let rec go layers e attrs =
    if layers = 0 then (e, attrs)
    else
      match Rng.int rng 5 with
      | 0 | 1 -> go (layers - 1) (Expr.Select (gen_predicate rng attrs 2, e)) attrs
      | 2 -> go (layers - 1) (Expr.Distinct e) attrs
      | 3 when List.length attrs > 1 ->
        let keep = gen_subset rng attrs in
        go (layers - 1) (Expr.Project (keep, e)) keep
      | _ -> go (layers - 1) (Expr.Select (gen_predicate rng attrs 1, e)) attrs
  in
  go (Rng.int rng 3) e attrs

(* A random tree in which each relation of [specs] appears exactly
   once; attribute names are disjoint across relations, so joins and
   products never clash and any exposed attribute is fair game for a
   predicate above. *)
let rec gen_tree rng specs =
  match specs with
  | [] -> invalid_arg "Gen.gen_tree: no relations"
  | [ s ] -> wrap_unary rng (List.map fst s.columns) (Expr.Base s.rname)
  | _ ->
    let k = 1 + Rng.int rng (List.length specs - 1) in
    let left = List.filteri (fun i _ -> i < k) specs in
    let right = List.filteri (fun i _ -> i >= k) specs in
    let le, lattrs = gen_tree rng left in
    let re, rattrs = gen_tree rng right in
    let e =
      if Rng.int rng 3 = 0 then Expr.Product (le, re)
      else
        let la = List.nth lattrs (Rng.int rng (List.length lattrs)) in
        let ra = List.nth rattrs (Rng.int rng (List.length rattrs)) in
        Expr.Equijoin ([ (la, ra) ], le, re)
    in
    let attrs = lattrs @ rattrs in
    if Rng.int rng 3 = 0 then (Expr.Select (gen_predicate rng attrs 1, e), attrs)
    else (e, attrs)

let gen_bag rng =
  let specs = gen_specs rng in
  let expr =
    match specs with
    | [ s ] when Rng.int rng 6 = 0 ->
      (* Self-join: the same leaf twice, each occurrence sampled
         independently.  Schema.concat qualifies the clashing names, so
         no predicate goes above. *)
      let a = fst (List.hd s.columns) in
      if Rng.int rng 2 = 0 then Expr.Product (Expr.Base s.rname, Expr.Base s.rname)
      else Expr.Equijoin ([ (a, a) ], Expr.Base s.rname, Expr.Base s.rname)
    | _ -> fst (gen_tree rng specs)
  in
  (Bag specs, expr)

let gen_set rng =
  let left = 1 + Rng.int rng 100 and right = 1 + Rng.int rng 100 in
  let overlap = Rng.int rng (1 + min left right) in
  let l = Expr.Base "s0" and r = Expr.Base "s1" in
  let e =
    match Rng.int rng 3 with
    | 0 -> Expr.Union (l, r)
    | 1 -> Expr.Inter (l, r)
    | _ -> Expr.Diff (l, r)
  in
  let e =
    match Rng.int rng 4 with
    | 0 -> Expr.Distinct e
    | 1 -> Expr.Select (gen_comparison rng [ "k" ], e)
    | _ -> e
  in
  (Set_pair { left; right; overlap }, e)

let fractions = [| 0.5; 0.3; 0.15; 0.05 |]

let case ~master ~id =
  let seed = (master * 1_000_003) + id in
  let rng = Rng.create ~seed () in
  let body, expr = if Rng.int rng 4 = 0 then gen_set rng else gen_bag rng in
  { id; seed; body; expr; fraction = fractions.(Rng.int rng (Array.length fractions)) }

(* ----------------------------------------------------- materialization *)

let materialize case =
  let catalog = Catalog.create () in
  (match case.body with
  | Bag specs ->
    List.iteri
      (fun i s ->
        let rng = Rng.create ~seed:(case.seed + (7919 * (i + 1))) () in
        Catalog.add catalog s.rname (Workload.Generator.relation rng ~n:s.card s.columns))
      specs
  | Set_pair { left; right; overlap } ->
    let rng = Rng.create ~seed:(case.seed + 104_729) () in
    let l, r =
      Workload.Generator.set_pair rng ~card_left:left ~card_right:right ~overlap
        ~attribute:"k"
    in
    Catalog.add catalog "s0" l;
    Catalog.add catalog "s1" r);
  catalog

let body_to_string = function
  | Bag specs ->
    String.concat "; "
      (List.map
         (fun s ->
           Printf.sprintf "%s(%d rows: %s)" s.rname s.card
             (String.concat ", "
                (List.map (fun (c, d) -> c ^ " ~ " ^ Dist.to_string d) s.columns)))
         specs)
  | Set_pair { left; right; overlap } ->
    Printf.sprintf "s0(%d rows), s1(%d rows), overlap %d" left right overlap

let to_string case =
  Printf.sprintf "case %d (seed %d): %s | fraction %g | %s" case.id case.seed
    (Expr.to_string case.expr) case.fraction (body_to_string case.body)
