(** The fuzz harness's oracle battery: properties every COUNT
    estimator run must satisfy, checked differentially against the
    exact evaluator and metamorphically against equivalent runs.

    Oracles are evaluated against a {!subject} — the estimator under
    test.  Production code always fuzzes {!reference}
    ({!Raestat.Count_estimator.estimate}); the unit tests inject
    deliberately broken subjects (a biased scale factor, a dropped
    metrics sink) to prove each oracle has teeth. *)

type subject = {
  label : string;
  estimate :
    groups:int ->
    domains:int ->
    metrics:Obs.Metrics.t ->
    columnar:bool ->
    Sampling.Rng.t ->
    Relational.Catalog.t ->
    fraction:float ->
    Relational.Expr.t ->
    Stats.Estimate.t;
}

(** The production estimator. *)
val reference : subject

type verdict =
  | Pass
  | Skip of string  (** the oracle does not apply to this case *)
  | Fail of string  (** property violated; the payload explains how *)

type oracle = {
  name : string;
  summary : string;
  run : subject -> replicates:int -> Gen.case -> verdict;
}

(** The fixed battery, in evaluation order:

    - ["census"]: at fraction 1.0 the estimate equals
      {!Baselines.Exact.count};
    - ["parity"]: row kernels ([~columnar:false]) and [--domains 2]
      reproduce the columnar serial run bit-for-bit — estimate,
      variance and {!Obs.Metrics} counter totals;
    - ["rewrite"]: {!Relational.Optimizer} rewrites leave the compiled
      {!Raestat.Estplan} estimate bit-identical at the same seed;
    - ["pushdown"]: for pushable expressions,
      {!Raestat.Planner.choose_sampling} enumerates candidates
      deterministically (root-sampling first, then one pushdown per
      leaf occurrence in {!Relational.Optimizer.Sampling_pushdown}
      derivation order) and the winner's executable plan — possibly a
      pushed-down sampling placement — keeps a replicate mean that
      brackets the exact count (same Student-t bound and 8× retry as
      ["unbiasedness"]);
    - ["unbiasedness"]: for [Unbiased]-classified expressions, the
      replicate mean brackets the exact count within a Student-t bound
      ([df = replicates − 1], retried at 8× replicates before failing);
    - ["coverage"]: empirical CI coverage stays within slack of
      nominal, gated to cases where the CLT plausibly applies;
    - ["conservation"]: counters are deterministic, non-negative,
      never perturb the estimate, [sample_indices] equals
      groups × Σ per-leaf sample sizes, and for a two-leaf equi-join
      probe hits + misses equals groups × left sample size;
    - ["storage"]: round-tripping every leaf relation through the
      binary pagefile ({!Relational.Pagefile}) leaves tuples, schemas,
      the estimate and the counters bit-identical;
    - ["maintenance"]: a {!Raestat.Stream_relation} replaying a random
      insert/delete interleaving over the case's first leaf matches the
      trace's exact recount (population, epoch-free store truth), keeps
      every maintained sample (reservoir and Bernoulli) inside the live
      multiset, drains to the exact-0 estimate when every live id is
      deleted, and — where the power gate allows — keeps a replicate
      mean over independent stream seeds that brackets the trace's
      exact count (same Student-t bound and 8× retry as
      ["unbiasedness"]). *)
val battery : oracle list

(** {2 Maintenance oracle internals (for tests)} *)

(** One write in a maintenance trace. *)
type stream_op =
  | Add of Relational.Tuple.t
  | Remove of Raestat.Stream_relation.id

(** The ["maintenance"] oracle with an injectable write path (default:
    {!Raestat.Stream_relation.insert} / [delete]).  Unit tests pass a
    broken writer — e.g. one that drops deletions — to prove the
    trace-differential checks flag it. *)
val maintenance_oracle :
  ?writer:(Raestat.Stream_relation.t -> stream_op -> unit) -> unit -> oracle

(** First [Fail] across the battery as [(oracle name, detail)];
    [None] when every oracle passes or skips. *)
val check_case :
  ?subject:subject -> replicates:int -> Gen.case -> (string * string) option

(** Run one oracle by name.  [Some detail] on [Fail].
    @raise Invalid_argument on an unknown oracle name. *)
val check_one :
  ?subject:subject -> replicates:int -> oracle:string -> Gen.case -> string option
