type config = {
  budget : int;
  seed : int;
  replicates : int;
}

type failure = {
  case : Gen.case;
  oracle : string;
  detail : string;
  shrunk : Gen.case;
  shrunk_detail : string;
}

type outcome =
  | Passed of int
  | Found of failure

let shrink_failure ~subject ~replicates ~oracle ~detail case =
  let still_fails candidate =
    Oracle.check_one ~subject ~replicates ~oracle candidate <> None
  in
  let shrunk = Shrink.minimize ~check:still_fails case in
  let shrunk_detail =
    match Oracle.check_one ~subject ~replicates ~oracle shrunk with
    | Some d -> d
    | None -> detail
  in
  { case; oracle; detail; shrunk; shrunk_detail }

let run ?(subject = Oracle.reference) ?(log = ignore) config =
  if config.budget <= 0 then invalid_arg "Fuzz.run: budget must be positive";
  if config.replicates < 2 then
    invalid_arg "Fuzz.run: replicates must be at least 2 (the Student-t bound needs df >= 1)";
  let rec loop id =
    if id >= config.budget then Passed config.budget
    else begin
      if id > 0 && id mod 100 = 0 then
        log (Printf.sprintf "fuzz: %d/%d cases checked" id config.budget);
      let case = Gen.case ~master:config.seed ~id in
      match Oracle.check_case ~subject ~replicates:config.replicates case with
      | None -> loop (id + 1)
      | Some (oracle, detail) ->
        log (Printf.sprintf "fuzz: case %d failed oracle %s; shrinking" id oracle);
        Found (shrink_failure ~subject ~replicates:config.replicates ~oracle ~detail case)
    end
  in
  loop 0

(* ---------------------------------------------------------------- replay *)

let format_version = "raestat-fuzz/1"

type replay_header = {
  rseed : int;
  rcase : int;
  rreplicates : int;
  roracle : string;
}

let replay_file config f =
  String.concat "\n"
    [ format_version;
      "seed " ^ string_of_int config.seed;
      "case " ^ string_of_int f.case.Gen.id;
      "replicates " ^ string_of_int config.replicates;
      "oracle " ^ f.oracle;
      "# detail: " ^ f.detail;
      "# case:   " ^ Gen.to_string f.case;
      "# shrunk: " ^ Gen.to_string f.shrunk;
      "";
    ]

let parse_replay content =
  let lines =
    String.split_on_char '\n' content
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | version :: fields when version = format_version ->
    let find key =
      List.find_map
        (fun line ->
          let prefix = key ^ " " in
          let pl = String.length prefix in
          if String.length line > pl && String.sub line 0 pl = prefix then
            Some (String.trim (String.sub line pl (String.length line - pl)))
          else None)
        fields
    in
    let int_field key =
      match find key with
      | None -> Error (Printf.sprintf "missing %S line" key)
      | Some v -> (
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad %S value %S" key v))
    in
    Result.bind (int_field "seed") (fun rseed ->
        Result.bind (int_field "case") (fun rcase ->
            Result.bind (int_field "replicates") (fun rreplicates ->
                match find "oracle" with
                | None -> Error "missing \"oracle\" line"
                | Some roracle -> Ok { rseed; rcase; rreplicates; roracle })))
  | _ -> Error (Printf.sprintf "not a %s seed file" format_version)

let replay ?(subject = Oracle.reference) header =
  if header.rreplicates < 2 then
    invalid_arg "Fuzz.replay: replicates must be at least 2";
  let case = Gen.case ~master:header.rseed ~id:header.rcase in
  match
    Oracle.check_one ~subject ~replicates:header.rreplicates ~oracle:header.roracle case
  with
  | None -> Passed 1
  | Some detail ->
    Found
      (shrink_failure ~subject ~replicates:header.rreplicates ~oracle:header.roracle
         ~detail case)
