module Expr = Relational.Expr
module Catalog = Relational.Catalog
module Relation = Relational.Relation
module Metrics = Obs.Metrics
module Estimate = Stats.Estimate
module Confidence = Stats.Confidence
module Rng = Sampling.Rng
module CE = Raestat.Count_estimator

type subject = {
  label : string;
  estimate :
    groups:int ->
    domains:int ->
    metrics:Metrics.t ->
    columnar:bool ->
    Rng.t ->
    Catalog.t ->
    fraction:float ->
    Expr.t ->
    Estimate.t;
}

let reference =
  {
    label = "count_estimator";
    estimate =
      (fun ~groups ~domains ~metrics ~columnar rng catalog ~fraction expr ->
        CE.estimate ~groups ~domains ~metrics ~columnar rng catalog ~fraction expr);
  }

type verdict =
  | Pass
  | Skip of string
  | Fail of string

type oracle = {
  name : string;
  summary : string;
  run : subject -> replicates:int -> Gen.case -> verdict;
}

(* Per-oracle stream: a fixed salt per oracle keeps them independent of
   each other and of battery order. *)
let rng_for (case : Gen.case) salt = Rng.create ~seed:((case.Gen.seed * 31) + salt) ()

let exact catalog expr =
  float_of_int (Baselines.Exact.count catalog expr).Baselines.Exact.count

let leaf_sample_size ~fraction catalog name =
  Sampling.Srs.size_of_fraction ~fraction
    (Relation.cardinality (Catalog.find catalog name))

(* ---------------------------------------------------------------- census *)

let census =
  {
    name = "census";
    summary = "fraction 1.0 reproduces the exact count";
    run =
      (fun subject ~replicates:_ case ->
        let catalog = Gen.materialize case in
        let truth = exact catalog case.Gen.expr in
        let est =
          subject.estimate ~groups:1 ~domains:1 ~metrics:Metrics.noop ~columnar:true
            (rng_for case 1) catalog ~fraction:1.0 case.Gen.expr
        in
        if Float.abs (est.Estimate.point -. truth) <= 1e-6 *. Float.max 1. truth then Pass
        else
          Fail
            (Printf.sprintf "census estimate %.17g differs from exact count %.17g"
               est.Estimate.point truth));
  }

(* ---------------------------------------------------------------- parity *)

let parity =
  {
    name = "parity";
    summary = "row kernels and --domains 2 are bit-identical to the columnar serial run";
    run =
      (fun subject ~replicates:_ case ->
        let run ~columnar ~domains =
          let catalog = Gen.materialize case in
          let metrics = Metrics.create () in
          let est =
            subject.estimate ~groups:4 ~domains ~metrics ~columnar (rng_for case 2)
              catalog ~fraction:case.Gen.fraction case.Gen.expr
          in
          (est, Metrics.snapshot metrics)
        in
        let base_est, base_counters = run ~columnar:true ~domains:1 in
        let variants =
          [ ("row kernels", run ~columnar:false ~domains:1);
            ("--domains 2", run ~columnar:true ~domains:2) ]
        in
        let mismatch =
          List.find_map
            (fun (label, (est, counters)) ->
              if
                not
                  (Float.equal est.Estimate.point base_est.Estimate.point
                  && Float.equal est.Estimate.variance base_est.Estimate.variance)
              then
                Some
                  (Printf.sprintf
                     "%s estimate (%.17g, var %.17g) diverges from columnar serial \
                      (%.17g, var %.17g)"
                     label est.Estimate.point est.Estimate.variance
                     base_est.Estimate.point base_est.Estimate.variance)
              else if not (Metrics.counters_equal counters base_counters) then
                Some
                  (Printf.sprintf "%s counter totals diverge from the columnar serial run"
                     label)
              else None)
            variants
        in
        match mismatch with None -> Pass | Some detail -> Fail detail);
  }

(* --------------------------------------------------------------- rewrite *)

let rewrite =
  {
    name = "rewrite";
    summary = "optimizer rewrites leave the compiled estimate bit-identical";
    run =
      (fun _subject ~replicates:_ case ->
        let catalog = Gen.materialize case in
        let run ~optimize =
          let plan =
            Raestat.Estplan.compile ~groups:2 ~optimize catalog
              ~fraction:case.Gen.fraction case.Gen.expr
          in
          Raestat.Estplan.run (rng_for case 3) catalog plan
        in
        let raw = run ~optimize:false in
        let optimized = run ~optimize:true in
        if
          Float.equal raw.Estimate.point optimized.Estimate.point
          && Float.equal raw.Estimate.variance optimized.Estimate.variance
        then Pass
        else
          Fail
            (Printf.sprintf
               "optimized plan estimate %.17g (var %.17g) <> unoptimized %.17g (var %.17g)"
               optimized.Estimate.point optimized.Estimate.variance raw.Estimate.point
               raw.Estimate.variance));
  }

(* -------------------------------------------------------------- pushdown *)

module SP = Relational.Optimizer.Sampling_pushdown

(* Replicate-mean machinery shared with the unbiasedness oracle. *)
let sample_mean_var points =
  let n = float_of_int (Array.length points) in
  let mean = Array.fold_left ( +. ) 0. points /. n in
  let ss = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. points in
  (mean, if n > 1. then ss /. (n -. 1.) else 0.)

let replicate_points subject ~runs ~salt case =
  let catalog = Gen.materialize case in
  let master = rng_for case salt in
  Array.init runs (fun _ ->
      (subject.estimate ~groups:1 ~domains:1 ~metrics:Metrics.noop ~columnar:true
         (Rng.split master) catalog ~fraction:case.Gen.fraction case.Gen.expr)
        .Estimate.point)

(* Student-t acceptance region for E[estimate] = truth; returns the
   replicate mean for reporting.  A zero spread demands (near) exact
   agreement: identical replicates mean the estimator is degenerate on
   this case, which for an unbiased estimator implies exactness. *)
let mean_brackets ~level ~truth points =
  let n = Array.length points in
  let mean, var = sample_mean_var points in
  let stderr = sqrt (var /. float_of_int n) in
  let ok =
    if stderr = 0. then Float.abs (mean -. truth) <= 1e-9 *. Float.max 1. truth
    else
      let iv =
        Confidence.student_t ~level ~df:(float_of_int (n - 1)) ~point:mean ~stderr
      in
      iv.Confidence.lo <= truth && truth <= iv.Confidence.hi
  in
  (ok, mean)

(* Conservative survival probability for one sampled run: a result
   tuple survives with probability Π n_i/N_i over the leaves.  For a
   pushdown plan (one leaf sampled, the rest census) this understates
   the true rate, so gating on it only ever skips, never under-gates. *)
let root_hit_rate ~fraction catalog expr =
  List.fold_left
    (fun acc name ->
      let population = Relation.cardinality (Catalog.find catalog name) in
      if population = 0 then acc
      else
        acc
        *. (float_of_int (leaf_sample_size ~fraction catalog name)
           /. float_of_int population))
    1. (Expr.leaves expr)

let pushdown =
  {
    name = "pushdown";
    summary =
      "candidate enumeration is deterministic in leaf-occurrence order and the \
       chosen pushdown plan stays unbiased";
    run =
      (fun _subject ~replicates case ->
        if not (SP.pushable case.Gen.expr) then
          Skip "dedup semantics block pushdown"
        else begin
          let catalog = Gen.materialize case in
          let choose () =
            Raestat.Planner.choose_sampling catalog ~fraction:case.Gen.fraction
              case.Gen.expr
          in
          let first = choose () and second = choose () in
          let labels choice =
            List.map
              (fun c -> c.Raestat.Planner.label)
              choice.Raestat.Planner.candidates
          in
          (* Root-sampling first, then one pushdown per leaf occurrence
             in the rewrite layer's (left-to-right) derivation order —
             the planner's determinism contract. *)
          let expected =
            "root-sampling"
            :: List.map
                 (fun d ->
                   Printf.sprintf "pushdown(%s#%d)" d.SP.relation d.SP.occurrence)
                 (SP.derivations case.Gen.expr)
          in
          if labels first <> labels second then
            Fail "re-planning the same case changed the candidate list"
          else if labels first <> expected then
            Fail
              (Printf.sprintf
                 "candidate order [%s] is not root-sampling then leaf-occurrence \
                  order [%s]"
                 (String.concat "; " (labels first))
                 (String.concat "; " expected))
          else if CE.classify case.Gen.expr <> Estimate.Unbiased then
            Skip "consistent-only expression"
          else begin
            let truth = exact catalog case.Gen.expr in
            let hit_rate =
              root_hit_rate ~fraction:case.Gen.fraction catalog case.Gen.expr
            in
            if truth > 0. && float_of_int (replicates * 8) *. truth *. hit_rate < 25.
            then Skip "power gate: too few expected sampled hits"
            else begin
              (* The winner's executable plan — possibly a pushed-down
                 sampling placement the reference front-end never
                 compiles — must itself be unbiased. *)
              let plan = first.Raestat.Planner.chosen in
              let points ~runs ~salt =
                let master = rng_for case salt in
                Array.init runs (fun _ ->
                    (Raestat.Estplan.run (Rng.split master) catalog plan)
                      .Estimate.point)
              in
              let level = 0.9999 in
              let ok, _ =
                mean_brackets ~level ~truth (points ~runs:replicates ~salt:9)
              in
              if ok then Pass
              else
                let again, mean =
                  mean_brackets ~level ~truth
                    (points ~runs:(replicates * 8) ~salt:10)
                in
                if again then Pass
                else
                  Fail
                    (Printf.sprintf
                       "winner %s: replicate mean %.6g is not consistent with the \
                        exact count %g (%d replicates, twice)"
                       first.Raestat.Planner.winner.Raestat.Planner.label mean truth
                       (replicates * 8))
            end
          end
        end);
  }

(* ---------------------------------------------------------- unbiasedness *)

let unbiasedness =
  {
    name = "unbiasedness";
    summary = "replicate mean of an Unbiased plan brackets the truth (Student-t)";
    run =
      (fun subject ~replicates case ->
        if CE.classify case.Gen.expr <> Estimate.Unbiased then
          Skip "consistent-only expression"
        else
          let catalog = Gen.materialize case in
          let truth = exact catalog case.Gen.expr in
          (* Power gate.  A result tuple survives the sampled run with
             probability Π n_i/N_i over the leaves; when even the 8×
             retry round expects only a handful of surviving tuples,
             an all-zero outcome is likely for a perfectly unbiased
             estimator (P ≈ e^{-expected}), and the replicate mean
             carries no evidence either way. *)
          let hit_rate =
            root_hit_rate ~fraction:case.Gen.fraction catalog case.Gen.expr
          in
          if truth > 0. && float_of_int (replicates * 8) *. truth *. hit_rate < 25.
          then Skip "power gate: too few expected sampled hits"
          else
          let level = 0.9999 in
          let first, _ =
            mean_brackets ~level ~truth (replicate_points subject ~runs:replicates ~salt:4 case)
          in
          if first then Pass
          else
            (* An unlucky draw at 1 − level is possible; demand a second
               independent failure at eight times the replicates before
               declaring bias. *)
            let again, mean =
              mean_brackets ~level ~truth
                (replicate_points subject ~runs:(replicates * 8) ~salt:5 case)
            in
            if again then Pass
            else
              Fail
                (Printf.sprintf
                   "replicate mean %.6g is not consistent with the exact count %g \
                    (%d replicates, twice)"
                   mean truth (replicates * 8)));
  }

(* -------------------------------------------------------------- coverage *)

let coverage =
  {
    name = "coverage";
    summary = "empirical CI coverage stays near nominal where the CLT applies";
    run =
      (fun subject ~replicates case ->
        if CE.classify case.Gen.expr <> Estimate.Unbiased then
          Skip "consistent-only expression"
        else
          let catalog = Gen.materialize case in
          let truth = exact catalog case.Gen.expr in
          let leaves = Expr.leaves case.Gen.expr in
          (* Expected number of result tuples surviving into the sampled
             evaluation: with every leaf thinned by [fraction], a result
             tuple joining L leaves survives with probability
             fraction^L.  Below a handful of expected hits the estimate
             is too discrete for a CLT interval to mean much; the same
             goes for any leaf whose own sample is tiny. *)
          let expected_hits =
            truth *. (case.Gen.fraction ** float_of_int (List.length leaves))
          in
          let min_leaf_sample =
            List.fold_left
              (fun acc name ->
                min acc (leaf_sample_size ~fraction:case.Gen.fraction catalog name))
              max_int leaves
          in
          if expected_hits < 8. || min_leaf_sample < 8 then
            Skip "CLT gate: too few expected sampled hits"
          else begin
            let level = 0.95 and groups = 6 in
            let runs = max 16 replicates in
            let master = rng_for case 6 in
            let covered = ref 0 and usable = ref 0 in
            (* Ulp slack: a deterministic estimate (e.g. a predicate-free
               product, whose replicates all scale the same sampled
               count) has a zero-width CI that can sit a few ulps off
               the integer truth. *)
            let eps = 1e-9 *. Float.max 1. truth in
            for _ = 1 to runs do
              let est =
                subject.estimate ~groups ~domains:1 ~metrics:Metrics.noop ~columnar:true
                  (Rng.split master) catalog ~fraction:case.Gen.fraction case.Gen.expr
              in
              if Estimate.has_variance est then begin
                incr usable;
                let iv = Estimate.ci ~level est in
                if iv.Confidence.lo -. eps <= truth && truth <= iv.Confidence.hi +. eps
                then incr covered
              end
            done;
            if !usable = 0 then Skip "no variance attached"
            else
              let rate = float_of_int !covered /. float_of_int !usable in
              (* Slack: the z-on-6-replicates interval genuinely
                 undercovers, and skewed product estimates undercover
                 further even past the gates (the replicate variance is
                 correlated with the point), so the bar is a smoke
                 bound — it catches a mis-scaled or vanishing variance
                 (coverage near 0), not percentage-point drift.  Base
                 slack 0.25, plus three binomial standard errors, plus
                 one run of resolution. *)
              let slack =
                0.25
                +. (3. *. sqrt (level *. (1. -. level) /. float_of_int !usable))
                +. (1. /. float_of_int !usable)
              in
              if rate >= level -. slack then Pass
              else
                Fail
                  (Printf.sprintf
                     "empirical coverage %.3f below %.3f (%d of %d CIs missed the \
                      truth %g)"
                     rate (level -. slack) (!usable - !covered) !usable truth)
          end);
  }

(* ---------------------------------------------------------- conservation *)

let conservation =
  {
    name = "conservation";
    summary = "work counters obey their conservation laws and never perturb estimates";
    run =
      (fun subject ~replicates:_ case ->
        let groups = 3 in
        let run_with_metrics () =
          let catalog = Gen.materialize case in
          let metrics = Metrics.create () in
          let est =
            subject.estimate ~groups ~domains:1 ~metrics ~columnar:true (rng_for case 7)
              catalog ~fraction:case.Gen.fraction case.Gen.expr
          in
          (est, Metrics.snapshot metrics)
        in
        let est1, s1 = run_with_metrics () in
        let est2, s2 = run_with_metrics () in
        let catalog = Gen.materialize case in
        let silent =
          subject.estimate ~groups ~domains:1 ~metrics:Metrics.noop ~columnar:true
            (rng_for case 7) catalog ~fraction:case.Gen.fraction case.Gen.expr
        in
        let expected_indices =
          groups
          * List.fold_left
              (fun acc name ->
                acc + leaf_sample_size ~fraction:case.Gen.fraction catalog name)
              0
              (Expr.leaves case.Gen.expr)
        in
        if
          (not (Float.equal est1.Estimate.point est2.Estimate.point))
          || not (Metrics.counters_equal s1 s2)
        then Fail "re-running with the same seed changed the estimate or the counters"
        else if not (Float.equal est1.Estimate.point silent.Estimate.point) then
          Fail "attaching a metrics sink changed the estimate"
        else if
          s1.Metrics.tuples_scanned < 0 || s1.Metrics.pages_read < 0
          || s1.Metrics.bytes_read < 0 || s1.Metrics.io_batches < 0
          || s1.Metrics.page_cache_hits < 0
          || s1.Metrics.sample_indices < 0 || s1.Metrics.hash_probe_hits < 0
          || s1.Metrics.hash_probe_misses < 0 || s1.Metrics.rng_draws < 0
        then Fail "negative counter"
        else if s1.Metrics.sample_indices <> expected_indices then
          Fail
            (Printf.sprintf
               "sample_indices %d <> %d = groups × Σ per-leaf sample sizes"
               s1.Metrics.sample_indices expected_indices)
        else
          match case.Gen.expr with
          | Expr.Equijoin (_, Expr.Base left, Expr.Base _) ->
            let n_left = leaf_sample_size ~fraction:case.Gen.fraction catalog left in
            let probes = s1.Metrics.hash_probe_hits + s1.Metrics.hash_probe_misses in
            if probes <> groups * n_left then
              Fail
                (Printf.sprintf "hash probes %d <> %d = groups × left sample size"
                   probes (groups * n_left))
            else Pass
          | _ -> Pass);
  }

(* --------------------------------------------------------------- storage *)

(* Packing a relation into the binary pagefile and reloading it is a
   change of storage, never of data: the reloaded catalog must hold
   bit-identical tuples and drive the estimator to a bit-identical
   estimate with identical sampling counters (the page-granular reader
   adds real-I/O counters, but the in-memory estimate path here charges
   none, so even those agree). *)
let storage =
  {
    name = "storage";
    summary = "pagefile pack-and-reload leaves data, estimates and counters bit-identical";
    run =
      (fun subject ~replicates:_ case ->
        let catalog = Gen.materialize case in
        (* A deliberately awkward page capacity so relations straddle
           page boundaries and end on a short last page. *)
        let reload relation =
          let path = Filename.temp_file "raestat-fuzz" ".raf" in
          Fun.protect
            ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
            (fun () ->
              Relational.Pagefile.write_relation ~page_capacity:61 path relation;
              let pf = Relational.Pagefile.openfile path in
              Fun.protect
                ~finally:(fun () -> Relational.Pagefile.close pf)
                (fun () -> Relational.Pagefile.to_relation pf))
        in
        let leaves = List.sort_uniq compare (Expr.leaves case.Gen.expr) in
        let corrupted = ref None in
        let reloaded =
          Catalog.of_list
            (List.map
               (fun name ->
                 let original = Catalog.find catalog name in
                 let relation = reload original in
                 if
                   not
                     (Relational.Schema.equal
                        (Relation.schema original)
                        (Relation.schema relation)
                     && Relation.tuples original = Relation.tuples relation)
                 then corrupted := Some name;
                 (name, relation))
               leaves)
        in
        match !corrupted with
        | Some name ->
          Fail (Printf.sprintf "pagefile round-trip changed relation %S" name)
        | None ->
          let run catalog =
            let metrics = Metrics.create () in
            let est =
              subject.estimate ~groups:3 ~domains:1 ~metrics ~columnar:true
                (rng_for case 8) catalog ~fraction:case.Gen.fraction case.Gen.expr
            in
            (est, Metrics.snapshot metrics)
          in
          let est1, s1 = run catalog in
          let est2, s2 = run reloaded in
          if
            not
              (Float.equal est1.Estimate.point est2.Estimate.point
              && Float.equal est1.Estimate.variance est2.Estimate.variance
              && est1.Estimate.sample_size = est2.Estimate.sample_size)
          then
            Fail
              (Printf.sprintf
                 "estimate over the reloaded catalog (%.17g, var %.17g) diverges from \
                  the original (%.17g, var %.17g)"
                 est2.Estimate.point est2.Estimate.variance est1.Estimate.point
                 est1.Estimate.variance)
          else if not (Metrics.counters_equal s1 s2) then
            Fail "counters diverge between the original and reloaded catalogs"
          else Pass);
  }

(* ----------------------------------------------------------- maintenance *)

module SR = Raestat.Stream_relation
module Tuple = Relational.Tuple
module Predicate = Relational.Predicate
module Value = Relational.Value

type stream_op =
  | Add of Tuple.t
  | Remove of SR.id

(* The production write path; unit tests inject mutants (e.g. a writer
   that drops deletions) to prove the maintenance oracle has teeth. *)
let maintenance_writer stream = function
  | Add tuple -> ignore (SR.insert stream tuple)
  | Remove id -> ignore (SR.delete stream id)

(* Deterministic random interleaving over [pool]: inserts cycle through
   the pool's tuples, deletes pick a uniformly random live id, about one
   op in three.  The model predicts the stream's sequential ids, so the
   returned trace is self-contained: [mixed] is the interleaved phase,
   [live] the (id, tuple) population the model expects after it, and
   [drain] deletes every remaining live id. *)
let maintenance_trace rng pool =
  let live = ref [] and next_id = ref 0 and inserts = ref 0 and ops = ref [] in
  let budget = min 256 (2 * Array.length pool) in
  for _ = 1 to budget do
    let n_live = List.length !live in
    if n_live > 0 && Rng.int rng 3 = 0 then begin
      let victim, _ = List.nth !live (Rng.int rng n_live) in
      live := List.filter (fun (id, _) -> id <> victim) !live;
      ops := Remove victim :: !ops
    end
    else begin
      let tuple = pool.(!inserts mod Array.length pool) in
      live := (!next_id, tuple) :: !live;
      incr next_id;
      incr inserts;
      ops := Add tuple :: !ops
    end
  done;
  let live = List.rev !live in
  (List.rev !ops, live, List.map (fun (id, _) -> Remove id) live)

(* Every maintained-sample tuple must be a live tuple — as a multiset:
   the sample may not hold more copies of a tuple than the population
   does.  Catches deletions applied to the store but not the sample. *)
let sample_within_live ~live sample =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (_, tuple) ->
      Hashtbl.replace counts tuple
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts tuple)))
    live;
  Array.for_all
    (fun tuple ->
      match Hashtbl.find_opt counts tuple with
      | Some n when n > 0 ->
        Hashtbl.replace counts tuple (n - 1);
        true
      | _ -> false)
    (Relation.tuples sample)

let maintenance_oracle ?(writer = maintenance_writer) () =
  {
    name = "maintenance";
    summary =
      "maintained stream samples track random insert/delete interleavings: \
       exact recount, live-sample containment, delete-to-empty, and a \
       replicate-mean unbiasedness gate";
    run =
      (fun _subject ~replicates case ->
        let catalog = Gen.materialize case in
        match Expr.leaves case.Gen.expr with
        | [] -> Skip "no leaf relation"
        | name :: _ ->
          let relation = Catalog.find catalog name in
          let pool = Relation.tuples relation in
          let schema = Relation.schema relation in
          if Array.length pool = 0 then Skip "empty source relation"
          else if Relational.Schema.arity schema = 0 then Skip "no attributes"
          else begin
            (* A predicate keeping about half the pool: attribute 0
               against its median value (total order, any type). *)
            let attr0 = (Relational.Schema.attribute schema 0).Relational.Schema.name in
            let values = Array.map (fun t -> Tuple.get t 0) pool in
            Array.sort Value.compare values;
            let predicate =
              Predicate.le (Predicate.attr attr0)
                (Predicate.const values.(Array.length values / 2))
            in
            let holds = Predicate.compile schema predicate in
            let rng = rng_for case 11 in
            let mixed, live, drain = maintenance_trace rng pool in
            let capacity = max 4 (Array.length pool / 3) in
            let replay seed ops =
              let stream =
                SR.create ~capacity ~bernoulli:0.5 ~window:8 ~seed ~schema ()
              in
              List.iter (writer stream) ops;
              (* Deletion erosion can exhaust an undersized sample; the
                 documented escape hatch is a rescan, and taking it here
                 keeps the replicate estimates defined without hiding a
                 maintenance defect (the recount checks run on the store,
                 not the rebuilt sample). *)
              if SR.sample_size stream = 0 && SR.population stream > 0 then
                SR.rescan stream;
              stream
            in
            let stream = replay (Rng.int rng 0x3FFFFFFF) mixed in
            let truth =
              float_of_int (List.length (List.filter (fun (_, t) -> holds t) live))
            in
            if SR.population stream <> List.length live then
              Fail
                (Printf.sprintf
                   "population %d diverged from the op trace's exact recount %d \
                    after %d interleaved ops"
                   (SR.population stream) (List.length live) (List.length mixed))
            else if SR.sample_size stream > min capacity (SR.population stream) then
              Fail
                (Printf.sprintf "backing sample holds %d tuples, capacity %d, \
                                 population %d"
                   (SR.sample_size stream) capacity (SR.population stream))
            else if not (sample_within_live ~live (SR.sample stream)) then
              Fail "backing sample holds a tuple the live population does not"
            else if
              not
                (sample_within_live ~live
                   (Option.value
                      ~default:(Relation.empty schema)
                      (SR.bernoulli_sample stream)))
            then Fail "Bernoulli sample holds a tuple the live population does not"
            else begin
              List.iter (writer stream) drain;
              let empty_est = SR.estimate_count stream predicate in
              if SR.population stream <> 0 || SR.sample_size stream <> 0 then
                Fail
                  (Printf.sprintf
                     "deleting every live id left population %d, sample %d"
                     (SR.population stream) (SR.sample_size stream))
              else if
                not
                  (Float.equal empty_est.Estimate.point 0.
                  && Float.equal empty_est.Estimate.variance 0.)
              then
                Fail
                  (Printf.sprintf
                     "estimate over the drained stream is (%.17g, var %.17g), not \
                      the exact 0"
                     empty_est.Estimate.point empty_est.Estimate.variance)
              else begin
                (* Replicate-mean unbiasedness of the maintained-sample
                   estimator at the interleaved checkpoint, across
                   independent stream seeds (same trace, fresh
                   reservoir randomness). *)
                let population = List.length live in
                let hit_rate =
                  if population = 0 then 1.
                  else
                    float_of_int (min capacity population) /. float_of_int population
                in
                if
                  truth > 0.
                  && float_of_int (replicates * 8) *. truth *. hit_rate < 25.
                then Pass (* recount checks ran; too little power to gate the mean *)
                else
                  let points ~runs ~salt =
                    let master = rng_for case salt in
                    Array.init runs (fun _ ->
                        (SR.estimate_count
                           (replay (Rng.int master 0x3FFFFFFF) mixed)
                           predicate)
                          .Estimate.point)
                  in
                  let level = 0.9999 in
                  let ok, _ =
                    mean_brackets ~level ~truth (points ~runs:replicates ~salt:12)
                  in
                  if ok then Pass
                  else
                    let again, mean =
                      mean_brackets ~level ~truth
                        (points ~runs:(replicates * 8) ~salt:13)
                    in
                    if again then Pass
                    else
                      Fail
                        (Printf.sprintf
                           "maintained-sample replicate mean %.6g is not \
                            consistent with the trace's exact count %g (%d \
                            replicates, twice)"
                           mean truth (replicates * 8))
              end
            end
          end);
  }

let maintenance = maintenance_oracle ()

(* --------------------------------------------------------------- battery *)

let battery =
  [ census; parity; rewrite; pushdown; unbiasedness; coverage; conservation; storage;
    maintenance ]

let check_case ?(subject = reference) ~replicates case =
  List.find_map
    (fun o ->
      match o.run subject ~replicates case with
      | Fail detail -> Some (o.name, detail)
      | Pass | Skip _ -> None)
    battery

let check_one ?(subject = reference) ~replicates ~oracle case =
  match List.find_opt (fun o -> o.name = oracle) battery with
  | None -> invalid_arg (Printf.sprintf "Check.Oracle.check_one: unknown oracle %S" oracle)
  | Some o -> (
    match o.run subject ~replicates case with
    | Fail detail -> Some detail
    | Pass | Skip _ -> None)
