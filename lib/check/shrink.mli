(** Greedy minimization of a failing fuzz case.

    Candidates are one-step contractions — every expression obtained by
    replacing one node with one of its children — plus halving one
    relation's cardinality.  The first candidate that still triggers
    the failure (per the caller's [check]) is adopted and the search
    restarts from it, until no candidate reproduces or the evaluation
    budget runs out.  Candidates that raise (a contraction can orphan
    an attribute a predicate above still references) simply don't
    reproduce. *)

(** All one-step contractions of an expression. *)
val contractions : Relational.Expr.t -> Relational.Expr.t list

(** [minimize ~check case] — greedy fixpoint under [check] (true =
    still failing), evaluating [check] at most [budget] (default 300)
    times. *)
val minimize : ?budget:int -> check:(Gen.case -> bool) -> Gen.case -> Gen.case
