module Expr = Relational.Expr

let rec contractions e =
  let sub build e1 = List.map build (contractions e1) in
  let sub2 build l r =
    List.map (fun l' -> build l' r) (contractions l)
    @ List.map (fun r' -> build l r') (contractions r)
  in
  match e with
  | Expr.Base _ -> []
  | Expr.Select (p, e1) -> e1 :: sub (fun x -> Expr.Select (p, x)) e1
  | Expr.Project (a, e1) -> e1 :: sub (fun x -> Expr.Project (a, x)) e1
  | Expr.Distinct e1 -> e1 :: sub (fun x -> Expr.Distinct x) e1
  | Expr.Rename (m, e1) -> e1 :: sub (fun x -> Expr.Rename (m, x)) e1
  | Expr.Aggregate (g, a, e1) -> e1 :: sub (fun x -> Expr.Aggregate (g, a, x)) e1
  | Expr.Product (l, r) -> l :: r :: sub2 (fun l' r' -> Expr.Product (l', r')) l r
  | Expr.Equijoin (on, l, r) ->
    l :: r :: sub2 (fun l' r' -> Expr.Equijoin (on, l', r')) l r
  | Expr.Theta_join (p, l, r) ->
    l :: r :: sub2 (fun l' r' -> Expr.Theta_join (p, l', r')) l r
  | Expr.Union (l, r) -> l :: r :: sub2 (fun l' r' -> Expr.Union (l', r')) l r
  | Expr.Inter (l, r) -> l :: r :: sub2 (fun l' r' -> Expr.Inter (l', r')) l r
  | Expr.Diff (l, r) -> l :: r :: sub2 (fun l' r' -> Expr.Diff (l', r')) l r

let card_halvings (case : Gen.case) =
  match case.Gen.body with
  | Gen.Bag specs ->
    List.concat
      (List.mapi
         (fun i s ->
           if s.Gen.card = 0 then []
           else
             [ { case with
                 Gen.body =
                   Gen.Bag
                     (List.mapi
                        (fun j s' ->
                          if i = j then { s' with Gen.card = s'.Gen.card / 2 } else s')
                        specs);
               } ])
         specs)
  | Gen.Set_pair { left; right; overlap } ->
    let shrunk left right =
      { case with
        Gen.body = Gen.Set_pair { left; right; overlap = min overlap (min left right) };
      }
    in
    (if left > 1 then [ shrunk (left / 2) right ] else [])
    @ if right > 1 then [ shrunk left (right / 2) ] else []

let minimize ?(budget = 300) ~check case =
  let remaining = ref budget in
  let still_fails candidate =
    !remaining > 0
    &&
    (decr remaining;
     try check candidate with _ -> false)
  in
  let rec loop case =
    let candidates =
      List.map (fun e -> { case with Gen.expr = e }) (contractions case.Gen.expr)
      @ card_halvings case
    in
    match List.find_opt still_fails candidates with
    | Some smaller -> loop smaller
    | None -> case
  in
  loop case
