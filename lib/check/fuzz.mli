(** The fuzz driver: a budgeted sweep of generated cases through the
    oracle battery, with shrinking and a replayable seed-file format.

    Cases are deterministic in [(seed, id)] (see {!Gen.case}), so a
    failure is fully described by the config plus the failing case id
    and oracle name — that is all the seed file records. *)

type config = {
  budget : int;      (** number of cases to generate and check *)
  seed : int;        (** master seed of the case stream *)
  replicates : int;  (** replicate count for the statistical oracles (≥ 2) *)
}

type failure = {
  case : Gen.case;          (** the case as generated *)
  oracle : string;          (** first failing oracle *)
  detail : string;          (** its failure message on [case] *)
  shrunk : Gen.case;        (** greedily minimized reproduction *)
  shrunk_detail : string;   (** failure message on [shrunk] *)
}

type outcome =
  | Passed of int  (** cases checked, all oracles green *)
  | Found of failure

(** Sweep cases [0 .. budget-1].  Stops at the first failure and
    shrinks it.  [log] (default silent) receives progress lines.
    @raise Invalid_argument if [budget <= 0] or [replicates < 2]. *)
val run : ?subject:Oracle.subject -> ?log:(string -> unit) -> config -> outcome

(** {1 Replay}

    Seed files use the ["raestat-fuzz/1"] format: the version line,
    then [seed N] / [case N] / [replicates N] / [oracle NAME] lines in
    any order; [#]-prefixed lines are human-readable context and are
    ignored on parse. *)

val format_version : string

type replay_header = {
  rseed : int;
  rcase : int;
  rreplicates : int;
  roracle : string;
}

(** Seed-file contents describing [failure] under [config]. *)
val replay_file : config -> failure -> string

val parse_replay : string -> (replay_header, string) result

(** Re-generate the recorded case and re-run the recorded oracle;
    [Found] (with a fresh shrink) when it still fails, [Passed 1]
    when the failure no longer reproduces. *)
val replay : ?subject:Oracle.subject -> replay_header -> outcome
