(** Random estimation cases for the differential fuzz harness.

    A case is a fully deterministic function of [(master, id)]: the
    relation shapes, the tuple values, the expression and the sampling
    fraction are all derived from one seeded {!Sampling.Rng} stream, so
    a failure replays from just those two integers (plus the oracle
    name) — no tuple data needs to be serialized. *)

type spec = {
  rname : string;
  card : int;
  columns : (string * Workload.Dist.t) list;
}

(** How the case's relations are built: [Bag] relations feed the
    scale-up family (selection / projection / product / join shapes);
    [Set_pair] builds the duplicate-free operands the set-operator
    estimators require (via {!Workload.Generator.set_pair}, attribute
    ["k"], relations ["s0"]/["s1"]). *)
type body =
  | Bag of spec list
  | Set_pair of { left : int; right : int; overlap : int }

type case = {
  id : int;
  seed : int;  (** derived from [(master, id)]; drives all draws *)
  body : body;
  expr : Relational.Expr.t;
  fraction : float;
}

(** [case ~master ~id] — the [id]-th case of the stream seeded by
    [master].  Cardinalities include 0 occasionally (empty relations
    are legal inputs); the product of all cardinalities is capped so
    the exact oracles stay cheap. *)
val case : master:int -> id:int -> case

(** Bind the case's relations (freshly generated, deterministic in the
    case) into a new catalog. *)
val materialize : case -> Relational.Catalog.t

(** One-line human description: id, seed, expression, fraction,
    relation shapes. *)
val to_string : case -> string
