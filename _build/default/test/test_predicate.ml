open Helpers
module P = Predicate

let schema = Schema.of_list [ ("a", Value.Tint); ("b", Value.Tint); ("s", Value.Tstr) ]

let tuple a b s = Tuple.make [ Value.Int a; Value.Int b; Value.Str s ]

let holds p t = P.eval schema p t

let test_comparisons () =
  let t = tuple 3 7 "x" in
  Alcotest.(check bool) "eq" true (holds (P.eq (P.attr "a") (P.vint 3)) t);
  Alcotest.(check bool) "neq" true (holds (P.neq (P.attr "a") (P.vint 4)) t);
  Alcotest.(check bool) "lt" true (holds (P.lt (P.attr "a") (P.attr "b")) t);
  Alcotest.(check bool) "le" true (holds (P.le (P.attr "a") (P.vint 3)) t);
  Alcotest.(check bool) "gt" false (holds (P.gt (P.attr "a") (P.attr "b")) t);
  Alcotest.(check bool) "ge" true (holds (P.ge (P.attr "b") (P.vint 7)) t);
  Alcotest.(check bool) "string eq" true (holds (P.eq (P.attr "s") (P.vstr "x")) t)

let test_boolean_combinators () =
  let t = tuple 1 2 "y" in
  let p1 = P.eq (P.attr "a") (P.vint 1) in
  let p2 = P.eq (P.attr "b") (P.vint 9) in
  Alcotest.(check bool) "and" false (holds P.(p1 &&& p2) t);
  Alcotest.(check bool) "or" true (holds P.(p1 ||| p2) t);
  Alcotest.(check bool) "not" true (holds (P.not_ p2) t);
  Alcotest.(check bool) "true" true (holds P.True t);
  Alcotest.(check bool) "false" false (holds P.False t)

let test_between_in () =
  let t = tuple 5 0 "z" in
  Alcotest.(check bool) "between inclusive lo" true
    (holds (P.between (P.attr "a") (Value.Int 5) (Value.Int 9)) t);
  Alcotest.(check bool) "between inclusive hi" true
    (holds (P.between (P.attr "a") (Value.Int 1) (Value.Int 5)) t);
  Alcotest.(check bool) "between outside" false
    (holds (P.between (P.attr "a") (Value.Int 6) (Value.Int 9)) t);
  Alcotest.(check bool) "in" true
    (holds (P.in_ (P.attr "a") [ Value.Int 1; Value.Int 5 ]) t);
  Alcotest.(check bool) "not in" false (holds (P.in_ (P.attr "a") [ Value.Int 2 ]) t)

let test_arithmetic () =
  let t = tuple 3 4 "w" in
  (* a + b = 7 *)
  Alcotest.(check bool) "add" true
    (holds (P.eq (P.Add (P.attr "a", P.attr "b")) (P.vfloat 7.)) t);
  Alcotest.(check bool) "mul" true
    (holds (P.eq (P.Mul (P.attr "a", P.attr "b")) (P.vint 12)) t);
  Alcotest.(check bool) "sub" true
    (holds (P.lt (P.Sub (P.attr "a", P.attr "b")) (P.vint 0)) t);
  Alcotest.(check bool) "div" true
    (holds (P.eq (P.Div (P.attr "b", P.attr "a")) (P.vfloat (4. /. 3.))) t)

let test_null_semantics () =
  let t = Tuple.make [ Value.Null; Value.Int 1; Value.Str "s" ] in
  (* Any comparison touching Null is false; Not flips it to true. *)
  Alcotest.(check bool) "eq null" false (holds (P.eq (P.attr "a") (P.vint 0)) t);
  Alcotest.(check bool) "neq null" false (holds (P.neq (P.attr "a") (P.vint 0)) t);
  Alcotest.(check bool) "arith null" false
    (holds (P.gt (P.Add (P.attr "a", P.attr "b")) (P.vint (-100))) t);
  Alcotest.(check bool) "not of null-cmp" true
    (holds (P.not_ (P.eq (P.attr "a") (P.vint 0))) t)

let test_attributes () =
  let p = P.((eq (attr "a") (vint 1)) &&& gt (Add (attr "b", attr "a")) (attr "b")) in
  Alcotest.(check (list string)) "attrs" [ "a"; "b" ] (P.attributes p)

let test_unknown_attribute () =
  Alcotest.check_raises "unknown" Not_found (fun () ->
      let (_ : Tuple.t -> bool) = P.compile schema (P.eq (P.attr "zz") (P.vint 1)) in
      ())

let test_to_string () =
  let p = P.(eq (attr "a") (vint 1) &&& not_ (lt (attr "b") (vint 2))) in
  Alcotest.(check string) "render" "(a = 1 and not b < 2)" (P.to_string p)

let prop_not_involutive =
  qcheck_case "not(not p) = p on random tuples"
    QCheck.(triple (int_range 0 20) (int_range 0 20) (int_range 0 20))
    (fun (a, b, threshold) ->
      let t = tuple a b "q" in
      let p = P.lt (P.attr "a") (P.vint threshold) in
      holds p t = holds (P.not_ (P.not_ p)) t)

let prop_de_morgan =
  qcheck_case "De Morgan" QCheck.(pair (int_range 0 10) (int_range 0 10))
    (fun (a, b) ->
      let t = tuple a b "q" in
      let p1 = P.lt (P.attr "a") (P.vint 5) and p2 = P.gt (P.attr "b") (P.vint 5) in
      holds (P.not_ P.(p1 &&& p2)) t = holds P.(not_ p1 ||| not_ p2) t)

let suite =
  [
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "boolean combinators" `Quick test_boolean_combinators;
    Alcotest.test_case "between and in" `Quick test_between_in;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "null semantics" `Quick test_null_semantics;
    Alcotest.test_case "attributes" `Quick test_attributes;
    Alcotest.test_case "unknown attribute" `Quick test_unknown_attribute;
    Alcotest.test_case "to_string" `Quick test_to_string;
    prop_not_involutive;
    prop_de_morgan;
  ]
