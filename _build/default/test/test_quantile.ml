open Helpers
module Quantile = Raestat.Quantile
module Estimate = Stats.Estimate

let catalog () =
  (* Values 0..9999 once each: the τ-quantile is ≈ τ·9999. *)
  Catalog.of_list [ ("r", int_relation (List.init 10_000 (fun i -> i))) ]

let test_exact () =
  let c = catalog () in
  check_float ~eps:1e-6 "median" 4999.5 (Quantile.exact c ~relation:"r" ~attribute:"a" ~tau:0.5);
  check_float ~eps:1e-6 "p90" 8999.1 (Quantile.exact c ~relation:"r" ~attribute:"a" ~tau:0.9)

let test_point_estimate_close () =
  let c = catalog () in
  let result = Quantile.median (rng ()) c ~relation:"r" ~attribute:"a" ~n:1_000 () in
  check_close ~tol:0.05 "median estimate" 5_000. result.Quantile.estimate.Estimate.point

let test_interval_properties () =
  let c = catalog () in
  let result =
    Quantile.estimate (rng ()) c ~relation:"r" ~attribute:"a" ~tau:0.25 ~n:500 ()
  in
  Alcotest.(check bool) "ranks ordered" true
    (1 <= result.Quantile.lo_rank && result.Quantile.lo_rank <= result.Quantile.hi_rank
    && result.Quantile.hi_rank <= 500);
  Alcotest.(check bool) "interval ordered" true
    (result.Quantile.interval.Stats.Confidence.lo
    <= result.Quantile.interval.Stats.Confidence.hi);
  Alcotest.(check bool) "point inside interval" true
    (Stats.Confidence.contains result.Quantile.interval
       result.Quantile.estimate.Estimate.point)

let test_coverage_mc () =
  let c = catalog () in
  let rng_ = rng ~seed:131 () in
  let truth = Quantile.exact c ~relation:"r" ~attribute:"a" ~tau:0.5 in
  let reps = 300 in
  let covered = ref 0 in
  for _ = 1 to reps do
    let result =
      Quantile.median rng_ c ~relation:"r" ~attribute:"a" ~n:200 ~level:0.9 ()
    in
    if Stats.Confidence.contains result.Quantile.interval truth then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f >= 0.88" coverage)
    true (coverage >= 0.88)

let test_census_quantile () =
  let c = catalog () in
  let result =
    Quantile.estimate (rng ()) c ~relation:"r" ~attribute:"a" ~tau:0.5 ~n:10_000 ()
  in
  check_float ~eps:1e-6 "census median" 4999.5 result.Quantile.estimate.Estimate.point

let test_nulls_excluded () =
  let schema = Schema.of_list [ ("a", Value.Tint) ] in
  let r =
    Relation.make schema
      [ Tuple.make [ Value.Int 1 ]; Tuple.make [ Value.Null ]; Tuple.make [ Value.Int 3 ] ]
  in
  let c = Catalog.of_list [ ("t", r) ] in
  let result = Quantile.estimate (rng ()) c ~relation:"t" ~attribute:"a" ~tau:0.5 ~n:3 () in
  check_float "median of non-null" 2. result.Quantile.estimate.Estimate.point

let test_validation () =
  let c = catalog () in
  List.iter
    (fun (name, thunk) ->
      Alcotest.(check bool) name true
        (try
           ignore (thunk ());
           false
         with Invalid_argument _ -> true))
    [
      ("tau=0", fun () -> Quantile.estimate (rng ()) c ~relation:"r" ~attribute:"a" ~tau:0. ~n:10 ());
      ("tau=1", fun () -> Quantile.estimate (rng ()) c ~relation:"r" ~attribute:"a" ~tau:1. ~n:10 ());
      ("n=0", fun () -> Quantile.estimate (rng ()) c ~relation:"r" ~attribute:"a" ~tau:0.5 ~n:0 ());
      ( "bad level",
        fun () ->
          Quantile.estimate (rng ()) c ~relation:"r" ~attribute:"a" ~tau:0.5 ~n:10 ~level:2. () );
    ]

let suite =
  [
    Alcotest.test_case "exact" `Quick test_exact;
    Alcotest.test_case "point estimate close" `Quick test_point_estimate_close;
    Alcotest.test_case "interval properties" `Quick test_interval_properties;
    Alcotest.test_case "coverage (MC)" `Slow test_coverage_mc;
    Alcotest.test_case "census quantile" `Quick test_census_quantile;
    Alcotest.test_case "nulls excluded" `Quick test_nulls_excluded;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
