open Helpers
module Paged = Relational.Paged

let relation = int_relation (List.init 25 (fun i -> i))

let test_page_count () =
  let paged = Paged.make ~page_capacity:10 relation in
  Alcotest.(check int) "pages" 3 (Paged.page_count paged);
  Alcotest.(check int) "exact split" 5
    (Paged.page_count (Paged.make ~page_capacity:5 relation));
  Alcotest.(check int) "empty relation" 0
    (Paged.page_count (Paged.make ~page_capacity:4 (Relation.empty (Relation.schema relation))))

let test_page_sizes () =
  let paged = Paged.make ~page_capacity:10 relation in
  Alcotest.(check int) "full page" 10 (Paged.page_size paged 0);
  Alcotest.(check int) "last short page" 5 (Paged.page_size paged 2)

let test_pages_partition_tuples () =
  let paged = Paged.make ~page_capacity:7 relation in
  let all =
    List.concat_map
      (fun i -> Array.to_list (Paged.peek_page paged i))
      (List.init (Paged.page_count paged) (fun i -> i))
  in
  Alcotest.(check int) "total" 25 (List.length all);
  let values =
    List.map (fun t -> match Tuple.get t 0 with Value.Int i -> i | _ -> -1) all
  in
  Alcotest.(check (list int)) "order preserved" (List.init 25 (fun i -> i)) values

let test_access_counter () =
  let paged = Paged.make ~page_capacity:10 relation in
  Alcotest.(check int) "fresh" 0 (Paged.accesses paged);
  ignore (Paged.page paged 0);
  ignore (Paged.page paged 2);
  Alcotest.(check int) "two accesses" 2 (Paged.accesses paged);
  ignore (Paged.peek_page paged 1);
  Alcotest.(check int) "peek is free" 2 (Paged.accesses paged);
  Paged.reset_accesses paged;
  Alcotest.(check int) "reset" 0 (Paged.accesses paged)

let test_bounds () =
  let paged = Paged.make ~page_capacity:10 relation in
  Alcotest.(check bool) "negative" true
    (try
       ignore (Paged.page paged (-1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "too large" true
    (try
       ignore (Paged.page paged 3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad capacity" true
    (try
       ignore (Paged.make ~page_capacity:0 relation);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "page count" `Quick test_page_count;
    Alcotest.test_case "page sizes" `Quick test_page_sizes;
    Alcotest.test_case "pages partition tuples" `Quick test_pages_partition_tuples;
    Alcotest.test_case "access counter" `Quick test_access_counter;
    Alcotest.test_case "bounds" `Quick test_bounds;
  ]
