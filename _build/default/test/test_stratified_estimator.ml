open Helpers
module SE = Raestat.Stratified_estimator
module Estimate = Stats.Estimate
module P = Predicate

(* Heterogeneous strata: the predicate rate depends strongly on g. *)
let catalog () =
  let rng_ = rng ~seed:91 () in
  let g_col =
    Array.init 12_000 (fun i -> i mod 3)
  in
  let v_col =
    Array.map
      (fun g ->
        (* g=0: ~90% match, g=1: ~50%, g=2: ~5% under v < 100. *)
        let hi = match g with 0 -> 111 | 1 -> 199 | _ -> 1999 in
        Sampling.Rng.int rng_ hi)
      g_col
  in
  Catalog.of_list
    [ ("r", Workload.Generator.of_columns [ ("g", g_col); ("v", v_col) ]) ]

let pred = P.lt (P.attr "v") (P.vint 100)

let test_census_exact () =
  let c = catalog () in
  let truth = float_of_int (Eval.count c (Expr.select pred (Expr.base "r"))) in
  let result = SE.count_by_attribute (rng ()) c ~relation:"r" ~attribute:"g" ~n:12_000 pred in
  check_float "census" truth result.SE.estimate.Estimate.point

let test_strata_metadata () =
  let c = catalog () in
  let result = SE.count_by_attribute (rng ()) c ~relation:"r" ~attribute:"g" ~n:600 pred in
  Alcotest.(check int) "three strata" 3 (List.length result.SE.strata);
  List.iter
    (fun (_, population, allocated) ->
      Alcotest.(check int) "proportional" 200 allocated;
      Alcotest.(check int) "population" 4_000 population)
    result.SE.strata;
  Alcotest.(check int) "total drawn" 600 result.SE.estimate.Estimate.sample_size

let test_unbiased_mc () =
  let c = catalog () in
  let truth = float_of_int (Eval.count c (Expr.select pred (Expr.base "r"))) in
  let rng_ = rng ~seed:92 () in
  let mean =
    monte_carlo ~reps:300 (fun () ->
        (SE.count_by_attribute rng_ c ~relation:"r" ~attribute:"g" ~n:300 pred)
          .SE.estimate.Estimate.point)
  in
  check_close ~tol:0.04 "unbiased" truth mean

let test_beats_srs_on_heterogeneous_strata () =
  let c = catalog () in
  let rng_ = rng ~seed:93 () in
  let reps = 300 and n = 300 in
  let var_of points = Stats.Summary.variance (Stats.Summary.of_array points) in
  let stratified =
    Array.init reps (fun _ ->
        (SE.count_by_attribute rng_ c ~relation:"r" ~attribute:"g" ~n pred)
          .SE.estimate.Estimate.point)
  in
  let srs =
    Array.init reps (fun _ ->
        (Raestat.Count_estimator.selection rng_ c ~relation:"r" ~n pred).Estimate.point)
  in
  let v_strat = var_of stratified and v_srs = var_of srs in
  Alcotest.(check bool)
    (Printf.sprintf "stratified var %.0f < SRS var %.0f" v_strat v_srs)
    true (v_strat < v_srs)

let test_variance_honest () =
  let c = catalog () in
  let rng_ = rng ~seed:94 () in
  let results =
    Array.init 300 (fun _ ->
        (SE.count_by_attribute rng_ c ~relation:"r" ~attribute:"g" ~n:300 pred).SE.estimate)
  in
  let empirical =
    Stats.Summary.variance
      (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.point) results))
  in
  let predicted =
    Stats.Summary.mean
      (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.variance) results))
  in
  check_close ~tol:0.25 "variance honest" empirical predicted

let test_custom_key () =
  let c = catalog () in
  let key t =
    match Tuple.get t 0 with Value.Int g -> if g = 0 then "hot" else "cold" | _ -> "?"
  in
  let result = SE.count (rng ()) c ~relation:"r" ~key ~n:100 pred in
  Alcotest.(check int) "two strata" 2 (List.length result.SE.strata)

let test_validation () =
  let c = catalog () in
  Alcotest.(check bool) "n=0" true
    (try
       ignore (SE.count_by_attribute (rng ()) c ~relation:"r" ~attribute:"g" ~n:0 pred);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "census exact" `Quick test_census_exact;
    Alcotest.test_case "strata metadata" `Quick test_strata_metadata;
    Alcotest.test_case "unbiased (MC)" `Slow test_unbiased_mc;
    Alcotest.test_case "beats SRS on heterogeneous strata (MC)" `Slow
      test_beats_srs_on_heterogeneous_strata;
    Alcotest.test_case "variance honest (MC)" `Slow test_variance_honest;
    Alcotest.test_case "custom key" `Quick test_custom_key;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
