open Helpers
module HT = Raestat.Horvitz_thompson
module Estimate = Stats.Estimate
module P = Predicate

let skewed_catalog () =
  (* Pareto-ish amounts: a few huge, many small — SRS's nightmare for
     SUM. *)
  let rng_ = rng ~seed:121 () in
  let amounts =
    Array.init 20_000 (fun _ ->
        let u = Sampling.Rng.positive_float rng_ in
        1 + int_of_float (20. *. ((1. /. u) ** 0.7)))
  in
  Catalog.of_list [ ("r", Workload.Generator.of_columns [ ("amount", amounts) ]) ]

let exact_sum c = Raestat.Aggregate.exact_sum c ~attribute:"amount" (Expr.base "r")

let test_of_sample_formulas () =
  (* Two items fully observed: π = 1 gives the exact total, zero
     variance. *)
  let est = HT.of_sample [| (10., 1.); (5., 1.) |] in
  check_float "point" 15. est.Estimate.point;
  check_float "variance" 0. est.Estimate.variance;
  (* Single item at π = 0.5: point 2y, variance (0.5/0.25)y². *)
  let est2 = HT.of_sample [| (10., 0.5) |] in
  check_float "scaled" 20. est2.Estimate.point;
  check_float "variance formula" 200. est2.Estimate.variance

let test_of_sample_validation () =
  Alcotest.(check bool) "pi=0" true
    (try
       ignore (HT.of_sample [| (1., 0.) |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "pi>1" true
    (try
       ignore (HT.of_sample [| (1., 1.5) |]);
       false
     with Invalid_argument _ -> true)

let test_unbiased_mc () =
  let c = skewed_catalog () in
  let truth = exact_sum c in
  let rng_ = rng ~seed:122 () in
  let mean =
    monte_carlo ~reps:400 (fun () ->
        (HT.sum rng_ c ~relation:"r" ~attribute:"amount" ~expected_n:500. ())
          .Estimate.point)
  in
  check_close ~tol:0.03 "unbiased" truth mean

let test_beats_srs_on_skewed_sums () =
  let c = skewed_catalog () in
  let rng_ = rng ~seed:123 () in
  let reps = 200 in
  let ht_points =
    Array.init reps (fun _ ->
        (HT.sum rng_ c ~relation:"r" ~attribute:"amount" ~expected_n:500. ())
          .Estimate.point)
  in
  let srs_points =
    Array.init reps (fun _ ->
        (Raestat.Aggregate.sum_selection rng_ c ~relation:"r" ~attribute:"amount" ~n:500
           P.True)
          .Estimate.point)
  in
  let sd points = Stats.Summary.stddev (Stats.Summary.of_array points) in
  let sd_ht = sd ht_points and sd_srs = sd srs_points in
  Alcotest.(check bool)
    (Printf.sprintf "HT sd %.0f ≪ SRS sd %.0f" sd_ht sd_srs)
    true
    (sd_ht *. 3. < sd_srs)

let test_variance_honest () =
  let c = skewed_catalog () in
  let rng_ = rng ~seed:124 () in
  let estimates =
    Array.init 300 (fun _ ->
        HT.sum rng_ c ~relation:"r" ~attribute:"amount" ~expected_n:500. ())
  in
  let points = Array.map (fun e -> e.Estimate.point) estimates in
  let empirical = Stats.Summary.variance (Stats.Summary.of_array points) in
  let predicted =
    Stats.Summary.mean
      (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.variance) estimates))
  in
  check_close ~tol:0.30 "variance honest" empirical predicted

let test_with_filter () =
  let c = skewed_catalog () in
  let where = P.ge (P.attr "amount") (P.vint 100) in
  let truth =
    Raestat.Aggregate.exact_sum c ~attribute:"amount"
      (Expr.select where (Expr.base "r"))
  in
  let rng_ = rng ~seed:125 () in
  let mean =
    monte_carlo ~reps:300 (fun () ->
        (HT.sum rng_ c ~relation:"r" ~attribute:"amount" ~expected_n:300. ~where ())
          .Estimate.point)
  in
  check_close ~tol:0.05 "filtered sum" truth mean

let test_status_unbiased () =
  let c = skewed_catalog () in
  let est = HT.sum (rng ()) c ~relation:"r" ~attribute:"amount" ~expected_n:100. () in
  Alcotest.(check bool) "unbiased" true (est.Estimate.status = Estimate.Unbiased)

let suite =
  [
    Alcotest.test_case "of_sample formulas" `Quick test_of_sample_formulas;
    Alcotest.test_case "of_sample validation" `Quick test_of_sample_validation;
    Alcotest.test_case "unbiased (MC)" `Slow test_unbiased_mc;
    Alcotest.test_case "beats SRS on skewed sums (MC)" `Slow test_beats_srs_on_skewed_sums;
    Alcotest.test_case "variance honest (MC)" `Slow test_variance_honest;
    Alcotest.test_case "with filter (MC)" `Slow test_with_filter;
    Alcotest.test_case "status" `Quick test_status_unbiased;
  ]
