open Helpers
module Dist = Workload.Dist
module Generator = Workload.Generator
module Correlated = Workload.Correlated
module Queries = Workload.Queries
module Tpc = Workload.Tpc_mini

let test_zipf_probabilities () =
  let p = Dist.zipf_probabilities ~n_values:100 ~skew:1.0 in
  check_float ~eps:1e-12 "sums to 1" 1. (Array.fold_left ( +. ) 0. p);
  for i = 1 to 99 do
    if p.(i) > p.(i - 1) +. 1e-15 then Alcotest.fail "not non-increasing"
  done;
  (* z=0 is uniform. *)
  let u = Dist.zipf_probabilities ~n_values:10 ~skew:0. in
  Array.iter (fun x -> check_float ~eps:1e-12 "uniform" 0.1 x) u

let test_zipf_sampler_frequencies () =
  let r = rng () in
  let sampler = Dist.compile (Dist.Zipf { n_values = 5; skew = 1.0 }) in
  let counts = Array.make 5 0 in
  let reps = 50_000 in
  for _ = 1 to reps do
    let v = sampler r in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = Dist.zipf_probabilities ~n_values:5 ~skew:1.0 in
  Array.iteri
    (fun i c ->
      check_close ~tol:0.05
        (Printf.sprintf "value %d frequency" i)
        expected.(i)
        (float_of_int c /. float_of_int reps))
    counts

let test_uniform_bounds () =
  let r = rng () in
  let sampler = Dist.compile (Dist.Uniform { lo = -3; hi = 7 }) in
  for _ = 1 to 5_000 do
    let v = sampler r in
    if v < -3 || v > 7 then Alcotest.failf "out of bounds %d" v
  done

let test_constant_and_exponential () =
  let r = rng () in
  Alcotest.(check int) "constant" 9 ((Dist.compile (Dist.Constant 9)) r);
  let exp_sampler = Dist.compile (Dist.Exponential { mean = 5. }) in
  let s = ref Stats.Summary.empty in
  for _ = 1 to 20_000 do
    let v = exp_sampler r in
    if v < 0 then Alcotest.fail "negative exponential";
    s := Stats.Summary.add !s (float_of_int v)
  done;
  (* Floor of Exp(5) has mean 1/(e^{1/5}−1) ≈ 4.517. *)
  check_close ~tol:0.05 "exp mean" 4.517 (Stats.Summary.mean !s)

let test_self_similar_skews () =
  let r = rng () in
  let sampler = Dist.compile (Dist.Self_similar { n_values = 100; h = 0.8 }) in
  let hot = ref 0 in
  let reps = 20_000 in
  for _ = 1 to reps do
    if sampler r < 20 then incr hot
  done;
  (* 80% of mass on the first 20% of values. *)
  check_close ~tol:0.05 "80-20" 0.8 (float_of_int !hot /. float_of_int reps)

let test_dist_validation () =
  List.iter
    (fun d ->
      Alcotest.(check bool) (Dist.to_string d) true
        (try
           ignore (Dist.compile d (rng ()));
           false
         with Invalid_argument _ -> true))
    [
      Dist.Uniform { lo = 5; hi = 4 };
      Dist.Zipf { n_values = 0; skew = 1. };
      Dist.Zipf { n_values = 5; skew = -1. };
      Dist.Normal { mean = 0.; stddev = -1. };
      Dist.Self_similar { n_values = 10; h = 0.4 };
      Dist.Exponential { mean = 0. };
    ]

let test_generator_relation () =
  let r =
    Generator.relation (rng ()) ~n:50
      [ ("a", Dist.Uniform { lo = 0; hi = 9 }); ("b", Dist.Constant 1) ]
  in
  Alcotest.(check int) "cardinality" 50 (Relation.cardinality r);
  Alcotest.(check (list string)) "schema" [ "a"; "b" ] (Schema.names (Relation.schema r))

let test_of_columns_validation () =
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore (Generator.of_columns [ ("a", [| 1 |]); ("b", [| 1; 2 |]) ]);
       false
     with Invalid_argument _ -> true)

let test_shuffle_and_sort () =
  let r = int_relation (List.init 30 (fun i -> 29 - i)) in
  let sorted = Generator.sort_by "a" r in
  let first = Tuple.get (Relation.tuple sorted 0) 0 in
  Alcotest.(check bool) "sorted ascending" true (Value.equal first (Value.Int 0));
  let shuffled = Generator.shuffle (rng ()) sorted in
  Alcotest.(check int) "same card" 30 (Relation.cardinality shuffled)

let test_set_pair_overlap () =
  let left, right =
    Generator.set_pair (rng ()) ~card_left:200 ~card_right:150 ~overlap:60 ~attribute:"a"
  in
  Alcotest.(check bool) "left is set" true (Relation.is_set left);
  Alcotest.(check bool) "right is set" true (Relation.is_set right);
  let c = Catalog.of_list [ ("l", left); ("r", right) ] in
  Alcotest.(check int) "overlap exact" 60
    (Eval.count c (Expr.inter (Expr.base "l") (Expr.base "r")))

let test_set_pair_validation () =
  Alcotest.(check bool) "overlap too big" true
    (try
       ignore (Generator.set_pair (rng ()) ~card_left:5 ~card_right:5 ~overlap:6 ~attribute:"a");
       false
     with Invalid_argument _ -> true)

let test_clustered_in_domain () =
  let r = Generator.clustered (rng ()) ~n:500 ~dims:2 ~clusters:5 ~domain:100 ~spread:3. in
  Alcotest.(check int) "cardinality" 500 (Relation.cardinality r);
  Relation.iter
    (fun t ->
      Array.iter
        (fun v ->
          match v with
          | Value.Int i -> if i < 0 || i >= 100 then Alcotest.failf "out of domain %d" i
          | _ -> Alcotest.fail "non-int")
        t)
    r

let test_clustered_actually_clusters () =
  (* With tight spread, the number of distinct values is far below the
     uniform expectation. *)
  let r = Generator.clustered (rng ()) ~n:2000 ~dims:1 ~clusters:4 ~spread:1. ~domain:10_000 in
  let c = Catalog.of_list [ ("r", r) ] in
  let d = Eval.count c (Expr.distinct (Expr.base "r")) in
  Alcotest.(check bool) (Printf.sprintf "few distinct (%d)" d) true (d < 200)

let test_correlated_positive_vs_negative_join_sizes () =
  (* With skewed frequencies, a positive mapping aligns the hot values
     ⇒ much bigger join than the negative mapping. *)
  let rng_ = rng ~seed:61 () in
  let join_size correlation =
    let l, r =
      Correlated.pair rng_ ~n_left:3000 ~n_right:3000 ~domain:100 ~skew_left:1.0
        ~skew_right:1.0 correlation ~attribute:"a"
    in
    let c = Catalog.of_list [ ("l", l); ("r", r) ] in
    Eval.count c
      (Expr.theta_join
         (Predicate.eq (Predicate.attr "l.a") (Predicate.attr "r.a"))
         (Expr.base "l") (Expr.base "r"))
  in
  let pos = join_size Correlated.Positive in
  let neg = join_size Correlated.Negative in
  Alcotest.(check bool)
    (Printf.sprintf "positive (%d) > 2× negative (%d)" pos neg)
    true
    (pos > 2 * neg)

let test_correlated_values_in_domain () =
  let l, r =
    Correlated.pair (rng ()) ~n_left:100 ~n_right:100 ~domain:10 ~skew_left:0.5
      ~skew_right:0.5 Correlated.Independent ~attribute:"a"
  in
  List.iter
    (fun relation ->
      Relation.iter
        (fun t ->
          match Tuple.get t 0 with
          | Value.Int i -> if i < 0 || i >= 10 then Alcotest.failf "oob %d" i
          | _ -> Alcotest.fail "non-int")
        relation)
    [ l; r ]

let test_correlation_names () =
  Alcotest.(check string) "positive" "positive" (Correlated.correlation_to_string Correlated.Positive);
  Alcotest.(check string) "weak" "weak-positive(0.1)"
    (Correlated.correlation_to_string (Correlated.Weak_positive 0.1))

let test_queries_selectivity () =
  let rng_ = rng ~seed:62 () in
  let r =
    Generator.int_relation rng_ ~n:20_000 ~attribute:"a" (Dist.Uniform { lo = 0; hi = 999 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let p = Queries.range_for_selectivity ~lo:0 ~hi:999 ~selectivity:0.25 "a" in
  let hits = Eval.count c (Expr.select p (Expr.base "r")) in
  check_close ~tol:0.05 "selectivity" 5000. (float_of_int hits)

let test_queries_chain_join_validation () =
  Alcotest.(check bool) "arity mismatch" true
    (try
       ignore (Queries.chain_join ~relations:[ "a"; "b" ] ~on:[]);
       false
     with Invalid_argument _ -> true)

let test_tpc_catalog () =
  let c = Tpc.catalog (rng ()) ~sizes:{ Tpc.suppliers = 100; parts = 200; orders = 2_000 } () in
  Alcotest.(check int) "suppliers" 100 (Relation.cardinality (Catalog.find c "suppliers"));
  Alcotest.(check int) "parts" 200 (Relation.cardinality (Catalog.find c "parts"));
  Alcotest.(check int) "orders" 2000 (Relation.cardinality (Catalog.find c "orders"));
  (* Every order joins exactly one supplier and one part: the chain
     query returns exactly |orders| tuples. *)
  Alcotest.(check int) "chain query" 2000 (Eval.count c (Tpc.chain_query ()))

let test_tpc_filtered_chain () =
  let c = Tpc.catalog (rng ()) ~sizes:{ Tpc.suppliers = 100; parts = 200; orders = 2_000 } () in
  let filtered =
    Tpc.chain_query
      ~supplier_filter:(Predicate.eq (Predicate.attr "s_region") (Predicate.vint 0))
      ()
  in
  let n = Eval.count c filtered in
  Alcotest.(check bool) (Printf.sprintf "filtered (%d) smaller" n) true (n < 2000 && n > 0)

let suite =
  [
    Alcotest.test_case "zipf probabilities" `Quick test_zipf_probabilities;
    Alcotest.test_case "zipf sampler frequencies" `Slow test_zipf_sampler_frequencies;
    Alcotest.test_case "uniform bounds" `Quick test_uniform_bounds;
    Alcotest.test_case "constant and exponential" `Quick test_constant_and_exponential;
    Alcotest.test_case "self-similar skews" `Quick test_self_similar_skews;
    Alcotest.test_case "distribution validation" `Quick test_dist_validation;
    Alcotest.test_case "generator relation" `Quick test_generator_relation;
    Alcotest.test_case "of_columns validation" `Quick test_of_columns_validation;
    Alcotest.test_case "shuffle and sort" `Quick test_shuffle_and_sort;
    Alcotest.test_case "set_pair overlap exact" `Quick test_set_pair_overlap;
    Alcotest.test_case "set_pair validation" `Quick test_set_pair_validation;
    Alcotest.test_case "clustered in domain" `Quick test_clustered_in_domain;
    Alcotest.test_case "clustered clusters" `Quick test_clustered_actually_clusters;
    Alcotest.test_case "correlation changes join size" `Slow
      test_correlated_positive_vs_negative_join_sizes;
    Alcotest.test_case "correlated values in domain" `Quick test_correlated_values_in_domain;
    Alcotest.test_case "correlation names" `Quick test_correlation_names;
    Alcotest.test_case "selectivity templates" `Quick test_queries_selectivity;
    Alcotest.test_case "chain join validation" `Quick test_queries_chain_join_validation;
    Alcotest.test_case "tpc catalog" `Quick test_tpc_catalog;
    Alcotest.test_case "tpc filtered chain" `Quick test_tpc_filtered_chain;
  ]
