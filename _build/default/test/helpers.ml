(* Shared helpers for the test suites. *)

module Value = Relational.Value
module Schema = Relational.Schema
module Tuple = Relational.Tuple
module Relation = Relational.Relation
module Predicate = Relational.Predicate
module Expr = Relational.Expr
module Eval = Relational.Eval
module Catalog = Relational.Catalog

let rng ?(seed = 4242) () = Sampling.Rng.create ~seed ()

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

(* Relative-tolerance float check for Monte-Carlo results. *)
let check_close ~tol name expected actual =
  let scale = Float.max 1. (Float.abs expected) in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %g, got %g (tolerance %g%%)" name expected actual
      (100. *. tol)

let int_relation ?(attribute = "a") values =
  Relation.make
    (Schema.of_list [ (attribute, Value.Tint) ])
    (List.map (fun v -> Tuple.make [ Value.Int v ]) values)

let two_column_relation ?(names = ("a", "b")) rows =
  let a, b = names in
  Relation.make
    (Schema.of_list [ (a, Value.Tint); (b, Value.Tint) ])
    (List.map (fun (x, y) -> Tuple.make [ Value.Int x; Value.Int y ]) rows)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Mean of [reps] draws of [f]. *)
let monte_carlo ~reps f =
  let acc = ref 0. in
  for _ = 1 to reps do
    acc := !acc +. f ()
  done;
  !acc /. float_of_int reps

(* All size-[k] subsets of [0, n), for exhaustive unbiasedness checks. *)
let rec subsets k n start =
  if k = 0 then [ [] ]
  else if start >= n then []
  else
    let with_start = List.map (fun rest -> start :: rest) (subsets (k - 1) n (start + 1)) in
    with_start @ subsets k n (start + 1)

let all_samples ~n ~k = subsets k n 0
