open Helpers
module Weighted = Sampling.Weighted

let test_reservoir_size () =
  let items = Array.init 100 (fun i -> i + 1) in
  let sample = Weighted.reservoir (rng ()) ~k:10 ~weight:float_of_int items in
  Alcotest.(check int) "size" 10 (Array.length sample);
  (* Short input. *)
  let small = Weighted.reservoir (rng ()) ~k:10 ~weight:float_of_int [| 1; 2; 3 |] in
  Alcotest.(check int) "short" 3 (Array.length small)

let test_reservoir_distinct () =
  let items = Array.init 50 (fun i -> i) in
  let sample = Weighted.reservoir (rng ()) ~k:20 ~weight:(fun _ -> 1.) items in
  let sorted = List.sort_uniq Int.compare (Array.to_list sample) in
  Alcotest.(check int) "no duplicates" 20 (List.length sorted)

let test_reservoir_zero_weight_excluded () =
  let items = Array.init 20 (fun i -> i) in
  let weight i = if i < 10 then 0. else 1. in
  for _ = 1 to 50 do
    let sample = Weighted.reservoir (rng ()) ~k:5 ~weight items in
    Array.iter (fun i -> if i < 10 then Alcotest.failf "zero-weight item %d drawn" i) sample
  done

let test_reservoir_weight_bias () =
  (* Item with weight 9 vs 9 items of weight 1: first draw (k=1) picks
     the heavy item with probability 0.5. *)
  let r = rng () in
  let items = Array.init 10 (fun i -> i) in
  let weight i = if i = 0 then 9. else 1. in
  let heavy = ref 0 in
  let reps = 20_000 in
  for _ = 1 to reps do
    let sample = Weighted.reservoir r ~k:1 ~weight items in
    if sample.(0) = 0 then incr heavy
  done;
  check_close ~tol:0.05 "heavy share" 0.5 (float_of_int !heavy /. float_of_int reps)

let test_reservoir_negative_weight () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Weighted.reservoir (rng ()) ~k:1 ~weight:(fun _ -> -1.) [| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_inclusion_probabilities_sum () =
  let weights = [| 1.; 2.; 3.; 4. |] in
  let pi = Weighted.inclusion_probabilities ~expected_n:2. weights in
  check_float ~eps:1e-6 "sums to expected" 2. (Array.fold_left ( +. ) 0. pi);
  (* Proportional when nothing caps: π_i = 2·w_i/10. *)
  Array.iteri (fun i w -> check_float ~eps:1e-6 "proportional" (0.2 *. w) pi.(i)) weights

let test_inclusion_probabilities_capping () =
  (* A dominant weight gets capped at 1 and the rest re-calibrated. *)
  let weights = [| 100.; 1.; 1. |] in
  let pi = Weighted.inclusion_probabilities ~expected_n:2. weights in
  check_float ~eps:1e-6 "cap" 1. pi.(0);
  check_float ~eps:1e-6 "rest split evenly" 0.5 pi.(1);
  check_float ~eps:1e-6 "total" 2. (Array.fold_left ( +. ) 0. pi)

let test_inclusion_probabilities_infeasible () =
  Alcotest.(check bool) "too many" true
    (try
       ignore (Weighted.inclusion_probabilities ~expected_n:3. [| 1.; 0.; 1. |]);
       false
     with Invalid_argument _ -> true)

let test_poisson_expected_size () =
  let r = rng () in
  let items = Array.init 200 (fun i -> i + 1) in
  let sizes = ref Stats.Summary.empty in
  for _ = 1 to 1_000 do
    let sample = Weighted.poisson r ~expected_n:20. ~weight:float_of_int items in
    sizes := Stats.Summary.add !sizes (float_of_int (Array.length sample))
  done;
  check_close ~tol:0.03 "mean size" 20. (Stats.Summary.mean !sizes)

let test_poisson_inclusion_frequencies () =
  let r = rng () in
  let items = [| 1; 2; 3; 4 |] in
  let counts = Array.make 5 0 in
  let reps = 20_000 in
  for _ = 1 to reps do
    let sample = Weighted.poisson r ~expected_n:2. ~weight:float_of_int items in
    Array.iter (fun (item, _) -> counts.(item) <- counts.(item) + 1) sample
  done;
  (* π_i = 2·i/10. *)
  List.iter
    (fun i ->
      check_close ~tol:0.05
        (Printf.sprintf "inclusion of %d" i)
        (0.2 *. float_of_int i)
        (float_of_int counts.(i) /. float_of_int reps))
    [ 1; 2; 3; 4 ]

let test_poisson_reports_probabilities () =
  let sample =
    Weighted.poisson (rng ()) ~expected_n:2. ~weight:float_of_int [| 1; 2; 3; 4 |]
  in
  Array.iter
    (fun (item, pi) -> check_float ~eps:1e-6 "pi matches" (0.2 *. float_of_int item) pi)
    sample

let suite =
  [
    Alcotest.test_case "reservoir size" `Quick test_reservoir_size;
    Alcotest.test_case "reservoir distinct" `Quick test_reservoir_distinct;
    Alcotest.test_case "zero weights excluded" `Quick test_reservoir_zero_weight_excluded;
    Alcotest.test_case "weight bias (MC)" `Slow test_reservoir_weight_bias;
    Alcotest.test_case "negative weight rejected" `Quick test_reservoir_negative_weight;
    Alcotest.test_case "inclusion probabilities sum" `Quick test_inclusion_probabilities_sum;
    Alcotest.test_case "inclusion capping" `Quick test_inclusion_probabilities_capping;
    Alcotest.test_case "infeasible expected_n" `Quick test_inclusion_probabilities_infeasible;
    Alcotest.test_case "poisson expected size (MC)" `Slow test_poisson_expected_size;
    Alcotest.test_case "poisson inclusion frequencies (MC)" `Slow
      test_poisson_inclusion_frequencies;
    Alcotest.test_case "poisson reports probabilities" `Quick
      test_poisson_reports_probabilities;
  ]
