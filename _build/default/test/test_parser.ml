open Helpers
module Parser = Relational.Parser
module P = Predicate

let check_pred text expected =
  let parsed = Parser.parse_predicate text in
  Alcotest.(check bool) text true (parsed = expected)

let check_expr text expected =
  let parsed = Parser.parse_expr text in
  Alcotest.(check bool) text true (parsed = expected)

let test_predicate_comparisons () =
  check_pred "a = 1" (P.eq (P.attr "a") (P.vint 1));
  check_pred "a != 1" (P.neq (P.attr "a") (P.vint 1));
  check_pred "a <> 1" (P.neq (P.attr "a") (P.vint 1));
  check_pred "a <= 2.5" (P.le (P.attr "a") (P.vfloat 2.5));
  check_pred "a >= -3" (P.ge (P.attr "a") (P.const (Value.Int (-3))));
  check_pred "name = 'bob'" (P.eq (P.attr "name") (P.vstr "bob"));
  check_pred "a < b" (P.lt (P.attr "a") (P.attr "b"))

let test_predicate_boolean_structure () =
  (* and binds tighter than or; both left-associative. *)
  check_pred "a = 1 or b = 2 and c = 3"
    P.(eq (attr "a") (vint 1) ||| (eq (attr "b") (vint 2) &&& eq (attr "c") (vint 3)));
  check_pred "(a = 1 or b = 2) and c = 3"
    P.((eq (attr "a") (vint 1) ||| eq (attr "b") (vint 2)) &&& eq (attr "c") (vint 3));
  check_pred "not a = 1" (P.not_ (P.eq (P.attr "a") (P.vint 1)));
  check_pred "not (a = 1 and true)" (P.not_ P.(eq (attr "a") (vint 1) &&& True));
  check_pred "true" P.True;
  check_pred "false" P.False

let test_predicate_between_in () =
  check_pred "age between 25 and 64" (P.between (P.attr "age") (Value.Int 25) (Value.Int 64));
  check_pred "c in (1, 2, 3)" (P.in_ (P.attr "c") [ Value.Int 1; Value.Int 2; Value.Int 3 ]);
  check_pred "s in ('x', 'y')" (P.in_ (P.attr "s") [ Value.Str "x"; Value.Str "y" ]);
  check_pred "v in (null, true)" (P.in_ (P.attr "v") [ Value.Null; Value.Bool true ])

let test_predicate_arithmetic () =
  (* * binds tighter than +. *)
  check_pred "a + b * 2 < 10"
    (P.lt (P.Add (P.attr "a", P.Mul (P.attr "b", P.vint 2))) (P.vint 10));
  check_pred "(a + b) * 2 < 10"
    (P.lt (P.Mul (P.Add (P.attr "a", P.attr "b"), P.vint 2)) (P.vint 10));
  check_pred "(a - b) / c >= 0.5"
    (P.ge (P.Div (P.Sub (P.attr "a", P.attr "b"), P.attr "c")) (P.vfloat 0.5))

let test_string_escapes () =
  check_pred "s = 'it''s'" (P.eq (P.attr "s") (P.vstr "it's"))

let test_expr_leaves_and_unary () =
  check_expr "r" (Expr.base "r");
  check_expr "select[a = 1](r)" (Expr.select (P.eq (P.attr "a") (P.vint 1)) (Expr.base "r"));
  check_expr "pi[a, b](r)" (Expr.project [ "a"; "b" ] (Expr.base "r"));
  check_expr "pidist[a](r)" (Expr.project_distinct [ "a" ] (Expr.base "r"));
  check_expr "distinct(r)" (Expr.distinct (Expr.base "r"));
  check_expr "rho[a -> b, c -> d](r)"
    (Expr.rename [ ("a", "b"); ("c", "d") ] (Expr.base "r"))

let test_expr_binary () =
  check_expr "r cross s" (Expr.product (Expr.base "r") (Expr.base "s"));
  check_expr "r join[a = b] s" (Expr.equijoin [ ("a", "b") ] (Expr.base "r") (Expr.base "s"));
  check_expr "r join[a = b, c = d] s"
    (Expr.equijoin [ ("a", "b"); ("c", "d") ] (Expr.base "r") (Expr.base "s"));
  check_expr "r theta[l.a < r.b] s"
    (Expr.theta_join (P.lt (P.attr "l.a") (P.attr "r.b")) (Expr.base "r") (Expr.base "s"));
  check_expr "r union s" (Expr.union (Expr.base "r") (Expr.base "s"));
  check_expr "r inter s" (Expr.inter (Expr.base "r") (Expr.base "s"));
  check_expr "r minus s" (Expr.diff (Expr.base "r") (Expr.base "s"))

let test_expr_precedence () =
  (* join binds tighter than union; binary ops left-associative. *)
  check_expr "a union b cross c"
    (Expr.union (Expr.base "a") (Expr.product (Expr.base "b") (Expr.base "c")));
  check_expr "(a union b) cross c"
    (Expr.product (Expr.union (Expr.base "a") (Expr.base "b")) (Expr.base "c"));
  check_expr "a minus b minus c"
    (Expr.diff (Expr.diff (Expr.base "a") (Expr.base "b")) (Expr.base "c"));
  check_expr "a cross b join[x = y] c"
    (Expr.equijoin [ ("x", "y") ] (Expr.product (Expr.base "a") (Expr.base "b")) (Expr.base "c"))

let test_expr_nested () =
  check_expr "select[q >= 5](orders) join[s = k] select[g = 0](suppliers)"
    (Expr.equijoin
       [ ("s", "k") ]
       (Expr.select (P.ge (P.attr "q") (P.vint 5)) (Expr.base "orders"))
       (Expr.select (P.eq (P.attr "g") (P.vint 0)) (Expr.base "suppliers")))

let test_aggregate_forms () =
  check_expr "gamma[g; count](r)"
    (Expr.aggregate ~by:[ "g" ] [ (Expr.Count, "count") ] (Expr.base "r"));
  check_expr "gamma[g; count as n, sum(v) as total](r)"
    (Expr.aggregate ~by:[ "g" ]
       [ (Expr.Count, "n"); (Expr.Sum "v", "total") ]
       (Expr.base "r"));
  check_expr "gamma[; avg(v)](r)"
    (Expr.aggregate ~by:[] [ (Expr.Avg "v", "avg_v") ] (Expr.base "r"));
  check_expr "gamma[a, b; min(v), max(v)](r)"
    (Expr.aggregate ~by:[ "a"; "b" ]
       [ (Expr.Min "v", "min_v"); (Expr.Max "v", "max_v") ]
       (Expr.base "r"));
  (* Composition with other operators. *)
  check_expr "select[n >= 2](gamma[g; count as n](r))"
    (Expr.select
       (P.ge (P.attr "n") (P.vint 2))
       (Expr.aggregate ~by:[ "g" ] [ (Expr.Count, "n") ] (Expr.base "r")))

let test_case_insensitive_keywords () =
  check_expr "SELECT[A = 1](R)" (Expr.select (P.eq (P.attr "A") (P.vint 1)) (Expr.base "R"));
  check_pred "a BETWEEN 1 AND 2 AND TRUE"
    P.(between (attr "a") (Value.Int 1) (Value.Int 2) &&& True)

let test_errors () =
  let rejects text =
    Alcotest.(check bool) text true
      (try
         ignore (Parser.parse_expr text);
         false
       with Failure _ -> true)
  in
  rejects "";
  rejects "select[a = 1]";
  rejects "r join s";
  rejects "r union";
  rejects "pi[](r)";
  rejects "r )";
  rejects "r extra";
  let rejects_pred text =
    Alcotest.(check bool) text true
      (try
         ignore (Parser.parse_predicate text);
         false
       with Failure _ -> true)
  in
  rejects_pred "a";
  rejects_pred "a = ";
  rejects_pred "a in ()";
  rejects_pred "between 1 and 2";
  rejects_pred "a = 'unterminated"

let test_error_mentions_offset () =
  (try
     ignore (Parser.parse_expr "select[a = 1](r");
     Alcotest.fail "should have raised"
   with Failure message ->
     Alcotest.(check bool) "message has offset" true
       (String.length message > 0
       && String.exists (fun c -> c = 'o') message))

(* Random ASTs for the print/parse roundtrip property. *)

let attr_gen = QCheck.Gen.oneofl [ "a"; "b"; "c1"; "l.a"; "r.b"; "x_y" ]

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range (-50) 50);
        map (fun i -> Value.Float (0.25 *. float_of_int i)) (int_range (-20) 20);
        map (fun s -> Value.Str s) (oneofl [ "x"; "it's"; "a,b"; "" ]);
      ])

let term_gen =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self size ->
            if size <= 1 then
              oneof [ map (fun a -> P.Attr a) attr_gen; map (fun v -> P.Const v) value_gen ]
            else
              let sub = self (size / 2) in
              oneof
                [
                  map2 (fun t1 t2 -> P.Add (t1, t2)) sub sub;
                  map2 (fun t1 t2 -> P.Sub (t1, t2)) sub sub;
                  map2 (fun t1 t2 -> P.Mul (t1, t2)) sub sub;
                  map2 (fun t1 t2 -> P.Div (t1, t2)) sub sub;
                ])
          (min size 6)))

let cmp_gen = QCheck.Gen.oneofl [ P.Eq; P.Neq; P.Lt; P.Le; P.Gt; P.Ge ]

let pred_gen =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self size ->
            if size <= 1 then
              oneof
                [
                  return P.True;
                  return P.False;
                  map3 (fun cmp t1 t2 -> P.Cmp (cmp, t1, t2)) cmp_gen term_gen term_gen;
                  map3 (fun a lo hi -> P.Between (P.Attr a, lo, hi)) attr_gen value_gen
                    value_gen;
                  map2
                    (fun a values -> P.In (P.Attr a, values))
                    attr_gen
                    (list_size (int_range 1 3) value_gen);
                ]
            else
              let sub = self (size / 2) in
              oneof
                [
                  map2 (fun p1 p2 -> P.And (p1, p2)) sub sub;
                  map2 (fun p1 p2 -> P.Or (p1, p2)) sub sub;
                  map (fun p -> P.Not p) sub;
                ])
          (min size 6)))

let expr_gen =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self size ->
            if size <= 1 then map (fun n -> Expr.Base n) (oneofl [ "r"; "s"; "t" ])
            else
              let sub = self (size / 2) in
              oneof
                [
                  map2 (fun p e -> Expr.Select (p, e)) pred_gen sub;
                  map2
                    (fun attrs e -> Expr.Project (attrs, e))
                    (list_size (int_range 1 3) attr_gen)
                    sub;
                  map (fun e -> Expr.Distinct e) sub;
                  map2
                    (fun pairs e -> Expr.Rename (pairs, e))
                    (list_size (int_range 1 2) (pair attr_gen attr_gen))
                    sub;
                  map2 (fun l r -> Expr.Product (l, r)) sub sub;
                  map3
                    (fun pairs l r -> Expr.Equijoin (pairs, l, r))
                    (list_size (int_range 1 2) (pair attr_gen attr_gen))
                    sub sub;
                  map3 (fun p l r -> Expr.Theta_join (p, l, r)) pred_gen sub sub;
                  map2 (fun l r -> Expr.Union (l, r)) sub sub;
                  map2 (fun l r -> Expr.Inter (l, r)) sub sub;
                  map2 (fun l r -> Expr.Diff (l, r)) sub sub;
                  map3
                    (fun by specs e -> Expr.Aggregate (by, specs, e))
                    (list_size (int_range 0 2) attr_gen)
                    (list_size (int_range 1 2)
                       (map2
                          (fun which output ->
                            let f =
                              match which with
                              | 0 -> Expr.Count
                              | 1 -> Expr.Sum "v"
                              | 2 -> Expr.Avg "v"
                              | 3 -> Expr.Min "v"
                              | _ -> Expr.Max "v"
                            in
                            (f, output))
                          (int_range 0 4)
                          (oneofl [ "n"; "o1"; "o2" ])))
                    sub;
                ])
          (min size 5)))

let prop_predicate_roundtrip =
  qcheck_case ~count:300 "parse(print(predicate)) roundtrip"
    (QCheck.make ~print:Parser.print_predicate pred_gen)
    (fun p -> Parser.parse_predicate (Parser.print_predicate p) = p)

let prop_expr_roundtrip =
  qcheck_case ~count:300 "parse(print(expr)) roundtrip"
    (QCheck.make ~print:Parser.print_expr expr_gen)
    (fun e -> Parser.parse_expr (Parser.print_expr e) = e)

let test_parse_print_examples () =
  let examples =
    [
      "select[a = 1](r)";
      "(r join[a = b] s)";
      "pidist[a](select[b < 3](r))";
      "((r cross s) union t)";
    ]
  in
  List.iter
    (fun text ->
      let once = Parser.parse_expr text in
      let twice = Parser.parse_expr (Parser.print_expr once) in
      Alcotest.(check bool) text true (once = twice))
    examples

let suite =
  [
    Alcotest.test_case "predicate comparisons" `Quick test_predicate_comparisons;
    Alcotest.test_case "boolean precedence" `Quick test_predicate_boolean_structure;
    Alcotest.test_case "between / in" `Quick test_predicate_between_in;
    Alcotest.test_case "arithmetic precedence" `Quick test_predicate_arithmetic;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "expression unary forms" `Quick test_expr_leaves_and_unary;
    Alcotest.test_case "expression binary forms" `Quick test_expr_binary;
    Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    Alcotest.test_case "nested expression" `Quick test_expr_nested;
    Alcotest.test_case "aggregate (gamma) forms" `Quick test_aggregate_forms;
    Alcotest.test_case "case-insensitive keywords" `Quick test_case_insensitive_keywords;
    Alcotest.test_case "rejects malformed input" `Quick test_errors;
    Alcotest.test_case "errors carry position" `Quick test_error_mentions_offset;
    prop_predicate_roundtrip;
    prop_expr_roundtrip;
    Alcotest.test_case "parse/print examples" `Quick test_parse_print_examples;
  ]
