open Helpers
module Estimate = Stats.Estimate

let est = Estimate.make ~variance:25. ~label:"test" ~status:Estimate.Unbiased ~sample_size:10 100.

let test_fields () =
  check_float "point" 100. est.Estimate.point;
  check_float "stderr" 5. (Estimate.stderr est);
  Alcotest.(check bool) "has variance" true (Estimate.has_variance est)

let test_no_variance () =
  let e = Estimate.make ~status:Estimate.Consistent ~sample_size:5 7. in
  Alcotest.(check bool) "no variance" false (Estimate.has_variance e);
  Alcotest.(check bool) "ci raises" true
    (try
       ignore (Estimate.ci ~level:0.95 e);
       false
     with Invalid_argument _ -> true)

let test_negative_variance_rejected () =
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Estimate.make ~variance:(-1.) ~status:Estimate.Unbiased ~sample_size:1 0.);
       false
     with Invalid_argument _ -> true)

let test_ci_clamped () =
  let e = Estimate.make ~variance:10000. ~status:Estimate.Unbiased ~sample_size:4 10. in
  let i = Estimate.ci ~level:0.99 e in
  Alcotest.(check bool) "lo clamped at 0" true (i.Stats.Confidence.lo = 0.)

let test_ci_widths_ordered () =
  let normal = Estimate.ci ~level:0.95 est in
  let cheb = Estimate.ci_chebyshev ~level:0.95 est in
  Alcotest.(check bool) "chebyshev wider" true
    (Stats.Confidence.width cheb > Stats.Confidence.width normal)

let test_errors_vs_truth () =
  check_float "relative" 0.25 (Estimate.relative_error ~truth:80. est);
  check_float "absolute" 20. (Estimate.absolute_error ~truth:80. est);
  let zero = Estimate.make ~status:Estimate.Unbiased ~sample_size:1 0. in
  check_float "zero/zero" 0. (Estimate.relative_error ~truth:0. zero);
  Alcotest.(check bool) "nonzero/zero" true
    (Float.is_integer (Estimate.relative_error ~truth:0. est) = false
    || Estimate.relative_error ~truth:0. est = Float.infinity)

let test_status_strings () =
  Alcotest.(check string) "unbiased" "unbiased" (Estimate.status_to_string Estimate.Unbiased);
  Alcotest.(check string) "consistent" "consistent"
    (Estimate.status_to_string Estimate.Consistent);
  Alcotest.(check string) "heuristic" "heuristic"
    (Estimate.status_to_string Estimate.Heuristic)

let suite =
  [
    Alcotest.test_case "fields" `Quick test_fields;
    Alcotest.test_case "no variance" `Quick test_no_variance;
    Alcotest.test_case "negative variance rejected" `Quick test_negative_variance_rejected;
    Alcotest.test_case "ci clamped" `Quick test_ci_clamped;
    Alcotest.test_case "ci widths ordered" `Quick test_ci_widths_ordered;
    Alcotest.test_case "errors vs truth" `Quick test_errors_vs_truth;
    Alcotest.test_case "status strings" `Quick test_status_strings;
  ]
