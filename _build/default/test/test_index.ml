open Helpers
module Index = Relational.Index

let relation () =
  two_column_relation ~names:("k", "v") [ (1, 10); (2, 20); (1, 11); (3, 30); (2, 21) ]

let test_lookup () =
  let index = Index.build (relation ()) ~attributes:[ "k" ] in
  Alcotest.(check int) "two under 1" 2 (List.length (Index.lookup index [ Value.Int 1 ]));
  Alcotest.(check int) "one under 3" 1 (List.length (Index.lookup index [ Value.Int 3 ]));
  Alcotest.(check int) "none under 9" 0 (List.length (Index.lookup index [ Value.Int 9 ]));
  Alcotest.(check int) "count" 2 (Index.count index [ Value.Int 1 ]);
  Alcotest.(check int) "distinct keys" 3 (Index.distinct_keys index)

let test_lookup_preserves_base_order () =
  let index = Index.build (relation ()) ~attributes:[ "k" ] in
  let values =
    List.map Tuple.to_string (Index.lookup index [ Value.Int 1 ])
  in
  Alcotest.(check (list string)) "base order" [ "<1, 10>"; "<1, 11>" ] values

let test_composite_key () =
  let index = Index.build (relation ()) ~attributes:[ "k"; "v" ] in
  Alcotest.(check int) "exact pair" 1
    (List.length (Index.lookup index [ Value.Int 2; Value.Int 21 ]));
  Alcotest.(check int) "absent pair" 0
    (List.length (Index.lookup index [ Value.Int 2; Value.Int 99 ]));
  Alcotest.(check int) "all pairs distinct" 5 (Index.distinct_keys index)

let test_validation () =
  let index = Index.build (relation ()) ~attributes:[ "k" ] in
  Alcotest.(check bool) "arity mismatch" true
    (try
       ignore (Index.lookup index [ Value.Int 1; Value.Int 2 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty attributes" true
    (try
       ignore (Index.build (relation ()) ~attributes:[]);
       false
     with Invalid_argument _ -> true);
  Alcotest.check_raises "missing attribute" Not_found (fun () ->
      ignore (Index.build (relation ()) ~attributes:[ "zz" ]))

let test_probe_join_matches_eval () =
  let rng_ = rng ~seed:161 () in
  let build = Workload.Generator.int_relation rng_ ~n:500 ~attribute:"b"
      (Workload.Dist.Zipf { n_values = 50; skew = 0.8 })
  in
  let probe = Workload.Generator.int_relation rng_ ~n:300 ~attribute:"a"
      (Workload.Dist.Uniform { lo = 0; hi = 49 })
  in
  let index = Index.build build ~attributes:[ "b" ] in
  let joined = Index.probe_join index probe ~key:[ "a" ] in
  let c = Catalog.of_list [ ("p", probe); ("b", build) ] in
  let expected = Eval.count c (Expr.equijoin [ ("a", "b") ] (Expr.base "p") (Expr.base "b")) in
  Alcotest.(check int) "join size" expected (Relation.cardinality joined);
  Alcotest.(check (list string)) "schema" [ "a"; "b" ]
    (Schema.names (Relation.schema joined))

let test_probe_join_validation () =
  let index = Index.build (relation ()) ~attributes:[ "k" ] in
  let probe = int_relation [ 1; 2 ] in
  Alcotest.(check bool) "arity" true
    (try
       ignore (Index.probe_join index probe ~key:[ "a"; "a" ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.check_raises "missing probe attr" Not_found (fun () ->
      ignore (Index.probe_join index probe ~key:[ "zz" ]))

let suite =
  [
    Alcotest.test_case "lookup" `Quick test_lookup;
    Alcotest.test_case "lookup preserves base order" `Quick test_lookup_preserves_base_order;
    Alcotest.test_case "composite key" `Quick test_composite_key;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "probe join matches eval" `Quick test_probe_join_matches_eval;
    Alcotest.test_case "probe join validation" `Quick test_probe_join_validation;
  ]
