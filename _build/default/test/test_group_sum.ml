open Helpers
module GC = Raestat.Group_count
module Estimate = Stats.Estimate
module P = Predicate

let catalog () =
  (* Groups 0/1/2 with deterministic per-group sums. *)
  let g = Array.init 9_000 (fun i -> i mod 3) in
  let v = Array.init 9_000 (fun i -> (i mod 3) + 1) in
  (* Sum per group: g → 3000·(g+1). *)
  Catalog.of_list [ ("r", Workload.Generator.of_columns [ ("g", g); ("v", v) ]) ]

let test_exact_sum () =
  let c = catalog () in
  let sums = GC.exact_sum c ~relation:"r" ~by:[ "g" ] ~attribute:"v" () in
  Alcotest.(check int) "groups" 3 (List.length sums);
  List.iteri
    (fun g (_, sum) -> check_float "group sum" (3000. *. float_of_int (g + 1)) sum)
    sums

let test_census_exact () =
  let c = catalog () in
  let result = GC.estimate_sum (rng ()) c ~relation:"r" ~by:[ "g" ] ~attribute:"v" ~n:9_000 () in
  List.iter2
    (fun (_, truth) group ->
      check_float ~eps:1e-6 "census" truth group.GC.estimate.Estimate.point;
      check_float ~eps:1e-6 "zero variance" 0. group.GC.estimate.Estimate.variance)
    (GC.exact_sum c ~relation:"r" ~by:[ "g" ] ~attribute:"v" ())
    result.GC.groups

let test_unbiased_mc () =
  let c = catalog () in
  let rng_ = rng ~seed:211 () in
  let sums = Hashtbl.create 3 in
  let reps = 300 in
  for _ = 1 to reps do
    let result =
      GC.estimate_sum rng_ c ~relation:"r" ~by:[ "g" ] ~attribute:"v" ~n:300 ()
    in
    List.iter
      (fun group ->
        let acc = Option.value (Hashtbl.find_opt sums group.GC.key) ~default:0. in
        Hashtbl.replace sums group.GC.key (acc +. group.GC.estimate.Estimate.point))
      result.GC.groups
  done;
  List.iter
    (fun (key, truth) ->
      let mean = Hashtbl.find sums key /. float_of_int reps in
      check_close ~tol:0.05 "group sum mean" truth mean)
    (GC.exact_sum c ~relation:"r" ~by:[ "g" ] ~attribute:"v" ())

let test_variance_honest () =
  let c = catalog () in
  let rng_ = rng ~seed:212 () in
  let reps = 300 in
  let points = ref [] and variances = ref [] in
  for _ = 1 to reps do
    let result = GC.estimate_sum rng_ c ~relation:"r" ~by:[ "g" ] ~attribute:"v" ~n:300 () in
    match result.GC.groups with
    | first :: _ ->
      points := first.GC.estimate.Estimate.point :: !points;
      variances := first.GC.estimate.Estimate.variance :: !variances
    | [] -> ()
  done;
  let empirical = Stats.Summary.variance (Stats.Summary.of_list !points) in
  let predicted = Stats.Summary.mean (Stats.Summary.of_list !variances) in
  check_close ~tol:0.30 "variance honest" empirical predicted

let test_filter_and_nulls () =
  let schema = Schema.of_list [ ("g", Value.Tint); ("v", Value.Tint) ] in
  let r =
    Relation.make schema
      [
        Tuple.make [ Value.Int 0; Value.Int 5 ];
        Tuple.make [ Value.Int 0; Value.Null ];
        Tuple.make [ Value.Int 1; Value.Int 9 ];
      ]
  in
  let c = Catalog.of_list [ ("t", r) ] in
  let sums = GC.exact_sum c ~relation:"t" ~by:[ "g" ] ~attribute:"v" () in
  Alcotest.(check (list (pair (list string) string)))
    "null contributes 0"
    [ ([ "0" ], "5"); ([ "1" ], "9") ]
    (List.map
       (fun (key, sum) ->
         (List.map Value.to_string key, Printf.sprintf "%g" sum))
       sums);
  let filtered =
    GC.exact_sum c ~relation:"t" ~by:[ "g" ] ~attribute:"v"
      ~where:(P.eq (P.attr "g") (P.vint 1)) ()
  in
  Alcotest.(check int) "filter drops group" 1 (List.length filtered)

let suite =
  [
    Alcotest.test_case "exact sums" `Quick test_exact_sum;
    Alcotest.test_case "census exact" `Quick test_census_exact;
    Alcotest.test_case "unbiased (MC)" `Slow test_unbiased_mc;
    Alcotest.test_case "variance honest (MC)" `Slow test_variance_honest;
    Alcotest.test_case "filter and nulls" `Quick test_filter_and_nulls;
  ]
