(* End-to-end scenarios across the whole stack: workload generation →
   planning → sampling → estimation → confidence intervals, checked
   against exact evaluation. *)

open Helpers
module CE = Raestat.Count_estimator
module Estimate = Stats.Estimate
module P = Predicate
module Tpc = Workload.Tpc_mini

let test_tpc_chain_estimate () =
  let c = Tpc.catalog (rng ~seed:71 ()) ~sizes:{ Tpc.suppliers = 200; parts = 300; orders = 8_000 } () in
  let query =
    Tpc.chain_query
      ~order_filter:(P.ge (P.attr "o_quantity") (P.vint 5))
      ()
  in
  let truth = float_of_int (Eval.count c query) in
  let est = CE.estimate ~groups:10 (rng ~seed:72 ()) c ~fraction:0.5 query in
  Alcotest.(check bool) "classified unbiased" true (est.Estimate.status = Estimate.Unbiased);
  check_close ~tol:0.4 "3-way chain estimate in the ballpark" truth est.Estimate.point

let test_ci_coverage_selection () =
  (* Empirical coverage of nominal 95% CIs over 300 replications should
     be within a few points of 95%. *)
  let rng_ = rng ~seed:73 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:10_000 ~attribute:"a"
      (Workload.Dist.Uniform { lo = 0; hi = 99 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let p = P.lt (P.attr "a") (P.vint 25) in
  let truth = float_of_int (Eval.count c (Expr.select p (Expr.base "r"))) in
  let reps = 300 in
  let covered = ref 0 in
  for _ = 1 to reps do
    let est = CE.selection rng_ c ~relation:"r" ~n:400 p in
    let ci = Estimate.ci ~level:0.95 est in
    if Stats.Confidence.contains ci truth then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f within [0.90, 0.99]" coverage)
    true
    (coverage >= 0.90 && coverage <= 0.99)

let test_estimators_beat_census_cost () =
  (* The whole point of the paper: reading 1% of tuples gives a usable
     estimate.  Check the estimate's relative error is small while the
     sample size is tiny. *)
  let rng_ = rng ~seed:74 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:50_000 ~attribute:"a"
      (Workload.Dist.Uniform { lo = 0; hi = 999 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let p = P.lt (P.attr "a") (P.vint 500) in
  let est = CE.selection rng_ c ~relation:"r" ~n:500 p in
  let truth = float_of_int (Eval.count c (Expr.select p (Expr.base "r"))) in
  Alcotest.(check bool) "1% sample" true (est.Estimate.sample_size = 500);
  Alcotest.(check bool)
    (Printf.sprintf "relative error %.3f < 0.15" (Estimate.relative_error ~truth est))
    true
    (Estimate.relative_error ~truth est < 0.15)

let test_join_order_ranking () =
  (* Estimates should rank join sizes correctly: the skew-aligned pair
     joins bigger than the anti-aligned pair. *)
  let rng_ = rng ~seed:75 () in
  let make c =
    Workload.Correlated.pair rng_ ~n_left:5_000 ~n_right:5_000 ~domain:50 ~skew_left:1.
      ~skew_right:1. c ~attribute:"a"
  in
  let pl, pr = make Workload.Correlated.Positive in
  let nl, nr = make Workload.Correlated.Negative in
  let c =
    Catalog.of_list [ ("pl", pl); ("pr", pr); ("nl", nl); ("nr", nr) ]
  in
  let est left right =
    (CE.equijoin ~groups:4 rng_ c ~left ~right ~on:[ ("a", "a") ] ~fraction:0.2)
      .Estimate.point
  in
  Alcotest.(check bool) "ranking preserved" true (est "pl" "pr" > est "nl" "nr")

let test_distinct_methods_ordering_on_skewed_data () =
  (* On skewed data the naive scale-up wildly overestimates while
     sample-distinct underestimates; truth lies between. *)
  let rng_ = rng ~seed:76 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:20_000 ~attribute:"a"
      (Workload.Dist.Zipf { n_values = 500; skew = 1.0 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let truth = float_of_int (Raestat.Distinct.exact c ~relation:"r" ~attributes:[ "a" ]) in
  let est m =
    (Raestat.Distinct.estimate rng_ c ~method_:m ~relation:"r" ~attributes:[ "a" ] ~n:1_000)
      .Estimate.point
  in
  let scale_up = est Raestat.Distinct.Scale_up in
  let sample_d = est Raestat.Distinct.Sample_distinct in
  Alcotest.(check bool)
    (Printf.sprintf "under (%.0f) ≤ truth (%.0f) ≤ naive (%.0f)" sample_d truth scale_up)
    true
    (sample_d <= truth && truth <= scale_up)

let test_csv_to_estimate_pipeline () =
  (* Persist a relation to CSV, reload it, estimate on the reloaded
     copy: exercises the CLI's data path. *)
  let rng_ = rng ~seed:77 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:2_000 ~attribute:"v"
      (Workload.Dist.Uniform { lo = 0; hi = 49 })
  in
  let path = Filename.temp_file "raestat_it" ".csv" in
  Relational.Csv.save path r;
  let reloaded = Relational.Csv.load path in
  Sys.remove path;
  let c = Catalog.of_list [ ("r", reloaded) ] in
  let p = P.le (P.attr "v") (P.vint 9) in
  let truth = float_of_int (Eval.count c (Expr.select p (Expr.base "r"))) in
  let est = CE.selection rng_ c ~relation:"r" ~n:500 p in
  check_close ~tol:0.25 "pipeline estimate" truth est.Estimate.point

let suite =
  [
    Alcotest.test_case "tpc chain estimate" `Slow test_tpc_chain_estimate;
    Alcotest.test_case "CI coverage (selection)" `Slow test_ci_coverage_selection;
    Alcotest.test_case "tiny sample, small error" `Quick test_estimators_beat_census_cost;
    Alcotest.test_case "join order ranking" `Slow test_join_order_ranking;
    Alcotest.test_case "distinct estimator ordering" `Quick
      test_distinct_methods_ordering_on_skewed_data;
    Alcotest.test_case "csv → estimate pipeline" `Quick test_csv_to_estimate_pipeline;
  ]
