(* Failure injection and edge cases across the public API: degenerate
   relations, extreme parameters, hostile values.  The contract under
   test: fail loudly with Invalid_argument/Failure, or return a sane
   value — never crash, hang, or return garbage silently. *)

open Helpers
module CE = Raestat.Count_estimator
module Estimate = Stats.Estimate
module P = Predicate

let single = int_relation [ 7 ]

let constant = int_relation (List.init 100 (fun _ -> 42))

let test_single_tuple_relation () =
  let c = Catalog.of_list [ ("one", single) ] in
  (* Fraction anything → sample size 1. *)
  let est = CE.estimate (rng ()) c ~fraction:0.5 (Expr.base "one") in
  check_float "single tuple" 1. est.Estimate.point;
  let sel = CE.selection (rng ()) c ~relation:"one" ~n:1 (P.eq (P.attr "a") (P.vint 7)) in
  check_float "selection over n=1" 1. sel.Estimate.point;
  (* n=1 cannot carry a variance estimate. *)
  Alcotest.(check bool) "no variance at n=1" false (Estimate.has_variance sel)

let test_constant_column () =
  let c = Catalog.of_list [ ("k", constant) ] in
  (* Zero-variance predicates: estimator must return exactly 0 or N. *)
  let all = CE.selection (rng ()) c ~relation:"k" ~n:10 (P.eq (P.attr "a") (P.vint 42)) in
  check_float "all match" 100. all.Estimate.point;
  check_float "zero variance" 0. all.Estimate.variance;
  let none = CE.selection (rng ()) c ~relation:"k" ~n:10 (P.eq (P.attr "a") (P.vint 0)) in
  check_float "none match" 0. none.Estimate.point;
  (* Distinct estimators on a constant column. *)
  let est =
    Raestat.Distinct.estimate (rng ()) c ~method_:Raestat.Distinct.Chao1 ~relation:"k"
      ~attributes:[ "a" ] ~n:10
  in
  check_float "one distinct value" 1. est.Estimate.point

let test_extreme_fractions () =
  let c = Catalog.of_list [ ("r", int_relation (List.init 1000 (fun i -> i))) ] in
  (* Tiny fraction clamps to one tuple instead of failing. *)
  let est = CE.estimate (rng ()) c ~fraction:1e-9 (Expr.base "r") in
  check_float "clamped to n=1" 1000. est.Estimate.point;
  (* Fraction exactly 1 is a census. *)
  let census = CE.estimate (rng ()) c ~fraction:1.0 (Expr.base "r") in
  check_float "census" 1000. census.Estimate.point

let test_estimates_never_nan_on_valid_inputs () =
  let rng_ = rng ~seed:181 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:5_000 ~attribute:"a"
      (Workload.Dist.Zipf { n_values = 10; skew = 1.5 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  for _ = 1 to 50 do
    let est = CE.selection rng_ c ~relation:"r" ~n:50 (P.le (P.attr "a") (P.vint 1)) in
    if Float.is_nan est.Estimate.point then Alcotest.fail "nan point";
    if Estimate.has_variance est && est.Estimate.variance < 0. then
      Alcotest.fail "negative variance"
  done

let test_hostile_string_values () =
  (* Quotes, commas, newlines survive CSV and predicates. *)
  let schema = Schema.of_list [ ("s", Value.Tstr) ] in
  let nasty = [ "a,b"; "with \"double\""; "with 'single'"; "line\nbreak"; "" ] in
  let r = Relation.make schema (List.map (fun s -> Tuple.make [ Value.Str s ]) nasty) in
  let roundtripped = Relational.Csv.read_string (Relational.Csv.write_string r) in
  Alcotest.(check int) "csv roundtrip" 5 (Relation.cardinality roundtripped);
  let c = Catalog.of_list [ ("t", roundtripped) ] in
  List.iter
    (fun s ->
      Alcotest.(check int) (Printf.sprintf "find %S" s) 1
        (Eval.count c (Expr.select (P.eq (P.attr "s") (P.vstr s)) (Expr.base "t"))))
    nasty

let test_parser_pathological_inputs () =
  (* Deeply nested input must parse without stack issues and reject
     garbage without exploding. *)
  let deep = String.concat "" (List.init 200 (fun _ -> "distinct(")) ^ "r"
             ^ String.concat "" (List.init 200 (fun _ -> ")"))
  in
  let e = Relational.Parser.parse_expr deep in
  Alcotest.(check int) "deep nesting" 201 (Expr.size e);
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (Relational.Parser.parse_expr text);
           false
         with Failure _ -> true))
    [ "(((("; "select[](r)"; "r join[] s"; "π[a](r)"; "r ∪ s"; "\x00" ]

let test_sql_injectionish_inputs () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (try
           ignore (Relational.Sql.parse text);
           false
         with Failure _ -> true))
    [
      "SELECT * FROM r; DROP TABLE r";
      "SELECT * FROM r WHERE a = 1 OR";
      "SELECT * FROM r -- comment";
      "SELECT * FROM (SELECT * FROM r)";
    ]

let test_sequential_batch_larger_than_population () =
  let c = Catalog.of_list [ ("r", int_relation (List.init 50 (fun i -> i))) ] in
  let result =
    Raestat.Sequential.selection (rng ()) c ~relation:"r" ~target:0.01 ~batch:1000
      (P.lt (P.attr "a") (P.vint 10))
  in
  check_float "exact after census" 10. result.Raestat.Sequential.estimate.Estimate.point

let test_cluster_single_page () =
  let paged = Relational.Paged.make ~page_capacity:100 (int_relation (List.init 30 (fun i -> i))) in
  let result = Raestat.Cluster_estimator.count (rng ()) ~m:1 paged (P.lt (P.attr "a") (P.vint 10)) in
  check_float "single page census" 10.
    result.Raestat.Cluster_estimator.estimate.Estimate.point

let test_group_count_more_groups_than_sample () =
  (* 1000 groups, sample of 10: estimator returns ≤ 10 groups and never
     crashes. *)
  let r = int_relation (List.init 1000 (fun i -> i)) in
  let c = Catalog.of_list [ ("r", r) ] in
  let result = Raestat.Group_count.estimate (rng ()) c ~relation:"r" ~by:[ "a" ] ~n:10 () in
  Alcotest.(check bool) "at most n groups" true
    (List.length result.Raestat.Group_count.groups <= 10)

let test_planner_two_inputs_minimal () =
  let c =
    Catalog.of_list
      [
        ("x", int_relation (List.init 100 (fun i -> i mod 10)));
        ("y", int_relation ~attribute:"b" (List.init 100 (fun i -> i mod 10)));
      ]
  in
  let plan =
    Raestat.Planner.plan (rng ()) c ~fraction:0.5
      ~inputs:[ { Raestat.Planner.name = "x"; filter = None };
                { Raestat.Planner.name = "y"; filter = None } ]
      ~joins:[ { Raestat.Planner.left_attr = "a"; right_attr = "b" } ]
  in
  Alcotest.(check int) "two inputs" 2 (List.length plan.Raestat.Planner.order);
  check_float "no strict intermediates" 0. plan.Raestat.Planner.estimated_cost

let test_backing_sample_delete_storm () =
  (* Insert/delete churn must keep invariants: population ≥ sample ≥ 0. *)
  let schema = Schema.of_list [ ("a", Value.Tint) ] in
  let bs = Raestat.Backing_sample.create (rng ()) ~capacity:50 ~schema in
  let ids = ref [] in
  for v = 1 to 2_000 do
    ids := Raestat.Backing_sample.insert bs (Tuple.make [ Value.Int v ]) :: !ids;
    if v mod 3 = 0 then
      match !ids with
      | id :: rest ->
        ignore (Raestat.Backing_sample.delete bs id);
        ids := rest
      | [] -> ()
  done;
  let population = Raestat.Backing_sample.population bs in
  let sample = Raestat.Backing_sample.sample_size bs in
  Alcotest.(check bool)
    (Printf.sprintf "0 <= %d <= %d" sample population)
    true
    (0 <= sample && sample <= 50 && sample <= population)

let test_weighted_all_zero_weights () =
  Alcotest.(check bool) "no positive weights" true
    (try
       ignore
         (Sampling.Weighted.poisson (rng ()) ~expected_n:1. ~weight:(fun _ -> 0.) [| 1; 2 |]);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "single-tuple relation" `Quick test_single_tuple_relation;
    Alcotest.test_case "constant column" `Quick test_constant_column;
    Alcotest.test_case "extreme fractions" `Quick test_extreme_fractions;
    Alcotest.test_case "no NaNs on valid inputs" `Quick test_estimates_never_nan_on_valid_inputs;
    Alcotest.test_case "hostile string values" `Quick test_hostile_string_values;
    Alcotest.test_case "parser pathological inputs" `Quick test_parser_pathological_inputs;
    Alcotest.test_case "sql hostile inputs" `Quick test_sql_injectionish_inputs;
    Alcotest.test_case "sequential huge batch" `Quick
      test_sequential_batch_larger_than_population;
    Alcotest.test_case "cluster single page" `Quick test_cluster_single_page;
    Alcotest.test_case "group-count sparse sample" `Quick
      test_group_count_more_groups_than_sample;
    Alcotest.test_case "planner minimal inputs" `Quick test_planner_two_inputs_minimal;
    Alcotest.test_case "backing sample churn" `Quick test_backing_sample_delete_storm;
    Alcotest.test_case "weighted zero weights" `Quick test_weighted_all_zero_weights;
  ]
