open Helpers
module Table = Raestat.Table
module Estimate = Stats.Estimate
module P = Predicate

let schema = Schema.of_list [ ("a", Value.Tint) ]

let tuple v = Tuple.make [ Value.Int v ]

let test_insert_delete_cardinality () =
  let t = Table.create (rng ()) ~schema () in
  let id1 = Table.insert t (tuple 1) in
  let _id2 = Table.insert t (tuple 2) in
  Alcotest.(check int) "two rows" 2 (Table.cardinality t);
  Alcotest.(check bool) "delete" true (Table.delete t id1);
  Alcotest.(check bool) "idempotent" false (Table.delete t id1);
  Alcotest.(check int) "one row" 1 (Table.cardinality t)

let test_schema_validation () =
  let t = Table.create (rng ()) ~schema () in
  Alcotest.(check bool) "wrong type" true
    (try
       ignore (Table.insert t (Tuple.make [ Value.Str "x" ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wrong arity" true
    (try
       ignore (Table.insert t (Tuple.make [ Value.Int 1; Value.Int 2 ]));
       false
     with Invalid_argument _ -> true)

let test_snapshot_order () =
  let t = Table.create (rng ()) ~schema () in
  List.iter (fun v -> ignore (Table.insert t (tuple v))) [ 5; 3; 9 ];
  let r = Table.to_relation t in
  Alcotest.(check (list string)) "insertion order" [ "<5>"; "<3>"; "<9>" ]
    (Array.to_list (Array.map Tuple.to_string (Relation.tuples r)))

let test_exact_count () =
  let t = Table.create (rng ()) ~schema () in
  for v = 0 to 99 do
    ignore (Table.insert t (tuple v))
  done;
  Alcotest.(check int) "exact" 30 (Table.exact_count t (P.lt (P.attr "a") (P.vint 30)))

let test_estimate_tracks_truth () =
  let r = rng ~seed:221 () in
  let t = Table.create r ~schema ~sample_capacity:500 () in
  for _ = 1 to 20_000 do
    ignore (Table.insert t (tuple (Sampling.Rng.int r 100)))
  done;
  let pred = P.lt (P.attr "a") (P.vint 25) in
  let est = Table.estimate_count t pred in
  let truth = float_of_int (Table.exact_count t pred) in
  check_close ~tol:0.2 "synopsis estimate" truth est.Estimate.point

let test_estimate_after_deletes () =
  let r = rng ~seed:222 () in
  let t = Table.create r ~schema ~sample_capacity:500 () in
  let ids = Array.init 10_000 (fun v -> Table.insert t (tuple (v mod 100))) in
  (* Delete every value >= 50. *)
  Array.iteri (fun v id -> if v mod 100 >= 50 then ignore (Table.delete t id)) ids;
  Alcotest.(check int) "cardinality" 5_000 (Table.cardinality t);
  let est = Table.estimate_count t (P.lt (P.attr "a") (P.vint 50)) in
  check_close ~tol:0.05 "all survivors match" 5_000. est.Estimate.point

let test_refresh_sample () =
  let r = rng ~seed:223 () in
  let t = Table.create r ~schema ~sample_capacity:100 () in
  let ids = Array.init 5_000 (fun v -> Table.insert t (tuple v)) in
  (* Heavy deletion erodes the synopsis. *)
  Array.iteri (fun v id -> if v < 4_500 then ignore (Table.delete t id)) ids;
  if Table.sample_needs_refresh t then Table.refresh_sample t;
  Alcotest.(check bool) "refreshed" false (Table.sample_needs_refresh t);
  let est = Table.estimate_count t (P.ge (P.attr "a") (P.vint 4_500)) in
  check_close ~tol:0.05 "estimate after refresh" 500. est.Estimate.point

let test_index_cache_and_invalidation () =
  let t = Table.create (rng ()) ~schema () in
  for v = 0 to 9 do
    ignore (Table.insert t (tuple (v mod 5)))
  done;
  let index = Table.index_on t [ "a" ] in
  Alcotest.(check int) "lookups" 2 (Relational.Index.count index [ Value.Int 3 ]);
  (* Cached: same structure returned. *)
  Alcotest.(check bool) "cached" true (Table.index_on t [ "a" ] == index);
  ignore (Table.insert t (tuple 3));
  let rebuilt = Table.index_on t [ "a" ] in
  Alcotest.(check bool) "invalidated" false (rebuilt == index);
  Alcotest.(check int) "fresh count" 3 (Relational.Index.count rebuilt [ Value.Int 3 ])

let test_empty_table_estimate () =
  let t = Table.create (rng ()) ~schema () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Table.estimate_count t P.True);
       false
     with Invalid_argument _ -> true)

let test_table_feeds_catalog () =
  (* A table snapshot plugs into the whole expression machinery. *)
  let r = rng ~seed:224 () in
  let t = Table.create r ~schema () in
  for v = 0 to 999 do
    ignore (Table.insert t (tuple (v mod 10)))
  done;
  let c = Catalog.of_list [ ("t", Table.to_relation t) ] in
  Alcotest.(check int) "distinct over snapshot" 10
    (Eval.count c (Expr.distinct (Expr.base "t")))

let suite =
  [
    Alcotest.test_case "insert/delete/cardinality" `Quick test_insert_delete_cardinality;
    Alcotest.test_case "schema validation" `Quick test_schema_validation;
    Alcotest.test_case "snapshot order" `Quick test_snapshot_order;
    Alcotest.test_case "exact count" `Quick test_exact_count;
    Alcotest.test_case "estimate tracks truth" `Quick test_estimate_tracks_truth;
    Alcotest.test_case "estimate after deletes" `Quick test_estimate_after_deletes;
    Alcotest.test_case "refresh sample" `Quick test_refresh_sample;
    Alcotest.test_case "index cache and invalidation" `Quick
      test_index_cache_and_invalidation;
    Alcotest.test_case "empty table estimate" `Quick test_empty_table_estimate;
    Alcotest.test_case "table feeds catalog" `Quick test_table_feeds_catalog;
  ]
