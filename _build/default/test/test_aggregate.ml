open Helpers
module Aggregate = Raestat.Aggregate
module Estimate = Stats.Estimate
module P = Predicate

let catalog () =
  let rng_ = rng ~seed:81 () in
  Catalog.of_list
    [
      ( "r",
        Workload.Generator.relation rng_ ~n:10_000
          [
            ("v", Workload.Dist.Uniform { lo = 0; hi = 99 });
            ("g", Workload.Dist.Uniform { lo = 0; hi = 4 });
          ] );
    ]

let pred = P.le (P.attr "g") (P.vint 1)

let test_exact_sum_avg () =
  let c = Catalog.of_list [ ("t", int_relation [ 1; 2; 3; 4 ]) ] in
  check_float "sum" 10. (Aggregate.exact_sum c ~attribute:"a" (Expr.base "t"));
  check_float "avg" 2.5 (Aggregate.exact_avg c ~attribute:"a" (Expr.base "t"))

let test_exact_with_nulls () =
  let schema = Schema.of_list [ ("a", Value.Tint) ] in
  let r =
    Relation.make schema
      [ Tuple.make [ Value.Int 4 ]; Tuple.make [ Value.Null ]; Tuple.make [ Value.Int 6 ] ]
  in
  let c = Catalog.of_list [ ("t", r) ] in
  check_float "sum skips nulls" 10. (Aggregate.exact_sum c ~attribute:"a" (Expr.base "t"));
  check_float "avg skips nulls" 5. (Aggregate.exact_avg c ~attribute:"a" (Expr.base "t"))

let test_sum_census_exact () =
  let c = catalog () in
  let truth = Aggregate.exact_sum c ~attribute:"v" (Expr.select pred (Expr.base "r")) in
  let est = Aggregate.sum_selection (rng ()) c ~relation:"r" ~attribute:"v" ~n:10_000 pred in
  check_float ~eps:1e-6 "census" truth est.Estimate.point;
  check_float "no variance" 0. est.Estimate.variance

let test_sum_unbiased_mc () =
  let c = catalog () in
  let truth = Aggregate.exact_sum c ~attribute:"v" (Expr.select pred (Expr.base "r")) in
  let rng_ = rng ~seed:82 () in
  let mean =
    monte_carlo ~reps:400 (fun () ->
        (Aggregate.sum_selection rng_ c ~relation:"r" ~attribute:"v" ~n:500 pred)
          .Estimate.point)
  in
  check_close ~tol:0.03 "unbiased" truth mean

let test_sum_variance_honest () =
  let c = catalog () in
  let rng_ = rng ~seed:83 () in
  let estimates =
    Array.init 300 (fun _ ->
        Aggregate.sum_selection rng_ c ~relation:"r" ~attribute:"v" ~n:500 pred)
  in
  let points = Array.map (fun e -> e.Estimate.point) estimates in
  let empirical = Stats.Summary.variance (Stats.Summary.of_array points) in
  let predicted =
    Stats.Summary.mean
      (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.variance) estimates))
  in
  check_close ~tol:0.25 "variance honest" empirical predicted

let test_avg_consistent () =
  let c = catalog () in
  let truth = Aggregate.exact_avg c ~attribute:"v" (Expr.select pred (Expr.base "r")) in
  let est = Aggregate.avg_selection (rng ()) c ~relation:"r" ~attribute:"v" ~n:2_000 pred in
  check_close ~tol:0.05 "close to truth" truth est.Estimate.point;
  Alcotest.(check bool) "consistent status" true (est.Estimate.status = Estimate.Consistent)

let test_avg_no_hits () =
  let c = catalog () in
  let est = Aggregate.avg_selection (rng ()) c ~relation:"r" ~attribute:"v" ~n:100 P.False in
  Alcotest.(check bool) "nan" true (Float.is_nan est.Estimate.point)

let test_sum_expr_spj_unbiased_mc () =
  (* SUM over a join result, scale-up: MC mean should match truth. *)
  let rng_ = rng ~seed:84 () in
  let l, r =
    Workload.Correlated.pair rng_ ~n_left:2_000 ~n_right:2_000 ~domain:50 ~skew_left:0.5
      ~skew_right:0.5 Workload.Correlated.Independent ~attribute:"a"
  in
  let c = Catalog.of_list [ ("l", l); ("r", r) ] in
  let join =
    Expr.theta_join (P.eq (P.attr "l.a") (P.attr "r.a")) (Expr.base "l") (Expr.base "r")
  in
  let truth = Aggregate.exact_sum c ~attribute:"l.a" join in
  let mean =
    monte_carlo ~reps:200 (fun () ->
        (Aggregate.sum_expr rng_ c ~fraction:0.2 ~attribute:"l.a" join).Estimate.point)
  in
  check_close ~tol:0.08 "sum over join unbiased" truth mean

let test_sum_expr_replicated_variance () =
  let c = catalog () in
  let e = Expr.select pred (Expr.base "r") in
  let est = Aggregate.sum_expr ~groups:6 (rng ()) c ~fraction:0.05 ~attribute:"v" e in
  Alcotest.(check bool) "variance attached" true (Estimate.has_variance est)

let test_validation () =
  let c = catalog () in
  Alcotest.(check bool) "n too big" true
    (try
       ignore
         (Aggregate.sum_selection (rng ()) c ~relation:"r" ~attribute:"v" ~n:999_999 pred);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "groups" true
    (try
       ignore
         (Aggregate.sum_expr ~groups:0 (rng ()) c ~fraction:0.1 ~attribute:"v" (Expr.base "r"));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "exact sum/avg" `Quick test_exact_sum_avg;
    Alcotest.test_case "exact with nulls" `Quick test_exact_with_nulls;
    Alcotest.test_case "sum census exact" `Quick test_sum_census_exact;
    Alcotest.test_case "sum unbiased (MC)" `Slow test_sum_unbiased_mc;
    Alcotest.test_case "sum variance honest (MC)" `Slow test_sum_variance_honest;
    Alcotest.test_case "avg consistent" `Quick test_avg_consistent;
    Alcotest.test_case "avg with no hits" `Quick test_avg_no_hits;
    Alcotest.test_case "sum over join unbiased (MC)" `Slow test_sum_expr_spj_unbiased_mc;
    Alcotest.test_case "sum_expr replicated variance" `Quick test_sum_expr_replicated_variance;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
