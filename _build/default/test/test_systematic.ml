open Helpers
module Systematic = Sampling.Systematic

let test_size () =
  let r = rng () in
  for _ = 1 to 20 do
    let idx = Systematic.indices r ~n:7 ~universe:50 in
    Alcotest.(check int) "size" 7 (Array.length idx)
  done

let test_strictly_increasing_in_range () =
  let r = rng () in
  for _ = 1 to 20 do
    let idx = Systematic.indices r ~n:10 ~universe:100 in
    Array.iter (fun i -> if i < 0 || i >= 100 then Alcotest.failf "oob %d" i) idx;
    for k = 1 to Array.length idx - 1 do
      if idx.(k) <= idx.(k - 1) then Alcotest.fail "not increasing"
    done
  done

let test_even_spacing () =
  let r = rng () in
  let idx = Systematic.indices r ~n:10 ~universe:100 in
  for k = 1 to 9 do
    let gap = idx.(k) - idx.(k - 1) in
    if gap < 9 || gap > 11 then Alcotest.failf "gap %d" gap
  done

let test_full_draw () =
  let r = rng () in
  let idx = Systematic.indices r ~n:5 ~universe:5 in
  Alcotest.(check (list int)) "identity" [ 0; 1; 2; 3; 4 ] (Array.to_list idx)

let test_errors () =
  let r = rng () in
  Alcotest.(check bool) "n=0" true
    (try
       ignore (Systematic.indices r ~n:0 ~universe:5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "n>universe" true
    (try
       ignore (Systematic.indices r ~n:6 ~universe:5);
       false
     with Invalid_argument _ -> true)

let test_relation () =
  let r = rng () in
  let relation = int_relation (List.init 30 (fun i -> i)) in
  let s = Systematic.relation r ~n:6 relation in
  Alcotest.(check int) "size" 6 (Relation.cardinality s)

let suite =
  [
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "increasing in range" `Quick test_strictly_increasing_in_range;
    Alcotest.test_case "even spacing" `Quick test_even_spacing;
    Alcotest.test_case "full draw" `Quick test_full_draw;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "relation" `Quick test_relation;
  ]
