test/test_group_sum.ml: Alcotest Array Catalog Hashtbl Helpers List Option Predicate Printf Raestat Relation Schema Stats Tuple Value Workload
