test/test_integration.ml: Alcotest Catalog Eval Expr Filename Helpers Predicate Printf Raestat Relational Stats Sys Workload
