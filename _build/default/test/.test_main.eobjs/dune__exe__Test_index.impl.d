test/test_index.ml: Alcotest Catalog Eval Expr Helpers List Relation Relational Schema Tuple Value Workload
