test/test_baselines.ml: Alcotest Baselines Catalog Eval Expr Float Helpers List Predicate Printf Relation Schema Stats Value Workload
