test/test_relation.ml: Alcotest Array Helpers QCheck Relation Schema Tuple Value
