test/test_window.ml: Alcotest Array Helpers Printf Sampling
