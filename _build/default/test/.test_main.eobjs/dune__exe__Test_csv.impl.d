test/test_csv.ml: Alcotest Filename Helpers List Printf Relation Relational Schema String Sys Tuple Value
