test/test_schema.ml: Alcotest Helpers Schema Value
