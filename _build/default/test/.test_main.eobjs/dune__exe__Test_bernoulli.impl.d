test/test_bernoulli.ml: Alcotest Array Helpers Int List Relation Sampling Schema Stats
