test/test_sql.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate Raestat Relation Relational Schema Stats Tuple Value Workload
