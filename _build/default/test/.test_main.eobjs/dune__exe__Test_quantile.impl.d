test/test_quantile.ml: Alcotest Catalog Helpers List Printf Raestat Relation Schema Stats Tuple Value
