test/test_backing_sample.ml: Alcotest Array Helpers List Predicate Printf Raestat Relation Sampling Schema Stats Tuple Value
