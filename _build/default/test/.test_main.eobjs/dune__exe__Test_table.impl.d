test/test_table.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate Raestat Relation Relational Sampling Schema Stats Tuple Value
