test/test_planner.ml: Alcotest Eval Expr Helpers List Predicate Raestat String Workload
