test/test_horvitz_thompson.ml: Alcotest Array Catalog Expr Helpers Predicate Printf Raestat Sampling Stats Workload
