test/test_srs.ml: Alcotest Array Hashtbl Helpers Int List Option Printf QCheck Relation Sampling Schema
