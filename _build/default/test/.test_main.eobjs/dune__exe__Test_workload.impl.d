test/test_workload.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate Printf Relation Schema Stats Tuple Value Workload
