test/test_reservoir.ml: Alcotest Array Helpers Int List Printf Sampling
