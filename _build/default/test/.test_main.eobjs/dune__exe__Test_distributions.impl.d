test/test_distributions.ml: Alcotest Float Helpers List Printf QCheck Stats
