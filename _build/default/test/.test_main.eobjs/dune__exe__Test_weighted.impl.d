test/test_weighted.ml: Alcotest Array Helpers Int List Printf Sampling Stats
