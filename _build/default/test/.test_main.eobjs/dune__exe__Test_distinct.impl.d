test/test_distinct.ml: Alcotest Array Catalog Helpers Int List Printf Raestat Stats String Tuple Value Workload
