test/test_paged.ml: Alcotest Array Helpers List Relation Relational Tuple Value
