test/test_join_variance.ml: Alcotest Catalog Eval Expr Helpers List Predicate Raestat Sampling Stats Workload
