test/test_stratified_estimator.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate Printf Raestat Sampling Stats Tuple Value Workload
