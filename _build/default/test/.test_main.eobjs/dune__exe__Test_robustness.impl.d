test/test_robustness.ml: Alcotest Catalog Eval Expr Float Helpers List Predicate Printf Raestat Relation Relational Sampling Schema Stats String Tuple Value Workload
