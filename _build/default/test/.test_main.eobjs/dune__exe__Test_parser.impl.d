test/test_parser.ml: Alcotest Expr Helpers List Predicate QCheck Relational String Value
