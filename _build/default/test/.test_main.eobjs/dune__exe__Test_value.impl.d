test/test_value.ml: Alcotest Helpers QCheck Value
