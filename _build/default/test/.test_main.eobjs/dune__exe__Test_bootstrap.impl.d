test/test_bootstrap.ml: Alcotest Array Catalog Eval Expr Helpers Predicate Printf Raestat Sampling Stats Workload
