test/test_aggregate.ml: Alcotest Array Catalog Expr Float Helpers Predicate Raestat Relation Schema Stats Tuple Value Workload
