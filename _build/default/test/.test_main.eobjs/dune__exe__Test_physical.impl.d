test/test_physical.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate QCheck Relation Relational Schema Tuple
