test/helpers.ml: Alcotest Float List QCheck QCheck_alcotest Relational Sampling
