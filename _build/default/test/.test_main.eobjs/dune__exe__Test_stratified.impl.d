test/test_stratified.ml: Alcotest Array Helpers List Sampling
