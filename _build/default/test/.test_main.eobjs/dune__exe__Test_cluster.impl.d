test/test_cluster.ml: Alcotest Array Helpers List Predicate Printf Raestat Relational Stats Tuple Value Workload
