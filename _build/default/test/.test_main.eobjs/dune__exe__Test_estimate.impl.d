test/test_estimate.ml: Alcotest Float Helpers Stats
