test/test_eval.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate QCheck Relation Schema Tuple Value
