test/test_expr.ml: Alcotest Catalog Expr Helpers List Predicate Printf Schema
