test/test_rng.ml: Alcotest Array Float Helpers Int Printf Sampling Stats
