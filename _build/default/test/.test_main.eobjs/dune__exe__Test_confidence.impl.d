test/test_confidence.ml: Alcotest Float Helpers QCheck Stats
