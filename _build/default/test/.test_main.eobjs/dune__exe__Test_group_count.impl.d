test/test_group_count.ml: Alcotest Array Catalog Hashtbl Helpers List Option Predicate Printf Raestat Stats Workload
