test/test_sample_size.ml: Alcotest Catalog Eval Expr Float Helpers List Predicate Printf Raestat Stats Workload
