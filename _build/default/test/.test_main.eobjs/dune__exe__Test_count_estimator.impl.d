test/test_count_estimator.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate Printf Raestat Relational Stats Workload
