test/test_summary.ml: Alcotest Array Float Helpers List QCheck Stats
