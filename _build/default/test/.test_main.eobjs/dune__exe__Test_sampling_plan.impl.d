test/test_sampling_plan.ml: Alcotest Array Catalog Eval Expr Helpers List Predicate Raestat Relation Schema Tuple Value
