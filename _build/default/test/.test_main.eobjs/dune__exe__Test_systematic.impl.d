test/test_systematic.ml: Alcotest Array Helpers List Relation Sampling
