test/test_predicate.ml: Alcotest Helpers Predicate QCheck Schema Tuple Value
