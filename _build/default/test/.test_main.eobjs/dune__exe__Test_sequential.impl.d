test/test_sequential.ml: Alcotest Catalog Eval Expr Helpers List Predicate Raestat Stats Workload
