test/test_tuple.ml: Alcotest Helpers List QCheck Tuple Value
