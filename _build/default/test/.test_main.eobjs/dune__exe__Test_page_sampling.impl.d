test/test_page_sampling.ml: Alcotest Array Helpers List Printf Relation Relational Sampling
