test/test_catalog.ml: Alcotest Catalog Helpers Relation
