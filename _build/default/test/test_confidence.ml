open Helpers
module Confidence = Stats.Confidence

let test_z_values () =
  check_float ~eps:1e-3 "95%" 1.960 (Confidence.z_value ~level:0.95);
  check_float ~eps:1e-3 "90%" 1.645 (Confidence.z_value ~level:0.90);
  check_float ~eps:1e-3 "99%" 2.576 (Confidence.z_value ~level:0.99)

let test_normal_interval () =
  let i = Confidence.normal ~level:0.95 ~point:100. ~stderr:10. in
  check_float ~eps:1e-2 "lo" 80.4 i.Confidence.lo;
  check_float ~eps:1e-2 "hi" 119.6 i.Confidence.hi;
  Alcotest.(check bool) "contains point" true (Confidence.contains i 100.);
  check_float ~eps:1e-2 "half width" 19.6 (Confidence.half_width i)

let test_zero_stderr () =
  let i = Confidence.normal ~level:0.95 ~point:5. ~stderr:0. in
  check_float "degenerate lo" 5. i.Confidence.lo;
  check_float "degenerate hi" 5. i.Confidence.hi

let test_student_wider_than_normal () =
  let n = Confidence.normal ~level:0.95 ~point:0. ~stderr:1. in
  let t = Confidence.student_t ~level:0.95 ~df:5. ~point:0. ~stderr:1. in
  Alcotest.(check bool) "t wider" true
    (Confidence.width t > Confidence.width n)

let test_chebyshev_wider_than_normal () =
  let n = Confidence.normal ~level:0.95 ~point:0. ~stderr:1. in
  let c = Confidence.chebyshev ~level:0.95 ~point:0. ~stderr:1. in
  Alcotest.(check bool) "chebyshev wider" true (Confidence.width c > Confidence.width n);
  (* k = 1/√0.05 ≈ 4.472 *)
  check_float ~eps:1e-3 "chebyshev k" 4.472 (Confidence.half_width c)

let test_fpc () =
  check_float ~eps:1e-12 "no sampling" (sqrt (100. /. 99.)) (Confidence.fpc ~big_n:100 ~n:0);
  check_float ~eps:1e-12 "full census" 0. (Confidence.fpc ~big_n:100 ~n:100);
  check_float ~eps:1e-9 "half" (sqrt (50. /. 99.)) (Confidence.fpc ~big_n:100 ~n:50);
  check_float "tiny population" 1. (Confidence.fpc ~big_n:1 ~n:1)

let test_clamp () =
  let i = Confidence.normal ~level:0.95 ~point:1. ~stderr:10. in
  let c = Confidence.clamp_nonnegative i in
  check_float "clamped lo" 0. c.Confidence.lo;
  Alcotest.(check bool) "hi untouched" true (c.Confidence.hi = i.Confidence.hi)

let test_invalid_level () =
  Alcotest.(check bool) "level 0" true
    (try
       ignore (Confidence.normal ~level:0. ~point:0. ~stderr:1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative stderr" true
    (try
       ignore (Confidence.normal ~level:0.9 ~point:0. ~stderr:(-1.));
       false
     with Invalid_argument _ -> true)

let prop_interval_symmetric =
  qcheck_case "normal interval symmetric about point"
    QCheck.(pair (float_range (-100.) 100.) (float_range 0. 10.))
    (fun (point, stderr) ->
      let i = Confidence.normal ~level:0.9 ~point ~stderr in
      Float.abs (i.Confidence.hi +. i.Confidence.lo -. (2. *. point)) < 1e-9)

let prop_higher_level_wider =
  qcheck_case "higher level ⇒ wider" (QCheck.float_range 0.5 0.94) (fun level ->
      let narrow = Confidence.normal ~level ~point:0. ~stderr:1. in
      let wide = Confidence.normal ~level:0.99 ~point:0. ~stderr:1. in
      Confidence.width wide > Confidence.width narrow)

let suite =
  [
    Alcotest.test_case "z values" `Quick test_z_values;
    Alcotest.test_case "normal interval" `Quick test_normal_interval;
    Alcotest.test_case "zero stderr" `Quick test_zero_stderr;
    Alcotest.test_case "student wider than normal" `Quick test_student_wider_than_normal;
    Alcotest.test_case "chebyshev wider than normal" `Quick test_chebyshev_wider_than_normal;
    Alcotest.test_case "fpc" `Quick test_fpc;
    Alcotest.test_case "clamp nonnegative" `Quick test_clamp;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_level;
    prop_interval_symmetric;
    prop_higher_level_wider;
  ]
