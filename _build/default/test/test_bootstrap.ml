open Helpers
module Bootstrap = Raestat.Bootstrap
module Estimate = Stats.Estimate
module P = Predicate

let mean values = Array.fold_left ( +. ) 0. values /. float_of_int (Array.length values)

let test_point_is_original_statistic () =
  let sample = [| 1.; 2.; 3.; 4. |] in
  let result = Bootstrap.run (rng ()) ~replicates:50 ~statistic:mean sample in
  check_float "point" 2.5 result.Bootstrap.point;
  Alcotest.(check int) "replicate count" 50 (Array.length result.Bootstrap.replicates)

let test_replicates_stay_in_hull () =
  let sample = [| 10.; 20.; 30. |] in
  let result = Bootstrap.run (rng ()) ~replicates:200 ~statistic:mean sample in
  Array.iter
    (fun v -> if v < 10. -. 1e-9 || v > 30. +. 1e-9 then Alcotest.failf "out of hull %f" v)
    result.Bootstrap.replicates

let test_bootstrap_variance_close_to_theory () =
  (* Var of the mean of n observations ≈ s²/n (bootstrap uses the
     population variance of the sample: s²_pop/n). *)
  let rng_ = rng ~seed:171 () in
  let sample = Array.init 200 (fun _ -> Sampling.Rng.gaussian rng_) in
  let result = Bootstrap.run rng_ ~replicates:2_000 ~statistic:mean sample in
  let s = Stats.Summary.of_array sample in
  let theory = Stats.Summary.population_variance s /. 200. in
  check_close ~tol:0.15 "variance" theory (Bootstrap.variance result)

let test_intervals () =
  let rng_ = rng ~seed:172 () in
  let sample = Array.init 100 (fun _ -> Sampling.Rng.float rng_) in
  let result = Bootstrap.run rng_ ~replicates:500 ~statistic:mean sample in
  let pct = Bootstrap.percentile_interval ~level:0.9 result in
  let nrm = Bootstrap.normal_interval ~level:0.9 result in
  Alcotest.(check bool) "pct contains point" true
    (Stats.Confidence.contains pct result.Bootstrap.point);
  Alcotest.(check bool) "nrm contains point" true
    (Stats.Confidence.contains nrm result.Bootstrap.point);
  (* The two intervals should have comparable width here. *)
  let ratio = Stats.Confidence.width pct /. Stats.Confidence.width nrm in
  Alcotest.(check bool) (Printf.sprintf "width ratio %.2f sane" ratio) true
    (ratio > 0.5 && ratio < 2.)

let test_validation () =
  Alcotest.(check bool) "empty sample" true
    (try
       ignore (Bootstrap.run (rng ()) ~replicates:10 ~statistic:mean [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero replicates" true
    (try
       ignore (Bootstrap.run (rng ()) ~replicates:0 ~statistic:mean [| 1. |]);
       false
     with Invalid_argument _ -> true)

let test_selection_count_estimate () =
  let rng_ = rng ~seed:173 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:20_000 ~attribute:"a"
      (Workload.Dist.Uniform { lo = 0; hi = 99 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let pred = P.lt (P.attr "a") (P.vint 30) in
  let truth = float_of_int (Eval.count c (Expr.select pred (Expr.base "r"))) in
  let est, interval = Bootstrap.selection_count rng_ c ~relation:"r" ~n:800 pred in
  Alcotest.(check bool) "variance attached" true (Estimate.has_variance est);
  check_close ~tol:0.15 "point near truth" truth est.Estimate.point;
  Alcotest.(check bool) "interval sane" true
    (interval.Stats.Confidence.lo <= est.Estimate.point
    && est.Estimate.point <= interval.Stats.Confidence.hi)

let test_selection_count_coverage () =
  let rng_ = rng ~seed:174 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:20_000 ~attribute:"a"
      (Workload.Dist.Uniform { lo = 0; hi = 99 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let pred = P.lt (P.attr "a") (P.vint 30) in
  let truth = float_of_int (Eval.count c (Expr.select pred (Expr.base "r"))) in
  let reps = 150 in
  let covered = ref 0 in
  for _ = 1 to reps do
    let _, interval =
      Bootstrap.selection_count rng_ c ~relation:"r" ~n:500 ~replicates:200 ~level:0.9 pred
    in
    if Stats.Confidence.contains interval truth then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int reps in
  (* The bootstrap ignores the FPC, so it is slightly conservative;
     anything ≥ 0.85 at nominal 0.9 passes. *)
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.2f" coverage)
    true (coverage >= 0.85)

let suite =
  [
    Alcotest.test_case "point is original statistic" `Quick test_point_is_original_statistic;
    Alcotest.test_case "replicates in hull" `Quick test_replicates_stay_in_hull;
    Alcotest.test_case "variance close to theory (MC)" `Slow
      test_bootstrap_variance_close_to_theory;
    Alcotest.test_case "intervals" `Quick test_intervals;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "selection count estimate" `Quick test_selection_count_estimate;
    Alcotest.test_case "selection count coverage (MC)" `Slow test_selection_count_coverage;
  ]
