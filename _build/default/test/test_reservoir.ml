open Helpers
module Reservoir = Sampling.Reservoir

let test_underfull () =
  let t = Reservoir.create (rng ()) ~capacity:10 in
  Reservoir.add_all t [| 1; 2; 3 |];
  Alcotest.(check int) "seen" 3 (Reservoir.seen t);
  let contents = Array.to_list (Reservoir.contents t) in
  Alcotest.(check (list int)) "all kept" [ 1; 2; 3 ] (List.sort Int.compare contents)

let test_capacity_invariant () =
  List.iter
    (fun algorithm ->
      let t = Reservoir.create ~algorithm (rng ()) ~capacity:5 in
      Reservoir.add_all t (Array.init 1000 (fun i -> i));
      Alcotest.(check int) "size capped" 5 (Array.length (Reservoir.contents t));
      Alcotest.(check int) "seen" 1000 (Reservoir.seen t))
    [ `R; `L ]

let test_contents_are_stream_elements () =
  List.iter
    (fun algorithm ->
      let t = Reservoir.create ~algorithm (rng ()) ~capacity:8 in
      Reservoir.add_all t (Array.init 500 (fun i -> i * 3));
      Array.iter
        (fun x -> if x mod 3 <> 0 || x < 0 || x >= 1500 then Alcotest.failf "alien %d" x)
        (Reservoir.contents t);
      (* No duplicates: stream elements are distinct. *)
      let sorted = List.sort_uniq Int.compare (Array.to_list (Reservoir.contents t)) in
      Alcotest.(check int) "distinct" 8 (List.length sorted))
    [ `R; `L ]

let uniformity algorithm =
  (* Each of 20 stream elements should be retained with probability
     5/20 = 0.25. *)
  let r = rng () in
  let counts = Array.make 20 0 in
  let reps = 20_000 in
  for _ = 1 to reps do
    let t = Reservoir.create ~algorithm r ~capacity:5 in
    Reservoir.add_all t (Array.init 20 (fun i -> i));
    Array.iter (fun i -> counts.(i) <- counts.(i) + 1) (Reservoir.contents t)
  done;
  Array.iteri
    (fun i c ->
      check_close ~tol:0.05
        (Printf.sprintf "element %d retention" i)
        0.25
        (float_of_int c /. float_of_int reps))
    counts

let test_uniform_r () = uniformity `R

let test_uniform_l () = uniformity `L

let test_one_shot_sample () =
  let s = Reservoir.sample (rng ()) ~k:3 (Array.init 10 (fun i -> i)) in
  Alcotest.(check int) "size" 3 (Array.length s);
  let small = Reservoir.sample (rng ()) ~k:5 [| 1; 2 |] in
  Alcotest.(check int) "short stream" 2 (Array.length small)

let test_invalid_capacity () =
  Alcotest.check_raises "zero" (Invalid_argument "Reservoir.create: capacity must be positive")
    (fun () -> ignore (Reservoir.create (rng ()) ~capacity:0))

let suite =
  [
    Alcotest.test_case "underfull keeps everything" `Quick test_underfull;
    Alcotest.test_case "capacity invariant" `Quick test_capacity_invariant;
    Alcotest.test_case "contents from stream" `Quick test_contents_are_stream_elements;
    Alcotest.test_case "algorithm R uniform" `Slow test_uniform_r;
    Alcotest.test_case "algorithm L uniform" `Slow test_uniform_l;
    Alcotest.test_case "one-shot sample" `Quick test_one_shot_sample;
    Alcotest.test_case "invalid capacity" `Quick test_invalid_capacity;
  ]
