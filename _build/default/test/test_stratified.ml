open Helpers
module Stratified = Sampling.Stratified

let test_proportional_sums () =
  let alloc = Stratified.proportional_allocation ~n:10 [| 50; 30; 20 |] in
  Alcotest.(check int) "total" 10 (Array.fold_left ( + ) 0 alloc);
  Alcotest.(check (array int)) "proportional" [| 5; 3; 2 |] alloc

let test_proportional_rounding () =
  let alloc = Stratified.proportional_allocation ~n:10 [| 33; 33; 34 |] in
  Alcotest.(check int) "total" 10 (Array.fold_left ( + ) 0 alloc);
  Array.iter (fun a -> if a < 3 || a > 4 then Alcotest.failf "lopsided %d" a) alloc

let test_proportional_caps () =
  (* A tiny stratum cannot be over-allocated. *)
  let alloc = Stratified.proportional_allocation ~n:9 [| 2; 100 |] in
  Alcotest.(check int) "total" 9 (Array.fold_left ( + ) 0 alloc);
  Alcotest.(check bool) "capped" true (alloc.(0) <= 2)

let test_proportional_infeasible () =
  Alcotest.(check bool) "too many" true
    (try
       ignore (Stratified.proportional_allocation ~n:20 [| 5; 5 |]);
       false
     with Invalid_argument _ -> true)

let test_neyman_favours_variance () =
  let alloc = Stratified.neyman_allocation ~n:10 [| 50; 50 |] [| 10.; 0.1 |] in
  Alcotest.(check int) "total" 10 (Array.fold_left ( + ) 0 alloc);
  Alcotest.(check bool) "noisy stratum gets more" true (alloc.(0) > alloc.(1))

let test_neyman_zero_stddevs_degrades_to_proportional () =
  let alloc = Stratified.neyman_allocation ~n:6 [| 20; 10 |] [| 0.; 0. |] in
  Alcotest.(check (array int)) "proportional fallback" [| 4; 2 |] alloc

let test_sample_covers_strata () =
  let data = Array.init 90 (fun i -> i) in
  let key x = string_of_int (x mod 3) in
  let strata = Stratified.sample (rng ()) ~n:30 ~key data in
  Alcotest.(check int) "three strata" 3 (List.length strata);
  List.iter
    (fun s ->
      Alcotest.(check int)
        ("allocation met in " ^ s.Stratified.key)
        s.Stratified.allocated
        (Array.length s.Stratified.members);
      (* Members must belong to their stratum. *)
      Array.iter
        (fun x ->
          Alcotest.(check string) "member key" s.Stratified.key (key x))
        s.Stratified.members)
    strata

let test_sample_flat_size () =
  let data = Array.init 50 (fun i -> i) in
  let flat = Stratified.sample_flat (rng ()) ~n:20 ~key:(fun x -> string_of_int (x mod 5)) data in
  Alcotest.(check int) "total size" 20 (Array.length flat)

let suite =
  [
    Alcotest.test_case "proportional sums" `Quick test_proportional_sums;
    Alcotest.test_case "proportional rounding" `Quick test_proportional_rounding;
    Alcotest.test_case "proportional caps" `Quick test_proportional_caps;
    Alcotest.test_case "proportional infeasible" `Quick test_proportional_infeasible;
    Alcotest.test_case "neyman favours variance" `Quick test_neyman_favours_variance;
    Alcotest.test_case "neyman zero stddev fallback" `Quick
      test_neyman_zero_stddevs_degrades_to_proportional;
    Alcotest.test_case "sample covers strata" `Quick test_sample_covers_strata;
    Alcotest.test_case "sample_flat size" `Quick test_sample_flat_size;
  ]
