open Helpers

let t123 = Tuple.make [ Value.Int 1; Value.Int 2; Value.Int 3 ]

let test_arity_get () =
  Alcotest.(check int) "arity" 3 (Tuple.arity t123);
  Alcotest.(check bool) "get" true (Value.equal (Value.Int 2) (Tuple.get t123 1))

let test_project () =
  let p = Tuple.project t123 [| 2; 0 |] in
  Alcotest.(check string) "projected" "<3, 1>" (Tuple.to_string p)

let test_concat () =
  let c = Tuple.concat t123 (Tuple.make [ Value.Str "x" ]) in
  Alcotest.(check int) "arity" 4 (Tuple.arity c);
  Alcotest.(check string) "render" "<1, 2, 3, x>" (Tuple.to_string c)

let test_compare_lexicographic () =
  let t1 = Tuple.make [ Value.Int 1; Value.Int 9 ] in
  let t2 = Tuple.make [ Value.Int 2; Value.Int 0 ] in
  Alcotest.(check bool) "lex" true (Tuple.compare t1 t2 < 0);
  (* Prefix is smaller. *)
  let short = Tuple.make [ Value.Int 1 ] in
  let long = Tuple.make [ Value.Int 1; Value.Int 0 ] in
  Alcotest.(check bool) "prefix" true (Tuple.compare short long < 0)

let test_equal_hash () =
  let t1 = Tuple.make [ Value.Int 3; Value.Str "a" ] in
  let t2 = Tuple.make [ Value.Float 3.0; Value.Str "a" ] in
  Alcotest.(check bool) "equal across numeric types" true (Tuple.equal t1 t2);
  Alcotest.(check int) "hash agrees" (Tuple.hash t1) (Tuple.hash t2)

let tuple_gen =
  QCheck.Gen.(
    map
      (fun ints -> Tuple.make (List.map (fun i -> Value.Int i) ints))
      (list_size (int_range 0 5) (int_range (-20) 20)))

let tuple_arb = QCheck.make ~print:Tuple.to_string tuple_gen

let prop_compare_total =
  qcheck_case "compare antisymmetric" (QCheck.pair tuple_arb tuple_arb)
    (fun (t1, t2) -> Tuple.compare t1 t2 = -Tuple.compare t2 t1)

let prop_concat_arity =
  qcheck_case "concat arity adds" (QCheck.pair tuple_arb tuple_arb) (fun (t1, t2) ->
      Tuple.arity (Tuple.concat t1 t2) = Tuple.arity t1 + Tuple.arity t2)

let suite =
  [
    Alcotest.test_case "arity and get" `Quick test_arity_get;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "concat" `Quick test_concat;
    Alcotest.test_case "compare lexicographic" `Quick test_compare_lexicographic;
    Alcotest.test_case "equal and hash" `Quick test_equal_hash;
    prop_compare_total;
    prop_concat_arity;
  ]
