open Helpers
module Paged = Relational.Paged
module Page_sampling = Sampling.Page_sampling

let paged () = Paged.make ~page_capacity:10 (int_relation (List.init 95 (fun i -> i)))

let test_sample_page_count () =
  let p = paged () in
  let s = Page_sampling.sample (rng ()) ~m:4 p in
  Alcotest.(check int) "pages" 4 (Array.length s.Page_sampling.page_indices);
  Alcotest.(check int) "page arrays" 4 (Array.length s.Page_sampling.pages)

let test_counts_accesses () =
  let p = paged () in
  ignore (Page_sampling.sample (rng ()) ~m:3 p);
  Alcotest.(check int) "3 page reads" 3 (Paged.accesses p)

let test_tuple_count_and_to_relation () =
  let p = paged () in
  let s = Page_sampling.sample (rng ()) ~m:10 p in
  (* All 10 pages = entire relation (the last page holds 5 tuples). *)
  Alcotest.(check int) "tuple count" 95 (Page_sampling.tuple_count s);
  let r = Page_sampling.to_relation p s in
  Alcotest.(check int) "relation size" 95 (Relation.cardinality r)

let test_pages_match_indices () =
  let p = paged () in
  let s = Page_sampling.sample (rng ()) ~m:5 p in
  Array.iteri
    (fun k page_index ->
      let expected = Paged.peek_page p page_index in
      Alcotest.(check bool)
        (Printf.sprintf "page %d content" page_index)
        true
        (expected = s.Page_sampling.pages.(k)))
    s.Page_sampling.page_indices

let test_invalid_m () =
  let p = paged () in
  Alcotest.(check bool) "m too large" true
    (try
       ignore (Page_sampling.sample (rng ()) ~m:11 p);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "sample page count" `Quick test_sample_page_count;
    Alcotest.test_case "counts accesses" `Quick test_counts_accesses;
    Alcotest.test_case "tuple count / to_relation" `Quick test_tuple_count_and_to_relation;
    Alcotest.test_case "pages match indices" `Quick test_pages_match_indices;
    Alcotest.test_case "invalid m" `Quick test_invalid_m;
  ]
