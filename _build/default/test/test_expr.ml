open Helpers
module P = Predicate

let catalog () =
  Catalog.of_list
    [
      ("r", two_column_relation ~names:("a", "b") [ (1, 10); (2, 20) ]);
      ("s", two_column_relation ~names:("c", "d") [ (1, 100) ]);
    ]

let test_schema_base () =
  let c = catalog () in
  Alcotest.(check (list string)) "base" [ "a"; "b" ]
    (Schema.names (Expr.schema_of c (Expr.base "r")))

let test_schema_select_project () =
  let c = catalog () in
  let e = Expr.project [ "b" ] (Expr.select (P.gt (P.attr "a") (P.vint 0)) (Expr.base "r")) in
  Alcotest.(check (list string)) "project" [ "b" ] (Schema.names (Expr.schema_of c e))

let test_schema_join_product () =
  let c = catalog () in
  let j = Expr.equijoin [ ("a", "c") ] (Expr.base "r") (Expr.base "s") in
  Alcotest.(check (list string)) "join" [ "a"; "b"; "c"; "d" ]
    (Schema.names (Expr.schema_of c j));
  let p = Expr.product (Expr.base "r") (Expr.base "r") in
  (* Self-product qualifies the clashing names. *)
  Alcotest.(check (list string)) "self product" [ "l.a"; "l.b"; "r.a"; "r.b" ]
    (Schema.names (Expr.schema_of c p))

let test_schema_errors () =
  let c = catalog () in
  let check_fails name e =
    Alcotest.(check bool) name true
      (try
         ignore (Expr.schema_of c e);
         false
       with Failure _ -> true)
  in
  check_fails "unbound base" (Expr.base "nope");
  check_fails "bad selection attr"
    (Expr.select (P.eq (P.attr "zz") (P.vint 0)) (Expr.base "r"));
  check_fails "bad projection" (Expr.project [ "zz" ] (Expr.base "r"));
  check_fails "bad join attr" (Expr.equijoin [ ("zz", "c") ] (Expr.base "r") (Expr.base "s"));
  check_fails "incompatible union" (Expr.union (Expr.base "r") (Expr.project [ "c" ] (Expr.base "s")))

let test_union_compatible_by_position () =
  let c = catalog () in
  (* r(a,b) and s(c,d) are both (int, int): union-compatible. *)
  let u = Expr.union (Expr.base "r") (Expr.base "s") in
  Alcotest.(check (list string)) "takes left names" [ "a"; "b" ]
    (Schema.names (Expr.schema_of c u))

let test_leaves_with_multiplicity () =
  let e =
    Expr.union
      (Expr.product (Expr.base "r") (Expr.base "r"))
      (Expr.product (Expr.base "r") (Expr.base "s"))
  in
  Alcotest.(check (list string)) "leaves" [ "r"; "r"; "r"; "s" ] (Expr.leaves e)

let test_map_bases_indices () =
  let e = Expr.product (Expr.base "r") (Expr.product (Expr.base "s") (Expr.base "r")) in
  let seen = ref [] in
  let _rewritten =
    Expr.map_bases
      (fun i name ->
        seen := (i, name) :: !seen;
        Expr.base (Printf.sprintf "%s@%d" name i))
      e
  in
  Alcotest.(check (list (pair int string)))
    "occurrences in order"
    [ (0, "r"); (1, "s"); (2, "r") ]
    (List.rev !seen)

let test_has_dedup () =
  Alcotest.(check bool) "plain join" false
    (Expr.has_dedup (Expr.equijoin [ ("a", "c") ] (Expr.base "r") (Expr.base "s")));
  Alcotest.(check bool) "distinct" true (Expr.has_dedup (Expr.distinct (Expr.base "r")));
  Alcotest.(check bool) "union" true
    (Expr.has_dedup (Expr.union (Expr.base "r") (Expr.base "s")));
  Alcotest.(check bool) "nested" true
    (Expr.has_dedup (Expr.select P.True (Expr.diff (Expr.base "r") (Expr.base "s"))))

let test_has_repeated_leaf () =
  Alcotest.(check bool) "no repeat" false
    (Expr.has_repeated_leaf (Expr.product (Expr.base "r") (Expr.base "s")));
  Alcotest.(check bool) "repeat" true
    (Expr.has_repeated_leaf (Expr.product (Expr.base "r") (Expr.base "r")))

let test_size () =
  let e = Expr.select P.True (Expr.product (Expr.base "r") (Expr.base "s")) in
  Alcotest.(check int) "size" 4 (Expr.size e)

let test_rename_schema () =
  let c = catalog () in
  let e = Expr.rename [ ("a", "alpha") ] (Expr.base "r") in
  Alcotest.(check (list string)) "renamed" [ "alpha"; "b" ]
    (Schema.names (Expr.schema_of c e))

let test_pretty_printer () =
  let e = Expr.select (P.eq (P.attr "a") (P.vint 1)) (Expr.base "r") in
  Alcotest.(check string) "render" "σ[a = 1](r)" (Expr.to_string e)

let suite =
  [
    Alcotest.test_case "schema of base" `Quick test_schema_base;
    Alcotest.test_case "schema select/project" `Quick test_schema_select_project;
    Alcotest.test_case "schema join/product" `Quick test_schema_join_product;
    Alcotest.test_case "schema errors" `Quick test_schema_errors;
    Alcotest.test_case "union compatibility by position" `Quick
      test_union_compatible_by_position;
    Alcotest.test_case "leaves with multiplicity" `Quick test_leaves_with_multiplicity;
    Alcotest.test_case "map_bases occurrence indices" `Quick test_map_bases_indices;
    Alcotest.test_case "has_dedup" `Quick test_has_dedup;
    Alcotest.test_case "has_repeated_leaf" `Quick test_has_repeated_leaf;
    Alcotest.test_case "size" `Quick test_size;
    Alcotest.test_case "rename schema" `Quick test_rename_schema;
    Alcotest.test_case "pretty printer" `Quick test_pretty_printer;
  ]
