open Helpers
module CE = Raestat.Count_estimator
module P = Predicate
module Estimate = Stats.Estimate

(* A fixed catalog used by most cases: r.a uniform over 0..9 (1000
   tuples), s.b skewed over 0..9 (500 tuples). *)
let catalog () =
  let rng_ = rng ~seed:1 () in
  let r = Workload.Generator.int_relation rng_ ~n:1000 ~attribute:"a"
      (Workload.Dist.Uniform { lo = 0; hi = 9 })
  in
  let s = Workload.Generator.int_relation rng_ ~n:500 ~attribute:"b"
      (Workload.Dist.Zipf { n_values = 10; skew = 1.0 })
  in
  Catalog.of_list [ ("r", r); ("s", s) ]

let test_classify () =
  let join = Expr.equijoin [ ("a", "b") ] (Expr.base "r") (Expr.base "s") in
  Alcotest.(check bool) "join unbiased" true (CE.classify join = Estimate.Unbiased);
  Alcotest.(check bool) "select unbiased" true
    (CE.classify (Expr.select P.True (Expr.base "r")) = Estimate.Unbiased);
  Alcotest.(check bool) "self join unbiased" true
    (CE.classify (Expr.product (Expr.base "r") (Expr.base "r")) = Estimate.Unbiased);
  Alcotest.(check bool) "bag projection unbiased" true
    (CE.classify (Expr.project [ "a" ] (Expr.base "r")) = Estimate.Unbiased);
  Alcotest.(check bool) "distinct consistent" true
    (CE.classify (Expr.distinct (Expr.base "r")) = Estimate.Consistent);
  Alcotest.(check bool) "union consistent" true
    (CE.classify (Expr.union (Expr.base "r") (Expr.base "r")) = Estimate.Consistent);
  Alcotest.(check bool) "aggregate consistent" true
    (CE.classify (Expr.group_count ~by:[ "a" ] (Expr.base "r")) = Estimate.Consistent)

let test_fraction_one_exact () =
  let c = catalog () in
  let exprs =
    [
      Expr.select (P.le (P.attr "a") (P.vint 3)) (Expr.base "r");
      Expr.equijoin [ ("a", "b") ] (Expr.base "r") (Expr.base "s");
      Expr.product (Expr.base "r") (Expr.base "s");
      Expr.distinct (Expr.base "r");
    ]
  in
  List.iter
    (fun e ->
      let truth = float_of_int (Eval.count c e) in
      let est = CE.estimate (rng ()) c ~fraction:1.0 e in
      check_float ~eps:1e-9 (Expr.to_string e) truth est.Estimate.point)
    exprs

let monte_carlo_mean ~reps c ~fraction e =
  let rng_ = rng ~seed:77 () in
  monte_carlo ~reps (fun () -> (CE.estimate rng_ c ~fraction e).Estimate.point)

let test_selection_scale_up_unbiased_mc () =
  let c = catalog () in
  let e = Expr.select (P.le (P.attr "a") (P.vint 2)) (Expr.base "r") in
  let truth = float_of_int (Eval.count c e) in
  let mean = monte_carlo_mean ~reps:400 c ~fraction:0.1 e in
  (* SE of the MC mean ≈ truth·sqrt((1-f)/(f·n·reps)) — generous 5%. *)
  check_close ~tol:0.05 "mean ≈ truth" truth mean

let test_join_scale_up_unbiased_mc () =
  let c = catalog () in
  let e = Expr.equijoin [ ("a", "b") ] (Expr.base "r") (Expr.base "s") in
  let truth = float_of_int (Eval.count c e) in
  let mean = monte_carlo_mean ~reps:300 c ~fraction:0.1 e in
  check_close ~tol:0.06 "mean ≈ truth" truth mean

let test_self_join_unbiased_mc () =
  let c = catalog () in
  let e =
    Expr.theta_join (P.eq (P.attr "l.a") (P.attr "r.a")) (Expr.base "r") (Expr.base "r")
  in
  let truth = float_of_int (Eval.count c e) in
  let mean = monte_carlo_mean ~reps:300 c ~fraction:0.1 e in
  check_close ~tol:0.06 "mean ≈ truth" truth mean

let test_product_estimate_exact_for_any_draw () =
  (* |S1×S2|·scale = n1·n2·(N1 N2)/(n1 n2) is deterministic. *)
  let c = catalog () in
  let e = Expr.product (Expr.base "r") (Expr.base "s") in
  let est = CE.estimate (rng ()) c ~fraction:0.05 e in
  check_float "exact" 500_000. est.Estimate.point

let test_replicated_estimate_carries_variance () =
  let c = catalog () in
  let e = Expr.select (P.le (P.attr "a") (P.vint 4)) (Expr.base "r") in
  let est = CE.estimate ~groups:6 (rng ()) c ~fraction:0.05 e in
  Alcotest.(check bool) "has variance" true (Estimate.has_variance est);
  Alcotest.(check bool) "variance non-negative" true (est.Estimate.variance >= 0.);
  let truth = float_of_int (Eval.count c e) in
  (* Point should be in a broad band around the truth. *)
  check_close ~tol:0.5 "rough point" truth est.Estimate.point

let test_selection_estimator_fields () =
  let c = catalog () in
  let est = CE.selection (rng ()) c ~relation:"r" ~n:200 (P.le (P.attr "a") (P.vint 4)) in
  Alcotest.(check int) "sample size" 200 est.Estimate.sample_size;
  Alcotest.(check bool) "unbiased" true (est.Estimate.status = Estimate.Unbiased);
  Alcotest.(check bool) "variance attached" true (Estimate.has_variance est)

let test_selection_of_counts_formulas () =
  (* N=100, n=10, hits=5 ⇒ point 50, var = 100²·0.9·0.25/9. *)
  let est = CE.selection_of_counts ~big_n:100 ~n:10 ~hits:5 in
  check_float "point" 50. est.Estimate.point;
  check_float ~eps:1e-9 "variance" (10_000. *. 0.9 *. 0.25 /. 9.) est.Estimate.variance;
  (* Census: zero variance. *)
  let census = CE.selection_of_counts ~big_n:50 ~n:50 ~hits:20 in
  check_float "census variance" 0. census.Estimate.variance;
  Alcotest.(check bool) "bad hits" true
    (try
       ignore (CE.selection_of_counts ~big_n:10 ~n:5 ~hits:6);
       false
     with Invalid_argument _ -> true)

let test_selection_mc_unbiased_and_variance_honest () =
  let c = catalog () in
  let p = P.le (P.attr "a") (P.vint 2) in
  let truth = float_of_int (Eval.count c (Expr.select p (Expr.base "r"))) in
  let rng_ = rng ~seed:5 () in
  let points = Array.init 400 (fun _ -> CE.selection rng_ c ~relation:"r" ~n:100 p) in
  let mean = Stats.Summary.mean (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.point) points)) in
  check_close ~tol:0.04 "unbiased" truth mean;
  (* The average estimated variance should match the empirical variance
     of the points within a broad band. *)
  let empirical =
    Stats.Summary.variance (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.point) points))
  in
  let predicted =
    Stats.Summary.mean (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.variance) points))
  in
  check_close ~tol:0.30 "variance estimate honest" empirical predicted

let test_equijoin_replicated () =
  let c = catalog () in
  let est = CE.equijoin ~groups:8 (rng ()) c ~left:"r" ~right:"s" ~on:[ ("a", "b") ] ~fraction:0.4 in
  Alcotest.(check bool) "variance" true (Estimate.has_variance est);
  let truth =
    float_of_int (Eval.count c (Expr.equijoin [ ("a", "b") ] (Expr.base "r") (Expr.base "s")))
  in
  check_close ~tol:0.5 "rough point" truth est.Estimate.point

let test_equijoin_indexed_census_exact () =
  let c = catalog () in
  let truth =
    float_of_int (Eval.count c (Expr.equijoin [ ("a", "b") ] (Expr.base "r") (Expr.base "s")))
  in
  let est = CE.equijoin_indexed (rng ()) c ~left:"r" ~right:"s" ~on:("a", "b") ~n:1000 in
  check_float "census" truth est.Estimate.point;
  check_float "no variance at census" 0. est.Estimate.variance

let test_equijoin_indexed_unbiased_mc () =
  let c = catalog () in
  let truth =
    float_of_int (Eval.count c (Expr.equijoin [ ("a", "b") ] (Expr.base "r") (Expr.base "s")))
  in
  let rng_ = rng ~seed:201 () in
  let index =
    Relational.Index.build (Catalog.find c "s") ~attributes:[ "b" ]
  in
  let mean =
    monte_carlo ~reps:400 (fun () ->
        (CE.equijoin_indexed ~index rng_ c ~left:"r" ~right:"s" ~on:("a", "b") ~n:100)
          .Estimate.point)
  in
  check_close ~tol:0.04 "unbiased" truth mean

let test_equijoin_indexed_variance_honest () =
  let c = catalog () in
  let rng_ = rng ~seed:202 () in
  let index = Relational.Index.build (Catalog.find c "s") ~attributes:[ "b" ] in
  let estimates =
    Array.init 300 (fun _ ->
        CE.equijoin_indexed ~index rng_ c ~left:"r" ~right:"s" ~on:("a", "b") ~n:100)
  in
  let points = Array.map (fun e -> e.Estimate.point) estimates in
  let empirical = Stats.Summary.variance (Stats.Summary.of_array points) in
  let predicted =
    Stats.Summary.mean
      (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.variance) estimates))
  in
  check_close ~tol:0.30 "variance honest" empirical predicted

let test_equijoin_indexed_tighter_than_bilinear () =
  (* Same tuple budget: one-sided degree sampling beats two-sided
     bilinear sampling. *)
  let c = catalog () in
  let rng_ = rng ~seed:203 () in
  let index = Relational.Index.build (Catalog.find c "s") ~attributes:[ "b" ] in
  let reps = 200 in
  let sd points = Stats.Summary.stddev (Stats.Summary.of_array points) in
  let indexed =
    Array.init reps (fun _ ->
        (CE.equijoin_indexed ~index rng_ c ~left:"r" ~right:"s" ~on:("a", "b") ~n:150)
          .Estimate.point)
  in
  let bilinear =
    Array.init reps (fun _ ->
        (CE.equijoin ~groups:1 rng_ c ~left:"r" ~right:"s" ~on:[ ("a", "b") ]
           ~fraction:0.1)
          .Estimate.point)
  in
  Alcotest.(check bool)
    (Printf.sprintf "indexed sd %.0f < bilinear sd %.0f" (sd indexed) (sd bilinear))
    true
    (sd indexed < sd bilinear)

let test_equijoin_indexed_validation () =
  let c = catalog () in
  Alcotest.(check bool) "bad n" true
    (try
       ignore (CE.equijoin_indexed (rng ()) c ~left:"r" ~right:"s" ~on:("a", "b") ~n:0);
       false
     with Invalid_argument _ -> true);
  let wrong = Relational.Index.build (Catalog.find c "r") ~attributes:[ "a" ] in
  Alcotest.(check bool) "wrong index" true
    (try
       ignore
         (CE.equijoin_indexed ~index:wrong (rng ()) c ~left:"r" ~right:"s" ~on:("a", "b")
            ~n:10);
       false
     with Invalid_argument _ -> true)

let set_catalog ~overlap =
  let left, right =
    Workload.Generator.set_pair (rng ~seed:3 ()) ~card_left:400 ~card_right:300 ~overlap
      ~attribute:"a"
  in
  Catalog.of_list [ ("x", left); ("y", right) ]

let test_set_ops_points_and_status () =
  let c = set_catalog ~overlap:120 in
  let rng_ = rng () in
  let inter = CE.intersection rng_ c ~left:"x" ~right:"y" ~fraction:1.0 in
  check_float "full-fraction intersection exact" 120. inter.Estimate.point;
  let union = CE.union rng_ c ~left:"x" ~right:"y" ~fraction:1.0 in
  check_float "union exact" (400. +. 300. -. 120.) union.Estimate.point;
  let diff = CE.difference rng_ c ~left:"x" ~right:"y" ~fraction:1.0 in
  check_float "difference exact" 280. diff.Estimate.point;
  Alcotest.(check bool) "unbiased" true (inter.Estimate.status = Estimate.Unbiased)

let test_set_ops_unbiased_mc () =
  let c = set_catalog ~overlap:150 in
  let rng_ = rng ~seed:11 () in
  let mean =
    monte_carlo ~reps:400 (fun () ->
        (CE.intersection rng_ c ~left:"x" ~right:"y" ~fraction:0.3).Estimate.point)
  in
  check_close ~tol:0.05 "intersection mean" 150. mean;
  let mean_diff =
    monte_carlo ~reps:400 (fun () ->
        (CE.difference rng_ c ~left:"x" ~right:"y" ~fraction:0.3).Estimate.point)
  in
  check_close ~tol:0.05 "difference mean" 250. mean_diff

let test_set_ops_variance_honest () =
  let c = set_catalog ~overlap:150 in
  let rng_ = rng ~seed:12 () in
  let estimates =
    Array.init 300 (fun _ -> CE.intersection rng_ c ~left:"x" ~right:"y" ~fraction:0.3)
  in
  let points = Array.map (fun e -> e.Estimate.point) estimates in
  let empirical = Stats.Summary.variance (Stats.Summary.of_array points) in
  let predicted =
    Stats.Summary.mean
      (Stats.Summary.of_array (Array.map (fun e -> e.Estimate.variance) estimates))
  in
  check_close ~tol:0.35 "plug-in variance matches" empirical predicted

let test_set_ops_reject_bags () =
  let c = Catalog.of_list [ ("x", int_relation [ 1; 1 ]); ("y", int_relation [ 1 ]) ] in
  Alcotest.(check bool) "duplicates rejected" true
    (try
       ignore (CE.intersection (rng ()) c ~left:"x" ~right:"y" ~fraction:0.5);
       false
     with Invalid_argument _ -> true)

let test_dedup_expression_is_consistent_status () =
  let c = catalog () in
  let e = Expr.distinct (Expr.project [ "a" ] (Expr.base "r")) in
  let est = CE.estimate (rng ()) c ~fraction:0.2 e in
  Alcotest.(check bool) "consistent" true (est.Estimate.status = Estimate.Consistent)

let test_groups_validation () =
  let c = catalog () in
  Alcotest.(check bool) "groups=0" true
    (try
       ignore (CE.estimate ~groups:0 (rng ()) c ~fraction:0.1 (Expr.base "r"));
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "fraction 1 is exact" `Quick test_fraction_one_exact;
    Alcotest.test_case "selection scale-up unbiased (MC)" `Slow
      test_selection_scale_up_unbiased_mc;
    Alcotest.test_case "join scale-up unbiased (MC)" `Slow test_join_scale_up_unbiased_mc;
    Alcotest.test_case "self-join unbiased (MC)" `Slow test_self_join_unbiased_mc;
    Alcotest.test_case "product estimate exact" `Quick test_product_estimate_exact_for_any_draw;
    Alcotest.test_case "replicated estimate has variance" `Quick
      test_replicated_estimate_carries_variance;
    Alcotest.test_case "selection estimator fields" `Quick test_selection_estimator_fields;
    Alcotest.test_case "selection_of_counts formulas" `Quick test_selection_of_counts_formulas;
    Alcotest.test_case "selection MC unbiased, variance honest" `Slow
      test_selection_mc_unbiased_and_variance_honest;
    Alcotest.test_case "equijoin replicated" `Quick test_equijoin_replicated;
    Alcotest.test_case "indexed join census exact" `Quick test_equijoin_indexed_census_exact;
    Alcotest.test_case "indexed join unbiased (MC)" `Slow test_equijoin_indexed_unbiased_mc;
    Alcotest.test_case "indexed join variance honest (MC)" `Slow
      test_equijoin_indexed_variance_honest;
    Alcotest.test_case "indexed beats bilinear (MC)" `Slow
      test_equijoin_indexed_tighter_than_bilinear;
    Alcotest.test_case "indexed join validation" `Quick test_equijoin_indexed_validation;
    Alcotest.test_case "set ops exact at fraction 1" `Quick test_set_ops_points_and_status;
    Alcotest.test_case "set ops unbiased (MC)" `Slow test_set_ops_unbiased_mc;
    Alcotest.test_case "set ops variance honest (MC)" `Slow test_set_ops_variance_honest;
    Alcotest.test_case "set ops reject bags" `Quick test_set_ops_reject_bags;
    Alcotest.test_case "dedup expressions marked consistent" `Quick
      test_dedup_expression_is_consistent_status;
    Alcotest.test_case "groups validation" `Quick test_groups_validation;
  ]
