open Helpers
module JV = Raestat.Join_variance

let left = int_relation [ 0; 0; 0; 1; 1; 2 ]
let right = int_relation [ 0; 1; 1; 3 ]

let test_profile_counts () =
  let p = JV.profile left "a" in
  Alcotest.(check int) "distinct" 3 (JV.distinct p);
  check_float "moment1 = N" 6. (JV.moment1 p);
  (* 3² + 2² + 1² = 14 *)
  check_float "moment2" 14. (JV.moment2 p);
  check_float "self-join size" 14. (JV.self_join_size p)

let test_join_size_matches_eval () =
  let p1 = JV.profile left "a" and p2 = JV.profile right "a" in
  let c = Catalog.of_list [ ("l", left); ("r", right) ] in
  let via_eval =
    Eval.count c
      (Expr.theta_join
         (Predicate.eq (Predicate.attr "l.a") (Predicate.attr "r.a"))
         (Expr.base "l") (Expr.base "r"))
  in
  check_float "join size" (float_of_int via_eval) (JV.join_size p1 p2);
  (* Symmetric. *)
  check_float "symmetric" (JV.join_size p1 p2) (JV.join_size p2 p1)

let test_oracle_variance_zero_at_full_rate () =
  let p1 = JV.profile left "a" and p2 = JV.profile right "a" in
  check_float ~eps:1e-9 "q=1 ⇒ no variance" 0. (JV.oracle_variance ~q1:1. ~q2:1. p1 p2)

let test_oracle_variance_hand_computed () =
  (* Single shared value with a=2, b=1, q1=q2=0.5:
     E[A²] = 2·0.25+4·0.25 = 1.5; E[B²] = 0.25+0.25 = 0.5
     VarX = 1.5·0.5 − 0.0625·4·1 = 0.5; Var Ĵ = 0.5/0.0625 = 8. *)
  let l = int_relation [ 7; 7 ] and r = int_relation [ 7 ] in
  let v = JV.oracle_variance ~q1:0.5 ~q2:0.5 (JV.profile l "a") (JV.profile r "a") in
  check_float ~eps:1e-9 "hand value" 8. v

let test_oracle_variance_matches_monte_carlo () =
  (* Bernoulli-sample both sides, estimate Ĵ = X/(q1 q2); the empirical
     variance over many replicates should match the oracle formula. *)
  let rng_ = rng ~seed:21 () in
  let gen = Workload.Dist.compile (Workload.Dist.Zipf { n_values = 20; skew = 0.8 }) in
  let l = int_relation (List.init 400 (fun _ -> gen rng_)) in
  let r = int_relation (List.init 300 (fun _ -> gen rng_)) in
  let p1 = JV.profile l "a" and p2 = JV.profile r "a" in
  let q = 0.25 in
  let oracle = JV.oracle_variance ~q1:q ~q2:q p1 p2 in
  let samples = ref Stats.Summary.empty in
  for _ = 1 to 3000 do
    let sl = Sampling.Bernoulli.relation rng_ ~p:q l in
    let sr = Sampling.Bernoulli.relation rng_ ~p:q r in
    let sc = Catalog.of_list [ ("l", sl); ("r", sr) ] in
    let x = Eval.count sc (Expr.equijoin [ ("a", "a") ] (Expr.base "l") (Expr.base "r")) in
    samples := Stats.Summary.add !samples (float_of_int x /. (q *. q))
  done;
  let empirical = Stats.Summary.variance !samples in
  check_close ~tol:0.15 "oracle ≈ MC variance" oracle empirical;
  (* And the estimator mean matches the true join size. *)
  check_close ~tol:0.05 "MC mean = J" (JV.join_size p1 p2) (Stats.Summary.mean !samples)

let test_bad_rates () =
  let p = JV.profile left "a" in
  Alcotest.(check bool) "q=0" true
    (try
       ignore (JV.oracle_variance ~q1:0. ~q2:0.5 p p);
       false
     with Invalid_argument _ -> true)

let test_missing_attribute () =
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (JV.profile left "zz"))

let suite =
  [
    Alcotest.test_case "profile counts" `Quick test_profile_counts;
    Alcotest.test_case "join size matches eval" `Quick test_join_size_matches_eval;
    Alcotest.test_case "zero variance at q=1" `Quick test_oracle_variance_zero_at_full_rate;
    Alcotest.test_case "hand-computed variance" `Quick test_oracle_variance_hand_computed;
    Alcotest.test_case "oracle matches Monte-Carlo" `Slow
      test_oracle_variance_matches_monte_carlo;
    Alcotest.test_case "bad rates" `Quick test_bad_rates;
    Alcotest.test_case "missing attribute" `Quick test_missing_attribute;
  ]
