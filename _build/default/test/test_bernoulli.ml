open Helpers
module Bernoulli = Sampling.Bernoulli

let test_extremes () =
  let r = rng () in
  let a = Array.init 100 (fun i -> i) in
  Alcotest.(check int) "p=0 keeps none" 0 (Array.length (Bernoulli.sample r ~p:0. a));
  Alcotest.(check int) "p=1 keeps all" 100 (Array.length (Bernoulli.sample r ~p:1. a))

let test_invalid_p () =
  let r = rng () in
  Alcotest.(check bool) "p>1" true
    (try
       ignore (Bernoulli.sample r ~p:1.5 [| 1 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "p<0" true
    (try
       ignore (Bernoulli.sample r ~p:(-0.1) [| 1 |]);
       false
     with Invalid_argument _ -> true)

let test_preserves_order () =
  let r = rng () in
  let a = Array.init 200 (fun i -> i) in
  let s = Bernoulli.sample r ~p:0.5 a in
  let sorted = Array.copy s in
  Array.sort Int.compare sorted;
  Alcotest.(check bool) "subsequence order" true (s = sorted)

let test_expected_size () =
  check_float "expectation" 25. (Bernoulli.expected_size ~p:0.25 100)

let test_size_distribution () =
  let r = rng () in
  let a = Array.init 500 (fun i -> i) in
  let summary = ref Stats.Summary.empty in
  for _ = 1 to 2_000 do
    summary :=
      Stats.Summary.add !summary (float_of_int (Array.length (Bernoulli.sample r ~p:0.3 a)))
  done;
  check_close ~tol:0.02 "mean size" 150. (Stats.Summary.mean !summary);
  (* Binomial variance n·p·(1−p) = 105. *)
  check_close ~tol:0.15 "size variance" 105. (Stats.Summary.variance !summary)

let test_relation () =
  let r = rng () in
  let relation = int_relation (List.init 100 (fun i -> i)) in
  let s = Bernoulli.relation r ~p:0.5 relation in
  Alcotest.(check bool) "schema" true
    (Schema.equal (Relation.schema relation) (Relation.schema s))

let suite =
  [
    Alcotest.test_case "extremes" `Quick test_extremes;
    Alcotest.test_case "invalid p" `Quick test_invalid_p;
    Alcotest.test_case "preserves order" `Quick test_preserves_order;
    Alcotest.test_case "expected size" `Quick test_expected_size;
    Alcotest.test_case "size distribution" `Quick test_size_distribution;
    Alcotest.test_case "relation" `Quick test_relation;
  ]
