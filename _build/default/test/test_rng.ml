open Helpers
module Rng = Sampling.Rng

let test_deterministic () =
  let r1 = Rng.create ~seed:7 () and r2 = Rng.create ~seed:7 () in
  for i = 1 to 100 do
    Alcotest.(check bool)
      (Printf.sprintf "draw %d equal" i)
      true
      (Rng.bits64 r1 = Rng.bits64 r2)
  done

let test_seed_changes_stream () =
  let r1 = Rng.create ~seed:1 () and r2 = Rng.create ~seed:2 () in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits64 r1 = Rng.bits64 r2 then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_int_bounds () =
  let r = rng () in
  for _ = 1 to 10_000 do
    let x = Rng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of bounds: %d" x
  done;
  Alcotest.(check int) "bound 1 is constant" 0 (Rng.int r 1);
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_int_roughly_uniform () =
  let r = rng () in
  let buckets = Array.make 10 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let b = Rng.int r 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  (* Chi-squared with 9 degrees of freedom: 99.9th percentile ≈ 27.9. *)
  let expected = float_of_int draws /. 10. in
  let chi2 =
    Array.fold_left
      (fun acc observed ->
        let d = float_of_int observed -. expected in
        acc +. (d *. d /. expected))
      0. buckets
  in
  Alcotest.(check bool) (Printf.sprintf "chi2=%.2f < 27.9" chi2) true (chi2 < 27.9)

let test_float_range_and_mean () =
  let r = rng () in
  let summary = ref Stats.Summary.empty in
  for _ = 1 to 50_000 do
    let x = Rng.float r in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %f" x;
    summary := Stats.Summary.add !summary x
  done;
  check_close ~tol:0.01 "mean ≈ 1/2" 0.5 (Stats.Summary.mean !summary);
  (* Var of U(0,1) is 1/12. *)
  check_close ~tol:0.05 "variance ≈ 1/12" (1. /. 12.) (Stats.Summary.variance !summary)

let test_gaussian_moments () =
  let r = rng () in
  let summary = ref Stats.Summary.empty in
  for _ = 1 to 50_000 do
    summary := Stats.Summary.add !summary (Rng.gaussian r)
  done;
  Alcotest.(check bool) "mean near 0" true (Float.abs (Stats.Summary.mean !summary) < 0.02);
  check_close ~tol:0.05 "unit variance" 1.0 (Stats.Summary.variance !summary)

let test_shuffle_is_permutation () =
  let r = rng () in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 100 (fun i -> i))

let test_shuffle_uniform_first_position () =
  (* Over many shuffles of [0;1;2], each value should land in slot 0
     about a third of the time. *)
  let r = rng () in
  let counts = Array.make 3 0 in
  let reps = 30_000 in
  for _ = 1 to reps do
    let a = [| 0; 1; 2 |] in
    Rng.shuffle_in_place r a;
    counts.(a.(0)) <- counts.(a.(0)) + 1
  done;
  Array.iteri
    (fun v c ->
      check_close ~tol:0.05
        (Printf.sprintf "value %d fraction" v)
        (1. /. 3.)
        (float_of_int c /. float_of_int reps))
    counts

let test_split_independence () =
  let parent = Rng.create ~seed:99 () in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits64 child1 = Rng.bits64 child2 then incr same
  done;
  Alcotest.(check int) "children differ" 0 !same

let test_copy_independent () =
  let r = Rng.create ~seed:5 () in
  let c = Rng.copy r in
  let from_r = Rng.bits64 r in
  let from_c = Rng.bits64 c in
  Alcotest.(check bool) "same next draw" true (from_r = from_c);
  ignore (Rng.bits64 r);
  ignore (Rng.bits64 r);
  (* The copy is not advanced by the original's draws. *)
  let r2 = Rng.create ~seed:5 () in
  ignore (Rng.bits64 r2);
  Alcotest.(check bool) "copy keeps own position" true (Rng.bits64 c = Rng.bits64 r2)

let test_positive_float () =
  let r = rng () in
  for _ = 1 to 1_000 do
    if Rng.positive_float r <= 0. then Alcotest.fail "non-positive draw"
  done

let test_choose () =
  let r = rng () in
  let x = Rng.choose r [| 42 |] in
  Alcotest.(check int) "singleton" 42 x;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.choose: empty array") (fun () ->
      ignore (Rng.choose r ([||] : int array)))

let suite =
  [
    Alcotest.test_case "deterministic per seed" `Quick test_deterministic;
    Alcotest.test_case "different seeds differ" `Quick test_seed_changes_stream;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniform (chi2)" `Quick test_int_roughly_uniform;
    Alcotest.test_case "float range and moments" `Quick test_float_range_and_mean;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "shuffle uniform" `Quick test_shuffle_uniform_first_position;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "copy independent" `Quick test_copy_independent;
    Alcotest.test_case "positive_float" `Quick test_positive_float;
    Alcotest.test_case "choose" `Quick test_choose;
  ]
