open Helpers
module Srs = Sampling.Srs

let test_size_of_fraction () =
  Alcotest.(check int) "half" 50 (Srs.size_of_fraction ~fraction:0.5 100);
  Alcotest.(check int) "full" 100 (Srs.size_of_fraction ~fraction:1.0 100);
  Alcotest.(check int) "tiny clamps to 1" 1 (Srs.size_of_fraction ~fraction:0.0001 100);
  Alcotest.(check int) "empty universe" 0 (Srs.size_of_fraction ~fraction:0.5 0);
  Alcotest.(check bool) "bad fraction" true
    (try
       ignore (Srs.size_of_fraction ~fraction:1.5 10);
       false
     with Invalid_argument _ -> true)

let test_wor_properties () =
  let r = rng () in
  for _ = 1 to 50 do
    let idx = Srs.indices_without_replacement r ~n:10 ~universe:30 in
    Alcotest.(check int) "size" 10 (Array.length idx);
    Array.iter (fun i -> if i < 0 || i >= 30 then Alcotest.failf "oob %d" i) idx;
    (* Sorted increasing implies distinct when strict. *)
    for k = 1 to 9 do
      if idx.(k) <= idx.(k - 1) then Alcotest.fail "not strictly increasing"
    done
  done

let test_wor_full_draw () =
  let r = rng () in
  let idx = Srs.indices_without_replacement r ~n:12 ~universe:12 in
  Alcotest.(check (list int)) "whole universe" (List.init 12 (fun i -> i))
    (Array.to_list idx)

let test_wor_inclusion_uniform () =
  (* Every element of a 6-universe must appear in a size-2 sample with
     probability 2/6. *)
  let r = rng () in
  let counts = Array.make 6 0 in
  let reps = 30_000 in
  for _ = 1 to reps do
    let idx = Srs.indices_without_replacement r ~n:2 ~universe:6 in
    Array.iter (fun i -> counts.(i) <- counts.(i) + 1) idx
  done;
  Array.iteri
    (fun i c ->
      check_close ~tol:0.04
        (Printf.sprintf "inclusion of %d" i)
        (2. /. 6.)
        (float_of_int c /. float_of_int reps))
    counts

let test_wor_subset_uniform () =
  (* All C(4,2)=6 subsets of a 4-universe equally likely. *)
  let r = rng () in
  let table = Hashtbl.create 6 in
  let reps = 30_000 in
  for _ = 1 to reps do
    let idx = Srs.indices_without_replacement r ~n:2 ~universe:4 in
    let key = (idx.(0), idx.(1)) in
    Hashtbl.replace table key (1 + Option.value (Hashtbl.find_opt table key) ~default:0)
  done;
  Alcotest.(check int) "all subsets seen" 6 (Hashtbl.length table);
  Hashtbl.iter
    (fun (i, j) c ->
      check_close ~tol:0.06
        (Printf.sprintf "subset (%d,%d)" i j)
        (1. /. 6.)
        (float_of_int c /. float_of_int reps))
    table

let test_wr_size_and_range () =
  let r = rng () in
  let idx = Srs.indices_with_replacement r ~n:1000 ~universe:5 in
  Alcotest.(check int) "size" 1000 (Array.length idx);
  Array.iter (fun i -> if i < 0 || i >= 5 then Alcotest.failf "oob %d" i) idx;
  (* With replacement over 5 values, 1000 draws must repeat. *)
  let distinct = List.sort_uniq Int.compare (Array.to_list idx) in
  Alcotest.(check bool) "repeats happen" true (List.length distinct <= 5)

let test_errors () =
  let r = rng () in
  Alcotest.(check bool) "n too large" true
    (try
       ignore (Srs.indices_without_replacement r ~n:5 ~universe:3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative n" true
    (try
       ignore (Srs.indices_without_replacement r ~n:(-1) ~universe:3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "wr empty universe" true
    (try
       ignore (Srs.indices_with_replacement r ~n:1 ~universe:0);
       false
     with Invalid_argument _ -> true)

let test_relation_sampling () =
  let r = rng () in
  let relation = int_relation (List.init 40 (fun i -> i)) in
  let sample = Srs.relation_without_replacement r ~n:10 relation in
  Alcotest.(check int) "size" 10 (Relation.cardinality sample);
  Alcotest.(check bool) "schema preserved" true
    (Schema.equal (Relation.schema relation) (Relation.schema sample));
  Alcotest.(check bool) "sample is subset (distinct values here)" true
    (Relation.is_set sample);
  let full = Srs.relation_fraction r ~fraction:1.0 relation in
  Alcotest.(check int) "fraction 1 = all" 40 (Relation.cardinality full)

let prop_sample_size =
  qcheck_case "sample has requested size"
    QCheck.(pair (int_range 0 20) (int_range 20 60))
    (fun (n, universe) ->
      let r = rng ~seed:(n + (universe * 1000)) () in
      Array.length (Srs.indices_without_replacement r ~n ~universe) = n)

let suite =
  [
    Alcotest.test_case "size_of_fraction" `Quick test_size_of_fraction;
    Alcotest.test_case "WOR size/range/distinct" `Quick test_wor_properties;
    Alcotest.test_case "WOR full draw" `Quick test_wor_full_draw;
    Alcotest.test_case "WOR inclusion uniform" `Quick test_wor_inclusion_uniform;
    Alcotest.test_case "WOR subsets uniform" `Quick test_wor_subset_uniform;
    Alcotest.test_case "WR size and range" `Quick test_wr_size_and_range;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "relation sampling" `Quick test_relation_sampling;
    prop_sample_size;
  ]
