#!/usr/bin/env bash
# End-to-end CLI test: exercises every raestat subcommand against a
# generated CSV and greps for the expected (seed-fixed) shapes.
set -euo pipefail

cli="$1"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

fail() { echo "CLI TEST FAILED: $1" >&2; exit 1; }

expect() { # expect <description> <pattern> <<< output
  local description="$1" pattern="$2"
  grep -Eq "$pattern" || fail "$description (pattern: $pattern)"
}

# generate --------------------------------------------------------------
"$cli" generate -n 20000 --dist uniform:0:99 -o "$workdir/u.csv" \
  | expect "generate reports" "wrote 20000 tuples"
head -1 "$workdir/u.csv" | expect "csv header" "^a:int$"
[ "$(wc -l < "$workdir/u.csv")" -eq 20001 ] || fail "csv row count"

"$cli" generate -n 5000 -c b --dist zipf:50:1.0 -o "$workdir/z.csv" >/dev/null

# exact -----------------------------------------------------------------
"$cli" exact "$workdir/u.csv" --where "a < 30" | expect "exact count" "exact COUNT: 5[0-9]{3} |exact COUNT: 6[0-9]{3} "

# estimate --------------------------------------------------------------
out="$("$cli" estimate "$workdir/u.csv" --where "a < 30" -f 0.05)"
echo "$out" | expect "estimate line" "estimated COUNT: [0-9]+"
echo "$out" | expect "sample size line" "sampled 1000 of 20000"
echo "$out" | expect "ci line" "95% CI: \[[0-9]+, [0-9]+\]"

# join ------------------------------------------------------------------
out="$("$cli" join "$workdir/u.csv" "$workdir/z.csv" --on a=b -f 0.2 --check)"
echo "$out" | expect "join estimate" "estimated join size: [0-9]+"
echo "$out" | expect "join exact" "exact join size:"

# query (algebra) --------------------------------------------------------
out="$("$cli" query "select[a < 30](r)" --rel "r=$workdir/u.csv" -f 0.05 --check)"
echo "$out" | expect "query algebra echoed" "select\[a < 30\]\(r\)"
echo "$out" | expect "query status" "unbiased"

# sql ---------------------------------------------------------------------
out="$("$cli" sql "SELECT COUNT(*) FROM r WHERE a < 30" --rel "r=$workdir/u.csv" -f 0.05 --check)"
echo "$out" | expect "sql lowers to algebra" "algebra: select"
echo "$out" | expect "sql estimates" "estimated COUNT: [0-9]+"

# distinct ----------------------------------------------------------------
out="$("$cli" distinct "$workdir/u.csv" -c a -f 0.1)"
echo "$out" | expect "distinct exact row" "exact +100"
echo "$out" | expect "distinct methods listed" "chao1"

# quantile ----------------------------------------------------------------
out="$("$cli" quantile "$workdir/u.csv" -c a -t 0.5 -f 0.05)"
echo "$out" | expect "quantile point" "estimated 50%-quantile"
echo "$out" | expect "quantile exact" "exact: [0-9]+"

# plan ----------------------------------------------------------------------
out="$("$cli" plan --rel "x=$workdir/u.csv" --rel "y=$workdir/z.csv" --on a=b -f 0.1)"
echo "$out" | expect "plan order" "chosen order: +x ⋈ y|chosen order: +y ⋈ x"

# sweep ----------------------------------------------------------------------
out="$("$cli" sweep "$workdir/u.csv" --where "a < 30" --reps 5)"
echo "$out" | expect "sweep header" "fraction +mean rel.err"
echo "$out" | expect "sweep rows" "0.200"

# error handling ---------------------------------------------------------
if "$cli" estimate "$workdir/u.csv" --where "nonsense" -f 0.05 2>/dev/null; then
  fail "malformed filter accepted"
fi

echo "CLI TESTS PASSED"
