open Helpers
module Distinct = Raestat.Distinct
module Estimate = Stats.Estimate

let test_fof () =
  let tuples = Array.of_list (List.map (fun v -> Tuple.make [ Value.Int v ]) [ 1; 1; 2; 3; 3; 3 ]) in
  Alcotest.(check (list (pair int int))) "fof" [ (1, 1); (2, 1); (3, 1) ]
    (Distinct.frequency_of_frequencies tuples)

let test_fof_validation () =
  Alcotest.(check bool) "fof/n mismatch" true
    (try
       ignore (Distinct.estimate_from_fof ~method_:Distinct.Chao1 ~big_n:10 ~n:3 [ (1, 2) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad n" true
    (try
       ignore (Distinct.estimate_from_fof ~method_:Distinct.Chao1 ~big_n:2 ~n:5 [ (1, 5) ]);
       false
     with Invalid_argument _ -> true)

(* Exhaustive unbiasedness: enumerate all C(N,n) SRSWOR samples of a
   small population, average Goodman's estimate, compare with the true
   number of distinct values.  Valid when n >= max class size. *)
let exhaustive_goodman_mean population n =
  let big_n = List.length population in
  let values = Array.of_list population in
  let samples = all_samples ~n:big_n ~k:n in
  let total =
    List.fold_left
      (fun acc sample ->
        let tuples =
          Array.of_list (List.map (fun i -> Tuple.make [ Value.Int values.(i) ]) sample)
        in
        let fof = Distinct.frequency_of_frequencies tuples in
        let est = Distinct.estimate_from_fof ~method_:Distinct.Goodman ~big_n ~n fof in
        acc +. est.Estimate.point)
      0. samples
  in
  total /. float_of_int (List.length samples)

let true_distinct population = List.length (List.sort_uniq Int.compare population)

let test_goodman_exhaustively_unbiased () =
  (* Several small populations; n at least the max class size. *)
  let cases =
    [
      ([ 1; 1; 2 ], 2);
      ([ 1; 2; 3; 4 ], 2);
      ([ 1; 1; 2; 2 ], 2);
      ([ 1; 1; 2; 3 ], 2);
      ([ 1; 1; 1; 2; 3 ], 3);
      ([ 5; 5; 6; 6; 7 ], 2);
      ([ 1; 2; 2; 3; 3; 3 ], 3);
    ]
  in
  List.iter
    (fun (population, n) ->
      let expected = float_of_int (true_distinct population) in
      let mean = exhaustive_goodman_mean population n in
      check_float ~eps:1e-6
        (Printf.sprintf "E[goodman] over %d-samples" n)
        expected mean)
    cases

let test_goodman_census_is_exact () =
  let tuples = Array.of_list (List.map (fun v -> Tuple.make [ Value.Int v ]) [ 1; 1; 2 ]) in
  let fof = Distinct.frequency_of_frequencies tuples in
  let est = Distinct.estimate_from_fof ~method_:Distinct.Goodman ~big_n:3 ~n:3 fof in
  check_float "census" 2. est.Estimate.point

let test_chao1 () =
  (* d=3, f1=2, f2=1 ⇒ 3 + 2·1/(2·2) = 3.5. *)
  let fof = [ (1, 2); (2, 1) ] in
  let est = Distinct.estimate_from_fof ~method_:Distinct.Chao1 ~big_n:100 ~n:4 fof in
  check_float "chao1" 3.5 est.Estimate.point;
  (* f2 = 0 stays finite. *)
  let est0 = Distinct.estimate_from_fof ~method_:Distinct.Chao1 ~big_n:100 ~n:2 [ (1, 2) ] in
  check_float "chao1 f2=0" 3. est0.Estimate.point

let test_gee () =
  (* N=100, n=4, f1=2, f2=1 ⇒ √25·2 + 1 = 11. *)
  let est = Distinct.estimate_from_fof ~method_:Distinct.Gee ~big_n:100 ~n:4 [ (1, 2); (2, 1) ] in
  check_float "gee" 11. est.Estimate.point

let test_shlosser () =
  (* Census: D̂ = d. *)
  let tuples = Array.of_list (List.map (fun v -> Tuple.make [ Value.Int v ]) [ 1; 1; 2 ]) in
  let fof = Distinct.frequency_of_frequencies tuples in
  let est = Distinct.estimate_from_fof ~method_:Distinct.Shlosser ~big_n:3 ~n:3 fof in
  check_float "census" 2. est.Estimate.point;
  (* Hand computation: N=100, n=50 (q=1/2), fof = [(1, 4); (2, 3)]:
     numerator = 0.5·4 + 0.25·3 = 2.75
     denominator = 1·0.5·1·4 + 2·0.5·0.5·3 = 3.5
     D̂ = 7 + 4·2.75/3.5 = 10.142857… *)
  let est2 =
    Distinct.estimate_from_fof ~method_:Distinct.Shlosser ~big_n:100 ~n:10
      [ (1, 4); (2, 3) ]
  in
  (* q = 0.1 here: numerator = 0.9·4+0.81·3 = 6.03;
     denominator = 0.1·4 + 2·0.1·0.9·3 = 0.94; D̂ = 7 + 4·6.03/0.94. *)
  check_float ~eps:1e-9 "hand value" (7. +. (4. *. 6.03 /. 0.94)) est2.Estimate.point

let test_shlosser_plausible_on_skew () =
  let rng_ = rng ~seed:14 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:20_000 ~attribute:"a"
      (Workload.Dist.Zipf { n_values = 100; skew = 1.0 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let est =
    Distinct.estimate rng_ c ~method_:Distinct.Shlosser ~relation:"r" ~attributes:[ "a" ]
      ~n:1_000
  in
  Alcotest.(check bool) "plausible" true (Distinct.plausible ~big_n:20_000 est);
  (* Within a factor of a few of the true 100. *)
  Alcotest.(check bool)
    (Printf.sprintf "in range (%.0f)" est.Estimate.point)
    true
    (est.Estimate.point >= 30. && est.Estimate.point <= 300.)

let test_scale_up_and_sample_distinct () =
  let fof = [ (1, 2); (2, 1) ] in
  let scale = Distinct.estimate_from_fof ~method_:Distinct.Scale_up ~big_n:100 ~n:4 fof in
  check_float "scale-up" 75. scale.Estimate.point;
  let plain = Distinct.estimate_from_fof ~method_:Distinct.Sample_distinct ~big_n:100 ~n:4 fof in
  check_float "sample distinct" 3. plain.Estimate.point

let test_statuses () =
  let fof = [ (1, 1) ] in
  let status m = (Distinct.estimate_from_fof ~method_:m ~big_n:10 ~n:1 fof).Estimate.status in
  Alcotest.(check bool) "goodman unbiased" true (status Distinct.Goodman = Estimate.Unbiased);
  Alcotest.(check bool) "scale-up heuristic" true (status Distinct.Scale_up = Estimate.Heuristic);
  Alcotest.(check bool) "chao consistent" true (status Distinct.Chao1 = Estimate.Consistent)

let test_estimate_on_key_column () =
  (* All values distinct: every estimator with scale behaviour should
     be close to N; sample_distinct reports n. *)
  let c = Catalog.of_list [ ("k", int_relation (List.init 500 (fun i -> i))) ] in
  let est m = Distinct.estimate (rng ()) c ~method_:m ~relation:"k" ~attributes:[ "a" ] ~n:50 in
  check_float "scale-up key" 500. (est Distinct.Scale_up).Estimate.point;
  check_float "sample distinct key" 50. (est Distinct.Sample_distinct).Estimate.point;
  (* GEE with all-f1: √(500/50)·50 = 158.1… underestimates a key column
     but stays positive. *)
  Alcotest.(check bool) "gee positive" true ((est Distinct.Gee).Estimate.point > 0.)

let test_exact () =
  let c = Catalog.of_list [ ("t", int_relation [ 1; 1; 2; 5; 5; 5 ]) ] in
  Alcotest.(check int) "exact" 3 (Distinct.exact c ~relation:"t" ~attributes:[ "a" ])

let test_multi_attribute_distinct () =
  let r = two_column_relation [ (1, 1); (1, 1); (1, 2); (2, 1) ] in
  let c = Catalog.of_list [ ("r", r) ] in
  Alcotest.(check int) "pairs" 3 (Distinct.exact c ~relation:"r" ~attributes:[ "a"; "b" ]);
  Alcotest.(check int) "first attr only" 2 (Distinct.exact c ~relation:"r" ~attributes:[ "a" ])

let test_plausible () =
  let ok = Estimate.make ~status:Estimate.Unbiased ~sample_size:1 50. in
  let negative = Estimate.make ~status:Estimate.Unbiased ~sample_size:1 (-3.) in
  let huge = Estimate.make ~status:Estimate.Unbiased ~sample_size:1 1e30 in
  Alcotest.(check bool) "in range" true (Distinct.plausible ~big_n:100 ok);
  Alcotest.(check bool) "negative" false (Distinct.plausible ~big_n:100 negative);
  Alcotest.(check bool) "huge" false (Distinct.plausible ~big_n:100 huge)

let test_goodman_unstable_at_small_fraction_on_skew () =
  (* The documented failure mode: tiny fraction + skew ⇒ implausible
     Goodman value, while Chao1 stays in range. *)
  let rng_ = rng ~seed:13 () in
  let r =
    Workload.Generator.int_relation rng_ ~n:20_000 ~attribute:"a"
      (Workload.Dist.Zipf { n_values = 100; skew = 1.0 })
  in
  let c = Catalog.of_list [ ("r", r) ] in
  let goodman =
    Distinct.estimate rng_ c ~method_:Distinct.Goodman ~relation:"r" ~attributes:[ "a" ]
      ~n:1_000
  in
  let chao =
    Distinct.estimate rng_ c ~method_:Distinct.Chao1 ~relation:"r" ~attributes:[ "a" ]
      ~n:1_000
  in
  Alcotest.(check bool) "goodman blows up" false (Distinct.plausible ~big_n:20_000 goodman);
  Alcotest.(check bool) "chao stays sane" true (Distinct.plausible ~big_n:20_000 chao)

let test_methods_roundtrip_names () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Distinct.method_to_string m)
        true
        (String.length (Distinct.method_to_string m) > 0))
    Distinct.all_methods

let suite =
  [
    Alcotest.test_case "frequency of frequencies" `Quick test_fof;
    Alcotest.test_case "fof validation" `Quick test_fof_validation;
    Alcotest.test_case "Goodman exhaustively unbiased" `Quick
      test_goodman_exhaustively_unbiased;
    Alcotest.test_case "Goodman census exact" `Quick test_goodman_census_is_exact;
    Alcotest.test_case "Chao1" `Quick test_chao1;
    Alcotest.test_case "GEE" `Quick test_gee;
    Alcotest.test_case "Shlosser" `Quick test_shlosser;
    Alcotest.test_case "Shlosser plausible on skew" `Quick test_shlosser_plausible_on_skew;
    Alcotest.test_case "scale-up and sample-distinct" `Quick
      test_scale_up_and_sample_distinct;
    Alcotest.test_case "statuses" `Quick test_statuses;
    Alcotest.test_case "key column behaviour" `Quick test_estimate_on_key_column;
    Alcotest.test_case "exact" `Quick test_exact;
    Alcotest.test_case "multi-attribute distinct" `Quick test_multi_attribute_distinct;
    Alcotest.test_case "plausible" `Quick test_plausible;
    Alcotest.test_case "Goodman unstable at small fraction" `Quick
      test_goodman_unstable_at_small_fraction_on_skew;
    Alcotest.test_case "method names" `Quick test_methods_roundtrip_names;
  ]
