open Helpers

let test_add_find () =
  let c = Catalog.create () in
  Catalog.add c "r" (int_relation [ 1 ]);
  Alcotest.(check int) "found" 1 (Relation.cardinality (Catalog.find c "r"));
  Alcotest.(check bool) "mem" true (Catalog.mem c "r");
  Alcotest.(check bool) "absent" true (Catalog.find_opt c "s" = None)

let test_duplicate_add_rejected () =
  let c = Catalog.create () in
  Catalog.add c "r" (int_relation [ 1 ]);
  Alcotest.check_raises "dup" (Invalid_argument "Catalog.add: \"r\" already bound")
    (fun () -> Catalog.add c "r" (int_relation [ 2 ]))

let test_set_replaces () =
  let c = Catalog.create () in
  Catalog.add c "r" (int_relation [ 1 ]);
  Catalog.set c "r" (int_relation [ 1; 2 ]);
  Alcotest.(check int) "replaced" 2 (Relation.cardinality (Catalog.find c "r"))

let test_find_missing_message () =
  let c = Catalog.create () in
  Alcotest.check_raises "missing" (Failure "Catalog.find: unknown relation \"ghost\"")
    (fun () -> ignore (Catalog.find c "ghost"))

let test_names_sorted () =
  let c = Catalog.of_list [ ("b", int_relation [ 1 ]); ("a", int_relation [ 2 ]) ] in
  Alcotest.(check (list string)) "sorted" [ "a"; "b" ] (Catalog.names c)

let test_copy_isolated () =
  let c = Catalog.of_list [ ("r", int_relation [ 1 ]) ] in
  let c2 = Catalog.copy c in
  Catalog.set c2 "r" (int_relation [ 1; 2; 3 ]);
  Alcotest.(check int) "original untouched" 1 (Relation.cardinality (Catalog.find c "r"));
  Alcotest.(check int) "copy updated" 3 (Relation.cardinality (Catalog.find c2 "r"))

let test_remove () =
  let c = Catalog.of_list [ ("r", int_relation [ 1 ]) ] in
  Catalog.remove c "r";
  Alcotest.(check bool) "gone" false (Catalog.mem c "r")

let suite =
  [
    Alcotest.test_case "add and find" `Quick test_add_find;
    Alcotest.test_case "duplicate add rejected" `Quick test_duplicate_add_rejected;
    Alcotest.test_case "set replaces" `Quick test_set_replaces;
    Alcotest.test_case "find missing message" `Quick test_find_missing_message;
    Alcotest.test_case "names sorted" `Quick test_names_sorted;
    Alcotest.test_case "copy isolated" `Quick test_copy_isolated;
    Alcotest.test_case "remove" `Quick test_remove;
  ]
