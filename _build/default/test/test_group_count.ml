open Helpers
module GC = Raestat.Group_count
module Estimate = Stats.Estimate
module P = Predicate

let catalog () =
  (* 3 groups of deterministic sizes 6000 / 3000 / 1000. *)
  let g = Array.init 10_000 (fun i -> if i < 6_000 then 0 else if i < 9_000 then 1 else 2) in
  let v = Array.init 10_000 (fun i -> i mod 100) in
  Catalog.of_list [ ("r", Workload.Generator.of_columns [ ("g", g); ("v", v) ]) ]

let test_exact () =
  let c = catalog () in
  let exact = GC.exact c ~relation:"r" ~by:[ "g" ] () in
  Alcotest.(check int) "three groups" 3 (List.length exact);
  let counts = List.map snd exact in
  Alcotest.(check (list int)) "counts" [ 6_000; 3_000; 1_000 ] counts

let test_exact_with_filter () =
  let c = catalog () in
  let exact = GC.exact c ~relation:"r" ~by:[ "g" ] ~where:(P.lt (P.attr "v") (P.vint 50)) () in
  Alcotest.(check (list int)) "filtered counts" [ 3_000; 1_500; 500 ] (List.map snd exact)

let test_census_exact () =
  let c = catalog () in
  let result = GC.estimate (rng ()) c ~relation:"r" ~by:[ "g" ] ~n:10_000 () in
  List.iter2
    (fun (key, count) group ->
      Alcotest.(check bool) "same key" true (key = group.GC.key);
      check_float "census count" (float_of_int count) group.GC.estimate.Estimate.point)
    (GC.exact c ~relation:"r" ~by:[ "g" ] ())
    result.GC.groups

let test_unbiased_mc () =
  let c = catalog () in
  let rng_ = rng ~seed:101 () in
  let sums = Hashtbl.create 3 in
  let reps = 300 in
  for _ = 1 to reps do
    let result = GC.estimate rng_ c ~relation:"r" ~by:[ "g" ] ~n:500 () in
    List.iter
      (fun group ->
        let key = group.GC.key in
        let acc = Option.value (Hashtbl.find_opt sums key) ~default:0. in
        Hashtbl.replace sums key (acc +. group.GC.estimate.Estimate.point))
      result.GC.groups
  done;
  (* Every group is large enough to appear in every sample of 500. *)
  List.iter
    (fun (key, truth) ->
      let mean = Hashtbl.find sums key /. float_of_int reps in
      check_close ~tol:0.05 "group mean" (float_of_int truth) mean)
    (GC.exact c ~relation:"r" ~by:[ "g" ] ())

let test_simultaneous_coverage () =
  let c = catalog () in
  let rng_ = rng ~seed:102 () in
  let exact = GC.exact c ~relation:"r" ~by:[ "g" ] () in
  let reps = 200 in
  let all_covered = ref 0 in
  for _ = 1 to reps do
    let result = GC.estimate rng_ c ~relation:"r" ~by:[ "g" ] ~n:1_000 ~level:0.9 () in
    let ok =
      List.for_all
        (fun group ->
          match List.assoc_opt group.GC.key exact with
          | Some truth ->
            Stats.Confidence.contains group.GC.interval (float_of_int truth)
          | None -> false)
        result.GC.groups
    in
    if ok then incr all_covered
  done;
  let joint = float_of_int !all_covered /. float_of_int reps in
  Alcotest.(check bool)
    (Printf.sprintf "joint coverage %.2f >= 0.85" joint)
    true (joint >= 0.85)

let test_bonferroni_level_recorded () =
  let c = catalog () in
  let result = GC.estimate (rng ()) c ~relation:"r" ~by:[ "g" ] ~n:1_000 ~level:0.9 () in
  check_float "joint level" 0.9 result.GC.level;
  List.iter
    (fun group ->
      (* 1 - 0.1/3 per group *)
      check_float ~eps:1e-9 "per-group level" (1. -. (0.1 /. 3.))
        group.GC.interval.Stats.Confidence.level)
    result.GC.groups

let test_multi_attribute_groups () =
  let r = two_column_relation [ (0, 0); (0, 1); (0, 1); (1, 0) ] in
  let c = Catalog.of_list [ ("r", r) ] in
  let exact = GC.exact c ~relation:"r" ~by:[ "a"; "b" ] () in
  Alcotest.(check int) "three pairs" 3 (List.length exact);
  Alcotest.(check (list int)) "pair counts" [ 1; 2; 1 ] (List.map snd exact)

let test_validation () =
  let c = catalog () in
  Alcotest.(check bool) "empty by" true
    (try
       ignore (GC.estimate (rng ()) c ~relation:"r" ~by:[] ~n:10 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad level" true
    (try
       ignore (GC.estimate (rng ()) c ~relation:"r" ~by:[ "g" ] ~n:10 ~level:1.5 ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "exact" `Quick test_exact;
    Alcotest.test_case "exact with filter" `Quick test_exact_with_filter;
    Alcotest.test_case "census exact" `Quick test_census_exact;
    Alcotest.test_case "unbiased per group (MC)" `Slow test_unbiased_mc;
    Alcotest.test_case "simultaneous coverage (MC)" `Slow test_simultaneous_coverage;
    Alcotest.test_case "bonferroni levels" `Quick test_bonferroni_level_recorded;
    Alcotest.test_case "multi-attribute groups" `Quick test_multi_attribute_groups;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
