open Helpers

let r = int_relation [ 1; 2; 2; 3; 3; 3 ]

let test_cardinality () =
  Alcotest.(check int) "card" 6 (Relation.cardinality r);
  Alcotest.(check bool) "nonempty" false (Relation.is_empty r)

let test_make_checks_arity () =
  let schema = Schema.of_list [ ("a", Value.Tint); ("b", Value.Tint) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Relation.make schema [ Tuple.make [ Value.Int 1 ] ]);
       false
     with Invalid_argument _ -> true)

let test_make_checks_types () =
  let schema = Schema.of_list [ ("a", Value.Tint) ] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Relation.make schema [ Tuple.make [ Value.Str "x" ] ]);
       false
     with Invalid_argument _ -> true);
  (* Null is accepted at any type. *)
  ignore (Relation.make schema [ Tuple.make [ Value.Null ] ])

let test_count_filter () =
  let even t = match Tuple.get t 0 with Value.Int i -> i mod 2 = 0 | _ -> false in
  Alcotest.(check int) "count" 2 (Relation.count even r);
  Alcotest.(check int) "filter" 2 (Relation.cardinality (Relation.filter even r))

let test_distinct_is_set () =
  let d = Relation.distinct r in
  Alcotest.(check int) "distinct card" 3 (Relation.cardinality d);
  Alcotest.(check bool) "distinct is set" true (Relation.is_set d);
  Alcotest.(check bool) "original is not" false (Relation.is_set r)

let test_distinct_preserves_first_occurrence_order () =
  let d = Relation.distinct (int_relation [ 5; 1; 5; 2; 1 ]) in
  let rendered = Array.to_list (Array.map Tuple.to_string (Relation.tuples d)) in
  Alcotest.(check (list string)) "order" [ "<5>"; "<1>"; "<2>" ] rendered

let test_column () =
  let col = Relation.column r "a" in
  Alcotest.(check int) "length" 6 (Array.length col);
  Alcotest.check_raises "missing" Not_found (fun () -> ignore (Relation.column r "z"))

let test_append () =
  let r2 = int_relation [ 9 ] in
  Alcotest.(check int) "appended" 7 (Relation.cardinality (Relation.append r r2));
  let other = two_column_relation [ (1, 2) ] in
  Alcotest.(check bool) "schema mismatch" true
    (try
       ignore (Relation.append r other);
       false
     with Invalid_argument _ -> true)

let test_map_fold () =
  let doubled =
    Relation.map (Relation.schema r)
      (fun t ->
        match Tuple.get t 0 with
        | Value.Int i -> Tuple.make [ Value.Int (2 * i) ]
        | _ -> t)
      r
  in
  let total =
    Relation.fold
      (fun acc t -> match Tuple.get t 0 with Value.Int i -> acc + i | _ -> acc)
      0 doubled
  in
  Alcotest.(check int) "sum of doubles" 28 total

let test_empty () =
  let e = Relation.empty (Relation.schema r) in
  Alcotest.(check bool) "empty" true (Relation.is_empty e);
  Alcotest.(check bool) "empty is set" true (Relation.is_set e)

let prop_distinct_idempotent =
  qcheck_case "distinct idempotent"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (QCheck.int_range 0 5))
    (fun values ->
      let r = int_relation values in
      let once = Relation.distinct r in
      let twice = Relation.distinct once in
      Relation.cardinality once = Relation.cardinality twice)

let prop_distinct_bounded =
  qcheck_case "distinct no larger"
    QCheck.(list_of_size (QCheck.Gen.int_range 0 30) (QCheck.int_range 0 5))
    (fun values ->
      let r = int_relation values in
      Relation.cardinality (Relation.distinct r) <= Relation.cardinality r)

let suite =
  [
    Alcotest.test_case "cardinality" `Quick test_cardinality;
    Alcotest.test_case "make checks arity" `Quick test_make_checks_arity;
    Alcotest.test_case "make checks types" `Quick test_make_checks_types;
    Alcotest.test_case "count and filter" `Quick test_count_filter;
    Alcotest.test_case "distinct and is_set" `Quick test_distinct_is_set;
    Alcotest.test_case "distinct keeps first occurrences" `Quick
      test_distinct_preserves_first_occurrence_order;
    Alcotest.test_case "column" `Quick test_column;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "map and fold" `Quick test_map_fold;
    Alcotest.test_case "empty" `Quick test_empty;
    prop_distinct_idempotent;
    prop_distinct_bounded;
  ]
