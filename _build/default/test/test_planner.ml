open Helpers
module Planner = Raestat.Planner
module P = Predicate
module Tpc = Workload.Tpc_mini

let tpc () =
  Tpc.catalog (rng ~seed:151 ())
    ~sizes:{ Tpc.suppliers = 500; parts = 800; orders = 10_000 }
    ()

let inputs ?supplier_filter () =
  [
    { Planner.name = "orders"; filter = None };
    { Planner.name = "suppliers"; filter = supplier_filter };
    { Planner.name = "parts"; filter = None };
  ]

let joins =
  [
    { Planner.left_attr = "o_supplier"; right_attr = "s_key" };
    { Planner.left_attr = "o_part"; right_attr = "p_key" };
  ]

let test_plan_shape () =
  let c = tpc () in
  let plan = Planner.plan (rng ()) c ~fraction:0.2 ~inputs:(inputs ()) ~joins in
  Alcotest.(check int) "order covers all inputs" 3 (List.length plan.Planner.order);
  Alcotest.(check int) "one strict intermediate" 1 (List.length plan.Planner.intermediates);
  Alcotest.(check bool) "cost positive" true (plan.Planner.estimated_cost > 0.);
  Alcotest.(check bool) "estimates recorded" true (List.length plan.Planner.estimates >= 1)

let test_plan_expr_is_equivalent_to_query () =
  let c = tpc () in
  let plan = Planner.plan (rng ()) c ~fraction:0.2 ~inputs:(inputs ()) ~joins in
  (* Any join order yields the same count; compare with the canonical
     chain expression. *)
  let canonical = Eval.count c (Tpc.chain_query ()) in
  Alcotest.(check int) "same result count" canonical (Eval.count c plan.Planner.expr)

let test_planner_prefers_filtered_side_first () =
  (* A highly selective supplier filter makes orders⋈suppliers the
     small intermediate; the planner should join it before parts. *)
  let c = tpc () in
  let supplier_filter = P.eq (P.attr "s_region") (P.vint 0) in
  let plan =
    Planner.plan (rng ()) c ~fraction:0.5
      ~inputs:(inputs ~supplier_filter ())
      ~joins
  in
  (match plan.Planner.order with
  | [ a; b; "parts" ] when (a = "orders" && b = "suppliers") || (a = "suppliers" && b = "orders")
    -> ()
  | order -> Alcotest.failf "unexpected order: %s" (String.concat " -> " order));
  (* And the estimated choice should agree with the exact cost ranking. *)
  let exact = Planner.exact_cost c plan in
  Alcotest.(check bool) "exact cost finite" true (exact >= 0.)

let test_no_cross_products_in_plan () =
  let c = tpc () in
  let plan = Planner.plan (rng ()) c ~fraction:0.2 ~inputs:(inputs ()) ~joins in
  let rec no_products = function
    | Expr.Product _ -> false
    | Expr.Base _ -> true
    | Expr.Select (_, e) | Expr.Project (_, e) | Expr.Distinct e | Expr.Rename (_, e)
    | Expr.Aggregate (_, _, e) ->
      no_products e
    | Expr.Equijoin (_, l, r) | Expr.Theta_join (_, l, r) | Expr.Union (l, r)
    | Expr.Inter (l, r) | Expr.Diff (l, r) ->
      no_products l && no_products r
  in
  Alcotest.(check bool) "join tree only" true (no_products plan.Planner.expr)

let test_validation () =
  let c = tpc () in
  let check_fails name thunk =
    Alcotest.(check bool) name true
      (try
         ignore (thunk ());
         false
       with Invalid_argument _ -> true)
  in
  check_fails "one input" (fun () ->
      Planner.plan (rng ()) c ~fraction:0.2
        ~inputs:[ { Planner.name = "orders"; filter = None } ]
        ~joins:[]);
  check_fails "duplicate names" (fun () ->
      Planner.plan (rng ()) c ~fraction:0.2
        ~inputs:
          [
            { Planner.name = "orders"; filter = None };
            { Planner.name = "orders"; filter = None };
          ]
        ~joins);
  check_fails "unknown attribute" (fun () ->
      Planner.plan (rng ()) c ~fraction:0.2 ~inputs:(inputs ())
        ~joins:[ { Planner.left_attr = "nope"; right_attr = "s_key" } ]);
  check_fails "disconnected graph" (fun () ->
      Planner.plan (rng ()) c ~fraction:0.2 ~inputs:(inputs ())
        ~joins:[ { Planner.left_attr = "o_supplier"; right_attr = "s_key" } ]);
  check_fails "within-input join" (fun () ->
      Planner.plan (rng ()) c ~fraction:0.2 ~inputs:(inputs ())
        ~joins:[ { Planner.left_attr = "o_supplier"; right_attr = "o_part" } ])

let test_memoization_shares_estimates () =
  (* 3 inputs in a chain have 3 singleton sets, 2 joinable pairs and 1
     triple: at most 6 memo entries regardless of orders explored. *)
  let c = tpc () in
  let plan = Planner.plan (rng ()) c ~fraction:0.2 ~inputs:(inputs ()) ~joins in
  Alcotest.(check bool) "few memo entries" true (List.length plan.Planner.estimates <= 6)

let suite =
  [
    Alcotest.test_case "plan shape" `Quick test_plan_shape;
    Alcotest.test_case "plan ≡ canonical query" `Quick test_plan_expr_is_equivalent_to_query;
    Alcotest.test_case "prefers filtered side first" `Quick
      test_planner_prefers_filtered_side_first;
    Alcotest.test_case "no cross products" `Quick test_no_cross_products_in_plan;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "memoization" `Quick test_memoization_shares_estimates;
  ]
