open Helpers

let abc = Schema.of_list [ ("a", Value.Tint); ("b", Value.Tstr); ("c", Value.Tfloat) ]

let test_arity () = Alcotest.(check int) "arity" 3 (Schema.arity abc)

let test_index_of () =
  Alcotest.(check int) "a" 0 (Schema.index_of abc "a");
  Alcotest.(check int) "c" 2 (Schema.index_of abc "c");
  Alcotest.(check bool) "missing" true (Schema.index_of_opt abc "z" = None)

let test_duplicate_rejected () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Schema.make: duplicate attribute \"a\"") (fun () ->
      ignore (Schema.of_list [ ("a", Value.Tint); ("a", Value.Tstr) ]))

let test_project () =
  let p = Schema.project abc [ "c"; "a" ] in
  Alcotest.(check (list string)) "names" [ "c"; "a" ] (Schema.names p);
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Schema.project abc [ "nope" ]))

let test_concat_disjoint () =
  let s1 = Schema.of_list [ ("x", Value.Tint) ] in
  let s2 = Schema.of_list [ ("y", Value.Tint) ] in
  Alcotest.(check (list string)) "names" [ "x"; "y" ] (Schema.names (Schema.concat s1 s2))

let test_concat_clash_qualifies () =
  let s1 = Schema.of_list [ ("k", Value.Tint); ("x", Value.Tint) ] in
  let s2 = Schema.of_list [ ("k", Value.Tint); ("y", Value.Tint) ] in
  let joined = Schema.concat ~left_prefix:"l" ~right_prefix:"r" s1 s2 in
  Alcotest.(check (list string)) "names" [ "l.k"; "x"; "r.k"; "y" ] (Schema.names joined)

let test_rename () =
  let renamed = Schema.rename abc [ ("a", "alpha") ] in
  Alcotest.(check (list string)) "names" [ "alpha"; "b"; "c" ] (Schema.names renamed);
  Alcotest.check_raises "missing old" Not_found (fun () ->
      ignore (Schema.rename abc [ ("zz", "w") ]));
  Alcotest.check_raises "creates dup"
    (Invalid_argument "Schema.make: duplicate attribute \"b\"") (fun () ->
      ignore (Schema.rename abc [ ("a", "b") ]))

let test_equal_compatible () =
  let same = Schema.of_list [ ("a", Value.Tint); ("b", Value.Tstr); ("c", Value.Tfloat) ] in
  let renamed = Schema.of_list [ ("x", Value.Tint); ("y", Value.Tstr); ("z", Value.Tfloat) ] in
  let other = Schema.of_list [ ("a", Value.Tint); ("b", Value.Tint); ("c", Value.Tfloat) ] in
  Alcotest.(check bool) "equal" true (Schema.equal abc same);
  Alcotest.(check bool) "not equal" false (Schema.equal abc renamed);
  Alcotest.(check bool) "compatible" true (Schema.compatible abc renamed);
  Alcotest.(check bool) "incompatible" false (Schema.compatible abc other)

let test_to_string () =
  Alcotest.(check string) "render" "(a:int, b:string, c:float)" (Schema.to_string abc)

let suite =
  [
    Alcotest.test_case "arity" `Quick test_arity;
    Alcotest.test_case "index_of" `Quick test_index_of;
    Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
    Alcotest.test_case "project" `Quick test_project;
    Alcotest.test_case "concat disjoint" `Quick test_concat_disjoint;
    Alcotest.test_case "concat clash qualifies" `Quick test_concat_clash_qualifies;
    Alcotest.test_case "rename" `Quick test_rename;
    Alcotest.test_case "equal vs compatible" `Quick test_equal_compatible;
    Alcotest.test_case "to_string" `Quick test_to_string;
  ]
