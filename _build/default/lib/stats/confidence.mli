(** Confidence intervals for the estimators.

    Three families: large-sample normal intervals (the paper's CLT-based
    intervals), small-sample Student-t intervals for replicate-group
    estimates, and distribution-free Chebyshev intervals. *)

type interval = { lo : float; hi : float; level : float }

val width : interval -> float

val half_width : interval -> float

val contains : interval -> float -> bool

(** [normal ~level ~point ~stderr] — CLT interval
    [point ± z_{(1+level)/2}·stderr].
    @raise Invalid_argument if [level] outside (0, 1) or [stderr < 0]. *)
val normal : level:float -> point:float -> stderr:float -> interval

(** Student-t interval with [df] degrees of freedom. *)
val student_t : level:float -> df:float -> point:float -> stderr:float -> interval

(** Chebyshev: [point ± stderr/√(1−level)].  Valid for any
    distribution with the given standard error. *)
val chebyshev : level:float -> point:float -> stderr:float -> interval

(** Finite population correction factor √((N−n)/(N−1)); multiply a
    with-replacement standard error by this when sampling without
    replacement.  1 when [big_n <= 1]. *)
val fpc : big_n:int -> n:int -> float

(** Two-sided normal critical value z such that
    P(−z ≤ Z ≤ z) = level. *)
val z_value : level:float -> float

(** Intersect with [0, ∞): counts cannot be negative. *)
val clamp_nonnegative : interval -> interval

val pp : Format.formatter -> interval -> unit

val to_string : interval -> string
