type interval = { lo : float; hi : float; level : float }

let width i = i.hi -. i.lo

let half_width i = 0.5 *. width i

let contains i x = i.lo <= x && x <= i.hi

let check_level level =
  if level <= 0. || level >= 1. then
    invalid_arg "Confidence: level must be in (0, 1)"

let check_stderr stderr =
  if stderr < 0. then invalid_arg "Confidence: negative standard error"

let z_value ~level =
  check_level level;
  Distributions.normal_quantile ((1. +. level) /. 2.)

let normal ~level ~point ~stderr =
  check_stderr stderr;
  let z = z_value ~level in
  { lo = point -. (z *. stderr); hi = point +. (z *. stderr); level }

let student_t ~level ~df ~point ~stderr =
  check_level level;
  check_stderr stderr;
  let t = Distributions.student_t_quantile ~df ((1. +. level) /. 2.) in
  { lo = point -. (t *. stderr); hi = point +. (t *. stderr); level }

let chebyshev ~level ~point ~stderr =
  check_level level;
  check_stderr stderr;
  let k = 1. /. Float.sqrt (1. -. level) in
  { lo = point -. (k *. stderr); hi = point +. (k *. stderr); level }

let fpc ~big_n ~n =
  if big_n <= 1 then 1.
  else Float.sqrt (float_of_int (big_n - n) /. float_of_int (big_n - 1))

let clamp_nonnegative i = { i with lo = Float.max 0. i.lo; hi = Float.max 0. i.hi }

let pp ppf i = Format.fprintf ppf "[%g, %g]@%g%%" i.lo i.hi (100. *. i.level)

let to_string i = Format.asprintf "%a" pp i
