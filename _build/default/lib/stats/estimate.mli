(** The result type every estimator in the library returns: a point
    estimate of a COUNT, its estimated variance, and provenance. *)

(** Statistical status of the estimator that produced the value, as
    classified by the PODS'88 analysis. *)
type status =
  | Unbiased      (** E[estimate] equals the true count exactly *)
  | Consistent    (** converges to the truth as sampling fraction → 1 *)
  | Heuristic     (** no guarantee (baselines) *)

type t = {
  point : float;          (** estimated COUNT *)
  variance : float;       (** estimated variance of [point]; [nan] if unavailable *)
  sample_size : int;      (** tuples actually examined *)
  status : status;
  label : string;         (** estimator name, for reports *)
}

val make : ?variance:float -> ?label:string -> status:status -> sample_size:int -> float -> t

val stderr : t -> float

(** Whether a variance estimate is attached. *)
val has_variance : t -> bool

(** Normal-approximation CI; {!Confidence.clamp_nonnegative}d.
    @raise Invalid_argument if no variance is attached. *)
val ci : level:float -> t -> Confidence.interval

(** Chebyshev CI (distribution-free). *)
val ci_chebyshev : level:float -> t -> Confidence.interval

(** |point − truth| / truth; with the convention that a zero truth gives
    0 when the point is also 0 and [infinity] otherwise. *)
val relative_error : truth:float -> t -> float

val absolute_error : truth:float -> t -> float

val status_to_string : status -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string
