lib/stats/estimate.ml: Confidence Float Format Printf
