lib/stats/confidence.mli: Format
