lib/stats/estimate.mli: Confidence Format
