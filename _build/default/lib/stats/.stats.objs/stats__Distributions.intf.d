lib/stats/distributions.mli:
