lib/stats/confidence.ml: Distributions Float Format
