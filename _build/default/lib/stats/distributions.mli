(** Special functions and probability distributions.

    Self-contained numeric kernels: error function, normal CDF and
    quantile, log-gamma, regularized incomplete beta, Student-t CDF and
    quantile, and moments of the sampling distributions the estimators
    rely on (binomial, hypergeometric). *)

(** Error function, max absolute error ≈ 1.5e-7 (Abramowitz & Stegun
    7.1.26 with symmetry). *)
val erf : float -> float

(** Standard normal density. *)
val normal_pdf : float -> float

(** Standard normal CDF. *)
val normal_cdf : float -> float

(** Inverse standard normal CDF (Acklam's algorithm, relative error
    below 1.15e-9, refined by one Halley step).
    @raise Invalid_argument if [p] is outside (0, 1). *)
val normal_quantile : float -> float

(** [ln Γ(x)] for [x > 0] (Lanczos approximation, ~15 significant
    digits). *)
val log_gamma : float -> float

(** [log_choose n k] = ln (n choose k).
    @raise Invalid_argument unless [0 <= k <= n]. *)
val log_choose : int -> int -> float

(** Regularized incomplete beta function I_x(a, b), continued fraction
    (Lentz), for [a, b > 0] and [x] in [0, 1]. *)
val incomplete_beta : a:float -> b:float -> float -> float

(** Student-t CDF with [df] degrees of freedom.
    @raise Invalid_argument if [df <= 0]. *)
val student_t_cdf : df:float -> float -> float

(** Student-t quantile (inverse CDF) by bisection on {!student_t_cdf}.
    @raise Invalid_argument if [p] outside (0, 1) or [df <= 0]. *)
val student_t_quantile : df:float -> float -> float

(** Mean and variance of Binomial(n, p). *)
val binomial_mean_var : n:int -> p:float -> float * float

(** Mean and variance of Hypergeometric(population [big_n], successes
    [k], draws [n]): the distribution of the number of hits in an
    SRSWOR sample. *)
val hypergeometric_mean_var : big_n:int -> k:int -> n:int -> float * float
