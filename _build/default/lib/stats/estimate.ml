type status = Unbiased | Consistent | Heuristic

type t = {
  point : float;
  variance : float;
  sample_size : int;
  status : status;
  label : string;
}

let make ?(variance = Float.nan) ?(label = "estimate") ~status ~sample_size point =
  if Float.is_finite variance && variance < 0. then
    invalid_arg "Estimate.make: negative variance";
  { point; variance; sample_size; status; label }

let has_variance t = Float.is_finite t.variance

let stderr t = Float.sqrt t.variance

let ci ~level t =
  if not (has_variance t) then
    invalid_arg (Printf.sprintf "Estimate.ci: %s carries no variance estimate" t.label);
  Confidence.clamp_nonnegative (Confidence.normal ~level ~point:t.point ~stderr:(stderr t))

let ci_chebyshev ~level t =
  if not (has_variance t) then
    invalid_arg (Printf.sprintf "Estimate.ci_chebyshev: %s carries no variance estimate" t.label);
  Confidence.clamp_nonnegative (Confidence.chebyshev ~level ~point:t.point ~stderr:(stderr t))

let relative_error ~truth t =
  if truth = 0. then if t.point = 0. then 0. else Float.infinity
  else Float.abs (t.point -. truth) /. Float.abs truth

let absolute_error ~truth t = Float.abs (t.point -. truth)

let status_to_string = function
  | Unbiased -> "unbiased"
  | Consistent -> "consistent"
  | Heuristic -> "heuristic"

let pp ppf t =
  Format.fprintf ppf "%s: %.2f (sd %.2f, n=%d, %s)" t.label t.point
    (if has_variance t then stderr t else Float.nan)
    t.sample_size (status_to_string t.status)

let to_string t = Format.asprintf "%a" pp t
