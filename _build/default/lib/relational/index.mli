(** Hash index over one or more attributes of a relation.

    Supports point lookups and index-assisted equi-joins — the access
    path a real system would use instead of scans once the optimizer
    has (sampled) evidence that few tuples qualify. *)

type t

(** [build relation ~attributes]
    @raise Not_found if an attribute is absent.
    @raise Invalid_argument on an empty attribute list. *)
val build : Relation.t -> attributes:string list -> t

(** The indexed relation. *)
val relation : t -> Relation.t

(** Indexed attribute names, in index order. *)
val attributes : t -> string list

(** Tuples whose key equals the given values, in base-relation order.
    @raise Invalid_argument on a key arity mismatch. *)
val lookup : t -> Value.t list -> Tuple.t list

(** Number of tuples under the key ([lookup] without materializing). *)
val count : t -> Value.t list -> int

(** Number of distinct keys. *)
val distinct_keys : t -> int

(** [probe_join index probe ~key] — equi-join [probe ⋈ indexed] where
    [key] names the probe-side attributes (positionally matching the
    index attributes).  Result schema is
    [Schema.concat probe indexed]; probe-major order.
    @raise Invalid_argument on arity mismatch.
    @raise Not_found if a probe attribute is absent. *)
val probe_join : t -> Relation.t -> key:string list -> Relation.t
