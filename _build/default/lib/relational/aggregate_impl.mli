(** Shared hash-aggregation kernel used by both evaluation engines
    ({!Eval} materializing, {!Physical} streaming). *)

(** [run ~input_schema ~by ~specs tuples] groups the tuple sequence and
    returns one output tuple per group (group-by values first, then the
    aggregate outputs, as in {!Expr.Aggregate}), in first-appearance
    order of the groups.  Null handling follows {!Expr.agg}.
    @raise Not_found if an attribute is missing (callers validate via
    {!Expr.schema_of} first). *)
val run :
  input_schema:Schema.t ->
  by:string list ->
  specs:(Expr.agg * string) list ->
  Tuple.t Seq.t ->
  Tuple.t list
