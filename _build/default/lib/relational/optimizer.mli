(** Logical rewriting of relational algebra expressions.

    Classical equivalence-preserving rules, applied bottom-up to a
    fixpoint:

    - conjunction splitting: [σ_{p∧q}(e) → σ_p(σ_q(e))]
    - selection pushdown through product/join sides, union,
      intersection and difference (left side);
    - join recognition: [σ_{a=b}(l × r)] with [a] from [l] and [b]
      from [r] becomes [l ⋈_{a=b} r]; further equality conjuncts merge
      into an existing equi-join; θ-joins whose predicate is an
      attribute equality (or a conjunction containing one) are lowered
      to selections over products so the same recognition applies;
    - trivial-selection elimination ([σ_true], [σ_false] over anything
      becomes an empty-producing selection kept as-is),
      double-[Distinct] collapse, and dedup of idempotent [Distinct]
      over set operators.

    The result always evaluates to the same relation (up to tuple
    order) — property-checked in the test suite — and is usually much
    cheaper for {!Eval}/{!Physical} because products shrink before they
    multiply. *)

(** [optimize catalog e] rewrites [e] using schema information from
    [catalog] (needed to route predicates to sides).
    @raise Failure on ill-formed expressions (same as
    {!Expr.schema_of}). *)
val optimize : Catalog.t -> Expr.t -> Expr.t

(** Number of rewrite steps applied (0 means [e] was already normal). *)
val optimize_with_stats : Catalog.t -> Expr.t -> Expr.t * int
