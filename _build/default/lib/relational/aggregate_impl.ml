module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type accumulator = {
  mutable tuples : int;       (* all tuples of the group, for Count *)
  mutable non_null : int;     (* non-null source values seen *)
  mutable total : float;
  mutable minimum : Value.t;  (* Null until a value arrives *)
  mutable maximum : Value.t;
}

let fresh_accumulator () =
  { tuples = 0; non_null = 0; total = 0.; minimum = Value.Null; maximum = Value.Null }

let source_index schema = function
  | Expr.Count -> -1
  | Expr.Sum name | Expr.Avg name | Expr.Min name | Expr.Max name ->
    Schema.index_of schema name

let accumulate acc index tuple =
  acc.tuples <- acc.tuples + 1;
  if index >= 0 then
    match Tuple.get tuple index with
    | Value.Null -> ()
    | v ->
      acc.non_null <- acc.non_null + 1;
      (match v with
      | Value.Int _ | Value.Float _ | Value.Bool _ -> acc.total <- acc.total +. Value.to_float v
      | Value.Str _ | Value.Null -> ());
      if acc.minimum = Value.Null || Value.compare v acc.minimum < 0 then acc.minimum <- v;
      if acc.maximum = Value.Null || Value.compare v acc.maximum > 0 then acc.maximum <- v

let finish input_schema (f, _) acc =
  match f with
  | Expr.Count -> Value.Int acc.tuples
  | Expr.Sum name ->
    let i = Schema.index_of input_schema name in
    (match (Schema.attribute input_schema i).Schema.ty with
    | Value.Tint -> Value.Int (int_of_float acc.total)
    | Value.Tfloat | Value.Tnull | Value.Tbool | Value.Tstr -> Value.Float acc.total)
  | Expr.Avg _ ->
    if acc.non_null = 0 then Value.Null
    else Value.Float (acc.total /. float_of_int acc.non_null)
  | Expr.Min _ -> acc.minimum
  | Expr.Max _ -> acc.maximum

let run ~input_schema ~by ~specs tuples =
  let group_indices = Array.of_list (List.map (Schema.index_of input_schema) by) in
  let spec_indices =
    Array.of_list (List.map (fun (f, _) -> source_index input_schema f) specs)
  in
  let spec_count = Array.length spec_indices in
  let groups = Tuple_hash.create 64 in
  let order = ref [] in
  Seq.iter
    (fun tuple ->
      let key = Tuple.project tuple group_indices in
      let accs =
        match Tuple_hash.find_opt groups key with
        | Some accs -> accs
        | None ->
          let accs = Array.init spec_count (fun _ -> fresh_accumulator ()) in
          Tuple_hash.add groups key accs;
          order := key :: !order;
          accs
      in
      Array.iteri (fun k index -> accumulate accs.(k) index tuple) spec_indices)
    tuples;
  List.rev_map
    (fun key ->
      let accs = Tuple_hash.find groups key in
      let outputs = List.mapi (fun k spec -> finish input_schema spec accs.(k)) specs in
      Tuple.concat key (Tuple.make outputs))
    !order
