type agg =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type t =
  | Base of string
  | Select of Predicate.t * t
  | Project of string list * t
  | Distinct of t
  | Product of t * t
  | Equijoin of (string * string) list * t * t
  | Theta_join of Predicate.t * t * t
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Rename of (string * string) list * t
  | Aggregate of string list * (agg * string) list * t

let base name = Base name
let select p e = Select (p, e)
let project names e = Project (names, e)
let project_distinct names e = Distinct (Project (names, e))
let distinct e = Distinct e
let product l r = Product (l, r)
let equijoin pairs l r = Equijoin (pairs, l, r)
let natural_join_on name l r = Equijoin ([ (name, name) ], l, r)
let theta_join p l r = Theta_join (p, l, r)
let union l r = Union (l, r)
let inter l r = Inter (l, r)
let diff l r = Diff (l, r)
let rename pairs e = Rename (pairs, e)
let aggregate ~by specs e = Aggregate (by, specs, e)
let group_count ~by e = Aggregate (by, [ (Count, "count") ], e)

let rec schema_of catalog = function
  | Base name -> Relation.schema (Catalog.find catalog name)
  | Select (p, e) ->
    let schema = schema_of catalog e in
    List.iter
      (fun a ->
        if not (Schema.mem schema a) then
          failwith (Printf.sprintf "Expr.schema_of: unknown attribute %S in selection" a))
      (Predicate.attributes p);
    schema
  | Project (names, e) | Distinct (Project (names, e)) ->
    let schema = schema_of catalog e in
    (try Schema.project schema names
     with Not_found ->
       failwith
         (Printf.sprintf "Expr.schema_of: projection attribute missing from %s"
            (Schema.to_string schema)))
  | Distinct e -> schema_of catalog e
  | Product (l, r) -> Schema.concat (schema_of catalog l) (schema_of catalog r)
  | Equijoin (pairs, l, r) ->
    let sl = schema_of catalog l and sr = schema_of catalog r in
    List.iter
      (fun (a, b) ->
        if not (Schema.mem sl a) then
          failwith (Printf.sprintf "Expr.schema_of: join attribute %S missing on the left" a);
        if not (Schema.mem sr b) then
          failwith (Printf.sprintf "Expr.schema_of: join attribute %S missing on the right" b))
      pairs;
    Schema.concat sl sr
  | Theta_join (p, l, r) ->
    let schema = Schema.concat (schema_of catalog l) (schema_of catalog r) in
    List.iter
      (fun a ->
        if not (Schema.mem schema a) then
          failwith (Printf.sprintf "Expr.schema_of: unknown attribute %S in θ-join" a))
      (Predicate.attributes p);
    schema
  | Union (l, r) | Inter (l, r) | Diff (l, r) ->
    let sl = schema_of catalog l and sr = schema_of catalog r in
    if not (Schema.compatible sl sr) then
      failwith
        (Printf.sprintf "Expr.schema_of: incompatible operands %s vs %s"
           (Schema.to_string sl) (Schema.to_string sr));
    sl
  | Rename (pairs, e) ->
    (try Schema.rename (schema_of catalog e) pairs
     with Not_found -> failwith "Expr.schema_of: rename of a missing attribute")
  | Aggregate (by, specs, e) ->
    let input = schema_of catalog e in
    if specs = [] then failwith "Expr.schema_of: aggregate without aggregate functions";
    let source_ty name =
      match Schema.index_of_opt input name with
      | Some i -> (Schema.attribute input i).Schema.ty
      | None ->
        failwith (Printf.sprintf "Expr.schema_of: unknown aggregate attribute %S" name)
    in
    let numeric name =
      match source_ty name with
      | Value.Tint | Value.Tfloat -> ()
      | Value.Tnull | Value.Tbool | Value.Tstr ->
        failwith (Printf.sprintf "Expr.schema_of: attribute %S is not numeric" name)
    in
    let group_attrs =
      try Schema.attributes (Schema.project input by)
      with Not_found -> failwith "Expr.schema_of: unknown group-by attribute"
    in
    let agg_attr (f, output) =
      let ty =
        match f with
        | Count -> Value.Tint
        | Sum name ->
          numeric name;
          source_ty name
        | Avg name ->
          numeric name;
          Value.Tfloat
        | Min name | Max name -> source_ty name
      in
      { Schema.name = output; ty }
    in
    (try Schema.make (group_attrs @ List.map agg_attr specs)
     with Invalid_argument message -> failwith ("Expr.schema_of: " ^ message))

let rec leaves = function
  | Base name -> [ name ]
  | Select (_, e) | Project (_, e) | Distinct e | Rename (_, e) | Aggregate (_, _, e) ->
    leaves e
  | Product (l, r)
  | Equijoin (_, l, r)
  | Theta_join (_, l, r)
  | Union (l, r)
  | Inter (l, r)
  | Diff (l, r) ->
    leaves l @ leaves r

let map_bases f e =
  let counter = ref 0 in
  let rec loop = function
    | Base name ->
      let i = !counter in
      incr counter;
      f i name
    | Select (p, e) -> Select (p, loop e)
    | Project (names, e) -> Project (names, loop e)
    | Distinct e -> Distinct (loop e)
    | Rename (pairs, e) -> Rename (pairs, loop e)
    | Aggregate (by, specs, e) -> Aggregate (by, specs, loop e)
    | Product (l, r) ->
      let l = loop l in
      Product (l, loop r)
    | Equijoin (pairs, l, r) ->
      let l = loop l in
      Equijoin (pairs, l, loop r)
    | Theta_join (p, l, r) ->
      let l = loop l in
      Theta_join (p, l, loop r)
    | Union (l, r) ->
      let l = loop l in
      Union (l, loop r)
    | Inter (l, r) ->
      let l = loop l in
      Inter (l, loop r)
    | Diff (l, r) ->
      let l = loop l in
      Diff (l, loop r)
  in
  loop e

let rec has_dedup = function
  | Base _ -> false
  | Distinct _ | Union _ | Inter _ | Diff _ | Aggregate _ -> true
  | Select (_, e) | Project (_, e) | Rename (_, e) -> has_dedup e
  | Product (l, r) | Equijoin (_, l, r) | Theta_join (_, l, r) ->
    has_dedup l || has_dedup r

let has_repeated_leaf e =
  let sorted = List.sort String.compare (leaves e) in
  let rec adjacent_dup = function
    | a :: (b :: _ as rest) -> a = b || adjacent_dup rest
    | [ _ ] | [] -> false
  in
  adjacent_dup sorted

let rec size = function
  | Base _ -> 1
  | Select (_, e) | Project (_, e) | Distinct e | Rename (_, e) | Aggregate (_, _, e) ->
    1 + size e
  | Product (l, r)
  | Equijoin (_, l, r)
  | Theta_join (_, l, r)
  | Union (l, r)
  | Inter (l, r)
  | Diff (l, r) ->
    1 + size l + size r

let rec pp ppf = function
  | Base name -> Format.pp_print_string ppf name
  | Select (p, e) -> Format.fprintf ppf "σ[%a](%a)" Predicate.pp p pp e
  | Project (names, e) ->
    Format.fprintf ppf "π[%s](%a)" (String.concat "," names) pp e
  | Distinct e -> Format.fprintf ppf "δ(%a)" pp e
  | Product (l, r) -> Format.fprintf ppf "(%a × %a)" pp l pp r
  | Equijoin (pairs, l, r) ->
    let pairs = List.map (fun (a, b) -> a ^ "=" ^ b) pairs in
    Format.fprintf ppf "(%a ⋈[%s] %a)" pp l (String.concat "," pairs) pp r
  | Theta_join (p, l, r) -> Format.fprintf ppf "(%a ⋈θ[%a] %a)" pp l Predicate.pp p pp r
  | Union (l, r) -> Format.fprintf ppf "(%a ∪ %a)" pp l pp r
  | Inter (l, r) -> Format.fprintf ppf "(%a ∩ %a)" pp l pp r
  | Diff (l, r) -> Format.fprintf ppf "(%a − %a)" pp l pp r
  | Rename (pairs, e) ->
    let pairs = List.map (fun (a, b) -> a ^ "→" ^ b) pairs in
    Format.fprintf ppf "ρ[%s](%a)" (String.concat "," pairs) pp e
  | Aggregate (by, specs, e) ->
    let spec_to_string (f, output) =
      let f_text =
        match f with
        | Count -> "count"
        | Sum a -> "sum(" ^ a ^ ")"
        | Avg a -> "avg(" ^ a ^ ")"
        | Min a -> "min(" ^ a ^ ")"
        | Max a -> "max(" ^ a ^ ")"
      in
      f_text ^ " as " ^ output
    in
    Format.fprintf ppf "γ[%s; %s](%a)" (String.concat "," by)
      (String.concat ", " (List.map spec_to_string specs))
      pp e

let to_string e = Format.asprintf "%a" pp e
