module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

type t = {
  relation : Relation.t;
  attributes : string list;
  key_positions : int array;
  buckets : Tuple.t list Tuple_hash.t;  (* key → tuples in base order *)
}

let build relation ~attributes =
  if attributes = [] then invalid_arg "Index.build: empty attribute list";
  let schema = Relation.schema relation in
  let key_positions =
    Array.of_list (List.map (fun a -> Schema.index_of schema a) attributes)
  in
  let buckets = Tuple_hash.create (max 16 (Relation.cardinality relation)) in
  Relation.iter
    (fun tuple ->
      let key = Tuple.project tuple key_positions in
      let bucket = try Tuple_hash.find buckets key with Not_found -> [] in
      Tuple_hash.replace buckets key (tuple :: bucket))
    relation;
  Tuple_hash.filter_map_inplace (fun _ bucket -> Some (List.rev bucket)) buckets;
  { relation; attributes; key_positions; buckets }

let relation t = t.relation

let attributes t = t.attributes

let check_key t values =
  if List.length values <> Array.length t.key_positions then
    invalid_arg "Index: key arity mismatch"

let lookup t values =
  check_key t values;
  let key = Tuple.make values in
  try Tuple_hash.find t.buckets key with Not_found -> []

let count t values = List.length (lookup t values)

let distinct_keys t = Tuple_hash.length t.buckets

let probe_join t probe ~key =
  if List.length key <> Array.length t.key_positions then
    invalid_arg "Index.probe_join: key arity mismatch";
  let probe_schema = Relation.schema probe in
  let probe_positions =
    Array.of_list (List.map (fun a -> Schema.index_of probe_schema a) key)
  in
  let out_schema = Schema.concat probe_schema (Relation.schema t.relation) in
  let out = ref [] in
  Relation.iter
    (fun probe_tuple ->
      let key = Tuple.project probe_tuple probe_positions in
      match Tuple_hash.find_opt t.buckets key with
      | Some bucket ->
        List.iter (fun indexed -> out := Tuple.concat probe_tuple indexed :: !out) bucket
      | None -> ())
    probe;
  Relation.of_array out_schema (Array.of_list (List.rev !out))
