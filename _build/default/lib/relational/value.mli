(** Typed attribute values.

    A value is one of the four base SQL-ish types used throughout the
    library, plus [Null].  All operations are total; comparison defines a
    deterministic order across types so relations can always be sorted and
    deduplicated. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

(** Value types, used by schemas for checking. *)
type ty = Tnull | Tbool | Tint | Tfloat | Tstr

val type_of : t -> ty

val ty_to_string : ty -> string

(** Total order: [Null < Bool < Int/Float < Str]; [Int] and [Float]
    compare numerically against each other. *)
val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** [of_string ty s] parses [s] at type [ty].
    @raise Failure on malformed input. *)
val of_string : ty -> string -> t

(** Numeric view of a value: [Int] and [Float] map to their magnitude,
    [Bool] to 0/1.
    @raise Invalid_argument on [Str] and [Null]. *)
val to_float : t -> float

(** Smart constructors. *)

val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
