(** Relational algebra expressions.

    Bag semantics for [Select], [Project], [Product] and the joins (the
    operators the PODS'88 unbiased estimators cover); set semantics for
    [Distinct], [Union], [Inter] and [Diff] (their operands are
    deduplicated before the operation, as in classical relational
    algebra). *)

(** Aggregate functions for {!Aggregate}.  [Count] counts tuples;
    the attribute-based aggregates skip [Null]s ([Sum] of no non-null
    values is 0, [Avg]/[Min]/[Max] of none is [Null]). *)
type agg =
  | Count
  | Sum of string
  | Avg of string
  | Min of string
  | Max of string

type t =
  | Base of string
      (** A named relation resolved through a {!Catalog.t}. *)
  | Select of Predicate.t * t
  | Project of string list * t
      (** Projection {e without} duplicate elimination (bag). *)
  | Distinct of t
      (** Duplicate elimination; [Distinct (Project ...)] is classical
          relational projection. *)
  | Product of t * t
  | Equijoin of (string * string) list * t * t
      (** [Equijoin [(a1, b1); ...] l r] joins on [l.a1 = r.b1 and ...].
          The result schema is the concatenation of both sides. *)
  | Theta_join of Predicate.t * t * t
      (** General θ-join; the predicate is compiled against the
          concatenated schema. *)
  | Union of t * t
  | Inter of t * t
  | Diff of t * t
  | Rename of (string * string) list * t
  | Aggregate of string list * (agg * string) list * t
      (** [Aggregate (group_by, [(f, output_name); ...], e)] — γ: one
          result tuple per distinct combination of the [group_by]
          attributes, carrying those attributes followed by the named
          aggregate outputs.  With an empty [group_by], one tuple for a
          non-empty input and zero tuples for an empty one. *)

(** Convenience constructors mirroring the variants. *)

val base : string -> t
val select : Predicate.t -> t -> t
val project : string list -> t -> t
val project_distinct : string list -> t -> t
val distinct : t -> t
val product : t -> t -> t
val equijoin : (string * string) list -> t -> t -> t
val natural_join_on : string -> t -> t -> t
val theta_join : Predicate.t -> t -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val rename : (string * string) list -> t -> t

val aggregate : by:string list -> (agg * string) list -> t -> t

(** [group_count ~by e] — the common γ_count: per-group tuple counts in
    an output attribute ["count"]. *)
val group_count : by:string list -> t -> t

(** [schema_of catalog e] infers the result schema.
    @raise Failure on unbound base relations, unknown attributes, or
    union-incompatible operands. *)
val schema_of : Catalog.t -> t -> Schema.t

(** Base-relation names in left-to-right leaf order, {e with}
    multiplicity (a relation joined with itself appears twice). *)
val leaves : t -> string list

(** [map_bases f e] rewrites every [Base name] leaf to [f i name] where
    [i] is the 0-based left-to-right occurrence index. *)
val map_bases : (int -> string -> t) -> t -> t

(** Whether the expression contains any duplicate-eliminating operator
    ([Distinct], [Union], [Inter], [Diff]). *)
val has_dedup : t -> bool

(** Whether some base relation occurs more than once. *)
val has_repeated_leaf : t -> bool

(** Number of operator nodes (size of the AST). *)
val size : t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
