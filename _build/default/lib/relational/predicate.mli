(** Predicate language for selections and θ-joins.

    Predicates are built unresolved (referring to attributes by name) and
    compiled against a schema into a closure.  Arithmetic is evaluated in
    floating point; comparisons on strings are lexicographic.  Any
    comparison or arithmetic involving [Null] is false / propagates
    [Null] (SQL-like three-valued logic collapsed to false at the
    predicate level). *)

type term =
  | Attr of string           (** attribute by name *)
  | Const of Value.t
  | Add of term * term
  | Sub of term * term
  | Mul of term * term
  | Div of term * term

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * term * term
  | Between of term * Value.t * Value.t  (** inclusive on both ends *)
  | In of term * Value.t list
  | And of t * t
  | Or of t * t
  | Not of t

(** Convenience constructors. *)

val attr : string -> term
val const : Value.t -> term
val vint : int -> term
val vfloat : float -> term
val vstr : string -> term

val eq : term -> term -> t
val neq : term -> term -> t
val lt : term -> term -> t
val le : term -> term -> t
val gt : term -> term -> t
val ge : term -> term -> t
val between : term -> Value.t -> Value.t -> t
val in_ : term -> Value.t list -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t

(** Attribute names mentioned by the predicate, without duplicates. *)
val attributes : t -> string list

(** [compile schema p] resolves attribute names to positions and returns
    an evaluator.
    @raise Not_found if the predicate mentions an unknown attribute. *)
val compile : Schema.t -> t -> Tuple.t -> bool

(** Evaluate directly (compiling on the fly); convenient in tests. *)
val eval : Schema.t -> t -> Tuple.t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
