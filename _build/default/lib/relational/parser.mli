(** Textual syntax for relational algebra expressions and predicates.

    Expression grammar (keywords case-insensitive; [..] mark operator
    arguments):

    {v
    e ::= name                         base relation
        | select[p](e)                 σ
        | pi[a, b](e)                  bag projection
        | pidist[a, b](e)              projection with dedup
        | distinct(e)                  δ
        | rho[a -> b, ...](e)          rename
        | e cross e                    ×
        | e join[a = b, ...] e         equi-join
        | e theta[p] e                 θ-join
        | e union e | e inter e | e minus e
        | (e)
    v}

    [cross]/[join]/[theta] bind tighter than [union]/[inter]/[minus];
    all binary operators are left-associative.

    Predicate grammar:

    {v
    p ::= t cmp t | t between v and v | t in (v, v, ...)
        | p and p | p or p | not p | true | false | (p)
    t ::= attr | v | t + t | t - t | t * t | t / t
    v ::= 123 | 1.5 | 'text' | true | false | null
    cmp ::= = | != | <> | < | <= | > | >=
    v}

    [and] binds tighter than [or]; arithmetic has the usual precedence.
    Attribute names may contain letters, digits, [_], [.] and [#]. *)

(** @raise Failure with a position-annotated message on syntax errors. *)
val parse_expr : string -> Expr.t

(** @raise Failure on syntax errors. *)
val parse_predicate : string -> Predicate.t

(** Canonical, re-parseable rendering (inverse of {!parse_expr} up to
    whitespace): [parse_expr (print_expr e)] is structurally equal to
    [e]. *)
val print_expr : Expr.t -> string

val print_predicate : Predicate.t -> string
