type t = Value.t array

let make = Array.of_list

let arity = Array.length

let get tuple i = tuple.(i)

let project tuple indices = Array.map (fun i -> tuple.(i)) indices

let concat = Array.append

let compare t1 t2 =
  let len1 = Array.length t1 and len2 = Array.length t2 in
  let rec loop i =
    if i >= len1 || i >= len2 then Int.compare len1 len2
    else
      match Value.compare t1.(i) t2.(i) with
      | 0 -> loop (i + 1)
      | c -> c
  in
  loop 0

let equal t1 t2 = compare t1 t2 = 0

let hash tuple =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 tuple

let to_string tuple =
  "<" ^ String.concat ", " (List.map Value.to_string (Array.to_list tuple)) ^ ">"

let pp ppf tuple = Format.pp_print_string ppf (to_string tuple)
