type attribute = { name : string; ty : Value.ty }

type t = attribute array

let check_no_duplicates attrs =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun { name; _ } ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate attribute %S" name);
      Hashtbl.add seen name ())
    attrs

let make attrs =
  let schema = Array.of_list attrs in
  check_no_duplicates schema;
  schema

let of_list l = make (List.map (fun (name, ty) -> { name; ty }) l)

let attributes schema = Array.to_list schema

let arity = Array.length

let attribute schema i = schema.(i)

let index_of_opt schema name =
  let rec loop i =
    if i >= Array.length schema then None
    else if schema.(i).name = name then Some i
    else loop (i + 1)
  in
  loop 0

let index_of schema name =
  match index_of_opt schema name with
  | Some i -> i
  | None -> raise Not_found

let mem schema name = index_of_opt schema name <> None

let names schema = List.map (fun a -> a.name) (attributes schema)

let project schema selected =
  make (List.map (fun name -> schema.(index_of schema name)) selected)

let concat ?(left_prefix = "l") ?(right_prefix = "r") s1 s2 =
  let qualify prefix name = prefix ^ "." ^ name in
  let clash name = mem s1 name && mem s2 name in
  let left =
    Array.map
      (fun a -> if clash a.name then { a with name = qualify left_prefix a.name } else a)
      s1
  in
  let right =
    Array.map
      (fun a -> if clash a.name then { a with name = qualify right_prefix a.name } else a)
      s2
  in
  let schema = Array.append left right in
  check_no_duplicates schema;
  schema

let rename schema pairs =
  let renamed =
    Array.map
      (fun a ->
        match List.assoc_opt a.name pairs with
        | Some name -> { a with name }
        | None -> a)
      schema
  in
  List.iter
    (fun (old_name, _) ->
      if not (mem schema old_name) then raise Not_found)
    pairs;
  check_no_duplicates renamed;
  renamed

let equal s1 s2 =
  arity s1 = arity s2
  && Array.for_all2 (fun a b -> a.name = b.name && a.ty = b.ty) s1 s2

let compatible s1 s2 =
  arity s1 = arity s2 && Array.for_all2 (fun a b -> a.ty = b.ty) s1 s2

let pp ppf schema =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%s" a.name (Value.ty_to_string a.ty)))
    (attributes schema)

let to_string schema = Format.asprintf "%a" pp schema
