(** Named-relation catalog: the binding environment for {!Expr.Base}
    leaves. *)

type t

val create : unit -> t

(** [add catalog name relation] registers a relation.
    @raise Invalid_argument if [name] is already bound. *)
val add : t -> string -> Relation.t -> unit

(** Replace-or-add binding. *)
val set : t -> string -> Relation.t -> unit

(** @raise Not_found if unbound (with the name in the message via
    [Failure]).  Use {!find_opt} for a total lookup. *)
val find : t -> string -> Relation.t

val find_opt : t -> string -> Relation.t option

val mem : t -> string -> bool

val remove : t -> string -> unit

val names : t -> string list

(** Fresh catalog with the same bindings (relations are shared, they are
    immutable). *)
val copy : t -> t

(** Build from an association list.
    @raise Invalid_argument on duplicate names. *)
val of_list : (string * Relation.t) list -> t
