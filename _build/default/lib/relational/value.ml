type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = Tnull | Tbool | Tint | Tfloat | Tstr

let type_of = function
  | Null -> Tnull
  | Bool _ -> Tbool
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Str _ -> Tstr

let ty_to_string = function
  | Tnull -> "null"
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstr -> "string"

(* Rank used to order values of distinct, non-numeric types. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | Str _ -> 3

let compare v1 v2 =
  match v1, v2 with
  | Null, Null -> 0
  | Bool b1, Bool b2 -> Bool.compare b1 b2
  | Int i1, Int i2 -> Int.compare i1 i2
  | Float f1, Float f2 -> Float.compare f1 f2
  | Int i1, Float f2 -> Float.compare (float_of_int i1) f2
  | Float f1, Int i2 -> Float.compare f1 (float_of_int i2)
  | Str s1, Str s2 -> String.compare s1 s2
  | (Null | Bool _ | Int _ | Float _ | Str _), _ ->
    Int.compare (rank v1) (rank v2)

let equal v1 v2 = compare v1 v2 = 0

let hash = function
  | Null -> 0
  | Bool b -> if b then 2 else 1
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string ty s =
  let fail () =
    failwith (Printf.sprintf "Value.of_string: %S is not a %s" s (ty_to_string ty))
  in
  match ty with
  | Tnull -> if s = "NULL" || s = "" then Null else fail ()
  | Tbool -> (match bool_of_string_opt s with Some b -> Bool b | None -> fail ())
  | Tint -> (match int_of_string_opt s with Some i -> Int i | None -> fail ())
  | Tfloat -> (match float_of_string_opt s with Some f -> Float f | None -> fail ())
  | Tstr -> Str s

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Bool b -> if b then 1. else 0.
  | Null -> invalid_arg "Value.to_float: Null"
  | Str _ -> invalid_arg "Value.to_float: Str"

let int i = Int i
let float f = Float f
let str s = Str s
let bool b = Bool b
