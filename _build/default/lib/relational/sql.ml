(* The clause structure is split by scanning for top-level keywords
   (outside string literals); clause bodies are parsed by small
   hand-rolled readers, with WHERE and ON conditions delegated to
   {!Parser.parse_predicate} — the predicate language is shared. *)

let fail format = Printf.ksprintf failwith format

(* ------------------------------------------------------- clause split *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

(* Positions of [keyword] at word boundaries, outside '...' literals. *)
let keyword_positions source keyword =
  let n = String.length source and k = String.length keyword in
  let positions = ref [] in
  let in_string = ref false in
  let i = ref 0 in
  while !i < n do
    let c = source.[!i] in
    if c = '\'' then begin
      in_string := not !in_string;
      incr i
    end
    else if (not !in_string) && !i + k <= n
            && String.lowercase_ascii (String.sub source !i k) = keyword
            && (!i = 0 || not (is_word_char source.[!i - 1]))
            && (!i + k = n || not (is_word_char source.[!i + k]))
    then begin
      positions := !i :: !positions;
      i := !i + k
    end
    else incr i
  done;
  List.rev !positions

let single_position source keyword =
  match keyword_positions source keyword with
  | [] -> None
  | [ p ] -> Some p
  | _ -> fail "Sql: multiple %s clauses (subqueries are not supported)" (String.uppercase_ascii keyword)

type clauses = {
  select : string;
  from : string;
  where : string option;
  group_by : string option;
}

let split_clauses source =
  let select_pos =
    match single_position source "select" with
    | Some 0 -> 0
    | Some _ | None -> fail "Sql: query must start with SELECT"
  in
  let from_pos =
    match single_position source "from" with
    | Some p -> p
    | None -> fail "Sql: missing FROM clause"
  in
  let where_pos = single_position source "where" in
  let group_pos = single_position source "group" in
  (match group_pos with
  | Some p ->
    if keyword_positions (String.sub source p (String.length source - p)) "by" = [] then
      fail "Sql: GROUP must be followed by BY"
  | None -> ());
  let slice lo hi = String.trim (String.sub source lo (hi - lo)) in
  let end_of_query = String.length source in
  let where_end = Option.value group_pos ~default:end_of_query in
  let from_end = Option.value where_pos ~default:where_end in
  let group_by =
    Option.map
      (fun p ->
        let body = slice p end_of_query in
        (* Drop the leading "GROUP BY". *)
        let body = String.sub body 5 (String.length body - 5) in
        let body = String.trim body in
        if String.length body < 2 || String.lowercase_ascii (String.sub body 0 2) <> "by"
        then fail "Sql: GROUP must be followed by BY";
        String.trim (String.sub body 2 (String.length body - 2)))
      group_pos
  in
  {
    select = slice (select_pos + 6) from_pos;
    from = slice (from_pos + 4) from_end;
    where = Option.map (fun p -> slice (p + 5) where_end) where_pos;
    group_by;
  }

(* ------------------------------------------------------- select items *)

type item =
  | Star
  | Attr of string
  | Agg of Expr.agg * string  (* function, output name *)

let split_top_commas text =
  let parts = ref [] in
  let buffer = Buffer.create 32 in
  let depth = ref 0 and in_string = ref false in
  String.iter
    (fun c ->
      if c = '\'' then begin
        in_string := not !in_string;
        Buffer.add_char buffer c
      end
      else if !in_string then Buffer.add_char buffer c
      else
        match c with
        | '(' ->
          incr depth;
          Buffer.add_char buffer c
        | ')' ->
          decr depth;
          Buffer.add_char buffer c
        | ',' when !depth = 0 ->
          parts := Buffer.contents buffer :: !parts;
          Buffer.clear buffer
        | _ -> Buffer.add_char buffer c)
    text;
  parts := Buffer.contents buffer :: !parts;
  List.rev_map String.trim !parts

let parse_agg_call text =
  (* "func ( arg )" with optional trailing "as name". *)
  match String.index_opt text '(' with
  | None -> None
  | Some open_paren -> (
    let func = String.trim (String.sub text 0 open_paren) in
    match String.index_opt text ')' with
    | None -> fail "Sql: unbalanced parentheses in %S" text
    | Some close_paren ->
      let arg =
        String.trim (String.sub text (open_paren + 1) (close_paren - open_paren - 1))
      in
      let rest = String.trim (String.sub text (close_paren + 1) (String.length text - close_paren - 1)) in
      let output =
        if rest = "" then None
        else begin
          let lower = String.lowercase_ascii rest in
          if String.length lower > 3 && String.sub lower 0 3 = "as " then
            Some (String.trim (String.sub rest 3 (String.length rest - 3)))
          else fail "Sql: unexpected text %S after aggregate" rest
        end
      in
      let f =
        match (String.lowercase_ascii func, arg) with
        | "count", "*" -> Expr.Count
        | "count", a -> fail "Sql: only COUNT(*) is supported, not COUNT(%s)" a
        | "sum", a -> Expr.Sum a
        | "avg", a -> Expr.Avg a
        | "min", a -> Expr.Min a
        | "max", a -> Expr.Max a
        | (f, _) -> fail "Sql: unknown aggregate %S" f
      in
      let default =
        match f with
        | Expr.Count -> "count"
        | Expr.Sum a -> "sum_" ^ a
        | Expr.Avg a -> "avg_" ^ a
        | Expr.Min a -> "min_" ^ a
        | Expr.Max a -> "max_" ^ a
      in
      Some (Agg (f, Option.value output ~default)))

let parse_select_items text =
  let text = String.trim text in
  if text = "*" then (false, [ Star ])
  else begin
    let lower = String.lowercase_ascii text in
    let distinct, body =
      if String.length lower >= 9 && String.sub lower 0 9 = "distinct " then
        (true, String.trim (String.sub text 9 (String.length text - 9)))
      else (false, text)
    in
    let items =
      List.map
        (fun part ->
          if part = "" then fail "Sql: empty select item";
          if part = "*" then Star
          else
            match parse_agg_call part with
            | Some item -> item
            | None ->
              if String.for_all (fun c -> is_word_char c || c = '.') part then Attr part
              else fail "Sql: unsupported select item %S" part)
        (split_top_commas body)
    in
    (distinct, items)
  end

(* --------------------------------------------------------- FROM clause *)

let parse_from text =
  let join_positions = keyword_positions text "join" in
  if join_positions = [] then begin
    (* Comma-separated product list. *)
    let names = split_top_commas text in
    match names with
    | [] -> fail "Sql: empty FROM clause"
    | first :: rest ->
      let check name =
        if name = "" || not (String.for_all (fun c -> is_word_char c || c = '.') name) then
          fail "Sql: unsupported FROM item %S (aliases are not supported)" name
      in
      check first;
      List.iter check rest;
      List.fold_left
        (fun acc name -> Expr.Product (acc, Expr.Base name))
        (Expr.Base first) rest
  end
  else begin
    (* rel JOIN rel ON cond (JOIN rel ON cond)* *)
    let segment lo hi = String.trim (String.sub text lo (hi - lo)) in
    let first = segment 0 (List.hd join_positions) in
    if String.contains first ',' then
      fail "Sql: mixing comma-lists and JOIN in FROM is not supported";
    let rec build acc = function
      | [] -> acc
      | join_pos :: rest ->
        let segment_end =
          match rest with next :: _ -> next | [] -> String.length text
        in
        let body = segment (join_pos + 4) segment_end in
        let on_positions = keyword_positions body "on" in
        (match on_positions with
        | [] -> fail "Sql: JOIN without ON"
        | on_pos :: _ ->
          let right_name = String.trim (String.sub body 0 on_pos) in
          let condition =
            String.trim (String.sub body (on_pos + 2) (String.length body - on_pos - 2))
          in
          if right_name = "" then fail "Sql: JOIN missing right relation";
          let right = Expr.Base right_name in
          (* Without the catalog we cannot orient equality pairs, so a
             θ-join is emitted; {!Optimizer} rewrites equality θ-joins
             into correctly oriented equi-joins. *)
          let joined = Expr.Theta_join (Parser.parse_predicate condition, acc, right) in
          build joined rest)
    in
    build (Expr.Base first) join_positions
  end

(* ------------------------------------------------------------ assembly *)

let parse source =
  let clauses = split_clauses source in
  (* Reject constructs we do not support, with useful messages. *)
  List.iter
    (fun (keyword, what) ->
      if keyword_positions source keyword <> [] then fail "Sql: %s is not supported" what)
    [ ("order", "ORDER BY"); ("having", "HAVING"); ("limit", "LIMIT") ];
  let from_expr = parse_from clauses.from in
  let filtered =
    match clauses.where with
    | Some text -> Expr.Select (Parser.parse_predicate text, from_expr)
    | None -> from_expr
  in
  let distinct, items = parse_select_items clauses.select in
  let group_attrs =
    Option.map
      (fun text ->
        List.map
          (fun part ->
            if part = "" || not (String.for_all (fun c -> is_word_char c || c = '.') part)
            then fail "Sql: bad GROUP BY attribute %S" part
            else part)
          (split_top_commas text))
      clauses.group_by
  in
  let aggs = List.filter_map (function Agg (f, o) -> Some (f, o) | _ -> None) items in
  let plain = List.filter_map (function Attr a -> Some a | _ -> None) items in
  let has_star = List.exists (function Star -> true | _ -> false) items in
  match (group_attrs, aggs) with
  | Some group, _ when has_star -> ignore group; fail "Sql: SELECT * with GROUP BY"
  | Some group, [] ->
    (* Pure grouping: distinct projection onto the group attributes. *)
    List.iter
      (fun a ->
        if not (List.mem a group) then
          fail "Sql: select item %S is not in GROUP BY" a)
      plain;
    Expr.Distinct (Expr.Project (group, filtered))
  | Some group, aggs ->
    List.iter
      (fun a ->
        if not (List.mem a group) then
          fail "Sql: select item %S is not in GROUP BY" a)
      plain;
    Expr.Aggregate (group, aggs, filtered)
  | None, [] ->
    if has_star then
      if distinct then Expr.Distinct filtered else filtered
    else if plain = [] then fail "Sql: empty select list"
    else if distinct then Expr.Distinct (Expr.Project (plain, filtered))
    else Expr.Project (plain, filtered)
  | None, aggs ->
    if plain <> [] then fail "Sql: mixing attributes and aggregates needs GROUP BY";
    Expr.Aggregate ([], aggs, filtered)

let parse_optimized catalog source = Optimizer.optimize catalog (parse source)

let count_star_target = function
  | Expr.Aggregate ([], [ (Expr.Count, _) ], inner) -> Some inner
  | _ -> None
