let attrs_within schema attrs = List.for_all (Schema.mem schema) attrs

(* One bottom-up pass; [changed] records whether any rule fired. *)
let rec pass catalog changed expr =
  let expr = rewrite_children catalog changed expr in
  apply_rules catalog changed expr

and rewrite_children catalog changed = function
  | Expr.Base _ as e -> e
  | Expr.Select (p, e) -> Expr.Select (p, pass catalog changed e)
  | Expr.Project (names, e) -> Expr.Project (names, pass catalog changed e)
  | Expr.Distinct e -> Expr.Distinct (pass catalog changed e)
  | Expr.Rename (pairs, e) -> Expr.Rename (pairs, pass catalog changed e)
  | Expr.Aggregate (by, specs, e) -> Expr.Aggregate (by, specs, pass catalog changed e)
  | Expr.Product (l, r) -> Expr.Product (pass catalog changed l, pass catalog changed r)
  | Expr.Equijoin (pairs, l, r) ->
    Expr.Equijoin (pairs, pass catalog changed l, pass catalog changed r)
  | Expr.Theta_join (p, l, r) ->
    Expr.Theta_join (p, pass catalog changed l, pass catalog changed r)
  | Expr.Union (l, r) -> Expr.Union (pass catalog changed l, pass catalog changed r)
  | Expr.Inter (l, r) -> Expr.Inter (pass catalog changed l, pass catalog changed r)
  | Expr.Diff (l, r) -> Expr.Diff (pass catalog changed l, pass catalog changed r)

and apply_rules catalog changed expr =
  let fired e =
    changed := true;
    e
  in
  match expr with
  (* σ_true(e) = e. *)
  | Expr.Select (Predicate.True, e) -> fired e
  (* Conjunction splitting enables independent pushdown of each leg. *)
  | Expr.Select (Predicate.And (p, q), e) ->
    fired (Expr.Select (p, Expr.Select (q, e)))
  (* Join recognition over a product. *)
  | Expr.Select
      ((Predicate.Cmp (Predicate.Eq, Predicate.Attr a, Predicate.Attr b) as p),
       Expr.Product (l, r)) -> (
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    match (Schema.mem sl a, Schema.mem sr b, Schema.mem sl b, Schema.mem sr a) with
    | true, true, _, _ -> fired (Expr.Equijoin ([ (a, b) ], l, r))
    | _, _, true, true -> fired (Expr.Equijoin ([ (b, a) ], l, r))
    | _ -> push_select catalog changed p (Expr.Product (l, r)))
  (* Extra equality conjunct merging into an existing equi-join. *)
  | Expr.Select
      ((Predicate.Cmp (Predicate.Eq, Predicate.Attr a, Predicate.Attr b) as p),
       Expr.Equijoin (pairs, l, r)) -> (
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    match (Schema.mem sl a, Schema.mem sr b, Schema.mem sl b, Schema.mem sr a) with
    | true, true, _, _ -> fired (Expr.Equijoin (pairs @ [ (a, b) ], l, r))
    | _, _, true, true -> fired (Expr.Equijoin (pairs @ [ (b, a) ], l, r))
    | _ -> push_select catalog changed p (Expr.Equijoin (pairs, l, r)))
  | Expr.Select (p, inner) -> push_select catalog changed p inner
  (* θ-joins whose predicate could be (partly) an equality become a
     selection over a product, where conjunction splitting and join
     recognition take over. *)
  | Expr.Theta_join ((Predicate.And _ | Predicate.Cmp (Predicate.Eq, Predicate.Attr _, Predicate.Attr _)) as p, l, r)
    ->
    fired (Expr.Select (p, Expr.Product (l, r)))
  (* Distinct collapses over anything already duplicate-free. *)
  | Expr.Distinct (Expr.Distinct e) -> fired (Expr.Distinct e)
  | Expr.Distinct ((Expr.Union _ | Expr.Inter _ | Expr.Diff _) as e) -> fired e
  | e -> e

and push_select catalog changed p inner =
  let fired e =
    changed := true;
    e
  in
  let attrs = Predicate.attributes p in
  match inner with
  | Expr.Product (l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs then fired (Expr.Product (Expr.Select (p, l), r))
    else if attrs_within sr attrs then fired (Expr.Product (l, Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Equijoin (pairs, l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs then fired (Expr.Equijoin (pairs, Expr.Select (p, l), r))
    else if attrs_within sr attrs then
      fired (Expr.Equijoin (pairs, l, Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Theta_join (q, l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs then fired (Expr.Theta_join (q, Expr.Select (p, l), r))
    else if attrs_within sr attrs then
      fired (Expr.Theta_join (q, l, Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Union (l, r) ->
    (* Union-compatibility is positional: both children must expose the
       predicate's attribute names for the pushdown to type-check. *)
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs && attrs_within sr attrs then
      fired (Expr.Union (Expr.Select (p, l), Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Inter (l, r) ->
    let sl = Expr.schema_of catalog l and sr = Expr.schema_of catalog r in
    if attrs_within sl attrs && attrs_within sr attrs then
      fired (Expr.Inter (Expr.Select (p, l), Expr.Select (p, r)))
    else Expr.Select (p, inner)
  | Expr.Diff (l, r) ->
    (* σ_p(A − B) = σ_p(A) − B; the right side needs no filter. *)
    let sl = Expr.schema_of catalog l in
    if attrs_within sl attrs then fired (Expr.Diff (Expr.Select (p, l), r))
    else Expr.Select (p, inner)
  | _ -> Expr.Select (p, inner)

let optimize_with_stats catalog expr =
  let steps = ref 0 in
  let rec fixpoint expr iterations =
    if iterations = 0 then expr
    else begin
      let changed = ref false in
      let rewritten = pass catalog changed expr in
      if !changed then begin
        incr steps;
        fixpoint rewritten (iterations - 1)
      end
      else rewritten
    end
  in
  let result = fixpoint expr 50 in
  (result, !steps)

let optimize catalog expr = fst (optimize_with_stats catalog expr)
