(* Recursive-descent parser over a hand-rolled tokenizer.  The only
   delicate spot is '(' in predicate position, which may open either a
   nested predicate or a parenthesized arithmetic term; it is resolved
   by bounded backtracking (see [try_parse]). *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Sym of string
  | Eof

type state = {
  tokens : (token * int) array;  (* token, byte offset for errors *)
  source : string;
  mutable pos : int;
}

exception Parse_error of string * int

let fail_at state message =
  let offset =
    if state.pos < Array.length state.tokens then snd state.tokens.(state.pos)
    else String.length state.source
  in
  raise (Parse_error (message, offset))

(* ---------------------------------------------------------- tokenizer *)

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '#'

let is_digit c = c >= '0' && c <= '9'

let tokenize source =
  let tokens = ref [] in
  let n = String.length source in
  let i = ref 0 in
  let push token start = tokens := (token, start) :: !tokens in
  while !i < n do
    let start = !i in
    let c = source.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit source.[!j] do
        incr j
      done;
      let is_float =
        !j < n && source.[!j] = '.' && (!j + 1 >= n || source.[!j + 1] <> '.')
        && (!j + 1 >= n || is_digit source.[!j + 1] || not (is_ident_char source.[!j + 1]))
      in
      if is_float then begin
        incr j;
        while !j < n && is_digit source.[!j] do
          incr j
        done;
        (* Exponent part. *)
        if !j < n && (source.[!j] = 'e' || source.[!j] = 'E') then begin
          incr j;
          if !j < n && (source.[!j] = '+' || source.[!j] = '-') then incr j;
          while !j < n && is_digit source.[!j] do
            incr j
          done
        end;
        let text = String.sub source !i (!j - !i) in
        push (Float_lit (float_of_string text)) start
      end
      else begin
        (* Plain integer (scientific notation only with a dot). *)
        let text = String.sub source !i (!j - !i) in
        push (Int_lit (int_of_string text)) start
      end;
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char source.[!j] do
        incr j
      done;
      push (Ident (String.sub source !i (!j - !i))) start;
      i := !j
    end
    else if c = '\'' then begin
      (* String literal with '' as the escaped quote. *)
      let buffer = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while not !closed && !j < n do
        if source.[!j] = '\'' then
          if !j + 1 < n && source.[!j + 1] = '\'' then begin
            Buffer.add_char buffer '\'';
            j := !j + 2
          end
          else begin
            closed := true;
            incr j
          end
        else begin
          Buffer.add_char buffer source.[!j];
          incr j
        end
      done;
      if not !closed then raise (Parse_error ("unterminated string literal", start));
      push (Str_lit (Buffer.contents buffer)) start;
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub source !i 2 else "" in
      match two with
      | "->" | "!=" | "<>" | "<=" | ">=" ->
        push (Sym two) start;
        i := !i + 2
      | _ ->
        (match c with
        | '(' | ')' | '[' | ']' | ',' | ';' | '=' | '<' | '>' | '+' | '-' | '*' | '/' ->
          push (Sym (String.make 1 c)) start;
          incr i
        | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C" c, start)))
    end
  done;
  push Eof n;
  Array.of_list (List.rev !tokens)

(* ------------------------------------------------------ parser plumbing *)

let make_state source = { tokens = tokenize source; source; pos = 0 }

let peek state = fst state.tokens.(state.pos)

let advance state = state.pos <- state.pos + 1

let keyword state =
  match peek state with
  | Ident name -> Some (String.lowercase_ascii name)
  | Int_lit _ | Float_lit _ | Str_lit _ | Sym _ | Eof -> None

let eat_keyword state expected =
  match keyword state with
  | Some k when k = expected -> advance state
  | _ -> fail_at state (Printf.sprintf "expected %S" expected)

let eat_sym state expected =
  match peek state with
  | Sym s when s = expected -> advance state
  | _ -> fail_at state (Printf.sprintf "expected %S" expected)

let accept_sym state expected =
  match peek state with
  | Sym s when s = expected ->
    advance state;
    true
  | _ -> false

let ident state =
  match peek state with
  | Ident name ->
    advance state;
    name
  | _ -> fail_at state "expected an identifier"

let try_parse state f =
  let saved = state.pos in
  try Some (f state)
  with Parse_error _ ->
    state.pos <- saved;
    None

(* --------------------------------------------------------------- values *)

let parse_value state =
  match peek state with
  | Int_lit v ->
    advance state;
    Value.Int v
  | Float_lit v ->
    advance state;
    Value.Float v
  | Str_lit v ->
    advance state;
    Value.Str v
  | Sym "-" -> (
    advance state;
    match peek state with
    | Int_lit v ->
      advance state;
      Value.Int (-v)
    | Float_lit v ->
      advance state;
      Value.Float (-.v)
    | _ -> fail_at state "expected a number after unary minus")
  | Ident _ -> (
    match keyword state with
    | Some "true" ->
      advance state;
      Value.Bool true
    | Some "false" ->
      advance state;
      Value.Bool false
    | Some "null" ->
      advance state;
      Value.Null
    | _ -> fail_at state "expected a literal value")
  | Sym _ | Eof -> fail_at state "expected a literal value"

(* ---------------------------------------------------------------- terms *)

let reserved_in_predicates =
  [ "and"; "or"; "not"; "between"; "in"; "true"; "false"; "null" ]

let rec parse_term state = parse_additive state

and parse_additive state =
  let left = ref (parse_multiplicative state) in
  let continue = ref true in
  while !continue do
    if accept_sym state "+" then left := Predicate.Add (!left, parse_multiplicative state)
    else if accept_sym state "-" then left := Predicate.Sub (!left, parse_multiplicative state)
    else continue := false
  done;
  !left

and parse_multiplicative state =
  let left = ref (parse_term_atom state) in
  let continue = ref true in
  while !continue do
    if accept_sym state "*" then left := Predicate.Mul (!left, parse_term_atom state)
    else if accept_sym state "/" then left := Predicate.Div (!left, parse_term_atom state)
    else continue := false
  done;
  !left

and parse_term_atom state =
  match peek state with
  | Int_lit _ | Float_lit _ | Str_lit _ | Sym "-" -> Predicate.Const (parse_value state)
  | Sym "(" ->
    advance state;
    let term = parse_term state in
    eat_sym state ")";
    term
  | Ident name ->
    let lower = String.lowercase_ascii name in
    if lower = "null" then begin
      advance state;
      Predicate.Const Value.Null
    end
    else if List.mem lower reserved_in_predicates then
      fail_at state (Printf.sprintf "keyword %S cannot be an attribute" name)
    else begin
      advance state;
      Predicate.Attr name
    end
  | Sym _ | Eof -> fail_at state "expected a term"

(* ----------------------------------------------------------- predicates *)

let comparison_of_sym = function
  | "=" -> Some Predicate.Eq
  | "!=" | "<>" -> Some Predicate.Neq
  | "<" -> Some Predicate.Lt
  | "<=" -> Some Predicate.Le
  | ">" -> Some Predicate.Gt
  | ">=" -> Some Predicate.Ge
  | _ -> None

let rec parse_predicate_level state = parse_or state

and parse_or state =
  let left = ref (parse_and state) in
  while keyword state = Some "or" do
    advance state;
    left := Predicate.Or (!left, parse_and state)
  done;
  !left

and parse_and state =
  let left = ref (parse_not state) in
  while keyword state = Some "and" do
    advance state;
    left := Predicate.And (!left, parse_not state)
  done;
  !left

and parse_not state =
  if keyword state = Some "not" then begin
    advance state;
    Predicate.Not (parse_not state)
  end
  else parse_predicate_atom state

and parse_predicate_atom state =
  match keyword state with
  | Some "true" ->
    advance state;
    Predicate.True
  | Some "false" ->
    advance state;
    Predicate.False
  | _ ->
    (* '(' is ambiguous: nested predicate or parenthesized term. *)
    if peek state = Sym "(" then begin
      let as_predicate =
        try_parse state (fun state ->
            advance state;
            let p = parse_predicate_level state in
            eat_sym state ")";
            (* A comparison right after the closing paren means the
               parentheses belonged to a term after all. *)
            (match peek state with
            | Sym s
              when comparison_of_sym s <> None || s = "+" || s = "-" || s = "*" || s = "/"
              ->
              fail_at state "parenthesized term, not predicate"
            | _ -> ());
            p)
      in
      match as_predicate with
      | Some p -> p
      | None -> parse_comparison state
    end
    else parse_comparison state

and parse_comparison state =
  let left = parse_term state in
  match keyword state with
  | Some "between" ->
    advance state;
    let lo = parse_value state in
    eat_keyword state "and";
    let hi = parse_value state in
    Predicate.Between (left, lo, hi)
  | Some "in" ->
    advance state;
    eat_sym state "(";
    let values = ref [ parse_value state ] in
    while accept_sym state "," do
      values := parse_value state :: !values
    done;
    eat_sym state ")";
    Predicate.In (left, List.rev !values)
  | _ -> (
    match peek state with
    | Sym s -> (
      match comparison_of_sym s with
      | Some cmp ->
        advance state;
        let right = parse_term state in
        Predicate.Cmp (cmp, left, right)
      | None -> fail_at state "expected a comparison operator")
    | _ -> fail_at state "expected a comparison operator")

(* ---------------------------------------------------------- expressions *)

let expr_keywords =
  [ "select"; "pi"; "pidist"; "distinct"; "rho"; "cross"; "join"; "theta"; "union";
    "inter"; "minus"; "gamma" ]

let default_agg_name = function
  | Expr.Count -> "count"
  | Expr.Sum a -> "sum_" ^ a
  | Expr.Avg a -> "avg_" ^ a
  | Expr.Min a -> "min_" ^ a
  | Expr.Max a -> "max_" ^ a

let parse_agg_spec state =
  let f =
    match keyword state with
    | Some "count" ->
      advance state;
      Expr.Count
    | Some (("sum" | "avg" | "min" | "max") as which) ->
      advance state;
      eat_sym state "(";
      let attr = ident state in
      eat_sym state ")";
      (match which with
      | "sum" -> Expr.Sum attr
      | "avg" -> Expr.Avg attr
      | "min" -> Expr.Min attr
      | _ -> Expr.Max attr)
    | _ -> fail_at state "expected count, sum(a), avg(a), min(a) or max(a)"
  in
  let output =
    if keyword state = Some "as" then begin
      advance state;
      ident state
    end
    else default_agg_name f
  in
  (f, output)

let parse_attr_list state =
  let attrs = ref [ ident state ] in
  while accept_sym state "," do
    attrs := ident state :: !attrs
  done;
  List.rev !attrs

let parse_rename_pairs state =
  let pair state =
    let old_name = ident state in
    eat_sym state "->";
    let new_name = ident state in
    (old_name, new_name)
  in
  let pairs = ref [ pair state ] in
  while accept_sym state "," do
    pairs := pair state :: !pairs
  done;
  List.rev !pairs

let parse_join_pairs state =
  let pair state =
    let left = ident state in
    eat_sym state "=";
    let right = ident state in
    (left, right)
  in
  let pairs = ref [ pair state ] in
  while accept_sym state "," do
    pairs := pair state :: !pairs
  done;
  List.rev !pairs

let rec parse_expr_level state = parse_set_ops state

and parse_set_ops state =
  let left = ref (parse_join_ops state) in
  let continue = ref true in
  while !continue do
    match keyword state with
    | Some "union" ->
      advance state;
      left := Expr.Union (!left, parse_join_ops state)
    | Some "inter" ->
      advance state;
      left := Expr.Inter (!left, parse_join_ops state)
    | Some "minus" ->
      advance state;
      left := Expr.Diff (!left, parse_join_ops state)
    | _ -> continue := false
  done;
  !left

and parse_join_ops state =
  let left = ref (parse_expr_atom state) in
  let continue = ref true in
  while !continue do
    match keyword state with
    | Some "cross" ->
      advance state;
      left := Expr.Product (!left, parse_expr_atom state)
    | Some "join" ->
      advance state;
      eat_sym state "[";
      let pairs = parse_join_pairs state in
      eat_sym state "]";
      left := Expr.Equijoin (pairs, !left, parse_expr_atom state)
    | Some "theta" ->
      advance state;
      eat_sym state "[";
      let p = parse_predicate_level state in
      eat_sym state "]";
      left := Expr.Theta_join (p, !left, parse_expr_atom state)
    | _ -> continue := false
  done;
  !left

and parse_expr_atom state =
  match keyword state with
  | Some "select" ->
    advance state;
    eat_sym state "[";
    let p = parse_predicate_level state in
    eat_sym state "]";
    eat_sym state "(";
    let e = parse_expr_level state in
    eat_sym state ")";
    Expr.Select (p, e)
  | Some "pi" ->
    advance state;
    eat_sym state "[";
    let attrs = parse_attr_list state in
    eat_sym state "]";
    eat_sym state "(";
    let e = parse_expr_level state in
    eat_sym state ")";
    Expr.Project (attrs, e)
  | Some "pidist" ->
    advance state;
    eat_sym state "[";
    let attrs = parse_attr_list state in
    eat_sym state "]";
    eat_sym state "(";
    let e = parse_expr_level state in
    eat_sym state ")";
    Expr.Distinct (Expr.Project (attrs, e))
  | Some "distinct" ->
    advance state;
    eat_sym state "(";
    let e = parse_expr_level state in
    eat_sym state ")";
    Expr.Distinct e
  | Some "rho" ->
    advance state;
    eat_sym state "[";
    let pairs = parse_rename_pairs state in
    eat_sym state "]";
    eat_sym state "(";
    let e = parse_expr_level state in
    eat_sym state ")";
    Expr.Rename (pairs, e)
  | Some "gamma" ->
    advance state;
    eat_sym state "[";
    let by = if peek state = Sym ";" then [] else parse_attr_list state in
    eat_sym state ";";
    let specs = ref [ parse_agg_spec state ] in
    while accept_sym state "," do
      specs := parse_agg_spec state :: !specs
    done;
    eat_sym state "]";
    eat_sym state "(";
    let e = parse_expr_level state in
    eat_sym state ")";
    Expr.Aggregate (by, List.rev !specs, e)
  | Some k when List.mem k expr_keywords -> fail_at state (Printf.sprintf "misplaced keyword %S" k)
  | Some _ -> Expr.Base (ident state)
  | None ->
    if accept_sym state "(" then begin
      let e = parse_expr_level state in
      eat_sym state ")";
      e
    end
    else fail_at state "expected an expression"

(* ----------------------------------------------------------- entrypoints *)

let finish state result =
  match peek state with
  | Eof -> result
  | _ -> fail_at state "trailing input"

let describe_error source (message, offset) =
  let prefix = String.sub source 0 (min offset (String.length source)) in
  let line = 1 + String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 prefix in
  Printf.sprintf "Parser: %s at offset %d (line %d) in %S" message offset line source

let parse_expr source =
  try
    let state = make_state source in
    finish state (parse_expr_level state)
  with Parse_error (message, offset) -> failwith (describe_error source (message, offset))

let parse_predicate source =
  try
    let state = make_state source in
    finish state (parse_predicate_level state)
  with Parse_error (message, offset) -> failwith (describe_error source (message, offset))

(* ---------------------------------------------------------------- printer *)

let print_value = function
  | Value.Null -> "null"
  | Value.Bool b -> string_of_bool b
  | Value.Int v -> string_of_int v
  | Value.Float v ->
    let text = Printf.sprintf "%.12g" v in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i') text
    then text
    else text ^ ".0"
  | Value.Str s ->
    let buffer = Buffer.create (String.length s + 2) in
    Buffer.add_char buffer '\'';
    String.iter
      (fun c -> if c = '\'' then Buffer.add_string buffer "''" else Buffer.add_char buffer c)
      s;
    Buffer.add_char buffer '\'';
    Buffer.contents buffer

let rec print_term = function
  | Predicate.Attr name -> name
  | Predicate.Const v -> print_value v
  | Predicate.Add (t1, t2) -> Printf.sprintf "(%s + %s)" (print_term t1) (print_term t2)
  | Predicate.Sub (t1, t2) -> Printf.sprintf "(%s - %s)" (print_term t1) (print_term t2)
  | Predicate.Mul (t1, t2) -> Printf.sprintf "(%s * %s)" (print_term t1) (print_term t2)
  | Predicate.Div (t1, t2) -> Printf.sprintf "(%s / %s)" (print_term t1) (print_term t2)

let print_cmp = function
  | Predicate.Eq -> "="
  | Predicate.Neq -> "!="
  | Predicate.Lt -> "<"
  | Predicate.Le -> "<="
  | Predicate.Gt -> ">"
  | Predicate.Ge -> ">="

let rec print_predicate = function
  | Predicate.True -> "true"
  | Predicate.False -> "false"
  | Predicate.Cmp (cmp, t1, t2) ->
    Printf.sprintf "%s %s %s" (print_term t1) (print_cmp cmp) (print_term t2)
  | Predicate.Between (t, lo, hi) ->
    Printf.sprintf "%s between %s and %s" (print_term t) (print_value lo) (print_value hi)
  | Predicate.In (t, values) ->
    Printf.sprintf "%s in (%s)" (print_term t) (String.concat ", " (List.map print_value values))
  | Predicate.And (p1, p2) ->
    Printf.sprintf "(%s and %s)" (print_predicate p1) (print_predicate p2)
  | Predicate.Or (p1, p2) ->
    Printf.sprintf "(%s or %s)" (print_predicate p1) (print_predicate p2)
  | Predicate.Not p -> Printf.sprintf "not (%s)" (print_predicate p)

let rec print_expr = function
  | Expr.Base name -> name
  | Expr.Select (p, e) -> Printf.sprintf "select[%s](%s)" (print_predicate p) (print_expr e)
  | Expr.Distinct (Expr.Project (attrs, e)) ->
    Printf.sprintf "pidist[%s](%s)" (String.concat ", " attrs) (print_expr e)
  | Expr.Project (attrs, e) ->
    Printf.sprintf "pi[%s](%s)" (String.concat ", " attrs) (print_expr e)
  | Expr.Distinct e -> Printf.sprintf "distinct(%s)" (print_expr e)
  | Expr.Rename (pairs, e) ->
    let pairs = List.map (fun (a, b) -> a ^ " -> " ^ b) pairs in
    Printf.sprintf "rho[%s](%s)" (String.concat ", " pairs) (print_expr e)
  | Expr.Product (l, r) -> Printf.sprintf "(%s cross %s)" (print_expr l) (print_expr r)
  | Expr.Equijoin (pairs, l, r) ->
    let pairs = List.map (fun (a, b) -> a ^ " = " ^ b) pairs in
    Printf.sprintf "(%s join[%s] %s)" (print_expr l) (String.concat ", " pairs) (print_expr r)
  | Expr.Theta_join (p, l, r) ->
    Printf.sprintf "(%s theta[%s] %s)" (print_expr l) (print_predicate p) (print_expr r)
  | Expr.Union (l, r) -> Printf.sprintf "(%s union %s)" (print_expr l) (print_expr r)
  | Expr.Inter (l, r) -> Printf.sprintf "(%s inter %s)" (print_expr l) (print_expr r)
  | Expr.Diff (l, r) -> Printf.sprintf "(%s minus %s)" (print_expr l) (print_expr r)
  | Expr.Aggregate (by, specs, e) ->
    let print_spec (f, output) =
      let f_text =
        match f with
        | Expr.Count -> "count"
        | Expr.Sum a -> Printf.sprintf "sum(%s)" a
        | Expr.Avg a -> Printf.sprintf "avg(%s)" a
        | Expr.Min a -> Printf.sprintf "min(%s)" a
        | Expr.Max a -> Printf.sprintf "max(%s)" a
      in
      f_text ^ " as " ^ output
    in
    Printf.sprintf "gamma[%s; %s](%s)" (String.concat ", " by)
      (String.concat ", " (List.map print_spec specs))
      (print_expr e)
