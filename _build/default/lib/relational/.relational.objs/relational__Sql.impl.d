lib/relational/sql.ml: Buffer Expr List Optimizer Option Parser Printf String
