lib/relational/paged.ml: Array Printf Relation
