lib/relational/paged.mli: Relation Tuple
