lib/relational/index.ml: Array Hashtbl List Relation Schema Tuple
