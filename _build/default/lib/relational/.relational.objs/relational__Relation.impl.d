lib/relational/relation.ml: Array Buffer Format Hashtbl List Printf Schema Seq Tuple Value
