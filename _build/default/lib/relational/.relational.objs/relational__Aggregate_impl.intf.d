lib/relational/aggregate_impl.mli: Expr Schema Seq Tuple
