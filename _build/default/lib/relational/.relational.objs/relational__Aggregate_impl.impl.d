lib/relational/aggregate_impl.ml: Array Expr Hashtbl List Schema Seq Tuple Value
