lib/relational/catalog.ml: Hashtbl List Printf Relation String
