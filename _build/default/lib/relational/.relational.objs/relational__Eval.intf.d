lib/relational/eval.mli: Catalog Expr Relation
