lib/relational/expr.mli: Catalog Format Predicate Schema
