lib/relational/tuple.ml: Array Format Int List String Value
