lib/relational/physical.ml: Aggregate_impl Array Catalog Expr Hashtbl List Option Predicate Relation Schema Seq Tuple
