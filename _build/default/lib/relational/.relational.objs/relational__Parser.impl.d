lib/relational/parser.ml: Array Buffer Expr List Predicate Printf String Value
