lib/relational/optimizer.ml: Expr List Predicate Schema
