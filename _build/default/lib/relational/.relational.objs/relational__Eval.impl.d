lib/relational/eval.ml: Aggregate_impl Array Catalog Expr Hashtbl List Predicate Relation Schema Tuple
