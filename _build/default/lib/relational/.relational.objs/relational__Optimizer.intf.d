lib/relational/optimizer.mli: Catalog Expr
