lib/relational/expr.ml: Catalog Format List Predicate Printf Relation Schema String Value
