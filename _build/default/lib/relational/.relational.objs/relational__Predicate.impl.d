lib/relational/predicate.ml: Format List Schema Tuple Value
