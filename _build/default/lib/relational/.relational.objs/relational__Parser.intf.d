lib/relational/parser.mli: Expr Predicate
