lib/relational/sql.mli: Catalog Expr
