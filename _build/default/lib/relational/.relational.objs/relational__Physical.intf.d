lib/relational/physical.mli: Catalog Expr Relation Schema Tuple
