(** Paged view of a relation.

    The 1988 setting stores relations on fixed-capacity disk pages;
    cluster sampling draws whole pages.  This module materializes the
    page structure of a relation and counts page accesses, standing in
    for physical I/O (see DESIGN.md §5). *)

type t

(** [make ~page_capacity relation] splits the relation's tuples, in
    order, into pages of at most [page_capacity] tuples (the last page
    may be short).
    @raise Invalid_argument if [page_capacity <= 0]. *)
val make : page_capacity:int -> Relation.t -> t

val relation : t -> Relation.t

val page_capacity : t -> int

(** Number of pages, [ceil (cardinality / page_capacity)]. *)
val page_count : t -> int

(** Tuples of page [i] (a fresh array).  Increments the access counter.
    @raise Invalid_argument if [i] is out of range. *)
val page : t -> int -> Tuple.t array

(** Tuples on page [i] without counting an access (for tests and exact
    computations). *)
val peek_page : t -> int -> Tuple.t array

(** Number of tuples on page [i]. *)
val page_size : t -> int -> int

(** Pages fetched since creation or the last {!reset_accesses}. *)
val accesses : t -> int

val reset_accesses : t -> unit
