type term =
  | Attr of string
  | Const of Value.t
  | Add of term * term
  | Sub of term * term
  | Mul of term * term
  | Div of term * term

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * term * term
  | Between of term * Value.t * Value.t
  | In of term * Value.t list
  | And of t * t
  | Or of t * t
  | Not of t

let attr name = Attr name
let const v = Const v
let vint i = Const (Value.Int i)
let vfloat f = Const (Value.Float f)
let vstr s = Const (Value.Str s)

let eq t1 t2 = Cmp (Eq, t1, t2)
let neq t1 t2 = Cmp (Neq, t1, t2)
let lt t1 t2 = Cmp (Lt, t1, t2)
let le t1 t2 = Cmp (Le, t1, t2)
let gt t1 t2 = Cmp (Gt, t1, t2)
let ge t1 t2 = Cmp (Ge, t1, t2)
let between t lo hi = Between (t, lo, hi)
let in_ t vs = In (t, vs)
let ( &&& ) p1 p2 = And (p1, p2)
let ( ||| ) p1 p2 = Or (p1, p2)
let not_ p = Not p

let attributes p =
  let rec term_attrs acc = function
    | Attr name -> if List.mem name acc then acc else name :: acc
    | Const _ -> acc
    | Add (t1, t2) | Sub (t1, t2) | Mul (t1, t2) | Div (t1, t2) ->
      term_attrs (term_attrs acc t1) t2
  in
  let rec pred_attrs acc = function
    | True | False -> acc
    | Cmp (_, t1, t2) -> term_attrs (term_attrs acc t1) t2
    | Between (t, _, _) | In (t, _) -> term_attrs acc t
    | And (p1, p2) | Or (p1, p2) -> pred_attrs (pred_attrs acc p1) p2
    | Not p -> pred_attrs acc p
  in
  List.rev (pred_attrs [] p)

(* Compiled terms return [None] for Null propagation. *)
let rec compile_term schema = function
  | Attr name ->
    let i = Schema.index_of schema name in
    fun tuple ->
      (match Tuple.get tuple i with Value.Null -> None | v -> Some v)
  | Const Value.Null -> fun _ -> None
  | Const v -> fun _ -> Some v
  | Add (t1, t2) -> arith schema ( +. ) t1 t2
  | Sub (t1, t2) -> arith schema ( -. ) t1 t2
  | Mul (t1, t2) -> arith schema ( *. ) t1 t2
  | Div (t1, t2) -> arith schema ( /. ) t1 t2

and arith schema op t1 t2 =
  let f1 = compile_term schema t1 and f2 = compile_term schema t2 in
  fun tuple ->
    match f1 tuple, f2 tuple with
    | Some v1, Some v2 -> Some (Value.Float (op (Value.to_float v1) (Value.to_float v2)))
    | None, _ | _, None -> None

let cmp_holds cmp c =
  match cmp with
  | Eq -> c = 0
  | Neq -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec compile schema = function
  | True -> fun _ -> true
  | False -> fun _ -> false
  | Cmp (cmp, t1, t2) ->
    let f1 = compile_term schema t1 and f2 = compile_term schema t2 in
    fun tuple ->
      (match f1 tuple, f2 tuple with
      | Some v1, Some v2 -> cmp_holds cmp (Value.compare v1 v2)
      | None, _ | _, None -> false)
  | Between (t, lo, hi) ->
    let f = compile_term schema t in
    fun tuple ->
      (match f tuple with
      | Some v -> Value.compare lo v <= 0 && Value.compare v hi <= 0
      | None -> false)
  | In (t, vs) ->
    let f = compile_term schema t in
    fun tuple ->
      (match f tuple with
      | Some v -> List.exists (Value.equal v) vs
      | None -> false)
  | And (p1, p2) ->
    let f1 = compile schema p1 and f2 = compile schema p2 in
    fun tuple -> f1 tuple && f2 tuple
  | Or (p1, p2) ->
    let f1 = compile schema p1 and f2 = compile schema p2 in
    fun tuple -> f1 tuple || f2 tuple
  | Not p ->
    let f = compile schema p in
    fun tuple -> not (f tuple)

let eval schema p tuple = compile schema p tuple

let rec pp_term ppf = function
  | Attr name -> Format.pp_print_string ppf name
  | Const v -> Value.pp ppf v
  | Add (t1, t2) -> Format.fprintf ppf "(%a + %a)" pp_term t1 pp_term t2
  | Sub (t1, t2) -> Format.fprintf ppf "(%a - %a)" pp_term t1 pp_term t2
  | Mul (t1, t2) -> Format.fprintf ppf "(%a * %a)" pp_term t1 pp_term t2
  | Div (t1, t2) -> Format.fprintf ppf "(%a / %a)" pp_term t1 pp_term t2

let cmp_to_string = function
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Cmp (cmp, t1, t2) ->
    Format.fprintf ppf "%a %s %a" pp_term t1 (cmp_to_string cmp) pp_term t2
  | Between (t, lo, hi) ->
    Format.fprintf ppf "%a between %a and %a" pp_term t Value.pp lo Value.pp hi
  | In (t, vs) ->
    Format.fprintf ppf "%a in (%a)" pp_term t
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
      vs
  | And (p1, p2) -> Format.fprintf ppf "(%a and %a)" pp p1 pp p2
  | Or (p1, p2) -> Format.fprintf ppf "(%a or %a)" pp p1 pp p2
  | Not p -> Format.fprintf ppf "not %a" pp p

let to_string p = Format.asprintf "%a" pp p
