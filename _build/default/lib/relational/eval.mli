(** Exact evaluation of relational algebra expressions.

    This is the ground truth the estimators are measured against.  Joins
    use hash joins on the equality attributes; θ-joins and products use
    nested loops; set operators hash-deduplicate. *)

(** [eval catalog e] materializes the result relation.
    @raise Failure on schema errors (see {!Expr.schema_of}). *)
val eval : Catalog.t -> Expr.t -> Relation.t

(** [count catalog e] is [Relation.cardinality (eval catalog e)]. *)
val count : Catalog.t -> Expr.t -> int
