type t = {
  relation : Relation.t;
  page_capacity : int;
  page_count : int;
  mutable accesses : int;
}

let make ~page_capacity relation =
  if page_capacity <= 0 then invalid_arg "Paged.make: page_capacity must be positive";
  let n = Relation.cardinality relation in
  let page_count = if n = 0 then 0 else ((n - 1) / page_capacity) + 1 in
  { relation; page_capacity; page_count; accesses = 0 }

let relation t = t.relation

let page_capacity t = t.page_capacity

let page_count t = t.page_count

let bounds t i =
  if i < 0 || i >= t.page_count then
    invalid_arg (Printf.sprintf "Paged: page %d out of range [0, %d)" i t.page_count);
  let start = i * t.page_capacity in
  let stop = min (start + t.page_capacity) (Relation.cardinality t.relation) in
  (start, stop)

let peek_page t i =
  let start, stop = bounds t i in
  Array.init (stop - start) (fun k -> Relation.tuple t.relation (start + k))

let page t i =
  let tuples = peek_page t i in
  t.accesses <- t.accesses + 1;
  tuples

let page_size t i =
  let start, stop = bounds t i in
  stop - start

let accesses t = t.accesses

let reset_accesses t = t.accesses <- 0
