(** Relation schemas: ordered lists of named, typed attributes. *)

type attribute = { name : string; ty : Value.ty }

type t

(** [make attrs] builds a schema.
    @raise Invalid_argument on duplicate attribute names. *)
val make : attribute list -> t

(** Convenience: [of_list [("a", Tint); ...]]. *)
val of_list : (string * Value.ty) list -> t

val attributes : t -> attribute list

val arity : t -> int

val attribute : t -> int -> attribute

(** Index of the named attribute.
    @raise Not_found if absent. *)
val index_of : t -> string -> int

val index_of_opt : t -> string -> int option

val mem : t -> string -> bool

val names : t -> string list

(** [project schema names] is the sub-schema in the order of [names].
    @raise Not_found if some name is absent. *)
val project : t -> string list -> t

(** Concatenation for cross products and joins.  When both sides define
    the same attribute name, the clashing names are qualified as
    [left_prefix ^ "." ^ name] and [right_prefix ^ "." ^ name]. *)
val concat : ?left_prefix:string -> ?right_prefix:string -> t -> t -> t

(** [rename schema [(old, new_); ...]] renames attributes.
    @raise Not_found if an old name is absent.
    @raise Invalid_argument if renaming creates duplicates. *)
val rename : t -> (string * string) list -> t

(** Structural equality: same names and types in the same order. *)
val equal : t -> t -> bool

(** Union-compatibility: same arity and same types position-wise
    (names may differ, as in classical relational algebra). *)
val compatible : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
