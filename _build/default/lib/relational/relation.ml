type t = { schema : Schema.t; tuples : Tuple.t array }

let type_ok ty value =
  match value with
  | Value.Null -> true
  | _ -> Value.type_of value = ty

let check_tuple schema tuple =
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg
      (Printf.sprintf "Relation.make: tuple %s has arity %d, schema %s expects %d"
         (Tuple.to_string tuple) (Tuple.arity tuple) (Schema.to_string schema)
         (Schema.arity schema));
  Array.iteri
    (fun i v ->
      let attr = Schema.attribute schema i in
      if not (type_ok attr.Schema.ty v) then
        invalid_arg
          (Printf.sprintf "Relation.make: value %s not of type %s (attribute %s)"
             (Value.to_string v) (Value.ty_to_string attr.Schema.ty) attr.Schema.name))
    tuple

let make schema tuples =
  List.iter (check_tuple schema) tuples;
  { schema; tuples = Array.of_list tuples }

let of_array schema tuples = { schema; tuples }

let schema r = r.schema

let cardinality r = Array.length r.tuples

let is_empty r = cardinality r = 0

let tuples r = r.tuples

let tuple r i = r.tuples.(i)

let iter f r = Array.iter f r.tuples

let fold f init r = Array.fold_left f init r.tuples

let filter p r = { r with tuples = Array.of_seq (Seq.filter p (Array.to_seq r.tuples)) }

let map schema f r = { schema; tuples = Array.map f r.tuples }

let count p r =
  Array.fold_left (fun acc t -> if p t then acc + 1 else acc) 0 r.tuples

module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let distinct r =
  let seen = Tuple_hash.create (max 16 (cardinality r)) in
  let keep = ref [] in
  Array.iter
    (fun t ->
      if not (Tuple_hash.mem seen t) then begin
        Tuple_hash.add seen t ();
        keep := t :: !keep
      end)
    r.tuples;
  { r with tuples = Array.of_list (List.rev !keep) }

let is_set r =
  let seen = Tuple_hash.create (max 16 (cardinality r)) in
  let rec loop i =
    if i >= cardinality r then true
    else if Tuple_hash.mem seen r.tuples.(i) then false
    else begin
      Tuple_hash.add seen r.tuples.(i) ();
      loop (i + 1)
    end
  in
  loop 0

let column r name =
  let i = Schema.index_of r.schema name in
  Array.map (fun t -> Tuple.get t i) r.tuples

let append r1 r2 =
  if not (Schema.equal r1.schema r2.schema) then
    invalid_arg "Relation.append: schemas differ";
  { schema = r1.schema; tuples = Array.append r1.tuples r2.tuples }

let empty schema = { schema; tuples = [||] }

let to_string ?(limit = 20) r =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Schema.to_string r.schema);
  Buffer.add_string buffer (Printf.sprintf " [%d tuples]\n" (cardinality r));
  let shown = min limit (cardinality r) in
  for i = 0 to shown - 1 do
    Buffer.add_string buffer ("  " ^ Tuple.to_string r.tuples.(i) ^ "\n")
  done;
  if shown < cardinality r then Buffer.add_string buffer "  ...\n";
  Buffer.contents buffer

let pp ppf r = Format.pp_print_string ppf (to_string r)
