(** Tuples: flat arrays of values positioned by a schema. *)

type t = Value.t array

val make : Value.t list -> t

val arity : t -> int

val get : t -> int -> Value.t

(** [project tuple indices] keeps the values at [indices], in order. *)
val project : t -> int array -> t

val concat : t -> t -> t

(** Lexicographic order via {!Value.compare}. *)
val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val to_string : t -> string

val pp : Format.formatter -> t -> unit
