(** In-memory relations: a schema plus a bag (multiset) of tuples.

    Relations are immutable once built.  Classical relational algebra
    treats relations as sets; this representation keeps duplicates (bag
    semantics) because the estimators need to reason about raw tuple
    counts, and exposes {!distinct} / {!is_set} for set-semantics
    operators. *)

type t

(** [make schema tuples] checks every tuple against the schema (arity and
    per-position type; [Null] is accepted at any type).
    @raise Invalid_argument on mismatch. *)
val make : Schema.t -> Tuple.t list -> t

(** Unchecked fast path used by generators and operators that construct
    well-typed tuples by construction. *)
val of_array : Schema.t -> Tuple.t array -> t

val schema : t -> Schema.t

val cardinality : t -> int

val is_empty : t -> bool

val tuples : t -> Tuple.t array

val tuple : t -> int -> Tuple.t

val iter : (Tuple.t -> unit) -> t -> unit

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a

val filter : (Tuple.t -> bool) -> t -> t

val map : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t

(** Number of tuples satisfying the predicate. *)
val count : (Tuple.t -> bool) -> t -> int

(** Duplicate elimination (set semantics). *)
val distinct : t -> t

(** Whether the relation contains no duplicate tuples. *)
val is_set : t -> bool

(** Column values at the given attribute, in tuple order.
    @raise Not_found if the attribute is absent. *)
val column : t -> string -> Value.t array

(** Append two relations with equal schemas (bag union).
    @raise Invalid_argument if schemas differ. *)
val append : t -> t -> t

val empty : Schema.t -> t

val pp : Format.formatter -> t -> unit

(** First [n] tuples rendered one per line, for debugging. *)
val to_string : ?limit:int -> t -> string
