type t = (string, Relation.t) Hashtbl.t

let create () = Hashtbl.create 16

let add catalog name relation =
  if Hashtbl.mem catalog name then
    invalid_arg (Printf.sprintf "Catalog.add: %S already bound" name);
  Hashtbl.replace catalog name relation

let set catalog name relation = Hashtbl.replace catalog name relation

let find_opt catalog name = Hashtbl.find_opt catalog name

let find catalog name =
  match find_opt catalog name with
  | Some r -> r
  | None -> failwith (Printf.sprintf "Catalog.find: unknown relation %S" name)

let mem = Hashtbl.mem

let remove = Hashtbl.remove

let names catalog =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) catalog [])

let copy = Hashtbl.copy

let of_list bindings =
  let catalog = create () in
  List.iter (fun (name, relation) -> add catalog name relation) bindings;
  catalog
