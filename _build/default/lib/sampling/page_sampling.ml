type t = {
  page_indices : int array;
  pages : Relational.Tuple.t array array;
}

let sample rng ~m paged =
  let universe = Relational.Paged.page_count paged in
  let page_indices = Srs.indices_without_replacement rng ~n:m ~universe in
  let pages = Array.map (fun i -> Relational.Paged.page paged i) page_indices in
  { page_indices; pages }

let to_relation paged t =
  let tuples = Array.concat (Array.to_list t.pages) in
  Relational.Relation.of_array
    (Relational.Relation.schema (Relational.Paged.relation paged))
    tuples

let tuple_count t = Array.fold_left (fun acc page -> acc + Array.length page) 0 t.pages
