let size_of_fraction ~fraction n =
  if n < 0 then invalid_arg "Srs.size_of_fraction: negative universe";
  if fraction <= 0. || fraction > 1. then
    invalid_arg "Srs.size_of_fraction: fraction must be in (0, 1]";
  if n = 0 then 0
  else
    let size = int_of_float (Float.round (fraction *. float_of_int n)) in
    max 1 (min n size)

let indices_without_replacement rng ~n ~universe =
  if n < 0 then invalid_arg "Srs: negative sample size";
  if n > universe then invalid_arg "Srs: sample size exceeds universe";
  (* Floyd's algorithm: iterate j over the last n positions; insert a
     uniform pick from [0, j], replacing collisions by j itself.  Each
     size-n subset comes out equally likely. *)
  let chosen = Hashtbl.create (2 * max 1 n) in
  for j = universe - n to universe - 1 do
    let candidate = Rng.int rng (j + 1) in
    if Hashtbl.mem chosen candidate then Hashtbl.add chosen j ()
    else Hashtbl.add chosen candidate ()
  done;
  let indices = Array.make n 0 in
  let k = ref 0 in
  Hashtbl.iter
    (fun i () ->
      indices.(!k) <- i;
      incr k)
    chosen;
  Array.sort Int.compare indices;
  indices

let indices_with_replacement rng ~n ~universe =
  if n < 0 then invalid_arg "Srs: negative sample size";
  if n > 0 && universe <= 0 then invalid_arg "Srs: empty universe";
  Array.init n (fun _ -> Rng.int rng universe)

let sample_without_replacement rng ~n array =
  let indices = indices_without_replacement rng ~n ~universe:(Array.length array) in
  Array.map (fun i -> array.(i)) indices

let sample_with_replacement rng ~n array =
  let indices = indices_with_replacement rng ~n ~universe:(Array.length array) in
  Array.map (fun i -> array.(i)) indices

let relation_without_replacement rng ~n relation =
  let tuples = sample_without_replacement rng ~n (Relational.Relation.tuples relation) in
  Relational.Relation.of_array (Relational.Relation.schema relation) tuples

let relation_fraction rng ~fraction relation =
  let n = size_of_fraction ~fraction (Relational.Relation.cardinality relation) in
  relation_without_replacement rng ~n relation

let relation_with_replacement rng ~n relation =
  let tuples = sample_with_replacement rng ~n (Relational.Relation.tuples relation) in
  Relational.Relation.of_array (Relational.Relation.schema relation) tuples
