let indices rng ~n ~universe =
  if n <= 0 then invalid_arg "Systematic.indices: n must be positive";
  if n > universe then invalid_arg "Systematic.indices: n exceeds universe";
  (* Fractional step keeps the sample size exactly n for any universe. *)
  let step = float_of_int universe /. float_of_int n in
  let start = Rng.float rng *. step in
  Array.init n (fun k ->
      let i = int_of_float (start +. (float_of_int k *. step)) in
      min i (universe - 1))

let sample rng ~n array =
  let idx = indices rng ~n ~universe:(Array.length array) in
  Array.map (fun i -> array.(i)) idx

let relation rng ~n r =
  let tuples = sample rng ~n (Relational.Relation.tuples r) in
  Relational.Relation.of_array (Relational.Relation.schema r) tuples
