(** Systematic sampling: pick a random start in [0, step) and take every
    [step]-th element.  One random draw, sequential access — the classic
    cheap design, but biased for periodic data; used as a baseline
    against SRS. *)

(** [indices rng ~n ~universe] returns ~[n] evenly spaced indices (the
    exact count can differ by one depending on the random start when
    [universe mod n <> 0]).
    @raise Invalid_argument if [n <= 0] or [n > universe]. *)
val indices : Rng.t -> n:int -> universe:int -> int array

val sample : Rng.t -> n:int -> 'a array -> 'a array

val relation : Rng.t -> n:int -> Relational.Relation.t -> Relational.Relation.t
