(** Sampling over a sliding window: maintain uniform samples of the
    {e last W} stream elements using chain sampling (Babcock, Datar &
    Motwani, SODA 2002).

    Each of the [k] chains holds one uniform sample of the current
    window in O(1) expected space: when an element is sampled, the
    index of its replacement (its "successor", uniform over the W
    positions after it) is chosen in advance and recorded as it flows
    by, so expiry never needs access to the expired window.  Chains are
    independent, so {!contents} is a with-replacement size-[k] sample
    of the window. *)

type 'a t

(** [create ?k rng ~window ()] — [k] independent chains (default 1).
    @raise Invalid_argument if [window <= 0] or [k <= 0]. *)
val create : ?k:int -> Rng.t -> window:int -> unit -> 'a t

(** Feed the next stream element. *)
val add : 'a t -> 'a -> unit

(** Elements seen so far. *)
val seen : 'a t -> int

val window : 'a t -> int

(** One uniform draw from the current window per chain ([k] values,
    with replacement across chains); empty before the first element. *)
val contents : 'a t -> 'a array
