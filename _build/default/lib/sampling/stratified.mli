(** Stratified sampling: partition the universe by a key, draw an SRSWOR
    inside each stratum.  With proportional allocation the plain
    scale-up estimator stays unbiased and the variance never exceeds
    SRS; Neyman allocation minimizes the variance given per-stratum
    standard deviations. *)

type 'a stratum = { key : string; members : 'a array; allocated : int }

(** [proportional_allocation ~n sizes] splits a total sample size over
    strata proportionally to their sizes, using largest-remainder
    rounding so the total is exactly [n] and no stratum exceeds its
    population.
    @raise Invalid_argument if [n] exceeds the total population. *)
val proportional_allocation : n:int -> int array -> int array

(** [neyman_allocation ~n sizes stddevs] allocates proportionally to
    [size_h · stddev_h], largest-remainder rounded and capped at the
    stratum population (excess is redistributed).
    @raise Invalid_argument on length mismatch or infeasible [n]. *)
val neyman_allocation : n:int -> int array -> float array -> int array

(** [sample rng ~n ~key array] stratifies [array] by [key] and draws a
    proportionally-allocated SRSWOR of total size [n].  Returns the
    strata with their samples in [members]. *)
val sample : Rng.t -> n:int -> key:('a -> string) -> 'a array -> 'a stratum list

(** Flat sample (concatenation of all stratum samples). *)
val sample_flat : Rng.t -> n:int -> key:('a -> string) -> 'a array -> 'a array
