(* One chain: [chain] is the current sample followed by its recorded
   successor links (strictly increasing stream indices); [next_succ] is
   the pre-chosen index whose value the chain still needs to record. *)
type 'a chain = {
  mutable links : (int * 'a) list;
  mutable next_succ : int;
}

type 'a t = {
  rng : Rng.t;
  window : int;
  chains : 'a chain array;
  mutable seen : int;
}

let create ?(k = 1) rng ~window () =
  if window <= 0 then invalid_arg "Window.create: window must be positive";
  if k <= 0 then invalid_arg "Window.create: k must be positive";
  { rng; window; chains = Array.init k (fun _ -> { links = []; next_succ = 0 }); seen = 0 }

let pick_successor t index = index + 1 + Rng.int t.rng t.window

let add t x =
  t.seen <- t.seen + 1;
  let now = t.seen in
  Array.iter
    (fun chain ->
      (* Record a successor the chain was waiting for. *)
      if chain.next_succ = now && chain.links <> [] then begin
        chain.links <- chain.links @ [ (now, x) ];
        chain.next_succ <- pick_successor t now
      end;
      (* Admit the new element with probability 1/min(now, W). *)
      let denom = min now t.window in
      if Rng.int t.rng denom = 0 then begin
        chain.links <- [ (now, x) ];
        chain.next_succ <- pick_successor t now
      end;
      (* Expire the sample if it slid out of the window. *)
      (match chain.links with
      | (index, _) :: rest when index <= now - t.window -> chain.links <- rest
      | _ -> ()))
    t.chains

let seen t = t.seen

let window t = t.window

let contents t =
  Array.to_list t.chains
  |> List.filter_map (fun chain ->
         match chain.links with (_, x) :: _ -> Some x | [] -> None)
  |> Array.of_list
