(** Bernoulli (binomial) sampling: each element is kept independently
    with probability [p].  The sample size is random with mean [p·N];
    inclusion events are independent, which makes several variance
    formulas exact (see {!Raestat.Count_estimator}). *)

(** @raise Invalid_argument if [p] is outside [0, 1]. *)
val sample : Rng.t -> p:float -> 'a array -> 'a array

val relation : Rng.t -> p:float -> Relational.Relation.t -> Relational.Relation.t

(** Expected sample size. *)
val expected_size : p:float -> int -> float
