let check_weight w =
  if w < 0. || Float.is_nan w then invalid_arg "Weighted: negative weight"

let reservoir rng ~k ~weight items =
  if k < 0 then invalid_arg "Weighted.reservoir: negative k";
  (* A-ES: key u^(1/w) per item, keep the k largest keys.  log-space
     keys (log u / w) avoid underflow for tiny weights. *)
  let keyed =
    Array.to_list items
    |> List.filter_map (fun item ->
           let w = weight item in
           check_weight w;
           if w = 0. then None
           else Some (log (Rng.positive_float rng) /. w, item))
  in
  let sorted = List.sort (fun (k1, _) (k2, _) -> Float.compare k2 k1) keyed in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (_, item) :: rest -> item :: take (n - 1) rest
  in
  Array.of_list (take k sorted)

let inclusion_probabilities ~expected_n weights =
  Array.iter check_weight weights;
  if expected_n <= 0. then
    invalid_arg "Weighted.inclusion_probabilities: expected_n must be positive";
  let positive = Array.fold_left (fun acc w -> if w > 0. then acc + 1 else acc) 0 weights in
  if expected_n > float_of_int positive +. 1e-9 then
    invalid_arg "Weighted.inclusion_probabilities: expected_n exceeds positive-weight items";
  let total ~c = Array.fold_left (fun acc w -> acc +. Float.min 1. (c *. w)) 0. weights in
  (* Σ min(1, c·w) is continuous and non-decreasing in c: bisect. *)
  let lo = ref 0. in
  let hi = ref 1. in
  while total ~c:!hi < expected_n && !hi < 1e300 do
    hi := !hi *. 2.
  done;
  for _ = 1 to 100 do
    let mid = 0.5 *. (!lo +. !hi) in
    if total ~c:mid < expected_n then lo := mid else hi := mid
  done;
  let c = !hi in
  Array.map (fun w -> Float.min 1. (c *. w)) weights

let poisson rng ~expected_n ~weight items =
  let weights = Array.map weight items in
  let probabilities = inclusion_probabilities ~expected_n weights in
  let selected = ref [] in
  Array.iteri
    (fun i item ->
      if probabilities.(i) > 0. && Rng.float rng < probabilities.(i) then
        selected := (item, probabilities.(i)) :: !selected)
    items;
  Array.of_list (List.rev !selected)
