(** Unequal-probability (weighted) sampling designs.

    Two classics:
    - {!reservoir}: Efraimidis–Spirakis A-ES — a weighted reservoir
      giving each item the successive-sampling inclusion law
      (probability proportional to weight at every step);
    - {!poisson}: independent inclusion with probabilities
      [π_i = min(1, c·w_i)], [c] calibrated so [Σ π_i] equals the
      requested expected size — the design under which the
      Horvitz–Thompson estimator has a closed-form variance. *)

(** [reservoir rng ~k ~weight items] draws [k] items (fewer if the
    input is shorter) without replacement, probability proportional to
    weight at each successive draw.  Zero-weight items are never
    selected; negative weights are rejected.
    @raise Invalid_argument if [k < 0] or some weight is negative. *)
val reservoir : Rng.t -> k:int -> weight:('a -> float) -> 'a array -> 'a array

(** [inclusion_probabilities ~expected_n weights] — the calibrated
    [π_i = min(1, c·w_i)] with [Σ π_i = expected_n] (up to items capped
    at 1; feasible whenever [expected_n <= number of positive weights]).
    @raise Invalid_argument on negative weights, non-positive
    [expected_n], or an infeasible target. *)
val inclusion_probabilities : expected_n:float -> float array -> float array

(** [poisson rng ~expected_n ~weight items] — Poisson-sample with the
    calibrated probabilities; returns the selected items paired with
    their inclusion probabilities (needed by Horvitz–Thompson). *)
val poisson :
  Rng.t -> expected_n:float -> weight:('a -> float) -> 'a array -> ('a * float) array
