lib/sampling/page_sampling.mli: Relational Rng
