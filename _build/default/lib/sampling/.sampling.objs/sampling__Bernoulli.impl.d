lib/sampling/bernoulli.ml: Array List Relational Rng
