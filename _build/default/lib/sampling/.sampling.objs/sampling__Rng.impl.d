lib/sampling/rng.ml: Array Int64
