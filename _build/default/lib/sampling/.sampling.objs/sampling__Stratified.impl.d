lib/sampling/stratified.ml: Array Float Hashtbl List Srs
