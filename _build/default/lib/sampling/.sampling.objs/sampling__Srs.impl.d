lib/sampling/srs.ml: Array Float Hashtbl Int Relational Rng
