lib/sampling/bernoulli.mli: Relational Rng
