lib/sampling/systematic.ml: Array Relational Rng
