lib/sampling/page_sampling.ml: Array Relational Srs
