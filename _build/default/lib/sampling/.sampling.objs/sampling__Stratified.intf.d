lib/sampling/stratified.mli: Rng
