lib/sampling/window.ml: Array List Rng
