lib/sampling/systematic.mli: Relational Rng
