lib/sampling/reservoir.ml: Array Float Rng
