lib/sampling/rng.mli:
