lib/sampling/window.mli: Rng
