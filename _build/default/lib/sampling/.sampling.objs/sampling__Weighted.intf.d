lib/sampling/weighted.mli: Rng
