lib/sampling/weighted.ml: Array Float List Rng
