lib/sampling/srs.mli: Relational Rng
