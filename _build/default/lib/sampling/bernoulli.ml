let check_p p =
  if p < 0. || p > 1. then invalid_arg "Bernoulli: p must be in [0, 1]"

let sample rng ~p array =
  check_p p;
  let kept = ref [] in
  Array.iter (fun x -> if Rng.float rng < p then kept := x :: !kept) array;
  Array.of_list (List.rev !kept)

let relation rng ~p r =
  let tuples = sample rng ~p (Relational.Relation.tuples r) in
  Relational.Relation.of_array (Relational.Relation.schema r) tuples

let expected_size ~p n =
  check_p p;
  p *. float_of_int n
