(** Reservoir sampling: maintain a uniform SRSWOR of fixed capacity [k]
    over a stream of unknown length.

    Two classic algorithms: Vitter's Algorithm R (one random draw per
    element) and Algorithm L (geometric skips; O(k·(1 + log(N/k)))
    draws).  Both maintain the invariant that after [n] elements each of
    them is in the reservoir with probability [min 1 (k/n)]. *)

type 'a t

(** @raise Invalid_argument if [capacity <= 0]. *)
val create : ?algorithm:[ `R | `L ] -> Rng.t -> capacity:int -> 'a t

val add : 'a t -> 'a -> unit

(** Number of stream elements observed so far. *)
val seen : 'a t -> int

val capacity : 'a t -> int

(** Current sample, in unspecified order; length [min capacity seen]. *)
val contents : 'a t -> 'a array

(** Feed a whole array through the reservoir. *)
val add_all : 'a t -> 'a array -> unit

(** One-shot SRSWOR of size [min k (length array)] via a reservoir. *)
val sample : ?algorithm:[ `R | `L ] -> Rng.t -> k:int -> 'a array -> 'a array
