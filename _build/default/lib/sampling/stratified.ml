type 'a stratum = { key : string; members : 'a array; allocated : int }

(* Largest-remainder rounding of real allocations [targets] (which sum
   to n) to integers summing to n, respecting per-stratum caps. *)
let round_allocation ~n targets caps =
  let k = Array.length targets in
  let alloc = Array.map (fun t -> int_of_float (Float.floor t)) targets in
  Array.iteri (fun h a -> alloc.(h) <- min a caps.(h)) alloc;
  let remainder h = targets.(h) -. float_of_int alloc.(h) in
  let order = Array.init k (fun h -> h) in
  Array.sort (fun h1 h2 -> Float.compare (remainder h2) (remainder h1)) order;
  let assigned = ref (Array.fold_left ( + ) 0 alloc) in
  (* First pass: hand out the leftover units by decreasing remainder. *)
  Array.iter
    (fun h ->
      if !assigned < n && alloc.(h) < caps.(h) then begin
        alloc.(h) <- alloc.(h) + 1;
        incr assigned
      end)
    order;
  (* The caps may still leave units unassigned; push them anywhere with
     room (the total is feasible by precondition). *)
  let h = ref 0 in
  while !assigned < n do
    if alloc.(!h) < caps.(!h) then begin
      alloc.(!h) <- alloc.(!h) + 1;
      incr assigned
    end
    else incr h
  done;
  alloc

let proportional_allocation ~n sizes =
  let total = Array.fold_left ( + ) 0 sizes in
  if n < 0 || n > total then
    invalid_arg "Stratified.proportional_allocation: infeasible sample size";
  if total = 0 then Array.map (fun _ -> 0) sizes
  else
    let targets =
      Array.map (fun size -> float_of_int n *. float_of_int size /. float_of_int total) sizes
    in
    round_allocation ~n targets sizes

let neyman_allocation ~n sizes stddevs =
  if Array.length sizes <> Array.length stddevs then
    invalid_arg "Stratified.neyman_allocation: length mismatch";
  let total = Array.fold_left ( + ) 0 sizes in
  if n < 0 || n > total then
    invalid_arg "Stratified.neyman_allocation: infeasible sample size";
  let weights = Array.mapi (fun h size -> float_of_int size *. stddevs.(h)) sizes in
  let weight_sum = Array.fold_left ( +. ) 0. weights in
  if weight_sum <= 0. then proportional_allocation ~n sizes
  else
    let targets = Array.map (fun w -> float_of_int n *. w /. weight_sum) weights in
    round_allocation ~n targets sizes

let stratify ~key array =
  let table = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt table k with
      | Some members -> members := x :: !members
      | None ->
        Hashtbl.add table k (ref [ x ]);
        order := k :: !order)
    array;
  List.rev_map
    (fun k ->
      let members = Array.of_list (List.rev !(Hashtbl.find table k)) in
      (k, members))
    !order
  |> List.rev

let sample rng ~n ~key array =
  let strata = stratify ~key array in
  let sizes = Array.of_list (List.map (fun (_, members) -> Array.length members) strata) in
  let alloc = proportional_allocation ~n sizes in
  List.mapi
    (fun h (k, members) ->
      let chosen = Srs.sample_without_replacement rng ~n:alloc.(h) members in
      { key = k; members = chosen; allocated = alloc.(h) })
    strata

let sample_flat rng ~n ~key array =
  sample rng ~n ~key array
  |> List.map (fun stratum -> Array.to_list stratum.members)
  |> List.concat
  |> Array.of_list
