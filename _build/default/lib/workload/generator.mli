(** Synthetic relation generators. *)

(** [relation rng ~n specs] builds a relation with one integer column
    per [(name, dist)] spec, all columns drawn independently.
    @raise Invalid_argument if [n < 0] or [specs] is empty. *)
val relation : Sampling.Rng.t -> n:int -> (string * Dist.t) list -> Relational.Relation.t

(** [int_relation rng ~n ~attribute dist] — single-column shorthand. *)
val int_relation :
  Sampling.Rng.t -> n:int -> attribute:string -> Dist.t -> Relational.Relation.t

(** [of_columns specs] builds a relation from explicit integer columns
    (all the same length).
    @raise Invalid_argument on length mismatch or empty specs. *)
val of_columns : (string * int array) list -> Relational.Relation.t

(** Random row order (uniform permutation) — destroys page locality. *)
val shuffle : Sampling.Rng.t -> Relational.Relation.t -> Relational.Relation.t

(** Sort rows by an attribute — maximizes page locality on that key.
    @raise Not_found if the attribute is absent. *)
val sort_by : string -> Relational.Relation.t -> Relational.Relation.t

(** [set_pair rng ~card_left ~card_right ~overlap ~attribute] builds
    two duplicate-free single-column relations whose intersection has
    exactly [overlap] tuples (values are distinct integers; both
    relations are shuffled).
    @raise Invalid_argument if [overlap > min card_left card_right]. *)
val set_pair :
  Sampling.Rng.t ->
  card_left:int ->
  card_right:int ->
  overlap:int ->
  attribute:string ->
  Relational.Relation.t * Relational.Relation.t

(** [clustered rng ~n ~dims ~clusters ~domain ~spread] — tuples fall
    into [clusters] random hyper-rectangle centres in
    [0, domain)^dims, offset by a rounded gaussian of standard
    deviation [spread]; coordinates are clamped into the domain.
    Mimics the sparse clustered data of the classic generators.
    Attributes are named ["x0"], ["x1"], ... *)
val clustered :
  Sampling.Rng.t ->
  n:int ->
  dims:int ->
  clusters:int ->
  domain:int ->
  spread:float ->
  Relational.Relation.t
