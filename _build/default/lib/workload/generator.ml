module Relation = Relational.Relation
module Schema = Relational.Schema
module Value = Relational.Value

let int_schema names = Schema.of_list (List.map (fun name -> (name, Value.Tint)) names)

let relation rng ~n specs =
  if n < 0 then invalid_arg "Generator.relation: negative cardinality";
  if specs = [] then invalid_arg "Generator.relation: no columns";
  let schema = int_schema (List.map fst specs) in
  let samplers = Array.of_list (List.map (fun (_, d) -> Dist.compile d) specs) in
  let tuples =
    Array.init n (fun _ ->
        Array.map (fun sampler -> Value.Int (sampler rng)) samplers)
  in
  Relation.of_array schema tuples

let int_relation rng ~n ~attribute dist = relation rng ~n [ (attribute, dist) ]

let of_columns specs =
  if specs = [] then invalid_arg "Generator.of_columns: no columns";
  let lengths = List.map (fun (_, col) -> Array.length col) specs in
  let n = List.hd lengths in
  if List.exists (fun l -> l <> n) lengths then
    invalid_arg "Generator.of_columns: column length mismatch";
  let schema = int_schema (List.map fst specs) in
  let columns = Array.of_list (List.map snd specs) in
  let tuples =
    Array.init n (fun i -> Array.map (fun col -> Value.Int col.(i)) columns)
  in
  Relation.of_array schema tuples

let shuffle rng r =
  let tuples = Array.copy (Relation.tuples r) in
  Sampling.Rng.shuffle_in_place rng tuples;
  Relation.of_array (Relation.schema r) tuples

let sort_by attribute r =
  let i = Schema.index_of (Relation.schema r) attribute in
  let tuples = Array.copy (Relation.tuples r) in
  Array.sort
    (fun t1 t2 -> Value.compare (Relational.Tuple.get t1 i) (Relational.Tuple.get t2 i))
    tuples;
  Relation.of_array (Relation.schema r) tuples

let set_pair rng ~card_left ~card_right ~overlap ~attribute =
  if overlap < 0 || overlap > min card_left card_right then
    invalid_arg "Generator.set_pair: overlap out of range";
  (* Left gets values [0, card_left); right reuses the first [overlap]
     of them and continues with fresh values. *)
  let left = Array.init card_left (fun i -> i) in
  let right =
    Array.init card_right (fun i ->
        if i < overlap then i else card_left + (i - overlap))
  in
  let build values =
    let r = of_columns [ (attribute, values) ] in
    shuffle rng r
  in
  (build left, build right)

let clustered rng ~n ~dims ~clusters ~domain ~spread =
  if dims <= 0 || clusters <= 0 || domain <= 0 then
    invalid_arg "Generator.clustered: dims, clusters, domain must be positive";
  if spread < 0. then invalid_arg "Generator.clustered: negative spread";
  let centres =
    Array.init clusters (fun _ ->
        Array.init dims (fun _ -> Sampling.Rng.int rng domain))
  in
  let names = List.init dims (fun d -> Printf.sprintf "x%d" d) in
  let schema = int_schema names in
  let clamp x = max 0 (min (domain - 1) x) in
  let tuples =
    Array.init n (fun _ ->
        let centre = centres.(Sampling.Rng.int rng clusters) in
        Array.init dims (fun d ->
            let offset =
              int_of_float (Float.round (spread *. Sampling.Rng.gaussian rng))
            in
            Value.Int (clamp (centre.(d) + offset))))
  in
  Relation.of_array schema tuples
