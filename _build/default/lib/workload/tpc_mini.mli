(** A miniature TPC-style sales schema for realistic multi-relation
    examples and the composite-expression experiments.

    {v
    suppliers(s_key, s_region, s_balance)
    parts(p_key, p_type, p_size)
    orders(o_key, o_supplier, o_part, o_quantity, o_price)
    v}

    [o_supplier]/[o_part] are Zipf-skewed foreign keys into suppliers
    and parts, so join sizes are non-trivial and skew-sensitive. *)

type sizes = { suppliers : int; parts : int; orders : int }

val default_sizes : sizes

(** Number of supplier regions (region ids are 0..regions−1). *)
val regions : int

(** Number of part types. *)
val part_types : int

(** Generate the three relations and bind them in a fresh catalog under
    the names ["suppliers"], ["parts"], ["orders"]. *)
val catalog : Sampling.Rng.t -> ?sizes:sizes -> unit -> Relational.Catalog.t

(** Orders joined with their suppliers and parts (the canonical 3-way
    chain query), with optional extra filters. *)
val chain_query :
  ?supplier_filter:Relational.Predicate.t ->
  ?order_filter:Relational.Predicate.t ->
  unit ->
  Relational.Expr.t
