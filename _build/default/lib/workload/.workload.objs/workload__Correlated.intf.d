lib/workload/correlated.mli: Relational Sampling
