lib/workload/queries.mli: Relational
