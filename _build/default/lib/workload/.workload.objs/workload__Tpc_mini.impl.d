lib/workload/tpc_mini.ml: Array Dist Generator Relational
