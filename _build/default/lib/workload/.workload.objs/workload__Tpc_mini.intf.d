lib/workload/tpc_mini.mli: Relational Sampling
