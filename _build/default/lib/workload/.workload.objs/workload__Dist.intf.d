lib/workload/dist.mli: Sampling
