lib/workload/correlated.ml: Array Dist Float Generator Printf Sampling
