lib/workload/dist.ml: Array Float Printf Sampling
