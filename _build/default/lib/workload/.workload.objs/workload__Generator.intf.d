lib/workload/generator.mli: Dist Relational Sampling
