lib/workload/generator.ml: Array Dist Float List Printf Relational Sampling
