lib/workload/queries.ml: Float List Relational
