type t =
  | Constant of int
  | Uniform of { lo : int; hi : int }
  | Zipf of { n_values : int; skew : float }
  | Normal of { mean : float; stddev : float }
  | Self_similar of { n_values : int; h : float }
  | Exponential of { mean : float }

let zipf_probabilities ~n_values ~skew =
  if n_values <= 0 then invalid_arg "Dist: n_values must be positive";
  if skew < 0. then invalid_arg "Dist: skew must be non-negative";
  let weights =
    Array.init n_values (fun i -> 1. /. (float_of_int (i + 1) ** skew))
  in
  let total = Array.fold_left ( +. ) 0. weights in
  Array.map (fun w -> w /. total) weights

(* Inverse-CDF sampler over a probability vector via binary search on
   the cumulative array. *)
let categorical_sampler probabilities =
  let n = Array.length probabilities in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    probabilities;
  cdf.(n - 1) <- 1.;
  fun rng ->
    let u = Sampling.Rng.float rng in
    (* Smallest index with cdf.(i) >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo

let compile = function
  | Constant c -> fun _ -> c
  | Uniform { lo; hi } ->
    if hi < lo then invalid_arg "Dist: Uniform with hi < lo";
    let span = hi - lo + 1 in
    fun rng -> lo + Sampling.Rng.int rng span
  | Zipf { n_values; skew } ->
    let sampler = categorical_sampler (zipf_probabilities ~n_values ~skew) in
    sampler
  | Normal { mean; stddev } ->
    if stddev < 0. then invalid_arg "Dist: Normal with negative stddev";
    fun rng ->
      int_of_float (Float.round (mean +. (stddev *. Sampling.Rng.gaussian rng)))
  | Self_similar { n_values; h } ->
    if n_values <= 0 then invalid_arg "Dist: n_values must be positive";
    if h <= 0.5 || h >= 1. then invalid_arg "Dist: Self_similar h outside (0.5, 1)";
    fun rng ->
      (* Recursive 80-20 rule: repeatedly zoom into the hot (probability
         h) cold-start prefix of the remaining range. *)
      let rec zoom lo len =
        if len <= 1 then lo
        else
          let hot = max 1 (int_of_float (Float.round ((1. -. h) *. float_of_int len))) in
          if Sampling.Rng.float rng < h then zoom lo hot
          else zoom (lo + hot) (len - hot)
      in
      zoom 0 n_values
  | Exponential { mean } ->
    if mean <= 0. then invalid_arg "Dist: Exponential mean must be positive";
    fun rng ->
      int_of_float (Float.floor (-.mean *. log (Sampling.Rng.positive_float rng)))

let to_string = function
  | Constant c -> Printf.sprintf "const(%d)" c
  | Uniform { lo; hi } -> Printf.sprintf "uniform[%d,%d]" lo hi
  | Zipf { n_values; skew } -> Printf.sprintf "zipf(n=%d,z=%g)" n_values skew
  | Normal { mean; stddev } -> Printf.sprintf "normal(%g,%g)" mean stddev
  | Self_similar { n_values; h } -> Printf.sprintf "selfsim(n=%d,h=%g)" n_values h
  | Exponential { mean } -> Printf.sprintf "exp(%g)" mean
