module Expr = Relational.Expr

type sizes = { suppliers : int; parts : int; orders : int }

let default_sizes = { suppliers = 1_000; parts = 2_000; orders = 20_000 }

let regions = 5

let part_types = 20

let catalog rng ?(sizes = default_sizes) () =
  let suppliers =
    Generator.of_columns
      [
        ("s_key", Array.init sizes.suppliers (fun i -> i));
        ( "s_region",
          let sampler = Dist.compile (Dist.Uniform { lo = 0; hi = regions - 1 }) in
          Array.init sizes.suppliers (fun _ -> sampler rng) );
        ( "s_balance",
          let sampler = Dist.compile (Dist.Normal { mean = 5_000.; stddev = 2_000. }) in
          Array.init sizes.suppliers (fun _ -> max 0 (sampler rng)) );
      ]
  in
  let parts =
    Generator.of_columns
      [
        ("p_key", Array.init sizes.parts (fun i -> i));
        ( "p_type",
          let sampler = Dist.compile (Dist.Uniform { lo = 0; hi = part_types - 1 }) in
          Array.init sizes.parts (fun _ -> sampler rng) );
        ( "p_size",
          let sampler = Dist.compile (Dist.Uniform { lo = 1; hi = 50 }) in
          Array.init sizes.parts (fun _ -> sampler rng) );
      ]
  in
  let orders =
    let supplier_fk = Dist.compile (Dist.Zipf { n_values = sizes.suppliers; skew = 0.8 }) in
    let part_fk = Dist.compile (Dist.Zipf { n_values = sizes.parts; skew = 0.5 }) in
    let quantity = Dist.compile (Dist.Exponential { mean = 8. }) in
    let price = Dist.compile (Dist.Normal { mean = 120.; stddev = 60. }) in
    Generator.of_columns
      [
        ("o_key", Array.init sizes.orders (fun i -> i));
        ("o_supplier", Array.init sizes.orders (fun _ -> supplier_fk rng));
        ("o_part", Array.init sizes.orders (fun _ -> part_fk rng));
        ("o_quantity", Array.init sizes.orders (fun _ -> 1 + quantity rng));
        ("o_price", Array.init sizes.orders (fun _ -> max 1 (price rng)));
      ]
  in
  Relational.Catalog.of_list
    [ ("suppliers", suppliers); ("parts", parts); ("orders", orders) ]

let chain_query ?supplier_filter ?order_filter () =
  let orders =
    match order_filter with
    | Some p -> Expr.select p (Expr.base "orders")
    | None -> Expr.base "orders"
  in
  let suppliers =
    match supplier_filter with
    | Some p -> Expr.select p (Expr.base "suppliers")
    | None -> Expr.base "suppliers"
  in
  Expr.equijoin
    [ ("o_part", "p_key") ]
    (Expr.equijoin [ ("o_supplier", "s_key") ] orders suppliers)
    (Expr.base "parts")
