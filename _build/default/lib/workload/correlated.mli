(** Join-column pairs with controlled correlation between the two
    relations' frequency profiles.

    Both columns draw values from the same domain [0, domain) with
    Zipfian frequency {e ranks}; the correlation mode decides how ranks
    map to concrete values on each side:

    - [Positive]: identical rank→value mapping — hot values coincide
      (the self-join-like case where sketches shine and sampling
      struggles least at high skew).
    - [Weak_positive p]: the right side's mapping permutes a fraction
      [p] of the values.
    - [Independent]: independent random mappings.
    - [Negative]: the right side reverses the mapping — the hottest
      left value is the coldest right value. *)

type correlation =
  | Positive
  | Weak_positive of float
  | Independent
  | Negative

val correlation_to_string : correlation -> string

(** [pair rng ~n_left ~n_right ~domain ~skew_left ~skew_right c
    ~attribute] builds the two single-column relations.
    @raise Invalid_argument on non-positive sizes/domain or a
    [Weak_positive] fraction outside [0, 1]. *)
val pair :
  Sampling.Rng.t ->
  n_left:int ->
  n_right:int ->
  domain:int ->
  skew_left:float ->
  skew_right:float ->
  correlation ->
  attribute:string ->
  Relational.Relation.t * Relational.Relation.t

(** [smooth_pair] is {!pair} with the identity rank→value mapping kept
    monotone on both sides (orderly mapping ⇒ smooth frequency
    functions over the value axis), still honouring the correlation
    mode for the right side. *)
val smooth_pair :
  Sampling.Rng.t ->
  n_left:int ->
  n_right:int ->
  domain:int ->
  skew_left:float ->
  skew_right:float ->
  correlation ->
  attribute:string ->
  Relational.Relation.t * Relational.Relation.t
