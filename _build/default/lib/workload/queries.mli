(** Query templates used by the experiments. *)

(** [range_for_selectivity ~lo ~hi ~selectivity attribute] — a
    one-sided range predicate [attribute <= threshold] whose selectivity
    over a {e uniform} [lo..hi] column is approximately [selectivity].
    @raise Invalid_argument if [selectivity] outside [0, 1] or
    [hi < lo]. *)
val range_for_selectivity :
  lo:int -> hi:int -> selectivity:float -> string -> Relational.Predicate.t

(** [equality_on attribute v] — [attribute = v]. *)
val equality_on : string -> int -> Relational.Predicate.t

(** Single equi-join of two base relations on one attribute pair. *)
val single_join :
  left:string -> right:string -> on:string * string -> Relational.Expr.t

(** Chain of equi-joins: [r0 ⋈ r1 ⋈ ... ⋈ rk], consecutive relations
    joined on the given attribute pairs.
    @raise Invalid_argument unless there is exactly one join pair per
    consecutive relation pair. *)
val chain_join :
  relations:string list -> on:(string * string) list -> Relational.Expr.t

(** Selection–join–selection sandwich: filter both inputs then join. *)
val filtered_join :
  left:string ->
  left_filter:Relational.Predicate.t ->
  right:string ->
  right_filter:Relational.Predicate.t ->
  on:string * string ->
  Relational.Expr.t
