(** Integer value distributions for synthetic data.

    A distribution describes how attribute values are drawn; {!compile}
    precomputes lookup tables (e.g. the Zipf CDF) and returns a fast
    sampler. *)

type t =
  | Constant of int
  | Uniform of { lo : int; hi : int }  (** inclusive bounds *)
  | Zipf of { n_values : int; skew : float }
      (** values 0..n_values−1; value rank i has probability
          ∝ 1/(i+1)^skew.  [skew = 0] is uniform. *)
  | Normal of { mean : float; stddev : float }
      (** rounded to the nearest integer *)
  | Self_similar of { n_values : int; h : float }
      (** 80–20-style: fraction [h] of the mass on the first
          [1−h] fraction of values, recursively. *)
  | Exponential of { mean : float }  (** rounded down, ≥ 0 *)

(** @raise Invalid_argument on malformed parameters ([hi < lo],
    [n_values <= 0], [skew < 0], [stddev < 0], [h] outside (0.5, 1),
    [mean <= 0] for exponential). *)
val compile : t -> Sampling.Rng.t -> int

(** Exact probability of each value 0..n_values−1 under a Zipf
    distribution (used by tests and oracle computations). *)
val zipf_probabilities : n_values:int -> skew:float -> float array

val to_string : t -> string
