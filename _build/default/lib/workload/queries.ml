module Expr = Relational.Expr
module Predicate = Relational.Predicate

let range_for_selectivity ~lo ~hi ~selectivity attribute =
  if selectivity < 0. || selectivity > 1. then
    invalid_arg "Queries.range_for_selectivity: selectivity outside [0, 1]";
  if hi < lo then invalid_arg "Queries.range_for_selectivity: hi < lo";
  let span = float_of_int (hi - lo + 1) in
  let threshold = lo - 1 + int_of_float (Float.round (selectivity *. span)) in
  Predicate.le (Predicate.attr attribute) (Predicate.vint threshold)

let equality_on attribute v =
  Predicate.eq (Predicate.attr attribute) (Predicate.vint v)

let single_join ~left ~right ~on = Expr.equijoin [ on ] (Expr.base left) (Expr.base right)

let chain_join ~relations ~on =
  match relations with
  | [] -> invalid_arg "Queries.chain_join: no relations"
  | first :: rest ->
    if List.length rest <> List.length on then
      invalid_arg "Queries.chain_join: need one join pair per consecutive relation pair";
    List.fold_left2
      (fun acc relation pair -> Expr.equijoin [ pair ] acc (Expr.base relation))
      (Expr.base first) rest on

let filtered_join ~left ~left_filter ~right ~right_filter ~on =
  Expr.equijoin [ on ]
    (Expr.select left_filter (Expr.base left))
    (Expr.select right_filter (Expr.base right))
