type correlation =
  | Positive
  | Weak_positive of float
  | Independent
  | Negative

let correlation_to_string = function
  | Positive -> "positive"
  | Weak_positive p -> Printf.sprintf "weak-positive(%g)" p
  | Independent -> "independent"
  | Negative -> "negative"

let identity_mapping domain = Array.init domain (fun i -> i)

let random_mapping rng domain =
  let mapping = identity_mapping domain in
  Sampling.Rng.shuffle_in_place rng mapping;
  mapping

let reverse_mapping mapping =
  let domain = Array.length mapping in
  Array.init domain (fun i -> mapping.(domain - 1 - i))

let partial_permutation rng mapping fraction =
  if fraction < 0. || fraction > 1. then
    invalid_arg "Correlated: Weak_positive fraction outside [0, 1]";
  let domain = Array.length mapping in
  let perturbed = Array.copy mapping in
  let k = int_of_float (Float.round (fraction *. float_of_int domain)) in
  if k >= 2 then begin
    (* Shuffle the images of k randomly chosen positions. *)
    let positions = Sampling.Srs.indices_without_replacement rng ~n:k ~universe:domain in
    let images = Array.map (fun i -> perturbed.(i)) positions in
    Sampling.Rng.shuffle_in_place rng images;
    Array.iteri (fun k_idx i -> perturbed.(i) <- images.(k_idx)) positions
  end;
  perturbed

let column rng ~n ~domain ~skew mapping =
  let sampler = Dist.compile (Dist.Zipf { n_values = domain; skew }) in
  Array.init n (fun _ -> mapping.(sampler rng))

let make_pair rng ~n_left ~n_right ~domain ~skew_left ~skew_right correlation ~attribute
    ~base_mapping =
  if n_left <= 0 || n_right <= 0 || domain <= 0 then
    invalid_arg "Correlated.pair: sizes and domain must be positive";
  let left_mapping = base_mapping in
  let right_mapping =
    match correlation with
    | Positive -> left_mapping
    | Weak_positive fraction -> partial_permutation rng left_mapping fraction
    | Independent -> random_mapping rng domain
    | Negative -> reverse_mapping left_mapping
  in
  let left = column rng ~n:n_left ~domain ~skew:skew_left left_mapping in
  let right = column rng ~n:n_right ~domain ~skew:skew_right right_mapping in
  ( Generator.of_columns [ (attribute, left) ],
    Generator.of_columns [ (attribute, right) ] )

let pair rng ~n_left ~n_right ~domain ~skew_left ~skew_right correlation ~attribute =
  let base_mapping = random_mapping rng domain in
  make_pair rng ~n_left ~n_right ~domain ~skew_left ~skew_right correlation ~attribute
    ~base_mapping

let smooth_pair rng ~n_left ~n_right ~domain ~skew_left ~skew_right correlation ~attribute =
  let base_mapping = identity_mapping domain in
  make_pair rng ~n_left ~n_right ~domain ~skew_left ~skew_right correlation ~attribute
    ~base_mapping
