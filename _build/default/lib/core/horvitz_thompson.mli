(** Horvitz–Thompson estimation under unequal-probability (Poisson)
    sampling — the optimal companion to SUM over skewed data.

    With inclusion probabilities [π_i] and per-tuple contributions
    [y_i], the HT estimator [Σ_{i∈S} y_i/π_i] is unbiased for [Σ y_i];
    under Poisson sampling its variance is
    [Σ (1−π_i)/π_i · y_i²], unbiasedly estimated from the sample by
    [Σ_{i∈S} (1−π_i)/π_i² · y_i²].  Sampling proportional to [|y_i|]
    (size-biased / PPS) drives the variance toward 0 for exact
    proportionality — dramatically better than SRS on skewed amounts
    (ablation A8). *)

(** [sum rng catalog ~relation ~attribute ~expected_n ?where ()] —
    PPS-Poisson sample with weights [|attribute|] (tuples failing
    [where] contribute weight and value 0) and HT-estimate
    [SUM(attribute) over σ_where(relation)].
    @raise Invalid_argument on a non-positive [expected_n] or a
    relation whose qualifying weights are all zero. *)
val sum :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  attribute:string ->
  expected_n:float ->
  ?where:Relational.Predicate.t ->
  unit ->
  Stats.Estimate.t

(** HT from an explicit sample: contributions paired with their
    inclusion probabilities.
    @raise Invalid_argument if some probability is outside (0, 1]. *)
val of_sample : (float * float) array -> Stats.Estimate.t
