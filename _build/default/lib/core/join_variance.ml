module Relation = Relational.Relation
module Value = Relational.Value

module Value_hash = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type profile = int Value_hash.t

let profile relation attribute =
  let column = Relation.column relation attribute in
  let table = Value_hash.create (max 16 (Array.length column)) in
  Array.iter
    (fun v ->
      let current = try Value_hash.find table v with Not_found -> 0 in
      Value_hash.replace table v (current + 1))
    column;
  table

let distinct = Value_hash.length

let moment k table =
  Value_hash.fold (fun _ a acc -> acc +. (float_of_int a ** float_of_int k)) table 0.

let moment1 = moment 1

let moment2 = moment 2

let join_size p1 p2 =
  (* Iterate over the smaller profile. *)
  let small, large = if Value_hash.length p1 <= Value_hash.length p2 then (p1, p2) else (p2, p1) in
  Value_hash.fold
    (fun v a acc ->
      match Value_hash.find_opt large v with
      | Some b -> acc +. (float_of_int a *. float_of_int b)
      | None -> acc)
    small 0.

let check_rate q =
  if q <= 0. || q > 1. then invalid_arg "Join_variance: Bernoulli rate outside (0, 1]"

let oracle_variance ~q1 ~q2 p1 p2 =
  check_rate q1;
  check_rate q2;
  let small, large, qs, ql =
    if Value_hash.length p1 <= Value_hash.length p2 then (p1, p2, q1, q2)
    else (p2, p1, q2, q1)
  in
  let second_moment count q =
    let c = float_of_int count in
    (c *. q *. (1. -. q)) +. (c *. c *. q *. q)
  in
  let var_x =
    Value_hash.fold
      (fun v a acc ->
        match Value_hash.find_opt large v with
        | Some b ->
          let af = float_of_int a and bf = float_of_int b in
          acc
          +. (second_moment a qs *. second_moment b ql)
          -. (qs *. qs *. ql *. ql *. af *. af *. bf *. bf)
        | None -> acc)
      small 0.
  in
  var_x /. (q1 *. q1 *. q2 *. q2)

let self_join_size = moment2
