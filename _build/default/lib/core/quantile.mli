(** Quantile (median, percentile) estimation from an SRSWOR, with
    distribution-free order-statistic confidence intervals.

    The point estimate is the sample τ-quantile.  For the interval,
    the number of sample values below the true quantile is
    Binomial(n, τ) under with-replacement sampling (hypergeometric —
    tighter — under SRSWOR, so the binomial bound stays conservative):
    ranks [l ≤ u] with [P(l ≤ Bin(n, τ) < u) ≥ level] give
    [[X_(l+1), X_(u)]] as a ≥[level] CI for the population
    τ-quantile. *)

type result = {
  estimate : Stats.Estimate.t;  (** point = sample quantile; no variance *)
  interval : Stats.Confidence.interval;
  lo_rank : int;  (** 1-based order-statistic ranks backing the interval *)
  hi_rank : int;
}

(** [estimate rng catalog ~relation ~attribute ~tau ~n ?level ()] —
    [tau] in (0, 1); the attribute must be numeric ([Null]s are
    excluded).
    @raise Invalid_argument on bad [tau]/[n]/[level] or when every
    sampled value is [Null]. *)
val estimate :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  attribute:string ->
  tau:float ->
  n:int ->
  ?level:float ->
  unit ->
  result

(** Median shorthand ([tau = 0.5]). *)
val median :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  attribute:string ->
  n:int ->
  ?level:float ->
  unit ->
  result

(** Exact population quantile (linear interpolation), for evaluation. *)
val exact :
  Relational.Catalog.t -> relation:string -> attribute:string -> tau:float -> float
