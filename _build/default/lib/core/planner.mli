(** Sampling-driven join-order planning — the paper's raison d'être:
    feed cheap, unbiased cardinality estimates to a System-R-style
    optimizer.

    Given base relations (optionally pre-filtered) and equality join
    predicates, the planner enumerates left-deep join orders, costs
    each by the classic sum-of-intermediate-cardinalities model with
    every cardinality {e estimated from samples}, and returns the best
    order.  Estimates are memoized per sub-plan so the enumeration
    costs one sampling pass per distinct intermediate. *)

type join_spec = {
  left_attr : string;   (** attribute on one relation *)
  right_attr : string;  (** attribute on the other *)
}

type input = {
  name : string;               (** base relation name *)
  filter : Relational.Predicate.t option;  (** optional pre-filter *)
}

type plan = {
  expr : Relational.Expr.t;        (** the chosen left-deep join tree *)
  order : string list;             (** relation names, join order *)
  estimated_cost : float;          (** Σ estimated intermediate sizes *)
  intermediates : Relational.Expr.t list;
      (** the chosen order's strict-prefix joins, smallest first *)
  estimates : (string * float) list;
      (** per-intermediate: input-name set → estimated size *)
}

(** [plan rng catalog ~fraction ~inputs ~joins] — [joins] may mention
    any attribute pair whose two attributes live in different inputs
    (resolved via the catalog schemas).  All inputs must be connected
    by join predicates (no cross products are enumerated).
    @raise Invalid_argument on fewer than 2 inputs, more than 8 (the
    left-deep enumeration is factorial), duplicate input names, an
    attribute resolvable to no/both sides, or a disconnected join
    graph. *)
val plan :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  fraction:float ->
  inputs:input list ->
  joins:join_spec list ->
  plan

(** Exact cost of a previously produced plan (for evaluation). *)
val exact_cost : Relational.Catalog.t -> plan -> float
