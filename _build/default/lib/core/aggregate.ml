module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Value = Relational.Value
module Tuple = Relational.Tuple
module Estimate = Stats.Estimate

let contribution_fn relation attribute =
  let schema = Relation.schema relation in
  let i = Relational.Schema.index_of schema attribute in
  fun tuple ->
    match Tuple.get tuple i with
    | Value.Null -> 0.
    | v -> Value.to_float v

let sum_selection rng catalog ~relation ~attribute ~n predicate =
  let r = Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  if n <= 0 || n > big_n then
    invalid_arg "Aggregate.sum_selection: sample size out of range";
  let sample = Sampling.Srs.relation_without_replacement rng ~n r in
  let keep = Relational.Predicate.compile (Relation.schema sample) predicate in
  let value_of = contribution_fn sample attribute in
  let summary =
    Relation.fold
      (fun acc t -> Stats.Summary.add acc (if keep t then value_of t else 0.))
      Stats.Summary.empty sample
  in
  let big_nf = float_of_int big_n and nf = float_of_int n in
  let point = big_nf *. Stats.Summary.mean summary in
  let variance =
    if n < 2 then Float.nan
    else
      big_nf *. big_nf *. (1. -. (nf /. big_nf)) *. Stats.Summary.variance summary /. nf
  in
  Estimate.make ~variance ~label:"sum" ~status:Estimate.Unbiased ~sample_size:n point

let avg_selection rng catalog ~relation ~attribute ~n predicate =
  let r = Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  if n <= 0 || n > big_n then
    invalid_arg "Aggregate.avg_selection: sample size out of range";
  let sample = Sampling.Srs.relation_without_replacement rng ~n r in
  let keep = Relational.Predicate.compile (Relation.schema sample) predicate in
  let value_of = contribution_fn sample attribute in
  let qualifying =
    Relation.fold
      (fun acc t -> if keep t then Stats.Summary.add acc (value_of t) else acc)
      Stats.Summary.empty sample
  in
  let hits = Stats.Summary.count qualifying in
  if hits = 0 then
    Estimate.make ~label:"avg" ~status:Estimate.Consistent ~sample_size:n Float.nan
  else begin
    let point = Stats.Summary.mean qualifying in
    let variance =
      if hits < 2 then Float.nan
      else
        (* Within-domain variance of the ratio estimator, with FPC on
           the full sample (an approximation: the qualifying count is
           itself random). *)
        Stats.Summary.variance qualifying /. float_of_int hits
        *. (1. -. (float_of_int n /. float_of_int big_n))
    in
    Estimate.make ~variance ~label:"avg" ~status:Estimate.Consistent ~sample_size:n point
  end

let result_sum catalog ~attribute expr =
  let result = Relational.Eval.eval catalog expr in
  if Relation.is_empty result then 0.
  else begin
    let value_of = contribution_fn result attribute in
    Relation.fold (fun acc t -> acc +. value_of t) 0. result
  end

let sum_expr ?(groups = 1) rng catalog ~fraction ~attribute expr =
  if groups < 1 then invalid_arg "Aggregate.sum_expr: groups must be >= 1";
  let status = Count_estimator.classify expr in
  let plan = Sampling_plan.make catalog ~fraction expr in
  let one () =
    let sampled, drawn = Sampling_plan.draw rng catalog plan in
    (plan.Sampling_plan.scale *. result_sum sampled ~attribute plan.Sampling_plan.expr, drawn)
  in
  if groups = 1 then begin
    let point, drawn = one () in
    Estimate.make ~label:"sum (scale-up)" ~status ~sample_size:drawn point
  end
  else begin
    let drawn = ref 0 in
    let points =
      Array.init groups (fun _ ->
          let point, d = one () in
          drawn := !drawn + d;
          point)
    in
    let summary = Stats.Summary.of_array points in
    let variance = Stats.Summary.variance summary /. float_of_int groups in
    Estimate.make ~variance ~label:"sum (scale-up, replicated)" ~status ~sample_size:!drawn
      (Stats.Summary.mean summary)
  end

let exact_sum catalog ~attribute expr = result_sum catalog ~attribute expr

let exact_avg catalog ~attribute expr =
  let result = Relational.Eval.eval catalog expr in
  let schema = Relation.schema result in
  let i = Relational.Schema.index_of schema attribute in
  let summary =
    Relation.fold
      (fun acc t ->
        match Tuple.get t i with
        | Value.Null -> acc
        | v -> Stats.Summary.add acc (Value.to_float v))
      Stats.Summary.empty result
  in
  if Stats.Summary.count summary = 0 then Float.nan else Stats.Summary.mean summary
