(** SUM and AVG estimators — the natural extension of the COUNT
    framework (COUNT is SUM of the constant 1).

    For a selection over one relation the SUM estimator is the classic
    expansion estimator [N·ȳ] with exact finite-population variance;
    AVG is the ratio of two unbiased estimators, hence only consistent
    (its O(1/n) ratio bias is the textbook caveat).  For arbitrary SPJ
    expressions the scale-up rule applies to SUM exactly as to COUNT. *)

(** [sum_selection rng catalog ~relation ~attribute ~n predicate] —
    unbiased estimate of [SUM(attribute) over σ_predicate(relation)]
    from an SRSWOR of size [n], with variance
    [N²·(1−n/N)·s²/n] where [s²] is the sample variance of the
    per-tuple contribution (attribute value if the tuple qualifies,
    0 otherwise).  [Null] attribute values contribute 0.
    @raise Invalid_argument if [n] is out of range. *)
val sum_selection :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  attribute:string ->
  n:int ->
  Relational.Predicate.t ->
  Stats.Estimate.t

(** [avg_selection ...] — consistent (ratio) estimate of
    [AVG(attribute) over σ_predicate(relation)]: the sample mean among
    qualifying tuples, with the within-domain variance [s_q²/hits]
    (FPC-corrected) attached.  The point is [nan] when no sampled tuple
    qualifies. *)
val avg_selection :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  attribute:string ->
  n:int ->
  Relational.Predicate.t ->
  Stats.Estimate.t

(** [sum_expr rng catalog ~fraction ~attribute e] — scale-up SUM over
    an arbitrary expression: evaluate [e] on sampled leaves, total the
    attribute in the result, multiply by the plan scale.  Status follows
    {!Count_estimator.classify}.  [groups] as in
    {!Count_estimator.estimate}. *)
val sum_expr :
  ?groups:int ->
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  fraction:float ->
  attribute:string ->
  Relational.Expr.t ->
  Stats.Estimate.t

(** Exact SUM/AVG for evaluation. [Null]s contribute 0 to SUM and are
    excluded from AVG. *)
val exact_sum : Relational.Catalog.t -> attribute:string -> Relational.Expr.t -> float

val exact_avg : Relational.Catalog.t -> attribute:string -> Relational.Expr.t -> float
