(** Mutable table: the integration layer a living system needs around
    the estimators.

    A table owns its tuples (insert/delete by id, schema-checked),
    transparently maintains a {!Backing_sample} so COUNT estimates are
    answered from the synopsis without scanning, and caches hash
    indexes that are invalidated on mutation.  Snapshot to an immutable
    {!Relational.Relation.t} (and hence the whole expression/estimator
    machinery) at any time. *)

type t

type id = int

(** [create rng ~schema ?sample_capacity ()] — [sample_capacity]
    (default 1000) sizes the maintained sample.
    @raise Invalid_argument if [sample_capacity <= 0]. *)
val create :
  Sampling.Rng.t -> schema:Relational.Schema.t -> ?sample_capacity:int -> unit -> t

val schema : t -> Relational.Schema.t

(** Insert a tuple (validated against the schema as
    {!Relational.Relation.make} does).
    @raise Invalid_argument on arity/type mismatch. *)
val insert : t -> Relational.Tuple.t -> id

(** Delete by id; [false] when the id is unknown or already deleted. *)
val delete : t -> id -> bool

(** Live tuples. *)
val cardinality : t -> int

(** Snapshot the live tuples (insertion-id order). *)
val to_relation : t -> Relational.Relation.t

(** {1 Estimation from the maintained synopsis} *)

(** COUNT of a selection estimated from the maintained backing sample —
    no scan of the table.
    @raise Invalid_argument when the table is empty. *)
val estimate_count : t -> Relational.Predicate.t -> Stats.Estimate.t

(** Whether deletions have eroded the synopsis enough that
    {!refresh_sample} is advisable (see
    {!Backing_sample.needs_rescan}). *)
val sample_needs_refresh : t -> bool

(** Rebuild the backing sample from the live tuples (one scan). *)
val refresh_sample : t -> unit

(** Exact COUNT (scans). *)
val exact_count : t -> Relational.Predicate.t -> int

(** {1 Indexes} *)

(** Hash index on the given attributes, built on first use and cached;
    any {!insert}/{!delete} invalidates the cache.
    @raise Not_found if an attribute is absent. *)
val index_on : t -> string list -> Relational.Index.t
