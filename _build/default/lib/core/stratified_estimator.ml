module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Estimate = Stats.Estimate

type result = {
  estimate : Stats.Estimate.t;
  strata : (string * int * int) list;
}

let count rng catalog ~relation ~key ~n predicate =
  let r = Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  if n <= 0 || n > big_n then invalid_arg "Stratified_estimator.count: n out of range";
  let keep = Relational.Predicate.compile (Relation.schema r) predicate in
  let strata = Sampling.Stratified.sample rng ~n ~key (Relation.tuples r) in
  (* Recover per-stratum population sizes with one grouping pass. *)
  let populations = Hashtbl.create 16 in
  Relation.iter
    (fun t ->
      let k = key t in
      Hashtbl.replace populations k (1 + Option.value (Hashtbl.find_opt populations k) ~default:0))
    r;
  let point = ref 0. and variance = ref 0. and drawn = ref 0 in
  let summary =
    List.map
      (fun stratum ->
        let k = stratum.Sampling.Stratified.key in
        let n_h = stratum.Sampling.Stratified.allocated in
        let big_nh = Hashtbl.find populations k in
        drawn := !drawn + n_h;
        if n_h > 0 then begin
          let hits =
            Array.fold_left
              (fun acc t -> if keep t then acc + 1 else acc)
              0 stratum.Sampling.Stratified.members
          in
          let nf = float_of_int n_h and big_nf = float_of_int big_nh in
          let p_hat = float_of_int hits /. nf in
          point := !point +. (big_nf *. p_hat);
          if n_h >= 2 then
            variance :=
              !variance
              +. big_nf *. big_nf
                 *. (1. -. (nf /. big_nf))
                 *. p_hat *. (1. -. p_hat) /. (nf -. 1.)
        end;
        (k, big_nh, n_h))
      strata
  in
  {
    estimate =
      Estimate.make ~variance:!variance ~label:"stratified selection"
        ~status:Estimate.Unbiased ~sample_size:!drawn !point;
    strata = summary;
  }

let count_by_attribute rng catalog ~relation ~attribute ~n predicate =
  let r = Catalog.find catalog relation in
  let i = Relational.Schema.index_of (Relation.schema r) attribute in
  let key t = Relational.Value.to_string (Relational.Tuple.get t i) in
  count rng catalog ~relation ~key ~n predicate
