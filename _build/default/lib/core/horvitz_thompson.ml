module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Value = Relational.Value
module Estimate = Stats.Estimate

let of_sample pairs =
  let point = ref 0. and variance = ref 0. in
  Array.iter
    (fun (y, pi) ->
      if pi <= 0. || pi > 1. then
        invalid_arg "Horvitz_thompson.of_sample: inclusion probability outside (0, 1]";
      point := !point +. (y /. pi);
      variance := !variance +. ((1. -. pi) /. (pi *. pi) *. y *. y))
    pairs;
  Estimate.make ~variance:!variance ~label:"horvitz-thompson" ~status:Estimate.Unbiased
    ~sample_size:(Array.length pairs) !point

let sum rng catalog ~relation ~attribute ~expected_n
    ?(where = Relational.Predicate.True) () =
  let r = Catalog.find catalog relation in
  let schema = Relation.schema r in
  let index = Relational.Schema.index_of schema attribute in
  let keep = Relational.Predicate.compile schema where in
  let contribution tuple =
    if keep tuple then
      match Relational.Tuple.get tuple index with
      | Value.Null -> 0.
      | v -> Value.to_float v
    else 0.
  in
  let weight tuple = Float.abs (contribution tuple) in
  (* Items with zero weight contribute exactly 0 to the sum, so
     excluding them from the sample keeps HT unbiased. *)
  let sample =
    Sampling.Weighted.poisson rng ~expected_n ~weight (Relation.tuples r)
  in
  let pairs = Array.map (fun (tuple, pi) -> (contribution tuple, pi)) sample in
  of_sample pairs
