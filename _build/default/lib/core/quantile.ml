module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Value = Relational.Value
module Estimate = Stats.Estimate

type result = {
  estimate : Stats.Estimate.t;
  interval : Stats.Confidence.interval;
  lo_rank : int;
  hi_rank : int;
}

(* P(Bin(n, p) <= k) via the regularized incomplete beta. *)
let binomial_cdf ~n ~p k =
  if k < 0 then 0.
  else if k >= n then 1.
  else
    Stats.Distributions.incomplete_beta
      ~a:(float_of_int (n - k))
      ~b:(float_of_int (k + 1))
      (1. -. p)

let numeric_column relation attribute =
  Array.of_list
    (List.filter_map
       (fun v -> match v with Value.Null -> None | v -> Some (Value.to_float v))
       (Array.to_list (Relation.column relation attribute)))

(* Ranks l ≤ u with P(X_(l) ≤ Q_τ ≤ X_(u)) ≥ level, where
   B = #{samples ≤ Q_τ} ~ Bin(n, τ): take the largest l with
   P(B ≤ l−1) ≤ α/2 and the smallest u with P(B ≥ u) ≤ α/2.  When n is
   too small for the requested level the extremes (1, n) are returned —
   the best any distribution-free interval can do. *)
let order_statistic_ranks ~n ~tau ~level =
  let alpha2 = (1. -. level) /. 2. in
  let lo =
    let rec loop k best =
      if k > n then best
      else if binomial_cdf ~n ~p:tau (k - 1) <= alpha2 then loop (k + 1) k
      else best
    in
    loop 1 1
  in
  let hi =
    let rec loop k =
      if k > n then n
      else if 1. -. binomial_cdf ~n ~p:tau (k - 1) <= alpha2 then k
      else loop (k + 1)
    in
    loop 1
  in
  (min lo hi, max lo hi)

let estimate rng catalog ~relation ~attribute ~tau ~n ?(level = 0.95) () =
  if tau <= 0. || tau >= 1. then invalid_arg "Quantile.estimate: tau outside (0, 1)";
  if level <= 0. || level >= 1. then invalid_arg "Quantile.estimate: level outside (0, 1)";
  let r = Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  if n <= 0 || n > big_n then invalid_arg "Quantile.estimate: sample size out of range";
  let sample = Sampling.Srs.relation_without_replacement rng ~n r in
  let values = numeric_column sample attribute in
  let effective = Array.length values in
  if effective = 0 then invalid_arg "Quantile.estimate: all sampled values are Null";
  Array.sort Float.compare values;
  let point = Stats.Summary.quantile tau values in
  let lo_rank, hi_rank = order_statistic_ranks ~n:effective ~tau ~level in
  let interval =
    Stats.Confidence.
      { lo = values.(lo_rank - 1); hi = values.(hi_rank - 1); level }
  in
  {
    estimate =
      Estimate.make ~label:(Printf.sprintf "quantile(%.2f)" tau)
        ~status:Estimate.Consistent ~sample_size:n point;
    interval;
    lo_rank;
    hi_rank;
  }

let median rng catalog ~relation ~attribute ~n ?level () =
  estimate rng catalog ~relation ~attribute ~tau:0.5 ~n ?level ()

let exact catalog ~relation ~attribute ~tau =
  let r = Catalog.find catalog relation in
  let values = numeric_column r attribute in
  if Array.length values = 0 then invalid_arg "Quantile.exact: no numeric values";
  Stats.Summary.quantile tau values
