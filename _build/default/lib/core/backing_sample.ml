module Relation = Relational.Relation

type id = int

type t = {
  rng : Sampling.Rng.t;
  capacity : int;
  schema : Relational.Schema.t;
  mutable next_id : int;
  mutable population : int;
  (* Sample slots: parallel arrays of ids and tuples, [filled] live. *)
  ids : id array;
  tuples : Relational.Tuple.t option array;
  mutable filled : int;
  (* Members for O(1) deletion checks: id -> slot. *)
  slot_of : (id, int) Hashtbl.t;
  mutable seen : int;  (* inserts observed, drives reservoir admission *)
}

let create rng ~capacity ~schema =
  if capacity <= 0 then invalid_arg "Backing_sample.create: capacity must be positive";
  {
    rng;
    capacity;
    schema;
    next_id = 0;
    population = 0;
    ids = Array.make capacity (-1);
    tuples = Array.make capacity None;
    filled = 0;
    slot_of = Hashtbl.create (2 * capacity);
    seen = 0;
  }

let put t slot id tuple =
  (match t.tuples.(slot) with
  | Some _ -> Hashtbl.remove t.slot_of t.ids.(slot)
  | None -> ());
  t.ids.(slot) <- id;
  t.tuples.(slot) <- Some tuple;
  Hashtbl.replace t.slot_of id slot

let insert t tuple =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.population <- t.population + 1;
  t.seen <- t.seen + 1;
  if t.filled < t.capacity then begin
    put t t.filled id tuple;
    t.filled <- t.filled + 1
  end
  else begin
    (* Algorithm R admission over the insert stream.  Deletions thin
       the sample uniformly, so admission over inserts keeps the
       survivors uniform over the live population. *)
    let j = Sampling.Rng.int t.rng t.seen in
    if j < t.capacity then put t j id tuple
  end;
  id

let delete t id =
  if id < 0 || id >= t.next_id then false
  else begin
    match Hashtbl.find_opt t.slot_of id with
    | Some slot ->
      Hashtbl.remove t.slot_of id;
      (* Compact: move the last live slot into the hole. *)
      let last = t.filled - 1 in
      if slot <> last then begin
        t.ids.(slot) <- t.ids.(last);
        t.tuples.(slot) <- t.tuples.(last);
        Hashtbl.replace t.slot_of t.ids.(slot) slot
      end;
      t.ids.(last) <- -1;
      t.tuples.(last) <- None;
      t.filled <- last;
      t.population <- t.population - 1;
      true
    | None ->
      (* Not sampled: only the population shrinks.  We cannot tell a
         live unsampled id from an already-deleted one without O(N)
         state; treat both as a population decrement guarded at 0 and
         report true only while the population is consistent. *)
      if t.population > t.filled then begin
        t.population <- t.population - 1;
        true
      end
      else false
  end

let population t = t.population

let sample t =
  let tuples =
    Array.init t.filled (fun k ->
        match t.tuples.(k) with Some tuple -> tuple | None -> assert false)
  in
  Relation.of_array t.schema tuples

let sample_size t = t.filled

let fill_ratio t = float_of_int t.filled /. float_of_int t.capacity

let needs_rescan ?(min_ratio = 0.5) t =
  t.filled < t.population && fill_ratio t < min_ratio

let estimate_count t predicate =
  if t.filled = 0 then invalid_arg "Backing_sample.estimate_count: empty sample";
  let relation = sample t in
  let keep = Relational.Predicate.compile t.schema predicate in
  let hits = Relation.count keep relation in
  if t.filled >= t.population then
    (* Census: the sample IS the population. *)
    Count_estimator.selection_of_counts ~big_n:t.filled ~n:t.filled ~hits
  else Count_estimator.selection_of_counts ~big_n:t.population ~n:t.filled ~hits
