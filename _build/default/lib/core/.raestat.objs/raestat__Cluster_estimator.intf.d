lib/core/cluster_estimator.mli: Relational Sampling Stats
