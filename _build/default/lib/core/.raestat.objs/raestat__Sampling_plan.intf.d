lib/core/sampling_plan.mli: Relational Sampling
