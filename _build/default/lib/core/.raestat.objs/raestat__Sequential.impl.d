lib/core/sequential.ml: Array Count_estimator Float List Relational Sampling Stats
