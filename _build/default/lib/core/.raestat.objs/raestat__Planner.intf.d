lib/core/planner.mli: Relational Sampling
