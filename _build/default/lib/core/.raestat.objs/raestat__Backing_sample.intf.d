lib/core/backing_sample.mli: Relational Sampling Stats
