lib/core/cluster_estimator.ml: Array Float Printf Relational Sampling Stats
