lib/core/horvitz_thompson.ml: Array Float Relational Sampling Stats
