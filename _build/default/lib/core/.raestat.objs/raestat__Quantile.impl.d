lib/core/quantile.ml: Array Float List Printf Relational Sampling Stats
