lib/core/stratified_estimator.ml: Array Hashtbl List Option Relational Sampling Stats
