lib/core/count_estimator.mli: Relational Sampling Sampling_plan Stats
