lib/core/sampling_plan.ml: List Printf Relational Sampling
