lib/core/count_estimator.ml: Array Float Printf Relational Sampling Sampling_plan Stats
