lib/core/backing_sample.ml: Array Count_estimator Hashtbl Relational Sampling
