lib/core/join_variance.ml: Array Hashtbl Relational
