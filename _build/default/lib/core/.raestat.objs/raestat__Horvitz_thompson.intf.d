lib/core/horvitz_thompson.mli: Relational Sampling Stats
