lib/core/aggregate.ml: Array Count_estimator Float Relational Sampling Sampling_plan Stats
