lib/core/sample_size.mli: Join_variance Relational
