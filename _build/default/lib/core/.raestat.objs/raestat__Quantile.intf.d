lib/core/quantile.mli: Relational Sampling Stats
