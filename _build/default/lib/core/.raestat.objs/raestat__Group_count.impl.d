lib/core/group_count.ml: Array Count_estimator Float Hashtbl List Option Relational Sampling Stats
