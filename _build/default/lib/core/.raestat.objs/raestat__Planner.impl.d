lib/core/planner.ml: Array Count_estimator Float Hashtbl Int List Printf Relational Stats String
