lib/core/stratified_estimator.mli: Relational Sampling Stats
