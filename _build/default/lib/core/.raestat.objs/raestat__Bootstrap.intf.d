lib/core/bootstrap.mli: Relational Sampling Stats
