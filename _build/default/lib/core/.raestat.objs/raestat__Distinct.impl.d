lib/core/distinct.ml: Array Float Hashtbl Int List Printf Relational Sampling Stats
