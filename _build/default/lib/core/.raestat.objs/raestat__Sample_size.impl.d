lib/core/sample_size.ml: Float Join_variance Printf Sampling_plan Stats
