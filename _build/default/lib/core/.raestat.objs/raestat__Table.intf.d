lib/core/table.mli: Relational Sampling Stats
