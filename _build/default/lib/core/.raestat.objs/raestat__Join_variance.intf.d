lib/core/join_variance.mli: Relational
