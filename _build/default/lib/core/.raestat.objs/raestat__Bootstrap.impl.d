lib/core/bootstrap.ml: Array Float Relational Sampling Stats
