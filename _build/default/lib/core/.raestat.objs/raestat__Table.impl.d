lib/core/table.ml: Array Backing_sample Hashtbl Int List Relational Sampling
