lib/core/group_count.mli: Relational Sampling Stats
