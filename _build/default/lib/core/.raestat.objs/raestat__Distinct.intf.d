lib/core/distinct.mli: Relational Sampling Stats
