lib/core/aggregate.mli: Relational Sampling Stats
