lib/core/sequential.mli: Relational Sampling Stats
