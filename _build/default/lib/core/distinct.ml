module Relation = Relational.Relation
module Catalog = Relational.Catalog
module Tuple = Relational.Tuple
module Estimate = Stats.Estimate

type method_ = Goodman | Chao1 | Gee | Shlosser | Scale_up | Sample_distinct

let method_to_string = function
  | Goodman -> "goodman"
  | Chao1 -> "chao1"
  | Gee -> "gee"
  | Shlosser -> "shlosser"
  | Scale_up -> "scale-up"
  | Sample_distinct -> "sample-distinct"

let all_methods = [ Goodman; Chao1; Gee; Shlosser; Scale_up; Sample_distinct ]

module Tuple_hash = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash = Tuple.hash
end)

let frequency_of_frequencies tuples =
  let counts = Tuple_hash.create (max 16 (Array.length tuples)) in
  Array.iter
    (fun t ->
      let c = try Tuple_hash.find counts t with Not_found -> 0 in
      Tuple_hash.replace counts t (c + 1))
    tuples;
  let fof = Hashtbl.create 16 in
  Tuple_hash.iter
    (fun _ j ->
      let f = try Hashtbl.find fof j with Not_found -> 0 in
      Hashtbl.replace fof j (f + 1))
    counts;
  Hashtbl.fold (fun j f acc -> (j, f) :: acc) fof []
  |> List.sort (fun (j1, _) (j2, _) -> Int.compare j1 j2)

let check_fof ~big_n ~n fof =
  if n <= 0 || n > big_n then invalid_arg "Distinct: sample size out of range";
  let total = List.fold_left (fun acc (j, f) -> acc + (j * f)) 0 fof in
  if total <> n then
    invalid_arg
      (Printf.sprintf "Distinct: frequency-of-frequencies sums to %d, sample size is %d"
         total n);
  List.iter
    (fun (j, f) ->
      if j <= 0 || f < 0 then invalid_arg "Distinct: malformed frequency-of-frequencies")
    fof

(* Goodman's coefficient for term j, in log space:
   c_j = (N−n+j−1)!·(n−j)! / ((N−n−1)!·n!), sign (−1)^{j+1}. *)
let goodman_term ~big_n ~n j =
  let open Stats.Distributions in
  let log_c =
    log_gamma (float_of_int (big_n - n + j))
    +. log_gamma (float_of_int (n - j + 1))
    -. log_gamma (float_of_int (big_n - n))
    -. log_gamma (float_of_int (n + 1))
  in
  let sign = if j mod 2 = 1 then 1. else -1. in
  sign *. exp log_c

let goodman ~big_n ~n fof =
  let d = List.fold_left (fun acc (_, f) -> acc + f) 0 fof in
  if n = big_n then float_of_int d
  else
    List.fold_left
      (fun acc (j, f) -> acc +. (goodman_term ~big_n ~n j *. float_of_int f))
      (float_of_int d) fof

let chao1 fof =
  let d = List.fold_left (fun acc (_, f) -> acc + f) 0 fof in
  let f1 = try List.assoc 1 fof with Not_found -> 0 in
  let f2 = try List.assoc 2 fof with Not_found -> 0 in
  (* Bias-corrected form, defined even when f2 = 0. *)
  float_of_int d
  +. (float_of_int (f1 * (f1 - 1)) /. (2. *. float_of_int (f2 + 1)))

let gee ~big_n ~n fof =
  let f1 = try List.assoc 1 fof with Not_found -> 0 in
  let rest =
    List.fold_left (fun acc (j, f) -> if j >= 2 then acc + f else acc) 0 fof
  in
  (Float.sqrt (float_of_int big_n /. float_of_int n) *. float_of_int f1)
  +. float_of_int rest

let shlosser ~big_n ~n fof =
  let d = List.fold_left (fun acc (_, f) -> acc + f) 0 fof in
  let q = float_of_int n /. float_of_int big_n in
  if q >= 1. then float_of_int d
  else begin
    let f1 = float_of_int (try List.assoc 1 fof with Not_found -> 0) in
    let numerator =
      List.fold_left
        (fun acc (j, f) -> acc +. (((1. -. q) ** float_of_int j) *. float_of_int f))
        0. fof
    in
    let denominator =
      List.fold_left
        (fun acc (j, f) ->
          acc +. (float_of_int j *. q *. ((1. -. q) ** float_of_int (j - 1)) *. float_of_int f))
        0. fof
    in
    if denominator <= 0. then float_of_int d
    else float_of_int d +. (f1 *. numerator /. denominator)
  end

let scale_up ~big_n ~n fof =
  let d = List.fold_left (fun acc (_, f) -> acc + f) 0 fof in
  float_of_int d *. float_of_int big_n /. float_of_int n

let sample_distinct fof =
  float_of_int (List.fold_left (fun acc (_, f) -> acc + f) 0 fof)

let estimate_from_fof ~method_ ~big_n ~n fof =
  check_fof ~big_n ~n fof;
  let point, status =
    match method_ with
    | Goodman -> (goodman ~big_n ~n fof, Estimate.Unbiased)
    | Chao1 -> (chao1 fof, Estimate.Consistent)
    | Gee -> (gee ~big_n ~n fof, Estimate.Consistent)
    | Shlosser -> (shlosser ~big_n ~n fof, Estimate.Consistent)
    | Scale_up -> (scale_up ~big_n ~n fof, Estimate.Heuristic)
    | Sample_distinct -> (sample_distinct fof, Estimate.Consistent)
  in
  Estimate.make ~label:("distinct/" ^ method_to_string method_) ~status ~sample_size:n point

let project_tuples catalog ~relation ~attributes =
  let r = Catalog.find catalog relation in
  let schema = Relation.schema r in
  let indices =
    Array.of_list
      (List.map (fun a -> Relational.Schema.index_of schema a) attributes)
  in
  (r, fun tuple -> Tuple.project tuple indices)

let estimate rng catalog ~method_ ~relation ~attributes ~n =
  let r, project = project_tuples catalog ~relation ~attributes in
  let sample =
    Sampling.Srs.sample_without_replacement rng ~n (Relation.tuples r)
  in
  let fof = frequency_of_frequencies (Array.map project sample) in
  estimate_from_fof ~method_ ~big_n:(Relation.cardinality r) ~n fof

let plausible ~big_n estimate =
  let p = estimate.Estimate.point in
  Float.is_finite p && p >= 0. && p <= float_of_int big_n

let exact catalog ~relation ~attributes =
  Relation.cardinality
    (Relational.Eval.eval catalog
       (Relational.Expr.project_distinct attributes (Relational.Expr.base relation)))
