module Relation = Relational.Relation
module Schema = Relational.Schema
module Tuple = Relational.Tuple

type id = int

type t = {
  rng : Sampling.Rng.t;
  schema : Schema.t;
  sample_capacity : int;
  rows : (id, Tuple.t) Hashtbl.t;
  mutable next_id : id;
  mutable sample : Backing_sample.t;
  (* id of the backing-sample entry corresponding to a table id: the
     synopsis assigns its own ids on insert and on refresh. *)
  mutable sample_ids : (id, Backing_sample.id) Hashtbl.t;
  mutable indexes : (string list * Relational.Index.t) list;  (* cache *)
}

let create rng ~schema ?(sample_capacity = 1_000) () =
  {
    rng;
    schema;
    sample_capacity;
    rows = Hashtbl.create 1024;
    next_id = 0;
    sample = Backing_sample.create rng ~capacity:sample_capacity ~schema;
    sample_ids = Hashtbl.create 1024;
    indexes = [];
  }

let schema t = t.schema

let check_tuple t tuple =
  (* Reuse Relation.make's validation on a singleton. *)
  ignore (Relation.make t.schema [ tuple ])

let invalidate_indexes t = t.indexes <- []

let insert t tuple =
  check_tuple t tuple;
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.rows id tuple;
  Hashtbl.replace t.sample_ids id (Backing_sample.insert t.sample tuple);
  invalidate_indexes t;
  id

let delete t id =
  match Hashtbl.find_opt t.rows id with
  | None -> false
  | Some _ ->
    Hashtbl.remove t.rows id;
    (match Hashtbl.find_opt t.sample_ids id with
    | Some sample_id ->
      ignore (Backing_sample.delete t.sample sample_id);
      Hashtbl.remove t.sample_ids id
    | None -> ());
    invalidate_indexes t;
    true

let cardinality t = Hashtbl.length t.rows

let to_relation t =
  let rows = Hashtbl.fold (fun id tuple acc -> (id, tuple) :: acc) t.rows [] in
  let rows = List.sort (fun (i1, _) (i2, _) -> Int.compare i1 i2) rows in
  Relation.of_array t.schema (Array.of_list (List.map snd rows))

let estimate_count t predicate =
  if cardinality t = 0 then invalid_arg "Table.estimate_count: empty table";
  Backing_sample.estimate_count t.sample predicate

let sample_needs_refresh t = Backing_sample.needs_rescan t.sample

let refresh_sample t =
  let fresh = Backing_sample.create t.rng ~capacity:t.sample_capacity ~schema:t.schema in
  let ids = Hashtbl.create (Hashtbl.length t.rows) in
  Hashtbl.iter (fun id tuple -> Hashtbl.replace ids id (Backing_sample.insert fresh tuple))
    t.rows;
  t.sample <- fresh;
  t.sample_ids <- ids

let exact_count t predicate =
  let keep = Relational.Predicate.compile t.schema predicate in
  Hashtbl.fold (fun _ tuple acc -> if keep tuple then acc + 1 else acc) t.rows 0

let index_on t attributes =
  match List.assoc_opt attributes t.indexes with
  | Some index -> index
  | None ->
    let index = Relational.Index.build (to_relation t) ~attributes in
    t.indexes <- (attributes, index) :: t.indexes;
    index
