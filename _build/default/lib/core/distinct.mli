(** Distinct-value (projection with duplicate elimination) estimators.

    Plain scale-up is biased for [COUNT(DISTINCT …)], so the paper's
    framework delegates to dedicated estimators computed from the
    sample's frequency-of-frequencies [f_j] (number of values observed
    exactly [j] times among [n] SRSWOR draws out of [N]):

    - [Goodman] (1949): the unique unbiased estimator
      [d + Σ_j (−1)^{j+1}·((N−n+j−1)!·(n−j)!)/((N−n−1)!·n!)·f_j];
      unbiased whenever the sample is larger than the biggest class,
      but its variance explodes at small fractions — the classic
      theory-vs-practice trade-off the experiments exhibit.
    - [Chao1]: [d + f1(f1−1)/(2(f2+1))], a stable lower-bound-style
      estimate.
    - [Gee] (guaranteed-error estimator): [√(N/n)·f1 + Σ_{j≥2} f_j].
    - [Shlosser] (1981): [d + f1·Σ(1−q)^j f_j / Σ j·q·(1−q)^{j−1} f_j]
      with [q = n/N]; accurate on skewed data at moderate fractions.
    - [Scale_up]: the naive [d·N/n] (heuristic baseline; badly biased
      when values repeat).
    - [Sample_distinct]: [d] itself (always an underestimate). *)

type method_ = Goodman | Chao1 | Gee | Shlosser | Scale_up | Sample_distinct

val method_to_string : method_ -> string

val all_methods : method_ list

(** Frequency-of-frequencies of a sample of tuples: a sorted list of
    [(j, f_j)] pairs with [f_j > 0]. *)
val frequency_of_frequencies : Relational.Tuple.t array -> (int * int) list

(** [estimate_from_fof ~method_ ~big_n ~n fof] computes the estimator
    from a frequency-of-frequencies profile.
    @raise Invalid_argument if [n] is out of range or [fof] is
    inconsistent with [n]. *)
val estimate_from_fof :
  method_:method_ -> big_n:int -> n:int -> (int * int) list -> Stats.Estimate.t

(** [estimate rng catalog ~method_ ~relation ~attributes ~n] draws an
    SRSWOR of size [n] and estimates the number of distinct
    [attributes]-tuples in the relation. *)
val estimate :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  method_:method_ ->
  relation:string ->
  attributes:string list ->
  n:int ->
  Stats.Estimate.t

(** Exact distinct count, for evaluation. *)
val exact :
  Relational.Catalog.t -> relation:string -> attributes:string list -> int

(** Whether an estimate lies in the feasible range [0, big_n].
    Goodman's estimator is unbiased but its alternating series explodes
    at small sampling fractions on skewed data; an implausible value is
    the signature of that variance blow-up and should be discarded in
    favour of a consistent estimator. *)
val plausible : big_n:int -> Stats.Estimate.t -> bool
