(** Analytic variance of the equi-join scale-up estimator under
    Bernoulli sampling, from per-value frequency profiles.

    For join attribute value [v] let [a_v], [b_v] be its frequencies in
    the two relations.  With Bernoulli rates [q1], [q2] the sampled
    match count is [X = Σ_v A_v·B_v] with [A_v ~ Binomial(a_v, q1)]
    independent of [B_v ~ Binomial(b_v, q2)], so

    {v
    E[X]   = q1·q2·J            where J = Σ_v a_v·b_v
    Var[X] = Σ_v ( E[A_v²]·E[B_v²] − q1²q2²·a_v²·b_v² )
    E[A²]  = a·q1(1−q1) + a²q1²
    v}

    and the estimator [Ĵ = X/(q1 q2)] has [Var Ĵ = Var X/(q1 q2)²].
    This "oracle" variance (it reads the true frequencies) is what
    experiment F5 compares against the Monte-Carlo variance. *)

type profile

(** Frequency profile of one column of a relation.
    @raise Not_found if the attribute is absent. *)
val profile : Relational.Relation.t -> string -> profile

(** Number of distinct values. *)
val distinct : profile -> int

(** Frequency moments [Σ a_v^k] for [k] = 1 and 2. *)
val moment1 : profile -> float
val moment2 : profile -> float

(** Exact join size [Σ_v a_v·b_v]. *)
val join_size : profile -> profile -> float

(** Oracle variance of [Ĵ] under Bernoulli([q1]), Bernoulli([q2]).
    @raise Invalid_argument if a rate is outside (0, 1]. *)
val oracle_variance : q1:float -> q2:float -> profile -> profile -> float

(** Self-join size [Σ_v a_v²] (the second frequency moment). *)
val self_join_size : profile -> float
