(** Maintained ("backing") sample: a uniform sample of a relation kept
    up to date under inserts and deletes, so estimates never touch the
    base data at query time (Gibbons–Matias style).

    Inserts feed a reservoir (every inserted tuple gets an id, the
    reservoir keeps a uniform subset of the {e live} ids).  Deleting an
    id removes it from the sample if present — the survivors remain a
    uniform sample of the surviving population, at a reduced sample
    size.  Holes left by deletions are refilled eagerly by subsequent
    inserts, which biases the sample slightly toward post-deletion
    arrivals; when deletions have eroded the sample below a threshold
    the owner should rebuild from a scan ({!needs_rescan}), exactly as
    Gibbons–Matias prescribe. *)

type t

type id = int

(** [create rng ~capacity] — target sample size.
    @raise Invalid_argument if [capacity <= 0]. *)
val create : Sampling.Rng.t -> capacity:int -> schema:Relational.Schema.t -> t

(** Insert a tuple; returns its id (unique over the lifetime of [t]). *)
val insert : t -> Relational.Tuple.t -> id

(** Delete by id.  Idempotent: deleting an unknown or already-deleted
    id is a no-op returning [false]. *)
val delete : t -> id -> bool

(** Live population size. *)
val population : t -> int

(** Current sample as a relation. *)
val sample : t -> Relational.Relation.t

val sample_size : t -> int

(** [sample_size/capacity], the erosion gauge. *)
val fill_ratio : t -> float

(** True when the sample has eroded below [min_ratio] (default 0.5) of
    capacity while the population could still support it. *)
val needs_rescan : ?min_ratio:float -> t -> bool

(** Unbiased COUNT-of-selection estimate from the current sample
    (see {!Count_estimator.selection_of_counts}).
    @raise Invalid_argument when the sample is empty. *)
val estimate_count : t -> Relational.Predicate.t -> Stats.Estimate.t
