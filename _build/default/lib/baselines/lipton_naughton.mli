(** Lipton–Naughton adaptive selectivity sampling (SIGMOD 1990), the
    classic comparator for sequential sampling.

    Draw tuples one at a time {e with replacement}; stop as soon as
    either [threshold] matches have been seen ("enough hits for the
    requested precision") or [max_draws] tuples have been inspected.
    Estimate [N·hits/draws].  The stopping rule trades a small bias for
    a guaranteed sample-size bound of
    [O(threshold / selectivity)]. *)

type result = {
  estimate : Stats.Estimate.t;
  draws : int;
  hits : int;
  stopped_by_threshold : bool;
}

(** [run rng catalog ~relation ~threshold ?max_draws predicate]
    @raise Invalid_argument if [threshold <= 0] or [max_draws <= 0].
    [max_draws] defaults to the relation cardinality. *)
val run :
  Sampling.Rng.t ->
  Relational.Catalog.t ->
  relation:string ->
  threshold:int ->
  ?max_draws:int ->
  Relational.Predicate.t ->
  result

(** Threshold for a target relative error [e] at confidence controlled
    by [k_sigma] (their analysis: threshold ≈ k²·(1+e)/e²). *)
val threshold_for : target:float -> k_sigma:float -> int
