lib/baselines/histogram.ml: Array Float List Relational Stats
