lib/baselines/exact.mli: Relational Stats
