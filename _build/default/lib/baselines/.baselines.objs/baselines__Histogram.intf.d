lib/baselines/histogram.mli: Relational Stats
