lib/baselines/lipton_naughton.ml: Float Option Relational Sampling Stats
