lib/baselines/exact.ml: Relational Stats Unix
