lib/baselines/lipton_naughton.mli: Relational Sampling Stats
