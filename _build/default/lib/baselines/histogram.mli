(** Equi-width one-dimensional histogram estimator — the
    precomputed-statistics baseline every 1980s optimizer shipped.

    Built by one full scan of a numeric column.  Selections assume
    uniform spread inside a bucket; equi-joins assume uniformity and
    independence within aligned buckets ([Σ_b c1_b·c2_b / w_b]). *)

type t

(** [build relation ~attribute ~buckets] — equi-width bucketing.
    @raise Invalid_argument if [buckets <= 0] or the column is empty or
    non-numeric. *)
val build : Relational.Relation.t -> attribute:string -> buckets:int -> t

(** [build_equidepth relation ~attribute ~buckets] — equi-depth
    (equal-frequency) bucketing on the sorted column: every bucket
    holds ≈N/buckets tuples, so skewed hot values get narrow buckets
    and the uniform-within-bucket assumption hurts less.  Same
    estimation API.
    @raise Invalid_argument as {!build}. *)
val build_equidepth : Relational.Relation.t -> attribute:string -> buckets:int -> t

val bucket_count : t -> int

(** Total tuples summarized. *)
val total : t -> int

(** Estimated [COUNT(σ_{lo ≤ attr ≤ hi})], fractional-bucket
    interpolation at the range ends. *)
val estimate_range : t -> lo:float -> hi:float -> Stats.Estimate.t

(** Estimated size of the equi-join of the two summarized columns.
    The histograms may have different bucket grids; the estimate
    integrates the product of the two uniform-within-bucket densities. *)
val estimate_equijoin : t -> t -> Stats.Estimate.t

(** Memory footprint in buckets (for space-matched comparisons). *)
val space : t -> int
