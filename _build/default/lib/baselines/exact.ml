type result = {
  count : int;
  seconds : float;
}

let count catalog expr =
  let started = Unix.gettimeofday () in
  let count = Relational.Eval.count catalog expr in
  { count; seconds = Unix.gettimeofday () -. started }

let as_estimate catalog expr =
  let { count; _ } = count catalog expr in
  Stats.Estimate.make ~variance:0. ~label:"exact" ~status:Stats.Estimate.Unbiased
    ~sample_size:count (float_of_int count)
