module Relation = Relational.Relation
module Estimate = Stats.Estimate

type result = {
  estimate : Stats.Estimate.t;
  draws : int;
  hits : int;
  stopped_by_threshold : bool;
}

let run rng catalog ~relation ~threshold ?max_draws predicate =
  if threshold <= 0 then invalid_arg "Lipton_naughton.run: threshold must be positive";
  let r = Relational.Catalog.find catalog relation in
  let big_n = Relation.cardinality r in
  let max_draws = Option.value max_draws ~default:big_n in
  if max_draws <= 0 then invalid_arg "Lipton_naughton.run: max_draws must be positive";
  let keep = Relational.Predicate.compile (Relation.schema r) predicate in
  let rec loop draws hits =
    if hits >= threshold || draws >= max_draws then (draws, hits)
    else
      let t = Relation.tuple r (Sampling.Rng.int rng big_n) in
      loop (draws + 1) (if keep t then hits + 1 else hits)
  in
  let draws, hits = loop 0 0 in
  let p_hat = float_of_int hits /. float_of_int draws in
  let point = float_of_int big_n *. p_hat in
  (* With-replacement binomial variance; the stopping rule makes the
     whole procedure only approximately unbiased, hence Heuristic. *)
  let variance =
    if draws < 2 then Float.nan
    else
      float_of_int big_n *. float_of_int big_n *. p_hat *. (1. -. p_hat)
      /. float_of_int draws
  in
  {
    estimate =
      Estimate.make ~variance ~label:"lipton-naughton" ~status:Estimate.Heuristic
        ~sample_size:draws point;
    draws;
    hits;
    stopped_by_threshold = hits >= threshold;
  }

let threshold_for ~target ~k_sigma =
  if target <= 0. then invalid_arg "Lipton_naughton.threshold_for: target must be positive";
  if k_sigma <= 0. then invalid_arg "Lipton_naughton.threshold_for: k_sigma must be positive";
  int_of_float (Float.ceil (k_sigma *. k_sigma *. (1. +. target) /. (target *. target)))
