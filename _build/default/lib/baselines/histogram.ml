module Relation = Relational.Relation
module Value = Relational.Value
module Estimate = Stats.Estimate

type bucket = { lo : float; hi : float; count : float }
(* Buckets are half-open [lo, hi) conceptually; the last bucket's [hi]
   is nudged past the maximum so the maximum value lands inside. *)

type t = {
  buckets : bucket array;
  total : int;
}

let numeric_column relation attribute =
  let column = Relation.column relation attribute in
  if Array.length column = 0 then invalid_arg "Histogram: empty column";
  Array.map Value.to_float column

let build relation ~attribute ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.build: buckets must be positive";
  let values = numeric_column relation attribute in
  let lo = Array.fold_left Float.min Float.infinity values in
  let hi = Array.fold_left Float.max Float.neg_infinity values in
  let width = if hi > lo then (hi -. lo) /. float_of_int buckets else 1. in
  let counts = Array.make buckets 0. in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = max 0 (min (buckets - 1) b) in
      counts.(b) <- counts.(b) +. 1.)
    values;
  {
    buckets =
      Array.init buckets (fun b ->
          {
            lo = lo +. (float_of_int b *. width);
            hi = lo +. (float_of_int (b + 1) *. width);
            count = counts.(b);
          });
    total = Array.length values;
  }

let build_equidepth relation ~attribute ~buckets =
  if buckets <= 0 then invalid_arg "Histogram.build_equidepth: buckets must be positive";
  let values = numeric_column relation attribute in
  Array.sort Float.compare values;
  let n = Array.length values in
  let buckets = min buckets n in
  let out = ref [] in
  (* Cut points at equal ranks; merge cuts that fall on identical
     values so bucket bounds stay strictly increasing. *)
  let start = ref 0 in
  for b = 1 to buckets do
    let stop = b * n / buckets in
    if stop > !start then begin
      let lo = values.(!start) in
      let hi = if stop >= n then values.(n - 1) +. 1. else values.(stop) in
      if hi > lo then begin
        out := { lo; hi; count = float_of_int (stop - !start) } :: !out;
        start := stop
      end
      (* else: extend the current run into the next cut (duplicates). *)
    end
  done;
  (* Any residue (all-identical tail) becomes one final bucket. *)
  if !start < n then begin
    let lo = values.(!start) in
    out := { lo; hi = values.(n - 1) +. 1.; count = float_of_int (n - !start) } :: !out
  end;
  { buckets = Array.of_list (List.rev !out); total = n }

let bucket_count t = Array.length t.buckets

let total t = t.total

let space = bucket_count

let estimate_range t ~lo ~hi =
  let point = ref 0. in
  if hi >= lo then begin
    Array.iter
      (fun b ->
        let width = Float.max (b.hi -. b.lo) 1e-12 in
        (* +1 on the query's hi side: the range is inclusive and the
           buckets treat integer values as unit-length cells. *)
        let overlap = Float.max 0. (Float.min (hi +. 1.) b.hi -. Float.max lo b.lo) in
        if overlap > 0. then point := !point +. (b.count *. Float.min 1. (overlap /. width)))
      t.buckets
  end;
  Estimate.make ~label:"histogram-range" ~status:Estimate.Heuristic ~sample_size:0 !point

let estimate_equijoin t1 t2 =
  (* Integrate the product of the two piecewise-constant densities:
     within an overlap of length L, expected matches are
     (c1/w1)·(c2/w2)·L for integer-valued attributes. *)
  let point = ref 0. in
  Array.iter
    (fun b1 ->
      if b1.count > 0. then begin
        let w1 = Float.max (b1.hi -. b1.lo) 1e-12 in
        Array.iter
          (fun b2 ->
            if b2.count > 0. then begin
              let overlap = Float.max 0. (Float.min b1.hi b2.hi -. Float.max b1.lo b2.lo) in
              if overlap > 0. then begin
                let w2 = Float.max (b2.hi -. b2.lo) 1e-12 in
                point := !point +. (b1.count /. w1 *. (b2.count /. w2) *. overlap)
              end
            end)
          t2.buckets
      end)
    t1.buckets;
  Estimate.make ~label:"histogram-equijoin" ~status:Estimate.Heuristic ~sample_size:0
    !point
