examples/repl.ml: Array Baselines In_channel List Option Printf Raestat Relational Sampling Stats String Sys Workload
