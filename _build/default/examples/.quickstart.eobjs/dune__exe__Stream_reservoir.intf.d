examples/stream_reservoir.mli:
