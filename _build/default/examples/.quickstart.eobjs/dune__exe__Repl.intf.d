examples/repl.mli:
