examples/census_audit.ml: List Option Printf Raestat Relational Sampling Stats String Workload
