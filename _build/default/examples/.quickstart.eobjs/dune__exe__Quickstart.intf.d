examples/quickstart.mli:
