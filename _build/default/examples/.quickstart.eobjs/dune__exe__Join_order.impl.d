examples/join_order.ml: List Printf Raestat Relational Sampling String Workload
