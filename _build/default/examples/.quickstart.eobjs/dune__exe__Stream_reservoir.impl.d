examples/stream_reservoir.ml: Array Float Printf Queue Raestat Relational Sampling Stats Workload
