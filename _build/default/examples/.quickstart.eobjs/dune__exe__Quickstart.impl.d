examples/quickstart.ml: Printf Raestat Relational Sampling Stats Workload
