examples/census_audit.mli:
