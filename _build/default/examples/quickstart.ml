(* Quickstart: estimate COUNT of a selection and of a join from small
   random samples, and compare with the exact answers.

   Run with: dune exec examples/quickstart.exe *)

module Expr = Relational.Expr
module P = Relational.Predicate
module CE = Raestat.Count_estimator
module Estimate = Stats.Estimate

let () =
  let rng = Sampling.Rng.create ~seed:2026 () in

  (* 1. Generate two relations: orders(amount) and customers(score). *)
  let orders =
    Workload.Generator.int_relation rng ~n:100_000 ~attribute:"amount"
      (Workload.Dist.Normal { mean = 250.; stddev = 80. })
  in
  let key_dist = Workload.Dist.Zipf { n_values = 1_000; skew = 0.7 } in
  let orders_keys =
    Workload.Generator.int_relation rng ~n:100_000 ~attribute:"customer" key_dist
  in
  let customers =
    Workload.Generator.int_relation rng ~n:20_000 ~attribute:"id" key_dist
  in
  let catalog =
    Relational.Catalog.of_list
      [ ("orders", orders); ("orders_keys", orders_keys); ("customers", customers) ]
  in

  (* 2. A selection: how many orders exceed 300? *)
  let predicate = P.gt (P.attr "amount") (P.vint 300) in
  let estimate = CE.selection rng catalog ~relation:"orders" ~n:1_000 predicate in
  let exact = Relational.Eval.count catalog (Expr.select predicate (Expr.base "orders")) in
  let ci = Estimate.ci ~level:0.95 estimate in
  Printf.printf "Selection  COUNT(orders.amount > 300)\n";
  Printf.printf "  sampled 1%%:   %.0f   (95%% CI [%.0f, %.0f])\n" estimate.Estimate.point
    ci.Stats.Confidence.lo ci.Stats.Confidence.hi;
  Printf.printf "  exact:        %d\n" exact;
  Printf.printf "  rel. error:   %.2f%%\n\n"
    (100. *. Estimate.relative_error ~truth:(float_of_int exact) estimate);

  (* 3. An equi-join: orders_keys ⋈ customers. *)
  let join = Expr.equijoin [ ("customer", "id") ] (Expr.base "orders_keys") (Expr.base "customers") in
  let join_est = CE.equijoin ~groups:8 rng catalog ~left:"orders_keys" ~right:"customers"
      ~on:[ ("customer", "id") ] ~fraction:0.05
  in
  let join_exact = Relational.Eval.count catalog join in
  Printf.printf "Join  COUNT(orders ⋈ customers)\n";
  Printf.printf "  sampled 5%%:   %.0f  (stderr %.0f)\n" join_est.Estimate.point
    (Estimate.stderr join_est);
  Printf.printf "  exact:        %d\n" join_exact;
  Printf.printf "  rel. error:   %.2f%%\n\n"
    (100. *. Estimate.relative_error ~truth:(float_of_int join_exact) join_est);

  (* 4. Any relational algebra expression works through the generic
     scale-up estimator. *)
  let composite =
    Expr.select
      (P.gt (P.attr "amount") (P.vint 200))
      (Expr.product (Expr.base "orders") (Expr.base "customers"))
  in
  let plan_est = CE.estimate ~groups:5 rng catalog ~fraction:0.01 composite in
  Printf.printf "Composite  σ(orders × customers): %.3g (%s)\n" plan_est.Estimate.point
    (Estimate.status_to_string plan_est.Estimate.status)
