(* Interactive estimator shell: type relational algebra expressions,
   get sampled COUNT estimates (and exact answers for comparison) over
   a demo catalog or your own CSV files.

   Run with:  dune exec examples/repl.exe              (demo catalog)
              dune exec examples/repl.exe -- r=data.csv s=other.csv

   Expressions use the Relational.Parser syntax, e.g.
     select[o_quantity >= 5](orders) join[o_supplier = s_key] suppliers
   Commands:
     :relations            list catalog contents
     :fraction 0.05        set the sampling fraction
     :groups 8             set replicate groups (variance/CI)
     :exact on|off         toggle exact evaluation
     :quit                 leave *)

module Expr = Relational.Expr
module CE = Raestat.Count_estimator
module Estimate = Stats.Estimate

let load_catalog () =
  let args = List.tl (Array.to_list Sys.argv) in
  if args = [] then begin
    let rng = Sampling.Rng.create ~seed:11 () in
    print_endline "no CSVs given; loading the demo mini-TPC catalog";
    Workload.Tpc_mini.catalog rng ()
  end
  else
    Relational.Catalog.of_list
      (List.map
         (fun spec ->
           match String.index_opt spec '=' with
           | Some i ->
             let name = String.sub spec 0 i in
             let path = String.sub spec (i + 1) (String.length spec - i - 1) in
             (name, Relational.Csv.load path)
           | None -> failwith (Printf.sprintf "expected NAME=PATH, got %S" spec))
         args)

let () =
  let catalog = load_catalog () in
  let rng = Sampling.Rng.create ~seed:1988 () in
  let fraction = ref 0.05 in
  let groups = ref 5 in
  let exact = ref true in
  let describe () =
    List.iter
      (fun name ->
        let r = Relational.Catalog.find catalog name in
        Printf.printf "  %-12s %8d tuples  %s\n" name
          (Relational.Relation.cardinality r)
          (Relational.Schema.to_string (Relational.Relation.schema r)))
      (Relational.Catalog.names catalog)
  in
  describe ();
  Printf.printf "fraction=%.3f groups=%d exact=%b — type an expression or :help\n%!"
    !fraction !groups !exact;
  let rec loop () =
    print_string "raestat> ";
    match In_channel.input_line stdin with
    | None -> print_newline ()
    | Some line ->
      let line = String.trim line in
      (try
         if line = "" then ()
         else if line = ":quit" then raise Exit
         else if line = ":relations" then describe ()
         else if line = ":help" then
           print_endline
             "expressions: select[p](e), pi[a,b](e), pidist[a](e), distinct(e),\n\
             \  rho[a->b](e), gamma[g; count, sum(v)](e), e cross e,\n\
             \  e join[a=b] e, e theta[p] e, e union e, e inter e, e minus e\n\
              SQL: prefix with 'sql', e.g. sql SELECT COUNT(*) FROM orders WHERE o_quantity >= 5\n\
              commands: :relations  :fraction F  :groups G  :exact on|off  :quit"
         else if String.length line > 10 && String.sub line 0 10 = ":fraction " then
           fraction := float_of_string (String.trim (String.sub line 10 (String.length line - 10)))
         else if String.length line > 8 && String.sub line 0 8 = ":groups " then
           groups := int_of_string (String.trim (String.sub line 8 (String.length line - 8)))
         else if line = ":exact on" then exact := true
         else if line = ":exact off" then exact := false
         else begin
           (* "sql SELECT ..." runs the SQL front-end; anything else is
              parsed as relational algebra. *)
           let e =
             if String.length line > 4 && String.lowercase_ascii (String.sub line 0 4) = "sql "
             then begin
               let parsed =
                 Relational.Sql.parse_optimized catalog
                   (String.sub line 4 (String.length line - 4))
               in
               (* SELECT COUNT( * ) means "estimate this cardinality". *)
               Option.value (Relational.Sql.count_star_target parsed) ~default:parsed
             end
             else Relational.Parser.parse_expr line
           in
           let est = CE.estimate ~groups:!groups rng catalog ~fraction:!fraction e in
           Printf.printf "estimate: %.0f   (%s" est.Estimate.point
             (Estimate.status_to_string est.Estimate.status);
           if Estimate.has_variance est then begin
             let ci = Estimate.ci ~level:0.95 est in
             Printf.printf ", CI95 [%.0f, %.0f]" ci.Stats.Confidence.lo ci.Stats.Confidence.hi
           end;
           Printf.printf ", %d tuples read)\n" est.Estimate.sample_size;
           if !exact then begin
             let result = Baselines.Exact.count catalog e in
             Printf.printf "exact:    %d   (%.1f ms; estimate error %.2f%%)\n"
               result.Baselines.Exact.count
               (1000. *. result.Baselines.Exact.seconds)
               (100.
               *. Estimate.relative_error
                    ~truth:(float_of_int result.Baselines.Exact.count)
                    est)
           end
         end
       with
      | Exit -> raise Exit
      | Failure message -> Printf.printf "error: %s\n" message
      | Invalid_argument message -> Printf.printf "error: %s\n" message);
      flush stdout;
      loop ()
  in
  (try loop () with Exit -> ());
  print_endline "bye"
