(* Streaming scenario: tuples arrive one at a time; a fixed-capacity
   reservoir maintains an SRSWOR at all times, and we answer continuous
   COUNT queries from it.  This is the natural 1988-estimators-meet-
   streams deployment: the estimator only ever sees the reservoir.

   Run with: dune exec examples/stream_reservoir.exe *)

module P = Relational.Predicate
module CE = Raestat.Count_estimator
module Estimate = Stats.Estimate

let () =
  let rng = Sampling.Rng.create ~seed:99 () in
  let capacity = 2_000 in
  let reservoir = Sampling.Reservoir.create ~algorithm:`L rng ~capacity in
  let schema = Relational.Schema.of_list [ ("latency_ms", Relational.Value.Tint) ] in
  (* The stream drifts: early traffic is fast, later traffic degrades. *)
  let latency_at t =
    let base = if t < 200_000 then 20. else 45. in
    let sampler = Workload.Dist.compile (Workload.Dist.Exponential { mean = base }) in
    sampler rng
  in
  let slow = P.gt (P.attr "latency_ms") (P.vint 100) in
  let exact_so_far = ref 0 in
  Printf.printf "%12s %14s %14s %9s\n" "seen" "est. slow" "exact slow" "rel.err";
  let checkpoint = ref 50_000 in
  for t = 1 to 400_000 do
    let latency = latency_at t in
    if latency > 100 then incr exact_so_far;
    Sampling.Reservoir.add reservoir
      (Relational.Tuple.make [ Relational.Value.Int latency ]);
    if t = !checkpoint then begin
      (* Answer "how many slow requests so far?" from the reservoir. *)
      let sample =
        Relational.Relation.of_array schema (Sampling.Reservoir.contents reservoir)
      in
      let n = Relational.Relation.cardinality sample in
      let keep = P.compile schema slow in
      let hits = Relational.Relation.count keep sample in
      let est = CE.selection_of_counts ~big_n:t ~n ~hits in
      let rel =
        Estimate.relative_error ~truth:(float_of_int !exact_so_far) est
      in
      Printf.printf "%12d %14.0f %14d %8.2f%%\n" t est.Estimate.point !exact_so_far
        (100. *. rel);
      checkpoint := !checkpoint + 50_000
    end
  done;
  Printf.printf "\nreservoir capacity stayed at %d tuples (%.3f%% of the stream)\n"
    capacity
    (100. *. float_of_int capacity /. 400_000.);

  (* Sliding-window variant: "how many slow requests in the last 50k
     events?"  Chain sampling keeps k uniform draws from the window;
     the whole-stream reservoir cannot answer this once the stream
     drifts. *)
  let window = 50_000 and k = 1_000 in
  let chains = Sampling.Window.create ~k rng ~window () in
  let window_log = Queue.create () in
  let window_slow = ref 0 in
  Printf.printf "\nsliding window (last %d events), %d chains:\n" window k;
  Printf.printf "%12s %14s %14s %9s\n" "seen" "est. slow" "exact slow" "rel.err";
  for t = 1 to 400_000 do
    let latency = latency_at t in
    Sampling.Window.add chains latency;
    Queue.push latency window_log;
    if latency > 100 then incr window_slow;
    if Queue.length window_log > window then begin
      let expired = Queue.pop window_log in
      if expired > 100 then decr window_slow
    end;
    if t mod 100_000 = 0 then begin
      let sample = Sampling.Window.contents chains in
      let hits = Array.fold_left (fun acc v -> if v > 100 then acc + 1 else acc) 0 sample in
      let est =
        float_of_int hits /. float_of_int (Array.length sample) *. float_of_int window
      in
      let truth = float_of_int !window_slow in
      Printf.printf "%12d %14.0f %14.0f %8.2f%%\n" t est truth
        (100. *. Float.abs (est -. truth) /. Float.max 1. truth)
    end
  done;
  Printf.printf "window sampler state: %d chains, O(1) space each — the drift is tracked\n" k
