(* Query-optimizer scenario: pick a join order for the 3-way chain
   orders ⋈ suppliers ⋈ parts with `Raestat.Planner`, the way a
   System-R-style optimizer would use the paper's estimators — all
   intermediate cardinalities come from 2% samples, never from full
   evaluation.  The chosen plan is then verified against exact costing.

   Run with: dune exec examples/join_order.exe *)

module P = Relational.Predicate
module Planner = Raestat.Planner
module Tpc = Workload.Tpc_mini

let () =
  let rng = Sampling.Rng.create ~seed:7 () in
  let catalog =
    Tpc.catalog rng ~sizes:{ Tpc.suppliers = 2_000; parts = 3_000; orders = 60_000 } ()
  in
  (* The region filter makes suppliers the selective side: joining it
     first shrinks the intermediate ~5×. *)
  let inputs =
    [
      { Planner.name = "orders"; filter = None };
      { Planner.name = "suppliers"; filter = Some (P.eq (P.attr "s_region") (P.vint 0)) };
      { Planner.name = "parts"; filter = None };
    ]
  in
  let joins =
    [
      { Planner.left_attr = "o_supplier"; right_attr = "s_key" };
      { Planner.left_attr = "o_part"; right_attr = "p_key" };
    ]
  in
  let plan = Planner.plan rng catalog ~fraction:0.02 ~inputs ~joins in

  Printf.printf "chosen order:    %s\n" (String.concat " ⋈ " plan.Planner.order);
  Printf.printf "chosen plan:     %s\n" (Relational.Parser.print_expr plan.Planner.expr);
  Printf.printf "estimated cost:  %.0f (from 2%% samples)\n" plan.Planner.estimated_cost;
  Printf.printf "exact cost:      %.0f\n\n" (Planner.exact_cost catalog plan);

  Printf.printf "sampled cardinality estimates per sub-plan:\n";
  List.iter
    (fun (key, size) -> Printf.printf "  %-26s %12.0f\n" key size)
    plan.Planner.estimates;

  (* Verify against the alternative order's exact cost. *)
  let other_first =
    Relational.Expr.equijoin
      [ ("o_part", "p_key") ]
      (Relational.Expr.base "orders") (Relational.Expr.base "parts")
  in
  let other_cost = float_of_int (Relational.Eval.count catalog other_first) in
  Printf.printf "\nalternative (parts first) exact intermediate: %.0f\n" other_cost;
  Printf.printf "%s\n"
    (if Planner.exact_cost catalog plan <= other_cost then
       "=> sampling-based planning picked the cheaper order"
     else "=> ranking error (increase the planning fraction)")
