(* Audit scenario on census-like microdata: a statistics office wants
   quick COUNT answers with confidence intervals over a person table
   (age, education, income decile), without scanning it, plus a
   distinct-count of (age, education) profiles — the operation where
   naive scale-up fails and the dedicated estimators earn their keep.

   Run with: dune exec examples/census_audit.exe *)

module Expr = Relational.Expr
module P = Relational.Predicate
module CE = Raestat.Count_estimator
module Distinct = Raestat.Distinct
module Estimate = Stats.Estimate
module Dist = Workload.Dist

let () =
  let rng = Sampling.Rng.create ~seed:88 () in
  let n = 200_000 in
  let people =
    Workload.Generator.relation rng ~n
      [
        ("age", Dist.Normal { mean = 42.; stddev = 16. });
        ("education", Dist.Zipf { n_values = 16; skew = 0.6 });
        ("income_decile", Dist.Uniform { lo = 1; hi = 10 });
      ]
  in
  let catalog = Relational.Catalog.of_list [ ("people", people) ] in

  (* Audit query 1: working-age population with high education. *)
  let q1 =
    P.(between (attr "age") (Relational.Value.Int 25) (Relational.Value.Int 64)
       &&& ge (attr "education") (vint 12))
  in
  let est = CE.selection rng catalog ~relation:"people" ~n:2_000 q1 in
  let exact = Relational.Eval.count catalog (Expr.select q1 (Expr.base "people")) in
  let ci = Estimate.ci ~level:0.95 est in
  Printf.printf "Q1  25–64 year olds with education ≥ 12 (1%% sample)\n";
  Printf.printf "    estimate %.0f   CI95 [%.0f, %.0f]   exact %d\n\n" est.Estimate.point
    ci.Stats.Confidence.lo ci.Stats.Confidence.hi exact;

  (* Audit query 2: precision-driven sequential sampling — ask for ±5%
     and let the sampler decide how much to read. *)
  let q2 = P.le (P.attr "income_decile") (P.vint 2) in
  let sequential =
    Raestat.Sequential.selection rng catalog ~relation:"people" ~target:0.05 ~batch:500 q2
  in
  let exact2 = Relational.Eval.count catalog (Expr.select q2 (Expr.base "people")) in
  Printf.printf "Q2  bottom-two income deciles, ±5%% requested\n";
  Printf.printf "    stopped after %d of %d tuples (%.1f%%), estimate %.0f, exact %d\n\n"
    sequential.Raestat.Sequential.estimate.Estimate.sample_size n
    (100.
    *. float_of_int sequential.Raestat.Sequential.estimate.Estimate.sample_size
    /. float_of_int n)
    sequential.Raestat.Sequential.estimate.Estimate.point exact2;

  (* Audit query 2b: plan the sample size before running — how many
     tuples would ±10% at 95% on a ~20% predicate need? *)
  let planned =
    Raestat.Sample_size.selection ~big_n:n ~level:0.95 ~target:0.1 ~p:0.2
  in
  Printf.printf "Q2b sample-size planner: ±10%% at 95%% on a 20%% predicate needs %d tuples (%.2f%%)\n\n"
    planned
    (100. *. float_of_int planned /. float_of_int n);

  (* Audit query 2c: population per income decile from ONE sample, with
     simultaneous (Bonferroni) intervals. *)
  let groups =
    Raestat.Group_count.estimate rng catalog ~relation:"people" ~by:[ "income_decile" ]
      ~n:5_000 ~level:0.95 ()
  in
  let exact_groups =
    Raestat.Group_count.exact catalog ~relation:"people" ~by:[ "income_decile" ] ()
  in
  Printf.printf "Q2c population per income decile (one 2.5%% sample, joint 95%%)\n";
  List.iter
    (fun g ->
      let key = String.concat "," (List.map Relational.Value.to_string g.Raestat.Group_count.key) in
      let exact =
        Option.value (List.assoc_opt g.Raestat.Group_count.key exact_groups) ~default:0
      in
      Printf.printf "    decile %-3s est %6.0f  CI [%6.0f, %6.0f]  exact %6d\n" key
        g.Raestat.Group_count.estimate.Estimate.point
        g.Raestat.Group_count.interval.Stats.Confidence.lo
        g.Raestat.Group_count.interval.Stats.Confidence.hi exact)
    groups.Raestat.Group_count.groups;
  print_newline ();

  (* Audit query 3: how many distinct (age, education) profiles? *)
  let attributes = [ "age"; "education" ] in
  let exact_d = Distinct.exact catalog ~relation:"people" ~attributes in
  Printf.printf "Q3  distinct (age, education) profiles from a 2%% sample\n";
  Printf.printf "    exact %d\n" exact_d;
  List.iter
    (fun m ->
      let est =
        Distinct.estimate rng catalog ~method_:m ~relation:"people" ~attributes ~n:4_000
      in
      Printf.printf "    %-16s %10.0f   (%s)\n"
        (Distinct.method_to_string m)
        est.Estimate.point
        (Estimate.status_to_string est.Estimate.status))
    [ Distinct.Chao1; Distinct.Gee; Distinct.Scale_up; Distinct.Sample_distinct ]
