(* Bechamel micro-benchmarks: one Test.make per experiment, measuring
   the estimation kernel each table exercises, plus the exact-evaluation
   and maintenance baselines. *)

module Expr = Relational.Expr
module P = Relational.Predicate
module Catalog = Relational.Catalog
module CE = Raestat.Count_estimator
module Dist = Workload.Dist
module Generator = Workload.Generator

let fixtures () =
  let rng = Sampling.Rng.create ~seed:606 () in
  let r =
    Generator.int_relation rng ~n:50_000 ~attribute:"a" (Dist.Uniform { lo = 0; hi = 999 })
  in
  let l, rr =
    Workload.Correlated.pair rng ~n_left:20_000 ~n_right:20_000 ~domain:500 ~skew_left:0.5
      ~skew_right:0.5 Workload.Correlated.Independent ~attribute:"a"
  in
  let sets_l, sets_r = Generator.set_pair rng ~card_left:20_000 ~card_right:15_000
      ~overlap:5_000 ~attribute:"a"
  in
  let tpc =
    Workload.Tpc_mini.catalog rng
      ~sizes:{ Workload.Tpc_mini.suppliers = 500; parts = 1_000; orders = 10_000 }
      ()
  in
  let catalog = Catalog.of_list [ ("r", r); ("l", l); ("rr", rr); ("sx", sets_l); ("sy", sets_r) ] in
  (rng, catalog, tpc, r)

let tests () =
  let rng, catalog, tpc, r = fixtures () in
  let pred = P.lt (P.attr "a") (P.vint 100) in
  let paged = Relational.Paged.make ~page_capacity:100 r in
  let open Bechamel in
  [
    Test.make ~name:"t1-selection-n500"
      (Staged.stage (fun () -> CE.selection rng catalog ~relation:"r" ~n:500 pred));
    Test.make ~name:"t2-equijoin-1pct"
      (Staged.stage (fun () ->
           CE.equijoin ~groups:1 rng catalog ~left:"l" ~right:"rr" ~on:[ ("a", "a") ]
             ~fraction:0.01));
    Test.make ~name:"t3-distinct-chao1-n1000"
      (Staged.stage (fun () ->
           Raestat.Distinct.estimate rng catalog ~method_:Raestat.Distinct.Chao1
             ~relation:"r" ~attributes:[ "a" ] ~n:1_000));
    Test.make ~name:"t4-intersection-2pct"
      (Staged.stage (fun () ->
           CE.intersection rng catalog ~left:"sx" ~right:"sy" ~fraction:0.02));
    Test.make ~name:"t5-chain-scaleup-5pct"
      (Staged.stage (fun () ->
           CE.estimate rng tpc ~fraction:0.05 (Workload.Tpc_mini.chain_query ())));
    Test.make ~name:"t6-ci-construction"
      (Staged.stage
         (let est =
            Stats.Estimate.make ~variance:123. ~status:Stats.Estimate.Unbiased
              ~sample_size:100 4567.
          in
          fun () -> Stats.Estimate.ci ~level:0.95 est));
    Test.make ~name:"f1-selection-n5000"
      (Staged.stage (fun () -> CE.selection rng catalog ~relation:"r" ~n:5_000 pred));
    Test.make ~name:"f2-join-profile"
      (Staged.stage (fun () -> Raestat.Join_variance.profile r "a"));
    Test.make ~name:"f3-cluster-m20"
      (Staged.stage (fun () -> Raestat.Cluster_estimator.count rng ~m:20 paged pred));
    Test.make ~name:"f4-sequential-target20pct"
      (Staged.stage (fun () ->
           Raestat.Sequential.selection rng catalog ~relation:"r" ~target:0.2 ~batch:200 pred));
    Test.make ~name:"f5-oracle-variance"
      (let p = Raestat.Join_variance.profile r "a" in
       Staged.stage (fun () -> Raestat.Join_variance.oracle_variance ~q1:0.1 ~q2:0.1 p p));
    Test.make ~name:"f6-exact-join-baseline"
      (Staged.stage (fun () ->
           Relational.Eval.count catalog
             (Expr.equijoin [ ("a", "a") ] (Expr.base "l") (Expr.base "rr"))));
    Test.make ~name:"maintenance-reservoir-add"
      (let reservoir = Sampling.Reservoir.create ~algorithm:`L rng ~capacity:1_000 in
       let tuple = Relational.Tuple.make [ Relational.Value.Int 7 ] in
       Staged.stage (fun () -> Sampling.Reservoir.add reservoir tuple));
    Test.make ~name:"a6-group-count-n1000"
      (Staged.stage (fun () ->
           Raestat.Group_count.estimate rng catalog ~relation:"r" ~by:[ "a" ] ~n:1_000 ()));
    Test.make ~name:"a6-sample-size-planner"
      (Staged.stage (fun () ->
           Raestat.Sample_size.selection ~big_n:1_000_000 ~level:0.95 ~target:0.05 ~p:0.1));
    Test.make ~name:"a7-streaming-join-count"
      (Staged.stage (fun () ->
           Relational.Physical.count_expr catalog
             (Expr.equijoin [ ("a", "a") ] (Expr.base "l") (Expr.base "rr"))));
    Test.make ~name:"parser-roundtrip"
      (let text = "select[a <= 10 and b > 2](r) join[a = c] pidist[c, d](s)" in
       Staged.stage (fun () ->
           Relational.Parser.print_expr (Relational.Parser.parse_expr text)));
  ]

let run () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  Printf.printf "\n=== Microbenchmarks (bechamel, ns/run) ===\n%!";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let grouped = Test.make_grouped ~name:"raestat" (tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ t ] -> (name, t) :: acc
        | Some _ | None -> (name, Float.nan) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_finite ns then
        if ns >= 1e6 then Printf.printf "%-40s %12.3f ms\n" name (ns /. 1e6)
        else if ns >= 1e3 then Printf.printf "%-40s %12.3f us\n" name (ns /. 1e3)
        else Printf.printf "%-40s %12.1f ns\n" name ns
      else Printf.printf "%-40s %12s\n" name "n/a")
    rows
