(* Plain-text table rendering for the experiment harness. *)

let heading id title =
  Printf.printf "\n=== %s: %s ===\n" id title

let columns widths headers =
  List.iter2 (fun w h -> Printf.printf "%*s " w h) widths headers;
  print_newline ();
  let total = List.fold_left (fun acc w -> acc + w + 1) 0 widths in
  print_string (String.make total '-');
  print_newline ()

let cell w s = Printf.printf "%*s " w s

let row widths cells =
  List.iter2 cell widths cells;
  print_newline ()

let pct x = Printf.sprintf "%.2f%%" (100. *. x)

let num x =
  if Float.abs x >= 1e6 then Printf.sprintf "%.3g" x else Printf.sprintf "%.1f" x

let note text = Printf.printf "  note: %s\n" text
