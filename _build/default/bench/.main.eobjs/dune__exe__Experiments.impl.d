bench/experiments.ml: Array Baselines Float Hashtbl List Printf Queue Raestat Relational Report Sampling Stats Unix Workload
