bench/main.mli:
