bench/report.ml: Float List Printf String
