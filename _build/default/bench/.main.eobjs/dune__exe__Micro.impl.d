bench/micro.ml: Analyze Bechamel Benchmark Float Hashtbl Instance List Measure Printf Raestat Relational Sampling Staged Stats String Test Time Workload
